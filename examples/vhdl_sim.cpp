// Executing the paper's own VHDL: this example embeds the subset source of
// the section 2.7 `example` architecture (CONTROLLER, TRANS, REG, ADD cells
// plus the structural netlist), parses it, checks subset conformance,
// elaborates it onto the simulation kernel, and runs it — then does the
// same for a design emitted from a transfer::Design, closing the loop
// between the C++ API and the VHDL text.

#include <cstdio>

#include "transfer/design.h"
#include "vhdl/elaborator.h"
#include "vhdl/emitter.h"

int main() {
  using namespace ctrtl;

  // ---- 1. The paper's example, as VHDL subset text -------------------------
  const std::string source = vhdl::standard_cells() + R"(
-- Section 2.7: "a partial description for the example given in fig 1",
-- completed with register preloads R1 = 30, R2 = 12.
entity example is
end example;

architecture transfer of example is
  -- timing signals
  signal cs: natural := 0;
  signal ph: phase := cr;
  -- module ports
  signal add_in1, add_in2: resolved integer;
  signal add_out: integer;
  -- register ports
  signal r1_in, r2_in: resolved integer;
  signal r1_out, r2_out: integer;
  -- buses
  signal b1: resolved integer;
  signal b2: resolved integer;
begin
  -- modules
  add_proc: add port map (ph, add_in1, add_in2, add_out);
  -- registers
  r1_proc: reg generic map (30) port map (ph, r1_in, r1_out);
  r2_proc: reg generic map (12) port map (ph, r2_in, r2_out);
  -- transfers
  r1_out_b1_5:  trans generic map (5, ra) port map (cs, ph, r1_out, b1);
  b1_add_in1_5: trans generic map (5, rb) port map (cs, ph, b1, add_in1);
  r2_out_b2_5:  trans generic map (5, ra) port map (cs, ph, r2_out, b2);
  b2_add_in2_5: trans generic map (5, rb) port map (cs, ph, b2, add_in2);
  add_out_b1_6: trans generic map (6, wa) port map (cs, ph, add_out, b1);
  b1_r1_in_6:   trans generic map (6, wb) port map (cs, ph, b1, r1_in);
  -- controller
  control: controller generic map (7) port map (cs, ph);
end transfer;
)";

  common::DiagnosticBag diags;
  auto model = vhdl::load_model(source, "example", diags);
  if (!model) {
    std::printf("front end rejected the source:\n%s", diags.to_text().c_str());
    return 1;
  }
  std::printf("parsed + subset-checked + elaborated: %zu signals, %zu processes\n",
              model->signals().size(), model->process_count());
  model->run();
  std::printf("  R1 = %s (expected 42), R2 = %s\n",
              model->render("r1_out").c_str(), model->render("r2_out").c_str());
  std::printf("  delta cycles = %llu (CS_MAX * 6 = 42), physical time = %llu fs\n",
              static_cast<unsigned long long>(
                  model->scheduler().stats().delta_cycles),
              static_cast<unsigned long long>(model->scheduler().now().fs));

  // ---- 2. Round trip: C++ Design -> emitted VHDL -> simulation -------------
  transfer::Design design;
  design.name = "roundtrip";
  design.cs_max = 4;
  design.registers = {{"A", 6}, {"B", 7}, {"OUT", std::nullopt}};
  design.buses = {{"B1"}, {"B2"}};
  design.modules = {{"MUL", transfer::ModuleKind::kMul, 2}};
  design.transfers = {
      transfer::RegisterTransfer::full("A", "B1", "B", "B2", 1, "MUL", 3, "B1",
                                       "OUT")};
  const std::string emitted = vhdl::emit_vhdl(design);
  common::DiagnosticBag diags2;
  auto reloaded = vhdl::load_model(emitted, "roundtrip", diags2);
  if (!reloaded) {
    std::printf("emitted VHDL failed to load:\n%s", diags2.to_text().c_str());
    return 1;
  }
  reloaded->run();
  std::printf("emitted VHDL round trip: OUT = %s (expected 42)\n",
              reloaded->render("out_out").c_str());

  const bool ok = model->read("r1_out") == 42 && reloaded->read("out_out") == 42;
  std::printf("%s\n", ok ? "VHDL front end verified" : "MISMATCH");
  return ok ? 0 : 1;
}
