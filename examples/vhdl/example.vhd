
-- Standard cells of the clock-free RT subset (after Mutz, DATE'98).

entity controller is
  generic (cs_max: natural);
  port (cs: inout natural := 0;
        ph: inout phase := phase'high);
end controller;

architecture transfer of controller is
begin
  process (ph)
  begin
    if ph = phase'high then
      if cs < cs_max then
        cs <= cs + 1;
        ph <= phase'low;
      end if;
    else
      ph <= phase'succ(ph);
    end if;
  end process;
end transfer;

entity trans is
  generic (s: natural; p: phase);
  port (cs: in natural; ph: in phase;
        ins: in integer; outs: out integer := disc);
end trans;

architecture transfer of trans is
begin
  process
  begin
    wait until cs = s and ph = p;
    outs <= ins;
    wait until cs = s and ph = phase'succ(p);
    outs <= disc;
  end process;
end transfer;

entity reg is
  generic (init: integer := disc);
  port (ph: in phase;
        r_in: in resolved integer;
        r_out: out integer := disc);
end reg;

architecture transfer of reg is
begin
  process
    variable started: boolean := false;
  begin
    if not started then
      started := true;
      if init /= disc then
        r_out <= init;
      end if;
    end if;
    wait until ph = cr;
    if r_in /= disc then
      r_out <= r_in;
    end if;
  end process;
end transfer;

entity add is
  port (ph: in phase;
        m_in1, m_in2: in resolved integer;
        m_out: out integer := disc);
end add;

architecture transfer of add is
begin
  process
    variable m: integer := disc;
  begin
    wait until ph = cm;
    m_out <= m;
    if m /= illegal then
      if m_in1 = disc and m_in2 = disc then
        m := disc;
      elsif m_in1 = illegal or m_in2 = illegal then
        m := illegal;
      elsif m_in1 /= disc and m_in2 /= disc then
        m := m_in1 + m_in2;
      else
        m := illegal;
      end if;
    end if;
  end process;
end transfer;

entity sub is
  port (ph: in phase;
        m_in1, m_in2: in resolved integer;
        m_out: out integer := disc);
end sub;

architecture transfer of sub is
begin
  process
    variable m: integer := disc;
  begin
    wait until ph = cm;
    m_out <= m;
    if m /= illegal then
      if m_in1 = disc and m_in2 = disc then
        m := disc;
      elsif m_in1 = illegal or m_in2 = illegal then
        m := illegal;
      elsif m_in1 /= disc and m_in2 /= disc then
        m := m_in1 - m_in2;
      else
        m := illegal;
      end if;
    end if;
  end process;
end transfer;

entity mul is
  port (ph: in phase;
        m_in1, m_in2: in resolved integer;
        m_out: out integer := disc);
end mul;

-- Two-stage pipelined multiplier (the IKS chip's multiplier shape):
-- operands fetched in step s appear at the output in step s + 2.
architecture transfer of mul is
begin
  process
    variable m1: integer := disc;
    variable m2: integer := disc;
    variable poisoned: boolean := false;
  begin
    wait until ph = cm;
    m_out <= m2;
    m2 := m1;
    if poisoned then
      m1 := illegal;
    elsif m_in1 = disc and m_in2 = disc then
      m1 := disc;
    elsif m_in1 = illegal or m_in2 = illegal then
      m1 := illegal;
      poisoned := true;
    elsif m_in1 /= disc and m_in2 /= disc then
      m1 := m_in1 * m_in2;
    else
      m1 := illegal;
      poisoned := true;
    end if;
  end process;
end transfer;

entity cp is
  port (ph: in phase;
        m_in1: in resolved integer;
        m_out: out integer := disc);
end cp;

-- Zero-latency copy: the paper's direct-link helper module.
architecture transfer of cp is
begin
  process
  begin
    wait until ph = cm;
    m_out <= m_in1;
  end process;
end transfer;

-- The paper's section 2.7 example: (R1,B1,R2,B2,5,ADD,6,B1,R1) with
-- CS_MAX = 7, R1 preloaded with 30, R2 with 12. Run with:
--   ctrtl_sim examples/vhdl/example.vhd --top example --vcd example.vcd
entity example is
end example;

architecture transfer of example is
  -- timing signals
  signal cs: natural := 0;
  signal ph: phase := cr;
  -- module ports
  signal add_in1, add_in2: resolved integer;
  signal add_out: integer;
  -- register ports
  signal r1_in, r2_in: resolved integer;
  signal r1_out, r2_out: integer;
  -- buses
  signal b1: resolved integer;
  signal b2: resolved integer;
begin
  -- modules
  add_proc: add port map (ph, add_in1, add_in2, add_out);
  -- registers
  r1_proc: reg generic map (30) port map (ph, r1_in, r1_out);
  r2_proc: reg generic map (12) port map (ph, r2_in, r2_out);
  -- transfers
  r1_out_b1_5:  trans generic map (5, ra) port map (cs, ph, r1_out, b1);
  b1_add_in1_5: trans generic map (5, rb) port map (cs, ph, b1, add_in1);
  r2_out_b2_5:  trans generic map (5, ra) port map (cs, ph, r2_out, b2);
  b2_add_in2_5: trans generic map (5, rb) port map (cs, ph, b2, add_in2);
  add_out_b1_6: trans generic map (6, wa) port map (cs, ph, add_out, b1);
  b1_r1_in_6:   trans generic map (6, wb) port map (cs, ph, b1, r1_in);
  -- controller
  control: controller generic map (7) port map (cs, ph);
end transfer;
