// The paper's section 3 application: the IKS (inverse kinematics solution)
// chip, modeled at the abstract register-transfer level and driven from
// microcode.
//
// The microprogram performs one Jacobian-transpose IK iteration for a
// two-link planar arm on the chip's resources (CORDIC, MACC, pipelined
// multiplier, ALU adders with Rshift). This example iterates the chip until
// the end effector reaches the target and verifies every iteration
// bit-exactly against the algorithmic-level golden model — the paper's
// bottom-up verification flow.

#include <cmath>
#include <cstdio>

#include "iks/golden.h"
#include "iks/program.h"
#include "iks/resources.h"

int main() {
  using namespace ctrtl;
  constexpr double kOne = static_cast<double>(std::int64_t{1} << iks::kFracBits);
  const auto fix = [](double v) {
    return static_cast<std::int64_t>(std::llround(v * 65536.0));
  };

  iks::IksInputs inputs;
  inputs.theta1 = fix(0.20);
  inputs.theta2 = fix(1.10);
  inputs.l1 = fix(1.0);
  inputs.l2 = fix(0.8);
  // Target: the pose reached by joint angles (0.7, 0.5).
  inputs.px = fix(1.0 * std::cos(0.7) + 0.8 * std::cos(1.2));
  inputs.py = fix(1.0 * std::sin(0.7) + 0.8 * std::sin(1.2));

  std::printf("IKS chip: two-link arm, target (%.4f, %.4f)\n",
              inputs.px / kOne, inputs.py / kOne);
  std::printf("%4s %10s %10s %12s %10s\n", "iter", "theta1", "theta2",
              "pos error", "deltas");

  bool all_exact = true;
  std::uint64_t total_deltas = 0;
  for (int iteration = 1; iteration <= 60; ++iteration) {
    auto model = iks::build_iks_model(inputs);
    const rtl::RunResult result = model->run();
    total_deltas += result.stats.delta_cycles;
    if (!result.conflict_free()) {
      std::printf("resource conflict detected!\n");
      return 1;
    }
    const iks::IksOutputs outputs = iks::read_outputs(*model);
    const iks::GoldenTrace golden = iks::golden_iteration(inputs);
    all_exact = all_exact && outputs.theta1_next == golden.theta1_next &&
                outputs.theta2_next == golden.theta2_next;

    inputs.theta1 = outputs.theta1_next;
    inputs.theta2 = outputs.theta2_next;
    const double err =
        iks::position_error(inputs, inputs.theta1, inputs.theta2);
    if (iteration <= 5 || iteration % 10 == 0) {
      std::printf("%4d %10.5f %10.5f %12.6f %10llu\n", iteration,
                  inputs.theta1 / kOne, inputs.theta2 / kOne, err,
                  static_cast<unsigned long long>(result.stats.delta_cycles));
    }
    if (err < 0.01) {
      std::printf("converged after %d iterations (error %.6f)\n", iteration, err);
      break;
    }
  }
  std::printf("RT-level model %s the algorithmic golden model bit-exactly\n",
              all_exact ? "matched" : "DIVERGED from");
  std::printf("total delta cycles: %llu (30 steps x 6 phases per iteration)\n",
              static_cast<unsigned long long>(total_deltas));
  return all_exact ? 0 : 1;
}
