// Resource-conflict detection (the paper's debugging story):
//
// "simulation results allow easily to locate design errors leading to
// resource conflicts: it would result to ILLEGAL values of resolved signals
// in specific simulation cycles associated with a specific phase of a
// specific control step."
//
// This example builds a schedule with a deliberate double-booking of bus
// B1, shows (1) the static analyzer predicting it, (2) the reference
// semantics deriving it, and (3) the simulator observing it — all three
// naming the same (signal, step, phase). It then shows that the clocked
// back end refuses to synthesize the broken schedule.

#include <cstdio>

#include "clocked/translate.h"
#include "transfer/build.h"
#include "transfer/conflict.h"
#include "verify/semantics.h"

int main() {
  using namespace ctrtl;
  using transfer::RegisterTransfer;

  transfer::Design design;
  design.name = "buggy";
  design.cs_max = 7;
  design.registers = {{"R1", 30}, {"R2", 12}, {"R3", 5}};
  design.buses = {{"B1"}, {"B2"}};
  design.modules = {{"ADD", transfer::ModuleKind::kAdd, 1},
                    {"SUB", transfer::ModuleKind::kSub, 1}};
  // Tuple 1 is fine; tuple 2 re-uses B1 at the same (5, ra) — the scheduling
  // bug under investigation.
  design.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1"),
      RegisterTransfer::full("R3", "B1", "R2", "B2", 5, "SUB", 6, "B2", "R3"),
  };

  std::printf("schedule:\n");
  for (const RegisterTransfer& tuple : design.transfers) {
    std::printf("  %s\n", transfer::to_string(tuple).c_str());
  }

  // 1. Static analysis predicts the conflicts.
  const transfer::AnalysisReport analysis = transfer::analyze(design);
  std::printf("\nstatic analysis predicts %zu conflicts:\n",
              analysis.drive_conflicts.size());
  for (const transfer::DriveConflict& conflict : analysis.drive_conflicts) {
    std::printf("  %s\n", to_string(conflict).c_str());
  }

  // 2. The reference semantics derives them.
  const verify::EvalResult reference = verify::evaluate(design);
  std::printf("\nreference semantics reports %zu ILLEGAL events:\n",
              reference.conflicts.size());
  for (const rtl::Conflict& conflict : reference.conflicts) {
    std::printf("  %s\n", rtl::to_string(conflict).c_str());
  }

  // 3. Simulation observes them at the same delta cycles.
  auto model = transfer::build_model(design);
  const rtl::RunResult result = model->run();
  std::printf("\nsimulation observes %zu ILLEGAL events:\n",
              result.conflicts.size());
  for (const rtl::Conflict& conflict : result.conflicts) {
    std::printf("  %s\n", rtl::to_string(conflict).c_str());
  }
  std::printf("poisoned registers after the run: R1 = %s, R3 = %s\n",
              rtl::to_string(model->find_register("R1")->value()).c_str(),
              rtl::to_string(model->find_register("R3")->value()).c_str());

  // 4. Synthesis refuses the broken schedule.
  std::printf("\nclocked translation: ");
  try {
    (void)clocked::plan_translation(design);
    std::printf("accepted (BUG)\n");
    return 1;
  } catch (const std::invalid_argument& error) {
    std::printf("rejected, as it must be:\n%s\n", error.what());
  }

  const bool detected = !analysis.drive_conflicts.empty() &&
                        !reference.conflicts.empty() && !result.conflicts.empty();
  std::printf("%s\n", detected
                          ? "conflict located identically by all three methods"
                          : "DETECTION FAILED");
  return detected ? 0 : 1;
}
