// High-level synthesis flow (the paper's application 2):
//
//   dataflow graph  ->  list scheduling + left-edge allocation
//                   ->  abstract register-transfer design (9-tuples)
//                   ->  clock-free simulation (verified against the
//                       algorithmic evaluation)
//                   ->  control-step -> clock-cycle translation
//                   ->  clocked simulation (write traces compared)
//
// "High level synthesis results are translated into our subset and can then
// be simulated at a high level before the next synthesis steps translate to
// a more concrete implementation."

#include <cstdio>

#include "clocked/model.h"
#include "hls/emit.h"
#include "transfer/build.h"
#include "verify/equivalence.h"
#include "verify/trace.h"

int main() {
  using namespace ctrtl;

  // f(a, b) = max(a*3 - b, (a + b) * 2) + 1
  hls::Dfg dfg;
  dfg.add_input("a");
  dfg.add_input("b");
  const auto a = hls::ValueRef::of_input("a");
  const auto b = hls::ValueRef::of_input("b");
  const std::size_t a3 = dfg.add_node(hls::OpKind::kMul,
                                      {a, hls::ValueRef::of_constant(3)});
  const std::size_t lhs =
      dfg.add_node(hls::OpKind::kSub, {hls::ValueRef::of_node(a3), b});
  const std::size_t sum = dfg.add_node(hls::OpKind::kAdd, {a, b});
  const std::size_t rhs = dfg.add_node(
      hls::OpKind::kMul,
      {hls::ValueRef::of_node(sum), hls::ValueRef::of_constant(2)});
  const std::size_t mx = dfg.add_node(
      hls::OpKind::kMax, {hls::ValueRef::of_node(lhs), hls::ValueRef::of_node(rhs)});
  const std::size_t out = dfg.add_node(
      hls::OpKind::kAdd, {hls::ValueRef::of_node(mx), hls::ValueRef::of_constant(1)});
  dfg.mark_output("f", hls::ValueRef::of_node(out));

  // Synthesize onto one ALU and one two-stage multiplier.
  const hls::EmitResult emitted =
      hls::synthesize(dfg, hls::default_resources(), "hlsdemo");
  std::printf("synthesized %zu operations into %u control steps, %zu tuples, "
              "%zu registers, %zu buses\n",
              dfg.nodes().size(), emitted.design.cs_max,
              emitted.design.transfers.size(), emitted.design.registers.size(),
              emitted.design.buses.size());
  for (const transfer::RegisterTransfer& tuple : emitted.design.transfers) {
    std::printf("  %s\n", transfer::to_string(tuple).c_str());
  }

  // Simulate the abstract model and compare with the algorithmic evaluation.
  const std::map<std::string, std::int64_t> inputs = {{"a", 6}, {"b", 4}};
  const auto expected = hls::evaluate(dfg, inputs);

  auto abstract = transfer::build_model(emitted.design);
  verify::RegisterWriteTrace abstract_trace(*abstract);
  for (const auto& [name, value] : inputs) {
    abstract->set_input(name, rtl::RtValue::of(value));
  }
  const rtl::RunResult abstract_result = abstract->run();
  const rtl::RtValue f_abstract =
      abstract->find_register(emitted.output_registers.at("f"))->value();
  std::printf("abstract model : f(6,4) = %s (algorithmic: %lld), %llu deltas, "
              "0 fs\n",
              rtl::to_string(f_abstract).c_str(),
              static_cast<long long>(expected.at("f")),
              static_cast<unsigned long long>(abstract_result.stats.delta_cycles));

  // Translate to the clocked implementation and re-simulate.
  const clocked::TranslationPlan plan = clocked::plan_translation(emitted.design);
  clocked::ClockedModel clocked_model(plan);
  for (const auto& [name, value] : inputs) {
    clocked_model.set_input(name, rtl::RtValue::of(value));
  }
  const clocked::ClockedModel::Result clocked_result = clocked_model.run();
  const rtl::RtValue f_clocked =
      clocked_model.register_value(emitted.output_registers.at("f"));
  std::printf("clocked model  : f(6,4) = %s, %u clock cycles, %llu fs\n",
              rtl::to_string(f_clocked).c_str(), clocked_result.clock_cycles,
              static_cast<unsigned long long>(clocked_result.elapsed_fs));

  const verify::CheckReport traces = verify::compare_write_traces(
      abstract_trace.writes(), clocked_model.writes(), /*ignore_preload=*/true);
  std::printf("write traces   : %s\n",
              traces.consistent() ? "equivalent" : traces.to_text().c_str());

  const bool ok = f_abstract == rtl::RtValue::of(expected.at("f")) &&
                  f_clocked == f_abstract && traces.consistent();
  std::printf("%s\n", ok ? "HLS flow verified end to end" : "MISMATCH");
  return ok ? 0 : 1;
}
