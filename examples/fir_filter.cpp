// A DSP workload on the clock-free RT model: an 8-tap FIR filter built from
// the paper's resources — a MACC unit for the convolution, a COPY module
// for the delay-line shifts, two buses, and a control-step schedule of 18
// steps per sample. Each processed sample is one simulation run; register
// state (the delay line) carries over between runs, exactly how microcoded
// datapaths stream.
//
// The filter output is compared against a plain C++ convolution.

#include <array>
#include <cstdio>
#include <vector>

#include "rtl/modules.h"
#include "transfer/build.h"

namespace {

using namespace ctrtl;
using transfer::Design;
using transfer::Endpoint;
using transfer::ModuleKind;
using transfer::OperandPath;
using transfer::RegisterTransfer;

constexpr std::array<std::int64_t, 8> kTaps = {4, -3, 7, 12, 12, 7, -3, 4};

std::string xreg(std::size_t i) {
  return "X" + std::to_string(i);
}

/// One sample's schedule: clear, 8 MACs, write-back, delay-line shift, load.
Design fir_design(const std::array<std::int64_t, 8>& delay_line) {
  Design d;
  d.name = "fir8";
  d.cs_max = 18;
  for (std::size_t i = 0; i < 8; ++i) {
    d.registers.push_back({xreg(i), delay_line[i]});
  }
  d.registers.push_back({"OUT", std::nullopt});
  d.buses = {{"B1"}, {"B2"}, {"B3"}};
  d.inputs = {{"sample"}};
  for (std::size_t i = 0; i < 8; ++i) {
    d.constants.push_back({"c" + std::to_string(i), kTaps[i]});
  }
  d.modules = {{"MACC", ModuleKind::kMacc, 1, 0},
               {"CP", ModuleKind::kCopy, 0}};

  // Step 1: clear the accumulator.
  RegisterTransfer clear;
  clear.read_step = 1;
  clear.module = "MACC";
  clear.op = rtl::MaccModule::kOpClear;
  d.transfers.push_back(clear);

  // Steps 2..9: acc += c_i * X_i.
  for (unsigned i = 0; i < 8; ++i) {
    RegisterTransfer mac;
    mac.operand_a = OperandPath{Endpoint::constant("c" + std::to_string(i)), "B1"};
    mac.operand_b = OperandPath{Endpoint::register_out(xreg(i)), "B2"};
    mac.read_step = 2 + i;
    mac.module = "MACC";
    mac.op = rtl::MaccModule::kOpMac;
    if (i == 7) {  // last MAC carries the write-back (acc visible step 10)
      mac.write_step = 10;
      mac.write_bus = "B3";
      mac.destination = "OUT";
    }
    d.transfers.push_back(mac);
  }

  // Steps 10..16: shift the delay line X7 <- X6 <- ... <- X0 via the copy
  // module (the paper's direct-link recipe), tail first.
  for (unsigned i = 0; i < 7; ++i) {
    const unsigned step = 10 + i;
    RegisterTransfer shift;
    shift.operand_a = OperandPath{Endpoint::register_out(xreg(6 - i)), "B1"};
    shift.read_step = step;
    shift.module = "CP";
    shift.write_step = step;
    shift.write_bus = "B2";
    shift.destination = xreg(7 - i);
    d.transfers.push_back(shift);
  }
  // Step 17: load the new sample into X0.
  RegisterTransfer load;
  load.operand_a = OperandPath{Endpoint::input("sample"), "B1"};
  load.read_step = 17;
  load.module = "CP";
  load.write_step = 17;
  load.write_bus = "B2";
  load.destination = xreg(0);
  d.transfers.push_back(load);
  return d;
}

}  // namespace

int main() {
  // Test signal: an impulse followed by a step and a little ramp.
  std::vector<std::int64_t> samples = {100, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                       50,  50, 50, 50, 50, 50, 50, 50,
                                       1,   2,  3,  4,  5,  6,  7,  8};

  std::array<std::int64_t, 8> delay_line{};  // X0 newest ... X7 oldest
  std::vector<std::int64_t> rt_output;
  std::uint64_t total_deltas = 0;

  for (const std::int64_t sample : samples) {
    const Design d = fir_design(delay_line);
    auto model = transfer::build_model(d);
    model->set_input("sample", rtl::RtValue::of(sample));
    const rtl::RunResult result = model->run();
    total_deltas += result.stats.delta_cycles;
    if (!result.conflict_free()) {
      std::printf("resource conflict!\n");
      return 1;
    }
    rt_output.push_back(model->find_register("OUT")->value().payload());
    for (std::size_t i = 0; i < 8; ++i) {
      const rtl::RtValue v = model->find_register(xreg(i))->value();
      delay_line[i] = v.has_value() ? v.payload() : 0;
    }
  }

  // Reference convolution. The datapath computes y[n] from the delay line
  // *before* sample n is loaded, i.e. on samples x[n-1], x[n-2], ...
  std::vector<std::int64_t> reference;
  for (std::size_t n = 0; n < samples.size(); ++n) {
    std::int64_t acc = 0;
    for (std::size_t k = 0; k < kTaps.size(); ++k) {
      const std::size_t lag = k + 1;
      if (n >= lag) {
        acc += kTaps[k] * samples[n - lag];
      }
    }
    reference.push_back(acc);
  }

  bool ok = rt_output == reference;
  std::printf("8-tap FIR on the IKS-style datapath (MACC + COPY, 18 steps/sample)\n");
  std::printf("%5s %8s %10s %10s\n", "n", "x[n]", "y_rt[n]", "y_ref[n]");
  for (std::size_t n = 0; n < samples.size(); ++n) {
    std::printf("%5zu %8lld %10lld %10lld%s\n", n,
                static_cast<long long>(samples[n]),
                static_cast<long long>(rt_output[n]),
                static_cast<long long>(reference[n]),
                rt_output[n] == reference[n] ? "" : "   <-- MISMATCH");
  }
  std::printf("total delta cycles: %llu (%zu samples x 18 steps x 6 phases + 1)\n",
              static_cast<unsigned long long>(total_deltas), samples.size());
  std::printf("%s\n", ok ? "FIR output matches the reference convolution"
                         : "MISMATCH");
  return ok ? 0 : 1;
}
