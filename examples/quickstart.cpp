// Quickstart: the paper's figure 1 example, built with the native C++ API.
//
// One register transfer, denoted by the 9-tuple
//     (R1, B1, R2, B2, 5, ADD, 6, B1, R1)
// reads R1 and R2 onto buses B1/B2 in control step 5, feeds the pipelined
// adder, and writes the sum back into R1 in step 6. The whole run takes
// exactly CS_MAX * 6 = 42 delta cycles and zero physical time.

#include <cstdio>

#include "rtl/model.h"
#include "rtl/modules.h"

int main() {
  using namespace ctrtl;

  rtl::RtModel model(/*cs_max=*/7);

  auto& r1 = model.add_register("R1", rtl::RtValue::of(30));
  auto& r2 = model.add_register("R2", rtl::RtValue::of(12));
  auto& b1 = model.add_bus("B1");
  auto& b2 = model.add_bus("B2");
  auto& add = model.add_module<rtl::FixedFunctionModule>(
      "ADD", 2u, /*latency=*/1u,
      [](std::span<const std::int64_t> v) { return v[0] + v[1]; });

  // The six TRANS instances of the tuple (paper section 2.7).
  model.add_transfer(5, rtl::Phase::kRa, r1.out(), b1);           // R1_out_B1_5
  model.add_transfer(5, rtl::Phase::kRb, b1, add.input(0));       // B1_ADD_in1_5
  model.add_transfer(5, rtl::Phase::kRa, r2.out(), b2);           // R2_out_B2_5
  model.add_transfer(5, rtl::Phase::kRb, b2, add.input(1));       // B2_ADD_in2_5
  model.add_transfer(6, rtl::Phase::kWa, add.out(), b1);          // ADD_out_B1_6
  model.add_transfer(6, rtl::Phase::kWb, b1, r1.in());            // B1_R1_in_6

  const rtl::RunResult result = model.run();

  std::printf("(R1,B1,R2,B2,5,ADD,6,B1,R1) with R1=30, R2=12\n");
  std::printf("  R1 after run : %s (expected 42)\n",
              rtl::to_string(r1.value()).c_str());
  std::printf("  R2 after run : %s (unchanged)\n",
              rtl::to_string(r2.value()).c_str());
  std::printf("  delta cycles : %llu (CS_MAX * 6 = 42)\n",
              static_cast<unsigned long long>(result.stats.delta_cycles));
  std::printf("  physical time: %llu fs (clock-free!)\n",
              static_cast<unsigned long long>(model.scheduler().now().fs));
  std::printf("  conflicts    : %zu\n", result.conflicts.size());
  return result.conflict_free() && r1.value() == rtl::RtValue::of(42) ? 0 : 1;
}
