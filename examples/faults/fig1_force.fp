# Fault plan for examples/rtd/fig1.rtd: inject a second driver onto B1 in
# control step 5, phase ra — exactly when R1 is driving it toward the ADD
# module. Both contributions are non-DISC, so the bus resolves to ILLEGAL
# and the conflict recorder fires at (5, rb).
#
# Run with:
#   ctrtl_design examples/rtd/fig1.rtd --simulate \
#       --fault-plan=examples/faults/fig1_force.fp
force-bus B1 = 99 @5:ra
