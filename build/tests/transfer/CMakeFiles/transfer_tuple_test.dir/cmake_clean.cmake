file(REMOVE_RECURSE
  "CMakeFiles/transfer_tuple_test.dir/tuple_test.cpp.o"
  "CMakeFiles/transfer_tuple_test.dir/tuple_test.cpp.o.d"
  "transfer_tuple_test"
  "transfer_tuple_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_tuple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
