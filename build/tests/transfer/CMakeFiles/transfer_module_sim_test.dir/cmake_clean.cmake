file(REMOVE_RECURSE
  "CMakeFiles/transfer_module_sim_test.dir/module_sim_test.cpp.o"
  "CMakeFiles/transfer_module_sim_test.dir/module_sim_test.cpp.o.d"
  "transfer_module_sim_test"
  "transfer_module_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_module_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
