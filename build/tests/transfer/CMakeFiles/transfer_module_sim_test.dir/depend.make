# Empty dependencies file for transfer_module_sim_test.
# This may be replaced when dependencies are built.
