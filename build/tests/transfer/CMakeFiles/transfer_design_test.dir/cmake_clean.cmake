file(REMOVE_RECURSE
  "CMakeFiles/transfer_design_test.dir/design_test.cpp.o"
  "CMakeFiles/transfer_design_test.dir/design_test.cpp.o.d"
  "transfer_design_test"
  "transfer_design_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
