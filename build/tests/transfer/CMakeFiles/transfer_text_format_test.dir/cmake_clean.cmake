file(REMOVE_RECURSE
  "CMakeFiles/transfer_text_format_test.dir/text_format_test.cpp.o"
  "CMakeFiles/transfer_text_format_test.dir/text_format_test.cpp.o.d"
  "transfer_text_format_test"
  "transfer_text_format_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_text_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
