# Empty dependencies file for transfer_text_format_test.
# This may be replaced when dependencies are built.
