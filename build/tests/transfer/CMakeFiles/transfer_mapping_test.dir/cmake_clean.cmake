file(REMOVE_RECURSE
  "CMakeFiles/transfer_mapping_test.dir/mapping_test.cpp.o"
  "CMakeFiles/transfer_mapping_test.dir/mapping_test.cpp.o.d"
  "transfer_mapping_test"
  "transfer_mapping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
