# Empty compiler generated dependencies file for transfer_mapping_test.
# This may be replaced when dependencies are built.
