# Empty dependencies file for transfer_build_test.
# This may be replaced when dependencies are built.
