file(REMOVE_RECURSE
  "CMakeFiles/transfer_build_test.dir/build_test.cpp.o"
  "CMakeFiles/transfer_build_test.dir/build_test.cpp.o.d"
  "transfer_build_test"
  "transfer_build_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_build_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
