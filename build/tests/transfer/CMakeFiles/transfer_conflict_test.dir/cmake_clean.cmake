file(REMOVE_RECURSE
  "CMakeFiles/transfer_conflict_test.dir/conflict_test.cpp.o"
  "CMakeFiles/transfer_conflict_test.dir/conflict_test.cpp.o.d"
  "transfer_conflict_test"
  "transfer_conflict_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_conflict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
