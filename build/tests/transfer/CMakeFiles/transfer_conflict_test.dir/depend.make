# Empty dependencies file for transfer_conflict_test.
# This may be replaced when dependencies are built.
