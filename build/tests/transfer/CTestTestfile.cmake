# CMake generated Testfile for 
# Source directory: /root/repo/tests/transfer
# Build directory: /root/repo/build/tests/transfer
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(transfer_tuple_test "/root/repo/build/tests/transfer/transfer_tuple_test")
set_tests_properties(transfer_tuple_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/transfer/CMakeLists.txt;1;ctrtl_test;/root/repo/tests/transfer/CMakeLists.txt;0;")
add_test(transfer_mapping_test "/root/repo/build/tests/transfer/transfer_mapping_test")
set_tests_properties(transfer_mapping_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/transfer/CMakeLists.txt;2;ctrtl_test;/root/repo/tests/transfer/CMakeLists.txt;0;")
add_test(transfer_design_test "/root/repo/build/tests/transfer/transfer_design_test")
set_tests_properties(transfer_design_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/transfer/CMakeLists.txt;3;ctrtl_test;/root/repo/tests/transfer/CMakeLists.txt;0;")
add_test(transfer_conflict_test "/root/repo/build/tests/transfer/transfer_conflict_test")
set_tests_properties(transfer_conflict_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/transfer/CMakeLists.txt;4;ctrtl_test;/root/repo/tests/transfer/CMakeLists.txt;0;")
add_test(transfer_build_test "/root/repo/build/tests/transfer/transfer_build_test")
set_tests_properties(transfer_build_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/transfer/CMakeLists.txt;5;ctrtl_test;/root/repo/tests/transfer/CMakeLists.txt;0;")
add_test(transfer_module_sim_test "/root/repo/build/tests/transfer/transfer_module_sim_test")
set_tests_properties(transfer_module_sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/transfer/CMakeLists.txt;6;ctrtl_test;/root/repo/tests/transfer/CMakeLists.txt;0;")
add_test(transfer_text_format_test "/root/repo/build/tests/transfer/transfer_text_format_test")
set_tests_properties(transfer_text_format_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/transfer/CMakeLists.txt;7;ctrtl_test;/root/repo/tests/transfer/CMakeLists.txt;0;")
