file(REMOVE_RECURSE
  "CMakeFiles/common_diagnostics_test.dir/diagnostics_test.cpp.o"
  "CMakeFiles/common_diagnostics_test.dir/diagnostics_test.cpp.o.d"
  "common_diagnostics_test"
  "common_diagnostics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_diagnostics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
