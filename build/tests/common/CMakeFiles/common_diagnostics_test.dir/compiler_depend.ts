# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for common_diagnostics_test.
