# Empty dependencies file for common_diagnostics_test.
# This may be replaced when dependencies are built.
