file(REMOVE_RECURSE
  "CMakeFiles/common_fixed_point_test.dir/fixed_point_test.cpp.o"
  "CMakeFiles/common_fixed_point_test.dir/fixed_point_test.cpp.o.d"
  "common_fixed_point_test"
  "common_fixed_point_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_fixed_point_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
