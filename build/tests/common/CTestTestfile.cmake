# CMake generated Testfile for 
# Source directory: /root/repo/tests/common
# Build directory: /root/repo/build/tests/common
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_fixed_point_test "/root/repo/build/tests/common/common_fixed_point_test")
set_tests_properties(common_fixed_point_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/common/CMakeLists.txt;1;ctrtl_test;/root/repo/tests/common/CMakeLists.txt;0;")
add_test(common_diagnostics_test "/root/repo/build/tests/common/common_diagnostics_test")
set_tests_properties(common_diagnostics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/common/CMakeLists.txt;2;ctrtl_test;/root/repo/tests/common/CMakeLists.txt;0;")
