file(REMOVE_RECURSE
  "CMakeFiles/hls_dfg_test.dir/dfg_test.cpp.o"
  "CMakeFiles/hls_dfg_test.dir/dfg_test.cpp.o.d"
  "hls_dfg_test"
  "hls_dfg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hls_dfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
