
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hls/dfg_test.cpp" "tests/hls/CMakeFiles/hls_dfg_test.dir/dfg_test.cpp.o" "gcc" "tests/hls/CMakeFiles/hls_dfg_test.dir/dfg_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hls/CMakeFiles/ctrtl_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/ctrtl_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ctrtl_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ctrtl_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctrtl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
