# Empty dependencies file for hls_flow_test.
# This may be replaced when dependencies are built.
