file(REMOVE_RECURSE
  "CMakeFiles/hls_flow_test.dir/flow_test.cpp.o"
  "CMakeFiles/hls_flow_test.dir/flow_test.cpp.o.d"
  "hls_flow_test"
  "hls_flow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hls_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
