# CMake generated Testfile for 
# Source directory: /root/repo/tests/hls
# Build directory: /root/repo/build/tests/hls
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(hls_dfg_test "/root/repo/build/tests/hls/hls_dfg_test")
set_tests_properties(hls_dfg_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/hls/CMakeLists.txt;1;ctrtl_test;/root/repo/tests/hls/CMakeLists.txt;0;")
add_test(hls_flow_test "/root/repo/build/tests/hls/hls_flow_test")
set_tests_properties(hls_flow_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/hls/CMakeLists.txt;2;ctrtl_test;/root/repo/tests/hls/CMakeLists.txt;0;")
