# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("kernel")
subdirs("rtl")
subdirs("transfer")
subdirs("vhdl")
subdirs("hls")
subdirs("clocked")
subdirs("baseline")
subdirs("iks")
subdirs("verify")
subdirs("integration")
