file(REMOVE_RECURSE
  "CMakeFiles/verify_random_design_test.dir/random_design_test.cpp.o"
  "CMakeFiles/verify_random_design_test.dir/random_design_test.cpp.o.d"
  "verify_random_design_test"
  "verify_random_design_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_random_design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
