# Empty compiler generated dependencies file for verify_random_design_test.
# This may be replaced when dependencies are built.
