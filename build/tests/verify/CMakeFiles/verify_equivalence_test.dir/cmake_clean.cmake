file(REMOVE_RECURSE
  "CMakeFiles/verify_equivalence_test.dir/equivalence_test.cpp.o"
  "CMakeFiles/verify_equivalence_test.dir/equivalence_test.cpp.o.d"
  "verify_equivalence_test"
  "verify_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
