# Empty dependencies file for verify_equivalence_test.
# This may be replaced when dependencies are built.
