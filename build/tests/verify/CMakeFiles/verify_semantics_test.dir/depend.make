# Empty dependencies file for verify_semantics_test.
# This may be replaced when dependencies are built.
