file(REMOVE_RECURSE
  "CMakeFiles/verify_semantics_test.dir/semantics_test.cpp.o"
  "CMakeFiles/verify_semantics_test.dir/semantics_test.cpp.o.d"
  "verify_semantics_test"
  "verify_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
