file(REMOVE_RECURSE
  "CMakeFiles/verify_vcd_test.dir/vcd_test.cpp.o"
  "CMakeFiles/verify_vcd_test.dir/vcd_test.cpp.o.d"
  "verify_vcd_test"
  "verify_vcd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_vcd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
