# Empty dependencies file for verify_vcd_test.
# This may be replaced when dependencies are built.
