file(REMOVE_RECURSE
  "CMakeFiles/verify_trace_test.dir/trace_test.cpp.o"
  "CMakeFiles/verify_trace_test.dir/trace_test.cpp.o.d"
  "verify_trace_test"
  "verify_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
