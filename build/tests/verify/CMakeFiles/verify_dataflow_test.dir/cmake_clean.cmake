file(REMOVE_RECURSE
  "CMakeFiles/verify_dataflow_test.dir/dataflow_test.cpp.o"
  "CMakeFiles/verify_dataflow_test.dir/dataflow_test.cpp.o.d"
  "verify_dataflow_test"
  "verify_dataflow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_dataflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
