# Empty compiler generated dependencies file for verify_dataflow_test.
# This may be replaced when dependencies are built.
