# CMake generated Testfile for 
# Source directory: /root/repo/tests/verify
# Build directory: /root/repo/build/tests/verify
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(verify_semantics_test "/root/repo/build/tests/verify/verify_semantics_test")
set_tests_properties(verify_semantics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/verify/CMakeLists.txt;1;ctrtl_test;/root/repo/tests/verify/CMakeLists.txt;0;")
add_test(verify_equivalence_test "/root/repo/build/tests/verify/verify_equivalence_test")
set_tests_properties(verify_equivalence_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/verify/CMakeLists.txt;2;ctrtl_test;/root/repo/tests/verify/CMakeLists.txt;0;")
add_test(verify_trace_test "/root/repo/build/tests/verify/verify_trace_test")
set_tests_properties(verify_trace_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/verify/CMakeLists.txt;3;ctrtl_test;/root/repo/tests/verify/CMakeLists.txt;0;")
add_test(verify_random_design_test "/root/repo/build/tests/verify/verify_random_design_test")
set_tests_properties(verify_random_design_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/verify/CMakeLists.txt;4;ctrtl_test;/root/repo/tests/verify/CMakeLists.txt;0;")
add_test(verify_dataflow_test "/root/repo/build/tests/verify/verify_dataflow_test")
set_tests_properties(verify_dataflow_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/verify/CMakeLists.txt;5;ctrtl_test;/root/repo/tests/verify/CMakeLists.txt;0;")
add_test(verify_vcd_test "/root/repo/build/tests/verify/verify_vcd_test")
set_tests_properties(verify_vcd_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/verify/CMakeLists.txt;6;ctrtl_test;/root/repo/tests/verify/CMakeLists.txt;0;")
