file(REMOVE_RECURSE
  "CMakeFiles/baseline_handshake_test.dir/handshake_test.cpp.o"
  "CMakeFiles/baseline_handshake_test.dir/handshake_test.cpp.o.d"
  "baseline_handshake_test"
  "baseline_handshake_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_handshake_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
