# Empty dependencies file for baseline_handshake_test.
# This may be replaced when dependencies are built.
