file(REMOVE_RECURSE
  "CMakeFiles/baseline_clocked_rtl_test.dir/clocked_rtl_test.cpp.o"
  "CMakeFiles/baseline_clocked_rtl_test.dir/clocked_rtl_test.cpp.o.d"
  "baseline_clocked_rtl_test"
  "baseline_clocked_rtl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_clocked_rtl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
