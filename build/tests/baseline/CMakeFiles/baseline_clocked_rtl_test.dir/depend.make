# Empty dependencies file for baseline_clocked_rtl_test.
# This may be replaced when dependencies are built.
