# CMake generated Testfile for 
# Source directory: /root/repo/tests/baseline
# Build directory: /root/repo/build/tests/baseline
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(baseline_handshake_test "/root/repo/build/tests/baseline/baseline_handshake_test")
set_tests_properties(baseline_handshake_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/baseline/CMakeLists.txt;1;ctrtl_test;/root/repo/tests/baseline/CMakeLists.txt;0;")
add_test(baseline_clocked_rtl_test "/root/repo/build/tests/baseline/baseline_clocked_rtl_test")
set_tests_properties(baseline_clocked_rtl_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/baseline/CMakeLists.txt;2;ctrtl_test;/root/repo/tests/baseline/CMakeLists.txt;0;")
