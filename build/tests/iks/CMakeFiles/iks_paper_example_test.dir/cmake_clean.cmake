file(REMOVE_RECURSE
  "CMakeFiles/iks_paper_example_test.dir/paper_example_test.cpp.o"
  "CMakeFiles/iks_paper_example_test.dir/paper_example_test.cpp.o.d"
  "iks_paper_example_test"
  "iks_paper_example_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iks_paper_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
