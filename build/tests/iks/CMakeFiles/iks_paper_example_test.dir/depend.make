# Empty dependencies file for iks_paper_example_test.
# This may be replaced when dependencies are built.
