file(REMOVE_RECURSE
  "CMakeFiles/iks_microcode_test.dir/microcode_test.cpp.o"
  "CMakeFiles/iks_microcode_test.dir/microcode_test.cpp.o.d"
  "iks_microcode_test"
  "iks_microcode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iks_microcode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
