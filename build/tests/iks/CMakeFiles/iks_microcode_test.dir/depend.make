# Empty dependencies file for iks_microcode_test.
# This may be replaced when dependencies are built.
