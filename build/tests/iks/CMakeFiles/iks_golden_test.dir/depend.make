# Empty dependencies file for iks_golden_test.
# This may be replaced when dependencies are built.
