file(REMOVE_RECURSE
  "CMakeFiles/iks_golden_test.dir/golden_test.cpp.o"
  "CMakeFiles/iks_golden_test.dir/golden_test.cpp.o.d"
  "iks_golden_test"
  "iks_golden_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iks_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
