# Empty dependencies file for iks_program_test.
# This may be replaced when dependencies are built.
