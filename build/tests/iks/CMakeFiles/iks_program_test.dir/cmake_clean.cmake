file(REMOVE_RECURSE
  "CMakeFiles/iks_program_test.dir/program_test.cpp.o"
  "CMakeFiles/iks_program_test.dir/program_test.cpp.o.d"
  "iks_program_test"
  "iks_program_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iks_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
