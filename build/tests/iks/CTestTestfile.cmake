# CMake generated Testfile for 
# Source directory: /root/repo/tests/iks
# Build directory: /root/repo/build/tests/iks
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(iks_microcode_test "/root/repo/build/tests/iks/iks_microcode_test")
set_tests_properties(iks_microcode_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/iks/CMakeLists.txt;1;ctrtl_test;/root/repo/tests/iks/CMakeLists.txt;0;")
add_test(iks_golden_test "/root/repo/build/tests/iks/iks_golden_test")
set_tests_properties(iks_golden_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/iks/CMakeLists.txt;2;ctrtl_test;/root/repo/tests/iks/CMakeLists.txt;0;")
add_test(iks_program_test "/root/repo/build/tests/iks/iks_program_test")
set_tests_properties(iks_program_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/iks/CMakeLists.txt;3;ctrtl_test;/root/repo/tests/iks/CMakeLists.txt;0;")
add_test(iks_paper_example_test "/root/repo/build/tests/iks/iks_paper_example_test")
set_tests_properties(iks_paper_example_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/iks/CMakeLists.txt;4;ctrtl_test;/root/repo/tests/iks/CMakeLists.txt;0;")
