# CMake generated Testfile for 
# Source directory: /root/repo/tests/clocked
# Build directory: /root/repo/build/tests/clocked
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(clocked_translate_test "/root/repo/build/tests/clocked/clocked_translate_test")
set_tests_properties(clocked_translate_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/clocked/CMakeLists.txt;1;ctrtl_test;/root/repo/tests/clocked/CMakeLists.txt;0;")
add_test(clocked_model_test "/root/repo/build/tests/clocked/clocked_model_test")
set_tests_properties(clocked_model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/clocked/CMakeLists.txt;2;ctrtl_test;/root/repo/tests/clocked/CMakeLists.txt;0;")
add_test(clocked_scheme_test "/root/repo/build/tests/clocked/clocked_scheme_test")
set_tests_properties(clocked_scheme_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/clocked/CMakeLists.txt;3;ctrtl_test;/root/repo/tests/clocked/CMakeLists.txt;0;")
