# Empty dependencies file for clocked_model_test.
# This may be replaced when dependencies are built.
