file(REMOVE_RECURSE
  "CMakeFiles/clocked_model_test.dir/model_test.cpp.o"
  "CMakeFiles/clocked_model_test.dir/model_test.cpp.o.d"
  "clocked_model_test"
  "clocked_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clocked_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
