file(REMOVE_RECURSE
  "CMakeFiles/clocked_scheme_test.dir/scheme_test.cpp.o"
  "CMakeFiles/clocked_scheme_test.dir/scheme_test.cpp.o.d"
  "clocked_scheme_test"
  "clocked_scheme_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clocked_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
