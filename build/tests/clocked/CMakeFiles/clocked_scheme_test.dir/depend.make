# Empty dependencies file for clocked_scheme_test.
# This may be replaced when dependencies are built.
