# Empty dependencies file for clocked_translate_test.
# This may be replaced when dependencies are built.
