file(REMOVE_RECURSE
  "CMakeFiles/clocked_translate_test.dir/translate_test.cpp.o"
  "CMakeFiles/clocked_translate_test.dir/translate_test.cpp.o.d"
  "clocked_translate_test"
  "clocked_translate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clocked_translate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
