# CMake generated Testfile for 
# Source directory: /root/repo/tests/rtl
# Build directory: /root/repo/build/tests/rtl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(rtl_value_test "/root/repo/build/tests/rtl/rtl_value_test")
set_tests_properties(rtl_value_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/rtl/CMakeLists.txt;1;ctrtl_test;/root/repo/tests/rtl/CMakeLists.txt;0;")
add_test(rtl_phase_test "/root/repo/build/tests/rtl/rtl_phase_test")
set_tests_properties(rtl_phase_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/rtl/CMakeLists.txt;2;ctrtl_test;/root/repo/tests/rtl/CMakeLists.txt;0;")
add_test(rtl_controller_test "/root/repo/build/tests/rtl/rtl_controller_test")
set_tests_properties(rtl_controller_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/rtl/CMakeLists.txt;3;ctrtl_test;/root/repo/tests/rtl/CMakeLists.txt;0;")
add_test(rtl_transfer_process_test "/root/repo/build/tests/rtl/rtl_transfer_process_test")
set_tests_properties(rtl_transfer_process_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/rtl/CMakeLists.txt;4;ctrtl_test;/root/repo/tests/rtl/CMakeLists.txt;0;")
add_test(rtl_register_test "/root/repo/build/tests/rtl/rtl_register_test")
set_tests_properties(rtl_register_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/rtl/CMakeLists.txt;5;ctrtl_test;/root/repo/tests/rtl/CMakeLists.txt;0;")
add_test(rtl_module_test "/root/repo/build/tests/rtl/rtl_module_test")
set_tests_properties(rtl_module_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/rtl/CMakeLists.txt;6;ctrtl_test;/root/repo/tests/rtl/CMakeLists.txt;0;")
add_test(rtl_model_test "/root/repo/build/tests/rtl/rtl_model_test")
set_tests_properties(rtl_model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/rtl/CMakeLists.txt;7;ctrtl_test;/root/repo/tests/rtl/CMakeLists.txt;0;")
