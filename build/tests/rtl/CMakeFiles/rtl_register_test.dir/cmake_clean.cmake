file(REMOVE_RECURSE
  "CMakeFiles/rtl_register_test.dir/register_test.cpp.o"
  "CMakeFiles/rtl_register_test.dir/register_test.cpp.o.d"
  "rtl_register_test"
  "rtl_register_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_register_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
