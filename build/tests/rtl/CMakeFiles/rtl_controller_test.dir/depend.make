# Empty dependencies file for rtl_controller_test.
# This may be replaced when dependencies are built.
