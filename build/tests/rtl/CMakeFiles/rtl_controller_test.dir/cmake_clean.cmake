file(REMOVE_RECURSE
  "CMakeFiles/rtl_controller_test.dir/controller_test.cpp.o"
  "CMakeFiles/rtl_controller_test.dir/controller_test.cpp.o.d"
  "rtl_controller_test"
  "rtl_controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
