file(REMOVE_RECURSE
  "CMakeFiles/rtl_value_test.dir/value_test.cpp.o"
  "CMakeFiles/rtl_value_test.dir/value_test.cpp.o.d"
  "rtl_value_test"
  "rtl_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
