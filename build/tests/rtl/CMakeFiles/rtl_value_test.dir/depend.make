# Empty dependencies file for rtl_value_test.
# This may be replaced when dependencies are built.
