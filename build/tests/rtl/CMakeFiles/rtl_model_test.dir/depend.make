# Empty dependencies file for rtl_model_test.
# This may be replaced when dependencies are built.
