file(REMOVE_RECURSE
  "CMakeFiles/rtl_model_test.dir/model_test.cpp.o"
  "CMakeFiles/rtl_model_test.dir/model_test.cpp.o.d"
  "rtl_model_test"
  "rtl_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
