# Empty compiler generated dependencies file for rtl_phase_test.
# This may be replaced when dependencies are built.
