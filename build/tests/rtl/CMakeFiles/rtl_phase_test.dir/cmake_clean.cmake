file(REMOVE_RECURSE
  "CMakeFiles/rtl_phase_test.dir/phase_test.cpp.o"
  "CMakeFiles/rtl_phase_test.dir/phase_test.cpp.o.d"
  "rtl_phase_test"
  "rtl_phase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_phase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
