# Empty dependencies file for rtl_transfer_process_test.
# This may be replaced when dependencies are built.
