file(REMOVE_RECURSE
  "CMakeFiles/rtl_transfer_process_test.dir/transfer_process_test.cpp.o"
  "CMakeFiles/rtl_transfer_process_test.dir/transfer_process_test.cpp.o.d"
  "rtl_transfer_process_test"
  "rtl_transfer_process_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_transfer_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
