file(REMOVE_RECURSE
  "CMakeFiles/rtl_module_test.dir/module_test.cpp.o"
  "CMakeFiles/rtl_module_test.dir/module_test.cpp.o.d"
  "rtl_module_test"
  "rtl_module_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
