# Empty dependencies file for rtl_module_test.
# This may be replaced when dependencies are built.
