# CMake generated Testfile for 
# Source directory: /root/repo/tests/kernel
# Build directory: /root/repo/build/tests/kernel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(kernel_signal_test "/root/repo/build/tests/kernel/kernel_signal_test")
set_tests_properties(kernel_signal_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/kernel/CMakeLists.txt;1;ctrtl_test;/root/repo/tests/kernel/CMakeLists.txt;0;")
add_test(kernel_scheduler_test "/root/repo/build/tests/kernel/kernel_scheduler_test")
set_tests_properties(kernel_scheduler_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/kernel/CMakeLists.txt;2;ctrtl_test;/root/repo/tests/kernel/CMakeLists.txt;0;")
add_test(kernel_task_test "/root/repo/build/tests/kernel/kernel_task_test")
set_tests_properties(kernel_task_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/kernel/CMakeLists.txt;3;ctrtl_test;/root/repo/tests/kernel/CMakeLists.txt;0;")
