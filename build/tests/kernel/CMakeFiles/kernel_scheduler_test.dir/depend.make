# Empty dependencies file for kernel_scheduler_test.
# This may be replaced when dependencies are built.
