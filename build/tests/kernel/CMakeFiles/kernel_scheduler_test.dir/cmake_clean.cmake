file(REMOVE_RECURSE
  "CMakeFiles/kernel_scheduler_test.dir/scheduler_test.cpp.o"
  "CMakeFiles/kernel_scheduler_test.dir/scheduler_test.cpp.o.d"
  "kernel_scheduler_test"
  "kernel_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
