# Empty dependencies file for kernel_signal_test.
# This may be replaced when dependencies are built.
