file(REMOVE_RECURSE
  "CMakeFiles/kernel_signal_test.dir/signal_test.cpp.o"
  "CMakeFiles/kernel_signal_test.dir/signal_test.cpp.o.d"
  "kernel_signal_test"
  "kernel_signal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_signal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
