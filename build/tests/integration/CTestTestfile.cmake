# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(integration_dispatch_mode_test "/root/repo/build/tests/integration/integration_dispatch_mode_test")
set_tests_properties(integration_dispatch_mode_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;1;ctrtl_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(integration_full_chain_test "/root/repo/build/tests/integration/integration_full_chain_test")
set_tests_properties(integration_full_chain_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;2;ctrtl_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(integration_scale_test "/root/repo/build/tests/integration/integration_scale_test")
set_tests_properties(integration_scale_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;3;ctrtl_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(integration_determinism_test "/root/repo/build/tests/integration/integration_determinism_test")
set_tests_properties(integration_determinism_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;4;ctrtl_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(integration_lifetime_test "/root/repo/build/tests/integration/integration_lifetime_test")
set_tests_properties(integration_lifetime_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;5;ctrtl_test;/root/repo/tests/integration/CMakeLists.txt;0;")
