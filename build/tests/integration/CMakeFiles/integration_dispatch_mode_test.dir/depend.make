# Empty dependencies file for integration_dispatch_mode_test.
# This may be replaced when dependencies are built.
