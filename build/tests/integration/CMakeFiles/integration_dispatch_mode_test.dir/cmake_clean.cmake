file(REMOVE_RECURSE
  "CMakeFiles/integration_dispatch_mode_test.dir/dispatch_mode_test.cpp.o"
  "CMakeFiles/integration_dispatch_mode_test.dir/dispatch_mode_test.cpp.o.d"
  "integration_dispatch_mode_test"
  "integration_dispatch_mode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_dispatch_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
