# Empty compiler generated dependencies file for integration_lifetime_test.
# This may be replaced when dependencies are built.
