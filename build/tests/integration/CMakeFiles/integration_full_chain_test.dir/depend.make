# Empty dependencies file for integration_full_chain_test.
# This may be replaced when dependencies are built.
