file(REMOVE_RECURSE
  "CMakeFiles/vhdl_clocked_vhdl_test.dir/clocked_vhdl_test.cpp.o"
  "CMakeFiles/vhdl_clocked_vhdl_test.dir/clocked_vhdl_test.cpp.o.d"
  "vhdl_clocked_vhdl_test"
  "vhdl_clocked_vhdl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhdl_clocked_vhdl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
