file(REMOVE_RECURSE
  "CMakeFiles/vhdl_emitter_test.dir/emitter_test.cpp.o"
  "CMakeFiles/vhdl_emitter_test.dir/emitter_test.cpp.o.d"
  "vhdl_emitter_test"
  "vhdl_emitter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhdl_emitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
