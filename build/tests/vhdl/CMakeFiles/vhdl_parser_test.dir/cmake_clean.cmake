file(REMOVE_RECURSE
  "CMakeFiles/vhdl_parser_test.dir/parser_test.cpp.o"
  "CMakeFiles/vhdl_parser_test.dir/parser_test.cpp.o.d"
  "vhdl_parser_test"
  "vhdl_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhdl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
