# Empty compiler generated dependencies file for vhdl_parser_test.
# This may be replaced when dependencies are built.
