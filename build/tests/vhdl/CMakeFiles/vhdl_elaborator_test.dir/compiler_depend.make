# Empty compiler generated dependencies file for vhdl_elaborator_test.
# This may be replaced when dependencies are built.
