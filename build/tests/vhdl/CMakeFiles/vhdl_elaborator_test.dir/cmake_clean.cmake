file(REMOVE_RECURSE
  "CMakeFiles/vhdl_elaborator_test.dir/elaborator_test.cpp.o"
  "CMakeFiles/vhdl_elaborator_test.dir/elaborator_test.cpp.o.d"
  "vhdl_elaborator_test"
  "vhdl_elaborator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhdl_elaborator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
