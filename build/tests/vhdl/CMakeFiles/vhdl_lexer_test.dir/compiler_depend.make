# Empty compiler generated dependencies file for vhdl_lexer_test.
# This may be replaced when dependencies are built.
