file(REMOVE_RECURSE
  "CMakeFiles/vhdl_lexer_test.dir/lexer_test.cpp.o"
  "CMakeFiles/vhdl_lexer_test.dir/lexer_test.cpp.o.d"
  "vhdl_lexer_test"
  "vhdl_lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhdl_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
