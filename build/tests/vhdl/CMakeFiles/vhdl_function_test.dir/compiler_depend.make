# Empty compiler generated dependencies file for vhdl_function_test.
# This may be replaced when dependencies are built.
