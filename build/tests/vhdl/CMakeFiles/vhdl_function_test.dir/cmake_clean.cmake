file(REMOVE_RECURSE
  "CMakeFiles/vhdl_function_test.dir/function_test.cpp.o"
  "CMakeFiles/vhdl_function_test.dir/function_test.cpp.o.d"
  "vhdl_function_test"
  "vhdl_function_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhdl_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
