# Empty compiler generated dependencies file for vhdl_subset_check_test.
# This may be replaced when dependencies are built.
