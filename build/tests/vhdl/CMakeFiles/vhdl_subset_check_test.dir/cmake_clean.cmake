file(REMOVE_RECURSE
  "CMakeFiles/vhdl_subset_check_test.dir/subset_check_test.cpp.o"
  "CMakeFiles/vhdl_subset_check_test.dir/subset_check_test.cpp.o.d"
  "vhdl_subset_check_test"
  "vhdl_subset_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhdl_subset_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
