# Empty dependencies file for vhdl_robustness_test.
# This may be replaced when dependencies are built.
