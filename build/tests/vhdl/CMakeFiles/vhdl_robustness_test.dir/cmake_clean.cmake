file(REMOVE_RECURSE
  "CMakeFiles/vhdl_robustness_test.dir/robustness_test.cpp.o"
  "CMakeFiles/vhdl_robustness_test.dir/robustness_test.cpp.o.d"
  "vhdl_robustness_test"
  "vhdl_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhdl_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
