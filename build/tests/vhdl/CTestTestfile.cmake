# CMake generated Testfile for 
# Source directory: /root/repo/tests/vhdl
# Build directory: /root/repo/build/tests/vhdl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(vhdl_lexer_test "/root/repo/build/tests/vhdl/vhdl_lexer_test")
set_tests_properties(vhdl_lexer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/vhdl/CMakeLists.txt;1;ctrtl_test;/root/repo/tests/vhdl/CMakeLists.txt;0;")
add_test(vhdl_parser_test "/root/repo/build/tests/vhdl/vhdl_parser_test")
set_tests_properties(vhdl_parser_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/vhdl/CMakeLists.txt;2;ctrtl_test;/root/repo/tests/vhdl/CMakeLists.txt;0;")
add_test(vhdl_subset_check_test "/root/repo/build/tests/vhdl/vhdl_subset_check_test")
set_tests_properties(vhdl_subset_check_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/vhdl/CMakeLists.txt;3;ctrtl_test;/root/repo/tests/vhdl/CMakeLists.txt;0;")
add_test(vhdl_elaborator_test "/root/repo/build/tests/vhdl/vhdl_elaborator_test")
set_tests_properties(vhdl_elaborator_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/vhdl/CMakeLists.txt;4;ctrtl_test;/root/repo/tests/vhdl/CMakeLists.txt;0;")
add_test(vhdl_emitter_test "/root/repo/build/tests/vhdl/vhdl_emitter_test")
set_tests_properties(vhdl_emitter_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/vhdl/CMakeLists.txt;5;ctrtl_test;/root/repo/tests/vhdl/CMakeLists.txt;0;")
add_test(vhdl_clocked_vhdl_test "/root/repo/build/tests/vhdl/vhdl_clocked_vhdl_test")
set_tests_properties(vhdl_clocked_vhdl_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/vhdl/CMakeLists.txt;6;ctrtl_test;/root/repo/tests/vhdl/CMakeLists.txt;0;")
add_test(vhdl_function_test "/root/repo/build/tests/vhdl/vhdl_function_test")
set_tests_properties(vhdl_function_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/vhdl/CMakeLists.txt;7;ctrtl_test;/root/repo/tests/vhdl/CMakeLists.txt;0;")
add_test(vhdl_robustness_test "/root/repo/build/tests/vhdl/vhdl_robustness_test")
set_tests_properties(vhdl_robustness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/vhdl/CMakeLists.txt;8;ctrtl_test;/root/repo/tests/vhdl/CMakeLists.txt;0;")
