# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;7;ctrtl_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_iks_chip "/root/repo/build/examples/iks_chip")
set_tests_properties(example_iks_chip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;8;ctrtl_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hls_flow "/root/repo/build/examples/hls_flow")
set_tests_properties(example_hls_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;9;ctrtl_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vhdl_sim "/root/repo/build/examples/vhdl_sim")
set_tests_properties(example_vhdl_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;10;ctrtl_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_conflict_detection "/root/repo/build/examples/conflict_detection")
set_tests_properties(example_conflict_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;11;ctrtl_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fir_filter "/root/repo/build/examples/fir_filter")
set_tests_properties(example_fir_filter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;12;ctrtl_example;/root/repo/examples/CMakeLists.txt;0;")
