file(REMOVE_RECURSE
  "CMakeFiles/conflict_detection.dir/conflict_detection.cpp.o"
  "CMakeFiles/conflict_detection.dir/conflict_detection.cpp.o.d"
  "conflict_detection"
  "conflict_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
