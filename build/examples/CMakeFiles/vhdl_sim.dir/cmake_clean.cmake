file(REMOVE_RECURSE
  "CMakeFiles/vhdl_sim.dir/vhdl_sim.cpp.o"
  "CMakeFiles/vhdl_sim.dir/vhdl_sim.cpp.o.d"
  "vhdl_sim"
  "vhdl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhdl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
