file(REMOVE_RECURSE
  "CMakeFiles/fir_filter.dir/fir_filter.cpp.o"
  "CMakeFiles/fir_filter.dir/fir_filter.cpp.o.d"
  "fir_filter"
  "fir_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
