file(REMOVE_RECURSE
  "CMakeFiles/iks_chip.dir/iks_chip.cpp.o"
  "CMakeFiles/iks_chip.dir/iks_chip.cpp.o.d"
  "iks_chip"
  "iks_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iks_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
