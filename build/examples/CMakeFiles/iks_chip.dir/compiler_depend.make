# Empty compiler generated dependencies file for iks_chip.
# This may be replaced when dependencies are built.
