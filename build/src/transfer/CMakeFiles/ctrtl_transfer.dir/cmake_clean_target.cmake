file(REMOVE_RECURSE
  "libctrtl_transfer.a"
)
