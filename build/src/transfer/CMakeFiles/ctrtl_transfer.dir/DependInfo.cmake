
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transfer/build.cpp" "src/transfer/CMakeFiles/ctrtl_transfer.dir/build.cpp.o" "gcc" "src/transfer/CMakeFiles/ctrtl_transfer.dir/build.cpp.o.d"
  "/root/repo/src/transfer/conflict.cpp" "src/transfer/CMakeFiles/ctrtl_transfer.dir/conflict.cpp.o" "gcc" "src/transfer/CMakeFiles/ctrtl_transfer.dir/conflict.cpp.o.d"
  "/root/repo/src/transfer/design.cpp" "src/transfer/CMakeFiles/ctrtl_transfer.dir/design.cpp.o" "gcc" "src/transfer/CMakeFiles/ctrtl_transfer.dir/design.cpp.o.d"
  "/root/repo/src/transfer/mapping.cpp" "src/transfer/CMakeFiles/ctrtl_transfer.dir/mapping.cpp.o" "gcc" "src/transfer/CMakeFiles/ctrtl_transfer.dir/mapping.cpp.o.d"
  "/root/repo/src/transfer/module_sim.cpp" "src/transfer/CMakeFiles/ctrtl_transfer.dir/module_sim.cpp.o" "gcc" "src/transfer/CMakeFiles/ctrtl_transfer.dir/module_sim.cpp.o.d"
  "/root/repo/src/transfer/text_format.cpp" "src/transfer/CMakeFiles/ctrtl_transfer.dir/text_format.cpp.o" "gcc" "src/transfer/CMakeFiles/ctrtl_transfer.dir/text_format.cpp.o.d"
  "/root/repo/src/transfer/tuple.cpp" "src/transfer/CMakeFiles/ctrtl_transfer.dir/tuple.cpp.o" "gcc" "src/transfer/CMakeFiles/ctrtl_transfer.dir/tuple.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/ctrtl_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctrtl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ctrtl_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
