file(REMOVE_RECURSE
  "CMakeFiles/ctrtl_transfer.dir/build.cpp.o"
  "CMakeFiles/ctrtl_transfer.dir/build.cpp.o.d"
  "CMakeFiles/ctrtl_transfer.dir/conflict.cpp.o"
  "CMakeFiles/ctrtl_transfer.dir/conflict.cpp.o.d"
  "CMakeFiles/ctrtl_transfer.dir/design.cpp.o"
  "CMakeFiles/ctrtl_transfer.dir/design.cpp.o.d"
  "CMakeFiles/ctrtl_transfer.dir/mapping.cpp.o"
  "CMakeFiles/ctrtl_transfer.dir/mapping.cpp.o.d"
  "CMakeFiles/ctrtl_transfer.dir/module_sim.cpp.o"
  "CMakeFiles/ctrtl_transfer.dir/module_sim.cpp.o.d"
  "CMakeFiles/ctrtl_transfer.dir/text_format.cpp.o"
  "CMakeFiles/ctrtl_transfer.dir/text_format.cpp.o.d"
  "CMakeFiles/ctrtl_transfer.dir/tuple.cpp.o"
  "CMakeFiles/ctrtl_transfer.dir/tuple.cpp.o.d"
  "libctrtl_transfer.a"
  "libctrtl_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrtl_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
