# Empty compiler generated dependencies file for ctrtl_transfer.
# This may be replaced when dependencies are built.
