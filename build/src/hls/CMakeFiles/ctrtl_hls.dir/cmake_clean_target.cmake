file(REMOVE_RECURSE
  "libctrtl_hls.a"
)
