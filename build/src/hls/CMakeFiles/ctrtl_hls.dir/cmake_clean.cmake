file(REMOVE_RECURSE
  "CMakeFiles/ctrtl_hls.dir/allocate.cpp.o"
  "CMakeFiles/ctrtl_hls.dir/allocate.cpp.o.d"
  "CMakeFiles/ctrtl_hls.dir/dfg.cpp.o"
  "CMakeFiles/ctrtl_hls.dir/dfg.cpp.o.d"
  "CMakeFiles/ctrtl_hls.dir/emit.cpp.o"
  "CMakeFiles/ctrtl_hls.dir/emit.cpp.o.d"
  "CMakeFiles/ctrtl_hls.dir/schedule.cpp.o"
  "CMakeFiles/ctrtl_hls.dir/schedule.cpp.o.d"
  "libctrtl_hls.a"
  "libctrtl_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrtl_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
