# Empty dependencies file for ctrtl_hls.
# This may be replaced when dependencies are built.
