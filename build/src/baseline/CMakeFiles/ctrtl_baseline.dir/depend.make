# Empty dependencies file for ctrtl_baseline.
# This may be replaced when dependencies are built.
