file(REMOVE_RECURSE
  "libctrtl_baseline.a"
)
