file(REMOVE_RECURSE
  "CMakeFiles/ctrtl_baseline.dir/clocked_rtl.cpp.o"
  "CMakeFiles/ctrtl_baseline.dir/clocked_rtl.cpp.o.d"
  "CMakeFiles/ctrtl_baseline.dir/handshake.cpp.o"
  "CMakeFiles/ctrtl_baseline.dir/handshake.cpp.o.d"
  "libctrtl_baseline.a"
  "libctrtl_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrtl_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
