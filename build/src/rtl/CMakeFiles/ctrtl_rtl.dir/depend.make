# Empty dependencies file for ctrtl_rtl.
# This may be replaced when dependencies are built.
