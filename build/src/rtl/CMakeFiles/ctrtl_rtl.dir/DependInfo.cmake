
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/controller.cpp" "src/rtl/CMakeFiles/ctrtl_rtl.dir/controller.cpp.o" "gcc" "src/rtl/CMakeFiles/ctrtl_rtl.dir/controller.cpp.o.d"
  "/root/repo/src/rtl/model.cpp" "src/rtl/CMakeFiles/ctrtl_rtl.dir/model.cpp.o" "gcc" "src/rtl/CMakeFiles/ctrtl_rtl.dir/model.cpp.o.d"
  "/root/repo/src/rtl/module.cpp" "src/rtl/CMakeFiles/ctrtl_rtl.dir/module.cpp.o" "gcc" "src/rtl/CMakeFiles/ctrtl_rtl.dir/module.cpp.o.d"
  "/root/repo/src/rtl/modules.cpp" "src/rtl/CMakeFiles/ctrtl_rtl.dir/modules.cpp.o" "gcc" "src/rtl/CMakeFiles/ctrtl_rtl.dir/modules.cpp.o.d"
  "/root/repo/src/rtl/phase.cpp" "src/rtl/CMakeFiles/ctrtl_rtl.dir/phase.cpp.o" "gcc" "src/rtl/CMakeFiles/ctrtl_rtl.dir/phase.cpp.o.d"
  "/root/repo/src/rtl/register.cpp" "src/rtl/CMakeFiles/ctrtl_rtl.dir/register.cpp.o" "gcc" "src/rtl/CMakeFiles/ctrtl_rtl.dir/register.cpp.o.d"
  "/root/repo/src/rtl/transfer_process.cpp" "src/rtl/CMakeFiles/ctrtl_rtl.dir/transfer_process.cpp.o" "gcc" "src/rtl/CMakeFiles/ctrtl_rtl.dir/transfer_process.cpp.o.d"
  "/root/repo/src/rtl/value.cpp" "src/rtl/CMakeFiles/ctrtl_rtl.dir/value.cpp.o" "gcc" "src/rtl/CMakeFiles/ctrtl_rtl.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/ctrtl_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctrtl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
