file(REMOVE_RECURSE
  "CMakeFiles/ctrtl_rtl.dir/controller.cpp.o"
  "CMakeFiles/ctrtl_rtl.dir/controller.cpp.o.d"
  "CMakeFiles/ctrtl_rtl.dir/model.cpp.o"
  "CMakeFiles/ctrtl_rtl.dir/model.cpp.o.d"
  "CMakeFiles/ctrtl_rtl.dir/module.cpp.o"
  "CMakeFiles/ctrtl_rtl.dir/module.cpp.o.d"
  "CMakeFiles/ctrtl_rtl.dir/modules.cpp.o"
  "CMakeFiles/ctrtl_rtl.dir/modules.cpp.o.d"
  "CMakeFiles/ctrtl_rtl.dir/phase.cpp.o"
  "CMakeFiles/ctrtl_rtl.dir/phase.cpp.o.d"
  "CMakeFiles/ctrtl_rtl.dir/register.cpp.o"
  "CMakeFiles/ctrtl_rtl.dir/register.cpp.o.d"
  "CMakeFiles/ctrtl_rtl.dir/transfer_process.cpp.o"
  "CMakeFiles/ctrtl_rtl.dir/transfer_process.cpp.o.d"
  "CMakeFiles/ctrtl_rtl.dir/value.cpp.o"
  "CMakeFiles/ctrtl_rtl.dir/value.cpp.o.d"
  "libctrtl_rtl.a"
  "libctrtl_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrtl_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
