file(REMOVE_RECURSE
  "libctrtl_rtl.a"
)
