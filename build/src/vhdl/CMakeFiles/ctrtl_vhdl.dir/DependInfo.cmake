
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vhdl/ast.cpp" "src/vhdl/CMakeFiles/ctrtl_vhdl.dir/ast.cpp.o" "gcc" "src/vhdl/CMakeFiles/ctrtl_vhdl.dir/ast.cpp.o.d"
  "/root/repo/src/vhdl/elaborator.cpp" "src/vhdl/CMakeFiles/ctrtl_vhdl.dir/elaborator.cpp.o" "gcc" "src/vhdl/CMakeFiles/ctrtl_vhdl.dir/elaborator.cpp.o.d"
  "/root/repo/src/vhdl/emitter.cpp" "src/vhdl/CMakeFiles/ctrtl_vhdl.dir/emitter.cpp.o" "gcc" "src/vhdl/CMakeFiles/ctrtl_vhdl.dir/emitter.cpp.o.d"
  "/root/repo/src/vhdl/lexer.cpp" "src/vhdl/CMakeFiles/ctrtl_vhdl.dir/lexer.cpp.o" "gcc" "src/vhdl/CMakeFiles/ctrtl_vhdl.dir/lexer.cpp.o.d"
  "/root/repo/src/vhdl/parser.cpp" "src/vhdl/CMakeFiles/ctrtl_vhdl.dir/parser.cpp.o" "gcc" "src/vhdl/CMakeFiles/ctrtl_vhdl.dir/parser.cpp.o.d"
  "/root/repo/src/vhdl/subset_check.cpp" "src/vhdl/CMakeFiles/ctrtl_vhdl.dir/subset_check.cpp.o" "gcc" "src/vhdl/CMakeFiles/ctrtl_vhdl.dir/subset_check.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transfer/CMakeFiles/ctrtl_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ctrtl_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ctrtl_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctrtl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
