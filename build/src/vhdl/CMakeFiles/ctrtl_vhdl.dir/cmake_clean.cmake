file(REMOVE_RECURSE
  "CMakeFiles/ctrtl_vhdl.dir/ast.cpp.o"
  "CMakeFiles/ctrtl_vhdl.dir/ast.cpp.o.d"
  "CMakeFiles/ctrtl_vhdl.dir/elaborator.cpp.o"
  "CMakeFiles/ctrtl_vhdl.dir/elaborator.cpp.o.d"
  "CMakeFiles/ctrtl_vhdl.dir/emitter.cpp.o"
  "CMakeFiles/ctrtl_vhdl.dir/emitter.cpp.o.d"
  "CMakeFiles/ctrtl_vhdl.dir/lexer.cpp.o"
  "CMakeFiles/ctrtl_vhdl.dir/lexer.cpp.o.d"
  "CMakeFiles/ctrtl_vhdl.dir/parser.cpp.o"
  "CMakeFiles/ctrtl_vhdl.dir/parser.cpp.o.d"
  "CMakeFiles/ctrtl_vhdl.dir/subset_check.cpp.o"
  "CMakeFiles/ctrtl_vhdl.dir/subset_check.cpp.o.d"
  "libctrtl_vhdl.a"
  "libctrtl_vhdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrtl_vhdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
