# Empty compiler generated dependencies file for ctrtl_vhdl.
# This may be replaced when dependencies are built.
