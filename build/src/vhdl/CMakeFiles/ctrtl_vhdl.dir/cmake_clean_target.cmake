file(REMOVE_RECURSE
  "libctrtl_vhdl.a"
)
