# Empty dependencies file for ctrtl_kernel.
# This may be replaced when dependencies are built.
