file(REMOVE_RECURSE
  "libctrtl_kernel.a"
)
