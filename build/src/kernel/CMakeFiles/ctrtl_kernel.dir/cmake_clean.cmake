file(REMOVE_RECURSE
  "CMakeFiles/ctrtl_kernel.dir/process.cpp.o"
  "CMakeFiles/ctrtl_kernel.dir/process.cpp.o.d"
  "CMakeFiles/ctrtl_kernel.dir/scheduler.cpp.o"
  "CMakeFiles/ctrtl_kernel.dir/scheduler.cpp.o.d"
  "CMakeFiles/ctrtl_kernel.dir/signal.cpp.o"
  "CMakeFiles/ctrtl_kernel.dir/signal.cpp.o.d"
  "libctrtl_kernel.a"
  "libctrtl_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrtl_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
