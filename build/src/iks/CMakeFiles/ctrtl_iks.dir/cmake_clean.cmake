file(REMOVE_RECURSE
  "CMakeFiles/ctrtl_iks.dir/golden.cpp.o"
  "CMakeFiles/ctrtl_iks.dir/golden.cpp.o.d"
  "CMakeFiles/ctrtl_iks.dir/microcode.cpp.o"
  "CMakeFiles/ctrtl_iks.dir/microcode.cpp.o.d"
  "CMakeFiles/ctrtl_iks.dir/program.cpp.o"
  "CMakeFiles/ctrtl_iks.dir/program.cpp.o.d"
  "CMakeFiles/ctrtl_iks.dir/resources.cpp.o"
  "CMakeFiles/ctrtl_iks.dir/resources.cpp.o.d"
  "libctrtl_iks.a"
  "libctrtl_iks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrtl_iks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
