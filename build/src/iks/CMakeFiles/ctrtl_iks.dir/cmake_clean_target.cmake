file(REMOVE_RECURSE
  "libctrtl_iks.a"
)
