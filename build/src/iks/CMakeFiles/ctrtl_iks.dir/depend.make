# Empty dependencies file for ctrtl_iks.
# This may be replaced when dependencies are built.
