
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iks/golden.cpp" "src/iks/CMakeFiles/ctrtl_iks.dir/golden.cpp.o" "gcc" "src/iks/CMakeFiles/ctrtl_iks.dir/golden.cpp.o.d"
  "/root/repo/src/iks/microcode.cpp" "src/iks/CMakeFiles/ctrtl_iks.dir/microcode.cpp.o" "gcc" "src/iks/CMakeFiles/ctrtl_iks.dir/microcode.cpp.o.d"
  "/root/repo/src/iks/program.cpp" "src/iks/CMakeFiles/ctrtl_iks.dir/program.cpp.o" "gcc" "src/iks/CMakeFiles/ctrtl_iks.dir/program.cpp.o.d"
  "/root/repo/src/iks/resources.cpp" "src/iks/CMakeFiles/ctrtl_iks.dir/resources.cpp.o" "gcc" "src/iks/CMakeFiles/ctrtl_iks.dir/resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transfer/CMakeFiles/ctrtl_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ctrtl_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctrtl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ctrtl_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
