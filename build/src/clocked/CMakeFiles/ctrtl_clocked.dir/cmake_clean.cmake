file(REMOVE_RECURSE
  "CMakeFiles/ctrtl_clocked.dir/model.cpp.o"
  "CMakeFiles/ctrtl_clocked.dir/model.cpp.o.d"
  "CMakeFiles/ctrtl_clocked.dir/translate.cpp.o"
  "CMakeFiles/ctrtl_clocked.dir/translate.cpp.o.d"
  "libctrtl_clocked.a"
  "libctrtl_clocked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrtl_clocked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
