file(REMOVE_RECURSE
  "libctrtl_clocked.a"
)
