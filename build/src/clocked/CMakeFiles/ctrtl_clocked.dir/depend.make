# Empty dependencies file for ctrtl_clocked.
# This may be replaced when dependencies are built.
