
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/dataflow.cpp" "src/verify/CMakeFiles/ctrtl_verify.dir/dataflow.cpp.o" "gcc" "src/verify/CMakeFiles/ctrtl_verify.dir/dataflow.cpp.o.d"
  "/root/repo/src/verify/equivalence.cpp" "src/verify/CMakeFiles/ctrtl_verify.dir/equivalence.cpp.o" "gcc" "src/verify/CMakeFiles/ctrtl_verify.dir/equivalence.cpp.o.d"
  "/root/repo/src/verify/random_design.cpp" "src/verify/CMakeFiles/ctrtl_verify.dir/random_design.cpp.o" "gcc" "src/verify/CMakeFiles/ctrtl_verify.dir/random_design.cpp.o.d"
  "/root/repo/src/verify/semantics.cpp" "src/verify/CMakeFiles/ctrtl_verify.dir/semantics.cpp.o" "gcc" "src/verify/CMakeFiles/ctrtl_verify.dir/semantics.cpp.o.d"
  "/root/repo/src/verify/trace.cpp" "src/verify/CMakeFiles/ctrtl_verify.dir/trace.cpp.o" "gcc" "src/verify/CMakeFiles/ctrtl_verify.dir/trace.cpp.o.d"
  "/root/repo/src/verify/vcd.cpp" "src/verify/CMakeFiles/ctrtl_verify.dir/vcd.cpp.o" "gcc" "src/verify/CMakeFiles/ctrtl_verify.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hls/CMakeFiles/ctrtl_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/ctrtl_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ctrtl_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctrtl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ctrtl_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
