file(REMOVE_RECURSE
  "libctrtl_verify.a"
)
