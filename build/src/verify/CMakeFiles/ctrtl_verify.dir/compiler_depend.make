# Empty compiler generated dependencies file for ctrtl_verify.
# This may be replaced when dependencies are built.
