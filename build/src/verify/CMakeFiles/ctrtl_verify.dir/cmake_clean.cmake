file(REMOVE_RECURSE
  "CMakeFiles/ctrtl_verify.dir/dataflow.cpp.o"
  "CMakeFiles/ctrtl_verify.dir/dataflow.cpp.o.d"
  "CMakeFiles/ctrtl_verify.dir/equivalence.cpp.o"
  "CMakeFiles/ctrtl_verify.dir/equivalence.cpp.o.d"
  "CMakeFiles/ctrtl_verify.dir/random_design.cpp.o"
  "CMakeFiles/ctrtl_verify.dir/random_design.cpp.o.d"
  "CMakeFiles/ctrtl_verify.dir/semantics.cpp.o"
  "CMakeFiles/ctrtl_verify.dir/semantics.cpp.o.d"
  "CMakeFiles/ctrtl_verify.dir/trace.cpp.o"
  "CMakeFiles/ctrtl_verify.dir/trace.cpp.o.d"
  "CMakeFiles/ctrtl_verify.dir/vcd.cpp.o"
  "CMakeFiles/ctrtl_verify.dir/vcd.cpp.o.d"
  "libctrtl_verify.a"
  "libctrtl_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrtl_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
