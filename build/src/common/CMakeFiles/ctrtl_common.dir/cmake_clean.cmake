file(REMOVE_RECURSE
  "CMakeFiles/ctrtl_common.dir/diagnostics.cpp.o"
  "CMakeFiles/ctrtl_common.dir/diagnostics.cpp.o.d"
  "CMakeFiles/ctrtl_common.dir/fixed_point.cpp.o"
  "CMakeFiles/ctrtl_common.dir/fixed_point.cpp.o.d"
  "libctrtl_common.a"
  "libctrtl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrtl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
