# Empty dependencies file for ctrtl_common.
# This may be replaced when dependencies are built.
