file(REMOVE_RECURSE
  "libctrtl_common.a"
)
