# Empty compiler generated dependencies file for ctrtl_sim.
# This may be replaced when dependencies are built.
