file(REMOVE_RECURSE
  "CMakeFiles/ctrtl_sim.dir/ctrtl_sim.cpp.o"
  "CMakeFiles/ctrtl_sim.dir/ctrtl_sim.cpp.o.d"
  "ctrtl_sim"
  "ctrtl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrtl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
