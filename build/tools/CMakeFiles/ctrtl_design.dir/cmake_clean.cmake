file(REMOVE_RECURSE
  "CMakeFiles/ctrtl_design.dir/ctrtl_design.cpp.o"
  "CMakeFiles/ctrtl_design.dir/ctrtl_design.cpp.o.d"
  "ctrtl_design"
  "ctrtl_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrtl_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
