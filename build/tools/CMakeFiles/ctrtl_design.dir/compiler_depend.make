# Empty compiler generated dependencies file for ctrtl_design.
# This may be replaced when dependencies are built.
