# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_ctrtl_sim_example "/root/repo/build/tools/ctrtl_sim" "/root/repo/examples/vhdl/example.vhd" "--top" "example")
set_tests_properties(tool_ctrtl_sim_example PROPERTIES  PASS_REGULAR_EXPRESSION "42 delta cycles" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_ctrtl_design_fig1 "/root/repo/build/tools/ctrtl_design" "/root/repo/examples/rtd/fig1.rtd" "--analyze" "--dataflow" "--simulate")
set_tests_properties(tool_ctrtl_design_fig1 PROPERTIES  PASS_REGULAR_EXPRESSION "R1           42" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
