# Empty compiler generated dependencies file for bench_tuple_mapping.
# This may be replaced when dependencies are built.
