file(REMOVE_RECURSE
  "CMakeFiles/bench_tuple_mapping.dir/bench_tuple_mapping.cpp.o"
  "CMakeFiles/bench_tuple_mapping.dir/bench_tuple_mapping.cpp.o.d"
  "bench_tuple_mapping"
  "bench_tuple_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tuple_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
