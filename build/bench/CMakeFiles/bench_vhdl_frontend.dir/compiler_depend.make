# Empty compiler generated dependencies file for bench_vhdl_frontend.
# This may be replaced when dependencies are built.
