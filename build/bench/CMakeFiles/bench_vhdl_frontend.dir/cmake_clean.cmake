file(REMOVE_RECURSE
  "CMakeFiles/bench_vhdl_frontend.dir/bench_vhdl_frontend.cpp.o"
  "CMakeFiles/bench_vhdl_frontend.dir/bench_vhdl_frontend.cpp.o.d"
  "bench_vhdl_frontend"
  "bench_vhdl_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vhdl_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
