# Empty dependencies file for bench_iks.
# This may be replaced when dependencies are built.
