file(REMOVE_RECURSE
  "CMakeFiles/bench_iks.dir/bench_iks.cpp.o"
  "CMakeFiles/bench_iks.dir/bench_iks.cpp.o.d"
  "bench_iks"
  "bench_iks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
