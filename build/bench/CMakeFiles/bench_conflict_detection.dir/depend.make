# Empty dependencies file for bench_conflict_detection.
# This may be replaced when dependencies are built.
