file(REMOVE_RECURSE
  "CMakeFiles/bench_conflict_detection.dir/bench_conflict_detection.cpp.o"
  "CMakeFiles/bench_conflict_detection.dir/bench_conflict_detection.cpp.o.d"
  "bench_conflict_detection"
  "bench_conflict_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conflict_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
