# Empty compiler generated dependencies file for bench_vs_clocked.
# This may be replaced when dependencies are built.
