file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_clocked.dir/bench_vs_clocked.cpp.o"
  "CMakeFiles/bench_vs_clocked.dir/bench_vs_clocked.cpp.o.d"
  "bench_vs_clocked"
  "bench_vs_clocked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_clocked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
