file(REMOVE_RECURSE
  "CMakeFiles/bench_clocked_translation.dir/bench_clocked_translation.cpp.o"
  "CMakeFiles/bench_clocked_translation.dir/bench_clocked_translation.cpp.o.d"
  "bench_clocked_translation"
  "bench_clocked_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clocked_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
