# Empty compiler generated dependencies file for bench_fig1_transfer.
# This may be replaced when dependencies are built.
