file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_handshake.dir/bench_vs_handshake.cpp.o"
  "CMakeFiles/bench_vs_handshake.dir/bench_vs_handshake.cpp.o.d"
  "bench_vs_handshake"
  "bench_vs_handshake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
