# Empty dependencies file for bench_vs_handshake.
# This may be replaced when dependencies are built.
