file(REMOVE_RECURSE
  "CMakeFiles/bench_hls.dir/bench_hls.cpp.o"
  "CMakeFiles/bench_hls.dir/bench_hls.cpp.o.d"
  "bench_hls"
  "bench_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
