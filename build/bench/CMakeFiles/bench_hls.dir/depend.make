# Empty dependencies file for bench_hls.
# This may be replaced when dependencies are built.
