#include <gtest/gtest.h>

#include <random>

#include "hls/allocate.h"
#include "hls/emit.h"
#include "hls/schedule.h"
#include "transfer/build.h"
#include "transfer/conflict.h"
#include "verify/equivalence.h"

namespace ctrtl::hls {
namespace {

Dfg sample_dfg() {
  // out = (a + b) * (a - 3)
  Dfg dfg;
  dfg.add_input("a");
  dfg.add_input("b");
  const std::size_t sum = dfg.add_node(
      OpKind::kAdd, {ValueRef::of_input("a"), ValueRef::of_input("b")});
  const std::size_t diff = dfg.add_node(
      OpKind::kSub, {ValueRef::of_input("a"), ValueRef::of_constant(3)});
  const std::size_t product = dfg.add_node(
      OpKind::kMul, {ValueRef::of_node(sum), ValueRef::of_node(diff)});
  dfg.mark_output("out", ValueRef::of_node(product));
  return dfg;
}

TEST(Schedule, AsapRespectsDependencies) {
  const Dfg dfg = sample_dfg();
  const auto steps = asap(dfg, default_resources());
  EXPECT_EQ(steps.at(0), 1u);
  EXPECT_EQ(steps.at(1), 1u);
  // Node 2 consumes node 0 (ALU latency 1, written step 2): start >= 3.
  EXPECT_EQ(steps.at(2), 3u);
}

TEST(Schedule, AlapMeetsDeadline) {
  const Dfg dfg = sample_dfg();
  const Resources resources = default_resources();
  const auto steps = alap(dfg, resources, 10);
  // MUL latency 2: node 2 must start by step 8.
  EXPECT_EQ(steps.at(2), 8u);
  EXPECT_LE(steps.at(0), 6u);
  EXPECT_THROW(alap(dfg, resources, 1), std::invalid_argument);
}

TEST(Schedule, ListScheduleSerializesOnOneAlu) {
  const Dfg dfg = sample_dfg();
  const Scheduled schedule = list_schedule(dfg, default_resources());
  // Two ALU ops contend for the single ALU: one at step 1, one at step 2.
  const unsigned s0 = schedule.op_for(0).start;
  const unsigned s1 = schedule.op_for(1).start;
  EXPECT_NE(s0, s1);
  EXPECT_EQ(std::min(s0, s1), 1u);
  EXPECT_EQ(std::max(s0, s1), 2u);
  // MUL starts after both operands are available.
  EXPECT_GE(schedule.op_for(2).start, std::max(s0, s1) + 2);
  EXPECT_EQ(schedule.makespan, schedule.op_for(2).finish);
}

TEST(Schedule, UnsupportedOpThrows) {
  Dfg dfg;
  dfg.add_input("x");
  dfg.add_node(OpKind::kMul, {ValueRef::of_input("x"), ValueRef::of_input("x")});
  Resources alu_only{{UnitSpec{"ALU", transfer::ModuleKind::kAlu, 1}}};
  EXPECT_THROW(list_schedule(dfg, alu_only), std::invalid_argument);
}

TEST(Allocate, LifetimesSpanDefToLastUse) {
  const Dfg dfg = sample_dfg();
  const Scheduled schedule = list_schedule(dfg, default_resources());
  const auto lives = lifetimes(dfg, schedule);
  EXPECT_EQ(lives.at(0).def, schedule.op_for(0).finish);
  EXPECT_EQ(lives.at(0).last_use, schedule.op_for(2).start);
  // Output values outlive the whole schedule (read after the run).
  EXPECT_EQ(lives.at(2).last_use, schedule.makespan + 1);
}

TEST(Allocate, RegistersSharedWhenLifetimesDisjoint) {
  // Long chain: v(i+1) = v(i) + 1 — every intermediate dies immediately, so
  // left-edge should reuse a small number of registers.
  Dfg dfg;
  dfg.add_input("x");
  ValueRef last = ValueRef::of_input("x");
  for (int i = 0; i < 10; ++i) {
    last = ValueRef::of_node(
        dfg.add_node(OpKind::kAdd, {last, ValueRef::of_constant(1)}));
  }
  dfg.mark_output("out", last);
  const Scheduled schedule = list_schedule(dfg, default_resources());
  const Allocation allocation = allocate_registers(dfg, schedule);
  EXPECT_LE(allocation.num_registers, 2u)
      << "chain values have disjoint lifetimes";
}

TEST(Flow, SampleSynthesisSimulatesCorrectly) {
  const Dfg dfg = sample_dfg();
  const EmitResult emitted = synthesize(dfg, default_resources(), "sample");

  common::DiagnosticBag diags;
  ASSERT_TRUE(transfer::validate(emitted.design, diags)) << diags.to_text();
  EXPECT_TRUE(transfer::analyze(emitted.design).clean());

  auto model = transfer::build_model(emitted.design);
  model->set_input("a", rtl::RtValue::of(10));
  model->set_input("b", rtl::RtValue::of(2));
  const rtl::RunResult result = model->run();
  EXPECT_TRUE(result.conflict_free());

  const auto expected = evaluate(dfg, {{"a", 10}, {"b", 2}});
  const std::string& out_reg = emitted.output_registers.at("out");
  EXPECT_EQ(model->find_register(out_reg)->value(),
            rtl::RtValue::of(expected.at("out")));
}

// Random DFGs through the whole flow: schedule must be conflict-free and
// the simulated design must agree with the algorithmic-level evaluation —
// the paper's "bottom-up evaluation ... to find a link to more abstract
// descriptions".
class HlsFlowProperty : public ::testing::TestWithParam<int> {};

Dfg random_dfg(std::mt19937& rng, unsigned num_ops) {
  Dfg dfg;
  dfg.add_input("x");
  dfg.add_input("y");
  std::vector<ValueRef> pool = {ValueRef::of_input("x"), ValueRef::of_input("y"),
                                ValueRef::of_constant(3),
                                ValueRef::of_constant(-2)};
  std::uniform_int_distribution<int> op_pick(0, 5);
  // Multiplications only on fresh inputs/constants to bound magnitudes.
  for (unsigned i = 0; i < num_ops; ++i) {
    std::uniform_int_distribution<std::size_t> arg_pick(0, pool.size() - 1);
    const int which = op_pick(rng);
    std::size_t node = 0;
    switch (which) {
      case 0:
        node = dfg.add_node(OpKind::kAdd, {pool[arg_pick(rng)], pool[arg_pick(rng)]});
        break;
      case 1:
        node = dfg.add_node(OpKind::kSub, {pool[arg_pick(rng)], pool[arg_pick(rng)]});
        break;
      case 2:
        node = dfg.add_node(OpKind::kMul, {ValueRef::of_input("x"),
                                           ValueRef::of_constant(3)});
        break;
      case 3:
        node = dfg.add_node(OpKind::kMin, {pool[arg_pick(rng)], pool[arg_pick(rng)]});
        break;
      case 4:
        node = dfg.add_node(OpKind::kMax, {pool[arg_pick(rng)], pool[arg_pick(rng)]});
        break;
      default:
        node = dfg.add_node(OpKind::kNeg, {pool[arg_pick(rng)]});
        break;
    }
    pool.push_back(ValueRef::of_node(node));
  }
  dfg.mark_output("out", pool.back());
  dfg.mark_output("first", ValueRef::of_node(0));
  return dfg;
}

TEST_P(HlsFlowProperty, SimulationMatchesAlgorithmicEvaluation) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 77);
  const unsigned num_ops = 3 + static_cast<unsigned>(GetParam()) % 9;
  const Dfg dfg = random_dfg(rng, num_ops);
  const EmitResult emitted = synthesize(dfg, default_resources(), "rand");

  EXPECT_TRUE(transfer::analyze(emitted.design).clean())
      << "HLS must emit conflict-free schedules (seed " << GetParam() << ")";

  const std::map<std::string, std::int64_t> inputs = {{"x", 5}, {"y", -7}};
  const auto expected = evaluate(dfg, inputs);

  auto model = transfer::build_model(emitted.design);
  for (const auto& [name, value] : inputs) {
    model->set_input(name, rtl::RtValue::of(value));
  }
  const rtl::RunResult result = model->run();
  EXPECT_TRUE(result.conflict_free()) << "seed " << GetParam();

  for (const auto& [out_name, reg] : emitted.output_registers) {
    EXPECT_EQ(model->find_register(reg)->value(),
              rtl::RtValue::of(expected.at(out_name)))
        << "output " << out_name << " (seed " << GetParam() << ")";
  }
  // The reference semantics agrees too (full consistency chain).
  const verify::CheckReport report = verify::check_consistency(
      emitted.design, inputs);
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HlsFlowProperty, ::testing::Range(1, 26));

}  // namespace
}  // namespace ctrtl::hls
