#include "hls/dfg.h"

#include <gtest/gtest.h>

namespace ctrtl::hls {
namespace {

Dfg sample_dfg() {
  // out = (a + b) * (a - 3)
  Dfg dfg;
  dfg.add_input("a");
  dfg.add_input("b");
  const std::size_t sum = dfg.add_node(
      OpKind::kAdd, {ValueRef::of_input("a"), ValueRef::of_input("b")});
  const std::size_t diff = dfg.add_node(
      OpKind::kSub, {ValueRef::of_input("a"), ValueRef::of_constant(3)});
  const std::size_t product = dfg.add_node(
      OpKind::kMul, {ValueRef::of_node(sum), ValueRef::of_node(diff)});
  dfg.mark_output("out", ValueRef::of_node(product));
  return dfg;
}

TEST(Dfg, BuildAndInspect) {
  const Dfg dfg = sample_dfg();
  EXPECT_EQ(dfg.inputs().size(), 2u);
  EXPECT_EQ(dfg.nodes().size(), 3u);
  EXPECT_EQ(dfg.outputs().size(), 1u);
  common::DiagnosticBag diags;
  EXPECT_TRUE(dfg.validate(diags));
}

TEST(Dfg, EvaluateReference) {
  const auto outputs = evaluate(sample_dfg(), {{"a", 10}, {"b", 2}});
  EXPECT_EQ(outputs.at("out"), (10 + 2) * (10 - 3));
}

TEST(Dfg, EvaluateAllOps) {
  Dfg dfg;
  dfg.add_input("x");
  const auto x = ValueRef::of_input("x");
  dfg.mark_output("add", ValueRef::of_node(dfg.add_node(OpKind::kAdd, {x, ValueRef::of_constant(1)})));
  dfg.mark_output("sub", ValueRef::of_node(dfg.add_node(OpKind::kSub, {x, ValueRef::of_constant(1)})));
  dfg.mark_output("mul", ValueRef::of_node(dfg.add_node(OpKind::kMul, {x, ValueRef::of_constant(3)})));
  dfg.mark_output("min", ValueRef::of_node(dfg.add_node(OpKind::kMin, {x, ValueRef::of_constant(5)})));
  dfg.mark_output("max", ValueRef::of_node(dfg.add_node(OpKind::kMax, {x, ValueRef::of_constant(5)})));
  dfg.mark_output("neg", ValueRef::of_node(dfg.add_node(OpKind::kNeg, {x})));
  dfg.mark_output("copy", ValueRef::of_node(dfg.add_node(OpKind::kCopy, {x})));
  const auto out = evaluate(dfg, {{"x", 7}});
  EXPECT_EQ(out.at("add"), 8);
  EXPECT_EQ(out.at("sub"), 6);
  EXPECT_EQ(out.at("mul"), 21);
  EXPECT_EQ(out.at("min"), 5);
  EXPECT_EQ(out.at("max"), 7);
  EXPECT_EQ(out.at("neg"), -7);
  EXPECT_EQ(out.at("copy"), 7);
}

TEST(Dfg, ArityChecked) {
  Dfg dfg;
  dfg.add_input("x");
  EXPECT_THROW(dfg.add_node(OpKind::kAdd, {ValueRef::of_input("x")}),
               std::invalid_argument);
  EXPECT_THROW(dfg.add_node(OpKind::kNeg, {ValueRef::of_input("x"),
                                           ValueRef::of_input("x")}),
               std::invalid_argument);
}

TEST(Dfg, ForwardReferencesRejected) {
  Dfg dfg;
  dfg.add_input("x");
  EXPECT_THROW(
      dfg.add_node(OpKind::kNeg, {ValueRef::of_node(5)}), std::invalid_argument);
  EXPECT_THROW(dfg.mark_output("o", ValueRef::of_node(5)), std::invalid_argument);
  EXPECT_THROW(dfg.add_node(OpKind::kNeg, {ValueRef::of_input("nope")}),
               std::invalid_argument);
}

TEST(Dfg, DuplicateInputRejected) {
  Dfg dfg;
  dfg.add_input("x");
  EXPECT_THROW(dfg.add_input("x"), std::invalid_argument);
}

TEST(Dfg, ValidateRejectsEmpty) {
  Dfg dfg;
  common::DiagnosticBag diags;
  EXPECT_FALSE(dfg.validate(diags));
}

TEST(Dfg, EvaluateMissingInputThrows) {
  EXPECT_THROW(evaluate(sample_dfg(), {{"a", 1}}), std::invalid_argument);
}

TEST(Dfg, OpKindNamesAndArity) {
  EXPECT_EQ(to_string(OpKind::kMul), "mul");
  EXPECT_EQ(arity(OpKind::kNeg), 1u);
  EXPECT_EQ(arity(OpKind::kMax), 2u);
  EXPECT_EQ(to_string(ValueRef::of_input("a")), "$a");
  EXPECT_EQ(to_string(ValueRef::of_constant(-4)), "-4");
  EXPECT_EQ(to_string(ValueRef::of_node(2)), "n2");
}

}  // namespace
}  // namespace ctrtl::hls
