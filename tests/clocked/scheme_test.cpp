#include <gtest/gtest.h>

#include "clocked/model.h"
#include "transfer/build.h"
#include "verify/equivalence.h"
#include "verify/random_design.h"

namespace ctrtl::clocked {
namespace {

// The paper: "The choice of a specific control step implementation also
// influences the implementation of registers and modules" — several clock
// schemes realize one abstract model. Both shipped schemes must produce the
// same observable behaviour as each other and as the clock-free model.

class ClockSchemeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ClockSchemeEquivalence, OneAndTwoCycleSchemesAgree) {
  verify::RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(GetParam()) + 6000;
  options.num_transfers = 4 + static_cast<unsigned>(GetParam() % 6);
  options.use_alu = GetParam() % 2 == 0;
  const transfer::Design design = verify::random_design(options);
  const TranslationPlan plan = plan_translation(design);

  auto abstract = transfer::build_model(design);
  verify::RegisterWriteTrace abstract_trace(*abstract);
  ASSERT_TRUE(abstract->run().conflict_free());

  ClockedModel one_cycle(plan, 1'000'000, ClockScheme::kOneCyclePerStep);
  const ClockedModel::Result one_result = one_cycle.run();
  ClockedModel two_cycle(plan, 1'000'000, ClockScheme::kTwoCyclesPerStep);
  const ClockedModel::Result two_result = two_cycle.run();

  EXPECT_EQ(two_result.clock_cycles, 2 * one_result.clock_cycles)
      << "the two-phase scheme pays twice the cycles";

  EXPECT_TRUE(verify::compare_write_traces(abstract_trace.writes(),
                                           one_cycle.writes(),
                                           /*ignore_preload=*/true)
                  .consistent());
  EXPECT_TRUE(verify::compare_write_traces(one_cycle.writes(),
                                           two_cycle.writes())
                  .consistent())
      << "seed " << GetParam();
  for (const transfer::RegisterDecl& reg : design.registers) {
    EXPECT_EQ(one_cycle.register_value(reg.name),
              two_cycle.register_value(reg.name))
        << reg.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockSchemeEquivalence, ::testing::Range(1, 16));

TEST(ClockScheme, TwoPhaseConsumesTwiceThePhysicalTime) {
  verify::RandomDesignOptions options;
  options.seed = 1;
  const transfer::Design design = verify::random_design(options);
  const TranslationPlan plan = plan_translation(design);
  ClockedModel one_cycle(plan, 1'000'000, ClockScheme::kOneCyclePerStep);
  ClockedModel two_cycle(plan, 1'000'000, ClockScheme::kTwoCyclesPerStep);
  const auto r1 = one_cycle.run();
  const auto r2 = two_cycle.run();
  EXPECT_EQ(r2.elapsed_fs, 2 * r1.elapsed_fs);
}

}  // namespace
}  // namespace ctrtl::clocked
