#include "clocked/model.h"

#include <gtest/gtest.h>

#include "transfer/build.h"
#include "verify/equivalence.h"
#include "verify/random_design.h"

namespace ctrtl::clocked {
namespace {

using transfer::Design;
using transfer::ModuleKind;
using transfer::RegisterTransfer;

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

TEST(ClockedModel, Fig1ComputesSameResult) {
  const Design d = fig1_design();
  const TranslationPlan plan = plan_translation(d);
  ClockedModel model(plan);
  const ClockedModel::Result result = model.run();
  EXPECT_EQ(model.register_value("R1"), rtl::RtValue::of(42));
  EXPECT_EQ(model.register_value("R2"), rtl::RtValue::of(12));
  EXPECT_EQ(result.clock_cycles, 8u);
  EXPECT_GT(result.elapsed_fs, 0u) << "the clocked model consumes physical time";
}

TEST(ClockedModel, WriteTraceTagsSteps) {
  const Design d = fig1_design();
  ClockedModel model(plan_translation(d));
  model.run();
  ASSERT_EQ(model.writes().size(), 1u);
  EXPECT_EQ(model.writes()[0],
            (verify::RegisterWrite{6, "R1", rtl::RtValue::of(42)}));
}

TEST(ClockedModel, PipelinedMultiplierLatency) {
  Design d;
  d.cs_max = 6;
  d.registers = {{"A", 6}, {"B", 7}, {"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"MUL", ModuleKind::kMul, 2, 0}};
  d.transfers = {
      RegisterTransfer::full("A", "B1", "B", "B2", 1, "MUL", 3, "B1", "OUT")};
  ClockedModel model(plan_translation(d));
  model.run();
  EXPECT_EQ(model.register_value("OUT"), rtl::RtValue::of(42));
}

TEST(ClockedModel, InputsWork) {
  Design d;
  d.cs_max = 3;
  d.registers = {{"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.inputs = {{"x_in"}, {"y_in"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  RegisterTransfer t;
  t.operand_a = transfer::OperandPath{transfer::Endpoint::input("x_in"), "B1"};
  t.operand_b = transfer::OperandPath{transfer::Endpoint::input("y_in"), "B2"};
  t.read_step = 1;
  t.module = "ADD";
  t.write_step = 2;
  t.write_bus = "B1";
  t.destination = "OUT";
  d.transfers = {t};
  ClockedModel model(plan_translation(d));
  model.set_input("x_in", rtl::RtValue::of(20));
  model.set_input("y_in", rtl::RtValue::of(22));
  model.run();
  EXPECT_EQ(model.register_value("OUT"), rtl::RtValue::of(42));
}

TEST(ClockedModel, UnknownNamesThrow) {
  ClockedModel model(plan_translation(fig1_design()));
  EXPECT_THROW(model.register_value("X"), std::invalid_argument);
  EXPECT_THROW(model.set_input("X", rtl::RtValue::of(1)), std::invalid_argument);
}

// --- E7: abstract vs clocked equivalence --------------------------------------
// The paper: "The transformation into a usual synthesizable RT description
// based on clock signals can be performed automatically." The observable
// register-write traces of the two implementations must match exactly.

class AbstractClockedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AbstractClockedEquivalence, WriteTracesMatch) {
  verify::RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(GetParam());
  options.num_transfers = 4 + static_cast<unsigned>(GetParam() % 8);
  options.use_alu = GetParam() % 3 == 0;
  const Design design = verify::random_design(options);

  // Abstract clock-free execution.
  auto abstract = transfer::build_model(design);
  verify::RegisterWriteTrace abstract_trace(*abstract);
  const rtl::RunResult abstract_result = abstract->run();
  ASSERT_TRUE(abstract_result.conflict_free());

  // Clocked execution of the translated design.
  ClockedModel model(plan_translation(design));
  model.run();

  const verify::CheckReport report = verify::compare_write_traces(
      abstract_trace.writes(), model.writes(), /*ignore_preload=*/true);
  EXPECT_TRUE(report.consistent()) << "seed " << GetParam() << ":\n"
                                   << report.to_text();

  // And the final register contents agree.
  for (const transfer::RegisterDecl& reg : design.registers) {
    EXPECT_EQ(abstract->find_register(reg.name)->value(),
              model.register_value(reg.name))
        << "register " << reg.name << " (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbstractClockedEquivalence, ::testing::Range(1, 26));

}  // namespace
}  // namespace ctrtl::clocked
