#include "clocked/translate.h"

#include <gtest/gtest.h>

namespace ctrtl::clocked {
namespace {

using transfer::Design;
using transfer::ModuleKind;
using transfer::RegisterTransfer;

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

TEST(PlanTranslation, Fig1MuxTables) {
  const Design d = fig1_design();
  const TranslationPlan plan = plan_translation(d);
  EXPECT_EQ(plan.clock_cycles, 8u);  // cs_max + 1

  ASSERT_TRUE(plan.module_schedule.contains("ADD"));
  const auto& add_schedule = plan.module_schedule.at("ADD");
  ASSERT_TRUE(add_schedule.contains(5));
  const ModuleActivation& activation = add_schedule.at(5);
  ASSERT_EQ(activation.operands.size(), 2u);
  EXPECT_EQ(activation.operands[0],
            (OperandSelect{0, transfer::Endpoint::register_out("R1")}));
  EXPECT_EQ(activation.operands[1],
            (OperandSelect{1, transfer::Endpoint::register_out("R2")}));
  EXPECT_FALSE(activation.op.has_value());

  ASSERT_TRUE(plan.register_schedule.contains("R1"));
  EXPECT_EQ(plan.register_schedule.at("R1"),
            (std::vector<WriteSelect>{{6, "ADD"}}));
}

TEST(PlanTranslation, RejectsConflictingSchedule) {
  Design d = fig1_design();
  d.transfers[0].operand_b->bus = "B1";  // bus double-booked
  try {
    plan_translation(d);
    FAIL() << "expected rejection";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("resource conflicts"),
              std::string::npos);
  }
}

TEST(PlanTranslation, RejectsInvalidDesign) {
  Design d = fig1_design();
  d.transfers[0].module = "NOPE";
  EXPECT_THROW(plan_translation(d), std::invalid_argument);
}

TEST(PlanTranslation, WriteMuxSortedByStep) {
  Design d = fig1_design();
  d.cs_max = 10;
  d.transfers.push_back(
      RegisterTransfer::full("R1", "B1", "R2", "B2", 8, "ADD", 9, "B1", "R1"));
  d.transfers.push_back(
      RegisterTransfer::full("R1", "B1", "R2", "B2", 2, "ADD", 3, "B1", "R1"));
  const TranslationPlan plan = plan_translation(d);
  const auto& writes = plan.register_schedule.at("R1");
  ASSERT_EQ(writes.size(), 3u);
  EXPECT_EQ(writes[0].step, 3u);
  EXPECT_EQ(writes[1].step, 6u);
  EXPECT_EQ(writes[2].step, 9u);
}

TEST(PlanTranslation, ToTextMentionsEverything) {
  const TranslationPlan plan = plan_translation(fig1_design());
  const std::string text = plan.to_text();
  EXPECT_NE(text.find("clock cycles: 8"), std::string::npos);
  EXPECT_NE(text.find("ADD reads"), std::string::npos);
  EXPECT_NE(text.find("R1 <= ADD.out"), std::string::npos);
}

}  // namespace
}  // namespace ctrtl::clocked
