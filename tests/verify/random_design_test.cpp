#include "verify/random_design.h"

#include <gtest/gtest.h>

#include "transfer/build.h"
#include "transfer/conflict.h"

namespace ctrtl::verify {
namespace {

TEST(RandomDesign, ValidatesByConstruction) {
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    RandomDesignOptions options;
    options.seed = seed;
    options.num_transfers = 6;
    options.use_alu = seed % 2 == 0;
    const transfer::Design design = random_design(options);
    common::DiagnosticBag diags;
    EXPECT_TRUE(validate(design, diags)) << "seed " << seed << ":\n"
                                         << diags.to_text();
  }
}

TEST(RandomDesign, CleanByDefault) {
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    RandomDesignOptions options;
    options.seed = seed;
    const transfer::Design design = random_design(options);
    EXPECT_TRUE(transfer::analyze(design).clean()) << "seed " << seed;
  }
}

TEST(RandomDesign, InjectConflictsProducesDriveConflicts) {
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    RandomDesignOptions options;
    options.seed = seed;
    options.inject_conflicts = true;
    const transfer::Design design = random_design(options);
    EXPECT_FALSE(transfer::analyze(design).drive_conflicts.empty())
        << "seed " << seed;
  }
}

TEST(RandomDesign, Deterministic) {
  RandomDesignOptions options;
  options.seed = 99;
  const transfer::Design a = random_design(options);
  const transfer::Design b = random_design(options);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.cs_max, b.cs_max);
}

TEST(RandomDesign, NaturalsOnlyKeepsPayloadsNonNegative) {
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    RandomDesignOptions options;
    options.seed = seed;
    options.naturals_only = true;
    options.num_transfers = 8;
    const transfer::Design design = random_design(options);
    auto model = transfer::build_model(design);
    model->run();
    for (const transfer::RegisterDecl& reg : design.registers) {
      const rtl::RtValue value = model->find_register(reg.name)->value();
      if (value.has_value()) {
        EXPECT_GE(value.payload(), 0) << reg.name << " seed " << seed;
      }
    }
  }
}

TEST(RandomDesign, RejectsTooFewResources) {
  RandomDesignOptions options;
  options.num_registers = 2;
  EXPECT_THROW(random_design(options), std::invalid_argument);
}

TEST(RandomDesign, TransferCountHonored) {
  RandomDesignOptions options;
  options.num_transfers = 17;
  const transfer::Design design = random_design(options);
  EXPECT_EQ(design.transfers.size(), 17u);
  options.inject_conflicts = true;
  EXPECT_EQ(random_design(options).transfers.size(), 18u)
      << "one extra conflicting partial tuple";
}

}  // namespace
}  // namespace ctrtl::verify
