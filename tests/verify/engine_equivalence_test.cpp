#include <gtest/gtest.h>

#include "rtl/batch_runner.h"
#include "transfer/build.h"
#include "verify/equivalence.h"
#include "verify/random_design.h"
#include "verify/trace.h"
#include "verify/vcd.h"

namespace ctrtl::verify {
namespace {

using transfer::Design;
using transfer::ModuleKind;
using transfer::RegisterTransfer;

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

TEST(EngineEquivalence, Fig1) {
  const CheckReport report = check_engine_equivalence(fig1_design());
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

TEST(EngineEquivalence, Fig1WithBusConflict) {
  Design d = fig1_design();
  d.transfers[0].operand_b->bus = "B1";  // double-books B1 at (5, ra)
  const CheckReport report = check_engine_equivalence(d);
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

/// The differential sweep: seeded random designs, run through both engines,
/// must agree on registers, conflicts (exact order), delta cycles, kernel
/// counters, and the complete event trace.
class EngineSweepTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EngineSweepTest, CleanDesignsAgree) {
  RandomDesignOptions options;
  options.seed = GetParam();
  options.num_registers = 6;
  options.num_buses = 4;
  options.num_transfers = 10;
  options.use_alu = (GetParam() % 2) == 0;
  const CheckReport report = check_engine_equivalence(random_design(options));
  EXPECT_TRUE(report.consistent()) << "seed " << GetParam() << ":\n"
                                   << report.to_text();
}

TEST_P(EngineSweepTest, ConflictingDesignsAgree) {
  // Deliberate bus conflicts: both engines must report the identical ILLEGAL
  // events, pinned to the identical (step, phase) delta cycles.
  RandomDesignOptions options;
  options.seed = GetParam() + 90000;
  options.num_registers = 5;
  options.num_buses = 3;
  options.num_transfers = 9;
  options.inject_conflicts = true;
  const CheckReport report = check_engine_equivalence(random_design(options));
  EXPECT_TRUE(report.consistent()) << "seed " << options.seed << ":\n"
                                   << report.to_text();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSweepTest,
                         ::testing::Range(1u, 16u));  // 15 x 2 = 30 designs

TEST(EngineEquivalence, VcdOutputIsByteIdentical) {
  RandomDesignOptions options;
  options.seed = 7;
  options.inject_conflicts = true;
  const Design design = random_design(options);

  const auto dump = [&](rtl::TransferMode mode) {
    auto model = transfer::build_model(design, mode);
    TraceRecorder trace(model->scheduler());
    (void)model->run();
    return to_vcd(trace.events());
  };
  EXPECT_EQ(dump(rtl::TransferMode::kProcessPerTransfer),
            dump(rtl::TransferMode::kCompiled));
}

TEST(EngineEquivalence, BatchRunnerInstanceResultsMatch) {
  // The batch facade with a compiled-mode factory must produce the exact
  // InstanceResult (registers, conflicts, counters) of the event-mode
  // factory, per instance.
  const auto factory_for = [](rtl::TransferMode mode) {
    return [mode](std::size_t instance) {
      RandomDesignOptions options;
      options.seed = 500 + static_cast<std::uint32_t>(instance);
      options.inject_conflicts = (instance % 3) == 0;
      return transfer::build_model(random_design(options), mode);
    };
  };
  rtl::BatchRunner event_runner(factory_for(rtl::TransferMode::kProcessPerTransfer),
                                {.workers = 2});
  rtl::BatchRunner compiled_runner(factory_for(rtl::TransferMode::kCompiled),
                                   {.workers = 2});
  const rtl::BatchRunResult event_batch = event_runner.run(8);
  const rtl::BatchRunResult compiled_batch = compiled_runner.run(8);
  ASSERT_EQ(event_batch.instances.size(), compiled_batch.instances.size());
  for (std::size_t i = 0; i < event_batch.instances.size(); ++i) {
    EXPECT_EQ(event_batch.instances[i], compiled_batch.instances[i])
        << "instance " << i;
  }
}

TEST(EngineEquivalence, DispatchModeAlsoAgreesWithCompiled) {
  // Three-way: the dispatcher ablation shares the event kernel, so checking
  // it against compiled mode transitively covers all three engines.
  RandomDesignOptions options;
  options.seed = 11;
  options.num_transfers = 12;
  const Design design = random_design(options);
  auto dispatch_model = transfer::build_model(design, rtl::TransferMode::kDispatch);
  auto compiled_model = transfer::build_model(design, rtl::TransferMode::kCompiled);
  const rtl::InstanceResult dispatch_result = rtl::run_instance(*dispatch_model);
  const rtl::InstanceResult compiled_result = rtl::run_instance(*compiled_model);
  // The dispatcher trades transactions/updates for fewer processes, so only
  // behaviour (not counters) is comparable.
  EXPECT_EQ(dispatch_result.cycles, compiled_result.cycles);
  EXPECT_EQ(dispatch_result.conflicts, compiled_result.conflicts);
  EXPECT_EQ(dispatch_result.registers, compiled_result.registers);
}

}  // namespace
}  // namespace ctrtl::verify
