#include <gtest/gtest.h>

#include "rtl/batch_runner.h"
#include "rtl/lane_engine.h"
#include "transfer/build.h"
#include "transfer/schedule.h"
#include "verify/equivalence.h"
#include "verify/random_design.h"
#include "verify/trace.h"
#include "verify/vcd.h"

namespace ctrtl::verify {
namespace {

using transfer::Design;
using transfer::ModuleKind;
using transfer::RegisterTransfer;

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

TEST(EngineEquivalence, Fig1) {
  const CheckReport report = check_engine_equivalence(fig1_design());
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

TEST(EngineEquivalence, Fig1WithBusConflict) {
  Design d = fig1_design();
  d.transfers[0].operand_b->bus = "B1";  // double-books B1 at (5, ra)
  const CheckReport report = check_engine_equivalence(d);
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

/// The differential sweep: seeded random designs, run through all engines
/// (`check_engine_equivalence` covers the event kernel, the compiled engine,
/// and the lane engine), must agree on registers, conflicts (exact order),
/// delta cycles, kernel counters, and — for the per-instance engines — the
/// complete event trace.
class EngineSweepTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EngineSweepTest, CleanDesignsAgree) {
  RandomDesignOptions options;
  options.seed = GetParam();
  options.num_registers = 6;
  options.num_buses = 4;
  options.num_transfers = 10;
  options.use_alu = (GetParam() % 2) == 0;
  const CheckReport report = check_engine_equivalence(random_design(options));
  EXPECT_TRUE(report.consistent()) << "seed " << GetParam() << ":\n"
                                   << report.to_text();
}

TEST_P(EngineSweepTest, ConflictingDesignsAgree) {
  // Deliberate bus conflicts: both engines must report the identical ILLEGAL
  // events, pinned to the identical (step, phase) delta cycles.
  RandomDesignOptions options;
  options.seed = GetParam() + 90000;
  options.num_registers = 5;
  options.num_buses = 3;
  options.num_transfers = 9;
  options.inject_conflicts = true;
  const CheckReport report = check_engine_equivalence(random_design(options));
  EXPECT_TRUE(report.consistent()) << "seed " << options.seed << ":\n"
                                   << report.to_text();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSweepTest,
                         ::testing::Range(1u, 16u));  // 15 x 2 = 30 designs

TEST(EngineEquivalence, VcdOutputIsByteIdentical) {
  RandomDesignOptions options;
  options.seed = 7;
  options.inject_conflicts = true;
  const Design design = random_design(options);

  const auto dump = [&](rtl::TransferMode mode) {
    auto model = transfer::build_model(design, mode);
    TraceRecorder trace(model->scheduler());
    (void)model->run();
    return to_vcd(trace.events());
  };
  EXPECT_EQ(dump(rtl::TransferMode::kProcessPerTransfer),
            dump(rtl::TransferMode::kCompiled));
}

TEST(EngineEquivalence, BatchRunnerInstanceResultsMatch) {
  // The batch facade with a compiled-mode factory must produce the exact
  // InstanceResult (registers, conflicts, counters) of the event-mode
  // factory, per instance.
  const auto factory_for = [](rtl::TransferMode mode) {
    return [mode](std::size_t instance) {
      RandomDesignOptions options;
      options.seed = 500 + static_cast<std::uint32_t>(instance);
      options.inject_conflicts = (instance % 3) == 0;
      return transfer::build_model(random_design(options), mode);
    };
  };
  rtl::BatchRunner event_runner(factory_for(rtl::TransferMode::kProcessPerTransfer),
                                {.workers = 2});
  rtl::BatchRunner compiled_runner(factory_for(rtl::TransferMode::kCompiled),
                                   {.workers = 2});
  const rtl::BatchRunResult event_batch = event_runner.run(8);
  const rtl::BatchRunResult compiled_batch = compiled_runner.run(8);
  ASSERT_EQ(event_batch.instances.size(), compiled_batch.instances.size());
  for (std::size_t i = 0; i < event_batch.instances.size(); ++i) {
    EXPECT_EQ(event_batch.instances[i], compiled_batch.instances[i])
        << "instance " << i;
  }
}

TEST(EngineEquivalence, DispatchModeAlsoAgreesWithCompiled) {
  // Three-way: the dispatcher ablation shares the event kernel, so checking
  // it against compiled mode transitively covers all three engines.
  RandomDesignOptions options;
  options.seed = 11;
  options.num_transfers = 12;
  const Design design = random_design(options);
  auto dispatch_model = transfer::build_model(design, rtl::TransferMode::kDispatch);
  auto compiled_model = transfer::build_model(design, rtl::TransferMode::kCompiled);
  const rtl::InstanceResult dispatch_result = rtl::run_instance(*dispatch_model);
  const rtl::InstanceResult compiled_result = rtl::run_instance(*compiled_model);
  // The dispatcher trades transactions/updates for fewer processes, so only
  // behaviour (not counters) is comparable.
  EXPECT_EQ(dispatch_result.cycles, compiled_result.cycles);
  EXPECT_EQ(dispatch_result.conflicts, compiled_result.conflicts);
  EXPECT_EQ(dispatch_result.registers, compiled_result.registers);
}

// --- lane engine ------------------------------------------------------------

/// fig1 with one operand replaced by an external input, so lanes carry
/// genuinely different data through the same shared schedule.
Design lane_input_design() {
  Design d;
  d.name = "lane_input";
  d.cs_max = 3;
  d.registers = {{"R1", 1}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.inputs = {{"X"}};
  RegisterTransfer t;
  t.operand_a = transfer::OperandPath{transfer::Endpoint::register_out("R1"), "B1"};
  t.operand_b = transfer::OperandPath{transfer::Endpoint::input("X"), "B2"};
  t.read_step = 1;
  t.module = "ADD";
  t.write_step = 2;
  t.write_bus = "B1";
  t.destination = "R1";
  d.transfers = {t};
  return d;
}

TEST(LaneEngine, PerInstanceInputsFlowThroughLanes) {
  const Design design = lane_input_design();
  const rtl::BatchInputProvider provider = [](std::size_t instance) {
    return std::vector<std::pair<std::string, rtl::RtValue>>{
        {"X", rtl::RtValue::of(static_cast<std::int64_t>(instance) * 10)}};
  };
  rtl::BatchRunner lanes(transfer::CompiledDesign::compile(design),
                         {.workers = 2,
                          .engine = rtl::BatchEngineKind::kCompiledLanes,
                          .lane_block = 4},
                         provider);
  const rtl::BatchRunResult batch = lanes.run(10);
  ASSERT_EQ(batch.instances.size(), 10u);
  for (std::size_t i = 0; i < batch.instances.size(); ++i) {
    // Event-kernel reference with the same instance input.
    auto model = transfer::build_model(design, rtl::TransferMode::kProcessPerTransfer);
    model->set_input("X", rtl::RtValue::of(static_cast<std::int64_t>(i) * 10));
    const rtl::InstanceResult reference = rtl::run_instance(*model);
    EXPECT_EQ(batch.instances[i], reference) << "instance " << i;
    ASSERT_EQ(batch.instances[i].registers.size(), 1u);
    EXPECT_EQ(batch.instances[i].registers[0].second,
              rtl::RtValue::of(1 + static_cast<std::int64_t>(i) * 10))
        << "instance " << i;
  }
}

TEST(LaneEngine, BatchResultByteStableAcrossWorkerCounts) {
  // The lane shard size is fixed (not derived from the worker count), so the
  // whole BatchRunResult — per-instance registers, conflict order, every
  // counter — must be identical for 1, 2, and 4 workers.
  RandomDesignOptions options;
  options.seed = 42;
  options.num_transfers = 12;
  options.inject_conflicts = true;
  const auto design = transfer::CompiledDesign::compile(random_design(options));

  std::vector<rtl::BatchRunResult> results;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    rtl::BatchRunner runner(design,
                            {.workers = workers,
                             .engine = rtl::BatchEngineKind::kCompiledLanes,
                             .lane_block = 8});
    results.push_back(runner.run(37));  // not a multiple of the block size
  }
  EXPECT_GT(results[0].conflict_count(), 0u)
      << "conflict-injected design must surface ILLEGAL events";
  for (std::size_t variant = 1; variant < results.size(); ++variant) {
    ASSERT_EQ(results[variant].instances.size(), results[0].instances.size());
    for (std::size_t i = 0; i < results[0].instances.size(); ++i) {
      EXPECT_EQ(results[variant].instances[i], results[0].instances[i])
          << "worker variant " << variant << ", instance " << i;
    }
    EXPECT_EQ(results[variant].total.updates, results[0].total.updates);
    EXPECT_EQ(results[variant].total.events, results[0].total.events);
    EXPECT_EQ(results[variant].total.transactions, results[0].total.transactions);
  }
}

TEST(LaneEngine, TableStatsReflectLoweredDesign) {
  const rtl::LaneEngine engine(transfer::CompiledDesign::compile(fig1_design()));
  const rtl::LaneEngine::TableStats stats = engine.table_stats();
  // fig1: 7 steps x 6 phases + the trailing latch cycle.
  EXPECT_EQ(stats.cycles, 7u * 6u + 1u);
  // R1.in/out, R2.in/out, B1, B2, ADD.in1/in2/out.
  EXPECT_EQ(stats.signals, 9u);
  // Sinks: B1 (2 drivers), B2, ADD.in1, ADD.in2, R1.in.
  EXPECT_EQ(stats.resolved_sinks, 5u);
  EXPECT_EQ(stats.drivers, 6u);
  // One fire and one release per TRANS instance of the tuple.
  EXPECT_EQ(stats.fire_actions, 6u);
  EXPECT_EQ(stats.release_actions, 6u);
  EXPECT_EQ(stats.modules, 1u);
  EXPECT_EQ(stats.registers, 2u);
}

TEST(LaneEngine, SharedScheduleLoweredOnce) {
  // CompiledDesign lowers at compile() time; both the lane engine and any
  // number of per-instance elaborations reuse the same immutable tables.
  const auto design = transfer::CompiledDesign::compile(fig1_design());
  EXPECT_EQ(design->schedule.cs_max, 7u);
  EXPECT_EQ(design->schedule.occupancy.instances, 6u);
  const rtl::LaneEngine engine(design);
  EXPECT_EQ(&engine.compiled(), design.get());
  auto model = transfer::build_model(*design);  // shares design->schedule
  const rtl::InstanceResult reference = rtl::run_instance(*model);
  const std::vector<rtl::InstanceResult> lane =
      engine.run_block(0, 1, nullptr);
  ASSERT_EQ(lane.size(), 1u);
  EXPECT_EQ(lane[0], reference);
}

}  // namespace
}  // namespace ctrtl::verify
