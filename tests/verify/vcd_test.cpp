#include "verify/vcd.h"

#include <gtest/gtest.h>

#include "transfer/build.h"

namespace ctrtl::verify {
namespace {

std::vector<TraceEvent> sample_events() {
  return {
      {{0, 1}, "CS", "1"},
      {{0, 1}, "PH", "ra"},
      {{0, 2}, "B1", "42"},
      {{0, 3}, "B1", "DISC"},
      {{0, 4}, "B2", "ILLEGAL"},
  };
}

TEST(Vcd, HeaderDeclaresAllSignals) {
  const std::string vcd = to_vcd(sample_events());
  EXPECT_NE(vcd.find("$timescale 1 ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 64 ! CS $end"), std::string::npos);
  EXPECT_NE(vcd.find("PH"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
}

TEST(Vcd, ValueEncodings) {
  const std::string vcd = to_vcd(sample_events());
  // Integer as 64-bit binary vector.
  EXPECT_NE(vcd.find("b0000000000000000000000000000000000000000000000000000000000101010"),
            std::string::npos)
      << "42 in binary";
  // DISC -> high impedance, ILLEGAL -> unknown.
  EXPECT_NE(vcd.find("bz "), std::string::npos);
  EXPECT_NE(vcd.find("bx "), std::string::npos);
  // Enum values as string changes.
  EXPECT_NE(vcd.find("sra "), std::string::npos);
}

TEST(Vcd, TimestampsGroupEvents) {
  const std::string vcd = to_vcd(sample_events());
  const std::size_t t1 = vcd.find("#1\n");
  const std::size_t t2 = vcd.find("#2\n");
  const std::size_t t3 = vcd.find("#3\n");
  ASSERT_NE(t1, std::string::npos);
  ASSERT_NE(t2, std::string::npos);
  ASSERT_NE(t3, std::string::npos);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
  // Exactly one '#1' even though two events share it.
  EXPECT_EQ(vcd.find("#1\n", t1 + 1), std::string::npos);
}

TEST(Vcd, FullModelTraceExports) {
  transfer::Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", transfer::ModuleKind::kAdd, 1}};
  d.transfers = {transfer::RegisterTransfer::full("R1", "B1", "R2", "B2", 5,
                                                  "ADD", 6, "B1", "R1")};
  auto model = transfer::build_model(d);
  TraceRecorder recorder(model->scheduler());
  model->run();
  const std::string vcd = to_vcd(recorder.events());
  EXPECT_NE(vcd.find("B1"), std::string::npos);
  EXPECT_NE(vcd.find("ADD_in1"), std::string::npos) << "dots flattened";
  EXPECT_NE(vcd.find("#42"), std::string::npos) << "the final delta cycle";
  EXPECT_GT(recorder.events().size(), 60u);
}

TEST(Vcd, EmptyTraceStillValid) {
  const std::string vcd = to_vcd({});
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
}

}  // namespace
}  // namespace ctrtl::verify
