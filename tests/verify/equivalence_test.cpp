#include "verify/equivalence.h"

#include <gtest/gtest.h>

#include "transfer/conflict.h"
#include "verify/random_design.h"

namespace ctrtl::verify {
namespace {

using transfer::Design;
using transfer::ModuleKind;
using transfer::RegisterTransfer;

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

TEST(Consistency, Fig1SemanticsMatchesSimulation) {
  const CheckReport report = check_consistency(fig1_design());
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

TEST(Consistency, ConflictingDesignStillConsistent) {
  // Consistency is about semantics == simulation, including for *broken*
  // schedules: both sides must report the identical conflicts.
  Design d = fig1_design();
  d.transfers[0].operand_b->bus = "B1";
  const CheckReport report = check_consistency(d);
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

TEST(Consistency, InputsFlowToBothSides) {
  Design d;
  d.cs_max = 3;
  d.registers = {{"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.inputs = {{"x_in"}, {"y_in"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  RegisterTransfer t;
  t.operand_a = transfer::OperandPath{transfer::Endpoint::input("x_in"), "B1"};
  t.operand_b = transfer::OperandPath{transfer::Endpoint::input("y_in"), "B2"};
  t.read_step = 1;
  t.module = "ADD";
  t.write_step = 2;
  t.write_bus = "B1";
  t.destination = "OUT";
  d.transfers = {t};
  const CheckReport report = check_consistency(d, {{"x_in", 20}, {"y_in", 22}});
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

// --- The paper's consistency theorem, randomized -------------------------------

class ConsistencyProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConsistencyProperty, CleanRandomDesigns) {
  RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(GetParam());
  options.num_transfers = 4 + static_cast<unsigned>(GetParam() % 10);
  options.use_alu = GetParam() % 2 == 0;
  const Design design = random_design(options);
  const CheckReport report = check_consistency(design);
  EXPECT_TRUE(report.consistent())
      << "seed " << GetParam() << ":\n"
      << report.to_text();
}

TEST_P(ConsistencyProperty, ConflictingRandomDesigns) {
  RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(GetParam()) + 1000;
  options.num_transfers = 4 + static_cast<unsigned>(GetParam() % 10);
  options.inject_conflicts = true;
  const Design design = random_design(options);
  const CheckReport report = check_consistency(design);
  EXPECT_TRUE(report.consistent())
      << "seed " << GetParam() << ":\n"
      << report.to_text();
}

TEST_P(ConsistencyProperty, InjectedConflictIsDetectedByBothSides) {
  RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(GetParam()) + 2000;
  options.inject_conflicts = true;
  const Design design = random_design(options);
  const EvalResult reference = evaluate(design);
  EXPECT_FALSE(reference.conflicts.empty())
      << "injected conflict must surface in the reference semantics";
  // And the static analyzer must have predicted at least one drive conflict.
  const transfer::AnalysisReport analysis = transfer::analyze(design);
  EXPECT_FALSE(analysis.drive_conflicts.empty());
}

TEST_P(ConsistencyProperty, StaticCleanImpliesDynamicClean) {
  RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(GetParam()) + 3000;
  options.num_transfers = 6;
  const Design design = random_design(options);
  const transfer::AnalysisReport analysis = transfer::analyze(design);
  ASSERT_TRUE(analysis.clean());
  const EvalResult reference = evaluate(design);
  EXPECT_TRUE(reference.conflicts.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyProperty, ::testing::Range(1, 26));

// --- compare_write_traces -------------------------------------------------------

TEST(CompareWriteTraces, IdenticalTracesConsistent) {
  const std::vector<RegisterWrite> trace = {
      {1, "R1", rtl::RtValue::of(5)}, {2, "R2", rtl::RtValue::of(7)}};
  EXPECT_TRUE(compare_write_traces(trace, trace).consistent());
}

TEST(CompareWriteTraces, ValueMismatchReported) {
  const std::vector<RegisterWrite> a = {{1, "R1", rtl::RtValue::of(5)}};
  const std::vector<RegisterWrite> b = {{1, "R1", rtl::RtValue::of(6)}};
  const CheckReport report = compare_write_traces(a, b);
  ASSERT_EQ(report.mismatches.size(), 1u);
  EXPECT_NE(report.mismatches[0].find("R1"), std::string::npos);
}

TEST(CompareWriteTraces, LengthMismatchReported) {
  const std::vector<RegisterWrite> a = {{1, "R1", rtl::RtValue::of(5)}};
  EXPECT_FALSE(compare_write_traces(a, {}).consistent());
}

TEST(CompareWriteTraces, PreloadIgnorable) {
  const std::vector<RegisterWrite> with_preload = {
      {0, "R1", rtl::RtValue::of(1)}, {2, "R2", rtl::RtValue::of(7)}};
  const std::vector<RegisterWrite> without = {{2, "R2", rtl::RtValue::of(7)}};
  EXPECT_FALSE(compare_write_traces(with_preload, without).consistent());
  EXPECT_TRUE(
      compare_write_traces(with_preload, without, /*ignore_preload=*/true)
          .consistent());
}

}  // namespace
}  // namespace ctrtl::verify
