#include "verify/semantics.h"

#include <gtest/gtest.h>

#include "rtl/modules.h"

namespace ctrtl::verify {
namespace {

using transfer::Design;
using transfer::Endpoint;
using transfer::ModuleKind;
using transfer::OperandPath;
using transfer::RegisterTransfer;

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

TEST(Semantics, Fig1FinalRegisters) {
  const EvalResult result = evaluate(fig1_design());
  EXPECT_EQ(result.registers.at("R1"), rtl::RtValue::of(42));
  EXPECT_EQ(result.registers.at("R2"), rtl::RtValue::of(12));
  EXPECT_TRUE(result.conflicts.empty());
  EXPECT_EQ(result.expected_delta_cycles, 42u);
}

TEST(Semantics, UninitializedOperandPoisonsModule) {
  Design d = fig1_design();
  d.registers[0].initial.reset();  // R1 never loaded
  const EvalResult result = evaluate(d);
  // The ADD sees (DISC, 12) at cm — mixed operands violate the paper's
  // both-or-neither discipline, so it computes ILLEGAL, which the register
  // then latches at step 6.
  EXPECT_TRUE(result.registers.at("R1").is_illegal());
}

TEST(Semantics, ConflictLocatedExactly) {
  Design d = fig1_design();
  // Route both operands over B1 in step 5.
  d.transfers[0].operand_b->bus = "B1";
  const EvalResult result = evaluate(d);
  ASSERT_FALSE(result.conflicts.empty());
  EXPECT_EQ(result.conflicts[0], (rtl::Conflict{"B1", 5, rtl::Phase::kRb}));
}

TEST(Semantics, IllegalPropagatesThroughModuleToRegister) {
  Design d = fig1_design();
  d.transfers[0].operand_b->bus = "B1";
  const EvalResult result = evaluate(d);
  EXPECT_TRUE(result.registers.at("R1").is_illegal())
      << "ILLEGAL operands -> ILLEGAL module result -> latched";
  // Secondary conflicts appear where the ILLEGAL value transits.
  bool saw_secondary = false;
  for (const rtl::Conflict& conflict : result.conflicts) {
    if (conflict.step == 6) {
      saw_secondary = true;
    }
  }
  EXPECT_TRUE(saw_secondary);
}

TEST(Semantics, PipelinedModuleLatency) {
  Design d;
  d.cs_max = 6;
  d.registers = {{"A", 6}, {"B", 7}, {"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"MUL", ModuleKind::kMul, 2, 0}};
  d.transfers = {
      RegisterTransfer::full("A", "B1", "B", "B2", 1, "MUL", 3, "B1", "OUT")};
  const EvalResult result = evaluate(d);
  EXPECT_EQ(result.registers.at("OUT"), rtl::RtValue::of(42));
}

TEST(Semantics, ChainedStepsReuseModule) {
  Design d;
  d.cs_max = 5;
  d.registers = {{"A", 10}, {"B", 20}, {"C", 12}, {"T", std::nullopt},
                 {"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("A", "B1", "B", "B2", 1, "ADD", 2, "B1", "T"),
      RegisterTransfer::full("T", "B1", "C", "B2", 3, "ADD", 4, "B1", "OUT"),
  };
  const EvalResult result = evaluate(d);
  EXPECT_EQ(result.registers.at("OUT"), rtl::RtValue::of(42));
  EXPECT_TRUE(result.conflicts.empty());
}

TEST(Semantics, AluWithOpCode) {
  Design d;
  d.cs_max = 3;
  d.registers = {{"A", 9}, {"B", 4}, {"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ALU", ModuleKind::kAlu, 1}};
  d.transfers = {RegisterTransfer::full("A", "B1", "B", "B2", 1, "ALU", 2, "B1",
                                        "OUT", rtl::alu_ops::kSub)};
  const EvalResult result = evaluate(d);
  EXPECT_EQ(result.registers.at("OUT"), rtl::RtValue::of(5));
}

TEST(Semantics, MaccAccumulates) {
  Design d;
  d.cs_max = 5;
  d.registers = {{"A", 3}, {"B", 4}, {"C", 5}, {"D", 6}, {"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}, {"B3"}};
  d.modules = {{"MACC", ModuleKind::kMacc, 1, 0}};
  RegisterTransfer clear;
  clear.read_step = 1;
  clear.module = "MACC";
  clear.op = rtl::MaccModule::kOpClear;
  d.transfers = {
      clear,
      RegisterTransfer::full("A", "B1", "B", "B2", 2, "MACC", 3, "B3", "OUT",
                             rtl::MaccModule::kOpMac),
      RegisterTransfer::full("C", "B1", "D", "B2", 3, "MACC", 4, "B3", "OUT",
                             rtl::MaccModule::kOpMac),
  };
  const EvalResult result = evaluate(d);
  EXPECT_EQ(result.registers.at("OUT"), rtl::RtValue::of(42));  // 3*4 + 5*6
}

TEST(Semantics, ConstantAndInputSources) {
  Design d;
  d.cs_max = 3;
  d.registers = {{"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.constants = {{"two", 2}};
  d.inputs = {{"x_in"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  RegisterTransfer t;
  t.operand_a = OperandPath{Endpoint::constant("two"), "B1"};
  t.operand_b = OperandPath{Endpoint::input("x_in"), "B2"};
  t.read_step = 1;
  t.module = "ADD";
  t.write_step = 2;
  t.write_bus = "B1";
  t.destination = "OUT";
  d.transfers = {t};
  const EvalResult result = evaluate(d, {{"x_in", 40}});
  EXPECT_EQ(result.registers.at("OUT"), rtl::RtValue::of(42));
}

TEST(Semantics, UnsetInputIsDisc) {
  Design d;
  d.cs_max = 2;
  d.registers = {{"OUT", std::nullopt}};
  d.buses = {{"B1"}};
  d.inputs = {{"x_in"}};
  d.modules = {{"CP", ModuleKind::kCopy, 0}};
  RegisterTransfer t;
  t.operand_a = OperandPath{Endpoint::input("x_in"), "B1"};
  t.read_step = 1;
  t.module = "CP";
  t.write_step = 1;
  t.write_bus = "B1";
  t.destination = "OUT";
  d.transfers = {t};
  const EvalResult result = evaluate(d);
  EXPECT_TRUE(result.registers.at("OUT").is_disc());
}

TEST(Semantics, InvalidDesignThrows) {
  Design d = fig1_design();
  d.transfers[0].module = "NOPE";
  EXPECT_THROW(evaluate(d), std::invalid_argument);
}

TEST(Semantics, SharedBusAcrossPhasesIsClean) {
  // Write bus B1 reused as read bus within the same step window — the
  // single-phase transfer windows never overlap.
  const EvalResult result = evaluate(fig1_design());
  EXPECT_TRUE(result.conflicts.empty());
}

}  // namespace
}  // namespace ctrtl::verify
