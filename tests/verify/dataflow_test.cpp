#include "verify/dataflow.h"

#include <gtest/gtest.h>

#include <random>

#include "hls/emit.h"
#include "iks/program.h"
#include "rtl/modules.h"
#include "iks/resources.h"

namespace ctrtl::verify {
namespace {

using transfer::Design;
using transfer::ModuleKind;
using transfer::RegisterTransfer;

TEST(DfExpr, CanonicalForms) {
  const DfExprPtr a = DfExpr::input("a");
  const DfExprPtr b = DfExpr::input("b");
  EXPECT_EQ(canonical(DfExpr::make("add", {a, b})), "add($a,$b)");
  EXPECT_EQ(canonical(DfExpr::make("add", {b, a})), "add($a,$b)")
      << "commutative ops sort their arguments";
  EXPECT_EQ(canonical(DfExpr::make("sub", {b, a})), "sub($b,$a)")
      << "sub is not commutative";
  EXPECT_EQ(canonical(DfExpr::literal(5)), "5");
  EXPECT_EQ(canonical(DfExpr::disc()), "DISC");
  EXPECT_EQ(canonical(DfExpr::illegal()), "ILLEGAL");
}

TEST(DfExpr, EquivalenceModuloCommutativity) {
  const DfExprPtr a = DfExpr::input("a");
  const DfExprPtr b = DfExpr::input("b");
  const DfExprPtr c = DfExpr::literal(3);
  const DfExprPtr left = DfExpr::make("mul0", {DfExpr::make("add", {a, b}), c});
  const DfExprPtr right = DfExpr::make("mul0", {c, DfExpr::make("add", {b, a})});
  EXPECT_TRUE(equivalent(left, right));
  EXPECT_FALSE(equivalent(left, DfExpr::make("mul0", {a, c})));
}

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

TEST(ExtractDataflow, Fig1YieldsSymbolicSum) {
  const DataflowResult result = extract_dataflow(fig1_design());
  EXPECT_EQ(canonical(result.registers.at("R1")), "add(12,30)");
  EXPECT_EQ(canonical(result.registers.at("R2")), "12");
  EXPECT_FALSE(result.saw_illegal);
}

TEST(ExtractDataflow, ConflictSurfacesSymbolically) {
  Design d = fig1_design();
  d.transfers[0].operand_b->bus = "B1";
  const DataflowResult result = extract_dataflow(d);
  EXPECT_TRUE(result.saw_illegal);
  EXPECT_EQ(canonical(result.registers.at("R1")), "ILLEGAL");
}

TEST(ExtractDataflow, CopiesAreTransparent) {
  Design d;
  d.cs_max = 3;
  d.registers = {{"A", std::nullopt}, {"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.inputs = {{"x"}};
  d.modules = {{"CP", ModuleKind::kCopy, 0}};
  RegisterTransfer t;
  t.operand_a = transfer::OperandPath{transfer::Endpoint::input("x"), "B1"};
  t.read_step = 1;
  t.module = "CP";
  t.write_step = 1;
  t.write_bus = "B2";
  t.destination = "OUT";
  d.transfers = {t};
  const DataflowResult result = extract_dataflow(d);
  EXPECT_EQ(canonical(result.registers.at("OUT")), "$x")
      << "the direct-link copy module adds no operation node";
}

TEST(ExtractDataflow, MaccNormalizesToAddMul) {
  // A MACC accumulation and the equivalent MULT+ADD schedule must extract
  // to the same expression.
  Design macc_design;
  macc_design.cs_max = 5;
  macc_design.registers = {{"OUT", std::nullopt}};
  macc_design.inputs = {{"a"}, {"b"}, {"c"}, {"d"}};
  macc_design.buses = {{"B1"}, {"B2"}, {"B3"}};
  macc_design.modules = {{"MACC", ModuleKind::kMacc, 1, 0}};
  RegisterTransfer clear;
  clear.read_step = 1;
  clear.module = "MACC";
  clear.op = rtl::MaccModule::kOpClear;
  RegisterTransfer mac1;
  mac1.operand_a = transfer::OperandPath{transfer::Endpoint::input("a"), "B1"};
  mac1.operand_b = transfer::OperandPath{transfer::Endpoint::input("b"), "B2"};
  mac1.read_step = 2;
  mac1.module = "MACC";
  mac1.op = rtl::MaccModule::kOpMac;
  RegisterTransfer mac2 = mac1;
  mac2.operand_a = transfer::OperandPath{transfer::Endpoint::input("c"), "B1"};
  mac2.operand_b = transfer::OperandPath{transfer::Endpoint::input("d"), "B2"};
  mac2.read_step = 3;
  mac2.write_step = 4;
  mac2.write_bus = "B3";
  mac2.destination = "OUT";
  macc_design.transfers = {clear, mac1, mac2};

  const DataflowResult result = extract_dataflow(macc_design);
  EXPECT_EQ(canonical(result.registers.at("OUT")),
            "add(add(0,mul0($a,$b)),mul0($c,$d))");
}

// --- HLS equivalence: the automatic proving procedure -------------------------

hls::Dfg sample_dfg() {
  hls::Dfg dfg;
  dfg.add_input("a");
  dfg.add_input("b");
  const std::size_t sum = dfg.add_node(
      hls::OpKind::kAdd, {hls::ValueRef::of_input("a"), hls::ValueRef::of_input("b")});
  const std::size_t diff = dfg.add_node(
      hls::OpKind::kSub, {hls::ValueRef::of_input("a"), hls::ValueRef::of_constant(3)});
  const std::size_t product = dfg.add_node(
      hls::OpKind::kMul, {hls::ValueRef::of_node(sum), hls::ValueRef::of_node(diff)});
  dfg.mark_output("out", hls::ValueRef::of_node(product));
  return dfg;
}

TEST(CheckHls, SampleSynthesisIsEquivalent) {
  const hls::Dfg dfg = sample_dfg();
  const hls::EmitResult emitted =
      hls::synthesize(dfg, hls::default_resources(), "sample");
  const auto mismatches =
      check_hls_equivalence(dfg, emitted.design, emitted.output_registers);
  EXPECT_TRUE(mismatches.empty()) << mismatches.front();
}

TEST(CheckHls, DetectsWrongBinding) {
  const hls::Dfg dfg = sample_dfg();
  hls::EmitResult emitted = hls::synthesize(dfg, hls::default_resources(), "sample");
  // Corrupt the result mapping: claim the output lives in the wrong place.
  auto wrong = emitted.output_registers;
  wrong["out"] = emitted.design.registers.front().name == wrong["out"]
                     ? emitted.design.registers.back().name
                     : emitted.design.registers.front().name;
  const auto mismatches = check_hls_equivalence(dfg, emitted.design, wrong);
  EXPECT_FALSE(mismatches.empty());
}

TEST(CheckHls, DetectsCorruptedSchedule) {
  const hls::Dfg dfg = sample_dfg();
  hls::EmitResult emitted = hls::synthesize(dfg, hls::default_resources(), "sample");
  // Flip the first ALU tuple's op code (add -> sub): the dataflow changes.
  for (transfer::RegisterTransfer& tuple : emitted.design.transfers) {
    if (tuple.op == rtl::alu_ops::kAdd) {
      tuple.op = rtl::alu_ops::kSub;
      break;
    }
  }
  const auto mismatches =
      check_hls_equivalence(dfg, emitted.design, emitted.output_registers);
  EXPECT_FALSE(mismatches.empty());
}

class HlsEquivalenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(HlsEquivalenceProperty, RandomDfgsVerify) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 131);
  hls::Dfg dfg;
  dfg.add_input("x");
  dfg.add_input("y");
  std::vector<hls::ValueRef> pool = {hls::ValueRef::of_input("x"),
                                     hls::ValueRef::of_input("y"),
                                     hls::ValueRef::of_constant(2)};
  std::uniform_int_distribution<int> op_pick(0, 4);
  const unsigned ops = 3 + static_cast<unsigned>(GetParam() % 7);
  for (unsigned i = 0; i < ops; ++i) {
    std::uniform_int_distribution<std::size_t> arg(0, pool.size() - 1);
    std::size_t node = 0;
    switch (op_pick(rng)) {
      case 0:
        node = dfg.add_node(hls::OpKind::kAdd, {pool[arg(rng)], pool[arg(rng)]});
        break;
      case 1:
        node = dfg.add_node(hls::OpKind::kSub, {pool[arg(rng)], pool[arg(rng)]});
        break;
      case 2:
        node = dfg.add_node(hls::OpKind::kMul, {pool[arg(rng)], pool[arg(rng)]});
        break;
      case 3:
        node = dfg.add_node(hls::OpKind::kMax, {pool[arg(rng)], pool[arg(rng)]});
        break;
      default:
        node = dfg.add_node(hls::OpKind::kNeg, {pool[arg(rng)]});
        break;
    }
    pool.push_back(hls::ValueRef::of_node(node));
  }
  dfg.mark_output("out", pool.back());
  const hls::EmitResult emitted =
      hls::synthesize(dfg, hls::default_resources(), "rand");
  const auto mismatches =
      check_hls_equivalence(dfg, emitted.design, emitted.output_registers);
  EXPECT_TRUE(mismatches.empty())
      << "seed " << GetParam() << ": " << mismatches.front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HlsEquivalenceProperty, ::testing::Range(1, 26));

TEST(CheckHls, ScheduleIndependence) {
  // The same DFG on two different resource allocations: different
  // schedules, bindings, and registers — identical dataflow.
  const hls::Dfg dfg = sample_dfg();
  const hls::EmitResult rich =
      hls::synthesize(dfg, hls::default_resources(), "rich");
  hls::Resources tight;
  tight.units = {{"ALU", transfer::ModuleKind::kAlu, 1},
                 {"MULA", transfer::ModuleKind::kMul, 2},
                 {"MULB", transfer::ModuleKind::kMul, 3}};
  const hls::EmitResult wide = hls::synthesize(dfg, tight, "wide");

  const DataflowResult a = extract_dataflow(rich.design);
  const DataflowResult b = extract_dataflow(wide.design);
  EXPECT_TRUE(equivalent(a.registers.at(rich.output_registers.at("out")),
                         b.registers.at(wide.output_registers.at("out"))));
}

// --- IKS: the chip's dataflow matches the golden formula ----------------------

TEST(ExtractDataflow, IksProgramIsSymbolicallyWellFormed) {
  iks::IksInputs inputs;  // zeros: values are irrelevant symbolically
  const transfer::Design design = iks::iks_design(inputs);
  const DataflowResult result = extract_dataflow(design);
  EXPECT_FALSE(result.saw_illegal)
      << "the IKS schedule violates no discipline, symbolically";
  // theta1' = theta1 + ((x*ey - y*ex) >> k): the outermost ops must be an
  // add of an asr of a sub.
  const std::string theta1 = canonical(result.registers.at(iks::r_reg(4)));
  EXPECT_TRUE(theta1.starts_with("add(")) << theta1;
  EXPECT_NE(theta1.find("asr" + std::to_string(iks::kGainShift)),
            std::string::npos)
      << theta1;
  EXPECT_NE(theta1.find("sin("), std::string::npos) << theta1;
  EXPECT_NE(theta1.find("cos("), std::string::npos) << theta1;
}

}  // namespace
}  // namespace ctrtl::verify
