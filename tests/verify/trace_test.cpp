#include "verify/trace.h"

#include <gtest/gtest.h>

#include "rtl/modules.h"

namespace ctrtl::verify {
namespace {

TEST(TraceRecorder, RecordsSignalEvents) {
  kernel::Scheduler sched;
  auto& s = sched.make_signal<int>("s", 0);
  const kernel::DriverId d = s.add_driver(0);
  TraceRecorder recorder(sched);
  sched.initialize();
  s.drive(d, 5);
  sched.step();
  s.drive(d, 6);
  sched.step();
  ASSERT_EQ(recorder.events().size(), 2u);
  EXPECT_EQ(recorder.events()[0].signal, "s");
  EXPECT_EQ(recorder.events()[0].value, "5");
  EXPECT_EQ(recorder.events()[1].value, "6");
  EXPECT_EQ(recorder.events()[1].time.delta, 2u);
}

TEST(TraceRecorder, FilterBySignal) {
  kernel::Scheduler sched;
  auto& a = sched.make_signal<int>("a", 0);
  auto& b = sched.make_signal<int>("b", 0);
  const kernel::DriverId da = a.add_driver(0);
  const kernel::DriverId db = b.add_driver(0);
  TraceRecorder recorder(sched);
  sched.initialize();
  a.drive(da, 1);
  b.drive(db, 2);
  sched.step();
  EXPECT_EQ(recorder.events().size(), 2u);
  EXPECT_EQ(recorder.events_for("a").size(), 1u);
  EXPECT_EQ(recorder.events_for("b").size(), 1u);
  EXPECT_TRUE(recorder.events_for("c").empty());
}

TEST(TraceRecorder, ToTextFormat) {
  kernel::Scheduler sched;
  auto& s = sched.make_signal<int>("sig", 0);
  const kernel::DriverId d = s.add_driver(0);
  TraceRecorder recorder(sched);
  sched.initialize();
  s.drive(d, 9);
  sched.step();
  EXPECT_EQ(recorder.to_text(), "0 fs +1d  sig = 9\n");
}

TEST(TraceRecorder, DetachesOnDestruction) {
  kernel::Scheduler sched;
  auto& s = sched.make_signal<int>("s", 0);
  const kernel::DriverId d = s.add_driver(0);
  {
    TraceRecorder recorder(sched);
    sched.initialize();
  }
  s.drive(d, 1);
  sched.step();  // must not touch the destroyed recorder
  SUCCEED();
}

TEST(RegisterWriteTrace, CapturesLatchSteps) {
  rtl::RtModel model(4);
  auto& r1 = model.add_register("R1", rtl::RtValue::of(10));
  auto& r2 = model.add_register("R2");
  auto& ba = model.add_bus("BA");
  auto& bb = model.add_bus("BB");
  auto& copy = model.add_module<rtl::CopyModule>("CP");
  // Step 2: R1 -> R2 via copy.
  model.add_transfer(2, rtl::Phase::kRa, r1.out(), ba);
  model.add_transfer(2, rtl::Phase::kRb, ba, copy.input(0));
  model.add_transfer(2, rtl::Phase::kWa, copy.out(), bb);
  model.add_transfer(2, rtl::Phase::kWb, bb, r2.in());

  RegisterWriteTrace trace(model);
  model.run();
  ASSERT_EQ(trace.writes().size(), 2u);
  EXPECT_EQ(trace.writes()[0], (RegisterWrite{0, "R1", rtl::RtValue::of(10)}))
      << "preload recorded as step 0";
  EXPECT_EQ(trace.writes()[1], (RegisterWrite{2, "R2", rtl::RtValue::of(10)}));
}

TEST(RegisterWrite, ToString) {
  EXPECT_EQ(to_string(RegisterWrite{3, "R1", rtl::RtValue::of(7)}),
            "step 3: R1 := 7");
}

}  // namespace
}  // namespace ctrtl::verify
