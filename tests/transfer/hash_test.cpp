// Content-hashing of the canonical TRANS stream (transfer/hash.h) — the
// cache-key function of the ctrtl_serve design cache. The properties under
// test are exactly the cache-key semantics docs/SERVICE.md promises:
// identical sources agree, any one-byte semantic difference disagrees, and
// fault-transformed streams hash differently from the pristine stream.

#include "transfer/hash.h"

#include <gtest/gtest.h>

#include "common/diagnostics.h"
#include "fault/inject.h"
#include "fault/plan.h"
#include "transfer/mapping.h"
#include "transfer/text_format.h"

namespace ctrtl::transfer {
namespace {

Design fig1_design() {
  Design design;
  design.name = "fig1";
  design.cs_max = 7;
  design.registers.push_back({"R1", 30});
  design.registers.push_back({"R2", 12});
  design.buses.push_back({"B1"});
  design.buses.push_back({"B2"});
  ModuleDecl add;
  add.name = "ADD";
  add.kind = ModuleKind::kAdd;
  design.modules.push_back(add);
  design.transfers.push_back(
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1"));
  return design;
}

TEST(StreamHasherTest, FieldBoundariesDoNotAlias) {
  StreamHasher ab_c;
  ab_c.update(std::string_view("ab"));
  ab_c.update(std::string_view("c"));
  StreamHasher a_bc;
  a_bc.update(std::string_view("a"));
  a_bc.update(std::string_view("bc"));
  EXPECT_NE(ab_c.digest(), a_bc.digest());

  StreamHasher empty;
  EXPECT_NE(empty.digest(), 0u);
}

TEST(StreamHasherTest, HexRenderingIsZeroPadded16Digits) {
  EXPECT_EQ(to_hex(0), "0000000000000000");
  EXPECT_EQ(to_hex(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(to_hex(0xffffffffffffffffull), "ffffffffffffffff");
}

TEST(CanonicalStreamHashTest, IdenticalDesignsHashEqual) {
  EXPECT_EQ(canonical_stream_hash(fig1_design()),
            canonical_stream_hash(fig1_design()));
}

TEST(CanonicalStreamHashTest, ExplicitCanonicalStreamMatchesDesignOverload) {
  const Design design = fig1_design();
  const std::vector<TransInstance> stream = to_instances(design.transfers);
  EXPECT_EQ(canonical_stream_hash(design),
            canonical_stream_hash(design, stream));
}

TEST(CanonicalStreamHashTest, OneByteDifferenceMisses) {
  const std::uint64_t base = canonical_stream_hash(fig1_design());

  Design init_changed = fig1_design();
  init_changed.registers[0].initial = 31;  // init 30 -> 31
  EXPECT_NE(canonical_stream_hash(init_changed), base);

  Design renamed = fig1_design();
  renamed.name = "fig2";
  EXPECT_NE(canonical_stream_hash(renamed), base);

  Design more_steps = fig1_design();
  more_steps.cs_max = 8;
  EXPECT_NE(canonical_stream_hash(more_steps), base);

  Design moved_transfer = fig1_design();
  moved_transfer.transfers[0].read_step = 4;
  EXPECT_NE(canonical_stream_hash(moved_transfer), base);
}

TEST(CanonicalStreamHashTest, RoundTripThroughTextFormatPreservesHash) {
  // The service hashes what it parses off the wire; a design that
  // round-trips through the .rtd text format must keep its key.
  const Design design = fig1_design();
  common::DiagnosticBag diags;
  const Design reparsed = parse_design(to_text(design), diags);
  ASSERT_FALSE(diags.has_errors()) << diags.to_text();
  EXPECT_EQ(canonical_stream_hash(reparsed), canonical_stream_hash(design));
}

TEST(CanonicalStreamHashTest, FaultTransformedStreamHashesDifferently) {
  const Design design = fig1_design();
  common::DiagnosticBag diags;
  const fault::FaultPlan plan =
      fault::parse_fault_plan("force-bus B1 = 99 @5:ra\n", diags);
  ASSERT_FALSE(diags.has_errors()) << diags.to_text();
  const auto faulted = fault::apply_plan(design, plan, diags);
  ASSERT_TRUE(faulted.has_value()) << diags.to_text();
  EXPECT_NE(canonical_stream_hash(faulted->design, faulted->instances),
            canonical_stream_hash(design));
}

TEST(CanonicalStreamHashTest, DistinctPlansSameStreamShareKey) {
  // Key identity is over the *transformed* pair, so a no-effect-site plan
  // (warning, empty transformation) keys identically to no plan at all.
  const Design design = fig1_design();
  common::DiagnosticBag diags;
  const fault::FaultPlan plan =
      fault::parse_fault_plan("stuck-disc R1 @3\n", diags);
  ASSERT_FALSE(diags.has_errors());
  const auto faulted = fault::apply_plan(design, plan, diags);
  ASSERT_TRUE(faulted.has_value()) << diags.to_text();
  if (faulted->dropped == 0 && faulted->rewritten == 0 &&
      faulted->inserted == 0) {
    EXPECT_EQ(canonical_stream_hash(faulted->design, faulted->instances),
              canonical_stream_hash(design));
  }
}

}  // namespace
}  // namespace ctrtl::transfer
