#include "transfer/conflict.h"

#include "rtl/modules.h"

#include <gtest/gtest.h>

#include "transfer/build.h"

namespace ctrtl::transfer {
namespace {

using rtl::Phase;

Design base_design(unsigned cs_max = 8) {
  Design d;
  d.name = "t";
  d.cs_max = cs_max;
  d.registers = {{"R1", 1}, {"R2", 2}, {"R3", 3}};
  d.buses = {{"B1"}, {"B2"}, {"B3"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}, {"SUB", ModuleKind::kSub, 1}};
  return d;
}

TEST(Analyze, CleanDesignReportsNothing) {
  Design d = base_design();
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 1, "ADD", 2, "B1", "R3"),
      RegisterTransfer::full("R1", "B1", "R2", "B2", 3, "SUB", 4, "B1", "R3"),
  };
  const AnalysisReport report = analyze(d);
  EXPECT_TRUE(report.clean());
}

TEST(Analyze, BusDoubleDriveDetected) {
  Design d = base_design();
  // Both operands routed over B1 in the same step.
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B1", 1, "ADD", 2, "B2", "R3")};
  const AnalysisReport report = analyze(d);
  ASSERT_EQ(report.drive_conflicts.size(), 1u);
  const DriveConflict& c = report.drive_conflicts[0];
  EXPECT_EQ(c.sink, "B1");
  EXPECT_EQ(c.step, 1u);
  EXPECT_EQ(c.drive_phase, Phase::kRa);
  EXPECT_EQ(c.visible_phase, Phase::kRb);
  EXPECT_EQ(c.driver_count, 2u);
}

TEST(Analyze, CrossTupleBusConflictDetected) {
  Design d = base_design();
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 1, "ADD", 2, "B1", "R3"),
      RegisterTransfer::full("R3", "B1", "R2", "B3", 1, "SUB", 2, "B2", "R1"),
  };
  const AnalysisReport report = analyze(d);
  ASSERT_FALSE(report.drive_conflicts.empty());
  EXPECT_EQ(report.drive_conflicts[0].sink, "B1");
}

TEST(Analyze, WritePhaseConflictDetected) {
  Design d = base_design();
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 1, "ADD", 2, "B3", "R3"),
      RegisterTransfer::full("R1", "B1", "R2", "B2", 1, "SUB", 2, "B3", "R1"),
  };
  const AnalysisReport report = analyze(d);
  bool found_wa_conflict = false;
  for (const DriveConflict& c : report.drive_conflicts) {
    if (c.sink == "B3" && c.drive_phase == Phase::kWa) {
      found_wa_conflict = true;
      EXPECT_EQ(c.visible_phase, Phase::kWb);
      EXPECT_EQ(c.step, 2u);
    }
  }
  EXPECT_TRUE(found_wa_conflict);
  // B1 at (1, ra) is also double-driven (both tuples read R1 over B1),
  // as is B2.
  EXPECT_GE(report.drive_conflicts.size(), 3u);
}

TEST(Analyze, RegisterInputConflictDetected) {
  Design d = base_design();
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 1, "ADD", 2, "B1", "R3"),
      RegisterTransfer::full("R1", "B2", "R2", "B3", 1, "SUB", 2, "B2", "R3"),
  };
  // Two different buses feed R3.in at (2, wb) — a conflict on the register
  // input port itself rather than on a bus.
  const AnalysisReport report = analyze(d);
  bool found = false;
  for (const DriveConflict& c : report.drive_conflicts) {
    if (c.sink == "R3.in") {
      found = true;
      EXPECT_EQ(c.step, 2u);
      EXPECT_EQ(c.drive_phase, Phase::kWb);
      EXPECT_EQ(c.visible_phase, Phase::kCr);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Analyze, DisciplineViolationSingleOperand) {
  Design d = base_design();
  RegisterTransfer t;
  t.operand_a = OperandPath{Endpoint::register_out("R1"), "B1"};
  t.read_step = 1;
  t.module = "ADD";
  d.transfers = {t};
  const AnalysisReport report = analyze(d);
  ASSERT_EQ(report.discipline_violations.size(), 1u);
  EXPECT_EQ(report.discipline_violations[0].module, "ADD");
  EXPECT_EQ(report.discipline_violations[0].ports_driven, 1u);
  EXPECT_EQ(report.discipline_violations[0].ports_required, 2u);
}

TEST(Analyze, DisciplineSatisfiedAcrossTuples) {
  // Two partial tuples together supply both operands in the same step.
  Design d = base_design();
  RegisterTransfer a;
  a.operand_a = OperandPath{Endpoint::register_out("R1"), "B1"};
  a.read_step = 1;
  a.module = "ADD";
  RegisterTransfer b;
  b.operand_b = OperandPath{Endpoint::register_out("R2"), "B2"};
  b.read_step = 1;
  b.module = "ADD";
  d.transfers = {a, b};
  const AnalysisReport report = analyze(d);
  EXPECT_TRUE(report.discipline_violations.empty());
}

TEST(Analyze, AluArityFollowsOpCode) {
  Design d = base_design();
  d.modules.push_back({"ALU", ModuleKind::kAlu, 1});
  RegisterTransfer t;
  t.operand_a = OperandPath{Endpoint::register_out("R1"), "B1"};
  t.read_step = 1;
  t.module = "ALU";
  t.op = rtl::alu_ops::kPassA;  // unary: one operand is correct
  d.transfers = {t};
  EXPECT_TRUE(analyze(d).clean());

  d.transfers[0].op = rtl::alu_ops::kAdd;  // binary: one operand violates
  EXPECT_EQ(analyze(d).discipline_violations.size(), 1u);
}

TEST(Analyze, MaccClearNeedsNoOperands) {
  Design d = base_design();
  d.modules.push_back({"MACC", ModuleKind::kMacc, 1, 16});
  RegisterTransfer t;
  t.read_step = 1;
  t.module = "MACC";
  t.op = rtl::MaccModule::kOpClear;
  d.transfers = {t};
  EXPECT_TRUE(analyze(d).clean());
}

TEST(Analyze, OperandWithoutOpOnOpModuleViolates) {
  Design d = base_design();
  d.modules.push_back({"ALU", ModuleKind::kAlu, 1});
  RegisterTransfer t;
  t.operand_a = OperandPath{Endpoint::register_out("R1"), "B1"};
  t.read_step = 1;
  t.module = "ALU";
  d.transfers = {t};
  EXPECT_EQ(analyze(d).discipline_violations.size(), 1u);
}

TEST(Analyze, ToStringRenderings) {
  const DriveConflict c{"B1", 5, Phase::kRa, Phase::kRb, 2};
  EXPECT_EQ(to_string(c),
            "2 transfers drive B1 at step 5, phase ra (ILLEGAL visible at rb)");
  const DisciplineViolation v{"ADD", 3, 1, 2};
  EXPECT_EQ(to_string(v), "module ADD at step 3 receives 1 of 2 required operands");
}

// --- Agreement with dynamic simulation ----------------------------------------

TEST(Analyze, StaticDriveConflictsAppearDynamically) {
  Design d = base_design();
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B1", 1, "ADD", 2, "B2", "R3")};
  const AnalysisReport report = analyze(d);
  ASSERT_EQ(report.drive_conflicts.size(), 1u);

  const auto model = build_model(d);
  const rtl::RunResult result = model->run();
  ASSERT_FALSE(result.conflicts.empty());
  const DriveConflict& predicted = report.drive_conflicts[0];
  bool matched = false;
  for (const rtl::Conflict& dynamic : result.conflicts) {
    if (dynamic.signal == predicted.sink && dynamic.step == predicted.step &&
        dynamic.phase == predicted.visible_phase) {
      matched = true;
    }
  }
  EXPECT_TRUE(matched) << "prediction " << to_string(predicted)
                       << " not observed dynamically";
}

TEST(Analyze, CleanReportMeansConflictFreeSimulation) {
  Design d = base_design();
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 1, "ADD", 2, "B1", "R3"),
      RegisterTransfer::full("R3", "B2", "R1", "B3", 3, "SUB", 4, "B2", "R2"),
      RegisterTransfer::full("R2", "B1", "R3", "B2", 5, "ADD", 6, "B3", "R1"),
  };
  ASSERT_TRUE(analyze(d).clean());
  const auto model = build_model(d);
  const rtl::RunResult result = model->run();
  EXPECT_TRUE(result.conflict_free());
}

}  // namespace
}  // namespace ctrtl::transfer
