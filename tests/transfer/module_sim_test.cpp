#include "transfer/module_sim.h"

#include <gtest/gtest.h>

#include "rtl/modules.h"

namespace ctrtl::transfer {
namespace {

using rtl::RtValue;

std::vector<RtValue> vals(std::initializer_list<std::int64_t> payloads) {
  std::vector<RtValue> out;
  for (const std::int64_t p : payloads) {
    out.push_back(RtValue::of(p));
  }
  return out;
}

const RtValue kDisc = RtValue::disc();

TEST(ModuleSim, AddPipelineLatencyOne) {
  const ModuleDecl decl{"ADD", ModuleKind::kAdd, 1};
  ModuleSim sim(decl);
  EXPECT_TRUE(sim.step(vals({30, 12}), kDisc).is_disc()) << "pipe still empty";
  EXPECT_EQ(sim.step({&kDisc, 1}, kDisc), RtValue::of(42));
}

TEST(ModuleSim, ZeroLatencyCombinational) {
  const ModuleDecl decl{"CP", ModuleKind::kCopy, 0};
  ModuleSim sim(decl);
  EXPECT_EQ(sim.step(vals({7}), kDisc), RtValue::of(7));
  EXPECT_EQ(sim.out(), RtValue::of(7));
  std::vector<RtValue> idle = {kDisc};
  EXPECT_TRUE(sim.step(idle, kDisc).is_disc());
}

TEST(ModuleSim, MulTwoStage) {
  const ModuleDecl decl{"MUL", ModuleKind::kMul, 2, 0};
  ModuleSim sim(decl);
  std::vector<RtValue> idle = {kDisc, kDisc};
  EXPECT_TRUE(sim.step(vals({6, 7}), kDisc).is_disc());
  EXPECT_TRUE(sim.step(idle, kDisc).is_disc());
  EXPECT_EQ(sim.step(idle, kDisc), RtValue::of(42));
}

TEST(ModuleSim, MixedOperandsPoison) {
  const ModuleDecl decl{"ADD", ModuleKind::kAdd, 1};
  ModuleSim sim(decl);
  std::vector<RtValue> mixed = {RtValue::of(1), kDisc};
  sim.step(mixed, kDisc);
  EXPECT_TRUE(sim.poisoned());
  // Healthy operands afterwards cannot heal the unit.
  EXPECT_TRUE(sim.step(vals({2, 3}), kDisc).is_illegal());
  EXPECT_TRUE(sim.step(vals({2, 3}), kDisc).is_illegal());
}

TEST(ModuleSim, IllegalOperandIsIllegal) {
  const ModuleDecl decl{"ADD", ModuleKind::kAdd, 1};
  ModuleSim sim(decl);
  std::vector<RtValue> operands = {RtValue::illegal(), RtValue::of(1)};
  EXPECT_TRUE(sim.evaluate(operands, kDisc).is_illegal());
}

TEST(ModuleSim, AluOpSelectAndArity) {
  const ModuleDecl decl{"ALU", ModuleKind::kAlu, 1};
  ModuleSim sim(decl);
  EXPECT_EQ(sim.arity_for(rtl::alu_ops::kAdd), 2u);
  EXPECT_EQ(sim.arity_for(rtl::alu_ops::kPassA), 1u);
  EXPECT_EQ(sim.evaluate(vals({9, 4}), RtValue::of(rtl::alu_ops::kSub)),
            RtValue::of(5));
  std::vector<RtValue> unary = {RtValue::of(80), kDisc};
  EXPECT_EQ(sim.evaluate(unary, RtValue::of(rtl::alu_ops::kRshiftBase + 3)),
            RtValue::of(10));
  EXPECT_THROW((void)sim.arity_for(999), std::domain_error);
}

TEST(ModuleSim, AluOperandWithoutOpIsIllegal) {
  const ModuleDecl decl{"ALU", ModuleKind::kAlu, 1};
  ModuleSim sim(decl);
  std::vector<RtValue> operands = {RtValue::of(1), kDisc};
  EXPECT_TRUE(sim.evaluate(operands, kDisc).is_illegal());
  std::vector<RtValue> idle = {kDisc, kDisc};
  EXPECT_TRUE(sim.evaluate(idle, kDisc).is_disc());
}

TEST(ModuleSim, MaccStatefulOps) {
  const ModuleDecl decl{"MACC", ModuleKind::kMacc, 1, 0};
  ModuleSim sim(decl);
  std::vector<RtValue> idle = {kDisc, kDisc};
  EXPECT_EQ(sim.evaluate(idle, RtValue::of(rtl::MaccModule::kOpClear)),
            RtValue::of(0));
  EXPECT_EQ(sim.evaluate(vals({3, 4}), RtValue::of(rtl::MaccModule::kOpMac)),
            RtValue::of(12));
  EXPECT_EQ(sim.evaluate(vals({5, 6}), RtValue::of(rtl::MaccModule::kOpMac)),
            RtValue::of(42));
  EXPECT_EQ(sim.evaluate(idle, kDisc), RtValue::of(42)) << "idle holds acc";
  std::vector<RtValue> load = {RtValue::of(7), kDisc};
  EXPECT_EQ(sim.evaluate(load, RtValue::of(rtl::MaccModule::kOpLoad)),
            RtValue::of(7));
  EXPECT_EQ(sim.evaluate(idle, RtValue::of(rtl::MaccModule::kOpHold)),
            RtValue::of(7));
}

TEST(ModuleSim, MaccStrayOperandOnIdleIsIllegal) {
  const ModuleDecl decl{"MACC", ModuleKind::kMacc, 1, 0};
  ModuleSim sim(decl);
  std::vector<RtValue> stray = {RtValue::of(1), kDisc};
  EXPECT_TRUE(sim.evaluate(stray, kDisc).is_illegal());
}

TEST(ModuleSim, CordicMatchesModuleKernel) {
  const ModuleDecl decl{"CORDIC", ModuleKind::kCordic, 1, 16, 24};
  ModuleSim sim(decl);
  const std::int64_t angle = 1 << 15;  // 0.5 rad in Q16
  std::vector<RtValue> operands = {RtValue::of(angle)};
  const RtValue sin_val =
      sim.evaluate(operands, RtValue::of(rtl::CordicModule::kOpSin));
  const auto expected = rtl::CordicModule::rotate(angle, 16, 24);
  EXPECT_EQ(sin_val, RtValue::of(expected.sin));
}

TEST(ModuleSim, MatchesKernelModuleOnRandomSequences) {
  // Differential check: ModuleSim::step vs the kernel rtl::Module pipeline
  // discipline for a latency-1 adder over a mixed healthy/idle sequence.
  const ModuleDecl decl{"ADD", ModuleKind::kAdd, 1};
  ModuleSim sim(decl);
  const std::vector<std::vector<RtValue>> sequence = {
      vals({1, 2}), {kDisc, kDisc}, vals({3, 4}), vals({5, 6}), {kDisc, kDisc}};
  const std::vector<RtValue> expected_out = {
      kDisc, RtValue::of(3), kDisc, RtValue::of(7), RtValue::of(11)};
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    EXPECT_EQ(sim.step(sequence[i], kDisc), expected_out[i]) << "step " << i;
  }
}

}  // namespace
}  // namespace ctrtl::transfer
