#include "transfer/text_format.h"

#include <gtest/gtest.h>

#include "rtl/modules.h"
#include "verify/random_design.h"

namespace ctrtl::transfer {
namespace {

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

TEST(TextFormat, Fig1RendersReadably) {
  const std::string text = to_text(fig1_design());
  EXPECT_NE(text.find("design fig1"), std::string::npos);
  EXPECT_NE(text.find("cs_max 7"), std::string::npos);
  EXPECT_NE(text.find("register R1 init 30"), std::string::npos);
  EXPECT_NE(text.find("module ADD add latency 1"), std::string::npos);
  EXPECT_NE(text.find("transfer R1 B1 R2 B2 5 ADD 6 B1 R1"), std::string::npos);
}

TEST(TextFormat, Fig1RoundTrips) {
  const Design original = fig1_design();
  common::DiagnosticBag diags;
  const Design reparsed = parse_design(to_text(original), diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_text();
  EXPECT_EQ(reparsed.name, original.name);
  EXPECT_EQ(reparsed.cs_max, original.cs_max);
  EXPECT_EQ(reparsed.registers.size(), original.registers.size());
  EXPECT_EQ(reparsed.transfers, original.transfers);
}

TEST(TextFormat, PartialTuplesAndOps) {
  Design d;
  d.name = "partial";
  d.cs_max = 4;
  d.registers = {{"A", 1}};
  d.buses = {{"B1"}};
  d.modules = {{"MACC", ModuleKind::kMacc, 1, 16}};
  RegisterTransfer clear;
  clear.read_step = 1;
  clear.module = "MACC";
  clear.op = rtl::MaccModule::kOpClear;
  d.transfers = {clear};

  common::DiagnosticBag diags;
  const Design reparsed = parse_design(to_text(d), diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_text();
  ASSERT_EQ(reparsed.transfers.size(), 1u);
  EXPECT_EQ(reparsed.transfers[0], clear);
  ASSERT_EQ(reparsed.modules.size(), 1u);
  EXPECT_EQ(reparsed.modules[0].frac_bits, 16u);
}

TEST(TextFormat, ConstantsAndInputsWithSigils) {
  Design d;
  d.name = "sig";
  d.cs_max = 3;
  d.registers = {{"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.constants = {{"two", 2}};
  d.inputs = {{"x"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  RegisterTransfer t;
  t.operand_a = OperandPath{Endpoint::constant("two"), "B1"};
  t.operand_b = OperandPath{Endpoint::input("x"), "B2"};
  t.read_step = 1;
  t.module = "ADD";
  t.write_step = 2;
  t.write_bus = "B1";
  t.destination = "OUT";
  d.transfers = {t};

  const std::string text = to_text(d);
  EXPECT_NE(text.find("transfer %two B1 $x B2 1 ADD 2 B1 OUT"),
            std::string::npos);
  common::DiagnosticBag diags;
  const Design reparsed = parse_design(text, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_text();
  EXPECT_EQ(reparsed.transfers, d.transfers);
}

TEST(TextFormat, CommentsAndBlankLinesIgnored) {
  common::DiagnosticBag diags;
  const Design d = parse_design(R"(
# a comment
design test   # trailing comment

cs_max 2
register R
)",
                                diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_text();
  EXPECT_EQ(d.name, "test");
  EXPECT_EQ(d.cs_max, 2u);
  EXPECT_EQ(d.registers.size(), 1u);
  EXPECT_FALSE(d.registers[0].initial.has_value());
}

TEST(TextFormat, ErrorsCarryLineNumbers) {
  common::DiagnosticBag diags;
  (void)parse_design("design x\nfrobnicate y\n", diags);
  ASSERT_TRUE(diags.has_errors());
  EXPECT_NE(diags.to_text().find("unknown keyword 'frobnicate' at 2:1"),
            std::string::npos);
}

TEST(TextFormat, BadNumbersReported) {
  common::DiagnosticBag diags;
  (void)parse_design("cs_max banana\n", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(TextFormat, TruncatedTransferReported) {
  common::DiagnosticBag diags;
  (void)parse_design("transfer R1 B1\n", diags);
  EXPECT_TRUE(diags.has_errors());
}

class TextFormatRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TextFormatRoundTrip, RandomDesignsSurvive) {
  verify::RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(GetParam()) + 7000;
  options.num_transfers = 3 + static_cast<unsigned>(GetParam() % 8);
  options.use_alu = GetParam() % 2 == 0;
  const Design original = verify::random_design(options);

  common::DiagnosticBag diags;
  const Design reparsed = parse_design(to_text(original), diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_text();
  EXPECT_EQ(reparsed.transfers, original.transfers) << "seed " << GetParam();
  EXPECT_EQ(reparsed.cs_max, original.cs_max);
  EXPECT_EQ(reparsed.registers.size(), original.registers.size());
  EXPECT_EQ(reparsed.modules.size(), original.modules.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextFormatRoundTrip, ::testing::Range(1, 21));

}  // namespace
}  // namespace ctrtl::transfer
