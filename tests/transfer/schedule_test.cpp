#include "transfer/schedule.h"

#include <gtest/gtest.h>

namespace ctrtl::transfer {
namespace {

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

TEST(StaticSchedule, Fig1LowersToSixInstancesInFourLevels) {
  const StaticSchedule schedule = lower_schedule(fig1_design());
  EXPECT_EQ(schedule.cs_max, 7u);
  ASSERT_EQ(schedule.levels.size(), 42u);
  EXPECT_EQ(schedule.occupancy.instances, 6u);
  EXPECT_EQ(schedule.occupancy.occupied_levels, 4u);  // (5,ra) (5,rb) (6,wa) (6,wb)
  EXPECT_EQ(schedule.occupancy.busiest_level, 2u);    // two ra fires, two rb fires

  const ScheduleLevel* ra = schedule.level(5, rtl::Phase::kRa);
  ASSERT_NE(ra, nullptr);
  ASSERT_EQ(ra->fires.size(), 2u);
  EXPECT_EQ(ra->fires[0].source, Endpoint::register_out("R1"));
  EXPECT_EQ(ra->fires[0].sink, Endpoint::bus("B1"));
  EXPECT_EQ(ra->fires[1].source, Endpoint::register_out("R2"));

  const ScheduleLevel* cm = schedule.level(5, rtl::Phase::kCm);
  ASSERT_NE(cm, nullptr);
  EXPECT_TRUE(cm->fires.empty());
  EXPECT_EQ(schedule.level(8, rtl::Phase::kRa), nullptr);
  EXPECT_EQ(schedule.level(0, rtl::Phase::kRa), nullptr);
}

TEST(StaticSchedule, LevelsPreserveDeclarationOrderWithinASlot) {
  Design d = fig1_design();
  // A second tuple sharing (5, ra): its fires must come after the first
  // tuple's within the same level.
  d.registers.push_back({"R3", 1});
  d.buses.push_back({"B3"});
  d.modules.push_back({"ADD2", ModuleKind::kAdd, 1});
  d.transfers.push_back(
      RegisterTransfer::full("R3", "B3", "R2", "B2", 5, "ADD2", 6, "B3", "R3"));
  // Conflicts on B2/ADD-operand sharing are irrelevant here; only lowering
  // order matters.
  const StaticSchedule schedule = lower_schedule(d);
  const ScheduleLevel* ra = schedule.level(5, rtl::Phase::kRa);
  ASSERT_NE(ra, nullptr);
  ASSERT_EQ(ra->fires.size(), 4u);
  EXPECT_EQ(ra->fires[0].source, Endpoint::register_out("R1"));
  EXPECT_EQ(ra->fires[2].source, Endpoint::register_out("R3"));
}

TEST(StaticSchedule, ModuleOrderFollowsDataDependencies) {
  // B consumes A's destination register: A must precede B even though B is
  // declared first.
  Design d;
  d.cs_max = 6;
  d.registers = {{"RA", 1}, {"RB", 2}, {"RMID", std::nullopt}, {"ROUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"LATE", ModuleKind::kAdd, 1}, {"EARLY", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("RA", "B1", "RB", "B2", 1, "EARLY", 2, "B1", "RMID"),
      RegisterTransfer::full("RMID", "B1", "RB", "B2", 3, "LATE", 4, "B1", "ROUT"),
  };
  const StaticSchedule schedule = lower_schedule(d);
  ASSERT_EQ(schedule.module_order.size(), 2u);
  EXPECT_EQ(schedule.module_order[0], "EARLY");
  EXPECT_EQ(schedule.module_order[1], "LATE");
}

TEST(StaticSchedule, RegisterFeedbackCycleFallsBackToDeclarationOrder) {
  // An accumulator feeding itself: the dependency graph has a self-loop via
  // the register; levelization must still terminate and emit the module.
  Design d;
  d.cs_max = 6;
  d.registers = {{"ACC", 0}, {"RB", 2}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("ACC", "B1", "RB", "B2", 1, "ADD", 2, "B1", "ACC"),
  };
  const StaticSchedule schedule = lower_schedule(d);
  ASSERT_EQ(schedule.module_order.size(), 1u);
  EXPECT_EQ(schedule.module_order[0], "ADD");
}

TEST(StaticSchedule, InvalidDesignRejected) {
  Design d = fig1_design();
  d.transfers[0].read_step = 9;  // outside 1..cs_max window for write at 6
  EXPECT_THROW((void)lower_schedule(d), std::invalid_argument);
}

TEST(StaticSchedule, TextRenderingMentionsLevelsAndOccupancy) {
  const std::string text = to_text(lower_schedule(fig1_design()));
  EXPECT_NE(text.find("step 5 ra"), std::string::npos) << text;
  EXPECT_NE(text.find("R1.out -> B1"), std::string::npos) << text;
  EXPECT_NE(text.find("module order: ADD"), std::string::npos) << text;
  EXPECT_NE(text.find("6 instances"), std::string::npos) << text;
}

}  // namespace
}  // namespace ctrtl::transfer
