#include "transfer/tuple.h"

#include <gtest/gtest.h>

namespace ctrtl::transfer {
namespace {

TEST(Endpoint, Factories) {
  EXPECT_EQ(Endpoint::register_out("R").kind, Endpoint::Kind::kRegisterOut);
  EXPECT_EQ(Endpoint::module_in("M", 1).port, 1u);
  EXPECT_EQ(Endpoint::bus("B").resource, "B");
}

TEST(Endpoint, ToStringForms) {
  EXPECT_EQ(to_string(Endpoint::register_out("R1")), "R1.out");
  EXPECT_EQ(to_string(Endpoint::register_in("R1")), "R1.in");
  EXPECT_EQ(to_string(Endpoint::module_out("ADD")), "ADD.mout");
  EXPECT_EQ(to_string(Endpoint::module_in("ADD", 0)), "ADD.in1");
  EXPECT_EQ(to_string(Endpoint::module_in("ADD", 1)), "ADD.in2");
  EXPECT_EQ(to_string(Endpoint::module_op("ALU")), "ALU.op");
  EXPECT_EQ(to_string(Endpoint::bus("B1")), "B1");
  EXPECT_EQ(to_string(Endpoint::constant("zero")), "#zero");
  EXPECT_EQ(to_string(Endpoint::input("x_in")), "$x_in");
}

class EndpointRoundTrip : public ::testing::TestWithParam<Endpoint> {};

TEST_P(EndpointRoundTrip, ParseInvertsToString) {
  const Endpoint& e = GetParam();
  EXPECT_EQ(parse_endpoint(to_string(e)), e);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, EndpointRoundTrip,
    ::testing::Values(Endpoint::register_out("R1"), Endpoint::register_in("P"),
                      Endpoint::module_out("Z_ADD"), Endpoint::module_in("M", 0),
                      Endpoint::module_in("M", 7), Endpoint::module_op("ALU"),
                      Endpoint::bus("BusA"), Endpoint::constant("zero"),
                      Endpoint::input("x_in")));

TEST(Endpoint, ParseRejectsMalformed) {
  EXPECT_THROW(parse_endpoint(""), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("R."), std::invalid_argument);
  EXPECT_THROW(parse_endpoint(".out"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("M.in0"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("M.bogus"), std::invalid_argument);
}

TEST(RegisterTransfer, FullBuilderIsComplete) {
  const RegisterTransfer t =
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1");
  EXPECT_TRUE(t.complete());
  EXPECT_EQ(t.operand_a->source, Endpoint::register_out("R1"));
  EXPECT_EQ(t.operand_b->bus, "B2");
  EXPECT_EQ(*t.read_step, 5u);
  EXPECT_EQ(*t.write_step, 6u);
  EXPECT_EQ(*t.destination, "R1");
  EXPECT_FALSE(t.op.has_value());
}

TEST(RegisterTransfer, ToStringMatchesPaperNotation) {
  const RegisterTransfer t =
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1");
  EXPECT_EQ(to_string(t), "(R1,B1,R2,B2,5,ADD,6,B1,R1)");
}

TEST(RegisterTransfer, PartialToStringUsesDashes) {
  RegisterTransfer t;
  t.operand_a = OperandPath{Endpoint::register_out("R1"), "B1"};
  t.read_step = 5;
  t.module = "ADD";
  EXPECT_EQ(to_string(t), "(R1,B1,-,-,5,ADD,-,-,-)");
  EXPECT_FALSE(t.complete());
}

TEST(RegisterTransfer, WritePartialToString) {
  RegisterTransfer t;
  t.module = "ADD";
  t.write_step = 6;
  t.write_bus = "B1";
  t.destination = "R1";
  EXPECT_EQ(to_string(t), "(-,-,-,-,-,ADD,6,B1,R1)");
}

TEST(RegisterTransfer, OpExtensionPrinted) {
  RegisterTransfer t =
      RegisterTransfer::full("A", "B1", "B", "B2", 1, "ALU", 2, "B1", "A", 1);
  EXPECT_EQ(to_string(t), "(A,B1,B,B2,1,ALU,2,B1,A)|op=1");
}

TEST(RegisterTransfer, ConstantOperandPrintsWithSigil) {
  RegisterTransfer t;
  t.operand_a = OperandPath{Endpoint::constant("zero"), "B1"};
  t.read_step = 1;
  t.module = "X_ADD";
  EXPECT_EQ(to_string(t), "(#zero,B1,-,-,1,X_ADD,-,-,-)");
}

TEST(TransInstance, NameMatchesPaperScheme) {
  const TransInstance instance{5, rtl::Phase::kRa, Endpoint::register_out("R1"),
                               Endpoint::bus("B1")};
  EXPECT_EQ(instance.name(), "R1_out_B1_5");
}

TEST(TransInstance, ToString) {
  const TransInstance instance{5, rtl::Phase::kRb, Endpoint::bus("B1"),
                               Endpoint::module_in("ADD", 0)};
  EXPECT_EQ(to_string(instance), "TRANS(5,rb) B1 -> ADD.in1");
}

}  // namespace
}  // namespace ctrtl::transfer
