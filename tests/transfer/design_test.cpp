#include "transfer/design.h"

#include <gtest/gtest.h>

namespace ctrtl::transfer {
namespace {

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1, 0, 24}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

TEST(Design, Fig1Validates) {
  common::DiagnosticBag diags;
  EXPECT_TRUE(validate(fig1_design(), diags)) << diags.to_text();
  EXPECT_FALSE(diags.has_errors());
}

TEST(Design, Lookups) {
  const Design d = fig1_design();
  EXPECT_NE(d.find_register("R1"), nullptr);
  EXPECT_EQ(d.find_register("Rx"), nullptr);
  EXPECT_NE(d.find_module("ADD"), nullptr);
  EXPECT_TRUE(d.has_bus("B1"));
  EXPECT_FALSE(d.has_bus("B9"));
  EXPECT_EQ(d.find_constant("zero"), nullptr);
  EXPECT_FALSE(d.has_input("x"));
}

TEST(Design, ModuleDeclShape) {
  EXPECT_EQ((ModuleDecl{"m", ModuleKind::kAdd}).num_inputs(), 2u);
  EXPECT_EQ((ModuleDecl{"m", ModuleKind::kCopy}).num_inputs(), 1u);
  EXPECT_EQ((ModuleDecl{"m", ModuleKind::kCordic}).num_inputs(), 1u);
  EXPECT_FALSE((ModuleDecl{"m", ModuleKind::kAdd}).has_op_port());
  EXPECT_TRUE((ModuleDecl{"m", ModuleKind::kAlu}).has_op_port());
  EXPECT_TRUE((ModuleDecl{"m", ModuleKind::kMacc}).has_op_port());
  EXPECT_TRUE((ModuleDecl{"m", ModuleKind::kCordic}).has_op_port());
}

TEST(Design, ModuleKindNames) {
  EXPECT_EQ(to_string(ModuleKind::kAdd), "add");
  EXPECT_EQ(to_string(ModuleKind::kMacc), "macc");
  EXPECT_EQ(to_string(ModuleKind::kCordic), "cordic");
}

TEST(DesignValidate, RejectsCsMaxZero) {
  Design d = fig1_design();
  d.cs_max = 0;
  common::DiagnosticBag diags;
  EXPECT_FALSE(validate(d, diags));
}

TEST(DesignValidate, RejectsDuplicateNames) {
  Design d = fig1_design();
  d.buses.push_back({"R1"});  // collides with register R1
  common::DiagnosticBag diags;
  EXPECT_FALSE(validate(d, diags));
}

TEST(DesignValidate, RejectsUndeclaredRegister) {
  Design d = fig1_design();
  d.transfers[0].operand_a->source = Endpoint::register_out("NOPE");
  common::DiagnosticBag diags;
  EXPECT_FALSE(validate(d, diags));
  EXPECT_NE(diags.to_text().find("NOPE"), std::string::npos);
}

TEST(DesignValidate, RejectsUndeclaredBus) {
  Design d = fig1_design();
  d.transfers[0].operand_a->bus = "B9";
  common::DiagnosticBag diags;
  EXPECT_FALSE(validate(d, diags));
}

TEST(DesignValidate, RejectsUndeclaredModule) {
  Design d = fig1_design();
  d.transfers[0].module = "MUL";
  common::DiagnosticBag diags;
  EXPECT_FALSE(validate(d, diags));
}

TEST(DesignValidate, RejectsStepsOutOfRange) {
  Design d = fig1_design();
  d.transfers[0].read_step = 0;
  common::DiagnosticBag diags;
  EXPECT_FALSE(validate(d, diags));

  d = fig1_design();
  d.transfers[0].write_step = 99;
  diags.clear();
  EXPECT_FALSE(validate(d, diags));
}

TEST(DesignValidate, RejectsLatencyMismatch) {
  Design d = fig1_design();
  d.transfers[0].write_step = 7;  // read 5 + latency 1 = 6, not 7
  common::DiagnosticBag diags;
  EXPECT_FALSE(validate(d, diags));
  EXPECT_NE(diags.to_text().find("latency"), std::string::npos);
}

TEST(DesignValidate, RejectsIncompleteWriteSide) {
  Design d = fig1_design();
  d.transfers[0].write_bus.reset();
  common::DiagnosticBag diags;
  EXPECT_FALSE(validate(d, diags));
}

TEST(DesignValidate, RejectsOpOnPlainModule) {
  Design d = fig1_design();
  d.transfers[0].op = 1;
  common::DiagnosticBag diags;
  EXPECT_FALSE(validate(d, diags));
}

TEST(DesignValidate, RequiresOpOnOpPortModule) {
  Design d = fig1_design();
  d.modules[0].kind = ModuleKind::kAlu;
  common::DiagnosticBag diags;
  EXPECT_FALSE(validate(d, diags)) << "ALU operand transfer without op code";
  d.transfers[0].op = 0;
  diags.clear();
  EXPECT_TRUE(validate(d, diags)) << diags.to_text();
}

TEST(DesignValidate, RejectsSecondOperandOnUnaryModule) {
  Design d = fig1_design();
  d.modules[0].kind = ModuleKind::kCopy;
  d.modules[0].latency = 0;
  d.transfers[0].write_step = 5;
  common::DiagnosticBag diags;
  EXPECT_FALSE(validate(d, diags));
}

TEST(DesignValidate, RejectsEmptyTransfer) {
  Design d = fig1_design();
  RegisterTransfer empty;
  empty.module = "ADD";
  d.transfers.push_back(empty);
  common::DiagnosticBag diags;
  EXPECT_FALSE(validate(d, diags));
}

TEST(DesignValidate, AcceptsConstantAndInputSources) {
  Design d = fig1_design();
  d.constants = {{"zero", 0}};
  d.inputs = {{"x_in"}};
  d.transfers[0].operand_a->source = Endpoint::constant("zero");
  d.transfers[0].operand_b->source = Endpoint::input("x_in");
  common::DiagnosticBag diags;
  EXPECT_TRUE(validate(d, diags)) << diags.to_text();
}

TEST(DesignValidate, RejectsUndeclaredConstant) {
  Design d = fig1_design();
  d.transfers[0].operand_a->source = Endpoint::constant("zero");
  common::DiagnosticBag diags;
  EXPECT_FALSE(validate(d, diags));
}

TEST(DesignValidate, CollectsAllErrorsAtOnce) {
  Design d = fig1_design();
  d.transfers[0].operand_a->source = Endpoint::register_out("NOPE1");
  d.transfers[0].operand_b->source = Endpoint::register_out("NOPE2");
  d.transfers[0].module = "NOPE3";
  common::DiagnosticBag diags;
  EXPECT_FALSE(validate(d, diags));
  EXPECT_GE(diags.error_count(), 3u);
}

}  // namespace
}  // namespace ctrtl::transfer
