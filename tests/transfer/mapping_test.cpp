#include "transfer/mapping.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace ctrtl::transfer {
namespace {

using rtl::Phase;

RegisterTransfer paper_tuple() {
  return RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1");
}

TEST(ForwardMapping, PaperExampleExpandsToSixInstances) {
  // Section 2.7's worked derivation.
  const auto instances = to_instances(paper_tuple());
  ASSERT_EQ(instances.size(), 6u);
  EXPECT_EQ(instances[0], (TransInstance{5, Phase::kRa, Endpoint::register_out("R1"),
                                         Endpoint::bus("B1")}));
  EXPECT_EQ(instances[1], (TransInstance{5, Phase::kRb, Endpoint::bus("B1"),
                                         Endpoint::module_in("ADD", 0)}));
  EXPECT_EQ(instances[2], (TransInstance{5, Phase::kRa, Endpoint::register_out("R2"),
                                         Endpoint::bus("B2")}));
  EXPECT_EQ(instances[3], (TransInstance{5, Phase::kRb, Endpoint::bus("B2"),
                                         Endpoint::module_in("ADD", 1)}));
  EXPECT_EQ(instances[4], (TransInstance{6, Phase::kWa, Endpoint::module_out("ADD"),
                                         Endpoint::bus("B1")}));
  EXPECT_EQ(instances[5], (TransInstance{6, Phase::kWb, Endpoint::bus("B1"),
                                         Endpoint::register_in("R1")}));
}

TEST(ForwardMapping, InstanceNamesMatchPaper) {
  const auto instances = to_instances(paper_tuple());
  EXPECT_EQ(instances[0].name(), "R1_out_B1_5");
  EXPECT_EQ(instances[1].name(), "B1_ADD_in1_5");
  EXPECT_EQ(instances[4].name(), "ADD_mout_B1_6");
  EXPECT_EQ(instances[5].name(), "B1_R1_in_6");
}

TEST(ForwardMapping, ReadOnlyPartialYieldsOperandInstances) {
  RegisterTransfer t;
  t.operand_a = OperandPath{Endpoint::register_out("R1"), "B1"};
  t.read_step = 5;
  t.module = "ADD";
  const auto instances = to_instances(t);
  ASSERT_EQ(instances.size(), 2u);
  EXPECT_EQ(instances[0].phase, Phase::kRa);
  EXPECT_EQ(instances[1].phase, Phase::kRb);
}

TEST(ForwardMapping, WriteOnlyPartialYieldsResultInstances) {
  RegisterTransfer t;
  t.module = "ADD";
  t.write_step = 6;
  t.write_bus = "B1";
  t.destination = "R1";
  const auto instances = to_instances(t);
  ASSERT_EQ(instances.size(), 2u);
  EXPECT_EQ(instances[0].phase, Phase::kWa);
  EXPECT_EQ(instances[1].phase, Phase::kWb);
}

TEST(ForwardMapping, OpExtensionAddsOpInstance) {
  RegisterTransfer t = paper_tuple();
  t.op = 3;
  const auto instances = to_instances(t);
  ASSERT_EQ(instances.size(), 7u);
  const auto op_instance =
      std::find_if(instances.begin(), instances.end(), [](const TransInstance& i) {
        return i.sink.kind == Endpoint::Kind::kModuleOp;
      });
  ASSERT_NE(op_instance, instances.end());
  EXPECT_EQ(op_instance->step, 5u);
  EXPECT_EQ(op_instance->phase, Phase::kRb);
  EXPECT_EQ(op_instance->source, Endpoint::constant("op3"));
}

TEST(OpConstantName, RoundTrip) {
  std::int64_t code = -1;
  EXPECT_TRUE(parse_op_constant_name(op_constant_name(17), code));
  EXPECT_EQ(code, 17);
  EXPECT_FALSE(parse_op_constant_name("xx", code));
  EXPECT_FALSE(parse_op_constant_name("op", code));
  EXPECT_FALSE(parse_op_constant_name("op1x", code));
}

TEST(ReverseMapping, PaperExamplePairsIntoPartials) {
  // Section 2.7: the six instances pair back into three partial tuples.
  const auto instances = to_instances(paper_tuple());
  std::vector<TransInstance> orphans;
  const auto partials = to_partial_tuples(instances, &orphans);
  EXPECT_TRUE(orphans.empty());
  ASSERT_EQ(partials.size(), 3u);
  EXPECT_EQ(to_string(partials[0]), "(R1,B1,-,-,5,ADD,-,-,-)");
  EXPECT_EQ(to_string(partials[1]), "(-,-,R2,B2,5,ADD,-,-,-)");
  EXPECT_EQ(to_string(partials[2]), "(-,-,-,-,-,ADD,6,B1,R1)");
}

TEST(ReverseMapping, DanglingInstanceReportedAsOrphan) {
  std::vector<TransInstance> instances = {
      {5, Phase::kRa, Endpoint::register_out("R1"), Endpoint::bus("B1")},
      // no rb counterpart
  };
  std::vector<TransInstance> orphans;
  const auto partials = to_partial_tuples(instances, &orphans);
  EXPECT_TRUE(partials.empty());
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0], instances[0]);
}

TEST(ReverseMapping, MismatchedStepsDoNotPair) {
  const std::vector<TransInstance> instances = {
      {5, Phase::kRa, Endpoint::register_out("R1"), Endpoint::bus("B1")},
      {6, Phase::kRb, Endpoint::bus("B1"), Endpoint::module_in("ADD", 0)},
  };
  std::vector<TransInstance> orphans;
  const auto partials = to_partial_tuples(instances, &orphans);
  EXPECT_TRUE(partials.empty());
  EXPECT_EQ(orphans.size(), 2u);
}

TEST(MergePartials, FusesPaperExampleBack) {
  const auto instances = to_instances(paper_tuple());
  auto partials = to_partial_tuples(instances);
  const auto merged = merge_partials(std::move(partials), {{"ADD", 1}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], paper_tuple());
}

TEST(MergePartials, KeepsUnfusablePartials) {
  RegisterTransfer write;
  write.module = "ADD";
  write.write_step = 6;
  write.write_bus = "B1";
  write.destination = "R1";
  const auto merged = merge_partials({write}, {{"ADD", 1}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], write);
}

TEST(MergePartials, AmbiguousFusionStaysPartial) {
  // Two identical read steps for the same module: fusing a write to either
  // would be a guess, so nothing fuses.
  RegisterTransfer read1;
  read1.operand_a = OperandPath{Endpoint::register_out("R1"), "B1"};
  read1.read_step = 5;
  read1.module = "ADD";
  RegisterTransfer read2;
  read2.operand_a = OperandPath{Endpoint::register_out("R2"), "B2"};
  read2.read_step = 5;
  read2.module = "ADD";
  RegisterTransfer write;
  write.module = "ADD";
  write.write_step = 6;
  write.write_bus = "B1";
  write.destination = "R1";
  // read1/read2 collide on operand_a so they do not merge with each other,
  // and the write sees two candidates.
  const auto merged = merge_partials({read1, read2, write}, {{"ADD", 1}});
  EXPECT_EQ(merged.size(), 3u);
}

// --- Round-trip property over randomized tuples -------------------------------

class TupleRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(TupleRoundTripTest, ForwardThenReverseThenMergeIsIdentity) {
  std::mt19937 rng(GetParam() * 31337);
  std::uniform_int_distribution<int> pick(0, 3);
  std::uniform_int_distribution<int> step_dist(1, 20);
  std::uniform_int_distribution<int> latency_dist(0, 3);

  const unsigned latency = static_cast<unsigned>(latency_dist(rng));
  const unsigned read_step = static_cast<unsigned>(step_dist(rng));
  const std::string module = "M" + std::to_string(pick(rng));
  RegisterTransfer t = RegisterTransfer::full(
      "Ra" + std::to_string(pick(rng)), "BA" + std::to_string(pick(rng)),
      "Rb" + std::to_string(pick(rng)), "BB" + std::to_string(pick(rng)), read_step,
      module, read_step + latency, "BW" + std::to_string(pick(rng)),
      "Rd" + std::to_string(pick(rng)));
  if (pick(rng) == 0) {
    t.op = pick(rng);
  }

  const auto instances = to_instances(t);
  std::vector<TransInstance> orphans;
  auto partials = to_partial_tuples(instances, &orphans);
  EXPECT_TRUE(orphans.empty());
  const auto merged = merge_partials(std::move(partials), {{module, latency}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], t) << "round trip must reproduce " << to_string(t);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TupleRoundTripTest, ::testing::Range(1, 50));

// Round trip over a *set* of tuples sharing resources but not colliding.
TEST(TupleRoundTripTest, MultipleTuplesDistinctSteps) {
  std::vector<RegisterTransfer> tuples;
  for (unsigned s = 1; s <= 5; ++s) {
    tuples.push_back(RegisterTransfer::full("R1", "B1", "R2", "B2", 2 * s, "ADD",
                                            2 * s + 1, "B1", "R1"));
  }
  const auto instances = to_instances(tuples);
  std::vector<TransInstance> orphans;
  auto partials = to_partial_tuples(instances, &orphans);
  EXPECT_TRUE(orphans.empty());
  auto merged = merge_partials(std::move(partials), {{"ADD", 1}});
  ASSERT_EQ(merged.size(), tuples.size());
  std::sort(merged.begin(), merged.end(),
            [](const RegisterTransfer& a, const RegisterTransfer& b) {
              return a.read_step < b.read_step;
            });
  EXPECT_EQ(merged, tuples);
}

}  // namespace
}  // namespace ctrtl::transfer
