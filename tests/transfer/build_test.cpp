#include "transfer/build.h"

#include <gtest/gtest.h>

#include "rtl/modules.h"

namespace ctrtl::transfer {
namespace {

Design fig1_design(std::int64_t a = 30, std::int64_t b = 12) {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", a}, {"R2", b}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

TEST(BuildModel, Fig1EndToEnd) {
  const auto model = build_model(fig1_design());
  const rtl::RunResult result = model->run();
  EXPECT_TRUE(result.conflict_free());
  EXPECT_EQ(model->find_register("R1")->value(), rtl::RtValue::of(42));
  EXPECT_EQ(result.stats.delta_cycles, 42u);
}

TEST(BuildModel, InvalidDesignThrowsWithDiagnostics) {
  Design d = fig1_design();
  d.transfers[0].module = "NOPE";
  try {
    build_model(d);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("NOPE"), std::string::npos);
  }
}

TEST(BuildModel, ResourceCountsMatchDesign) {
  const auto model = build_model(fig1_design());
  EXPECT_EQ(model->registers().size(), 2u);
  EXPECT_EQ(model->buses().size(), 2u);
  EXPECT_EQ(model->modules().size(), 1u);
  EXPECT_EQ(model->transfers().size(), 6u) << "one TRANS per tuple fragment";
}

TEST(BuildModel, EveryModuleKindElaborates) {
  Design d;
  d.cs_max = 4;
  d.registers = {{"R", 4}, {"S", 2}};
  d.buses = {{"B1"}, {"B2"}, {"B3"}};
  d.modules = {
      {"ADD", ModuleKind::kAdd, 1},     {"SUB", ModuleKind::kSub, 1},
      {"MUL", ModuleKind::kMul, 2, 0},  {"ALU", ModuleKind::kAlu, 1},
      {"CP", ModuleKind::kCopy, 0},     {"MACC", ModuleKind::kMacc, 1, 16},
      {"CORD", ModuleKind::kCordic, 1, 16, 24},
  };
  const auto model = build_model(d);
  for (const char* name : {"ADD", "SUB", "MUL", "ALU", "CP", "MACC", "CORD"}) {
    EXPECT_NE(model->find_module(name), nullptr) << name;
  }
}

TEST(BuildModel, AluOpTravelsViaOpConstant) {
  Design d;
  d.cs_max = 3;
  d.registers = {{"A", 9}, {"B", 4}, {"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ALU", ModuleKind::kAlu, 1}};
  d.transfers = {RegisterTransfer::full("A", "B1", "B", "B2", 1, "ALU", 2, "B1",
                                        "OUT", rtl::alu_ops::kSub)};
  const auto model = build_model(d);
  EXPECT_NE(model->find_constant("op1"), nullptr)
      << "op code 1 (sub) must have an implicit constant source";
  const rtl::RunResult result = model->run();
  EXPECT_TRUE(result.conflict_free());
  EXPECT_EQ(model->find_register("OUT")->value(), rtl::RtValue::of(5));
}

TEST(BuildModel, MulUsesFracBits) {
  Design d;
  d.cs_max = 4;
  const std::int64_t one = 1 << 16;
  d.registers = {{"A", one / 2}, {"B", one * 3}, {"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"MUL", ModuleKind::kMul, 2, 16}};
  d.transfers = {
      RegisterTransfer::full("A", "B1", "B", "B2", 1, "MUL", 3, "B1", "OUT")};
  const auto model = build_model(d);
  model->run();
  EXPECT_EQ(model->find_register("OUT")->value(), rtl::RtValue::of(one * 3 / 2));
}

TEST(BuildModel, ConstantOperand) {
  Design d;
  d.cs_max = 3;
  d.registers = {{"A", 40}, {"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.constants = {{"two", 2}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  RegisterTransfer t;
  t.operand_a = OperandPath{Endpoint::register_out("A"), "B1"};
  t.operand_b = OperandPath{Endpoint::constant("two"), "B2"};
  t.read_step = 1;
  t.module = "ADD";
  t.write_step = 2;
  t.write_bus = "B1";
  t.destination = "OUT";
  d.transfers = {t};
  const auto model = build_model(d);
  model->run();
  EXPECT_EQ(model->find_register("OUT")->value(), rtl::RtValue::of(42));
}

TEST(BuildModel, InputOperand) {
  Design d;
  d.cs_max = 3;
  d.registers = {{"A", 1}, {"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.inputs = {{"x_in"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  RegisterTransfer t;
  t.operand_a = OperandPath{Endpoint::register_out("A"), "B1"};
  t.operand_b = OperandPath{Endpoint::input("x_in"), "B2"};
  t.read_step = 1;
  t.module = "ADD";
  t.write_step = 2;
  t.write_bus = "B1";
  t.destination = "OUT";
  d.transfers = {t};
  const auto model = build_model(d);
  model->set_input("x_in", rtl::RtValue::of(10));
  model->run();
  EXPECT_EQ(model->find_register("OUT")->value(), rtl::RtValue::of(11));
}

TEST(EndpointSignal, ResolvesEveryKind) {
  const auto model = build_model(fig1_design());
  EXPECT_EQ(&endpoint_signal(*model, Endpoint::register_out("R1")),
            &model->find_register("R1")->out());
  EXPECT_EQ(&endpoint_signal(*model, Endpoint::register_in("R1")),
            &model->find_register("R1")->in());
  EXPECT_EQ(&endpoint_signal(*model, Endpoint::module_out("ADD")),
            &model->find_module("ADD")->out());
  EXPECT_EQ(&endpoint_signal(*model, Endpoint::module_in("ADD", 0)),
            &model->find_module("ADD")->input(0));
  EXPECT_EQ(&endpoint_signal(*model, Endpoint::bus("B1")), model->find_bus("B1"));
}

TEST(EndpointSignal, UnknownEndpointThrows) {
  const auto model = build_model(fig1_design());
  EXPECT_THROW(endpoint_signal(*model, Endpoint::register_out("X")),
               std::invalid_argument);
  EXPECT_THROW(endpoint_signal(*model, Endpoint::bus("X")), std::invalid_argument);
  EXPECT_THROW(endpoint_signal(*model, Endpoint::constant("X")),
               std::invalid_argument);
}

TEST(LatencyMap, ReflectsModuleDecls) {
  Design d = fig1_design();
  d.modules.push_back({"MUL", ModuleKind::kMul, 2, 16});
  const auto latencies = latency_map(d);
  EXPECT_EQ(latencies.at("ADD"), 1u);
  EXPECT_EQ(latencies.at("MUL"), 2u);
}

TEST(BuildModel, ChainedComputationAcrossSteps) {
  // OUT = (A + B) + C over two ADD uses of the same module.
  Design d;
  d.cs_max = 5;
  d.registers = {{"A", 10}, {"B", 20}, {"C", 12}, {"T", std::nullopt}, {"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("A", "B1", "B", "B2", 1, "ADD", 2, "B1", "T"),
      RegisterTransfer::full("T", "B1", "C", "B2", 3, "ADD", 4, "B1", "OUT"),
  };
  const auto model = build_model(d);
  const rtl::RunResult result = model->run();
  EXPECT_TRUE(result.conflict_free());
  EXPECT_EQ(model->find_register("OUT")->value(), rtl::RtValue::of(42));
}

}  // namespace
}  // namespace ctrtl::transfer
