#include "baseline/clocked_rtl.h"

#include <gtest/gtest.h>

#include "clocked/model.h"
#include "transfer/build.h"
#include "verify/equivalence.h"
#include "verify/random_design.h"

namespace ctrtl::baseline {
namespace {

using transfer::Design;
using transfer::ModuleKind;
using transfer::RegisterTransfer;

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

TEST(ClockedRtlSim, Fig1ComputesSameResult) {
  const Design d = fig1_design();
  ClockedRtlSim sim(clocked::plan_translation(d));
  const ClockedRtlSim::Result result = sim.run();
  EXPECT_EQ(sim.register_value("R1"), rtl::RtValue::of(42));
  EXPECT_EQ(result.clock_cycles, 8u);
  EXPECT_GT(sim.scheduler().now().fs, 0u) << "clocked: physical time advances";
}

TEST(ClockedRtlSim, WriteTraceMatchesSingleProcessModel) {
  const Design d = fig1_design();
  const clocked::TranslationPlan plan = clocked::plan_translation(d);
  ClockedRtlSim multi(plan);
  multi.run();
  clocked::ClockedModel single(plan);
  single.run();
  EXPECT_TRUE(
      verify::compare_write_traces(single.writes(), multi.writes()).consistent());
}

TEST(ClockedRtlSim, ZeroLatencyCombinationalPath) {
  Design d;
  d.cs_max = 3;
  d.registers = {{"A", 7}, {"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"CP", ModuleKind::kCopy, 0}};
  RegisterTransfer t;
  t.operand_a = transfer::OperandPath{transfer::Endpoint::register_out("A"), "B1"};
  t.read_step = 1;
  t.module = "CP";
  t.write_step = 1;
  t.write_bus = "B2";
  t.destination = "OUT";
  d.transfers = {t};
  ClockedRtlSim sim(clocked::plan_translation(d));
  sim.run();
  EXPECT_EQ(sim.register_value("OUT"), rtl::RtValue::of(7));
}

TEST(ClockedRtlSim, PaysClockTrafficOnIdleCycles) {
  // E6's second leg: the conventional clocked simulation pays clock-edge
  // events and flop-process resumptions on every cycle whether or not work
  // happens; the quantitative comparison against the clock-free model is
  // measured in bench_vs_clocked.
  Design d = fig1_design();
  d.cs_max = 50;  // 49 idle steps
  ClockedRtlSim sim(clocked::plan_translation(d));
  const ClockedRtlSim::Result result = sim.run();
  // >= 2 clk events per cycle plus one step event.
  EXPECT_GE(result.stats.events, std::uint64_t{3} * result.clock_cycles);
  // Every sync process resumes on every rising edge: step counter + module
  // + 2 registers = 4 resumptions per cycle minimum.
  EXPECT_GE(result.stats.resumptions, std::uint64_t{4} * result.clock_cycles);
  EXPECT_GT(sim.scheduler().now().fs, 0u);
}

class ClockedRtlAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ClockedRtlAgreement, MatchesAbstractModel) {
  verify::RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(GetParam()) + 700;
  options.num_transfers = 3 + static_cast<unsigned>(GetParam() % 8);
  options.use_alu = GetParam() % 2 == 1;
  const Design design = verify::random_design(options);

  auto abstract = transfer::build_model(design);
  verify::RegisterWriteTrace abstract_trace(*abstract);
  ASSERT_TRUE(abstract->run().conflict_free());

  ClockedRtlSim sim(clocked::plan_translation(design));
  sim.run();

  const verify::CheckReport report = verify::compare_write_traces(
      abstract_trace.writes(), sim.writes(), /*ignore_preload=*/true);
  EXPECT_TRUE(report.consistent()) << "seed " << GetParam() << ":\n"
                                   << report.to_text();
  for (const transfer::RegisterDecl& reg : design.registers) {
    EXPECT_EQ(abstract->find_register(reg.name)->value(),
              sim.register_value(reg.name))
        << "register " << reg.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockedRtlAgreement, ::testing::Range(1, 16));

}  // namespace
}  // namespace ctrtl::baseline
