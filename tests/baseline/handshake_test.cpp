#include "baseline/handshake.h"

#include <gtest/gtest.h>

#include "transfer/build.h"
#include "verify/random_design.h"

namespace ctrtl::baseline {
namespace {

using transfer::Design;
using transfer::ModuleKind;
using transfer::RegisterTransfer;

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

TEST(HandshakeModel, Fig1ComputesSameResult) {
  HandshakeModel model(fig1_design());
  model.run();
  EXPECT_EQ(model.register_value("R1"), rtl::RtValue::of(42));
  EXPECT_EQ(model.register_value("R2"), rtl::RtValue::of(12));
}

TEST(HandshakeModel, NoPhysicalTimeButManyMoreDeltas) {
  HandshakeModel model(fig1_design());
  const HandshakeModel::Result result = model.run();
  EXPECT_EQ(model.scheduler().now().fs, 0u) << "abstract timing, no physical time";
  // The paper's model does the same work in 42 delta cycles (7 steps * 6);
  // the handshake realization needs several four-phase exchanges per
  // transfer and lands far above that per unit of work: this single
  // transfer costs more than 42/7 = 6 deltas.
  EXPECT_GT(result.stats.delta_cycles, 6u);
}

TEST(HandshakeModel, ConstantOperands) {
  Design d;
  d.cs_max = 3;
  d.registers = {{"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.constants = {{"a", 20}, {"b", 22}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  RegisterTransfer t;
  t.operand_a = transfer::OperandPath{transfer::Endpoint::constant("a"), "B1"};
  t.operand_b = transfer::OperandPath{transfer::Endpoint::constant("b"), "B2"};
  t.read_step = 1;
  t.module = "ADD";
  t.write_step = 2;
  t.write_bus = "B1";
  t.destination = "OUT";
  d.transfers = {t};
  HandshakeModel model(d);
  model.run();
  EXPECT_EQ(model.register_value("OUT"), rtl::RtValue::of(42));
}

TEST(HandshakeModel, InputsWork) {
  Design d;
  d.cs_max = 2;
  d.registers = {{"OUT", std::nullopt}};
  d.buses = {{"B1"}};
  d.inputs = {{"x_in"}};
  d.modules = {{"CP", ModuleKind::kCopy, 0}};
  RegisterTransfer t;
  t.operand_a = transfer::OperandPath{transfer::Endpoint::input("x_in"), "B1"};
  t.read_step = 1;
  t.module = "CP";
  t.write_step = 1;
  t.write_bus = "B1";
  t.destination = "OUT";
  d.transfers = {t};
  HandshakeModel model(d);
  model.set_input("x_in", rtl::RtValue::of(99));
  model.run();
  EXPECT_EQ(model.register_value("OUT"), rtl::RtValue::of(99));
}

TEST(HandshakeModel, UnknownNamesThrow) {
  HandshakeModel model(fig1_design());
  EXPECT_THROW(model.register_value("X"), std::invalid_argument);
  EXPECT_THROW(model.set_input("X", rtl::RtValue::of(1)), std::invalid_argument);
}

TEST(HandshakeModel, RejectsWriteOnlyPartials) {
  Design d = fig1_design();
  RegisterTransfer write_only;
  write_only.module = "ADD";
  write_only.write_step = 3;
  write_only.write_bus = "B1";
  write_only.destination = "R2";
  d.transfers.push_back(write_only);
  EXPECT_THROW(HandshakeModel model(d), std::invalid_argument);
}

// Functional agreement with the clock-free model on serialized schedules.
class HandshakeAgreement : public ::testing::TestWithParam<int> {};

TEST_P(HandshakeAgreement, FinalRegistersMatchAbstractModel) {
  verify::RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(GetParam()) + 500;
  options.num_transfers = 3 + static_cast<unsigned>(GetParam() % 6);
  options.use_alu = GetParam() % 2 == 0;
  const Design design = verify::random_design(options);

  auto abstract = transfer::build_model(design);
  const rtl::RunResult abstract_result = abstract->run();
  ASSERT_TRUE(abstract_result.conflict_free());

  HandshakeModel handshake(design);
  handshake.run();

  for (const transfer::RegisterDecl& reg : design.registers) {
    EXPECT_EQ(abstract->find_register(reg.name)->value(),
              handshake.register_value(reg.name))
        << "register " << reg.name << " (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HandshakeAgreement, ::testing::Range(1, 16));

}  // namespace
}  // namespace ctrtl::baseline
