#include <gtest/gtest.h>

#include "iks/microcode.h"
#include "iks/program.h"
#include "iks/resources.h"
#include "transfer/build.h"

namespace ctrtl::iks {
namespace {

// Beyond decoding (microcode_test.cpp), the paper's worked example row must
// *execute*: "From these table entries, the transfers from registers to
// buses (J[6],BusA,y2,1), (Y,direct,x2,1) ... F := 1 are derived."

TEST(PaperExample, WorkedRowExecutes) {
  // Two-instruction program: the example row itself (address 7) and the
  // flag-set pattern in the following step.
  const std::vector<MicroInstruction> program = {
      iks_paper_example_row(),    // J[6] -> y2 over BusA; Y -> x2 direct
      {8, 14, 17, 0, 0, 0},       // F := 1 (the example's setf)
  };

  transfer::Design design = iks_resources(10);
  design.transfers =
      translate_microcode(program, iks_code_maps(), design);

  // Preload the sources the example reads.
  for (transfer::RegisterDecl& reg : design.registers) {
    if (reg.name == j_reg(6)) {
      reg.initial = 1234;
    } else if (reg.name == "Y") {
      reg.initial = 5678;
    }
  }

  auto model = transfer::build_model(design);
  const rtl::RunResult result = model->run();
  EXPECT_TRUE(result.conflict_free());

  EXPECT_EQ(model->find_register("y2")->value(), rtl::RtValue::of(1234))
      << "(J[6],BusA,y2): J[6] reached y2 over BusA";
  EXPECT_EQ(model->find_register("x2")->value(), rtl::RtValue::of(5678))
      << "(Y,direct,x2): Y reached x2 over the direct link";
  EXPECT_EQ(model->find_register("F")->value(),
            rtl::RtValue::of(std::int64_t{1} << kFracBits))
      << "F := 1";
  EXPECT_TRUE(model->find_register(j_reg(6))->value() == rtl::RtValue::of(1234))
      << "moves copy, they do not consume";
}

TEST(PaperExample, ExecutesInStoreAddressStep) {
  // The example row sits at store address 7, so its effects commit at
  // control step 7 (copy modules are zero-latency) — visible from step 8.
  const std::vector<MicroInstruction> program = {iks_paper_example_row()};
  transfer::Design design = iks_resources(10);
  design.transfers = translate_microcode(program, iks_code_maps(), design);
  for (transfer::RegisterDecl& reg : design.registers) {
    if (reg.name == j_reg(6)) {
      reg.initial = 42;
    }
  }
  auto model = transfer::build_model(design);
  auto& sched = model->scheduler();
  sched.initialize();
  rtl::Register* y2 = model->find_register("y2");
  unsigned first_step_with_value = 0;
  while (sched.step()) {
    if (first_step_with_value == 0 && y2->value().has_value()) {
      first_step_with_value = model->controller().cs().read();
    }
  }
  EXPECT_EQ(first_step_with_value, 8u)
      << "latched at cr of step 7, visible from step 8";
}

}  // namespace
}  // namespace ctrtl::iks
