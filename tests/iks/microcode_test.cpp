#include "iks/microcode.h"

#include <gtest/gtest.h>

#include "iks/program.h"
#include "iks/resources.h"
#include "rtl/modules.h"
#include "transfer/conflict.h"

namespace ctrtl::iks {
namespace {

TEST(IksResources, DeclaresPaperResourceSet) {
  const transfer::Design design = iks_resources(10);
  // Register files.
  for (unsigned i = 0; i < 7; ++i) {
    EXPECT_NE(design.find_register(j_reg(i)), nullptr) << "J" << i;
  }
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_NE(design.find_register(r_reg(i)), nullptr) << "R" << i;
  }
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_NE(design.find_register(m_reg(i)), nullptr) << "M" << i;
  }
  // Dedicated registers.
  for (const char* name : {"P", "X", "Y", "Z", "zang", "x2", "y2", "F"}) {
    EXPECT_NE(design.find_register(name), nullptr) << name;
  }
  // Buses, including the direct-link extras.
  for (const char* bus : {"BusA", "BusB", "LA", "LB"}) {
    EXPECT_TRUE(design.has_bus(bus)) << bus;
  }
  // Functional units per fig. 3 (+ copy modules for direct links).
  EXPECT_EQ(design.find_module("MULT")->latency, 2u)
      << "the multiplier is a 2-stage pipelined unit";
  EXPECT_EQ(design.find_module("ZADD")->latency, 0u)
      << "the adders are not pipelined";
  EXPECT_NE(design.find_module("MACC"), nullptr);
  EXPECT_NE(design.find_module("CORDIC"), nullptr);
  EXPECT_NE(design.find_module("CPZ"), nullptr);
}

TEST(CodeMaps, ContainPaperExampleCodes) {
  const CodeMaps& maps = iks_code_maps();
  EXPECT_TRUE(maps.opc1.contains(20));
  EXPECT_TRUE(maps.opc2.contains(2));
}

TEST(Translator, PaperExampleRowDecodes) {
  // The paper (section 3): store address 7, opc1=20, opc2=2 yields the
  // transfers (J[6],BusA,y2,1) and (Y,direct,x2,1).
  const transfer::Design resources = iks_resources(10);
  const MicroInstruction row = iks_paper_example_row();
  const auto transfers =
      translate_microcode(std::vector<MicroInstruction>{row}, iks_code_maps(),
                          resources);

  // J[6] travels over BusA into the y2 move path (CPY), and Y over the
  // direct link (LA + CPX) into x2.
  bool j6_via_busa_to_y2 = false;
  bool y_direct_to_x2 = false;
  for (const transfer::RegisterTransfer& t : transfers) {
    if (t.module == "CPY" && t.operand_a.has_value() &&
        t.operand_a->source == transfer::Endpoint::register_out("J6") &&
        t.operand_a->bus == "BusA" && t.destination == "y2") {
      j6_via_busa_to_y2 = true;
      EXPECT_EQ(*t.read_step, 7u) << "executes in control step = store address";
      EXPECT_EQ(*t.write_step, 7u) << "copy modules are zero-latency";
    }
    if (t.module == "CPX" && t.operand_a.has_value() &&
        t.operand_a->source == transfer::Endpoint::register_out("Y") &&
        t.operand_a->bus == "LA" && t.destination == "x2") {
      y_direct_to_x2 = true;
    }
  }
  EXPECT_TRUE(j6_via_busa_to_y2);
  EXPECT_TRUE(y_direct_to_x2);
}

TEST(Translator, MaccWriteUsesLatency) {
  const transfer::Design resources = iks_resources(10);
  const std::vector<MicroInstruction> program = {{3, 5, 8, 4, 5, 2}};
  const auto transfers =
      translate_microcode(program, iks_code_maps(), resources);
  ASSERT_EQ(transfers.size(), 1u);
  const transfer::RegisterTransfer& t = transfers[0];
  EXPECT_EQ(t.module, "MACC");
  EXPECT_EQ(*t.read_step, 3u);
  EXPECT_EQ(*t.write_step, 4u) << "MACC latency 1";
  EXPECT_EQ(*t.destination, "R4") << "m field indexes the write";
  EXPECT_EQ(t.op, rtl::MaccModule::kOpMac);
  EXPECT_EQ(t.operand_a->source, transfer::Endpoint::register_out("J5"));
  EXPECT_EQ(t.operand_b->source, transfer::Endpoint::register_out("R2"));
}

TEST(Translator, MultWriteTwoStepsLater) {
  const transfer::Design resources = iks_resources(10);
  const std::vector<MicroInstruction> program = {{5, 7, 10, 7, 0, 4}};
  const auto transfers =
      translate_microcode(program, iks_code_maps(), resources);
  ASSERT_EQ(transfers.size(), 1u);
  EXPECT_EQ(*transfers[0].write_step, 7u) << "MULT is 2-stage pipelined";
  EXPECT_EQ(*transfers[0].destination, "P");
  EXPECT_FALSE(transfers[0].op.has_value()) << "MULT has no operation port";
}

TEST(Translator, UnknownOpcodesRejected) {
  const transfer::Design resources = iks_resources(10);
  EXPECT_THROW(translate_microcode(std::vector<MicroInstruction>{{1, 99, 0, 0, 0, 0}},
                                   iks_code_maps(), resources),
               std::invalid_argument);
  EXPECT_THROW(translate_microcode(std::vector<MicroInstruction>{{1, 0, 99, 0, 0, 0}},
                                   iks_code_maps(), resources),
               std::invalid_argument);
  EXPECT_THROW(translate_microcode(std::vector<MicroInstruction>{{0, 1, 1, 0, 0, 0}},
                                   iks_code_maps(), resources),
               std::invalid_argument);
}

TEST(Translator, FullProgramValidatesAndIsConflictFree) {
  const IksInputs inputs{};  // values do not matter for structure
  const transfer::Design design = iks_design(inputs);
  common::DiagnosticBag diags;
  EXPECT_TRUE(transfer::validate(design, diags)) << diags.to_text();
  const transfer::AnalysisReport report = transfer::analyze(design);
  EXPECT_TRUE(report.clean()) << [&] {
    std::string text;
    for (const auto& c : report.drive_conflicts) {
      text += to_string(c) + "\n";
    }
    for (const auto& v : report.discipline_violations) {
      text += to_string(v) + "\n";
    }
    return text;
  }();
}

TEST(Translator, ProgramCoversThirtySteps) {
  EXPECT_EQ(iks_program().size(), 30u);
  EXPECT_EQ(iks_program_steps(), 30u);
  for (const MicroInstruction& instr : iks_program()) {
    EXPECT_GE(instr.addr, 1u);
    EXPECT_LE(instr.addr, 30u);
  }
}

}  // namespace
}  // namespace ctrtl::iks
