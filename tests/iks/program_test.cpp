#include "iks/program.h"

#include <gtest/gtest.h>

#include <cmath>

#include "iks/golden.h"
#include "iks/resources.h"
#include "verify/semantics.h"

namespace ctrtl::iks {
namespace {

constexpr double kOne = static_cast<double>(std::int64_t{1} << kFracBits);

std::int64_t fix(double v) {
  return static_cast<std::int64_t>(std::llround(v * kOne));
}

IksInputs sample_inputs(double t1 = 0.3, double t2 = 0.9) {
  IksInputs inputs;
  inputs.theta1 = fix(t1);
  inputs.theta2 = fix(t2);
  inputs.l1 = fix(1.0);
  inputs.l2 = fix(0.8);
  inputs.px = fix(1.0 * std::cos(0.7) + 0.8 * std::cos(1.2));
  inputs.py = fix(1.0 * std::sin(0.7) + 0.8 * std::sin(1.2));
  return inputs;
}

TEST(IksProgram, SimulationMatchesGoldenBitExactly) {
  // The paper's bottom-up verification: the register-transfer model
  // (microcode -> tuples -> TRANS processes -> delta-cycle simulation)
  // against the algorithmic-level description. Fixed-point kernels are
  // shared, so equality is exact.
  const IksInputs inputs = sample_inputs();
  const GoldenTrace golden = golden_iteration(inputs);

  auto model = build_iks_model(inputs);
  const rtl::RunResult result = model->run();
  EXPECT_TRUE(result.conflict_free());

  const IksOutputs outputs = read_outputs(*model);
  EXPECT_EQ(outputs.theta1_next, golden.theta1_next);
  EXPECT_EQ(outputs.theta2_next, golden.theta2_next);
  EXPECT_EQ(outputs.err_x, golden.ex);
  EXPECT_EQ(outputs.err_y, golden.ey);
  EXPECT_EQ(outputs.ee_x, golden.x);
  EXPECT_EQ(outputs.ee_y, golden.y);
  EXPECT_EQ(outputs.flag, std::int64_t{1} << kFracBits) << "F := 1 (setf)";
}

TEST(IksProgram, TakesExactlyCsMaxTimesSixDeltas) {
  auto model = build_iks_model(sample_inputs());
  const rtl::RunResult result = model->run();
  // 30 control steps * 6 phases (+1 trailing register-output update delta).
  EXPECT_GE(result.stats.delta_cycles, 180u);
  EXPECT_LE(result.stats.delta_cycles, 181u);
  EXPECT_EQ(model->scheduler().now().fs, 0u) << "pure delta time";
}

TEST(IksProgram, ReferenceSemanticsAgrees) {
  const IksInputs inputs = sample_inputs();
  const transfer::Design design = iks_design(inputs);
  const verify::EvalResult reference = verify::evaluate(design);
  EXPECT_TRUE(reference.conflicts.empty());

  const GoldenTrace golden = golden_iteration(inputs);
  EXPECT_EQ(reference.registers.at(r_reg(4)), rtl::RtValue::of(golden.theta1_next));
  EXPECT_EQ(reference.registers.at(r_reg(5)), rtl::RtValue::of(golden.theta2_next));
}

class IksAngleSweep : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(IksAngleSweep, MatchesGoldenAcrossStartingPoses) {
  const auto [t1, t2] = GetParam();
  const IksInputs inputs = sample_inputs(t1, t2);
  const GoldenTrace golden = golden_iteration(inputs);
  auto model = build_iks_model(inputs);
  ASSERT_TRUE(model->run().conflict_free());
  const IksOutputs outputs = read_outputs(*model);
  EXPECT_EQ(outputs.theta1_next, golden.theta1_next);
  EXPECT_EQ(outputs.theta2_next, golden.theta2_next);
}

INSTANTIATE_TEST_SUITE_P(Poses, IksAngleSweep,
                         ::testing::Values(std::pair{0.0, 0.0},
                                           std::pair{0.5, -0.5},
                                           std::pair{-0.8, 1.2},
                                           std::pair{1.5, 0.1},
                                           std::pair{-1.0, -1.0},
                                           std::pair{2.5, 0.7}));

TEST(IksProgram, IteratedModelConverges) {
  // Chain model runs: feed each iteration's angles back in. The RT-level
  // implementation must converge exactly like the golden model.
  IksInputs inputs = sample_inputs();
  double final_error = 1e9;
  for (int i = 0; i < 100; ++i) {
    auto model = build_iks_model(inputs);
    ASSERT_TRUE(model->run().conflict_free());
    const IksOutputs outputs = read_outputs(*model);
    inputs.theta1 = outputs.theta1_next;
    inputs.theta2 = outputs.theta2_next;
    final_error = position_error(inputs, inputs.theta1, inputs.theta2);
  }
  EXPECT_LT(final_error, 0.03) << "the RT model solves the IK problem";
}

}  // namespace
}  // namespace ctrtl::iks
