#include "iks/golden.h"

#include <gtest/gtest.h>

#include <cmath>

#include "iks/resources.h"

namespace ctrtl::iks {
namespace {

constexpr double kOne = static_cast<double>(std::int64_t{1} << kFracBits);

std::int64_t fix(double v) {
  return static_cast<std::int64_t>(std::llround(v * kOne));
}
double unfix(std::int64_t v) {
  return static_cast<double>(v) / kOne;
}

IksInputs reachable_target() {
  IksInputs inputs;
  inputs.theta1 = fix(0.3);
  inputs.theta2 = fix(0.9);
  inputs.l1 = fix(1.0);
  inputs.l2 = fix(0.8);
  // Target = fk(0.7, 0.5): reachable by construction.
  inputs.px = fix(1.0 * std::cos(0.7) + 0.8 * std::cos(1.2));
  inputs.py = fix(1.0 * std::sin(0.7) + 0.8 * std::sin(1.2));
  return inputs;
}

TEST(Golden, TrigMatchesLibm) {
  const IksInputs inputs = reachable_target();
  const GoldenTrace trace = golden_iteration(inputs);
  EXPECT_NEAR(unfix(trace.c1), std::cos(0.3), 1e-3);
  EXPECT_NEAR(unfix(trace.s1), std::sin(0.3), 1e-3);
  EXPECT_NEAR(unfix(trace.c12), std::cos(1.2), 1e-3);
  EXPECT_NEAR(unfix(trace.s12), std::sin(1.2), 1e-3);
}

TEST(Golden, ForwardKinematicsMatchesDoubleMath) {
  const IksInputs inputs = reachable_target();
  const GoldenTrace trace = golden_iteration(inputs);
  EXPECT_NEAR(unfix(trace.x), 1.0 * std::cos(0.3) + 0.8 * std::cos(1.2), 1e-3);
  EXPECT_NEAR(unfix(trace.y), 1.0 * std::sin(0.3) + 0.8 * std::sin(1.2), 1e-3);
}

TEST(Golden, UpdateMovesTowardTarget) {
  const IksInputs inputs = reachable_target();
  const GoldenTrace trace = golden_iteration(inputs);
  const double before = position_error(inputs, inputs.theta1, inputs.theta2);
  const double after = position_error(inputs, trace.theta1_next, trace.theta2_next);
  EXPECT_LT(after, before) << "one Jacobian-transpose step reduces the error";
}

TEST(Golden, IterationConverges) {
  // The whole point of the IKS: iterating drives the end effector onto the
  // target. 150 iterations with gain 2^-2 must get within ~1.5% workspace
  // units.
  const IksInputs inputs = reachable_target();
  const auto traces = golden_iterate(inputs, 150);
  const GoldenTrace& last = traces.back();
  const double err =
      position_error(inputs, last.theta1_next, last.theta2_next);
  EXPECT_LT(err, 0.015) << "final error " << err;
  // And monotone-ish: the last error is far below the first.
  const double first =
      position_error(inputs, traces.front().theta1_next, traces.front().theta2_next);
  EXPECT_LT(err, first / 5);
}

TEST(Golden, ZeroErrorGivesZeroUpdate) {
  IksInputs inputs = reachable_target();
  // Put the arm exactly on target angles and aim at its own position.
  inputs.theta1 = fix(0.7);
  inputs.theta2 = fix(0.5);
  const GoldenTrace probe = golden_iteration(inputs);
  IksInputs aligned = inputs;
  aligned.px = probe.x;
  aligned.py = probe.y;
  const GoldenTrace trace = golden_iteration(aligned);
  EXPECT_EQ(trace.ex, 0);
  EXPECT_EQ(trace.ey, 0);
  EXPECT_EQ(trace.dt1, 0);
  EXPECT_EQ(trace.dt2, 0);
  EXPECT_EQ(trace.theta1_next, aligned.theta1);
}

TEST(Golden, PositionErrorIsEuclidean) {
  IksInputs inputs;
  inputs.l1 = fix(1.0);
  inputs.l2 = fix(1.0);
  inputs.px = fix(5.0);
  inputs.py = fix(0.0);
  // theta = 0: arm stretched to (2, 0); error = 3.
  EXPECT_NEAR(position_error(inputs, 0, 0), 3.0, 1e-3);
}

}  // namespace
}  // namespace ctrtl::iks
