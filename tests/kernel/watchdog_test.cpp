#include "kernel/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace ctrtl::kernel {
namespace {

// Two of these processes cross-wired form a zero-delay oscillator: every
// event re-arms the other driver at the same physical time, so the model
// never quiesces and delta cycles accumulate without bound.
Process oscillate(Signal<int>& in, Signal<int>& out, DriverId driver) {
  const std::vector<SignalBase*> sens = {&in};
  for (;;) {
    co_await wait_on(sens);
    out.drive(driver, in.read() + 1);
  }
}

struct Oscillator {
  Scheduler sched;
  Signal<int>* a = nullptr;
  Signal<int>* b = nullptr;
  DriverId da = 0;

  Oscillator() {
    a = &sched.make_signal<int>("a", 0);
    b = &sched.make_signal<int>("b", 0);
    da = a->add_driver(0);
    const DriverId db = b->add_driver(0);
    sched.spawn("p1", oscillate(*a, *b, db));
    sched.spawn("p2", oscillate(*b, *a, da));
    sched.initialize();
  }

  void kick() { a->drive(da, 1); }
};

TEST(Watchdog, TripsOnNonConvergence) {
  Oscillator osc;
  osc.sched.set_max_delta_cycles(10);
  osc.kick();
  try {
    osc.sched.run();
    FAIL() << "oscillator must trip the watchdog";
  } catch (const WatchdogError& error) {
    EXPECT_EQ(error.limit(), 10u);
    EXPECT_EQ(error.next_delta(), 11u);
  }
  // Exactly `limit` delta cycles executed before the throw: the state at the
  // trip point is a valid partial simulation, not torn mid-cycle.
  EXPECT_EQ(osc.sched.stats().delta_cycles, 10u);
  EXPECT_EQ(osc.a->read() + osc.b->read(), 19) << "deltas 1..10 alternated";
}

TEST(Watchdog, QuiescentRunNeverTrips) {
  // A model that settles in N deltas runs clean under any limit >= N —
  // including the limit exactly equal to N (the trip fires only when work
  // is still pending past the bound).
  for (const std::uint64_t limit : {7u, 8u, 1000u}) {
    Scheduler sched;
    auto& a = sched.make_signal<int>("a", 0);
    auto& b = sched.make_signal<int>("b", 0);
    const DriverId da = a.add_driver(0);
    const DriverId db = b.add_driver(0);
    auto bounded = [](Signal<int>& in, Signal<int>& out, DriverId driver,
                      int rounds) -> Process {
      const std::vector<SignalBase*> sens = {&in};
      for (int i = 0; i < rounds; ++i) {
        co_await wait_on(sens);
        out.drive(driver, in.read() + 1);
      }
    };
    sched.spawn("p1", bounded(a, b, db, 3));
    sched.spawn("p2", bounded(b, a, da, 3));
    sched.initialize();
    sched.set_max_delta_cycles(limit);
    a.drive(da, 1);
    EXPECT_NO_THROW(sched.run()) << "limit " << limit;
    EXPECT_EQ(sched.stats().delta_cycles, 7u);
  }
}

TEST(Watchdog, SilentCycleCapWinsWhenBoundsCoincide) {
  // run(max_cycles) checks its loop bound before step() ever reaches the
  // watchdog, so equal limits stop silently — the documented tie-break that
  // keeps the event engine aligned with the compiled/lane engines.
  Oscillator osc;
  osc.sched.set_max_delta_cycles(10);
  osc.kick();
  EXPECT_NO_THROW(osc.sched.run(10));
  EXPECT_EQ(osc.sched.stats().delta_cycles, 10u);
}

TEST(Watchdog, DisarmedByDefault) {
  EXPECT_EQ(Scheduler{}.max_delta_cycles(), Scheduler::kNoLimit);
  Oscillator osc;
  osc.kick();
  // kNoLimit watchdog + explicit cycle cap: the historical silent stop.
  EXPECT_NO_THROW(osc.sched.run(100));
  EXPECT_EQ(osc.sched.stats().delta_cycles, 100u);
}

}  // namespace
}  // namespace ctrtl::kernel
