#include "kernel/signal.h"

#include <gtest/gtest.h>

#include <numeric>

#include "kernel/scheduler.h"

namespace ctrtl::kernel {
namespace {

TEST(Signal, InitialValueIsEffective) {
  Scheduler sched;
  auto& sig = sched.make_signal<int>("s", 42);
  EXPECT_EQ(sig.read(), 42);
  EXPECT_EQ(sig.name(), "s");
  EXPECT_EQ(sig.driver_count(), 0u);
}

TEST(Signal, DriveTakesEffectNextDelta) {
  Scheduler sched;
  auto& sig = sched.make_signal<int>("s", 0);
  const DriverId d = sig.add_driver(0);
  sched.initialize();
  sig.drive(d, 7);
  EXPECT_EQ(sig.read(), 0) << "assignment must not be visible immediately";
  sched.step();
  EXPECT_EQ(sig.read(), 7);
}

TEST(Signal, LastDriveWinsWithinSamePhase) {
  Scheduler sched;
  auto& sig = sched.make_signal<int>("s", 0);
  const DriverId d = sig.add_driver(0);
  sched.initialize();
  sig.drive(d, 1);
  sig.drive(d, 2);
  sched.step();
  EXPECT_EQ(sig.read(), 2) << "projected waveform replacement: last wins";
}

TEST(Signal, SecondDriverOnUnresolvedThrows) {
  Scheduler sched;
  auto& sig = sched.make_signal<int>("s", 0);
  sig.add_driver(0);
  EXPECT_THROW(sig.add_driver(0), std::logic_error);
}

TEST(Signal, ResolverCombinesAllDrivers) {
  Scheduler sched;
  auto sum = [](std::span<const int> v) {
    return std::accumulate(v.begin(), v.end(), 0);
  };
  auto& sig = sched.make_signal<int>("s", 0, sum);
  const DriverId d1 = sig.add_driver(0);
  const DriverId d2 = sig.add_driver(0);
  sched.initialize();
  sig.drive(d1, 3);
  sig.drive(d2, 4);
  sched.step();
  EXPECT_EQ(sig.read(), 7);
}

TEST(Signal, ResolverSeesUndrivenInitials) {
  Scheduler sched;
  auto sum = [](std::span<const int> v) {
    return std::accumulate(v.begin(), v.end(), 0);
  };
  auto& sig = sched.make_signal<int>("s", 0, sum);
  const DriverId d1 = sig.add_driver(10);
  sig.add_driver(20);  // never driven; contributes its initial value
  sched.initialize();
  sig.drive(d1, 1);
  sched.step();
  EXPECT_EQ(sig.read(), 21);
}

TEST(Signal, NoEventWhenValueUnchanged) {
  Scheduler sched;
  auto& sig = sched.make_signal<int>("s", 5);
  const DriverId d = sig.add_driver(5);
  sched.initialize();
  const std::uint64_t events_before = sched.stats().events;
  sig.drive(d, 5);
  sched.step();
  EXPECT_EQ(sched.stats().events, events_before)
      << "a transaction with the same value must not produce an event";
}

TEST(Signal, DriverValueInspection) {
  Scheduler sched;
  auto first = [](std::span<const int> v) { return v.empty() ? -1 : v.front(); };
  auto& sig = sched.make_signal<int>("s", 0, first);
  const DriverId d = sig.add_driver(9);
  EXPECT_EQ(sig.driver_value(d), 9);
  EXPECT_THROW(sig.driver_value(5), std::out_of_range);
}

TEST(Signal, BadDriverIdThrows) {
  Scheduler sched;
  auto& sig = sched.make_signal<int>("s", 0);
  EXPECT_THROW(sig.drive(0, 1), std::out_of_range);
}

TEST(Signal, DebugValueRendersStreamables) {
  Scheduler sched;
  auto& sig = sched.make_signal<int>("s", 42);
  EXPECT_EQ(sig.debug_value(), "42");
}

TEST(Signal, DriveAfterAppliesAtPhysicalTime) {
  Scheduler sched;
  auto& sig = sched.make_signal<int>("s", 0);
  const DriverId d = sig.add_driver(0);
  sched.initialize();
  sig.drive_after(d, 5, 1000);
  sched.run();
  EXPECT_EQ(sig.read(), 5);
  EXPECT_EQ(sched.now().fs, 1000u);
}

TEST(Signal, SignalIdsAreSequential) {
  Scheduler sched;
  auto& a = sched.make_signal<int>("a", 0);
  auto& b = sched.make_signal<int>("b", 0);
  EXPECT_EQ(a.id(), 0u);
  EXPECT_EQ(b.id(), 1u);
  EXPECT_EQ(sched.signal_count(), 2u);
}

TEST(Signal, SetEffectiveBypassesDriversAndReportsEvents) {
  // The external-engine interface (rtl::CompiledEngine): a direct effective
  // write returns whether the value changed, without touching drivers or
  // scheduling an update.
  Scheduler sched;
  auto& sig = sched.make_signal<int>("s", 0);
  EXPECT_FALSE(sig.set_effective(0)) << "same value: no event";
  EXPECT_TRUE(sig.set_effective(7));
  EXPECT_EQ(sig.read(), 7);
  EXPECT_FALSE(sig.set_effective(7));
  EXPECT_EQ(sched.stats().updates, 0u) << "no kernel update was scheduled";
}

}  // namespace
}  // namespace ctrtl::kernel
