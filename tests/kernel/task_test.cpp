#include "kernel/task.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "kernel/scheduler.h"

namespace ctrtl::kernel {
namespace {

// Helpers: nested task structures driven by a scheduler, mirroring how the
// VHDL interpreter uses Task (statement executors awaiting wait statements
// at arbitrary nesting depth).

Task leaf_wait(Signal<int>& s, int threshold) {
  const std::vector<SignalBase*> sens = {&s};
  co_await wait_until(sens, [&s, threshold] { return s.read() >= threshold; });
}

Task middle(Signal<int>& s, std::vector<int>& log) {
  log.push_back(1);
  co_await leaf_wait(s, 1);
  log.push_back(2);
  co_await leaf_wait(s, 2);
  log.push_back(3);
}

Process outer(Signal<int>& s, std::vector<int>& log) {
  log.push_back(0);
  co_await middle(s, log);
  log.push_back(4);
}

TEST(Task, NestedSuspensionResumesThroughTheStack) {
  Scheduler sched;
  auto& s = sched.make_signal<int>("s", 0);
  const DriverId d = s.add_driver(0);
  std::vector<int> log;
  sched.spawn("p", outer(s, log));
  sched.initialize();
  EXPECT_EQ(log, (std::vector<int>{0, 1})) << "suspended inside the leaf";
  s.drive(d, 1);
  sched.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2})) << "first leaf wait satisfied";
  s.drive(d, 2);
  sched.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4}))
      << "completion propagates back up through middle to the process";
}

Task throwing_leaf() {
  throw std::runtime_error("leaf boom");
  co_return;  // unreachable; makes this a coroutine
}

Process catching_process(bool& caught, bool& after) {
  try {
    co_await throwing_leaf();
  } catch (const std::runtime_error&) {
    caught = true;
  }
  after = true;
}

TEST(Task, ExceptionsPropagateToAwaiter) {
  Scheduler sched;
  bool caught = false;
  bool after = false;
  sched.spawn("p", catching_process(caught, after));
  sched.run();
  EXPECT_TRUE(caught);
  EXPECT_TRUE(after);
}

Process rethrowing_process() {
  co_await throwing_leaf();
}

TEST(Task, UncaughtTaskExceptionReachesScheduler) {
  Scheduler sched;
  sched.spawn("p", rethrowing_process());
  EXPECT_THROW(sched.run(), std::runtime_error);
}

Task counting_task(int& counter) {
  ++counter;
  co_return;
}

Process sequential_tasks(int& counter) {
  for (int i = 0; i < 5; ++i) {
    co_await counting_task(counter);
  }
}

TEST(Task, SequentialTasksWithoutSuspension) {
  Scheduler sched;
  int counter = 0;
  sched.spawn("p", sequential_tasks(counter));
  sched.run();
  EXPECT_EQ(counter, 5);
}

TEST(Task, DestroyedMidSuspensionDoesNotLeak) {
  // A process suspended deep inside nested tasks is shut down; frame
  // destruction must unwind the whole chain (checked by ASan-less smoke:
  // no crash, no UB under valgrind-style runs).
  Scheduler sched;
  auto& s = sched.make_signal<int>("s", 0);
  std::vector<int> log;
  sched.spawn("p", outer(s, log));
  sched.initialize();
  sched.shutdown();
  SUCCEED();
}

}  // namespace
}  // namespace ctrtl::kernel
