#include "kernel/scheduler.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace ctrtl::kernel {
namespace {

// A process factory: ping-pong between two signals for `rounds` rounds.
Process ping_pong(Scheduler& sched, Signal<int>& in, Signal<int>& out,
                  DriverId driver, int rounds) {
  const std::vector<SignalBase*> sens = {&in};
  for (int i = 0; i < rounds; ++i) {
    co_await wait_on(sens);
    out.drive(driver, in.read() + 1);
  }
}

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), (SimTime{0, 0}));
  EXPECT_TRUE(sched.quiescent());
}

TEST(Scheduler, RunOnEmptyModelDoesNothing) {
  Scheduler sched;
  EXPECT_EQ(sched.run(), 0u);
  EXPECT_EQ(sched.stats().delta_cycles, 0u);
}

TEST(Scheduler, InitializationRunsEveryProcessOnce) {
  Scheduler sched;
  int runs = 0;
  auto proc = [&]() -> Process {
    ++runs;
    co_return;
  };
  sched.spawn("a", proc());
  sched.spawn("b", proc());
  EXPECT_EQ(runs, 0) << "processes must not run before initialization";
  sched.initialize();
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(sched.stats().resumptions, 2u);
}

TEST(Scheduler, InitializeIsIdempotent) {
  Scheduler sched;
  int runs = 0;
  auto proc = [&]() -> Process {
    ++runs;
    co_return;
  };
  sched.spawn("a", proc());
  sched.initialize();
  sched.initialize();
  EXPECT_EQ(runs, 1);
}

TEST(Scheduler, DeltaCyclesCountedPerStep) {
  Scheduler sched;
  auto& a = sched.make_signal<int>("a", 0);
  auto& b = sched.make_signal<int>("b", 0);
  const DriverId da = a.add_driver(0);
  const DriverId db = b.add_driver(0);
  // a -> b -> a ... 3 rounds each = 6 deltas after the kick-off.
  sched.spawn("p1", ping_pong(sched, a, b, db, 3));
  sched.spawn("p2", ping_pong(sched, b, a, da, 3));
  sched.initialize();
  a.drive(da, 1);  // kick off
  sched.run();
  // Hops: a=1, b=2, a=3, b=4, a=5, b=6, a=7 — each hop is one delta cycle.
  EXPECT_EQ(sched.stats().delta_cycles, 7u);
  EXPECT_EQ(a.read(), 7);
  EXPECT_EQ(b.read(), 6);
}

TEST(Scheduler, WaitUntilChecksPredicateOnEachEvent) {
  Scheduler sched;
  auto& s = sched.make_signal<int>("s", 0);
  const DriverId d = s.add_driver(0);
  bool fired = false;
  auto waiter = [&]() -> Process {
    const std::vector<SignalBase*> sens = {&s};
    co_await wait_until(sens, [&] { return s.read() >= 3; });
    fired = true;
  };
  sched.spawn("w", waiter());
  sched.initialize();
  s.drive(d, 1);
  sched.step();
  EXPECT_FALSE(fired);
  s.drive(d, 2);
  sched.step();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sched.stats().condition_rejects, 2u);
  s.drive(d, 3);
  sched.step();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, WaitUntilSuspendsEvenIfConditionAlreadyTrue) {
  // VHDL `wait until` semantics: the process suspends and only re-evaluates
  // on the next event, even when the condition currently holds.
  Scheduler sched;
  auto& s = sched.make_signal<int>("s", 10);
  const DriverId d = s.add_driver(10);
  bool resumed = false;
  auto waiter = [&]() -> Process {
    const std::vector<SignalBase*> sens = {&s};
    co_await wait_until(sens, [&] { return s.read() >= 5; });
    resumed = true;
  };
  sched.spawn("w", waiter());
  sched.run();
  EXPECT_FALSE(resumed) << "no event on s, so the process must stay suspended";
  s.drive(d, 11);
  sched.run();
  EXPECT_TRUE(resumed);
}

TEST(Scheduler, MultipleEventsTriggerProcessOncePerCycle) {
  Scheduler sched;
  auto& a = sched.make_signal<int>("a", 0);
  auto& b = sched.make_signal<int>("b", 0);
  const DriverId da = a.add_driver(0);
  const DriverId db = b.add_driver(0);
  int resumes = 0;
  auto waiter = [&]() -> Process {
    const std::vector<SignalBase*> sens = {&a, &b};
    for (;;) {
      co_await wait_on(sens);
      ++resumes;
    }
  };
  sched.spawn("w", waiter());
  sched.initialize();
  a.drive(da, 1);
  b.drive(db, 1);
  sched.step();
  EXPECT_EQ(resumes, 1) << "one resumption even when both signals fired";
}

TEST(Scheduler, WaitForAdvancesPhysicalTime) {
  Scheduler sched;
  std::vector<std::uint64_t> wake_times;
  auto timer = [&]() -> Process {
    for (int i = 0; i < 3; ++i) {
      co_await wait_for_fs(100);
      wake_times.push_back(sched.now().fs);
    }
  };
  sched.spawn("t", timer());
  sched.run();
  EXPECT_EQ(wake_times, (std::vector<std::uint64_t>{100, 200, 300}));
  EXPECT_EQ(sched.stats().timed_cycles, 3u);
}

TEST(Scheduler, TimedEventsInterleaveDeterministically) {
  Scheduler sched;
  std::vector<int> order;
  auto proc = [&](int id, std::uint64_t delay) -> Process {
    co_await wait_for_fs(delay);
    order.push_back(id);
  };
  sched.spawn("late", proc(2, 200));
  sched.spawn("early", proc(1, 100));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, ProcessExceptionPropagatesFromRun) {
  Scheduler sched;
  auto bad = [&]() -> Process {
    co_await wait_for_fs(10);
    throw std::runtime_error("boom");
  };
  sched.spawn("bad", bad());
  EXPECT_THROW(sched.run(), std::runtime_error);
}

TEST(Scheduler, ProcessExceptionDuringInitializationPropagates) {
  Scheduler sched;
  auto bad = []() -> Process {
    throw std::runtime_error("early boom");
    co_return;  // unreachable; makes this a coroutine
  };
  sched.spawn("bad", bad());
  EXPECT_THROW(sched.initialize(), std::runtime_error);
}

TEST(Scheduler, MaxCyclesBoundsRun) {
  Scheduler sched;
  auto& s = sched.make_signal<int>("s", 0);
  const DriverId d = s.add_driver(0);
  auto forever = [&]() -> Process {
    const std::vector<SignalBase*> sens = {&s};
    for (;;) {
      co_await wait_on(sens);
      s.drive(d, s.read() + 1);
    }
  };
  sched.spawn("f", forever());
  sched.initialize();
  s.drive(d, 1);
  EXPECT_EQ(sched.run(50), 50u);
  EXPECT_FALSE(sched.quiescent());
}

TEST(Scheduler, EventObserverSeesEveryEvent) {
  Scheduler sched;
  auto& s = sched.make_signal<int>("s", 0);
  const DriverId d = s.add_driver(0);
  std::vector<std::string> seen;
  const std::size_t id = sched.add_event_observer([&](const SignalBase& sig, SimTime) {
    seen.push_back(sig.name() + "=" + sig.debug_value());
  });
  sched.initialize();
  s.drive(d, 1);
  sched.step();
  s.drive(d, 2);
  sched.step();
  EXPECT_EQ(seen, (std::vector<std::string>{"s=1", "s=2"}));
  sched.remove_event_observer(id);
  s.drive(d, 3);
  sched.step();
  EXPECT_EQ(seen.size(), 2u) << "removed observers must not fire";
}

TEST(Scheduler, StatsSubtraction) {
  KernelStats a;
  a.delta_cycles = 10;
  a.events = 5;
  KernelStats b;
  b.delta_cycles = 4;
  b.events = 2;
  const KernelStats diff = a - b;
  EXPECT_EQ(diff.delta_cycles, 6u);
  EXPECT_EQ(diff.events, 3u);
}

TEST(Scheduler, ShutdownDestroysSuspendedProcesses) {
  Scheduler sched;
  auto& s = sched.make_signal<int>("s", 0);
  auto waiter = [&]() -> Process {
    const std::vector<SignalBase*> sens = {&s};
    co_await wait_on(sens);
  };
  sched.spawn("w", waiter());
  sched.initialize();
  sched.shutdown();  // must not leak or crash; destructor also calls this
  SUCCEED();
}

TEST(SimTime, Ordering) {
  EXPECT_LT((SimTime{0, 1}), (SimTime{0, 2}));
  EXPECT_LT((SimTime{0, 99}), (SimTime{1, 0}));
  EXPECT_EQ(to_string(SimTime{5, 2}), "5 fs +2d");
}

}  // namespace
}  // namespace ctrtl::kernel
