#include "kernel/batch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "rtl/batch_runner.h"
#include "transfer/build.h"
#include "transfer/schedule.h"
#include "verify/random_design.h"

namespace ctrtl {
namespace {

// --- kernel::BatchEngine ----------------------------------------------------

TEST(BatchEngine, ExecutesEveryJobExactlyOnce) {
  kernel::BatchEngine engine(kernel::BatchOptions{.workers = 4});
  std::vector<std::atomic<int>> hits(100);
  engine.run_indexed(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(BatchEngine, MapCollectsByIndexRegardlessOfInterleaving) {
  kernel::BatchEngine engine(kernel::BatchOptions{.workers = 3});
  const std::vector<int> result =
      engine.map<int>(64, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(result.size(), 64u);
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i], static_cast<int>(i * i));
  }
}

TEST(BatchEngine, ZeroWorkersMeansHardwareConcurrency) {
  kernel::BatchEngine engine(kernel::BatchOptions{.workers = 0});
  EXPECT_EQ(engine.worker_count(),
            std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  const std::vector<int> result = engine.map<int>(5, [](std::size_t i) {
    return static_cast<int>(i) + 1;
  });
  EXPECT_EQ(std::accumulate(result.begin(), result.end(), 0), 15);
}

TEST(BatchEngine, SingleWorkerRunsInline) {
  kernel::BatchEngine engine(kernel::BatchOptions{.workers = 1});
  EXPECT_EQ(engine.worker_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  engine.run_indexed(8, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(BatchEngine, MoreWorkersThanJobs) {
  kernel::BatchEngine engine(kernel::BatchOptions{.workers = 8});
  const std::vector<int> result =
      engine.map<int>(3, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(result, (std::vector<int>{0, 1, 2}));
}

TEST(BatchEngine, EmptyBatchReturnsImmediately) {
  kernel::BatchEngine engine(kernel::BatchOptions{.workers = 2});
  const std::vector<int> result = engine.map<int>(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(result.empty());
  EXPECT_EQ(engine.last_dispatch().jobs, 0u);
}

TEST(BatchEngine, RethrowsLowestIndexException) {
  kernel::BatchEngine engine(kernel::BatchOptions{.workers = 4});
  try {
    engine.run_indexed(32, [](std::size_t i) {
      if (i % 5 == 2) {  // indices 2, 7, 12, ... throw
        throw std::runtime_error("job " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 2");
  }
}

TEST(BatchEngine, ReusableAcrossDispatches) {
  kernel::BatchEngine engine(kernel::BatchOptions{.workers = 2});
  for (int round = 0; round < 10; ++round) {
    const std::vector<int> result =
        engine.map<int>(16, [round](std::size_t i) {
          return round * 100 + static_cast<int>(i);
        });
    for (std::size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(result[i], round * 100 + static_cast<int>(i));
    }
  }
}

TEST(BatchEngine, RecordsDispatchStats) {
  kernel::BatchEngine engine(kernel::BatchOptions{.workers = 2});
  engine.run_indexed(10, [](std::size_t) {});
  EXPECT_EQ(engine.last_dispatch().jobs, 10u);
  EXPECT_EQ(engine.last_dispatch().workers, 2u);
}

// --- rtl::BatchRunner -------------------------------------------------------

rtl::BatchRunner::ModelFactory design_factory(unsigned transfers,
                                              bool inject_conflicts = false) {
  return [transfers, inject_conflicts](std::size_t instance) {
    verify::RandomDesignOptions options;
    options.seed = static_cast<std::uint32_t>(500 + instance);
    options.num_transfers = transfers;
    options.inject_conflicts = inject_conflicts;
    return transfer::build_model(verify::random_design(options));
  };
}

TEST(BatchRunner, BatchEqualsSequentialBitForBit) {
  constexpr std::size_t kInstances = 12;
  rtl::BatchRunner sequential(design_factory(12), rtl::BatchRunOptions{.workers = 1});
  rtl::BatchRunner batched(design_factory(12), rtl::BatchRunOptions{.workers = 4});

  std::vector<rtl::InstanceResult> reference;
  reference.reserve(kInstances);
  for (std::size_t i = 0; i < kInstances; ++i) {
    reference.push_back(sequential.run_one(i));
  }
  const rtl::BatchRunResult result = batched.run(kInstances);

  ASSERT_EQ(result.instances.size(), kInstances);
  for (std::size_t i = 0; i < kInstances; ++i) {
    EXPECT_EQ(result.instances[i], reference[i]) << "instance " << i;
    EXPECT_FALSE(result.instances[i].registers.empty());
  }
}

TEST(BatchRunner, DeterministicAcrossWorkerCounts) {
  constexpr std::size_t kInstances = 9;
  std::vector<rtl::BatchRunResult> results;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{0} /* hardware_concurrency */}) {
    rtl::BatchRunner runner(design_factory(10), rtl::BatchRunOptions{.workers = workers});
    results.push_back(runner.run(kInstances));
  }
  for (std::size_t variant = 1; variant < results.size(); ++variant) {
    ASSERT_EQ(results[variant].instances.size(), kInstances);
    for (std::size_t i = 0; i < kInstances; ++i) {
      EXPECT_EQ(results[variant].instances[i], results[0].instances[i])
          << "worker variant " << variant << ", instance " << i;
    }
  }
}

TEST(BatchRunner, AggregatesStatsAcrossInstances) {
  constexpr std::size_t kInstances = 6;
  rtl::BatchRunner runner(design_factory(8), rtl::BatchRunOptions{.workers = 2});
  const rtl::BatchRunResult result = runner.run(kInstances);

  kernel::KernelStats expected;
  for (const rtl::InstanceResult& instance : result.instances) {
    expected = expected + instance.stats;
  }
  EXPECT_EQ(result.total.delta_cycles, expected.delta_cycles);
  EXPECT_EQ(result.total.events, expected.events);
  EXPECT_EQ(result.total.updates, expected.updates);
  EXPECT_EQ(result.total.transactions, expected.transactions);
  EXPECT_EQ(result.total.resumptions, expected.resumptions);
  EXPECT_GT(result.total.delta_cycles, 0u);
  EXPECT_EQ(result.workers, 2u);
}

TEST(BatchRunner, ConflictsSurfacePerInstance) {
  rtl::BatchRunner runner(design_factory(10, /*inject_conflicts=*/true),
                          rtl::BatchRunOptions{.workers = 2});
  const rtl::BatchRunResult result = runner.run(4);
  EXPECT_GT(result.conflict_count(), 0u)
      << "conflict-injected designs must report ILLEGAL events";
  // Conflicts in a batch are attributed to the right instance: re-running one
  // instance alone reports exactly the same conflicts.
  for (std::size_t i = 0; i < result.instances.size(); ++i) {
    EXPECT_EQ(runner.run_one(i).conflicts, result.instances[i].conflicts);
  }
}

// --- resolver dispatch through the kernel -----------------------------------
//
// The paper's resolution table (section 2.3) exercised end-to-end through a
// resolved kernel signal, with the resolver given both as a plain function
// pointer (the raw-dispatch fast path used by every RtModel signal) and as a
// capturing lambda (the generic std::function path). Both must produce the
// identical effective value in the identical delta cycle.

rtl::RtValue drive_and_resolve(kernel::Signal<rtl::RtValue>::Resolver resolver,
                               const std::vector<rtl::RtValue>& contributions) {
  kernel::Scheduler sched;
  auto& sig = sched.make_signal<rtl::RtValue>("bus", rtl::RtValue::disc(),
                                              std::move(resolver));
  std::vector<kernel::DriverId> drivers;
  drivers.reserve(contributions.size());
  for (std::size_t i = 0; i < contributions.size(); ++i) {
    drivers.push_back(sig.add_driver(rtl::RtValue::disc()));
  }
  sched.initialize();
  for (std::size_t i = 0; i < contributions.size(); ++i) {
    sig.drive(drivers[i], contributions[i]);
  }
  sched.step();
  return sig.read();
}

TEST(SignalResolution, PaperTableThroughBothDispatchPaths) {
  const struct {
    std::vector<rtl::RtValue> contributions;
    rtl::RtValue resolved;
    const char* row;
  } kTable[] = {
      {{rtl::RtValue::disc(), rtl::RtValue::disc(), rtl::RtValue::disc()},
       rtl::RtValue::disc(),
       "all DISC -> DISC"},
      {{rtl::RtValue::disc(), rtl::RtValue::illegal()},
       rtl::RtValue::illegal(),
       "single ILLEGAL contributor poisons the bus"},
      {{rtl::RtValue::of(1), rtl::RtValue::of(2), rtl::RtValue::disc()},
       rtl::RtValue::illegal(),
       ">= 2 non-DISC contributions conflict"},
      {{rtl::RtValue::disc(), rtl::RtValue::of(7)},
       rtl::RtValue::of(7),
       "exactly one non-DISC wins"},
  };
  // Plain function pointer: eligible for raw dispatch.
  const kernel::Signal<rtl::RtValue>::Resolver raw = &rtl::resolve_rt;
  // Capturing lambda: must go through std::function.
  int calls = 0;
  const kernel::Signal<rtl::RtValue>::Resolver wrapped =
      [&calls](std::span<const rtl::RtValue> v) {
        ++calls;
        return rtl::resolve_rt(v);
      };
  for (const auto& row : kTable) {
    EXPECT_EQ(drive_and_resolve(raw, row.contributions), row.resolved) << row.row;
    EXPECT_EQ(drive_and_resolve(wrapped, row.contributions), row.resolved) << row.row;
  }
  EXPECT_GT(calls, 0) << "lambda resolver must actually be invoked";
}

TEST(BatchRunner, NullFactoryRejected) {
  EXPECT_THROW(
      rtl::BatchRunner(rtl::BatchRunner::ModelFactory{}, rtl::BatchRunOptions{}),
      std::invalid_argument);
}

TEST(BatchRunner, NullDesignRejected) {
  EXPECT_THROW(rtl::BatchRunner(
                   std::shared_ptr<const transfer::CompiledDesign>{}, {}),
               std::invalid_argument);
}

TEST(BatchRunner, LaneEngineRequiresSharedDesign) {
  EXPECT_THROW(
      rtl::BatchRunner(
          design_factory(8),
          rtl::BatchRunOptions{.engine = rtl::BatchEngineKind::kCompiledLanes}),
      std::invalid_argument);
}

TEST(BatchRunner, LaneBatchMatchesPerInstanceReference) {
  verify::RandomDesignOptions options;
  options.seed = 917;
  options.num_transfers = 12;
  const auto design =
      transfer::CompiledDesign::compile(verify::random_design(options));

  rtl::BatchRunner lanes(design, rtl::BatchRunOptions{
                                     .workers = 2,
                                     .engine = rtl::BatchEngineKind::kCompiledLanes,
                                     .lane_block = 4});
  rtl::BatchRunner reference(design, rtl::BatchRunOptions{.workers = 2});

  constexpr std::size_t kInstances = 11;  // deliberately not a block multiple
  const rtl::BatchRunResult lane_result = lanes.run(kInstances);
  const rtl::BatchRunResult reference_result = reference.run(kInstances);
  ASSERT_EQ(lane_result.instances.size(), kInstances);
  for (std::size_t i = 0; i < kInstances; ++i) {
    EXPECT_EQ(lane_result.instances[i], reference_result.instances[i])
        << "instance " << i;
  }
}

TEST(BatchRunner, FactoryExceptionIsIsolatedToItsInstance) {
  // A throwing factory no longer aborts the batch: the exception is captured
  // into that instance's RunReport and every other instance still completes
  // (the full isolation contract lives in rtl_batch_isolation_test).
  rtl::BatchRunner runner(
      [](std::size_t instance) -> std::unique_ptr<rtl::RtModel> {
        if (instance == 3) {
          throw std::runtime_error("bad instance");
        }
        verify::RandomDesignOptions options;
        options.seed = static_cast<std::uint32_t>(instance + 1);
        return transfer::build_model(verify::random_design(options));
      },
      rtl::BatchRunOptions{.workers = 2});
  const rtl::BatchRunResult result = runner.run(8);
  ASSERT_EQ(result.instances.size(), 8u);
  EXPECT_EQ(result.failure_count(), 1u);
  EXPECT_EQ(result.instances[3].report.status, rtl::RunStatus::kError);
  ASSERT_EQ(result.instances[3].report.diagnostics.size(), 1u);
  EXPECT_EQ(result.instances[3].report.diagnostics[0].message, "bad instance");
  for (const std::size_t i : {0u, 1u, 2u, 4u, 5u, 6u, 7u}) {
    EXPECT_TRUE(result.instances[i].report.ok()) << "instance " << i;
  }
}

}  // namespace
}  // namespace ctrtl
