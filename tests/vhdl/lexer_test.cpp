#include "vhdl/lexer.h"

#include <gtest/gtest.h>

namespace ctrtl::vhdl {
namespace {

std::vector<TokenKind> kinds(const std::string& source) {
  std::vector<TokenKind> out;
  for (const Token& token : lex(source)) {
    out.push_back(token.kind);
  }
  return out;
}

TEST(Lexer, EmptySourceYieldsEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEndOfFile);
}

TEST(Lexer, IdentifiersAreLowercased) {
  const auto tokens = lex("Entity CONTROLLER eNd");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "entity");
  EXPECT_EQ(tokens[1].text, "controller");
  EXPECT_EQ(tokens[2].text, "end");
}

TEST(Lexer, IntegerLiterals) {
  const auto tokens = lex("42 0 1_000");
  EXPECT_EQ(tokens[0].value, 42);
  EXPECT_EQ(tokens[1].value, 0);
  EXPECT_EQ(tokens[2].value, 1000) << "underscore separators";
}

TEST(Lexer, CompoundOperators) {
  EXPECT_EQ(kinds("<= := => /= >= < > ="),
            (std::vector<TokenKind>{
                TokenKind::kLessEqual, TokenKind::kAssign, TokenKind::kArrow,
                TokenKind::kNotEqual, TokenKind::kGreaterEqual, TokenKind::kLess,
                TokenKind::kGreater, TokenKind::kEqual, TokenKind::kEndOfFile}));
}

TEST(Lexer, CommentsAreSkipped) {
  const auto tokens = lex("a -- this is a comment <= :=\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, MinusVersusComment) {
  const auto tokens = lex("a - b");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kMinus);
}

TEST(Lexer, TickForAttributes) {
  const auto tokens = lex("phase'high");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "phase");
  EXPECT_EQ(tokens[1].kind, TokenKind::kTick);
  EXPECT_EQ(tokens[2].text, "high");
}

TEST(Lexer, LocationsTrackLinesAndColumns) {
  const auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].location, (common::SourceLocation{1, 1}));
  EXPECT_EQ(tokens[1].location, (common::SourceLocation{2, 3}));
}

TEST(Lexer, UnknownCharacterThrows) {
  EXPECT_THROW(lex("a @ b"), LexError);
}

TEST(Lexer, PunctuationSet) {
  EXPECT_EQ(kinds("( ) ; : , . &"),
            (std::vector<TokenKind>{
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kSemicolon,
                TokenKind::kColon, TokenKind::kComma, TokenKind::kDot,
                TokenKind::kAmp, TokenKind::kEndOfFile}));
}

}  // namespace
}  // namespace ctrtl::vhdl
