#include <gtest/gtest.h>

#include <random>

#include "vhdl/elaborator.h"
#include "vhdl/emitter.h"
#include "vhdl/lexer.h"
#include "vhdl/parser.h"

namespace ctrtl::vhdl {
namespace {

// Robustness property: the front end must never crash or hang on malformed
// input — it either parses or throws LexError/ParseError. Inputs are
// derived from valid sources by random mutation (deletion, duplication,
// character flips), which keeps them "almost valid" and exercises deep
// parser paths.

class ParserRobustness : public ::testing::TestWithParam<int> {};

TEST_P(ParserRobustness, MutatedSourcesNeverCrash) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2654435761u);
  std::string source = standard_cells();
  std::uniform_int_distribution<int> mutation(0, 3);
  std::uniform_int_distribution<std::size_t> pos(0, source.size() - 1);
  std::uniform_int_distribution<int> printable(32, 126);

  // Apply a handful of mutations.
  for (int i = 0; i < 8; ++i) {
    const std::size_t at = pos(rng) % source.size();
    switch (mutation(rng)) {
      case 0:  // delete a character
        source.erase(at, 1);
        break;
      case 1:  // duplicate a chunk
        source.insert(at, source.substr(at, 7));
        break;
      case 2:  // flip a character
        source[at] = static_cast<char>(printable(rng));
        break;
      default:  // truncate
        source.resize(at + 1);
        break;
    }
    if (source.empty()) {
      source = "entity e is end e;";
    }
  }

  try {
    const DesignFile file = parse(source);
    // Parsed despite mutations: fine, the mutations hit comments or
    // whitespace. Nothing else to assert.
    (void)file;
  } catch (const LexError&) {
  } catch (const ParseError&) {
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, ::testing::Range(1, 101));

TEST(ParserRobustness, PathologicalInputs) {
  const char* cases[] = {
      "",
      ";",
      "entity",
      "entity e",
      "entity e is",
      "architecture a of e is begin",
      "((((((((((",
      "process process process",
      "entity e is end e; architecture a of e is begin u1: ",
      "wait wait wait",
      "-- only a comment",
      "'''''",
      "123456789012345678",
  };
  for (const char* source : cases) {
    try {
      (void)parse(source);
    } catch (const LexError&) {
    } catch (const ParseError&) {
    }
  }
  SUCCEED();
}

class LexerRobustness : public ::testing::TestWithParam<int> {};

TEST_P(LexerRobustness, RandomAsciiNeverCrashes) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 48271u);
  std::uniform_int_distribution<int> len(0, 400);
  std::uniform_int_distribution<int> ch(9, 126);
  std::string source;
  const int n = len(rng);
  for (int i = 0; i < n; ++i) {
    source.push_back(static_cast<char>(ch(rng)));
  }
  try {
    (void)parse(source);
  } catch (const LexError&) {
  } catch (const ParseError&) {
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexerRobustness, ::testing::Range(1, 51));

// --- full front-end negative paths ------------------------------------------
//
// `load_model` is the crash boundary for the whole pipeline (lex + parse +
// subset check + elaborate): on any malformed input it must return nullptr
// with the failure explained in the DiagnosticBag — never crash, never
// return a half-built model silently.

class FrontEndRobustness : public ::testing::TestWithParam<int> {};

TEST_P(FrontEndRobustness, MutatedSourcesFailWithDiagnosticsNotCrashes) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 69069u);
  std::string source = standard_cells();
  std::uniform_int_distribution<std::size_t> pos(0, source.size() - 1);
  std::uniform_int_distribution<int> printable(32, 126);
  for (int i = 0; i < 6; ++i) {
    const std::size_t at = pos(rng) % source.size();
    if (i % 2 == 0) {
      source.resize(at + 1);  // truncation: the classic half-written file
    } else {
      source[at % source.size()] = static_cast<char>(printable(rng));
    }
    if (source.empty()) {
      source = "entity e is end e;";
    }
  }
  common::DiagnosticBag diags;
  const auto model = load_model(source, "no_such_entity", diags);
  // The mutated source may still lex/parse, but the top entity never exists,
  // so the pipeline must always end in a reported failure.
  EXPECT_EQ(model, nullptr);
  EXPECT_TRUE(diags.has_errors())
      << "nullptr without diagnostics leaves the caller blind";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontEndRobustness, ::testing::Range(1, 51));

TEST(FrontEndRobustness, PathologicalInputsProduceDiagnostics) {
  const char* cases[] = {
      "",
      "entity",
      "entity e is end e; architecture a of e is begin",
      "entity e is end e;\narchitecture a of e is\n  signal s: bogus_type;\n"
      "begin\nend a;",
      "entity e is end e;\narchitecture a of e is\nbegin\n"
      "  p: process begin s <= 1; wait; end process;\nend a;",  // undeclared s
      "architecture orphan of missing is begin end orphan;",
      "\xff\xfe garbage \x01\x02",
  };
  for (const char* source : cases) {
    common::DiagnosticBag diags;
    const auto model = load_model(source, "e", diags);
    EXPECT_EQ(model, nullptr) << "source: " << source;
    EXPECT_TRUE(diags.has_errors()) << "source: " << source;
  }
}

TEST(FrontEndRobustness, ValidSourceStillLoads) {
  // The negative paths above only mean something if the same entry point
  // succeeds on well-formed input.
  common::DiagnosticBag diags;
  const auto model = load_model(
      "entity e is end e;\narchitecture a of e is\n  signal s: integer := 3;\n"
      "begin\nend a;",
      "e", diags);
  EXPECT_NE(model, nullptr) << diags.to_text();
  EXPECT_FALSE(diags.has_errors()) << diags.to_text();
}

TEST(ParserRobustness, DeeplyNestedExpressions) {
  // Heavy nesting must not blow the stack at parse time (recursive
  // descent): 200 parens is far beyond real code but must stay safe.
  std::string expr(200, '(');
  expr += "1";
  expr += std::string(200, ')');
  const std::string source = "entity e is end e;\narchitecture a of e is\n"
                             "  constant k: integer := " + expr + ";\nbegin\nend a;\n";
  const DesignFile file = parse(source);
  EXPECT_EQ(file.architectures[0].constants.size(), 1u);
}

}  // namespace
}  // namespace ctrtl::vhdl
