#include "vhdl/parser.h"

#include <gtest/gtest.h>

namespace ctrtl::vhdl {
namespace {

// The paper's CONTROLLER entity, verbatim modulo layout.
constexpr const char* kControllerSource = R"(
entity CONTROLLER is
  generic (CS_MAX: Natural);
  port (CS: inout Natural := 0;
        PH: inout Phase := Phase'High); -- Phase'High = cr
end CONTROLLER;

architecture transfer of CONTROLLER is
begin
  process (PH)
  begin
    if (PH = Phase'High) then
      if (CS < CS_MAX) then
        CS <= CS+1;
        PH <= Phase'Low; -- Phase'Low = ra
      end if;
    else
      PH <= Phase'Succ(PH);
    end if;
  end process;
end transfer;
)";

TEST(Parser, ControllerEntityShape) {
  const DesignFile file = parse(kControllerSource);
  ASSERT_EQ(file.entities.size(), 1u);
  const Entity& entity = file.entities[0];
  EXPECT_EQ(entity.name, "controller");
  ASSERT_EQ(entity.generics.size(), 1u);
  EXPECT_EQ(entity.generics[0].name, "cs_max");
  EXPECT_EQ(entity.generics[0].subtype.type_name, "natural");
  ASSERT_EQ(entity.ports.size(), 2u);
  EXPECT_EQ(entity.ports[0].name, "cs");
  EXPECT_EQ(entity.ports[0].mode, PortMode::kInout);
  ASSERT_NE(entity.ports[0].init, nullptr);
  EXPECT_EQ(entity.ports[1].name, "ph");
  EXPECT_EQ(entity.ports[1].subtype.type_name, "phase");
  ASSERT_NE(entity.ports[1].init, nullptr);
  EXPECT_TRUE(std::holds_alternative<AttributeRef>(entity.ports[1].init->node));
}

TEST(Parser, ControllerArchitectureShape) {
  const DesignFile file = parse(kControllerSource);
  ASSERT_EQ(file.architectures.size(), 1u);
  const Architecture& arch = file.architectures[0];
  EXPECT_EQ(arch.name, "transfer");
  EXPECT_EQ(arch.entity, "controller");
  ASSERT_EQ(arch.processes.size(), 1u);
  const ProcessStmt& process = arch.processes[0];
  EXPECT_EQ(process.sensitivity, std::vector<std::string>{"ph"});
  ASSERT_EQ(process.body.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<IfStmt>(process.body[0]->node));
  const IfStmt& ifstmt = std::get<IfStmt>(process.body[0]->node);
  ASSERT_EQ(ifstmt.arms.size(), 1u);
  ASSERT_EQ(ifstmt.else_body.size(), 1u);
}

// The paper's TRANS entity.
constexpr const char* kTransSource = R"(
entity TRANS is
  generic (S: Natural; P: Phase);
  port (CS: in Natural; PH: in Phase;
        InS: in Integer; OutS: out Integer := DISC);
end TRANS;

architecture transfer of TRANS is
begin
  process
  begin
    wait until CS=S and PH=P;
    OutS <= InS;
    wait until CS=S and PH=Phase'Succ(P);
    OutS <= DISC;
  end process;
end transfer;
)";

TEST(Parser, TransProcessWaits) {
  const DesignFile file = parse(kTransSource);
  const ProcessStmt& process = file.architectures[0].processes[0];
  EXPECT_TRUE(process.sensitivity.empty());
  ASSERT_EQ(process.body.size(), 4u);
  EXPECT_TRUE(std::holds_alternative<WaitStmt>(process.body[0]->node));
  EXPECT_TRUE(std::holds_alternative<SignalAssignStmt>(process.body[1]->node));
  const WaitStmt& wait = std::get<WaitStmt>(process.body[0]->node);
  ASSERT_NE(wait.until, nullptr);
  EXPECT_TRUE(wait.on_signals.empty());
  const BinaryExpr& cond = std::get<BinaryExpr>(wait.until->node);
  EXPECT_EQ(cond.op, BinaryOp::kAnd);
}

TEST(Parser, SignalDeclarations) {
  const DesignFile file = parse(R"(
entity e is end e;
architecture a of e is
  signal ADD_in1, ADD_in2: resolved Integer;
  signal ADD_out: Integer;
  signal CS: Natural;
begin
end a;
)");
  const Architecture& arch = file.architectures[0];
  ASSERT_EQ(arch.signals.size(), 3u);
  EXPECT_EQ(arch.signals[0].names,
            (std::vector<std::string>{"add_in1", "add_in2"}));
  EXPECT_TRUE(arch.signals[0].subtype.resolved);
  EXPECT_FALSE(arch.signals[1].subtype.resolved);
}

TEST(Parser, ComponentInstances) {
  const DesignFile file = parse(R"(
entity e is end e;
architecture a of e is
begin
  R1_out_B1_5: TRANS generic map (5, ra) port map (CS, PH, R1_out, B1);
  CONTROL: CONTROLLER generic map (7) port map (CS, PH);
  ADD_proc: ADD port map (PH, ADD_in1, ADD_in2, ADD_out);
end a;
)");
  const Architecture& arch = file.architectures[0];
  ASSERT_EQ(arch.instances.size(), 3u);
  EXPECT_EQ(arch.instances[0].label, "r1_out_b1_5");
  EXPECT_EQ(arch.instances[0].unit, "trans");
  EXPECT_EQ(arch.instances[0].generic_map.size(), 2u);
  EXPECT_EQ(arch.instances[0].port_map,
            (std::vector<std::string>{"cs", "ph", "r1_out", "b1"}));
  EXPECT_TRUE(arch.instances[2].generic_map.empty());
}

TEST(Parser, TypeAndConstantDeclarations) {
  const DesignFile file = parse(R"(
entity e is end e;
architecture a of e is
  type Phase is (ra, rb, cm, wa, wb, cr);
  constant DISC: Integer := -1;
  constant ILLEGAL: Integer := -2;
begin
end a;
)");
  const Architecture& arch = file.architectures[0];
  ASSERT_EQ(arch.types.size(), 1u);
  EXPECT_EQ(arch.types[0].name, "phase");
  EXPECT_EQ(arch.types[0].literals.size(), 6u);
  ASSERT_EQ(arch.constants.size(), 2u);
  EXPECT_EQ(arch.constants[0].name, "disc");
}

TEST(Parser, VariablesInProcess) {
  const DesignFile file = parse(R"(
entity e is end e;
architecture a of e is
begin
  process
    variable M: Integer := DISC;
  begin
    wait until PH = cm;
    M := M + 1;
  end process;
end a;
)");
  const ProcessStmt& process = file.architectures[0].processes[0];
  ASSERT_EQ(process.variables.size(), 1u);
  EXPECT_EQ(process.variables[0].names[0], "m");
  EXPECT_TRUE(std::holds_alternative<VariableAssignStmt>(process.body[1]->node));
}

TEST(Parser, ExpressionPrecedence) {
  // a + b * c = d and e < f  parses as ((a + (b*c)) = d) and (e < f)
  const DesignFile file = parse(R"(
entity e is end e;
architecture x of e is
begin
  process begin
    wait until a + b * c = d and e < f;
  end process;
end x;
)");
  const WaitStmt& wait =
      std::get<WaitStmt>(file.architectures[0].processes[0].body[0]->node);
  const BinaryExpr& root = std::get<BinaryExpr>(wait.until->node);
  EXPECT_EQ(root.op, BinaryOp::kAnd);
  const BinaryExpr& eq = std::get<BinaryExpr>(root.lhs->node);
  EXPECT_EQ(eq.op, BinaryOp::kEq);
  const BinaryExpr& sum = std::get<BinaryExpr>(eq.lhs->node);
  EXPECT_EQ(sum.op, BinaryOp::kAdd);
  const BinaryExpr& product = std::get<BinaryExpr>(sum.rhs->node);
  EXPECT_EQ(product.op, BinaryOp::kMul);
}

TEST(Parser, ErrorsCarryLocation) {
  try {
    parse("entity is end;");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_TRUE(error.location().is_known());
    EXPECT_NE(std::string(error.what()).find("entity name"), std::string::npos);
  }
}

TEST(Parser, RejectsKeywordAsName) {
  EXPECT_THROW(parse("entity process is end;"), ParseError);
}

TEST(Parser, RejectsUnlabeledInstance) {
  EXPECT_THROW(parse(R"(
entity e is end e;
architecture a of e is
begin
  TRANS port map (CS);
end a;
)"),
               ParseError);
}

TEST(Parser, NullStatement) {
  const DesignFile file = parse(R"(
entity e is end e;
architecture a of e is
begin
  process (x) begin
    null;
  end process;
end a;
)");
  EXPECT_TRUE(std::holds_alternative<NullStmt>(
      file.architectures[0].processes[0].body[0]->node));
}

TEST(Parser, AfterClauseAndWaitForParsed) {
  // Parsed (so the subset checker can reject them with a good message).
  const DesignFile file = parse(R"(
entity e is end e;
architecture a of e is
begin
  process begin
    s <= 1 after 10 ns;
    wait for 5 ns;
  end process;
end a;
)");
  const auto& body = file.architectures[0].processes[0].body;
  const SignalAssignStmt& assign = std::get<SignalAssignStmt>(body[0]->node);
  ASSERT_NE(assign.after, nullptr);
  const WaitStmt& wait = std::get<WaitStmt>(body[1]->node);
  ASSERT_NE(wait.for_time, nullptr);
}

}  // namespace
}  // namespace ctrtl::vhdl
