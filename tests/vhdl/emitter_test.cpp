#include "vhdl/emitter.h"

#include <gtest/gtest.h>

#include <random>

#include "transfer/build.h"
#include "vhdl/elaborator.h"

namespace ctrtl::vhdl {
namespace {

using transfer::Design;
using transfer::ModuleKind;
using transfer::RegisterTransfer;

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

TEST(VhdlName, Sanitization) {
  EXPECT_EQ(vhdl_name("BusA"), "busa");
  EXPECT_EQ(vhdl_name("X-ADD"), "x_add");
  EXPECT_EQ(vhdl_name("R[3]"), "r_3_");
  EXPECT_EQ(vhdl_name("1up"), "n1up");
}

TEST(Emitter, Fig1EmitsAndReloads) {
  const std::string source = emit_vhdl(fig1_design());
  common::DiagnosticBag diags;
  auto model = load_model(source, "fig1", diags);
  ASSERT_NE(model, nullptr) << diags.to_text() << "\n" << source;
  model->run();
  EXPECT_EQ(model->read("r1_out"), 42);
  EXPECT_EQ(model->scheduler().stats().delta_cycles, 42u);
}

TEST(Emitter, EmittedTextNamesEveryTransInstance) {
  const std::string source = emit_vhdl(fig1_design());
  // 6 TRANS instances for the full tuple.
  std::size_t count = 0;
  for (std::size_t pos = source.find(": trans"); pos != std::string::npos;
       pos = source.find(": trans", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 6u);
}

TEST(Emitter, RejectsOpPortModules) {
  Design d = fig1_design();
  d.modules.push_back({"ALU", ModuleKind::kAlu, 1});
  EXPECT_THROW(emit_vhdl(d), std::invalid_argument);
}

TEST(Emitter, RejectsMismatchedLatency) {
  Design d = fig1_design();
  d.modules[0].latency = 3;
  EXPECT_THROW(emit_vhdl(d), std::invalid_argument);
}

TEST(Emitter, ConstantsBecomeUndrivenSignals) {
  Design d = fig1_design();
  d.constants = {{"zero", 0}};
  d.transfers[0].operand_a->source = transfer::Endpoint::constant("zero");
  const std::string source = emit_vhdl(d);
  EXPECT_NE(source.find("signal c_zero: integer := 0;"), std::string::npos);
  common::DiagnosticBag diags;
  auto model = load_model(source, "fig1", diags);
  ASSERT_NE(model, nullptr) << diags.to_text();
  model->run();
  EXPECT_EQ(model->read("r1_out"), 12) << "0 + R2";
}

TEST(Emitter, CopyModuleRoundTrip) {
  // The direct-link helper (CP cell) through emit -> parse -> elaborate.
  Design d;
  d.name = "cpy";
  d.cs_max = 3;
  d.registers = {{"A", 55}, {"OUT", std::nullopt}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"CP", ModuleKind::kCopy, 0}};
  RegisterTransfer t;
  t.operand_a = transfer::OperandPath{transfer::Endpoint::register_out("A"), "B1"};
  t.read_step = 1;
  t.module = "CP";
  t.write_step = 1;
  t.write_bus = "B2";
  t.destination = "OUT";
  d.transfers = {t};
  common::DiagnosticBag diags;
  auto model = load_model(emit_vhdl(d), "cpy", diags);
  ASSERT_NE(model, nullptr) << diags.to_text();
  model->run();
  EXPECT_EQ(model->read("out_out"), 55);
}

// --- Equivalence: emitted VHDL vs native C++ model ---------------------------
// The same Design, built natively (transfer::build_model) and via the VHDL
// text (emit -> parse -> elaborate), must produce identical register values
// and identical delta-cycle counts. Randomized over schedules.

class EmitterEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EmitterEquivalence, NativeAndVhdlAgree) {
  std::mt19937 rng(GetParam() * 9001);
  std::uniform_int_distribution<int> val(0, 99);
  std::uniform_int_distribution<int> pick(0, 2);

  Design d;
  d.name = "rand";
  d.registers = {{"RA", val(rng)}, {"RB", val(rng)}, {"RC", val(rng)}};
  d.buses = {{"B1"}, {"B2"}, {"B3"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1},
               {"SUB", ModuleKind::kSub, 1},
               {"MUL", ModuleKind::kMul, 2}};
  const std::array<std::string, 3> regs = {"RA", "RB", "RC"};
  const std::array<std::string, 3> buses = {"B1", "B2", "B3"};
  const std::array<std::pair<std::string, unsigned>, 3> mods = {
      std::pair{std::string("ADD"), 1u}, std::pair{std::string("SUB"), 1u},
      std::pair{std::string("MUL"), 2u}};

  // Sequential non-overlapping transfers: each uses a fresh step window, so
  // the schedule is conflict-free by construction.
  unsigned step = 1;
  for (int i = 0; i < 4; ++i) {
    const auto& [module, latency] = mods[static_cast<std::size_t>(pick(rng))];
    const std::string src_a = regs[static_cast<std::size_t>(pick(rng))];
    const std::string src_b = regs[static_cast<std::size_t>(pick(rng))];
    const std::string dst = regs[static_cast<std::size_t>(pick(rng))];
    d.transfers.push_back(RegisterTransfer::full(
        src_a, buses[0], src_b, buses[1], step, module, step + latency, buses[2],
        dst));
    step += latency + 1;
  }
  d.cs_max = step + 1;

  // Native execution.
  auto native = transfer::build_model(d);
  const rtl::RunResult native_result = native->run();

  // VHDL execution.
  common::DiagnosticBag diags;
  auto vhdl_model = load_model(emit_vhdl(d), "rand", diags);
  ASSERT_NE(vhdl_model, nullptr) << diags.to_text();
  vhdl_model->run();

  EXPECT_EQ(native_result.stats.delta_cycles,
            vhdl_model->scheduler().stats().delta_cycles);
  for (const std::string& reg : regs) {
    const rtl::RtValue native_value = native->find_register(reg)->value();
    const std::int64_t vhdl_value = vhdl_model->read(vhdl_name(reg) + "_out");
    EXPECT_EQ(native_value, rtl::RtValue::from_inband(vhdl_value))
        << "register " << reg << " differs (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmitterEquivalence, ::testing::Range(1, 21));

}  // namespace
}  // namespace ctrtl::vhdl
