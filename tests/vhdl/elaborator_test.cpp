#include "vhdl/elaborator.h"

#include <gtest/gtest.h>

#include "rtl/value.h"
#include "vhdl/emitter.h"
#include "vhdl/parser.h"
#include "vhdl/subset_check.h"

namespace ctrtl::vhdl {
namespace {

std::unique_ptr<ElaboratedModel> load(const std::string& source,
                                      const std::string& top) {
  common::DiagnosticBag diags;
  auto model = load_model(source, top, diags);
  EXPECT_NE(model, nullptr) << diags.to_text();
  return model;
}

TEST(Elaborator, ControllerRunsCsMaxTimesSixDeltas) {
  // The paper's controller, executed from its own source text.
  const std::string source = standard_cells() + R"(
entity tb is end tb;
architecture transfer of tb is
  signal cs: natural := 0;
  signal ph: phase := cr;
begin
  control: controller generic map (7) port map (cs, ph);
end transfer;
)";
  auto model = load(source, "tb");
  ASSERT_NE(model, nullptr);
  model->run();
  EXPECT_EQ(model->scheduler().stats().delta_cycles, 42u);
  EXPECT_EQ(model->read("cs"), 7);
  EXPECT_EQ(model->render("ph"), "cr");
  EXPECT_EQ(model->scheduler().now().fs, 0u) << "delta time only";
}

TEST(Elaborator, TransMovesValueDuringWindow) {
  const std::string source = standard_cells() + R"(
entity tb is end tb;
architecture transfer of tb is
  signal cs: natural := 0;
  signal ph: phase := cr;
  signal src: integer := 42;
  signal b1: resolved integer;
begin
  t1: trans generic map (1, ra) port map (cs, ph, src, b1);
  control: controller generic map (2) port map (cs, ph);
end transfer;
)";
  auto model = load(source, "tb");
  ASSERT_NE(model, nullptr);
  auto& sched = model->scheduler();
  sched.initialize();
  std::vector<std::string> window;
  while (sched.step()) {
    window.push_back(model->render("b1"));
  }
  // Value visible exactly at (1, rb) — one delta after activation.
  const std::vector<std::string> expected = {"DISC", "42",   "DISC", "DISC",
                                             "DISC", "DISC", "DISC", "DISC",
                                             "DISC", "DISC", "DISC", "DISC"};
  EXPECT_EQ(window, expected);
}

TEST(Elaborator, RegLatchesAtCr) {
  const std::string source = standard_cells() + R"(
entity tb is end tb;
architecture transfer of tb is
  signal cs: natural := 0;
  signal ph: phase := cr;
  signal src: integer := 9;
  signal r_in: resolved integer;
  signal r_out: integer;
begin
  t1: trans generic map (1, wb) port map (cs, ph, src, r_in);
  r: reg port map (ph, r_in, r_out);
  control: controller generic map (2) port map (cs, ph);
end transfer;
)";
  auto model = load(source, "tb");
  ASSERT_NE(model, nullptr);
  model->run();
  EXPECT_EQ(model->read("r_out"), 9);
}

TEST(Elaborator, RegInitGenericPreloads) {
  const std::string source = standard_cells() + R"(
entity tb is end tb;
architecture transfer of tb is
  signal cs: natural := 0;
  signal ph: phase := cr;
  signal r_in: resolved integer;
  signal r_out: integer;
begin
  r: reg generic map (33) port map (ph, r_in, r_out);
  control: controller generic map (3) port map (cs, ph);
end transfer;
)";
  auto model = load(source, "tb");
  ASSERT_NE(model, nullptr);
  model->run();
  EXPECT_EQ(model->read("r_out"), 33);
}

TEST(Elaborator, PaperFigure1FullModel) {
  // The paper's section 2.7 example, rebuilt from the cell library:
  // (R1,B1,R2,B2,5,ADD,6,B1,R1) with CS_MAX = 7, R1 = 30, R2 = 12.
  const std::string source = standard_cells() + R"(
entity example is end example;
architecture transfer of example is
  -- timing signals
  signal cs: natural := 0;
  signal ph: phase := cr;
  -- module ports
  signal add_in1, add_in2: resolved integer;
  signal add_out: integer;
  -- register ports
  signal r1_in, r2_in: resolved integer;
  signal r1_out, r2_out: integer;
  -- buses
  signal b1: resolved integer;
  signal b2: resolved integer;
begin
  -- modules
  add_proc: add port map (ph, add_in1, add_in2, add_out);
  -- registers
  r1_proc: reg generic map (30) port map (ph, r1_in, r1_out);
  r2_proc: reg generic map (12) port map (ph, r2_in, r2_out);
  -- transfers
  r1_out_b1_5:  trans generic map (5, ra) port map (cs, ph, r1_out, b1);
  b1_add_in1_5: trans generic map (5, rb) port map (cs, ph, b1, add_in1);
  r2_out_b2_5:  trans generic map (5, ra) port map (cs, ph, r2_out, b2);
  b2_add_in2_5: trans generic map (5, rb) port map (cs, ph, b2, add_in2);
  add_out_b1_6: trans generic map (6, wa) port map (cs, ph, add_out, b1);
  b1_r1_in_6:   trans generic map (6, wb) port map (cs, ph, b1, r1_in);
  -- controller
  control: controller generic map (7) port map (cs, ph);
end transfer;
)";
  auto model = load(source, "example");
  ASSERT_NE(model, nullptr);
  model->run();
  EXPECT_EQ(model->read("r1_out"), 42) << "R1 := R1 + R2";
  EXPECT_EQ(model->read("r2_out"), 12);
  EXPECT_EQ(model->scheduler().stats().delta_cycles, 42u) << "CS_MAX * 6";
}

TEST(Elaborator, ConflictYieldsIllegalOnBus) {
  // Two TRANS drive the same bus at (1, ra): the resolution function makes
  // the bus ILLEGAL exactly during (1, rb).
  const std::string source = standard_cells() + R"(
entity tb is end tb;
architecture transfer of tb is
  signal cs: natural := 0;
  signal ph: phase := cr;
  signal s1: integer := 1;
  signal s2: integer := 2;
  signal b1: resolved integer;
begin
  t1: trans generic map (1, ra) port map (cs, ph, s1, b1);
  t2: trans generic map (1, ra) port map (cs, ph, s2, b1);
  control: controller generic map (2) port map (cs, ph);
end transfer;
)";
  auto model = load(source, "tb");
  ASSERT_NE(model, nullptr);
  auto& sched = model->scheduler();
  sched.initialize();
  std::vector<std::string> b1_values;
  while (sched.step()) {
    b1_values.push_back(model->render("b1"));
  }
  ASSERT_GE(b1_values.size(), 2u);
  EXPECT_EQ(b1_values[1], "ILLEGAL") << "visible at (1, rb)";
  EXPECT_EQ(b1_values[0], "DISC");
  EXPECT_EQ(b1_values[2], "DISC") << "released at cm";
}

TEST(Elaborator, ConflictLatchedIntoRegister) {
  // Two TRANS drive the register input at (1, wb): the register latches
  // ILLEGAL at cr (it is /= DISC), keeping the conflict visible.
  const std::string source = standard_cells() + R"(
entity tb is end tb;
architecture transfer of tb is
  signal cs: natural := 0;
  signal ph: phase := cr;
  signal s1: integer := 1;
  signal s2: integer := 2;
  signal r_in: resolved integer;
  signal r_out: integer;
begin
  t1: trans generic map (1, wb) port map (cs, ph, s1, r_in);
  t2: trans generic map (1, wb) port map (cs, ph, s2, r_in);
  r: reg port map (ph, r_in, r_out);
  control: controller generic map (2) port map (cs, ph);
end transfer;
)";
  auto model = load(source, "tb");
  ASSERT_NE(model, nullptr);
  model->run();
  EXPECT_EQ(model->read("r_out"), rtl::RtValue::kIllegalEncoding);
  EXPECT_EQ(model->render("r_out"), "ILLEGAL");
}

TEST(Elaborator, HierarchicalSignalNames) {
  const std::string source = R"(
entity child is
  port (o: out integer := 5);
end child;
architecture c of child is
  signal internal: integer := 7;
begin
  process (internal) begin
    o <= internal;
  end process;
end c;
entity tb is end tb;
architecture a of tb is
  signal x: integer;
begin
  u1: child port map (x);
end a;
)";
  auto model = load(source, "tb");
  ASSERT_NE(model, nullptr);
  EXPECT_NE(model->find_signal("x"), nullptr);
  EXPECT_NE(model->find_signal("u1.internal"), nullptr);
  EXPECT_EQ(model->read("u1.internal"), 7);
}

TEST(Elaborator, GenericDefaultsApply) {
  const std::string source = R"(
entity child is
  generic (g: natural := 11);
  port (o: out integer := 0);
end child;
architecture c of child is
  signal tick: integer := 0;
begin
  process (tick) begin
    o <= g;
  end process;
end c;
entity tb is end tb;
architecture a of tb is
  signal x: integer;
begin
  u1: child port map (x);
end a;
)";
  auto model = load(source, "tb");
  ASSERT_NE(model, nullptr);
  model->run();
  EXPECT_EQ(model->read("x"), 11);
}

TEST(Elaborator, SetValueDrivesTopLevelSignal) {
  const std::string source = R"(
entity tb is end tb;
architecture a of tb is
  signal x: integer := 0;
  signal y: integer := 0;
begin
  process (x) begin
    y <= x + 1;
  end process;
end a;
)";
  auto model = load(source, "tb");
  ASSERT_NE(model, nullptr);
  model->run();
  model->set_value("x", 41);
  model->run();
  EXPECT_EQ(model->read("y"), 42);
}

TEST(Elaborator, UnknownTopEntityReported) {
  common::DiagnosticBag diags;
  auto model = load_model("entity e is end e;", "ghost", diags);
  EXPECT_EQ(model, nullptr);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Elaborator, ParseErrorReportedAsDiagnostic) {
  common::DiagnosticBag diags;
  auto model = load_model("entity 42;", "e", diags);
  EXPECT_EQ(model, nullptr);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Elaborator, ReadUnknownSignalThrows) {
  auto model = load("entity tb is end tb;\narchitecture a of tb is begin end a;", "tb");
  ASSERT_NE(model, nullptr);
  EXPECT_THROW(model->read("nope"), std::invalid_argument);
  EXPECT_THROW(model->set_value("nope", 1), std::invalid_argument);
}

TEST(Elaborator, EnumRenderOutOfRange) {
  const std::string source = R"(
entity tb is end tb;
architecture a of tb is
  signal p: phase := cr;
begin
end a;
)";
  auto model = load(source, "tb");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->render("p"), "cr");
}

TEST(Elaborator, SuccPastHighThrowsAtRuntime) {
  const std::string source = R"(
entity tb is end tb;
architecture a of tb is
  signal p: phase := cr;
  signal kick: integer := 0;
begin
  process (kick) begin
    p <= phase'succ(p);
  end process;
end a;
)";
  auto model = load(source, "tb");
  ASSERT_NE(model, nullptr);
  EXPECT_THROW(model->run(), ElaborationError);
}

TEST(Elaborator, ProcessCountsAndSignalRegistry) {
  const std::string source = standard_cells() + R"(
entity tb is end tb;
architecture transfer of tb is
  signal cs: natural := 0;
  signal ph: phase := cr;
begin
  control: controller generic map (1) port map (cs, ph);
end transfer;
)";
  auto model = load(source, "tb");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->process_count(), 1u);
  EXPECT_TRUE(model->signals().contains("cs"));
  EXPECT_TRUE(model->signals().contains("ph"));
}

}  // namespace
}  // namespace ctrtl::vhdl
