#include <gtest/gtest.h>

#include "vhdl/elaborator.h"
#include "vhdl/parser.h"
#include "vhdl/subset_check.h"

namespace ctrtl::vhdl {
namespace {

// The kernel is a general VHDL-semantics simulator: physical time (`wait
// for`, `after`) works in the elaborator even though the clock-free subset
// checker rejects it. This pins down the boundary: the *subset* is
// clock-free, the *kernel* is not — exactly the paper's framing ("clock and
// control signals with physical timing ... are introduced in a succeeding
// synthesis step").

constexpr const char* kClockedCounter = R"(
entity tb is end tb;
architecture a of tb is
  signal clk: integer := 0;
  signal count: integer := 0;
begin
  -- Clock generator: 10 half-periods of 500 fs.
  process
    variable i: integer := 0;
  begin
    if i < 10 then
      i := i + 1;
      clk <= 1 - clk;
      wait for 500 fs;
    else
      wait until clk < 0; -- never: park the process
    end if;
  end process;
  -- Rising-edge counter.
  process (clk)
  begin
    if clk = 1 then
      count <= count + 1;
    end if;
  end process;
end a;
)";

TEST(ClockedVhdl, SubsetCheckerRejectsIt) {
  common::DiagnosticBag diags;
  EXPECT_FALSE(check_subset(parse(kClockedCounter), diags));
  EXPECT_NE(diags.to_text().find("physical time"), std::string::npos);
  // The clock-named signal is also flagged.
  EXPECT_NE(diags.to_text().find("clock"), std::string::npos);
}

TEST(ClockedVhdl, KernelStillExecutesIt) {
  // Elaborate directly (bypassing the subset check) to demonstrate the
  // kernel's generality.
  common::DiagnosticBag diags;
  auto model = elaborate(parse(kClockedCounter), "tb", diags);
  ASSERT_NE(model, nullptr) << diags.to_text();
  model->run();
  EXPECT_EQ(model->read("count"), 5) << "five rising edges";
  EXPECT_EQ(model->scheduler().now().fs, 5000u)
      << "ten half-periods of 500 fs of physical time";
}

TEST(ClockedVhdl, AfterClauseSchedulesTransportDelay) {
  const std::string source = R"(
entity tb is end tb;
architecture a of tb is
  signal kick: integer := 0;
  signal s: integer := 0;
begin
  process (kick)
  begin
    s <= 42 after 1000 fs;
  end process;
end a;
)";
  common::DiagnosticBag diags;
  auto model = elaborate(parse(source), "tb", diags);
  ASSERT_NE(model, nullptr) << diags.to_text();
  model->run();
  EXPECT_EQ(model->read("s"), 42);
  EXPECT_EQ(model->scheduler().now().fs, 1000u);
}

}  // namespace
}  // namespace ctrtl::vhdl
