#include <gtest/gtest.h>

#include "vhdl/elaborator.h"
#include "vhdl/parser.h"
#include "vhdl/subset_check.h"

namespace ctrtl::vhdl {
namespace {

// Paper section 2.6: "If we want to introduce several combinational levels
// then procedures, functions, and blocks can be used to group variable
// assignments associated with specific combinational parts."

std::unique_ptr<ElaboratedModel> load(const std::string& source,
                                      const std::string& top) {
  common::DiagnosticBag diags;
  auto model = load_model(source, top, diags);
  EXPECT_NE(model, nullptr) << diags.to_text();
  return model;
}

TEST(VhdlFunction, ParsesDeclaration) {
  const DesignFile file = parse(R"(
entity e is end e;
architecture a of e is
  function max2 (a, b: integer) return integer is
  begin
    if a > b then
      return a;
    end if;
    return b;
  end max2;
begin
end a;
)");
  ASSERT_EQ(file.architectures[0].functions.size(), 1u);
  const FunctionDecl& fn = file.architectures[0].functions[0];
  EXPECT_EQ(fn.name, "max2");
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[0].name, "a");
  EXPECT_EQ(fn.result.type_name, "integer");
  EXPECT_EQ(fn.body.size(), 2u);
}

TEST(VhdlFunction, EvaluatesInProcess) {
  auto model = load(R"(
entity tb is end tb;
architecture a of tb is
  signal x: integer := 0;
  signal y: integer := 0;
  function clamp (v, lo, hi: integer) return integer is
  begin
    if v < lo then
      return lo;
    elsif v > hi then
      return hi;
    end if;
    return v;
  end clamp;
begin
  process (x) begin
    y <= clamp(x, 0, 100);
  end process;
end a;
)",
                    "tb");
  ASSERT_NE(model, nullptr);
  model->run();
  model->set_value("x", 250);
  model->run();
  EXPECT_EQ(model->read("y"), 100);
  model->set_value("x", -3);
  model->run();
  EXPECT_EQ(model->read("y"), 0);
  model->set_value("x", 42);
  model->run();
  EXPECT_EQ(model->read("y"), 42);
}

TEST(VhdlFunction, LocalVariablesAndNestedCalls) {
  // Combinational cascade grouped into functions, as section 2.6 suggests:
  // a saturating multiply-accumulate built from two helpers.
  auto model = load(R"(
entity tb is end tb;
architecture a of tb is
  signal acc: integer := 0;
  signal kick: integer := 0;
  function sat (v: integer) return integer is
  begin
    if v > 1000 then
      return 1000;
    end if;
    return v;
  end sat;
  function mac (a, b, c: integer) return integer is
    variable p: integer := 0;
  begin
    p := b * c;
    return sat(a + p);
  end mac;
begin
  process (kick) begin
    acc <= mac(acc, kick, 10);
  end process;
end a;
)",
                    "tb");
  ASSERT_NE(model, nullptr);
  model->run();
  model->set_value("kick", 7);
  model->run();
  EXPECT_EQ(model->read("acc"), 70);
  model->set_value("kick", 400);
  model->run();
  EXPECT_EQ(model->read("acc"), 1000) << "saturated through the helper";
}

TEST(VhdlFunction, UsableInConstantInitializers) {
  auto model = load(R"(
entity tb is end tb;
architecture a of tb is
  function twice (v: integer) return integer is
  begin
    return v + v;
  end twice;
  constant k: integer := twice(21);
  signal s: integer := k;
begin
end a;
)",
                    "tb");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->read("s"), 42);
}

TEST(VhdlFunction, SubsetRejectsWaitInside) {
  common::DiagnosticBag diags;
  EXPECT_FALSE(check_subset(parse(R"(
entity e is end e;
architecture a of e is
  signal s: integer;
  function bad (v: integer) return integer is
  begin
    wait until s = 1;
    return v;
  end bad;
begin
end a;
)"),
                            diags));
  EXPECT_NE(diags.to_text().find("wait statements are not allowed"),
            std::string::npos);
}

TEST(VhdlFunction, SubsetRejectsSignalAssignmentInside) {
  common::DiagnosticBag diags;
  EXPECT_FALSE(check_subset(parse(R"(
entity e is end e;
architecture a of e is
  signal s: integer;
  function bad (v: integer) return integer is
  begin
    s <= v;
    return v;
  end bad;
begin
end a;
)"),
                            diags));
  EXPECT_NE(diags.to_text().find("signal assignment inside"), std::string::npos);
}

TEST(VhdlFunction, SubsetRequiresReturn) {
  common::DiagnosticBag diags;
  EXPECT_FALSE(check_subset(parse(R"(
entity e is end e;
architecture a of e is
  function bad (v: integer) return integer is
  begin
    null;
  end bad;
begin
end a;
)"),
                            diags));
  EXPECT_NE(diags.to_text().find("never returns"), std::string::npos);
}

TEST(VhdlFunction, ReturnOutsideFunctionRejected) {
  common::DiagnosticBag diags;
  EXPECT_FALSE(check_subset(parse(R"(
entity e is end e;
architecture a of e is
  signal s: integer;
begin
  process (s) begin
    return 1;
  end process;
end a;
)"),
                            diags));
  EXPECT_NE(diags.to_text().find("belong in functions"), std::string::npos);
}

TEST(VhdlFunction, WrongArityFailsAtRuntime) {
  auto model = load(R"(
entity tb is end tb;
architecture a of tb is
  signal s: integer := 0;
  signal kick: integer := 0;
  function one (v: integer) return integer is
  begin
    return v;
  end one;
begin
  process (kick) begin
    s <= one(1, 2);
  end process;
end a;
)",
                    "tb");
  ASSERT_NE(model, nullptr);
  model->set_value("kick", 5);
  EXPECT_THROW(model->run(), ElaborationError);
}

TEST(VhdlFunction, RunawayRecursionCaught) {
  auto model = load(R"(
entity tb is end tb;
architecture a of tb is
  signal s: integer := 0;
  signal kick: integer := 0;
  function loopy (v: integer) return integer is
  begin
    return loopy(v + 1);
  end loopy;
begin
  process (kick) begin
    s <= loopy(0);
  end process;
end a;
)",
                    "tb");
  ASSERT_NE(model, nullptr);
  model->set_value("kick", 1);
  EXPECT_THROW(model->run(), ElaborationError);
}

TEST(VhdlFunction, BoundedRecursionWorks) {
  auto model = load(R"(
entity tb is end tb;
architecture a of tb is
  signal s: integer := 0;
  signal kick: integer := 0;
  function fib (n: integer) return integer is
  begin
    if n < 2 then
      return n;
    end if;
    return fib(n - 1) + fib(n - 2);
  end fib;
begin
  process (kick) begin
    s <= fib(10);
  end process;
end a;
)",
                    "tb");
  ASSERT_NE(model, nullptr);
  model->set_value("kick", 1);
  model->run();
  EXPECT_EQ(model->read("s"), 55);
}

}  // namespace
}  // namespace ctrtl::vhdl
