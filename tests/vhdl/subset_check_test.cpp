#include "vhdl/subset_check.h"

#include <gtest/gtest.h>

#include "vhdl/emitter.h"
#include "vhdl/parser.h"

namespace ctrtl::vhdl {
namespace {

bool check(const std::string& source, std::string* text = nullptr) {
  common::DiagnosticBag diags;
  const bool ok = check_subset(parse(source), diags);
  if (text != nullptr) {
    *text = diags.to_text();
  }
  return ok;
}

TEST(SubsetCheck, StandardCellsConform) {
  std::string text;
  EXPECT_TRUE(check(standard_cells(), &text)) << text;
}

TEST(SubsetCheck, RejectsAfterClause) {
  std::string text;
  EXPECT_FALSE(check(R"(
entity e is end e;
architecture a of e is
  signal s: integer;
begin
  process (s) begin
    s <= 1 after 10 ns;
  end process;
end a;
)",
                     &text));
  EXPECT_NE(text.find("physical delay"), std::string::npos);
}

TEST(SubsetCheck, RejectsWaitFor) {
  std::string text;
  EXPECT_FALSE(check(R"(
entity e is end e;
architecture a of e is
begin
  process begin
    wait for 10 ns;
  end process;
end a;
)",
                     &text));
  EXPECT_NE(text.find("physical time"), std::string::npos);
}

TEST(SubsetCheck, RejectsClockSignals) {
  std::string text;
  EXPECT_FALSE(check(R"(
entity e is end e;
architecture a of e is
  signal clk: integer;
begin
end a;
)",
                     &text));
  EXPECT_NE(text.find("clock"), std::string::npos);
}

TEST(SubsetCheck, RejectsClockPorts) {
  EXPECT_FALSE(check(R"(
entity e is
  port (sys_clk: in integer);
end e;
)"));
}

TEST(SubsetCheck, RejectsUnknownType) {
  std::string text;
  EXPECT_FALSE(check(R"(
entity e is
  port (v: in std_logic);
end e;
)",
                     &text));
  EXPECT_NE(text.find("outside the subset"), std::string::npos);
}

TEST(SubsetCheck, AcceptsDeclaredEnumTypes) {
  EXPECT_TRUE(check(R"(
entity e is end e;
architecture a of e is
  type state is (idle, busy);
  signal s: state;
begin
end a;
)"));
}

TEST(SubsetCheck, RejectsResolvedEnum) {
  EXPECT_FALSE(check(R"(
entity e is end e;
architecture a of e is
  signal p: resolved phase;
begin
end a;
)"));
}

TEST(SubsetCheck, RejectsProcessWithSensitivityAndWait) {
  EXPECT_FALSE(check(R"(
entity e is end e;
architecture a of e is
  signal s: integer;
begin
  process (s) begin
    wait until s = 1;
  end process;
end a;
)"));
}

TEST(SubsetCheck, RejectsProcessThatNeverSuspends) {
  std::string text;
  EXPECT_FALSE(check(R"(
entity e is end e;
architecture a of e is
  signal s: integer;
begin
  process begin
    s <= 1;
  end process;
end a;
)",
                     &text));
  EXPECT_NE(text.find("never suspend"), std::string::npos);
}

TEST(SubsetCheck, RejectsBareWait) {
  EXPECT_FALSE(check(R"(
entity e is end e;
architecture a of e is
begin
  process begin
    wait;
  end process;
end a;
)"));
}

TEST(SubsetCheck, RejectsArchitectureOfUnknownEntity) {
  EXPECT_FALSE(check(R"(
architecture a of ghost is
begin
end a;
)"));
}

TEST(SubsetCheck, RejectsInstanceOfUnknownEntity) {
  EXPECT_FALSE(check(R"(
entity e is end e;
architecture a of e is
begin
  u1: ghost port map (x);
end a;
)"));
}

TEST(SubsetCheck, RejectsPortArityMismatch) {
  std::string text;
  EXPECT_FALSE(check(R"(
entity child is
  port (a: in integer; b: in integer);
end child;
architecture c of child is
begin
  process (a) begin
    null;
  end process;
end c;
entity e is end e;
architecture a of e is
  signal x: integer;
begin
  u1: child port map (x);
end a;
)",
                     &text));
  EXPECT_NE(text.find("port map"), std::string::npos);
}

TEST(SubsetCheck, RejectsMissingGenericActual) {
  EXPECT_FALSE(check(R"(
entity child is
  generic (g: natural);
end child;
architecture c of child is
begin
end c;
entity e is end e;
architecture a of e is
begin
  u1: child;
end a;
)"));
}

TEST(SubsetCheck, WaitInsideIfCounts) {
  EXPECT_TRUE(check(R"(
entity e is end e;
architecture a of e is
  signal s: integer;
begin
  process begin
    if s = 0 then
      wait until s = 1;
    else
      wait until s = 0;
    end if;
  end process;
end a;
)"));
}

}  // namespace
}  // namespace ctrtl::vhdl
