#include "rtl/module.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rtl/controller.h"
#include "rtl/modules.h"
#include "rtl/transfer_process.h"

namespace ctrtl::rtl {
namespace {

std::int64_t add_fn_result(std::span<const std::int64_t> v) { return v[0] + v[1]; }

/// Harness: a module under test with constant sources wired through
/// transfer processes, mimicking the paper's usage.
struct Fixture {
  kernel::Scheduler sched;
  Controller ctl;

  explicit Fixture(unsigned cs_max) : ctl(sched, cs_max) {}

  RtSignal& constant(const std::string& name, std::int64_t value) {
    return sched.make_signal<RtValue>(name, RtValue::of(value));
  }

  void feed(Module& module, unsigned step, RtSignal& a, RtSignal& b) {
    transfers.push_back(std::make_unique<TransferProcess>(
        sched, ctl, step, Phase::kRb, a, module.input(0), "fa" + std::to_string(step)));
    transfers.push_back(std::make_unique<TransferProcess>(
        sched, ctl, step, Phase::kRb, b, module.input(1), "fb" + std::to_string(step)));
  }

  void feed_op(Module& module, unsigned step, RtSignal& op) {
    transfers.push_back(std::make_unique<TransferProcess>(
        sched, ctl, step, Phase::kRb, op, module.op_port(), "op" + std::to_string(step)));
  }

  /// Output port value observed at phase `wa` of each step.
  std::vector<std::string> run_and_sample_out(Module& module) {
    sched.initialize();
    std::vector<std::string> samples;
    while (sched.step()) {
      if (ctl.ph().read() == Phase::kWa) {
        samples.push_back(to_string(module.out().read()));
      }
    }
    return samples;
  }

  std::vector<std::unique_ptr<TransferProcess>> transfers;
};

TEST(Module, PaperAdderPipelineTiming) {
  // Operands fetched in step 1 appear at the output in step 2 (latency 1).
  Fixture f(3);
  FixedFunctionModule add(f.sched, f.ctl, "ADD", 2, 1, add_fn_result);
  add.start(f.sched);
  f.feed(add, 1, f.constant("c30", 30), f.constant("c12", 12));
  const auto samples = f.run_and_sample_out(add);
  EXPECT_EQ(samples, (std::vector<std::string>{"DISC", "42", "DISC"}));
}

TEST(Module, AdderIdleWhenBothOperandsDisc) {
  Fixture f(2);
  FixedFunctionModule add(f.sched, f.ctl, "ADD", 2, 1, add_fn_result);
  add.start(f.sched);
  const auto samples = f.run_and_sample_out(add);
  EXPECT_EQ(samples, (std::vector<std::string>{"DISC", "DISC"}));
  EXPECT_FALSE(add.poisoned());
}

TEST(Module, MixedOperandsProduceIllegal) {
  // Paper: "either both operand values are natural values or both are DISC"
  // — one operand alone poisons the module.
  Fixture f(3);
  FixedFunctionModule add(f.sched, f.ctl, "ADD", 2, 1, add_fn_result);
  add.start(f.sched);
  RtSignal& c = f.constant("c1", 1);
  f.transfers.push_back(std::make_unique<TransferProcess>(
      f.sched, f.ctl, 1, Phase::kRb, c, add.input(0), "only_a"));
  const auto samples = f.run_and_sample_out(add);
  EXPECT_EQ(samples, (std::vector<std::string>{"DISC", "ILLEGAL", "ILLEGAL"}));
  EXPECT_TRUE(add.poisoned());
}

TEST(Module, PoisonIsSticky) {
  // Valid operands after a poisoning event must not heal the module
  // (paper's `if M /= ILLEGAL` guard).
  Fixture f(4);
  FixedFunctionModule add(f.sched, f.ctl, "ADD", 2, 1, add_fn_result);
  add.start(f.sched);
  RtSignal& c = f.constant("c1", 1);
  f.transfers.push_back(std::make_unique<TransferProcess>(
      f.sched, f.ctl, 1, Phase::kRb, c, add.input(0), "only_a"));
  f.feed(add, 3, f.constant("c2", 2), f.constant("c3", 3));  // valid operands later
  const auto samples = f.run_and_sample_out(add);
  EXPECT_EQ(samples, (std::vector<std::string>{"DISC", "ILLEGAL", "ILLEGAL", "ILLEGAL"}));
}

TEST(Module, ZeroLatencyComputesWithinStep) {
  Fixture f(2);
  FixedFunctionModule add(f.sched, f.ctl, "ADD0", 2, 0, add_fn_result);
  add.start(f.sched);
  f.feed(add, 1, f.constant("c3", 3), f.constant("c4", 4));
  const auto samples = f.run_and_sample_out(add);
  EXPECT_EQ(samples, (std::vector<std::string>{"7", "DISC"}));
}

TEST(Module, TwoStagePipelineDelaysTwoSteps) {
  Fixture f(4);
  FixedFunctionModule mul(f.sched, f.ctl, "MUL", 2, 2,
                          [](std::span<const std::int64_t> v) { return v[0] * v[1]; });
  mul.start(f.sched);
  f.feed(mul, 1, f.constant("c6", 6), f.constant("c7", 7));
  const auto samples = f.run_and_sample_out(mul);
  EXPECT_EQ(samples, (std::vector<std::string>{"DISC", "DISC", "42", "DISC"}));
}

TEST(Module, PipelinedBackToBackOperands) {
  // Pipelined module accepts new operands every step (paper: "can fetch
  // operands in each control step and provide the results in the next").
  Fixture f(4);
  FixedFunctionModule add(f.sched, f.ctl, "ADD", 2, 1, add_fn_result);
  add.start(f.sched);
  f.feed(add, 1, f.constant("a1", 1), f.constant("b1", 2));
  f.feed(add, 2, f.constant("a2", 10), f.constant("b2", 20));
  f.feed(add, 3, f.constant("a3", 100), f.constant("b3", 200));
  const auto samples = f.run_and_sample_out(add);
  EXPECT_EQ(samples, (std::vector<std::string>{"DISC", "3", "30", "300"}));
}

TEST(Module, InputPortValidation) {
  Fixture f(1);
  FixedFunctionModule add(f.sched, f.ctl, "ADD", 2, 1, add_fn_result);
  EXPECT_NO_THROW(add.input(0));
  EXPECT_NO_THROW(add.input(1));
  EXPECT_THROW(add.input(2), std::out_of_range);
  EXPECT_THROW(add.op_port(), std::logic_error) << "no op port configured";
}

TEST(Module, NullFunctionRejected) {
  Fixture f(1);
  EXPECT_THROW(
      FixedFunctionModule(f.sched, f.ctl, "BAD", 2, 1, nullptr),
      std::invalid_argument);
}

// --- AluModule ---------------------------------------------------------------

TEST(AluModule, OpSelectsOperation) {
  Fixture f(3);
  AluModule alu(f.sched, f.ctl, "ALU", 2, 1, make_standard_alu_ops());
  alu.start(f.sched);
  f.feed(alu, 1, f.constant("c9", 9), f.constant("c4", 4));
  f.feed_op(alu, 1, f.constant("sub", alu_ops::kSub));
  const auto samples = f.run_and_sample_out(alu);
  EXPECT_EQ(samples, (std::vector<std::string>{"DISC", "5", "DISC"}));
}

TEST(AluModule, UnaryOpIgnoresSecondPort) {
  Fixture f(3);
  AluModule alu(f.sched, f.ctl, "ALU", 2, 1, make_standard_alu_ops());
  alu.start(f.sched);
  RtSignal& a = f.constant("c9", 9);
  f.transfers.push_back(std::make_unique<TransferProcess>(
      f.sched, f.ctl, 1, Phase::kRb, a, alu.input(0), "a"));
  f.feed_op(alu, 1, f.constant("passa", alu_ops::kPassA));
  const auto samples = f.run_and_sample_out(alu);
  EXPECT_EQ(samples, (std::vector<std::string>{"DISC", "9", "DISC"}));
}

TEST(AluModule, RshiftFamily) {
  Fixture f(3);
  AluModule alu(f.sched, f.ctl, "ALU", 2, 1, make_standard_alu_ops());
  alu.start(f.sched);
  RtSignal& a = f.constant("c80", 80);
  f.transfers.push_back(std::make_unique<TransferProcess>(
      f.sched, f.ctl, 1, Phase::kRb, a, alu.input(0), "a"));
  f.feed_op(alu, 1, f.constant("shift3", alu_ops::kRshiftBase + 3));
  const auto samples = f.run_and_sample_out(alu);
  EXPECT_EQ(samples, (std::vector<std::string>{"DISC", "10", "DISC"}));
}

TEST(AluModule, OperandWithoutOpIsIllegal) {
  Fixture f(2);
  AluModule alu(f.sched, f.ctl, "ALU", 2, 1, make_standard_alu_ops());
  alu.start(f.sched);
  RtSignal& a = f.constant("c1", 1);
  f.transfers.push_back(std::make_unique<TransferProcess>(
      f.sched, f.ctl, 1, Phase::kRb, a, alu.input(0), "a"));
  const auto samples = f.run_and_sample_out(alu);
  EXPECT_EQ(samples, (std::vector<std::string>{"DISC", "ILLEGAL"}));
}

TEST(AluModule, MissingOperandForBinaryOpIsIllegal) {
  Fixture f(2);
  AluModule alu(f.sched, f.ctl, "ALU", 2, 1, make_standard_alu_ops());
  alu.start(f.sched);
  RtSignal& a = f.constant("c1", 1);
  f.transfers.push_back(std::make_unique<TransferProcess>(
      f.sched, f.ctl, 1, Phase::kRb, a, alu.input(0), "a"));
  f.feed_op(alu, 1, f.constant("add", alu_ops::kAdd));
  const auto samples = f.run_and_sample_out(alu);
  EXPECT_EQ(samples, (std::vector<std::string>{"DISC", "ILLEGAL"}));
}

TEST(AluModule, OpValidationAtConstruction) {
  Fixture f(1);
  AluModule::OpTable ops;
  ops[0] = {"triple", 3, [](std::span<const std::int64_t>) { return 0; }};
  EXPECT_THROW(AluModule(f.sched, f.ctl, "ALU", 2, 1, std::move(ops)),
               std::invalid_argument);
}

TEST(AluModule, StandardTableContents) {
  const auto ops = make_standard_alu_ops();
  EXPECT_EQ(ops.at(alu_ops::kAdd).mnemonic, "add");
  EXPECT_EQ(ops.at(alu_ops::kSub).arity, 2u);
  EXPECT_EQ(ops.at(alu_ops::kPassA).arity, 1u);
  EXPECT_TRUE(ops.contains(alu_ops::kRshiftBase));
  EXPECT_TRUE(ops.contains(alu_ops::kRshiftMax));
}

// --- CopyModule --------------------------------------------------------------

TEST(CopyModule, PassesThroughSameStep) {
  Fixture f(2);
  CopyModule copy(f.sched, f.ctl, "CP");
  copy.start(f.sched);
  RtSignal& a = f.constant("c5", 5);
  f.transfers.push_back(std::make_unique<TransferProcess>(
      f.sched, f.ctl, 1, Phase::kRb, a, copy.input(0), "a"));
  const auto samples = f.run_and_sample_out(copy);
  EXPECT_EQ(samples, (std::vector<std::string>{"5", "DISC"}));
}

// --- MaccModule --------------------------------------------------------------

TEST(MaccModule, AccumulatesFixedPointProducts) {
  Fixture f(5);
  MaccModule macc(f.sched, f.ctl, "MACC", 0);  // frac_bits 0: plain integers
  macc.start(f.sched);
  f.feed_op(macc, 1, f.constant("clr", MaccModule::kOpClear));
  f.feed(macc, 2, f.constant("a2", 3), f.constant("b2", 4));
  f.feed_op(macc, 2, f.constant("mac2", MaccModule::kOpMac));
  f.feed(macc, 3, f.constant("a3", 5), f.constant("b3", 6));
  f.feed_op(macc, 3, f.constant("mac3", MaccModule::kOpMac));
  const auto samples = f.run_and_sample_out(macc);
  // acc: step1 clear -> 0, step2 -> 12, step3 -> 42; output lags one step.
  EXPECT_EQ(samples, (std::vector<std::string>{"DISC", "0", "12", "42", "42"}));
}

TEST(MaccModule, LoadReplacesAccumulator) {
  Fixture f(3);
  MaccModule macc(f.sched, f.ctl, "MACC", 0);
  macc.start(f.sched);
  RtSignal& a = f.constant("c7", 7);
  f.transfers.push_back(std::make_unique<TransferProcess>(
      f.sched, f.ctl, 1, Phase::kRb, a, macc.input(0), "a"));
  f.feed_op(macc, 1, f.constant("ld", MaccModule::kOpLoad));
  const auto samples = f.run_and_sample_out(macc);
  EXPECT_EQ(samples, (std::vector<std::string>{"DISC", "7", "7"}));
}

TEST(MaccModule, StrayOperandOnIdleUnitIsIllegal) {
  Fixture f(2);
  MaccModule macc(f.sched, f.ctl, "MACC", 0);
  macc.start(f.sched);
  RtSignal& a = f.constant("c7", 7);
  f.transfers.push_back(std::make_unique<TransferProcess>(
      f.sched, f.ctl, 1, Phase::kRb, a, macc.input(0), "a"));
  const auto samples = f.run_and_sample_out(macc);
  EXPECT_EQ(samples, (std::vector<std::string>{"DISC", "ILLEGAL"}));
}

TEST(MaccModule, FixedPointMacRounds) {
  Fixture f(3);
  MaccModule macc(f.sched, f.ctl, "MACC", 16);
  macc.start(f.sched);
  const std::int64_t half = 1 << 15;  // 0.5 in Q16
  const std::int64_t two = 2 << 16;
  f.feed(macc, 1, f.constant("a", half), f.constant("b", two));
  f.feed_op(macc, 1, f.constant("mac", MaccModule::kOpMac));
  const auto samples = f.run_and_sample_out(macc);
  EXPECT_EQ(samples[1], std::to_string(1 << 16));  // 0.5 * 2 = 1.0
}

// --- CordicModule ------------------------------------------------------------

TEST(CordicModule, RotateMatchesLibm) {
  constexpr unsigned kFrac = 16;
  constexpr unsigned kIters = 24;
  const double one = static_cast<double>(1 << kFrac);
  for (const double angle : {0.0, 0.5, 1.0, -0.5, 3.0, -3.0, 2.0, -2.0}) {
    const auto raw = static_cast<std::int64_t>(std::llround(angle * one));
    const auto [sin_raw, cos_raw] = CordicModule::rotate(raw, kFrac, kIters);
    EXPECT_NEAR(sin_raw / one, std::sin(angle), 2e-4) << "angle " << angle;
    EXPECT_NEAR(cos_raw / one, std::cos(angle), 2e-4) << "angle " << angle;
  }
}

TEST(CordicModule, OpSelectsSinOrCos) {
  constexpr unsigned kFrac = 16;
  Fixture f(3);
  CordicModule cordic(f.sched, f.ctl, "CORDIC", kFrac, 24, 1);
  cordic.start(f.sched);
  const std::int64_t angle = 1 << 15;  // 0.5 rad
  RtSignal& a = f.constant("ang", angle);
  f.transfers.push_back(std::make_unique<TransferProcess>(
      f.sched, f.ctl, 1, Phase::kRb, a, cordic.input(0), "a"));
  f.feed_op(cordic, 1, f.constant("sin", CordicModule::kOpSin));
  const auto samples = f.run_and_sample_out(cordic);
  const double got = std::stod(samples[1]) / (1 << kFrac);
  EXPECT_NEAR(got, std::sin(0.5), 2e-4);
}

// --- fixed_mul ---------------------------------------------------------------

TEST(FixedMul, ZeroFracBitsIsPlainMultiply) {
  EXPECT_EQ(fixed_mul(6, 7, 0), 42);
  EXPECT_EQ(fixed_mul(-6, 7, 0), -42);
}

TEST(FixedMul, RescalesQ16) {
  const std::int64_t one = 1 << 16;
  EXPECT_EQ(fixed_mul(one, one, 16), one);
  EXPECT_EQ(fixed_mul(one / 2, one / 2, 16), one / 4);
  EXPECT_EQ(fixed_mul(-one / 2, one, 16), -one / 2);
}

}  // namespace
}  // namespace ctrtl::rtl
