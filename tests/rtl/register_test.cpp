#include "rtl/register.h"

#include <gtest/gtest.h>

#include "rtl/controller.h"
#include "rtl/transfer_process.h"

namespace ctrtl::rtl {
namespace {

struct Fixture {
  kernel::Scheduler sched;
  Controller ctl;

  explicit Fixture(unsigned cs_max) : ctl(sched, cs_max) {}
};

TEST(Register, StartsDisc) {
  Fixture f(1);
  Register reg(f.sched, f.ctl, "R");
  EXPECT_TRUE(reg.value().is_disc());
  EXPECT_EQ(reg.name(), "R");
}

TEST(Register, PreloadVisibleFromStepOne) {
  Fixture f(1);
  Register reg(f.sched, f.ctl, "R", RtValue::of(5));
  f.sched.initialize();
  f.sched.step();  // delta 1 = (1, ra)
  EXPECT_EQ(reg.value(), RtValue::of(5));
}

TEST(Register, KeepsValueWhenInputDisc) {
  Fixture f(5);
  Register reg(f.sched, f.ctl, "R", RtValue::of(5));
  f.sched.run();
  EXPECT_EQ(reg.value(), RtValue::of(5)) << "no transfer ever wrote; value kept";
}

TEST(Register, LatchesAtCrOnly) {
  Fixture f(2);
  Register reg(f.sched, f.ctl, "R");
  RtSignal& src = f.sched.make_signal<RtValue>("SRC", RtValue::of(9));
  // A wb transfer in step 1 puts the value on the register input; the
  // register must latch it at cr and expose it from the next delta on.
  TransferProcess t(f.sched, f.ctl, 1, Phase::kWb, src, reg.in(), "t");
  f.sched.initialize();
  std::vector<std::string> values;
  while (f.sched.step()) {
    values.push_back(to_string(reg.value()));
  }
  const std::vector<std::string> expected = {
      "DISC", "DISC", "DISC", "DISC", "DISC", "DISC",  // step 1: input arrives at cr
      "9",    "9",    "9",    "9",    "9",    "9",     // step 2: latched value visible
  };
  EXPECT_EQ(values, expected);
}

TEST(Register, OverwritesOnSecondWrite) {
  Fixture f(3);
  Register reg(f.sched, f.ctl, "R", RtValue::of(1));
  RtSignal& src2 = f.sched.make_signal<RtValue>("S2", RtValue::of(2));
  RtSignal& src3 = f.sched.make_signal<RtValue>("S3", RtValue::of(3));
  TransferProcess t1(f.sched, f.ctl, 1, Phase::kWb, src2, reg.in(), "t1");
  TransferProcess t2(f.sched, f.ctl, 3, Phase::kWb, src3, reg.in(), "t2");
  f.sched.run();
  EXPECT_EQ(reg.value(), RtValue::of(3));
}

TEST(Register, LatchesIllegalInput) {
  // Paper: `if R_in /= DISC then R_out <= R_in;` — ILLEGAL is /= DISC and
  // therefore latched, keeping conflicts visible.
  Fixture f(2);
  Register reg(f.sched, f.ctl, "R", RtValue::of(7));
  RtSignal& a = f.sched.make_signal<RtValue>("A", RtValue::of(1));
  RtSignal& b = f.sched.make_signal<RtValue>("B", RtValue::of(2));
  TransferProcess t1(f.sched, f.ctl, 1, Phase::kWb, a, reg.in(), "t1");
  TransferProcess t2(f.sched, f.ctl, 1, Phase::kWb, b, reg.in(), "t2");
  f.sched.run();
  EXPECT_TRUE(reg.value().is_illegal());
}

TEST(Register, InputPortIsResolved) {
  Fixture f(1);
  Register reg(f.sched, f.ctl, "R");
  EXPECT_TRUE(reg.in().resolved());
  EXPECT_FALSE(reg.out().resolved());
}

TEST(Register, RegisterToRegisterViaWbTransfer) {
  // Chained step: R1 -> (wb) -> R2 in step 1; R2 readable in step 2.
  Fixture f(2);
  Register r1(f.sched, f.ctl, "R1", RtValue::of(11));
  Register r2(f.sched, f.ctl, "R2");
  TransferProcess t(f.sched, f.ctl, 1, Phase::kWb, r1.out(), r2.in(), "t");
  f.sched.run();
  EXPECT_EQ(r2.value(), RtValue::of(11));
  EXPECT_EQ(r1.value(), RtValue::of(11)) << "source unchanged";
}

}  // namespace
}  // namespace ctrtl::rtl
