#include "rtl/transfer_process.h"

#include <gtest/gtest.h>

#include <vector>

#include "rtl/controller.h"

namespace ctrtl::rtl {
namespace {

RtValue resolver(std::span<const RtValue> v) { return resolve_rt(v); }

struct Fixture {
  kernel::Scheduler sched;
  Controller ctl;
  RtSignal& source;
  RtSignal& sink;

  explicit Fixture(unsigned cs_max)
      : ctl(sched, cs_max),
        source(sched.make_signal<RtValue>("SRC", RtValue::of(42))),
        sink(sched.make_signal<RtValue>("SINK", RtValue::disc(), resolver)) {}
};

TEST(TransferProcess, DrivesValueDuringItsWindowOnly) {
  Fixture f(3);
  TransferProcess trans(f.sched, f.ctl, 2, Phase::kRa, f.source, f.sink, "t");
  f.sched.initialize();
  std::vector<std::string> window;  // sink value per (step, phase)
  while (f.sched.step()) {
    if (f.ctl.cs().read() == 2) {
      window.push_back(to_string(f.sink.read()));
    }
  }
  // Activated at (2, ra): value visible one delta later (rb), released at
  // rb: DISC visible again from cm on.
  const std::vector<std::string> expected = {"DISC", "42", "DISC",
                                             "DISC", "DISC", "DISC"};
  EXPECT_EQ(window, expected);
}

TEST(TransferProcess, WindowForEachActivationPhase) {
  for (const Phase phase : {Phase::kRa, Phase::kRb, Phase::kCm, Phase::kWa, Phase::kWb}) {
    Fixture f(2);
    TransferProcess trans(f.sched, f.ctl, 1, phase, f.source, f.sink, "t");
    f.sched.initialize();
    std::vector<bool> live;  // sink carries the value?
    while (f.sched.step()) {
      if (f.ctl.cs().read() == 1) {
        live.push_back(f.sink.read() == RtValue::of(42));
      }
    }
    ASSERT_EQ(live.size(), 6u);
    for (int i = 0; i < 6; ++i) {
      const bool expected_live = i == phase_index(phase) + 1;
      EXPECT_EQ(live[i], expected_live)
          << "phase " << phase_name(phase) << ", delta index " << i;
    }
  }
}

TEST(TransferProcess, PhaseCrRejected) {
  Fixture f(2);
  EXPECT_THROW(
      TransferProcess(f.sched, f.ctl, 1, Phase::kCr, f.source, f.sink, "t"),
      std::invalid_argument);
}

TEST(TransferProcess, NeverFiresOutsideItsStep) {
  Fixture f(4);
  TransferProcess trans(f.sched, f.ctl, 2, Phase::kRa, f.source, f.sink, "t");
  f.sched.initialize();
  while (f.sched.step()) {
    if (f.ctl.cs().read() != 2) {
      EXPECT_TRUE(f.sink.read().is_disc())
          << "at step " << f.ctl.cs().read() << " phase "
          << phase_name(f.ctl.ph().read());
    }
  }
}

TEST(TransferProcess, TransfersDiscWhenSourceIsDisc) {
  Fixture f(2);
  RtSignal& empty_src = f.sched.make_signal<RtValue>("EMPTY", RtValue::disc());
  TransferProcess trans(f.sched, f.ctl, 1, Phase::kRa, empty_src, f.sink, "t");
  auto result = [&] {
    f.sched.run();
    return f.sink.read();
  }();
  EXPECT_TRUE(result.is_disc());
}

TEST(TransferProcess, TwoTransfersSamePhaseConflict) {
  Fixture f(2);
  RtSignal& src2 = f.sched.make_signal<RtValue>("SRC2", RtValue::of(7));
  TransferProcess t1(f.sched, f.ctl, 1, Phase::kRa, f.source, f.sink, "t1");
  TransferProcess t2(f.sched, f.ctl, 1, Phase::kRa, src2, f.sink, "t2");
  f.sched.initialize();
  bool saw_illegal = false;
  while (f.sched.step()) {
    if (f.sink.read().is_illegal()) {
      saw_illegal = true;
      // Visible exactly at (1, rb): the delta after both drove.
      EXPECT_EQ(f.ctl.cs().read(), 1u);
      EXPECT_EQ(f.ctl.ph().read(), Phase::kRb);
    }
  }
  EXPECT_TRUE(saw_illegal);
}

TEST(TransferProcess, TwoTransfersDifferentPhasesShareSink) {
  // t1 holds the sink during rb; t2 during cm — the windows do not overlap,
  // so no conflict arises.
  Fixture f(2);
  RtSignal& src2 = f.sched.make_signal<RtValue>("SRC2", RtValue::of(7));
  TransferProcess t1(f.sched, f.ctl, 1, Phase::kRa, f.source, f.sink, "t1");
  TransferProcess t2(f.sched, f.ctl, 1, Phase::kRb, src2, f.sink, "t2");
  f.sched.initialize();
  std::vector<std::string> values;
  while (f.sched.step()) {
    if (f.ctl.cs().read() == 1) {
      values.push_back(to_string(f.sink.read()));
    }
  }
  const std::vector<std::string> expected = {"DISC", "42", "7",
                                             "DISC", "DISC", "DISC"};
  EXPECT_EQ(values, expected);
}

TEST(TransferProcess, AccessorsReflectConstruction) {
  Fixture f(3);
  TransferProcess trans(f.sched, f.ctl, 2, Phase::kWa, f.source, f.sink, "myname");
  EXPECT_EQ(trans.step(), 2u);
  EXPECT_EQ(trans.phase(), Phase::kWa);
  EXPECT_EQ(trans.name(), "myname");
  EXPECT_EQ(&trans.source(), &f.source);
  EXPECT_EQ(&trans.sink(), &f.sink);
}

TEST(TransferProcess, SinkSeesSourceValueAtActivationInstant) {
  // The TRANS process samples the source when it fires; later source
  // changes must not retroactively alter the transferred value.
  Fixture f(3);
  RtSignal& reg_like = f.sched.make_signal<RtValue>("R", RtValue::of(1));
  const kernel::DriverId d = reg_like.add_driver(RtValue::of(1));
  TransferProcess trans(f.sched, f.ctl, 1, Phase::kRa, reg_like, f.sink, "t");
  f.sched.initialize();
  std::vector<std::string> at_rb;
  while (f.sched.step()) {
    if (f.ctl.cs().read() == 1 && f.ctl.ph().read() == Phase::kRb) {
      at_rb.push_back(to_string(f.sink.read()));
      reg_like.drive(d, RtValue::of(99));  // change source after the sample
    }
  }
  EXPECT_EQ(at_rb, std::vector<std::string>{"1"});
  EXPECT_TRUE(f.sink.read().is_disc());
}

}  // namespace
}  // namespace ctrtl::rtl
