#include "rtl/value.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace ctrtl::rtl {
namespace {

TEST(RtValue, DefaultIsDisc) {
  const RtValue v;
  EXPECT_TRUE(v.is_disc());
  EXPECT_FALSE(v.is_illegal());
  EXPECT_FALSE(v.has_value());
}

TEST(RtValue, Constructors) {
  EXPECT_TRUE(RtValue::disc().is_disc());
  EXPECT_TRUE(RtValue::illegal().is_illegal());
  EXPECT_TRUE(RtValue::of(5).has_value());
  EXPECT_EQ(RtValue::of(5).payload(), 5);
  EXPECT_EQ(RtValue::of(-7).payload(), -7) << "payloads may be negative (fixed-point)";
}

TEST(RtValue, PayloadOnNonValueThrows) {
  EXPECT_THROW(RtValue::disc().payload(), std::logic_error);
  EXPECT_THROW(RtValue::illegal().payload(), std::logic_error);
}

TEST(RtValue, InbandEncodingMatchesPaper) {
  // constant DISC: Integer := -1;  constant ILLEGAL: Integer := -2;
  EXPECT_EQ(RtValue::disc().to_inband(), -1);
  EXPECT_EQ(RtValue::illegal().to_inband(), -2);
  EXPECT_EQ(RtValue::of(42).to_inband(), 42);
}

TEST(RtValue, InbandRoundTrip) {
  for (const std::int64_t encoded : {-2LL, -1LL, 0LL, 1LL, 12345LL}) {
    EXPECT_EQ(RtValue::from_inband(encoded).to_inband(), encoded);
  }
}

TEST(RtValue, InbandRejectsNegativePayload) {
  EXPECT_THROW(RtValue::of(-3).to_inband(), std::domain_error);
}

TEST(RtValue, EqualityIgnoresNothing) {
  EXPECT_EQ(RtValue::of(1), RtValue::of(1));
  EXPECT_NE(RtValue::of(1), RtValue::of(2));
  EXPECT_NE(RtValue::of(1), RtValue::disc());
  EXPECT_EQ(RtValue::disc(), RtValue());
  EXPECT_NE(RtValue::disc(), RtValue::illegal());
}

TEST(RtValue, ToString) {
  EXPECT_EQ(to_string(RtValue::disc()), "DISC");
  EXPECT_EQ(to_string(RtValue::illegal()), "ILLEGAL");
  EXPECT_EQ(to_string(RtValue::of(7)), "7");
}

// --- resolution function (paper section 2.3) --------------------------------

RtValue resolve(std::initializer_list<RtValue> values) {
  const std::vector<RtValue> v(values);
  return resolve_rt(v);
}

TEST(ResolveRt, EmptyListIsDisc) {
  EXPECT_TRUE(resolve({}).is_disc());
}

TEST(ResolveRt, AllDiscIsDisc) {
  EXPECT_TRUE(resolve({RtValue::disc(), RtValue::disc(), RtValue::disc()}).is_disc());
}

TEST(ResolveRt, SingleValueWins) {
  EXPECT_EQ(resolve({RtValue::disc(), RtValue::of(9), RtValue::disc()}), RtValue::of(9));
}

TEST(ResolveRt, TwoValuesAreIllegal) {
  EXPECT_TRUE(resolve({RtValue::of(1), RtValue::of(2)}).is_illegal());
  EXPECT_TRUE(resolve({RtValue::of(1), RtValue::of(1)}).is_illegal())
      << "even equal values conflict: 'at least two integers are not DISC'";
}

TEST(ResolveRt, AnyIllegalIsIllegal) {
  EXPECT_TRUE(resolve({RtValue::illegal()}).is_illegal());
  EXPECT_TRUE(resolve({RtValue::disc(), RtValue::illegal()}).is_illegal());
  EXPECT_TRUE(resolve({RtValue::of(4), RtValue::illegal()}).is_illegal());
}

// The paper's resolution table (section 2.3), pinned case by case. Each row
// is (contributions -> resolved value); together the rows cover the four
// branches the text enumerates: all DISC, any ILLEGAL, >= 2 non-DISC,
// exactly one non-DISC.
TEST(ResolveRt, PaperResolutionTablePinned) {
  const struct {
    std::vector<RtValue> contributions;
    RtValue resolved;
    const char* row;
  } kTable[] = {
      {{}, RtValue::disc(), "no drivers: bus stays disconnected"},
      {{RtValue::disc()}, RtValue::disc(), "one DISC"},
      {{RtValue::disc(), RtValue::disc(), RtValue::disc(), RtValue::disc()},
       RtValue::disc(),
       "all DISC -> DISC"},
      {{RtValue::illegal()}, RtValue::illegal(), "single ILLEGAL contributor"},
      {{RtValue::disc(), RtValue::illegal(), RtValue::disc()},
       RtValue::illegal(),
       "ILLEGAL among DISC -> ILLEGAL"},
      {{RtValue::of(3), RtValue::illegal()},
       RtValue::illegal(),
       "ILLEGAL dominates a value"},
      {{RtValue::of(1), RtValue::of(2)}, RtValue::illegal(), "two values conflict"},
      {{RtValue::of(5), RtValue::of(5)},
       RtValue::illegal(),
       "two equal values still conflict"},
      {{RtValue::of(1), RtValue::of(2), RtValue::of(3)},
       RtValue::illegal(),
       "three values conflict"},
      {{RtValue::of(0), RtValue::disc()},
       RtValue::of(0),
       "zero is a value, not DISC"},
      {{RtValue::disc(), RtValue::of(9), RtValue::disc()},
       RtValue::of(9),
       "exactly one non-DISC wins"},
  };
  for (const auto& row : kTable) {
    EXPECT_EQ(resolve_rt(row.contributions), row.resolved) << row.row;
  }
}

// Property: resolution is order-independent (commutative as a fold).
class ResolvePermutationTest : public ::testing::TestWithParam<int> {};

TEST_P(ResolvePermutationTest, OrderIndependent) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> kind(0, 3);
  std::vector<RtValue> values;
  const int n = 1 + GetParam() % 6;
  for (int i = 0; i < n; ++i) {
    switch (kind(rng)) {
      case 0:
        values.push_back(RtValue::disc());
        break;
      case 1:
        values.push_back(RtValue::illegal());
        break;
      default:
        values.push_back(RtValue::of(kind(rng)));
        break;
    }
  }
  const RtValue reference = resolve_rt(values);
  std::sort(values.begin(), values.end(),
            [](const RtValue& a, const RtValue& b) {
              if (a.kind() != b.kind()) {
                return a.kind() < b.kind();
              }
              return a.has_value() && b.has_value() && a.payload() < b.payload();
            });
  do {
    EXPECT_EQ(resolve_rt(values), reference);
  } while (std::next_permutation(
      values.begin(), values.end(), [](const RtValue& a, const RtValue& b) {
        if (a.kind() != b.kind()) {
          return a.kind() < b.kind();
        }
        return a.has_value() && b.has_value() && a.payload() < b.payload();
      }));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResolvePermutationTest, ::testing::Range(1, 25));

// Property: resolution is associative when applied hierarchically — the
// paper relies on this implicitly when ports and buses cascade.
class ResolveAssociativityTest : public ::testing::TestWithParam<int> {};

TEST_P(ResolveAssociativityTest, SplitResolutionMatchesFlat) {
  std::mt19937 rng(GetParam() * 7919);
  std::uniform_int_distribution<int> kind(0, 4);
  std::vector<RtValue> values;
  const int n = 2 + GetParam() % 5;
  for (int i = 0; i < n; ++i) {
    const int k = kind(rng);
    values.push_back(k == 0   ? RtValue::disc()
                     : k == 1 ? RtValue::illegal()
                              : RtValue::of(k));
  }
  const RtValue flat = resolve_rt(values);
  for (std::size_t split = 1; split < values.size(); ++split) {
    const std::vector<RtValue> left(values.begin(), values.begin() + split);
    const std::vector<RtValue> right(values.begin() + split, values.end());
    const std::vector<RtValue> combined = {resolve_rt(left), resolve_rt(right)};
    EXPECT_EQ(resolve_rt(combined), flat)
        << "hierarchical resolution must agree with flat resolution";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResolveAssociativityTest, ::testing::Range(1, 25));

}  // namespace
}  // namespace ctrtl::rtl
