#include "rtl/compiled_engine.h"

#include <gtest/gtest.h>

#include "rtl/model.h"
#include "rtl/modules.h"

namespace ctrtl::rtl {
namespace {

std::int64_t add_fn(std::span<const std::int64_t> v) { return v[0] + v[1]; }

/// The paper's figure 1 example in a chosen transfer mode.
struct Fig1 {
  RtModel model;
  Register& r1;
  Register& r2;
  RtSignal& b1;
  RtSignal& b2;
  Module& add;

  Fig1(std::int64_t a, std::int64_t b, TransferMode mode)
      : model(7, mode),
        r1(model.add_register("R1", RtValue::of(a))),
        r2(model.add_register("R2", RtValue::of(b))),
        b1(model.add_bus("B1")),
        b2(model.add_bus("B2")),
        add(model.add_module<FixedFunctionModule>("ADD", 2u, 1u, add_fn)) {
    model.add_transfer(5, Phase::kRa, r1.out(), b1);
    model.add_transfer(5, Phase::kRb, b1, add.input(0));
    model.add_transfer(5, Phase::kRa, r2.out(), b2);
    model.add_transfer(5, Phase::kRb, b2, add.input(1));
    model.add_transfer(6, Phase::kWa, add.out(), b1);
    model.add_transfer(6, Phase::kWb, b1, r1.in());
  }
};

TEST(CompiledEngine, Figure1ComputesR1PlusR2) {
  Fig1 fig(30, 12, TransferMode::kCompiled);
  const RunResult result = fig.model.run();
  EXPECT_EQ(fig.r1.value(), RtValue::of(42));
  EXPECT_EQ(fig.r2.value(), RtValue::of(12));
  EXPECT_TRUE(result.conflict_free());
}

TEST(CompiledEngine, Figure1StatsMatchEventEngine) {
  Fig1 compiled(3, 4, TransferMode::kCompiled);
  Fig1 event(3, 4, TransferMode::kProcessPerTransfer);
  const RunResult cr = compiled.model.run();
  const RunResult er = event.model.run();
  EXPECT_EQ(cr.cycles, er.cycles);
  EXPECT_EQ(cr.stats.delta_cycles, er.stats.delta_cycles);
  EXPECT_EQ(cr.stats.events, er.stats.events);
  EXPECT_EQ(cr.stats.updates, er.stats.updates);
  EXPECT_EQ(cr.stats.transactions, er.stats.transactions);
  EXPECT_EQ(compiled.r1.value(), event.r1.value());
  EXPECT_EQ(compiled.r2.value(), event.r2.value());
}

TEST(CompiledEngine, Figure1TakesExactly42DeltaCycles) {
  Fig1 fig(1, 2, TransferMode::kCompiled);
  const RunResult result = fig.model.run();
  EXPECT_EQ(result.stats.delta_cycles, 42u);  // CS_MAX * 6 = 7 * 6
  EXPECT_EQ(result.cycles, 42u);
}

TEST(CompiledEngine, ConflictDetectedAtExactStepAndPhase) {
  RtModel model(7, TransferMode::kCompiled);
  Register& r1 = model.add_register("R1", RtValue::of(1));
  Register& r2 = model.add_register("R2", RtValue::of(2));
  RtSignal& b1 = model.add_bus("B1");
  model.add_transfer(5, Phase::kRa, r1.out(), b1);
  model.add_transfer(5, Phase::kRa, r2.out(), b1);
  const RunResult result = model.run();
  ASSERT_EQ(result.conflicts.size(), 1u);
  EXPECT_EQ(result.conflicts[0], (Conflict{"B1", 5, Phase::kRb}));
}

TEST(CompiledEngine, ConflictOnModuleInputPort) {
  RtModel model(3, TransferMode::kCompiled);
  Register& r1 = model.add_register("R1", RtValue::of(1));
  Register& r2 = model.add_register("R2", RtValue::of(2));
  RtSignal& b1 = model.add_bus("B1");
  RtSignal& b2 = model.add_bus("B2");
  Module& add = model.add_module<FixedFunctionModule>("ADD", 2u, 1u, add_fn);
  model.add_transfer(1, Phase::kRa, r1.out(), b1);
  model.add_transfer(1, Phase::kRa, r2.out(), b2);
  model.add_transfer(1, Phase::kRb, b1, add.input(0));
  model.add_transfer(1, Phase::kRb, b2, add.input(0));
  const RunResult result = model.run();
  ASSERT_FALSE(result.conflicts.empty());
  EXPECT_EQ(result.conflicts[0], (Conflict{"ADD.in1", 1, Phase::kCm}));
}

TEST(CompiledEngine, DiscSourcesDoNotConflict) {
  RtModel model(2, TransferMode::kCompiled);
  Register& r1 = model.add_register("R1");  // never loaded -> DISC
  Register& r2 = model.add_register("R2");
  RtSignal& b1 = model.add_bus("B1");
  model.add_transfer(1, Phase::kRa, r1.out(), b1);
  model.add_transfer(1, Phase::kRa, r2.out(), b1);
  const RunResult result = model.run();
  EXPECT_TRUE(result.conflict_free());
}

TEST(CompiledEngine, InputsSettableBeforeRun) {
  RtModel model(2, TransferMode::kCompiled);
  RtSignal& x = model.add_input("x_in");
  Register& r = model.add_register("R");
  RtSignal& b = model.add_bus("B");
  Module& copy = model.add_module<CopyModule>("CP");
  model.add_transfer(1, Phase::kRa, x, b);
  model.add_transfer(1, Phase::kRb, b, copy.input(0));
  RtSignal& b2 = model.add_bus("B2");
  model.add_transfer(1, Phase::kWa, copy.out(), b2);
  model.add_transfer(1, Phase::kWb, b2, r.in());
  model.set_input("x_in", RtValue::of(77));
  model.run();
  EXPECT_EQ(r.value(), RtValue::of(77));
}

TEST(CompiledEngine, SetInputAfterRunRejected) {
  RtModel model(1, TransferMode::kCompiled);
  model.add_input("x_in");
  model.run();
  EXPECT_THROW(model.set_input("x_in", RtValue::of(1)), std::logic_error);
}

TEST(CompiledEngine, AddTransferAfterRunRejected) {
  RtModel model(2, TransferMode::kCompiled);
  Register& r = model.add_register("R");
  RtSignal& b = model.add_bus("B");
  model.run();
  EXPECT_THROW(model.add_transfer(1, Phase::kRa, r.out(), b), std::logic_error);
}

TEST(CompiledEngine, CrPhaseTransferRejected) {
  RtModel model(2, TransferMode::kCompiled);
  Register& r = model.add_register("R");
  RtSignal& b = model.add_bus("B");
  EXPECT_THROW(model.add_transfer(1, kPhaseHigh, r.out(), b),
               std::invalid_argument);
}

TEST(CompiledEngine, MultipleDriversOnUnresolvedSinkRejected) {
  // Two transfers into a register *output* port (unresolved) must fail at
  // engine build exactly like Signal::add_driver fails at elaboration.
  RtModel model(2, TransferMode::kCompiled);
  Register& r1 = model.add_register("R1");
  Register& r2 = model.add_register("R2");
  Register& r3 = model.add_register("R3");
  model.add_transfer(1, Phase::kRa, r1.out(), r3.out());
  model.add_transfer(2, Phase::kRa, r2.out(), r3.out());
  EXPECT_THROW(model.run(), std::logic_error);
}

TEST(CompiledEngine, RunStatsCoverOnlyThisRun) {
  Fig1 fig(1, 1, TransferMode::kCompiled);
  const RunResult first = fig.model.run();
  const RunResult second = fig.model.run();  // quiescent: nothing more happens
  EXPECT_EQ(first.stats.delta_cycles, 42u);
  EXPECT_EQ(second.stats.delta_cycles, 0u);
  EXPECT_EQ(second.cycles, 0u);
}

TEST(CompiledEngine, PartialRunsResumeWhereTheyStopped) {
  Fig1 compiled(9, 8, TransferMode::kCompiled);
  Fig1 event(9, 8, TransferMode::kProcessPerTransfer);
  std::uint64_t compiled_total = 0;
  std::uint64_t event_total = 0;
  for (int chunk = 0; chunk < 10; ++chunk) {
    compiled_total += compiled.model.run(5).cycles;
    event_total += event.model.run(5).cycles;
  }
  EXPECT_EQ(compiled_total, event_total);
  EXPECT_EQ(compiled.r1.value(), event.r1.value());
  EXPECT_EQ(compiled.r1.value(), RtValue::of(17));
}

TEST(CompiledEngine, TableStatsReflectLoweredDesign) {
  Fig1 fig(1, 1, TransferMode::kCompiled);
  fig.model.run();
  // 6 transfers -> 6 fire and 6 release actions over a 42-cycle wheel.
  // The engine is only reachable through the model; rebuild one directly to
  // inspect the tables.
  RtModel model(2, TransferMode::kCompiled);
  Register& r = model.add_register("R", RtValue::of(5));
  RtSignal& b = model.add_bus("B");
  model.add_transfer(1, Phase::kRa, r.out(), b);
  model.run();
  CompiledEngine engine(model.scheduler(), model.controller(),
                        model.compiled_transfers(), model.registers(),
                        model.modules(), {});
  const CompiledEngine::TableStats stats = engine.table_stats();
  EXPECT_EQ(stats.cycles, 2u * kPhasesPerStep + 1);  // wheel + trailing
  EXPECT_EQ(stats.resolved_sinks, 1u);
  EXPECT_EQ(stats.fire_actions, 1u);
  EXPECT_EQ(stats.release_actions, 1u);
  EXPECT_GT(stats.update_entries, 0u);
}

TEST(CompiledEngine, PreloadOnlyModelLatchesNothingButShowsPreloads) {
  RtModel model(1, TransferMode::kCompiled);
  Register& r = model.add_register("R", RtValue::of(9));
  const RunResult result = model.run();
  EXPECT_EQ(r.value(), RtValue::of(9));
  EXPECT_TRUE(result.conflict_free());
}

}  // namespace
}  // namespace ctrtl::rtl
