#include "rtl/phase.h"

#include <gtest/gtest.h>

namespace ctrtl::rtl {
namespace {

TEST(Phase, OrderMatchesPaperFigure2) {
  // type Phase is (ra, rb, cm, wa, wb, cr);
  EXPECT_EQ(phase_index(Phase::kRa), 0);
  EXPECT_EQ(phase_index(Phase::kRb), 1);
  EXPECT_EQ(phase_index(Phase::kCm), 2);
  EXPECT_EQ(phase_index(Phase::kWa), 3);
  EXPECT_EQ(phase_index(Phase::kWb), 4);
  EXPECT_EQ(phase_index(Phase::kCr), 5);
  EXPECT_EQ(kPhasesPerStep, 6);
}

TEST(Phase, LowAndHighAttributes) {
  EXPECT_EQ(kPhaseLow, Phase::kRa);   // Phase'Low = ra
  EXPECT_EQ(kPhaseHigh, Phase::kCr);  // Phase'High = cr
}

TEST(Phase, SuccWalksTheCycle) {
  EXPECT_EQ(succ(Phase::kRa), Phase::kRb);
  EXPECT_EQ(succ(Phase::kRb), Phase::kCm);
  EXPECT_EQ(succ(Phase::kCm), Phase::kWa);  // Phase'Succ(cM) = wa (paper comment)
  EXPECT_EQ(succ(Phase::kWa), Phase::kWb);
  EXPECT_EQ(succ(Phase::kWb), Phase::kCr);
}

TEST(Phase, SuccOfHighThrows) {
  EXPECT_THROW(succ(Phase::kCr), std::out_of_range);
}

TEST(Phase, PredInvertsSucc) {
  for (int i = 0; i < kPhasesPerStep - 1; ++i) {
    const Phase p = phase_from_index(i);
    EXPECT_EQ(pred(succ(p)), p);
  }
  EXPECT_THROW(pred(Phase::kRa), std::out_of_range);
}

TEST(Phase, Names) {
  EXPECT_EQ(phase_name(Phase::kRa), "ra");
  EXPECT_EQ(phase_name(Phase::kRb), "rb");
  EXPECT_EQ(phase_name(Phase::kCm), "cm");
  EXPECT_EQ(phase_name(Phase::kWa), "wa");
  EXPECT_EQ(phase_name(Phase::kWb), "wb");
  EXPECT_EQ(phase_name(Phase::kCr), "cr");
}

TEST(Phase, NameRoundTrip) {
  for (int i = 0; i < kPhasesPerStep; ++i) {
    const Phase p = phase_from_index(i);
    EXPECT_EQ(phase_from_name(phase_name(p)), p);
  }
}

TEST(Phase, FromNameRejectsUnknown) {
  EXPECT_THROW(phase_from_name("xx"), std::invalid_argument);
  EXPECT_THROW(phase_from_name(""), std::invalid_argument);
}

TEST(Phase, FromIndexRejectsOutOfRange) {
  EXPECT_THROW(phase_from_index(-1), std::out_of_range);
  EXPECT_THROW(phase_from_index(6), std::out_of_range);
}

}  // namespace
}  // namespace ctrtl::rtl
