#include "rtl/controller.h"

#include <gtest/gtest.h>

#include <vector>

namespace ctrtl::rtl {
namespace {

TEST(Controller, InitialState) {
  kernel::Scheduler sched;
  Controller ctl(sched, 3);
  EXPECT_EQ(ctl.cs().read(), 0u);       // CS: inout Natural := 0
  EXPECT_EQ(ctl.ph().read(), kPhaseHigh);  // PH: inout Phase := Phase'High
  EXPECT_EQ(ctl.cs_max(), 3u);
}

TEST(Controller, RunTakesExactlySixDeltasPerStep) {
  // Paper section 2.2: "The complete simulation takes CS_MAX * 6 delta
  // simulation cycles."
  for (const unsigned cs_max : {1u, 2u, 3u, 7u, 10u, 100u}) {
    kernel::Scheduler sched;
    Controller ctl(sched, cs_max);
    sched.run();
    EXPECT_EQ(sched.stats().delta_cycles, std::uint64_t{cs_max} * 6)
        << "cs_max = " << cs_max;
    EXPECT_EQ(sched.now().fs, 0u) << "no physical time may pass";
    EXPECT_TRUE(sched.quiescent());
  }
}

TEST(Controller, PhaseSequencePerDelta) {
  kernel::Scheduler sched;
  Controller ctl(sched, 2);
  std::vector<std::pair<unsigned, Phase>> trace;
  sched.initialize();
  while (sched.step()) {
    trace.emplace_back(ctl.cs().read(), ctl.ph().read());
  }
  const std::vector<std::pair<unsigned, Phase>> expected = {
      {1, Phase::kRa}, {1, Phase::kRb}, {1, Phase::kCm},
      {1, Phase::kWa}, {1, Phase::kWb}, {1, Phase::kCr},
      {2, Phase::kRa}, {2, Phase::kRb}, {2, Phase::kCm},
      {2, Phase::kWa}, {2, Phase::kWb}, {2, Phase::kCr},
  };
  EXPECT_EQ(trace, expected);
}

TEST(Controller, StopsAtCsMax) {
  kernel::Scheduler sched;
  Controller ctl(sched, 4);
  sched.run();
  EXPECT_EQ(ctl.cs().read(), 4u);
  EXPECT_EQ(ctl.ph().read(), Phase::kCr);
}

TEST(Controller, ExpectedDeltaCyclesHelper) {
  kernel::Scheduler sched;
  Controller ctl(sched, 9);
  EXPECT_EQ(ctl.expected_delta_cycles(), 54u);
}

TEST(Controller, LocateMapsDeltasToStepAndPhase) {
  EXPECT_EQ(Controller::locate(1), (std::pair<unsigned, Phase>{1, Phase::kRa}));
  EXPECT_EQ(Controller::locate(2), (std::pair<unsigned, Phase>{1, Phase::kRb}));
  EXPECT_EQ(Controller::locate(6), (std::pair<unsigned, Phase>{1, Phase::kCr}));
  EXPECT_EQ(Controller::locate(7), (std::pair<unsigned, Phase>{2, Phase::kRa}));
  EXPECT_EQ(Controller::locate(42), (std::pair<unsigned, Phase>{7, Phase::kCr}));
}

TEST(Controller, LocateRejectsInitializationOrdinal) {
  EXPECT_THROW(Controller::locate(0), std::out_of_range);
}

// Property: locate() inverts the live (cs, ph) observed at each delta.
class ControllerLocateProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ControllerLocateProperty, LocateAgreesWithLiveSignals) {
  kernel::Scheduler sched;
  Controller ctl(sched, GetParam());
  sched.initialize();
  std::uint64_t delta = 0;
  while (sched.step()) {
    ++delta;
    EXPECT_EQ(sched.now().delta, delta);
    const auto [step, phase] = Controller::locate(delta);
    EXPECT_EQ(ctl.cs().read(), step);
    EXPECT_EQ(ctl.ph().read(), phase);
  }
  EXPECT_EQ(delta, ctl.expected_delta_cycles());
}

INSTANTIATE_TEST_SUITE_P(CsMaxSweep, ControllerLocateProperty,
                         ::testing::Values(1u, 2u, 5u, 13u, 64u));

TEST(Controller, CsMaxZeroNeverLeavesInitialState) {
  kernel::Scheduler sched;
  Controller ctl(sched, 0);
  sched.run();
  EXPECT_EQ(sched.stats().delta_cycles, 0u);
  EXPECT_EQ(ctl.cs().read(), 0u);
}

}  // namespace
}  // namespace ctrtl::rtl
