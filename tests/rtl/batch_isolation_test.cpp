#include "rtl/batch_runner.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "transfer/build.h"
#include "transfer/schedule.h"

namespace ctrtl::rtl {
namespace {

using transfer::Design;
using transfer::ModuleKind;
using transfer::RegisterTransfer;

// R1 := R1 + R2 on a 2-step wheel: quiesces in 12 delta cycles.
Design quick_design() {
  Design d;
  d.name = "quick";
  d.cs_max = 2;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 1, "ADD", 2, "B1", "R1")};
  return d;
}

// Same computation on the paper's 7-step wheel: needs 42 delta cycles, so it
// trips any watchdog armed below that.
Design slow_design() {
  Design d = quick_design();
  d.name = "slow";
  d.cs_max = 7;
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

RtValue register_value(const InstanceResult& result, const std::string& name) {
  for (const auto& [reg, value] : result.registers) {
    if (reg == name) {
      return value;
    }
  }
  ADD_FAILURE() << "no register " << name;
  return RtValue::disc();
}

TEST(BatchIsolation, FailingInstancesDoNotStopTheBatch) {
  // Instance 3 throws at construction, instance 5 trips the watchdog; the
  // other six instances must complete normally, and the whole result must be
  // byte-stable across worker counts.
  const BatchRunner::ModelFactory factory = [](std::size_t instance) {
    if (instance == 3) {
      throw std::runtime_error("injected factory failure");
    }
    return transfer::build_model(instance == 5 ? slow_design() : quick_design());
  };

  std::vector<BatchRunResult> results;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    BatchRunner runner(factory,
                       {.workers = workers, .max_delta_cycles = 15});
    results.push_back(runner.run(8));
  }

  const BatchRunResult& batch = results[0];
  ASSERT_EQ(batch.instances.size(), 8u);
  EXPECT_EQ(batch.failure_count(), 2u);

  EXPECT_EQ(batch.instances[3].report.status, RunStatus::kError);
  ASSERT_EQ(batch.instances[3].report.diagnostics.size(), 1u);
  EXPECT_EQ(batch.instances[3].report.diagnostics[0].message,
            "injected factory failure");
  EXPECT_TRUE(batch.instances[3].registers.empty())
      << "no model was built, so there is nothing to snapshot";

  EXPECT_EQ(batch.instances[5].report.status, RunStatus::kWatchdogTripped);
  EXPECT_EQ(batch.instances[5].stats.delta_cycles, 15u);
  // Partial-but-valid state: the slow design writes at step 6, far past the
  // trip point, so its registers still hold their initial values.
  EXPECT_EQ(register_value(batch.instances[5], "R1"), RtValue::of(30));

  for (const std::size_t i : {0u, 1u, 2u, 4u, 6u, 7u}) {
    EXPECT_TRUE(batch.instances[i].report.ok()) << "instance " << i;
    EXPECT_EQ(register_value(batch.instances[i], "R1"), RtValue::of(42))
        << "instance " << i;
  }

  for (std::size_t variant = 1; variant < results.size(); ++variant) {
    ASSERT_EQ(results[variant].instances.size(), batch.instances.size());
    for (std::size_t i = 0; i < batch.instances.size(); ++i) {
      EXPECT_EQ(results[variant].instances[i], batch.instances[i])
          << "worker variant " << variant << ", instance " << i;
    }
  }
}

TEST(BatchIsolation, LanePathIsolatesAThrowingInputProvider) {
  // The lane engine simulates a whole SoA block at once, so one poisoned
  // lane aborts its block mid-flight. The runner re-runs that block one lane
  // at a time: healthy lanes are byte-identical to an unpoisoned run (the
  // lane contract makes single-lane == multi-lane) and only the offender
  // reports the error.
  Design d = quick_design();
  d.inputs = {{"X"}};
  transfer::RegisterTransfer& t = d.transfers[0];
  t.operand_b->source = transfer::Endpoint::input("X");
  const auto design = transfer::CompiledDesign::compile(d);

  const BatchInputProvider provider = [](std::size_t instance)
      -> std::vector<std::pair<std::string, RtValue>> {
    if (instance == 7) {
      throw std::runtime_error("input provider failed for instance 7");
    }
    return {{"X", RtValue::of(static_cast<std::int64_t>(instance))}};
  };

  std::vector<BatchRunResult> results;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    BatchRunner runner(design,
                       {.workers = workers,
                        .engine = BatchEngineKind::kCompiledLanes,
                        .lane_block = 4},
                       provider);
    results.push_back(runner.run(10));
  }

  const BatchRunResult& batch = results[0];
  ASSERT_EQ(batch.instances.size(), 10u);
  EXPECT_EQ(batch.failure_count(), 1u);
  EXPECT_EQ(batch.instances[7].report.status, RunStatus::kError);
  ASSERT_EQ(batch.instances[7].report.diagnostics.size(), 1u);
  EXPECT_EQ(batch.instances[7].report.diagnostics[0].message,
            "input provider failed for instance 7");

  for (std::size_t i = 0; i < batch.instances.size(); ++i) {
    if (i == 7) {
      continue;
    }
    EXPECT_TRUE(batch.instances[i].report.ok()) << "instance " << i;
    EXPECT_EQ(register_value(batch.instances[i], "R1"),
              RtValue::of(30 + static_cast<std::int64_t>(i)))
        << "instance " << i;
  }
  // Lanes 4-6 shared the poisoned block; their isolated re-runs must equal
  // the corresponding instances of an unpoisoned reference batch.
  BatchRunner reference_runner(
      design,
      {.workers = 1,
       .engine = BatchEngineKind::kCompiledLanes,
       .lane_block = 4},
      [](std::size_t instance) -> std::vector<std::pair<std::string, RtValue>> {
        return {{"X", RtValue::of(static_cast<std::int64_t>(instance))}};
      });
  const BatchRunResult reference = reference_runner.run(10);
  for (const std::size_t i : {4u, 5u, 6u}) {
    EXPECT_EQ(batch.instances[i], reference.instances[i]) << "instance " << i;
  }

  for (std::size_t variant = 1; variant < results.size(); ++variant) {
    ASSERT_EQ(results[variant].instances.size(), batch.instances.size());
    for (std::size_t i = 0; i < batch.instances.size(); ++i) {
      EXPECT_EQ(results[variant].instances[i], batch.instances[i])
          << "worker variant " << variant << ", instance " << i;
    }
  }
}

TEST(BatchIsolation, NullFactoryResultIsStillCallerMisuse) {
  // Isolation covers *instance* failures; a factory returning null violates
  // the factory contract itself and must keep throwing loudly.
  BatchRunner runner([](std::size_t) { return std::unique_ptr<RtModel>(); },
                     {.workers = 1});
  EXPECT_THROW((void)runner.run(1), std::invalid_argument);
}

}  // namespace
}  // namespace ctrtl::rtl
