// Incremental result streaming out of rtl::BatchRunner (the ctrtl_serve
// hook): every instance must be streamed exactly once, in ascending order
// within each emitted block, with contents byte-identical to the slots the
// final BatchRunResult holds — for both engines and any worker count, and
// on the isolation path (a poisoned lane block still streams).

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "rtl/batch_runner.h"
#include "transfer/design.h"
#include "transfer/schedule.h"
#include "transfer/tuple.h"

namespace ctrtl::rtl {
namespace {

transfer::Design small_design() {
  transfer::Design design;
  design.name = "stream";
  design.cs_max = 7;
  design.registers.push_back({"R1", 30});
  design.registers.push_back({"R2", 12});
  design.buses.push_back({"B1"});
  design.buses.push_back({"B2"});
  transfer::ModuleDecl add;
  add.name = "ADD";
  add.kind = transfer::ModuleKind::kAdd;
  design.modules.push_back(add);
  design.inputs.push_back({"x"});
  design.transfers.push_back(transfer::RegisterTransfer::full(
      "R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1"));
  return design;
}

/// Collects streamed blocks keyed by instance index and checks the
/// exactly-once/ascending-order invariants as they arrive.
struct Collector {
  std::map<std::size_t, InstanceResult> streamed;

  BatchResultSink sink() {
    return [this](std::size_t first, std::span<const InstanceResult> block) {
      ASSERT_FALSE(block.empty());
      for (std::size_t i = 0; i < block.size(); ++i) {
        const std::size_t instance = first + i;
        ASSERT_EQ(streamed.count(instance), 0u)
            << "instance " << instance << " streamed twice";
        streamed.emplace(instance, block[i]);
      }
    };
  }

  void expect_matches(const BatchRunResult& result) {
    ASSERT_EQ(streamed.size(), result.instances.size());
    for (std::size_t i = 0; i < result.instances.size(); ++i) {
      ASSERT_EQ(streamed.count(i), 1u);
      EXPECT_EQ(streamed.at(i), result.instances[i])
          << "streamed instance " << i << " differs from the batch result";
    }
  }
};

TEST(BatchStreamTest, LaneEngineStreamsEveryInstanceOnce) {
  const auto design = transfer::CompiledDesign::compile(small_design());
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    BatchRunner runner(design,
                       BatchRunOptions{.workers = workers,
                                       .engine = BatchEngineKind::kCompiledLanes,
                                       .lane_block = 4});
    Collector collector;
    const BatchRunResult result = runner.run(10, collector.sink());
    collector.expect_matches(result);
  }
}

TEST(BatchStreamTest, PerInstanceEngineStreamsEveryInstanceOnce) {
  const auto design = transfer::CompiledDesign::compile(small_design());
  BatchRunner runner(design, BatchRunOptions{.workers = 2});
  Collector collector;
  const BatchRunResult result = runner.run(7, collector.sink());
  collector.expect_matches(result);
}

TEST(BatchStreamTest, NullSinkEqualsPlainRun) {
  const auto design = transfer::CompiledDesign::compile(small_design());
  BatchRunner runner(design,
                     BatchRunOptions{.workers = 1,
                                     .engine = BatchEngineKind::kCompiledLanes});
  const BatchRunResult plain = runner.run(6);
  const BatchRunResult with_null = runner.run(6, nullptr);
  ASSERT_EQ(plain.instances.size(), with_null.instances.size());
  for (std::size_t i = 0; i < plain.instances.size(); ++i) {
    EXPECT_EQ(plain.instances[i], with_null.instances[i]);
  }
}

TEST(BatchStreamTest, IsolationPathStillStreamsPoisonedBlocks) {
  // Instance 2's input provider throws, poisoning its whole lane block;
  // the runner re-runs that block lane-by-lane — and must still stream
  // every instance exactly once, with the streamed slots equal to the
  // final result (offender included).
  const auto design = transfer::CompiledDesign::compile(small_design());
  BatchRunner runner(
      design,
      BatchRunOptions{.workers = 2,
                      .engine = BatchEngineKind::kCompiledLanes,
                      .lane_block = 4},
      [](std::size_t instance)
          -> std::vector<std::pair<std::string, RtValue>> {
        if (instance == 2) {
          throw std::runtime_error("input provider failure for instance 2");
        }
        return {{"x", RtValue::of(static_cast<std::int64_t>(instance))}};
      });
  Collector collector;
  const BatchRunResult result = runner.run(8, collector.sink());
  collector.expect_matches(result);
  EXPECT_EQ(result.failure_count(), 1u);
  EXPECT_EQ(result.instances[2].report.status, RunStatus::kError);
}

}  // namespace
}  // namespace ctrtl::rtl
