#include "rtl/model.h"

#include <gtest/gtest.h>

#include "rtl/modules.h"

namespace ctrtl::rtl {
namespace {

std::int64_t add_fn(std::span<const std::int64_t> v) { return v[0] + v[1]; }

/// Builds the paper's figure 1 example: (R1,B1,R2,B2,5,ADD,6,B1,R1),
/// CS_MAX = 7, R1 preloaded with `a`, R2 with `b`.
struct Fig1 {
  RtModel model;
  Register& r1;
  Register& r2;
  RtSignal& b1;
  RtSignal& b2;
  Module& add;

  Fig1(std::int64_t a, std::int64_t b)
      : model(7),
        r1(model.add_register("R1", RtValue::of(a))),
        r2(model.add_register("R2", RtValue::of(b))),
        b1(model.add_bus("B1")),
        b2(model.add_bus("B2")),
        add(model.add_module<FixedFunctionModule>("ADD", 2u, 1u, add_fn)) {
    model.add_transfer(5, Phase::kRa, r1.out(), b1);
    model.add_transfer(5, Phase::kRb, b1, add.input(0));
    model.add_transfer(5, Phase::kRa, r2.out(), b2);
    model.add_transfer(5, Phase::kRb, b2, add.input(1));
    model.add_transfer(6, Phase::kWa, add.out(), b1);
    model.add_transfer(6, Phase::kWb, b1, r1.in());
  }
};

TEST(RtModel, Figure1ComputesR1PlusR2) {
  Fig1 fig(30, 12);
  const RunResult result = fig.model.run();
  EXPECT_EQ(fig.r1.value(), RtValue::of(42));
  EXPECT_EQ(fig.r2.value(), RtValue::of(12));
  EXPECT_TRUE(result.conflict_free());
}

TEST(RtModel, Figure1TakesExactly42DeltaCycles) {
  Fig1 fig(1, 2);
  const RunResult result = fig.model.run();
  EXPECT_EQ(result.stats.delta_cycles, 42u);  // CS_MAX * 6 = 7 * 6
  EXPECT_EQ(fig.model.scheduler().now().fs, 0u) << "delta time only, no physical time";
}

TEST(RtModel, Figure1NegativePayloads) {
  Fig1 fig(-30, 12);
  fig.model.run();
  EXPECT_EQ(fig.r1.value(), RtValue::of(-18));
}

TEST(RtModel, ConflictDetectedAtExactStepAndPhase) {
  // Schedule R1 and R2 onto bus B1 in the same (5, ra): the resolution
  // function must yield ILLEGAL on B1, visible at (5, rb).
  RtModel model(7);
  Register& r1 = model.add_register("R1", RtValue::of(1));
  Register& r2 = model.add_register("R2", RtValue::of(2));
  RtSignal& b1 = model.add_bus("B1");
  model.add_transfer(5, Phase::kRa, r1.out(), b1);
  model.add_transfer(5, Phase::kRa, r2.out(), b1);
  const RunResult result = model.run();
  ASSERT_EQ(result.conflicts.size(), 1u);
  EXPECT_EQ(result.conflicts[0], (Conflict{"B1", 5, Phase::kRb}));
  EXPECT_EQ(to_string(result.conflicts[0]),
            "conflict on B1 at step 5, phase rb (driven at ra)");
}

TEST(RtModel, NoConflictWhenStepsDiffer) {
  RtModel model(7);
  Register& r1 = model.add_register("R1", RtValue::of(1));
  Register& r2 = model.add_register("R2", RtValue::of(2));
  RtSignal& b1 = model.add_bus("B1");
  model.add_transfer(4, Phase::kRa, r1.out(), b1);
  model.add_transfer(5, Phase::kRa, r2.out(), b1);
  const RunResult result = model.run();
  EXPECT_TRUE(result.conflict_free());
}

TEST(RtModel, ConflictOnModuleInputPort) {
  RtModel model(3);
  Register& r1 = model.add_register("R1", RtValue::of(1));
  Register& r2 = model.add_register("R2", RtValue::of(2));
  RtSignal& b1 = model.add_bus("B1");
  RtSignal& b2 = model.add_bus("B2");
  Module& add = model.add_module<FixedFunctionModule>("ADD", 2u, 1u, add_fn);
  model.add_transfer(1, Phase::kRa, r1.out(), b1);
  model.add_transfer(1, Phase::kRa, r2.out(), b2);
  // Both buses feed the same input port at (1, rb).
  model.add_transfer(1, Phase::kRb, b1, add.input(0));
  model.add_transfer(1, Phase::kRb, b2, add.input(0));
  const RunResult result = model.run();
  ASSERT_FALSE(result.conflicts.empty());
  EXPECT_EQ(result.conflicts[0], (Conflict{"ADD.in1", 1, Phase::kCm}));
}

TEST(RtModel, DiscSourcesDoNotConflict) {
  // Two transfers of DISC-valued sources onto one bus: resolution sees no
  // non-DISC contribution, so no conflict (the sink just stays DISC).
  RtModel model(2);
  Register& r1 = model.add_register("R1");  // never loaded -> DISC
  Register& r2 = model.add_register("R2");
  RtSignal& b1 = model.add_bus("B1");
  model.add_transfer(1, Phase::kRa, r1.out(), b1);
  model.add_transfer(1, Phase::kRa, r2.out(), b1);
  const RunResult result = model.run();
  EXPECT_TRUE(result.conflict_free());
}

TEST(RtModel, ConstantsAreReadOnlySources) {
  RtModel model(3);
  RtSignal& zero = model.add_constant("zero", 0);
  Register& r = model.add_register("R");
  RtSignal& b = model.add_bus("B");
  Module& copy = model.add_module<CopyModule>("CP");
  model.add_transfer(1, Phase::kRa, zero, b);
  model.add_transfer(1, Phase::kRb, b, copy.input(0));
  RtSignal& b2 = model.add_bus("B2");
  model.add_transfer(1, Phase::kWa, copy.out(), b2);
  model.add_transfer(1, Phase::kWb, b2, r.in());
  model.run();
  EXPECT_EQ(r.value(), RtValue::of(0));
}

TEST(RtModel, InputsSettableBeforeRun) {
  RtModel model(2);
  RtSignal& x = model.add_input("x_in");
  Register& r = model.add_register("R");
  RtSignal& b = model.add_bus("B");
  Module& copy = model.add_module<CopyModule>("CP");
  model.add_transfer(1, Phase::kRa, x, b);
  model.add_transfer(1, Phase::kRb, b, copy.input(0));
  RtSignal& b2 = model.add_bus("B2");
  model.add_transfer(1, Phase::kWa, copy.out(), b2);
  model.add_transfer(1, Phase::kWb, b2, r.in());
  model.set_input("x_in", RtValue::of(77));
  model.run();
  EXPECT_EQ(r.value(), RtValue::of(77));
}

TEST(RtModel, DuplicateNamesRejected) {
  RtModel model(1);
  model.add_bus("B");
  EXPECT_THROW(model.add_bus("B"), std::invalid_argument);
  model.add_register("R");
  EXPECT_THROW(model.add_register("R"), std::invalid_argument);
  model.add_constant("c", 1);
  EXPECT_THROW(model.add_constant("c", 2), std::invalid_argument);
  model.add_input("i");
  EXPECT_THROW(model.add_input("i"), std::invalid_argument);
}

TEST(RtModel, TransferStepValidation) {
  RtModel model(3);
  Register& r = model.add_register("R");
  RtSignal& b = model.add_bus("B");
  EXPECT_THROW(model.add_transfer(0, Phase::kRa, r.out(), b), std::out_of_range);
  EXPECT_THROW(model.add_transfer(4, Phase::kRa, r.out(), b), std::out_of_range);
  EXPECT_NO_THROW(model.add_transfer(3, Phase::kRa, r.out(), b));
}

TEST(RtModel, LookupByName) {
  RtModel model(1);
  model.add_register("R");
  model.add_bus("B");
  model.add_module<CopyModule>("CP");
  model.add_constant("c", 3);
  model.add_input("i");
  EXPECT_NE(model.find_register("R"), nullptr);
  EXPECT_NE(model.find_bus("B"), nullptr);
  EXPECT_NE(model.find_module("CP"), nullptr);
  EXPECT_NE(model.find_constant("c"), nullptr);
  EXPECT_NE(model.find_input("i"), nullptr);
  EXPECT_EQ(model.find_register("X"), nullptr);
  EXPECT_EQ(model.find_bus("X"), nullptr);
  EXPECT_EQ(model.find_module("X"), nullptr);
  EXPECT_EQ(model.find_constant("X"), nullptr);
  EXPECT_EQ(model.find_input("X"), nullptr);
}

TEST(RtModel, SetUnknownInputThrows) {
  RtModel model(1);
  EXPECT_THROW(model.set_input("nope", RtValue::of(1)), std::invalid_argument);
}

TEST(RtModel, AutoGeneratedTransferNames) {
  RtModel model(2);
  Register& r = model.add_register("R");
  RtSignal& b = model.add_bus("B");
  const TransferProcess* t = model.add_transfer(1, Phase::kRa, r.out(), b);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->name(), "R.out_B_1_ra");
}

TEST(RtModel, RunStatsCoverOnlyThisRun) {
  Fig1 fig(1, 1);
  const RunResult first = fig.model.run();
  const RunResult second = fig.model.run();  // quiescent: nothing more happens
  EXPECT_EQ(first.stats.delta_cycles, 42u);
  EXPECT_EQ(second.stats.delta_cycles, 0u);
}

// A value marching through a chain of registers, one hop per control step,
// using the paper's direct-link recipe: two buses plus a COPY module. The
// buses and the COPY are *shared* across all steps — legal because each
// step uses them exactly once.
class PipelineMarchTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PipelineMarchTest, ValueMarchesThroughRegisters) {
  const unsigned n = GetParam();
  RtModel model(n);
  std::vector<Register*> regs;
  regs.push_back(&model.add_register("R0", RtValue::of(123)));
  for (unsigned i = 1; i <= n; ++i) {
    regs.push_back(&model.add_register("R" + std::to_string(i)));
  }
  RtSignal& ba = model.add_bus("BA");
  RtSignal& bb = model.add_bus("BB");
  Module& copy = model.add_module<CopyModule>("CP");
  for (unsigned i = 0; i < n; ++i) {
    model.add_transfer(i + 1, Phase::kRa, regs[i]->out(), ba);
    model.add_transfer(i + 1, Phase::kRb, ba, copy.input(0));
    model.add_transfer(i + 1, Phase::kWa, copy.out(), bb);
    model.add_transfer(i + 1, Phase::kWb, bb, regs[i + 1]->in());
  }
  const RunResult result = model.run();
  EXPECT_TRUE(result.conflict_free());
  EXPECT_EQ(regs[n]->value(), RtValue::of(123));
  for (unsigned i = 0; i < n; ++i) {
    EXPECT_EQ(regs[i]->value(), RtValue::of(123)) << "copies, not moves";
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PipelineMarchTest, ::testing::Values(1u, 2u, 5u, 20u));

}  // namespace
}  // namespace ctrtl::rtl
