#include "common/fixed_point.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ctrtl::common {
namespace {

TEST(FixedPoint, DefaultIsZero) {
  EXPECT_EQ(Fixed{}.raw(), 0);
  EXPECT_DOUBLE_EQ(Fixed{}.to_double(), 0.0);
}

TEST(FixedPoint, FromIntRoundTrips) {
  EXPECT_EQ(Fixed::from_int(5).to_double(), 5.0);
  EXPECT_EQ(Fixed::from_int(-3).to_double(), -3.0);
  EXPECT_EQ(Fixed::from_int(0).raw(), 0);
}

TEST(FixedPoint, FromDoubleQuantizes) {
  const Fixed half = Fixed::from_double(0.5);
  EXPECT_EQ(half.raw(), Fixed::kOne / 2);
  EXPECT_DOUBLE_EQ(half.to_double(), 0.5);
}

TEST(FixedPoint, AdditionAndSubtraction) {
  const Fixed a = Fixed::from_double(1.25);
  const Fixed b = Fixed::from_double(2.5);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 3.75);
  EXPECT_DOUBLE_EQ((b - a).to_double(), 1.25);
  EXPECT_DOUBLE_EQ((-a).to_double(), -1.25);
}

TEST(FixedPoint, MultiplicationRounds) {
  const Fixed a = Fixed::from_double(1.5);
  const Fixed b = Fixed::from_double(2.0);
  EXPECT_DOUBLE_EQ((a * b).to_double(), 3.0);
  // Small values still multiply with <= 1 LSB error.
  const Fixed c = Fixed::from_double(0.001);
  const Fixed d = Fixed::from_double(0.002);
  EXPECT_NEAR((c * d).to_double(), 0.000002, 1.0 / Fixed::kOne);
}

TEST(FixedPoint, MultiplicationNegativeOperands) {
  const Fixed a = Fixed::from_double(-1.5);
  const Fixed b = Fixed::from_double(2.0);
  EXPECT_DOUBLE_EQ((a * b).to_double(), -3.0);
  EXPECT_DOUBLE_EQ((a * a).to_double(), 2.25);
}

TEST(FixedPoint, Division) {
  const Fixed a = Fixed::from_double(3.0);
  const Fixed b = Fixed::from_double(2.0);
  EXPECT_DOUBLE_EQ((a / b).to_double(), 1.5);
}

TEST(FixedPoint, DivisionByZeroThrows) {
  EXPECT_THROW(Fixed::from_int(1) / Fixed{}, std::domain_error);
}

TEST(FixedPoint, ArithmeticShiftRight) {
  EXPECT_DOUBLE_EQ(Fixed::from_int(8).asr(2).to_double(), 2.0);
  EXPECT_DOUBLE_EQ(Fixed::from_int(-8).asr(2).to_double(), -2.0);
}

TEST(FixedPoint, Comparison) {
  EXPECT_LT(Fixed::from_int(1), Fixed::from_int(2));
  EXPECT_EQ(Fixed::from_double(0.5), Fixed::from_raw(Fixed::kOne / 2));
}

TEST(FixedPoint, ToStringFormatsFourDigits) {
  EXPECT_EQ(to_string(Fixed::from_double(-1.25)), "-1.2500");
  EXPECT_EQ(to_string(Fixed::from_int(3)), "3.0000");
}

TEST(FixedPoint, AbsErrorLsb) {
  EXPECT_EQ(abs_error_lsb(Fixed::from_raw(10), Fixed::from_raw(7)), 3);
  EXPECT_EQ(abs_error_lsb(Fixed::from_raw(-10), Fixed::from_raw(7)), 17);
}

class FixedMulPropertyTest : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(FixedMulPropertyTest, MatchesDoubleWithinTolerance) {
  const auto [x, y] = GetParam();
  const Fixed fx = Fixed::from_double(x);
  const Fixed fy = Fixed::from_double(y);
  // Error budget: input quantization of each operand scales with the other
  // operand's magnitude, plus one LSB for the product rounding itself.
  const double tolerance = (std::abs(x) + std::abs(y) + 2.0) / Fixed::kOne;
  EXPECT_NEAR((fx * fy).to_double(), x * y, tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, FixedMulPropertyTest,
    ::testing::Values(std::pair{0.0, 0.0}, std::pair{1.0, 1.0},
                      std::pair{-1.0, 1.0}, std::pair{0.125, 8.0},
                      std::pair{3.14159, 2.71828}, std::pair{-0.5, -0.25},
                      std::pair{100.0, 0.01}, std::pair{-7.5, 3.25}));

}  // namespace
}  // namespace ctrtl::common
