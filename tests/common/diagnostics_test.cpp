#include "common/diagnostics.h"

#include <gtest/gtest.h>

namespace ctrtl::common {
namespace {

TEST(SourceLocation, UnknownByDefault) {
  const SourceLocation loc;
  EXPECT_FALSE(loc.is_known());
  EXPECT_EQ(to_string(loc), "<unknown>");
}

TEST(SourceLocation, FormatsLineColumn) {
  EXPECT_EQ(to_string(SourceLocation{3, 7}), "3:7");
}

TEST(DiagnosticBag, StartsEmpty) {
  const DiagnosticBag bag;
  EXPECT_TRUE(bag.empty());
  EXPECT_FALSE(bag.has_errors());
  EXPECT_EQ(bag.error_count(), 0u);
}

TEST(DiagnosticBag, CountsOnlyErrors) {
  DiagnosticBag bag;
  bag.note("fyi");
  bag.warning("careful");
  EXPECT_FALSE(bag.has_errors());
  bag.error("broken");
  bag.error("also broken");
  EXPECT_TRUE(bag.has_errors());
  EXPECT_EQ(bag.error_count(), 2u);
  EXPECT_EQ(bag.entries().size(), 4u);
}

TEST(DiagnosticBag, ToTextOnePerLine) {
  DiagnosticBag bag;
  bag.error("bad thing", SourceLocation{1, 2});
  bag.warning("odd thing");
  EXPECT_EQ(bag.to_text(), "error: bad thing at 1:2\nwarning: odd thing\n");
}

TEST(DiagnosticBag, ClearResets) {
  DiagnosticBag bag;
  bag.error("x");
  bag.clear();
  EXPECT_TRUE(bag.empty());
  EXPECT_FALSE(bag.has_errors());
}

TEST(Diagnostic, ToStringWithoutLocation) {
  EXPECT_EQ(to_string(Diagnostic{Severity::kNote, "hello", {}}), "note: hello");
}

}  // namespace
}  // namespace ctrtl::common
