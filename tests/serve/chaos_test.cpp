// Service-layer chaos harness: every fault here is injected at the
// boundaries production actually breaks at — connections severed
// mid-frame, clients that dribble or vanish, workers stalled past their
// deadline, snapshots torn by a kill — and the invariant is always the
// same: a structured error or a clean recovery, never a hang, a crash, or
// wrong bytes. scripts/chaos_smoke.sh drives the same scenarios through
// the real binary; this file pins them down deterministically in-process.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace ctrtl::serve {
namespace {

constexpr const char* kFig1 = R"(design fig1
cs_max 7
register R1 init 30
register R2 init 12
bus B1
bus B2
module ADD add
transfer R1 B1 R2 B2 5 ADD 6 B1 R1
)";

JobRequest fig1_job(const std::string& job_id, std::uint64_t instances = 1) {
  JobRequest request;
  request.job_id = job_id;
  request.instances = instances;
  request.design_text = kFig1;
  return request;
}

/// Collects one job's frames and lets the test block until the terminal
/// frame (DONE or ERROR) lands.
struct Collector {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Frame> frames;
  bool terminal = false;

  EventSink sink() {
    return [this](const Frame& frame) {
      std::unique_lock lock(mutex);
      frames.push_back(frame);
      if (frame.type == MessageType::kDone ||
          frame.type == MessageType::kError) {
        terminal = true;
        cv.notify_all();
      }
    };
  }

  void wait() {
    std::unique_lock lock(mutex);
    cv.wait(lock, [this] { return terminal; });
  }

  [[nodiscard]] const Frame& last() const { return frames.back(); }
};

/// A raw Unix-domain connection the tests can abuse in ways ServeClient
/// never would: partial writes, single-byte dribbles, abrupt closes.
class RawConnection {
 public:
  explicit RawConnection(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~RawConnection() { close(); }

  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  bool write_all(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n <= 0) {
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// One byte per write call: the worst legal client on the wire.
  bool dribble(std::string_view bytes) {
    for (const char byte : bytes) {
      if (!write_all(std::string_view(&byte, 1))) {
        return false;
      }
    }
    return true;
  }

  /// Reads until a complete frame decodes (or the peer closes / decoding
  /// poisons). Returns false on EOF or decoder failure.
  bool read_frame(Frame* frame) {
    char buffer[4096];
    for (;;) {
      if (decoder_.next(frame)) {
        return true;
      }
      if (decoder_.failed()) {
        return false;
      }
      const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
      if (n <= 0) {
        return false;
      }
      decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    }
  }

  /// Abrupt close: no BYE, the socket just disappears mid-conversation.
  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    const std::string stem = "ctrtl_chaos_" + std::to_string(::getpid()) +
                             "_" + std::to_string(counter++);
    socket_path_ = "/tmp/" + stem + ".sock";
    snapshot_path_ = testing::TempDir() + stem + ".snap";
    std::remove(snapshot_path_.c_str());
  }

  void TearDown() override {
    ::unlink(socket_path_.c_str());
    std::remove(snapshot_path_.c_str());
  }

  ServerOptions server_options() {
    ServerOptions out;
    out.socket_path = socket_path_;
    out.service.workers = 2;
    return out;
  }

  std::string socket_path_;
  std::string snapshot_path_;
};

// --- Wire-level chaos -------------------------------------------------------

TEST_F(ChaosTest, SeveredMidFrameConnectionLeavesServerHealthy) {
  ServeServer server(server_options());
  server.start();

  // Three abusive clients, severed at different points: mid-header,
  // mid-payload, and right after a complete SUBMIT (job admitted, then the
  // client vanishes). None may take the server down.
  const std::string hello =
      encode_frame(Frame{MessageType::kHello, encode_hello(HelloPayload{})});
  const std::string submit = encode_frame(
      Frame{MessageType::kSubmit, encode_submit(fig1_job("severed", 4))});
  {
    RawConnection mid_header(socket_path_);
    ASSERT_TRUE(mid_header.ok());
    ASSERT_TRUE(mid_header.write_all(hello.substr(0, 3)));
    mid_header.close();
  }
  {
    RawConnection mid_payload(socket_path_);
    ASSERT_TRUE(mid_payload.ok());
    ASSERT_TRUE(
        mid_payload.write_all((hello + submit).substr(0, hello.size() + 20)));
    mid_payload.close();
  }
  {
    RawConnection after_submit(socket_path_);
    ASSERT_TRUE(after_submit.ok());
    ASSERT_TRUE(after_submit.write_all(hello + submit));
    Frame frame;
    ASSERT_TRUE(after_submit.read_frame(&frame));  // HELLO reply
    after_submit.close();
  }

  // The server still serves: a well-behaved client completes a job and the
  // stats round-trip proves the control plane is intact.
  ServeClient client;
  client.connect(socket_path_);
  const JobOutcome outcome = client.run_job(fig1_job("survivor", 2));
  ASSERT_EQ(outcome.status, JobOutcome::Status::kDone);
  EXPECT_EQ(outcome.reports.size(), 2u);
  (void)client.stats();
  client.close();
  server.stop();
  server.wait();
}

TEST_F(ChaosTest, ByteDribblingClientDecodesIdenticallyAndCompletes) {
  ServeServer server(server_options());
  server.start();

  // The whole conversation arrives one byte per write(): the server's
  // incremental decoder must reassemble it exactly as if it came in one
  // burst, and the job must complete with the same report bytes a normal
  // client gets.
  RawConnection dribbler(socket_path_);
  ASSERT_TRUE(dribbler.ok());
  const std::string wire =
      encode_frame(Frame{MessageType::kHello, encode_hello(HelloPayload{})}) +
      encode_frame(
          Frame{MessageType::kSubmit, encode_submit(fig1_job("dribble", 2))});
  ASSERT_TRUE(dribbler.dribble(wire));

  std::vector<ReportPayload> dribble_reports;
  DonePayload done;
  bool got_done = false;
  Frame frame;
  std::string error;
  while (dribbler.read_frame(&frame)) {
    if (frame.type == MessageType::kReport) {
      ReportPayload report;
      ASSERT_TRUE(parse_report(frame.payload, &report, &error)) << error;
      dribble_reports.push_back(std::move(report));
    } else if (frame.type == MessageType::kDone) {
      ASSERT_TRUE(parse_done(frame.payload, &done, &error)) << error;
      got_done = true;
      break;
    } else {
      ASSERT_TRUE(frame.type == MessageType::kHello ||
                  frame.type == MessageType::kAccepted)
          << "unexpected frame type " << to_string(frame.type);
    }
  }
  ASSERT_TRUE(got_done) << "dribbled SUBMIT must still reach DONE";
  ASSERT_EQ(dribble_reports.size(), 2u);

  // Same design through a normal client: byte-identical rendered results.
  ServeClient client;
  client.connect(socket_path_);
  const JobOutcome reference = client.run_job(fig1_job("reference", 2));
  ASSERT_EQ(reference.status, JobOutcome::Status::kDone);
  ASSERT_EQ(reference.reports.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(render_design_style(dribble_reports[i]),
              render_design_style(reference.reports[i]));
  }
  client.close();
  server.stop();
  server.wait();
}

TEST_F(ChaosTest, DeadServerReadTimesOutAsStructuredClientError) {
  // A listener that accepts connections and then never says a word — the
  // shape of a wedged or half-dead server. The client's read timeout must
  // turn the would-be infinite hang into a structured kTimeout error.
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);

  ServeClient client;
  client.set_read_timeout_ms(100);
  try {
    client.connect(socket_path_);
    FAIL() << "connect must time out waiting for the HELLO reply";
  } catch (const ClientError& error) {
    EXPECT_EQ(error.kind(), ClientError::Kind::kTimeout);
    EXPECT_NE(std::string(error.what()).find("timed out"), std::string::npos);
  }
  ::close(listen_fd);
}

// --- Deadline and cancellation chaos ---------------------------------------

TEST_F(ChaosTest, WorkerStalledPastDeadlineEndsInEDeadline) {
  // The worker picks the job up and then stalls (GC pause, overloaded box,
  // debugger — pick your production story) past the job's budget. The
  // pre-run deadline check must fire: E-DEADLINE, no reports, no hang.
  ServerOptions options = server_options();
  options.service.workers = 1;
  options.service.on_job_start = [](const std::string& job_id) {
    if (job_id == "stalled") {
      // The budget is measured from admission; sleeping well past it on
      // the worker thread guarantees expiry regardless of queue latency.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  };
  ServeServer server(options);
  server.start();

  ServeClient client;
  client.connect(socket_path_);
  JobRequest stalled = fig1_job("stalled", 8);
  stalled.deadline_ms = 10;
  const JobOutcome outcome = client.run_job(stalled);
  ASSERT_EQ(outcome.status, JobOutcome::Status::kError);
  EXPECT_EQ(outcome.error.code, ErrorCode::kDeadline);
  EXPECT_TRUE(outcome.reports.empty());
  ASSERT_FALSE(outcome.error.diagnostics.empty());
  EXPECT_NE(outcome.error.diagnostics[0].find("expired"), std::string::npos);

  const StatsPayload stats = client.stats();
  EXPECT_EQ(stats.jobs_deadline_expired, 1u);
  EXPECT_EQ(stats.jobs_failed, 1u);
  client.close();
  server.stop();
  server.wait();
}

TEST_F(ChaosTest, DeadlineExpiryMidJobKeepsStreamedReportsValid) {
  // A big job with a tiny budget. Whether the deadline burns out while
  // queued or mid-run, the contract is the same: E-DEADLINE naming the
  // budget, strictly fewer reports than instances, and every report that
  // DID stream carries the same bytes an unhurried run produces.
  ServeServer server(server_options());
  server.start();

  ServeClient client;
  client.connect(socket_path_);
  const JobOutcome reference = client.run_job(fig1_job("reference", 1));
  ASSERT_EQ(reference.status, JobOutcome::Status::kDone);
  const std::string expected = render_design_style(reference.reports[0]);

  JobRequest doomed = fig1_job("doomed", 16384);
  doomed.deadline_ms = 5;
  const JobOutcome outcome = client.run_job(doomed);
  ASSERT_EQ(outcome.status, JobOutcome::Status::kError);
  EXPECT_EQ(outcome.error.code, ErrorCode::kDeadline);
  ASSERT_FALSE(outcome.error.diagnostics.empty());
  EXPECT_NE(outcome.error.diagnostics[0].find("deadline of 5 ms expired"),
            std::string::npos);
  EXPECT_LT(outcome.reports.size(), 16384u)
      << "an expired job must not run to completion";
  for (const ReportPayload& report : outcome.reports) {
    ASSERT_EQ(render_design_style(report), expected)
        << "truncation must never corrupt already-streamed results";
  }

  const StatsPayload stats = client.stats();
  EXPECT_EQ(stats.jobs_deadline_expired, 1u);
  client.close();
  server.stop();
  server.wait();
}

TEST_F(ChaosTest, AbruptDisconnectCancelsTheVanishedClientsJob) {
  // A client submits a job and then its connection dies without a BYE.
  // The server must cancel the orphaned work instead of running it to
  // completion for nobody. Sequencing: one worker, parked on a blocker
  // job, so the doomed job is still queued when its client vanishes.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool parked = false;
  bool release = false;

  ServerOptions options = server_options();
  options.service.workers = 1;
  options.service.on_job_start = [&](const std::string& job_id) {
    if (job_id != "blocker") {
      return;
    }
    std::unique_lock lock(gate_mutex);
    parked = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return release; });
  };
  ServeServer server(options);
  server.start();

  // The blocker occupies the only worker from a background thread.
  std::thread blocker_thread([&] {
    ServeClient blocker;
    blocker.connect(socket_path_);
    const JobOutcome outcome = blocker.run_job(fig1_job("blocker"));
    EXPECT_EQ(outcome.status, JobOutcome::Status::kDone);
    blocker.close();
  });
  {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return parked; });
  }

  // The doomed client: submit, see ACCEPTED, vanish.
  {
    RawConnection doomed(socket_path_);
    ASSERT_TRUE(doomed.ok());
    const std::string wire =
        encode_frame(
            Frame{MessageType::kHello, encode_hello(HelloPayload{})}) +
        encode_frame(
            Frame{MessageType::kSubmit, encode_submit(fig1_job("doomed", 64))});
    ASSERT_TRUE(doomed.write_all(wire));
    Frame frame;
    ASSERT_TRUE(doomed.read_frame(&frame));  // HELLO reply
    ASSERT_TRUE(doomed.read_frame(&frame));
    ASSERT_EQ(frame.type, MessageType::kAccepted);
    doomed.close();
  }
  // The reader thread is blocked in read(); the close above wakes it with
  // EOF and it cancels the connection's jobs. Give it a moment before the
  // worker is released — the stats poll below is the real synchronization.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    std::unique_lock lock(gate_mutex);
    release = true;
    gate_cv.notify_all();
  }
  blocker_thread.join();

  // The orphaned job must end in E-CANCELLED (observable in stats), and
  // the server must keep serving.
  ServeClient observer;
  observer.connect(socket_path_);
  StatsPayload stats;
  for (int i = 0; i < 500; ++i) {
    stats = observer.stats();
    if (stats.jobs_cancelled >= 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(stats.jobs_cancelled, 1u)
      << "the vanished client's job must be cancelled, not completed";
  const JobOutcome after = observer.run_job(fig1_job("after"));
  EXPECT_EQ(after.status, JobOutcome::Status::kDone);
  observer.close();
  server.stop();
  server.wait();
}

// --- Snapshot chaos: kill, truncate, corrupt, restart ----------------------

TEST_F(ChaosTest, KillAndRestartWarmStartsFromSnapshot) {
  // "Kill" here is the destructor — the journal is flushed at append time
  // (when the miss was compiled), not at shutdown, so the entry survives
  // any exit path. The restarted service must answer the same design with
  // a cache hit on its very first job.
  ServiceOptions options;
  options.workers = 1;
  options.snapshot_path = snapshot_path_;
  {
    SimulationService first(options);
    Collector cold;
    ASSERT_EQ(first.submit(fig1_job("cold"), cold.sink()).status,
              SubmitStatus::kAccepted);
    cold.wait();
    DonePayload done;
    std::string error;
    ASSERT_EQ(cold.last().type, MessageType::kDone);
    ASSERT_TRUE(parse_done(cold.last().payload, &done, &error)) << error;
    EXPECT_FALSE(done.cache_hit);
  }

  SimulationService restarted(options);
  StatsPayload stats = restarted.stats();
  EXPECT_EQ(stats.snapshot_records_loaded, 1u);
  EXPECT_EQ(stats.snapshot_records_skipped, 0u);

  Collector warm;
  ASSERT_EQ(restarted.submit(fig1_job("warm"), warm.sink()).status,
            SubmitStatus::kAccepted);
  warm.wait();
  DonePayload done;
  std::string error;
  ASSERT_EQ(warm.last().type, MessageType::kDone);
  ASSERT_TRUE(parse_done(warm.last().payload, &done, &error)) << error;
  EXPECT_TRUE(done.cache_hit)
      << "first job after restart must hit the snapshot-warmed cache";
  stats = restarted.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  // The restore itself compiled once through the cache (one miss at boot);
  // the point is that no *job* missed after the restart.
  EXPECT_EQ(stats.cache_misses, 1u);
}

TEST_F(ChaosTest, TruncatedAndCorruptSnapshotsBootCleanWithSkipCounter) {
  // Populate a snapshot with two designs, then maul it two different ways.
  // Every boot must come up serving, with the damage visible in the skip
  // counter — corruption degrades to a colder cache, never a dead service.
  ServiceOptions options;
  options.workers = 1;
  options.snapshot_path = snapshot_path_;
  {
    SimulationService writer(options);
    Collector a, b;
    ASSERT_EQ(writer.submit(fig1_job("a"), a.sink()).status,
              SubmitStatus::kAccepted);
    JobRequest faulted = fig1_job("b");
    faulted.has_fault_plan = true;
    faulted.fault_plan_text = "force-bus B1 = 99 @5:ra\n";
    ASSERT_EQ(writer.submit(faulted, b.sink()).status,
              SubmitStatus::kAccepted);
    a.wait();
    b.wait();
  }
  std::string full;
  {
    std::ifstream in(snapshot_path_, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(full.empty());

  // Chaos 1: a kill mid-append tore the second record.
  {
    std::ofstream out(snapshot_path_, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size() - 7));
  }
  {
    SimulationService survivor(options);
    const StatsPayload stats = survivor.stats();
    EXPECT_EQ(stats.snapshot_records_loaded, 1u);
    EXPECT_EQ(stats.snapshot_records_skipped, 1u);
    Collector check;
    ASSERT_EQ(survivor.submit(fig1_job("check"), check.sink()).status,
              SubmitStatus::kAccepted);
    check.wait();
    EXPECT_EQ(check.last().type, MessageType::kDone);
  }

  // Chaos 2: a flipped byte in the first record's body fails its checksum;
  // the second record is still salvaged. (The truncated-boot above may
  // have re-journaled nothing new — rewrite the pristine image first.)
  {
    std::ofstream out(snapshot_path_, std::ios::binary | std::ios::trunc);
    std::string mauled = full;
    mauled[full.find('\n') + 3] ^= 0x20;
    out.write(mauled.data(), static_cast<std::streamsize>(mauled.size()));
  }
  {
    SimulationService survivor(options);
    const StatsPayload stats = survivor.stats();
    EXPECT_EQ(stats.snapshot_records_loaded, 1u);
    EXPECT_EQ(stats.snapshot_records_skipped, 1u);
  }

  // Chaos 3: the snapshot is gone entirely (disk wiped). Clean cold boot.
  std::remove(snapshot_path_.c_str());
  {
    SimulationService survivor(options);
    const StatsPayload stats = survivor.stats();
    EXPECT_EQ(stats.snapshot_records_loaded, 0u);
    EXPECT_EQ(stats.snapshot_records_skipped, 0u);
  }
}

}  // namespace
}  // namespace ctrtl::serve
