// ServeServer + ServeClient over a real Unix-domain socket: the wire e2e.
// Covers the HELLO handshake, cold/warm submissions with the cache-hit
// proof over the wire, fault and watchdog jobs, protocol-error replies,
// slow-reader isolation (a stalled connection must not stall other jobs),
// and clean shutdown.

#include "serve/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "serve/client.h"

namespace ctrtl::serve {
namespace {

constexpr const char* kFig1 = R"(design fig1
cs_max 7
register R1 init 30
register R2 init 12
bus B1
bus B2
module ADD add
transfer R1 B1 R2 B2 5 ADD 6 B1 R1
)";

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Short path: sun_path is ~108 bytes; pid + test counter keep parallel
    // ctest invocations apart.
    static int counter = 0;
    socket_path_ = "/tmp/ctrtl_serve_test_" + std::to_string(::getpid()) +
                   "_" + std::to_string(counter++) + ".sock";
  }

  void TearDown() override { ::unlink(socket_path_.c_str()); }

  ServerOptions options() {
    ServerOptions out;
    out.socket_path = socket_path_;
    out.service.workers = 2;
    return out;
  }

  static JobRequest fig1_job(const std::string& job_id,
                             std::uint64_t instances = 1) {
    JobRequest request;
    request.job_id = job_id;
    request.instances = instances;
    request.design_text = kFig1;
    return request;
  }

  std::string socket_path_;
};

TEST_F(ServerTest, ColdThenWarmSubmitOverTheWire) {
  ServeServer server(options());
  server.start();

  ServeClient client;
  client.connect(socket_path_);

  const JobOutcome cold = client.run_job(fig1_job("cold", 3));
  ASSERT_EQ(cold.status, JobOutcome::Status::kDone);
  ASSERT_TRUE(cold.accepted.has_value());
  EXPECT_FALSE(cold.done.cache_hit);
  ASSERT_EQ(cold.reports.size(), 3u);

  const JobOutcome warm = client.run_job(fig1_job("warm", 3));
  ASSERT_EQ(warm.status, JobOutcome::Status::kDone);
  EXPECT_TRUE(warm.done.cache_hit) << "second wire submission must skip lowering";
  EXPECT_EQ(warm.done.cache_key, cold.done.cache_key);

  // Rendered results agree instance-for-instance, and R1 holds fig1's 42.
  auto rendered = [](const JobOutcome& outcome, std::uint64_t instance) {
    for (const ReportPayload& report : outcome.reports) {
      if (report.instance == instance) {
        return render_design_style(report);
      }
    }
    return std::string("<missing>");
  };
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rendered(cold, i), rendered(warm, i));
  }
  EXPECT_NE(rendered(cold, 0).find("  R1           42\n"), std::string::npos);

  const StatsPayload stats = client.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);

  client.close();
  server.stop();
  server.wait();
}

TEST_F(ServerTest, FaultAndWatchdogJobsOverTheWire) {
  ServeServer server(options());
  server.start();
  ServeClient client;
  client.connect(socket_path_);

  JobRequest faulted = fig1_job("faulted");
  faulted.has_fault_plan = true;
  faulted.fault_plan_text = "force-bus B1 = 99 @5:ra\n";
  const JobOutcome fault_outcome = client.run_job(faulted);
  ASSERT_EQ(fault_outcome.status, JobOutcome::Status::kDone);
  EXPECT_EQ(fault_outcome.done.conflicts, 4u);  // forced drive + propagation
  ASSERT_EQ(fault_outcome.reports.size(), 1u);
  ASSERT_EQ(fault_outcome.reports[0].conflicts.size(), 4u);
  EXPECT_EQ(fault_outcome.reports[0].conflicts[0],
            "conflict on B1 at step 5, phase rb (driven at ra)");

  JobRequest watchdog = fig1_job("wd");
  watchdog.max_delta_cycles = 10;
  const JobOutcome wd_outcome = client.run_job(watchdog);
  ASSERT_EQ(wd_outcome.status, JobOutcome::Status::kDone)
      << "a watchdog trip is a structured per-instance result, not a job error";
  EXPECT_EQ(wd_outcome.done.failures, 1u);
  ASSERT_EQ(wd_outcome.reports.size(), 1u);
  EXPECT_EQ(wd_outcome.reports[0].status, "watchdog-tripped");

  JobRequest bad = fig1_job("bad");
  bad.design_text = "garbage\n";
  const JobOutcome bad_outcome = client.run_job(bad);
  ASSERT_EQ(bad_outcome.status, JobOutcome::Status::kError);
  EXPECT_EQ(bad_outcome.error.code, ErrorCode::kParse);
  EXPECT_EQ(bad_outcome.error.job_id, "bad");

  client.close();
  server.stop();
  server.wait();
}

TEST_F(ServerTest, SlowReaderDoesNotStallOtherJobs) {
  ServeServer server(options());
  server.start();

  // The slow reader: submits a job over a raw socket and never reads a
  // byte. Its frames pile up in the connection outbox (and the socket
  // buffer), not in a service worker.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  const int slow_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(slow_fd, 0);
  ASSERT_EQ(::connect(slow_fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string wire =
      encode_frame(Frame{MessageType::kHello, encode_hello(HelloPayload{})}) +
      encode_frame(
          Frame{MessageType::kSubmit, encode_submit(fig1_job("slow", 64))});
  ASSERT_EQ(::write(slow_fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));

  // Meanwhile a well-behaved client's jobs complete normally.
  ServeClient client;
  client.connect(socket_path_);
  for (int i = 0; i < 3; ++i) {
    const JobOutcome outcome =
        client.run_job(fig1_job("fast" + std::to_string(i), 8));
    ASSERT_EQ(outcome.status, JobOutcome::Status::kDone)
        << "job " << i << " stalled behind the slow reader";
    EXPECT_EQ(outcome.reports.size(), 8u);
  }
  const StatsPayload stats = client.stats();
  EXPECT_GE(stats.jobs_completed, 3u);

  ::close(slow_fd);
  client.close();
  server.stop();
  server.wait();
}

TEST_F(ServerTest, MalformedBytesGetAStructuredProtocolError) {
  ServeServer server(options());
  server.start();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::write(fd, garbage, sizeof(garbage) - 1), 0);

  // The server must answer with one ERROR frame (E-PROTOCOL) and close.
  FrameDecoder decoder;
  Frame frame;
  char buffer[4096];
  bool got_frame = false;
  for (;;) {
    if (decoder.next(&frame)) {
      got_frame = true;
      break;
    }
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      break;
    }
    decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
  ASSERT_TRUE(got_frame);
  EXPECT_EQ(frame.type, MessageType::kError);
  ErrorPayload error_payload;
  std::string error;
  ASSERT_TRUE(parse_error(frame.payload, &error_payload, &error)) << error;
  EXPECT_EQ(error_payload.code, ErrorCode::kProtocol);
  ::close(fd);

  server.stop();
  server.wait();
}

TEST_F(ServerTest, ShutdownFrameStopsTheServerCleanly) {
  ServeServer server(options());
  server.start();

  ServeClient client;
  client.connect(socket_path_);
  ASSERT_EQ(client.run_job(fig1_job("pre")).status, JobOutcome::Status::kDone);
  client.shutdown_server();
  server.wait();  // returns because the SHUTDOWN frame stopped the server

  // The socket is gone: a fresh connect must fail.
  ServeClient late;
  EXPECT_THROW(late.connect(socket_path_), std::runtime_error);
}

}  // namespace
}  // namespace ctrtl::serve
