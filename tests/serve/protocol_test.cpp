// The ctrtl-serve/2 grammar, byte-for-byte: frame encode/decode round
// trips, incremental and poisoned decoding (including randomized chunking
// and a single-byte corruption sweep), and every payload codec pair.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <random>

#include "rtl/batch_runner.h"

namespace ctrtl::serve {
namespace {

TEST(FrameTest, EncodesHeaderThenPayload) {
  const Frame frame{MessageType::kSubmit, "job j\n"};
  EXPECT_EQ(encode_frame(frame), "CTRTL/1 SUBMIT 6\njob j\n");
  EXPECT_EQ(encode_frame(Frame{MessageType::kBye, ""}), "CTRTL/1 BYE 0\n");
}

TEST(FrameTest, DecoderRoundTripsAcrossArbitrarySplits) {
  const std::string wire = encode_frame(Frame{MessageType::kHello, "proto x\n"}) +
                           encode_frame(Frame{MessageType::kBye, ""});
  // Feed one byte at a time: framing must not depend on read boundaries.
  FrameDecoder decoder;
  std::vector<Frame> frames;
  Frame frame;
  for (const char c : wire) {
    decoder.feed(std::string_view(&c, 1));
    while (decoder.next(&frame)) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], (Frame{MessageType::kHello, "proto x\n"}));
  EXPECT_EQ(frames[1], (Frame{MessageType::kBye, ""}));
  EXPECT_FALSE(decoder.failed());
}

TEST(FrameTest, DecoderPoisonsOnBadMagic) {
  FrameDecoder decoder;
  decoder.feed("HTTP/1.1 GET 0\n");
  Frame frame;
  EXPECT_FALSE(decoder.next(&frame));
  EXPECT_TRUE(decoder.failed());
  // Poisoned permanently: even a well-formed follow-up frame is refused.
  decoder.feed(encode_frame(Frame{MessageType::kBye, ""}));
  EXPECT_FALSE(decoder.next(&frame));
}

TEST(FrameTest, DecoderPoisonsOnOversizedLength) {
  FrameDecoder decoder(/*max_payload=*/64);
  decoder.feed("CTRTL/1 SUBMIT 65\n");
  Frame frame;
  EXPECT_FALSE(decoder.next(&frame));
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("exceeds limit"), std::string::npos);
}

TEST(FrameTest, DecoderPoisonsOnUnknownType) {
  FrameDecoder decoder;
  decoder.feed("CTRTL/1 GOSSIP 0\n");
  Frame frame;
  EXPECT_FALSE(decoder.next(&frame));
  EXPECT_TRUE(decoder.failed());
}

TEST(FrameTest, RandomizedChunkingDecodesIdentically) {
  // The decode result is a pure function of the byte stream, never of the
  // read boundaries a socket happened to deliver it in. Replay the same
  // wire image under many random chunkings and demand identical frames.
  const std::string wire =
      encode_frame(Frame{MessageType::kSubmit, "design 5\nABCDE\n"}) +
      encode_frame(Frame{MessageType::kReport, "job j\ninstance 0\n"}) +
      encode_frame(Frame{MessageType::kDone, ""}) +
      encode_frame(Frame{MessageType::kBye, ""});

  const auto decode_all = [&](FrameDecoder& decoder,
                              std::vector<Frame>* frames) {
    Frame frame;
    while (decoder.next(&frame)) {
      frames->push_back(frame);
    }
  };
  std::vector<Frame> reference;
  {
    FrameDecoder decoder;
    decoder.feed(wire);
    decode_all(decoder, &reference);
    ASSERT_EQ(reference.size(), 4u);
    ASSERT_FALSE(decoder.failed());
  }

  std::mt19937 rng(20260807);  // fixed seed: failures must replay
  std::uniform_int_distribution<std::size_t> chunk_size(1, 9);
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder decoder;
    std::vector<Frame> frames;
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t len = std::min(chunk_size(rng), wire.size() - pos);
      decoder.feed(std::string_view(wire).substr(pos, len));
      decode_all(decoder, &frames);
      pos += len;
    }
    ASSERT_EQ(frames, reference) << "trial " << trial;
    ASSERT_FALSE(decoder.failed());
  }
}

TEST(FrameTest, SingleByteHeaderCorruptionNeverYieldsTheOriginalFrame) {
  // Sweep every header byte with two flip patterns. The decoder owes
  // exactly this much: it never crashes or loops, corrupted magic poisons
  // it permanently (a later pristine frame is still refused), and whatever
  // a non-poisoning corruption decodes to is observably NOT the frame that
  // was sent — corruption may change the message, never impersonate it.
  const Frame original{MessageType::kSubmit, "job j\n"};
  const std::string wire = encode_frame(original);
  const std::string follow = encode_frame(Frame{MessageType::kBye, ""});
  const std::size_t header_end = wire.find('\n');
  ASSERT_NE(header_end, std::string::npos);

  for (std::size_t pos = 0; pos <= header_end; ++pos) {
    for (const int flip : {0x01, 0x80}) {
      std::string mauled = wire;
      mauled[pos] = static_cast<char>(mauled[pos] ^ flip);
      FrameDecoder decoder;
      decoder.feed(mauled);
      decoder.feed(follow);
      std::vector<Frame> frames;
      Frame frame;
      while (decoder.next(&frame)) {
        frames.push_back(frame);
      }
      if (pos < kProtocolMagic.size()) {
        EXPECT_TRUE(decoder.failed())
            << "corrupt magic at byte " << pos << " must poison";
        EXPECT_TRUE(frames.empty());
      }
      for (const Frame& decoded : frames) {
        EXPECT_NE(decoded, original)
            << "byte " << pos << " flip " << flip
            << " decoded back to the uncorrupted frame";
      }
    }
  }
}

TEST(FrameTest, MessageTypeTokensRoundTrip) {
  for (const MessageType type :
       {MessageType::kHello, MessageType::kSubmit, MessageType::kAccepted,
        MessageType::kReport, MessageType::kDone, MessageType::kError,
        MessageType::kBusy, MessageType::kStats, MessageType::kShutdown,
        MessageType::kBye}) {
    MessageType parsed;
    ASSERT_TRUE(parse_message_type(to_string(type), &parsed));
    EXPECT_EQ(parsed, type);
  }
  MessageType parsed;
  EXPECT_FALSE(parse_message_type("NOPE", &parsed));
}

TEST(SubmitTest, RoundTripsFullRequest) {
  JobRequest request;
  request.job_id = "batch-7";
  request.instances = 32;
  request.max_cycles = 100;
  request.max_delta_cycles = 500;
  request.inputs = {{"x", 5}, {"y", -3}};
  request.design_text = "design d\ncs_max 1\n";
  request.has_fault_plan = true;
  request.fault_plan_text = "force-bus B1 = 9 @1:ra\n";
  request.deadline_ms = 2500;
  request.low_priority = true;

  JobRequest parsed;
  std::string error;
  ASSERT_TRUE(parse_submit(encode_submit(request), &parsed, &error)) << error;
  EXPECT_EQ(parsed, request);
}

TEST(SubmitTest, DeadlineAndPriorityAreOptionalWithV1Defaults) {
  // A ctrtl-serve/1 SUBMIT carries neither key; it must still parse, with
  // "no deadline, normal priority" — the /2 bump widens the grammar
  // without invalidating a single /1 payload.
  JobRequest plain;
  plain.design_text = "d";
  const std::string payload = encode_submit(plain);
  EXPECT_EQ(payload.find("deadline-ms"), std::string::npos);
  EXPECT_EQ(payload.find("priority"), std::string::npos);

  JobRequest parsed;
  std::string error;
  ASSERT_TRUE(parse_submit(payload, &parsed, &error)) << error;
  EXPECT_EQ(parsed.deadline_ms, 0u);
  EXPECT_FALSE(parsed.low_priority);

  // Explicit normal priority is accepted; zero/garbage values are not.
  ASSERT_TRUE(parse_submit("job j\ndesign 1\nX\npriority normal\n", &parsed,
                           &error))
      << error;
  EXPECT_FALSE(parsed.low_priority);
  EXPECT_FALSE(
      parse_submit("job j\ndesign 1\nX\ndeadline-ms 0\n", &parsed, &error));
  EXPECT_FALSE(
      parse_submit("job j\ndesign 1\nX\npriority urgent\n", &parsed, &error));
}

TEST(SubmitTest, OmitsUnboundedLimits) {
  JobRequest request;
  request.design_text = "d";
  const std::string payload = encode_submit(request);
  EXPECT_EQ(payload.find("max-cycles"), std::string::npos);
  EXPECT_EQ(payload.find("max-delta-cycles"), std::string::npos);

  JobRequest parsed;
  std::string error;
  ASSERT_TRUE(parse_submit(payload, &parsed, &error)) << error;
  EXPECT_EQ(parsed.max_cycles, kernel::Scheduler::kNoLimit);
  EXPECT_EQ(parsed.max_delta_cycles, kernel::Scheduler::kNoLimit);
}

TEST(SubmitTest, BlobsCarryArbitraryBytes) {
  // Design text containing newlines, key-lookalikes, and the blob
  // terminator itself must survive: framing is byte-counted, not quoted.
  JobRequest request;
  request.design_text = "line1\ndesign 99\nfault-plan 3\n\n";
  JobRequest parsed;
  std::string error;
  ASSERT_TRUE(parse_submit(encode_submit(request), &parsed, &error)) << error;
  EXPECT_EQ(parsed.design_text, request.design_text);
}

TEST(SubmitTest, RejectsMalformedPayloads) {
  JobRequest parsed;
  std::string error;
  EXPECT_FALSE(parse_submit("job j\n", &parsed, &error));  // no design
  EXPECT_NE(error.find("design"), std::string::npos);
  EXPECT_FALSE(parse_submit("design 100\nshort\n", &parsed, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos);
  EXPECT_FALSE(parse_submit("design 1\nX\njob bad id\n", &parsed, &error));
  EXPECT_FALSE(parse_submit("design 1\nX\ninstances 0\n", &parsed, &error));
  EXPECT_FALSE(parse_submit("design 1\nX\nwhatever 3\n", &parsed, &error));
}

TEST(JobIdTest, EnforcesLexicalRule) {
  EXPECT_TRUE(valid_job_id("job-7_a.b"));
  EXPECT_FALSE(valid_job_id(""));
  EXPECT_FALSE(valid_job_id("has space"));
  EXPECT_FALSE(valid_job_id("new\nline"));
  EXPECT_FALSE(valid_job_id(std::string(257, 'x')));
}

TEST(ReportTest, EncodesInstanceResultAndParsesBack) {
  rtl::InstanceResult result;
  result.cycles = 7;
  result.stats.delta_cycles = 44;
  result.stats.events = 120;
  result.stats.updates = 60;
  result.stats.transactions = 80;
  result.conflicts.push_back(rtl::Conflict{"B1", 5, rtl::Phase::kRb});
  result.registers = {{"R1", rtl::RtValue::of(42)},
                      {"R2", rtl::RtValue::disc()}};

  const std::string payload = encode_report("j", 3, result);
  ReportPayload parsed;
  std::string error;
  ASSERT_TRUE(parse_report(payload, &parsed, &error)) << error;
  EXPECT_EQ(parsed.job_id, "j");
  EXPECT_EQ(parsed.instance, 3u);
  EXPECT_EQ(parsed.status, "ok");
  EXPECT_EQ(parsed.cycles, 7u);
  EXPECT_EQ(parsed.delta_cycles, 44u);
  ASSERT_EQ(parsed.conflicts.size(), 1u);
  EXPECT_EQ(parsed.conflicts[0], to_string(result.conflicts[0]));
  ASSERT_EQ(parsed.registers.size(), 2u);
  EXPECT_EQ(parsed.registers[0], (std::pair<std::string, std::string>{"R1", "42"}));
  EXPECT_EQ(parsed.registers[1], (std::pair<std::string, std::string>{"R2", "DISC"}));
}

TEST(ReportTest, RendersDesignStyleBytes) {
  ReportPayload report;
  report.conflicts = {"conflict on B1 at step 5, phase rb (driven at ra)"};
  report.registers = {{"R1", "42"}, {"LONGREGNAME13", "7"}};
  EXPECT_EQ(render_design_style(report),
            "  conflict on B1 at step 5, phase rb (driven at ra)\n"
            "final register values:\n"
            "  R1           42\n"
            "  LONGREGNAME13 7\n");
}

TEST(DoneTest, RoundTrips) {
  DonePayload done;
  done.job_id = "j";
  done.instances = 16;
  done.failures = 2;
  done.conflicts = 3;
  done.cache_hit = true;
  done.cache_key = "00ff00ff00ff00ff";
  done.lower_ns = 0;
  done.run_ns = 12345;
  DonePayload parsed;
  std::string error;
  ASSERT_TRUE(parse_done(encode_done(done), &parsed, &error)) << error;
  EXPECT_EQ(parsed, done);
}

TEST(ErrorTest, RoundTripsEveryCode) {
  for (const ErrorCode code :
       {ErrorCode::kProtocol, ErrorCode::kParse, ErrorCode::kValidate,
        ErrorCode::kFaultPlan, ErrorCode::kLimit, ErrorCode::kShutdown,
        ErrorCode::kInternal, ErrorCode::kDeadline, ErrorCode::kCancelled}) {
    ErrorPayload error_payload;
    error_payload.job_id = "j";
    error_payload.code = code;
    error_payload.diagnostics = {"first", "second detail"};
    ErrorPayload parsed;
    std::string error;
    ASSERT_TRUE(parse_error(encode_error(error_payload), &parsed, &error))
        << error;
    EXPECT_EQ(parsed, error_payload);
  }
}

TEST(BusyTest, RoundTrips) {
  const BusyPayload busy{"j", 16, 16};
  BusyPayload parsed;
  std::string error;
  ASSERT_TRUE(parse_busy(encode_busy(busy), &parsed, &error)) << error;
  EXPECT_EQ(parsed, busy);
}

TEST(BusyTest, RetryHintAndShedReasonRoundTrip) {
  BusyPayload busy{"j", 3, 16};
  busy.retry_after_ms = 75;
  busy.reason = BusyReason::kShed;
  const std::string payload = encode_busy(busy);
  EXPECT_NE(payload.find("retry-after-ms 75"), std::string::npos);
  EXPECT_NE(payload.find("reason shed-low-priority"), std::string::npos);
  BusyPayload parsed;
  std::string error;
  ASSERT_TRUE(parse_busy(payload, &parsed, &error)) << error;
  EXPECT_EQ(parsed, busy);

  // The /1 shape — no hint, no reason — still parses with the defaults.
  ASSERT_TRUE(
      parse_busy("job j\nqueued 16\ncapacity 16\n", &parsed, &error));
  EXPECT_EQ(parsed.retry_after_ms, 0u);
  EXPECT_EQ(parsed.reason, BusyReason::kQueueFull);
  EXPECT_FALSE(parse_busy("job j\nreason whatever\n", &parsed, &error));
}

TEST(BusyReasonTest, TokensRoundTrip) {
  for (const BusyReason reason : {BusyReason::kQueueFull, BusyReason::kShed}) {
    BusyReason parsed;
    ASSERT_TRUE(parse_busy_reason(to_string(reason), &parsed));
    EXPECT_EQ(parsed, reason);
  }
  BusyReason parsed;
  EXPECT_FALSE(parse_busy_reason("overloaded", &parsed));
}

TEST(StatsTest, RoundTrips) {
  StatsPayload stats;
  stats.jobs_accepted = 10;
  stats.jobs_completed = 8;
  stats.jobs_rejected_busy = 1;
  stats.jobs_failed = 1;
  stats.jobs_shed = 4;
  stats.jobs_deadline_expired = 2;
  stats.jobs_cancelled = 3;
  stats.instances_completed = 800;
  stats.cache_hits = 6;
  stats.cache_misses = 2;
  stats.cache_evictions = 1;
  stats.cache_entries = 1;
  stats.cache_capacity = 8;
  stats.queue_capacity = 16;
  stats.workers = 2;
  stats.snapshot_records_loaded = 5;
  stats.snapshot_records_skipped = 1;
  StatsPayload parsed;
  std::string error;
  ASSERT_TRUE(parse_stats(encode_stats(stats), &parsed, &error)) << error;
  EXPECT_EQ(parsed, stats);
}

TEST(HelloTest, RoundTrips) {
  HelloPayload hello;
  hello.server = "ctrtl_serve";
  HelloPayload parsed;
  std::string error;
  ASSERT_TRUE(parse_hello(encode_hello(hello), &parsed, &error)) << error;
  EXPECT_EQ(parsed, hello);
  EXPECT_EQ(parsed.proto, kProtocolName);
}

}  // namespace
}  // namespace ctrtl::serve
