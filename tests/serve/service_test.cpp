// SimulationService: the job lifecycle end to end, in process. The
// acceptance-critical properties live here: submitting the same design
// twice proves the second job skipped lowering (cache-hit flag + counter)
// with byte-identical streamed reports, a fault-plan job and a
// watchdog-tripping job flow through as structured results, and the
// bounded queue rejects with BUSY deterministically.

#include "serve/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "rtl/batch_runner.h"
#include "transfer/schedule.h"
#include "transfer/text_format.h"

namespace ctrtl::serve {
namespace {

constexpr const char* kFig1 = R"(design fig1
cs_max 7
register R1 init 30
register R2 init 12
bus B1
bus B2
module ADD add
transfer R1 B1 R2 B2 5 ADD 6 B1 R1
)";

/// Collects one job's frames and lets the test block until the terminal
/// frame (DONE or ERROR) lands.
struct Collector {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Frame> frames;
  bool terminal = false;

  EventSink sink() {
    return [this](const Frame& frame) {
      std::unique_lock lock(mutex);
      frames.push_back(frame);
      if (frame.type == MessageType::kDone ||
          frame.type == MessageType::kError) {
        terminal = true;
        cv.notify_all();
      }
    };
  }

  void wait() {
    std::unique_lock lock(mutex);
    cv.wait(lock, [this] { return terminal; });
  }

  [[nodiscard]] std::vector<Frame> reports() const {
    std::vector<Frame> out;
    for (const Frame& frame : frames) {
      if (frame.type == MessageType::kReport) {
        out.push_back(frame);
      }
    }
    return out;
  }

  [[nodiscard]] const Frame& last() const { return frames.back(); }
};

ServiceOptions one_worker() {
  ServiceOptions options;
  options.workers = 1;
  return options;
}

JobRequest fig1_job(const std::string& job_id, std::uint64_t instances = 1) {
  JobRequest request;
  request.job_id = job_id;
  request.instances = instances;
  request.design_text = kFig1;
  return request;
}

TEST(ServiceTest, SecondIdenticalJobSkipsLoweringWithIdenticalReports) {
  SimulationService service(one_worker());

  Collector cold;
  ASSERT_EQ(service.submit(fig1_job("cold", 3), cold.sink()).status,
            SubmitStatus::kAccepted);
  cold.wait();

  Collector warm;
  ASSERT_EQ(service.submit(fig1_job("warm", 3), warm.sink()).status,
            SubmitStatus::kAccepted);
  warm.wait();

  // Terminal frames: DONE with the cache verdicts and matching keys.
  DonePayload cold_done, warm_done;
  std::string error;
  ASSERT_EQ(cold.last().type, MessageType::kDone);
  ASSERT_TRUE(parse_done(cold.last().payload, &cold_done, &error)) << error;
  ASSERT_EQ(warm.last().type, MessageType::kDone);
  ASSERT_TRUE(parse_done(warm.last().payload, &warm_done, &error)) << error;
  EXPECT_FALSE(cold_done.cache_hit);
  EXPECT_TRUE(warm_done.cache_hit) << "identical sources must hit the cache";
  EXPECT_EQ(cold_done.cache_key, warm_done.cache_key);
  EXPECT_GT(cold_done.lower_ns, 0u);
  EXPECT_EQ(warm_done.lower_ns, 0u) << "a hit must not lower again";

  // The cache-hit counter is the observable proof the second job skipped
  // lowering.
  const StatsPayload stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.jobs_completed, 2u);
  EXPECT_EQ(stats.instances_completed, 6u);

  // Byte-identical streamed reports (modulo the job-id line, which is the
  // only intentional difference).
  auto normalize = [](std::vector<Frame> frames) {
    std::vector<std::string> out;
    for (Frame& frame : frames) {
      const std::size_t line_end = frame.payload.find('\n');
      out.push_back(frame.payload.substr(line_end + 1));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(normalize(cold.reports()), normalize(warm.reports()));
}

TEST(ServiceTest, ReportsAreByteIdenticalToDirectBatchRunnerRun) {
  // The wire payloads must encode exactly what a direct (no service, no
  // cache) BatchRunner run of the same sources produces.
  SimulationService service(one_worker());
  Collector collector;
  ASSERT_EQ(service.submit(fig1_job("direct", 4), collector.sink()).status,
            SubmitStatus::kAccepted);
  collector.wait();

  common::DiagnosticBag diags;
  const transfer::Design design = transfer::parse_design(kFig1, diags);
  ASSERT_FALSE(diags.has_errors());
  rtl::BatchRunner runner(
      transfer::CompiledDesign::compile(design),
      rtl::BatchRunOptions{.workers = 1,
                           .engine = rtl::BatchEngineKind::kCompiledLanes});
  const rtl::BatchRunResult expected = runner.run(4);

  const std::vector<Frame> reports = collector.reports();
  ASSERT_EQ(reports.size(), 4u);
  std::vector<std::string> got(4);
  for (const Frame& frame : reports) {
    ReportPayload parsed;
    std::string error;
    ASSERT_TRUE(parse_report(frame.payload, &parsed, &error)) << error;
    ASSERT_LT(parsed.instance, got.size());
    got[parsed.instance] = frame.payload;
  }
  for (std::size_t i = 0; i < expected.instances.size(); ++i) {
    EXPECT_EQ(got[i], encode_report("direct", i, expected.instances[i]));
  }
}

TEST(ServiceTest, FaultPlanJobStreamsConflicts) {
  SimulationService service(one_worker());
  JobRequest request = fig1_job("faulted");
  request.has_fault_plan = true;
  request.fault_plan_text = "force-bus B1 = 99 @5:ra\n";
  Collector collector;
  ASSERT_EQ(service.submit(std::move(request), collector.sink()).status,
            SubmitStatus::kAccepted);
  collector.wait();

  ASSERT_EQ(collector.last().type, MessageType::kDone);
  DonePayload done;
  std::string error;
  ASSERT_TRUE(parse_done(collector.last().payload, &done, &error)) << error;
  // The forced drive collides on B1 at rb and the ILLEGAL then propagates
  // through ADD.in1 / B1@wb / R1.in — four conflict records total.
  EXPECT_EQ(done.conflicts, 4u);
  EXPECT_FALSE(done.cache_hit) << "faulted stream must key differently";

  ReportPayload report;
  ASSERT_TRUE(
      parse_report(collector.reports().at(0).payload, &report, &error));
  ASSERT_EQ(report.conflicts.size(), 4u);
  EXPECT_EQ(report.conflicts[0],
            "conflict on B1 at step 5, phase rb (driven at ra)");
  ASSERT_FALSE(report.registers.empty());
  EXPECT_EQ(report.registers[0],
            (std::pair<std::string, std::string>{"R1", "ILLEGAL"}));
}

TEST(ServiceTest, WatchdogTripIsAStructuredReportNotAJobError) {
  SimulationService service(one_worker());
  JobRequest request = fig1_job("wd");
  request.max_delta_cycles = 10;
  Collector collector;
  ASSERT_EQ(service.submit(std::move(request), collector.sink()).status,
            SubmitStatus::kAccepted);
  collector.wait();

  // The job completes with DONE; the trip lives in the instance report.
  ASSERT_EQ(collector.last().type, MessageType::kDone);
  DonePayload done;
  std::string error;
  ASSERT_TRUE(parse_done(collector.last().payload, &done, &error)) << error;
  EXPECT_EQ(done.failures, 1u);

  ReportPayload report;
  ASSERT_TRUE(
      parse_report(collector.reports().at(0).payload, &report, &error));
  EXPECT_EQ(report.status, "watchdog-tripped");
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("watchdog"), std::string::npos);
}

TEST(ServiceTest, UnparseableDesignEndsInEParse) {
  SimulationService service(one_worker());
  JobRequest request;
  request.job_id = "bad";
  request.design_text = "this is not a design\n";
  Collector collector;
  ASSERT_EQ(service.submit(std::move(request), collector.sink()).status,
            SubmitStatus::kAccepted);
  collector.wait();

  ASSERT_EQ(collector.last().type, MessageType::kError);
  ErrorPayload parsed;
  std::string error;
  ASSERT_TRUE(parse_error(collector.last().payload, &parsed, &error)) << error;
  EXPECT_EQ(parsed.code, ErrorCode::kParse);
  EXPECT_EQ(parsed.job_id, "bad");
  EXPECT_FALSE(parsed.diagnostics.empty());
  EXPECT_EQ(service.stats().jobs_failed, 1u);
}

TEST(ServiceTest, BadFaultPlanEndsInEFaultPlan) {
  SimulationService service(one_worker());
  JobRequest request = fig1_job("badplan");
  request.has_fault_plan = true;
  request.fault_plan_text = "force-bus NOSUCHBUS = 1 @5:ra\n";
  Collector collector;
  ASSERT_EQ(service.submit(std::move(request), collector.sink()).status,
            SubmitStatus::kAccepted);
  collector.wait();

  ASSERT_EQ(collector.last().type, MessageType::kError);
  ErrorPayload parsed;
  std::string error;
  ASSERT_TRUE(parse_error(collector.last().payload, &parsed, &error)) << error;
  EXPECT_EQ(parsed.code, ErrorCode::kFaultPlan);
}

TEST(ServiceTest, AdmissionValidatesLimitsSynchronously) {
  ServiceOptions options;
  options.workers = 1;
  options.max_instances = 8;
  options.max_source_bytes = 64;
  SimulationService service(options);

  const SubmitOutcome too_many =
      service.submit(fig1_job("big", 9), [](const Frame&) { FAIL(); });
  EXPECT_EQ(too_many.status, SubmitStatus::kRejected);
  EXPECT_EQ(too_many.error.code, ErrorCode::kLimit);

  JobRequest huge = fig1_job("huge");
  huge.design_text = std::string(65, 'x');
  EXPECT_EQ(service.submit(std::move(huge), nullptr).error.code,
            ErrorCode::kLimit);

  JobRequest bad_id = fig1_job("has space");
  EXPECT_EQ(service.submit(std::move(bad_id), nullptr).error.code,
            ErrorCode::kValidate);
}

TEST(ServiceTest, FullQueueRejectsBusyDeterministically) {
  // One worker parked inside a job + capacity-1 queue: the third submit
  // must bounce with BUSY while nothing is lost for the first two.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  bool worker_parked = false;

  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.on_job_start = [&](const std::string&) {
    std::unique_lock lock(gate_mutex);
    worker_parked = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  SimulationService service(options);

  Collector a, b;
  ASSERT_EQ(service.submit(fig1_job("a"), a.sink()).status,
            SubmitStatus::kAccepted);
  {
    // Wait until the worker has dequeued job a — the queue is now empty.
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return worker_parked; });
  }
  ASSERT_EQ(service.submit(fig1_job("b"), b.sink()).status,
            SubmitStatus::kAccepted);  // fills the queue

  const SubmitOutcome busy = service.submit(fig1_job("c"), nullptr);
  EXPECT_EQ(busy.status, SubmitStatus::kBusy);
  EXPECT_EQ(busy.queued, 1u);
  EXPECT_EQ(service.stats().jobs_rejected_busy, 1u);

  {
    std::unique_lock lock(gate_mutex);
    gate_open = true;
    worker_parked = false;  // job b will park again at its own start
  }
  gate_cv.notify_all();
  {
    // Let job b through its gate too.
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return worker_parked; });
  }
  gate_cv.notify_all();
  a.wait();
  b.wait();
  EXPECT_EQ(a.last().type, MessageType::kDone);
  EXPECT_EQ(b.last().type, MessageType::kDone);
}

TEST(ServiceTest, SoftLimitShedsLowPriorityWithRetryHint) {
  // One worker parked on a normal job, queue capacity 4, shedding at depth
  // 2: low-priority jobs bounce once two jobs queue, normal jobs keep the
  // remaining headroom, and the hard limit still rejects everyone.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  bool worker_parked = false;

  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  options.shed_queue_depth = 2;
  options.retry_after_ms = 7;
  options.on_job_start = [&](const std::string& job_id) {
    if (job_id != "a") {
      return;  // only the first job parks; the drain must run unimpeded
    }
    std::unique_lock lock(gate_mutex);
    worker_parked = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  SimulationService service(options);

  const auto low = [](JobRequest request) {
    request.low_priority = true;
    return request;
  };

  Collector a, b, c, e, g;
  ASSERT_EQ(service.submit(fig1_job("a"), a.sink()).status,
            SubmitStatus::kAccepted);
  {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return worker_parked; });
  }
  // Queue is empty; two low-priority jobs fit under the soft limit.
  ASSERT_EQ(service.submit(low(fig1_job("b")), b.sink()).status,
            SubmitStatus::kAccepted);
  ASSERT_EQ(service.submit(low(fig1_job("c")), c.sink()).status,
            SubmitStatus::kAccepted);

  // Depth 2 reached: the next low-priority job is shed, with the reason
  // and the configured retry hint on the outcome.
  const SubmitOutcome shed = service.submit(low(fig1_job("d")), nullptr);
  EXPECT_EQ(shed.status, SubmitStatus::kBusy);
  EXPECT_EQ(shed.busy_reason, BusyReason::kShed);
  EXPECT_EQ(shed.retry_after_ms, 7u);

  // Normal priority still gets the headroom between soft and hard limits.
  ASSERT_EQ(service.submit(fig1_job("e"), e.sink()).status,
            SubmitStatus::kAccepted);
  EXPECT_EQ(service.submit(low(fig1_job("f")), nullptr).busy_reason,
            BusyReason::kShed);
  ASSERT_EQ(service.submit(fig1_job("g"), g.sink()).status,
            SubmitStatus::kAccepted);  // queue now at capacity 4

  const SubmitOutcome hard = service.submit(fig1_job("h"), nullptr);
  EXPECT_EQ(hard.status, SubmitStatus::kBusy);
  EXPECT_EQ(hard.busy_reason, BusyReason::kQueueFull);
  EXPECT_EQ(hard.retry_after_ms, 7u);

  const StatsPayload mid = service.stats();
  EXPECT_EQ(mid.jobs_shed, 2u);
  EXPECT_EQ(mid.jobs_rejected_busy, 3u) << "shed jobs count as busy too";

  {
    std::unique_lock lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  for (Collector* collector : {&a, &b, &c, &e, &g}) {
    collector->wait();
    EXPECT_EQ(collector->last().type, MessageType::kDone);
  }
  EXPECT_EQ(service.stats().jobs_completed, 5u);
}

TEST(ServiceTest, CancelledWhileQueuedEndsInECancelledWithoutRunning) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  bool worker_parked = false;

  ServiceOptions options;
  options.workers = 1;
  options.on_job_start = [&](const std::string& job_id) {
    if (job_id != "first") {
      return;
    }
    std::unique_lock lock(gate_mutex);
    worker_parked = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  SimulationService service(options);

  Collector first, victim;
  ASSERT_EQ(service.submit(fig1_job("first"), first.sink()).status,
            SubmitStatus::kAccepted);
  {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return worker_parked; });
  }
  const SubmitOutcome queued =
      service.submit(fig1_job("victim", 4), victim.sink());
  ASSERT_EQ(queued.status, SubmitStatus::kAccepted);
  ASSERT_NE(queued.control, nullptr);

  // The client vanishes while the job is still queued.
  queued.control->cancel();
  {
    std::unique_lock lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  first.wait();
  victim.wait();

  EXPECT_EQ(first.last().type, MessageType::kDone);
  ASSERT_EQ(victim.last().type, MessageType::kError);
  ErrorPayload parsed;
  std::string error;
  ASSERT_TRUE(parse_error(victim.last().payload, &parsed, &error)) << error;
  EXPECT_EQ(parsed.code, ErrorCode::kCancelled);
  EXPECT_TRUE(victim.reports().empty())
      << "a job cancelled before it started must not stream reports";
  EXPECT_TRUE(queued.control->finished());

  const StatsPayload stats = service.stats();
  EXPECT_EQ(stats.jobs_cancelled, 1u);
  EXPECT_EQ(stats.jobs_failed, 1u);
  EXPECT_EQ(stats.jobs_deadline_expired, 0u);
}

TEST(ServiceTest, DeadlineBurnedWhileQueuedEndsInEDeadline) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  bool worker_parked = false;

  ServiceOptions options;
  options.workers = 1;
  options.on_job_start = [&](const std::string& job_id) {
    if (job_id != "first") {
      return;
    }
    std::unique_lock lock(gate_mutex);
    worker_parked = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  SimulationService service(options);

  Collector first, stale;
  ASSERT_EQ(service.submit(fig1_job("first"), first.sink()).status,
            SubmitStatus::kAccepted);
  {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return worker_parked; });
  }
  JobRequest request = fig1_job("stale");
  request.deadline_ms = 1;
  ASSERT_EQ(service.submit(std::move(request), stale.sink()).status,
            SubmitStatus::kAccepted);
  // Burn the budget while the job is stuck behind the parked worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::unique_lock lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  first.wait();
  stale.wait();

  ASSERT_EQ(stale.last().type, MessageType::kError);
  ErrorPayload parsed;
  std::string error;
  ASSERT_TRUE(parse_error(stale.last().payload, &parsed, &error)) << error;
  EXPECT_EQ(parsed.code, ErrorCode::kDeadline);
  ASSERT_FALSE(parsed.diagnostics.empty());
  EXPECT_NE(parsed.diagnostics[0].find("expired while queued"),
            std::string::npos);
  EXPECT_EQ(service.stats().jobs_deadline_expired, 1u);
}

TEST(ServiceTest, ShutdownDrainsAcceptedJobsAndRejectsNewOnes) {
  SimulationService service(one_worker());
  Collector collector;
  ASSERT_EQ(service.submit(fig1_job("last", 2), collector.sink()).status,
            SubmitStatus::kAccepted);
  service.shutdown();  // blocks until the queue drains
  collector.wait();
  EXPECT_EQ(collector.last().type, MessageType::kDone);

  const SubmitOutcome rejected = service.submit(fig1_job("late"), nullptr);
  EXPECT_EQ(rejected.status, SubmitStatus::kRejected);
  EXPECT_EQ(rejected.error.code, ErrorCode::kShutdown);
}

TEST(ServiceTest, EvictionUnderPressureKeepsJobsCorrect) {
  // cache_capacity 1 with alternating designs: every other job evicts the
  // previous entry, and every job still completes correctly.
  ServiceOptions options;
  options.workers = 2;
  options.cache_capacity = 1;
  SimulationService service(options);

  std::vector<std::unique_ptr<Collector>> collectors;
  for (int round = 0; round < 3; ++round) {
    for (const char* variant : {"init 30", "init 29"}) {
      JobRequest request;
      request.job_id = "evict";
      request.instances = 2;
      request.design_text = kFig1;
      const std::size_t pos = request.design_text.find("init 30");
      request.design_text.replace(pos, 7, variant);
      collectors.push_back(std::make_unique<Collector>());
      ASSERT_EQ(
          service.submit(std::move(request), collectors.back()->sink()).status,
          SubmitStatus::kAccepted);
    }
  }
  for (const auto& collector : collectors) {
    collector->wait();
    EXPECT_EQ(collector->last().type, MessageType::kDone);
  }
  const StatsPayload stats = service.stats();
  EXPECT_EQ(stats.jobs_completed, 6u);
  EXPECT_GE(stats.cache_evictions, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
}

}  // namespace
}  // namespace ctrtl::serve
