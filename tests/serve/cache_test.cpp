// DesignCache: hit/miss accounting, LRU eviction order, the capacity-0
// bypass, and the guarantee that eviction never kills an in-flight job's
// compiled design.

#include "serve/cache.h"

#include <gtest/gtest.h>

#include "transfer/design.h"

namespace ctrtl::serve {
namespace {

transfer::Design tiny_design(const std::string& name) {
  transfer::Design design;
  design.name = name;
  design.cs_max = 1;
  design.registers.push_back({"R1", 30});
  design.registers.push_back({"R2", 12});
  design.buses.push_back({"B1"});
  design.buses.push_back({"B2"});
  transfer::ModuleDecl add;
  add.name = "ADD";
  add.kind = transfer::ModuleKind::kAdd;
  design.modules.push_back(add);
  return design;
}

DesignCache::Compile compiler(const std::string& name, int* calls = nullptr) {
  return [name, calls] {
    if (calls != nullptr) {
      ++*calls;
    }
    return transfer::CompiledDesign::compile(tiny_design(name));
  };
}

TEST(DesignCacheTest, SecondLookupHitsWithoutCompiling) {
  DesignCache cache(4);
  int calls = 0;
  bool hit = true;
  const auto first = cache.get_or_compile(1, compiler("d", &calls), &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.get_or_compile(1, compiler("d", &calls), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(first.get(), second.get());  // the same lowered tables, shared
  const DesignCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(DesignCacheTest, DistinctKeysMiss) {
  DesignCache cache(4);
  int calls = 0;
  (void)cache.get_or_compile(1, compiler("a", &calls));
  (void)cache.get_or_compile(2, compiler("b", &calls));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(DesignCacheTest, EvictsLeastRecentlyUsed) {
  DesignCache cache(2);
  (void)cache.get_or_compile(1, compiler("a"));
  (void)cache.get_or_compile(2, compiler("b"));
  // Touch 1 so 2 becomes the LRU victim.
  bool hit = false;
  (void)cache.get_or_compile(1, compiler("a"), &hit);
  EXPECT_TRUE(hit);
  (void)cache.get_or_compile(3, compiler("c"));  // evicts 2
  EXPECT_EQ(cache.stats().evictions, 1u);
  (void)cache.get_or_compile(1, compiler("a"), &hit);
  EXPECT_TRUE(hit) << "key 1 was recently used and must survive";
  (void)cache.get_or_compile(2, compiler("b"), &hit);
  EXPECT_FALSE(hit) << "key 2 was the LRU entry and must have been evicted";
}

TEST(DesignCacheTest, EvictionKeepsInFlightDesignsAlive) {
  DesignCache cache(1);
  // An "in-flight job" holds the shared_ptr while its key gets evicted.
  const auto in_flight = cache.get_or_compile(1, compiler("a"));
  (void)cache.get_or_compile(2, compiler("b"));  // evicts key 1
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  // The evicted design is still fully usable — eviction only dropped the
  // cache's reference.
  EXPECT_EQ(in_flight->design.name, "a");
  EXPECT_EQ(in_flight->schedule.levels.size(), 6u);
  EXPECT_EQ(in_flight.use_count(), 1);
}

TEST(DesignCacheTest, CapacityZeroDisablesRetention) {
  DesignCache cache(0);
  int calls = 0;
  (void)cache.get_or_compile(1, compiler("a", &calls));
  (void)cache.get_or_compile(1, compiler("a", &calls));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(DesignCacheTest, ThrowingCompileCachesNothing) {
  DesignCache cache(4);
  EXPECT_THROW(
      (void)cache.get_or_compile(
          1, []() -> std::shared_ptr<const transfer::CompiledDesign> {
            throw std::runtime_error("lowering failed");
          }),
      std::runtime_error);
  EXPECT_EQ(cache.stats().entries, 0u);
  // The key stays compilable afterwards.
  bool hit = true;
  (void)cache.get_or_compile(1, compiler("a"), &hit);
  EXPECT_FALSE(hit);
}

}  // namespace
}  // namespace ctrtl::serve
