// Snapshot persistence: the append-only record format round-trips, and —
// the property that makes it crash-safe — every corruption shape a dying
// process or a flipped disk byte can produce (torn tail, bad checksum,
// garbage runs, empty file) is skipped with a count, never loaded and
// never fatal. The journal layer dedupes by key so the file stays linear
// in distinct designs.

#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace ctrtl::serve {
namespace {

SnapshotRecord plain_record() {
  SnapshotRecord record;
  record.key = 0x0123456789abcdefull;
  record.design_text = "design fig1\ncs_max 7\nregister R1 init 30\n";
  return record;
}

SnapshotRecord faulted_record() {
  SnapshotRecord record;
  record.key = 0xfedcba9876543210ull;
  record.design_text = "design g\ncs_max 3\n";
  record.has_fault_plan = true;
  record.fault_plan_text = "force-bus B1 = 99 @5:ra\n";
  return record;
}

TEST(SnapshotTest, RecordRoundTripsWithAndWithoutFaultPlan) {
  const std::string image =
      encode_snapshot_record(plain_record()) +
      encode_snapshot_record(faulted_record());
  const SnapshotParseResult parsed = parse_snapshot(image);
  EXPECT_EQ(parsed.skipped, 0u);
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.records[0], plain_record());
  EXPECT_EQ(parsed.records[1], faulted_record());
}

TEST(SnapshotTest, DesignTextWithNewlinesSurvives) {
  // The body is length-prefixed, not line-oriented: embedded newlines —
  // including a line that spells a record header — must not confuse the
  // scanner.
  SnapshotRecord tricky = plain_record();
  tricky.design_text = "line1\nSNAP1 fake header\nline3\n";
  const SnapshotParseResult parsed =
      parse_snapshot(encode_snapshot_record(tricky));
  EXPECT_EQ(parsed.skipped, 0u);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0], tricky);
}

TEST(SnapshotTest, EmptyImageIsCleanlyEmpty) {
  const SnapshotParseResult parsed = parse_snapshot("");
  EXPECT_TRUE(parsed.records.empty());
  EXPECT_EQ(parsed.skipped, 0u);
}

TEST(SnapshotTest, TornTailIsSkippedNotFatal) {
  // A crash mid-append leaves a prefix of the last record. Every possible
  // truncation point must salvage the first record and count exactly one
  // skip for the torn one.
  const std::string first = encode_snapshot_record(plain_record());
  const std::string second = encode_snapshot_record(faulted_record());
  for (std::size_t cut = 1; cut < second.size(); ++cut) {
    const SnapshotParseResult parsed =
        parse_snapshot(first + second.substr(0, cut));
    ASSERT_EQ(parsed.records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(parsed.records[0], plain_record()) << "cut at " << cut;
    EXPECT_EQ(parsed.skipped, 1u) << "cut at " << cut;
  }
}

TEST(SnapshotTest, FlippedBodyByteFailsChecksumAndSkipsExactlyThatRecord) {
  const std::string first = encode_snapshot_record(plain_record());
  const std::string second = encode_snapshot_record(faulted_record());
  // Flip one byte inside the first record's design body; framing stays
  // intact, so the reader steps over it and still loads the second.
  std::string image = first + second;
  const std::size_t body_offset = first.find('\n') + 3;
  image[body_offset] ^= 0x20;
  const SnapshotParseResult parsed = parse_snapshot(image);
  EXPECT_EQ(parsed.skipped, 1u);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0], faulted_record());
}

TEST(SnapshotTest, FlippedChecksumDigitSkipsRecord) {
  std::string image = encode_snapshot_record(plain_record());
  // The checksum is the last header token; corrupt one of its hex digits
  // (pick a digit and replace it with a different valid digit so the
  // header still parses).
  const std::size_t header_end = image.find('\n');
  const std::size_t digit = header_end - 1;
  image[digit] = image[digit] == '0' ? '1' : '0';
  const SnapshotParseResult parsed = parse_snapshot(image);
  EXPECT_TRUE(parsed.records.empty());
  EXPECT_EQ(parsed.skipped, 1u);
}

TEST(SnapshotTest, GarbageRunResynchronizesAtNextRecord) {
  const std::string good = encode_snapshot_record(plain_record());
  const SnapshotParseResult parsed =
      parse_snapshot("not a snapshot at all\nmore junk\n" + good);
  EXPECT_EQ(parsed.skipped, 1u) << "one skip per contiguous garbage run";
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0], plain_record());
}

TEST(SnapshotTest, AllGarbageYieldsNoRecords) {
  const SnapshotParseResult parsed =
      parse_snapshot("SNAP1 nothex 9 1 2 alsonothex\njunk\n");
  EXPECT_TRUE(parsed.records.empty());
  EXPECT_GE(parsed.skipped, 1u);
}

TEST(SnapshotTest, MissingFileLoadsAsEmpty) {
  SnapshotParseResult parsed;
  std::string error;
  ASSERT_TRUE(load_snapshot_file("/nonexistent/dir/never.snap", &parsed,
                                 &error))
      << error;
  EXPECT_TRUE(parsed.records.empty());
  EXPECT_EQ(parsed.skipped, 0u);
}

TEST(SnapshotTest, JournalAppendsFlushesAndDedupes) {
  const std::string path =
      testing::TempDir() + "snapshot_journal_test.snap";
  std::remove(path.c_str());
  {
    SnapshotJournal journal(path);
    EXPECT_TRUE(journal.append(plain_record()));
    EXPECT_TRUE(journal.append(plain_record()));  // deduped, still true
    EXPECT_TRUE(journal.append(faulted_record()));
  }
  SnapshotParseResult parsed;
  std::string error;
  ASSERT_TRUE(load_snapshot_file(path, &parsed, &error)) << error;
  EXPECT_EQ(parsed.skipped, 0u);
  ASSERT_EQ(parsed.records.size(), 2u) << "duplicate key must not re-append";
  EXPECT_EQ(parsed.records[0], plain_record());
  EXPECT_EQ(parsed.records[1], faulted_record());

  // note_existing suppresses appends for keys loaded from a prior run.
  {
    SnapshotJournal journal(path);
    journal.note_existing(plain_record().key);
    journal.note_existing(faulted_record().key);
    EXPECT_TRUE(journal.append(plain_record()));
  }
  ASSERT_TRUE(load_snapshot_file(path, &parsed, &error)) << error;
  EXPECT_EQ(parsed.records.size(), 2u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, JournalSurvivesTruncationMidRecord) {
  // Simulate the on-disk state after a kill mid-append: truncate the file
  // to every prefix length and confirm a reload never fails, never loads
  // the torn record, and counts the skip.
  const std::string path =
      testing::TempDir() + "snapshot_truncation_test.snap";
  std::remove(path.c_str());
  {
    SnapshotJournal journal(path);
    ASSERT_TRUE(journal.append(plain_record()));
    ASSERT_TRUE(journal.append(faulted_record()));
  }
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const std::size_t first_len = encode_snapshot_record(plain_record()).size();
  for (const std::size_t cut :
       {first_len + 1, first_len + 10, full.size() - 1}) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(cut));
    }
    SnapshotParseResult parsed;
    std::string error;
    ASSERT_TRUE(load_snapshot_file(path, &parsed, &error)) << error;
    ASSERT_EQ(parsed.records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(parsed.records[0], plain_record());
    EXPECT_EQ(parsed.skipped, 1u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ctrtl::serve
