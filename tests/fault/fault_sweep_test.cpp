#include <gtest/gtest.h>

#include "fault/inject.h"
#include "fault/plan.h"
#include "rtl/batch_runner.h"
#include "rtl/lane_engine.h"
#include "transfer/build.h"
#include "transfer/mapping.h"
#include "transfer/schedule.h"
#include "verify/equivalence.h"
#include "verify/random_design.h"

namespace ctrtl::fault {
namespace {

using transfer::Design;
using transfer::Endpoint;
using transfer::TransInstance;

// --- fault sweep ------------------------------------------------------------
//
// The tentpole acceptance property: for >= 30 seeded random designs and every
// fault kind, the faulted instance stream must drive the event kernel, the
// compiled engine, and the lane engine to identical registers, ordered
// conflicts, counters, and event traces. Fault sites are derived from the
// design's own instance stream, so every plan is guaranteed to hit.

class FaultSweepTest : public ::testing::TestWithParam<std::uint32_t> {};

Design sweep_design(std::uint32_t seed) {
  verify::RandomDesignOptions options;
  options.seed = seed;
  options.num_registers = 5;
  options.num_buses = 3;
  options.num_transfers = 8;
  options.use_alu = (seed % 2) == 0;
  options.inject_conflicts = (seed % 3) == 0;
  return verify::random_design(options);
}

// Fault specs aimed at sites the design actually exercises.
std::vector<FaultPlan> derived_plans(const Design& design) {
  const std::vector<TransInstance> instances =
      transfer::to_instances(design.transfers);
  std::vector<FaultPlan> plans;
  for (const TransInstance& instance : instances) {
    if (instance.source.kind == Endpoint::Kind::kRegisterOut) {
      plans.push_back({{{FaultKind::kStuckDisc, instance.source.resource}}});
      plans.push_back({{{FaultKind::kStuckIllegal, instance.source.resource}}});
      break;
    }
  }
  for (const TransInstance& instance : instances) {
    if (instance.sink.kind == Endpoint::Kind::kBus) {
      plans.push_back({{{FaultKind::kForceBus, instance.sink.resource,
                         instance.step, instance.phase, 77}}});
      break;
    }
  }
  const TransInstance& last = instances.back();
  plans.push_back({{{FaultKind::kDropTransfer, to_string(last.sink),
                     last.step, last.phase}}});
  for (const TransInstance& instance : instances) {
    if (instance.source.kind == Endpoint::Kind::kModuleOut) {
      plans.push_back(
          {{{FaultKind::kCorruptModule, instance.source.resource, 0,
             std::nullopt, -5}}});
      break;
    }
  }
  return plans;
}

TEST_P(FaultSweepTest, AllEnginesAgreeUnderEveryFaultKind) {
  const Design design = sweep_design(GetParam());
  const std::vector<FaultPlan> plans = derived_plans(design);
  ASSERT_GE(plans.size(), 4u) << "sweep must cover >= 4 fault kinds";
  for (const FaultPlan& plan : plans) {
    common::DiagnosticBag diags;
    const auto faulted = apply_plan(design, plan, diags);
    ASSERT_TRUE(faulted.has_value())
        << "seed " << GetParam() << ": " << diags.to_text();
    const verify::CheckReport report = verify::check_engine_equivalence(*faulted);
    EXPECT_TRUE(report.consistent())
        << "seed " << GetParam() << ", plan:\n"
        << to_text(plan) << report.to_text();
  }
}

TEST_P(FaultSweepTest, CombinedPlanKeepsEquivalence) {
  // All derived faults applied together: transformations compose (drop,
  // rewrite, append are order-respecting on one stream), and the engines
  // must still agree on the composite behaviour.
  const Design design = sweep_design(GetParam() + 4000);
  FaultPlan combined;
  for (const FaultPlan& plan : derived_plans(design)) {
    combined.faults.insert(combined.faults.end(), plan.faults.begin(),
                           plan.faults.end());
  }
  common::DiagnosticBag diags;
  const auto faulted = apply_plan(design, combined, diags);
  ASSERT_TRUE(faulted.has_value()) << diags.to_text();
  const verify::CheckReport report = verify::check_engine_equivalence(*faulted);
  EXPECT_TRUE(report.consistent()) << "seed " << GetParam() << ":\n"
                                   << report.to_text();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSweepTest,
                         ::testing::Range(1u, 31u));  // 30 designs per test

// --- watchdog determinism ---------------------------------------------------
//
// A true register-transfer design cannot oscillate (the phase wheel is a
// finite schedule), so non-convergence is emulated by arming the watchdog
// below the wheel length. All three engines must stop at the same delta
// ordinal with byte-equal reports and identical partial register state.

struct EngineRuns {
  rtl::InstanceResult event;
  rtl::InstanceResult compiled;
  rtl::InstanceResult lane;
};

EngineRuns run_all_engines(const Design& design, std::uint64_t limit) {
  const rtl::RunOptions options{.max_delta_cycles = limit};
  EngineRuns runs;
  {
    auto model =
        transfer::build_model(design, rtl::TransferMode::kProcessPerTransfer);
    runs.event = rtl::run_instance(*model, options);
  }
  {
    auto model = transfer::build_model(design, rtl::TransferMode::kCompiled);
    runs.compiled = rtl::run_instance(*model, options);
  }
  {
    const rtl::LaneEngine engine(transfer::CompiledDesign::compile(design));
    runs.lane = engine.run_block(0, 1, nullptr,
                                 kernel::Scheduler::kNoLimit, limit)[0];
  }
  return runs;
}

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", transfer::ModuleKind::kAdd, 1}};
  d.transfers = {transfer::RegisterTransfer::full("R1", "B1", "R2", "B2", 5,
                                                  "ADD", 6, "B1", "R1")};
  return d;
}

TEST(WatchdogDeterminism, MidWheelTripIsByteEqualAcrossEngines) {
  // fig1's wheel is 7 * 6 = 42 delta cycles; a limit of 10 trips every
  // engine mid-wheel, at the identical (step, phase) provenance.
  const EngineRuns runs = run_all_engines(fig1_design(), 10);
  ASSERT_EQ(runs.event.report.status, rtl::RunStatus::kWatchdogTripped);
  EXPECT_EQ(runs.event.report.to_text(), runs.compiled.report.to_text());
  EXPECT_EQ(runs.event.report.to_text(), runs.lane.report.to_text());
  EXPECT_EQ(runs.event.registers, runs.compiled.registers);
  EXPECT_EQ(runs.event.registers, runs.lane.registers);
  EXPECT_EQ(runs.event.conflicts, runs.compiled.conflicts);
  EXPECT_EQ(runs.event.conflicts, runs.lane.conflicts);
  EXPECT_EQ(runs.event.stats.delta_cycles, 10u);
  EXPECT_EQ(runs.compiled.stats.delta_cycles, 10u);
  EXPECT_EQ(runs.lane.stats.delta_cycles, 10u);
}

TEST(WatchdogDeterminism, EveryLimitAgreesAcrossEngines) {
  // Sweep the limit across the whole wheel (including the boundary at the
  // wheel length and past quiescence): whatever each limit produces —
  // trip or clean finish — must be identical on all three engines.
  const Design design = fig1_design();
  for (const std::uint64_t limit : {1u, 2u, 6u, 41u, 42u, 43u, 100u}) {
    const EngineRuns runs = run_all_engines(design, limit);
    EXPECT_EQ(runs.event.report, runs.compiled.report) << "limit " << limit;
    EXPECT_EQ(runs.event.report, runs.lane.report) << "limit " << limit;
    EXPECT_EQ(runs.event.registers, runs.compiled.registers)
        << "limit " << limit;
    EXPECT_EQ(runs.event.registers, runs.lane.registers) << "limit " << limit;
    EXPECT_EQ(runs.event.stats.delta_cycles, runs.compiled.stats.delta_cycles)
        << "limit " << limit;
    EXPECT_EQ(runs.event.stats.delta_cycles, runs.lane.stats.delta_cycles)
        << "limit " << limit;
  }
  EXPECT_EQ(run_all_engines(design, 100).event.report.status,
            rtl::RunStatus::kOk);
}

TEST(WatchdogDeterminism, FaultedDesignStillTripsIdentically) {
  // Watchdog and fault injection compose: a faulted stream tripped mid-run
  // reports the same diagnostics and partial state on every engine.
  common::DiagnosticBag diags;
  const FaultPlan plan =
      parse_fault_plan("force-bus B1 = 99 @5:ra\nstuck-disc R2\n", diags);
  const auto faulted = apply_plan(fig1_design(), plan, diags);
  ASSERT_TRUE(faulted.has_value()) << diags.to_text();

  const rtl::RunOptions options{.max_delta_cycles = 31};
  auto event_model = build_model(*faulted);
  const rtl::InstanceResult event = rtl::run_instance(*event_model, options);
  auto compiled_model = build_model(*faulted, rtl::TransferMode::kCompiled);
  const rtl::InstanceResult compiled =
      rtl::run_instance(*compiled_model, options);
  const rtl::LaneEngine engine(compile(*faulted));
  const rtl::InstanceResult lane =
      engine.run_block(0, 1, nullptr, kernel::Scheduler::kNoLimit, 31)[0];

  ASSERT_EQ(event.report.status, rtl::RunStatus::kWatchdogTripped);
  EXPECT_EQ(event.report, compiled.report);
  EXPECT_EQ(event.report, lane.report);
  EXPECT_EQ(event.registers, compiled.registers);
  EXPECT_EQ(event.registers, lane.registers);
  EXPECT_EQ(event.conflicts, compiled.conflicts);
  EXPECT_EQ(event.conflicts, lane.conflicts);
}

TEST(WatchdogDeterminism, MultiLaneBlockTripsEveryLaneUniformly) {
  // A mid-wheel trip stops the shared wheel, so every lane of a block must
  // carry the identical report — byte-for-byte the single-lane one.
  const rtl::LaneEngine engine(
      transfer::CompiledDesign::compile(fig1_design()));
  const std::vector<rtl::InstanceResult> block =
      engine.run_block(0, 4, nullptr, kernel::Scheduler::kNoLimit, 10);
  const std::vector<rtl::InstanceResult> single =
      engine.run_block(0, 1, nullptr, kernel::Scheduler::kNoLimit, 10);
  ASSERT_EQ(block.size(), 4u);
  for (const rtl::InstanceResult& lane : block) {
    EXPECT_EQ(lane.report.status, rtl::RunStatus::kWatchdogTripped);
    EXPECT_EQ(lane, single[0]);
  }
}

}  // namespace
}  // namespace ctrtl::fault
