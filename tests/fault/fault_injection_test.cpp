#include "fault/inject.h"

#include <gtest/gtest.h>

#include "fault/plan.h"
#include "rtl/batch_runner.h"
#include "verify/equivalence.h"

namespace ctrtl::fault {
namespace {

using transfer::Design;
using transfer::ModuleKind;
using transfer::RegisterTransfer;

// The paper's figure 1: (R1,B1,R2,B2,5,ADD,6,B1,R1), CS_MAX = 7. Clean run
// computes R1 := R1 + R2 = 42.
Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

FaultedDesign apply(const Design& design, const std::string& plan_text) {
  common::DiagnosticBag diags;
  const FaultPlan plan = parse_fault_plan(plan_text, diags);
  auto faulted = apply_plan(design, plan, diags);
  EXPECT_TRUE(faulted.has_value()) << diags.to_text();
  return *faulted;
}

rtl::InstanceResult run_faulted(const FaultedDesign& faulted) {
  auto model = build_model(faulted);
  return rtl::run_instance(*model);
}

rtl::RtValue register_value(const rtl::InstanceResult& result,
                            const std::string& name) {
  for (const auto& [reg, value] : result.registers) {
    if (reg == name) {
      return value;
    }
  }
  ADD_FAILURE() << "no register " << name;
  return rtl::RtValue::disc();
}

TEST(FaultInjection, EmptyPlanIsIdentity) {
  const FaultedDesign faulted = apply(fig1_design(), "");
  EXPECT_EQ(faulted.dropped, 0u);
  EXPECT_EQ(faulted.rewritten, 0u);
  EXPECT_EQ(faulted.inserted, 0u);
  const rtl::InstanceResult result = run_faulted(faulted);
  EXPECT_TRUE(result.conflicts.empty());
  EXPECT_EQ(register_value(result, "R1"), rtl::RtValue::of(42));
}

TEST(FaultInjection, DropWritePreservesRegister) {
  // Dropping the write-back TRANS instance: the ADD result never reaches
  // R1.in, so R1 keeps its initial value and nothing conflicts.
  const FaultedDesign faulted = apply(fig1_design(), "drop R1.in @6\n");
  EXPECT_EQ(faulted.dropped, 1u);
  const rtl::InstanceResult result = run_faulted(faulted);
  EXPECT_TRUE(result.conflicts.empty());
  EXPECT_EQ(register_value(result, "R1"), rtl::RtValue::of(30));
  EXPECT_EQ(register_value(result, "R2"), rtl::RtValue::of(12));
}

TEST(FaultInjection, StuckDiscOneOperandPoisonsModule) {
  // R2's read fire vanishes, so the ADD sees one DISC operand — the paper's
  // operand discipline makes it compute ILLEGAL, which propagates into R1.
  const FaultedDesign faulted = apply(fig1_design(), "stuck-disc R2\n");
  EXPECT_EQ(faulted.dropped, 1u);
  const rtl::InstanceResult result = run_faulted(faulted);
  EXPECT_FALSE(result.conflicts.empty());
  EXPECT_TRUE(register_value(result, "R1").is_illegal());
}

TEST(FaultInjection, StuckDiscBothOperandsIsSilentIdle) {
  // Both operands DISC: the ADD idles (DISC out, per the paper), the write
  // fire carries DISC, and a DISC register input is "no load" — R1 keeps 30
  // with no conflict anywhere.
  const FaultedDesign faulted =
      apply(fig1_design(), "stuck-disc R1\nstuck-disc R2\n");
  EXPECT_EQ(faulted.dropped, 2u);
  const rtl::InstanceResult result = run_faulted(faulted);
  EXPECT_TRUE(result.conflicts.empty());
  EXPECT_EQ(register_value(result, "R1"), rtl::RtValue::of(30));
}

TEST(FaultInjection, CorruptModuleRewritesResult) {
  const FaultedDesign faulted =
      apply(fig1_design(), "corrupt-module ADD = 99\n");
  EXPECT_EQ(faulted.rewritten, 1u);
  const rtl::InstanceResult result = run_faulted(faulted);
  EXPECT_TRUE(result.conflicts.empty());
  EXPECT_EQ(register_value(result, "R1"), rtl::RtValue::of(99));
}

TEST(FaultInjection, ForceBusCreatesContention) {
  // A second contribution on B1 while R1 drives it: >= 2 non-DISC
  // contributions resolve to ILLEGAL, visible one phase later.
  const FaultedDesign faulted =
      apply(fig1_design(), "force-bus B1 = 99 @5:ra\n");
  EXPECT_EQ(faulted.inserted, 1u);
  const rtl::InstanceResult result = run_faulted(faulted);
  ASSERT_FALSE(result.conflicts.empty());
  EXPECT_EQ(result.conflicts[0], (rtl::Conflict{"B1", 5, rtl::Phase::kRb}));
  EXPECT_TRUE(register_value(result, "R1").is_illegal());
}

TEST(FaultInjection, StuckIllegalForcesContentionAtEveryRead) {
  // Two extra constant contributions ride along with R1's read fire, so the
  // resolved bus value is ILLEGAL regardless of R1's payload.
  const FaultedDesign faulted = apply(fig1_design(), "stuck-illegal R1\n");
  EXPECT_EQ(faulted.inserted, 2u);
  const rtl::InstanceResult result = run_faulted(faulted);
  ASSERT_FALSE(result.conflicts.empty());
  EXPECT_EQ(result.conflicts[0], (rtl::Conflict{"B1", 5, rtl::Phase::kRb}));
  EXPECT_TRUE(register_value(result, "R1").is_illegal());
}

TEST(FaultInjection, EveryFaultKindKeepsEngineEquivalence) {
  // The tentpole property, spot-checked on fig1: each faulted stream must
  // drive all three engines to identical registers, conflicts, and traces.
  const char* plans[] = {
      "drop R1.in @6\n",
      "stuck-disc R2\n",
      "stuck-disc R1\nstuck-disc R2\n",
      "corrupt-module ADD = 99\n",
      "force-bus B1 = 99 @5:ra\n",
      "stuck-illegal R1\n",
  };
  for (const char* plan : plans) {
    const verify::CheckReport report =
        verify::check_engine_equivalence(apply(fig1_design(), plan));
    EXPECT_TRUE(report.consistent()) << "plan:\n" << plan << report.to_text();
  }
}

TEST(FaultInjection, UnknownTargetsAreErrors) {
  const char* plans[] = {
      "stuck-disc NOPE\n",
      "stuck-illegal NOPE\n",
      "force-bus NOPE = 1 @5:ra\n",
      "corrupt-module NOPE = 1\n",
      "drop X.bogus @5\n",   // unknown endpoint suffix
      "stuck-disc R1 @8\n",  // step past cs_max = 7
  };
  for (const char* plan_text : plans) {
    common::DiagnosticBag diags;
    const FaultPlan plan = parse_fault_plan(plan_text, diags);
    ASSERT_FALSE(diags.has_errors()) << plan_text << diags.to_text();
    EXPECT_FALSE(apply_plan(fig1_design(), plan, diags).has_value())
        << plan_text;
    EXPECT_TRUE(diags.has_errors()) << plan_text;
  }
}

TEST(FaultInjection, MatchlessFaultIsAWarningNotAnError) {
  // R1 is only read at step 5; a fault pinned to step 3 hits nothing. That
  // is a plan worth flagging but not rejecting.
  common::DiagnosticBag diags;
  const FaultPlan plan = parse_fault_plan("stuck-disc R1 @3\n", diags);
  const auto faulted = apply_plan(fig1_design(), plan, diags);
  ASSERT_TRUE(faulted.has_value()) << diags.to_text();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_FALSE(diags.empty()) << "expected a matched-nothing warning";
  EXPECT_EQ(faulted->dropped, 0u);

  // A drop whose endpoint is well-formed but dangling behaves the same way.
  common::DiagnosticBag drop_diags;
  const FaultPlan drop_plan = parse_fault_plan("drop NOPE.in @5\n", drop_diags);
  const auto drop_faulted = apply_plan(fig1_design(), drop_plan, drop_diags);
  ASSERT_TRUE(drop_faulted.has_value()) << drop_diags.to_text();
  EXPECT_FALSE(drop_diags.has_errors());
  EXPECT_FALSE(drop_diags.empty()) << "expected a matched-nothing warning";
}

}  // namespace
}  // namespace ctrtl::fault
