#include "fault/plan.h"

#include <gtest/gtest.h>

namespace ctrtl::fault {
namespace {

TEST(FaultPlan, ParsesEveryKind) {
  common::DiagnosticBag diags;
  const FaultPlan plan = parse_fault_plan(
      "# a comment line\n"
      "stuck-disc R1\n"
      "stuck-illegal R2 @3\n"
      "\n"
      "force-bus B1 = 99 @5:ra\n"
      "drop R1.in @6:cr\n"
      "drop B2 @5\n"
      "corrupt-module ADD = -7\n",
      diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_text();
  ASSERT_EQ(plan.faults.size(), 6u);
  EXPECT_EQ(plan.faults[0],
            (FaultSpec{FaultKind::kStuckDisc, "R1", 0, std::nullopt, 0}));
  EXPECT_EQ(plan.faults[1],
            (FaultSpec{FaultKind::kStuckIllegal, "R2", 3, std::nullopt, 0}));
  EXPECT_EQ(plan.faults[2],
            (FaultSpec{FaultKind::kForceBus, "B1", 5, rtl::Phase::kRa, 99}));
  EXPECT_EQ(plan.faults[3],
            (FaultSpec{FaultKind::kDropTransfer, "R1.in", 6, rtl::Phase::kCr, 0}));
  EXPECT_EQ(plan.faults[4],
            (FaultSpec{FaultKind::kDropTransfer, "B2", 5, std::nullopt, 0}));
  EXPECT_EQ(plan.faults[5],
            (FaultSpec{FaultKind::kCorruptModule, "ADD", 0, std::nullopt, -7}));
}

TEST(FaultPlan, RoundTripsThroughText) {
  common::DiagnosticBag diags;
  const FaultPlan plan = parse_fault_plan(
      "stuck-disc R1 @2\n"
      "stuck-illegal R2\n"
      "force-bus B1 = -3 @1:wb\n"
      "drop ADD.in1 @4\n"
      "corrupt-module MUL = 12 @6\n",
      diags);
  ASSERT_FALSE(diags.has_errors()) << diags.to_text();
  common::DiagnosticBag reparse_diags;
  const FaultPlan reparsed = parse_fault_plan(to_text(plan), reparse_diags);
  EXPECT_FALSE(reparse_diags.has_errors()) << reparse_diags.to_text();
  EXPECT_EQ(reparsed, plan);
}

TEST(FaultPlan, MalformedLinesErrorAndAreSkipped) {
  // Each bad line must produce an error anchored to its line number while
  // the well-formed remainder still parses — no crash, no lost faults.
  common::DiagnosticBag diags;
  const FaultPlan plan = parse_fault_plan(
      "stuck-disc\n"                     // 1: missing target
      "stuck-disc R1 @5:ra\n"            // 2: phase not allowed
      "force-bus B1 = 4\n"               // 3: missing @step:phase
      "force-bus B1 = 4 @5:cm\n"         // 4: cm is not a transfer phase
      "force-bus B1 = x @5:ra\n"         // 5: value is not a number
      "drop B1\n"                        // 6: missing @step
      "corrupt-module ADD\n"             // 7: missing = value
      "frobnicate R1\n"                  // 8: unknown keyword
      "stuck-disc R1 @banana\n"          // 9: step is not a number
      "stuck-illegal R9 extra tokens\n"  // 10: trailing garbage
      "force-bus B1 = 2 @5:ra   # ok\n"  // 11: valid (comment stripped)
      "stuck-disc R2   # also ok\n",     // 12: valid
      diags);
  EXPECT_TRUE(diags.has_errors());
  ASSERT_EQ(diags.error_count(), 10u) << diags.to_text();
  ASSERT_EQ(diags.entries().size(), 10u) << "parse emits only errors";
  for (std::size_t i = 0; i < diags.entries().size(); ++i) {
    EXPECT_EQ(diags.entries()[i].location.line, i + 1) << diags.to_text();
  }
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(plan.faults[0],
            (FaultSpec{FaultKind::kForceBus, "B1", 5, rtl::Phase::kRa, 2}));
  EXPECT_EQ(plan.faults[1],
            (FaultSpec{FaultKind::kStuckDisc, "R2", 0, std::nullopt, 0}));
}

TEST(FaultPlan, EmptyAndCommentOnlyInputsAreValid) {
  common::DiagnosticBag diags;
  EXPECT_TRUE(parse_fault_plan("", diags).faults.empty());
  EXPECT_TRUE(parse_fault_plan("# nothing\n\n  \n# here\n", diags).faults.empty());
  EXPECT_TRUE(diags.empty()) << diags.to_text();
}

TEST(FaultPlan, KindNamesMatchGrammarKeywords) {
  EXPECT_EQ(to_string(FaultKind::kStuckDisc), "stuck-disc");
  EXPECT_EQ(to_string(FaultKind::kStuckIllegal), "stuck-illegal");
  EXPECT_EQ(to_string(FaultKind::kForceBus), "force-bus");
  EXPECT_EQ(to_string(FaultKind::kDropTransfer), "drop");
  EXPECT_EQ(to_string(FaultKind::kCorruptModule), "corrupt-module");
}

}  // namespace
}  // namespace ctrtl::fault
