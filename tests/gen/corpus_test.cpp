#include "gen/corpus.h"

#include <gtest/gtest.h>

#include <sstream>

#include "fault/plan.h"
#include "transfer/design.h"
#include "transfer/tuple.h"

namespace ctrtl::gen {
namespace {

std::string describe_failures(const CorpusReport& report) {
  std::ostringstream out;
  for (const CorpusFailure& failure : report.failures) {
    out << "seed " << failure.seed << " [" << failure.phase << "]:\n"
        << failure.detail;
    if (failure.shrunk_transfers != 0) {
      out << "shrunk reproduction: " << failure.shrunk_transfers
          << " transfers\n";
    }
  }
  return out.str();
}

TEST(Corpus, StandardFaultPlansCoverTwoKinds) {
  transfer::Design design;
  design.cs_max = 7;
  design.registers = {{"R1", 30}};
  design.buses = {{"B1"}};
  const auto plans = standard_fault_plans(design);
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].faults.front().kind, fault::FaultKind::kStuckDisc);
  EXPECT_EQ(plans[0].faults.front().target, "R1");
  EXPECT_EQ(plans[1].faults.front().kind, fault::FaultKind::kForceBus);
  EXPECT_EQ(plans[1].faults.front().target, "B1");

  const transfer::Design bare;  // no registers, no buses: nothing to fault
  EXPECT_TRUE(standard_fault_plans(bare).empty());
}

TEST(Corpus, CleanProfilesSweepWithZeroPredictedOutcomes) {
  for (const Profile profile :
       {Profile::kFabric, Profile::kRegfile, Profile::kPipeline}) {
    CorpusOptions options;
    options.first_seed = 1;
    options.count = 50;
    options.profile = profile;
    options.fault_every = 25;
    const CorpusReport report = run_corpus(options);
    EXPECT_TRUE(report.ok()) << to_string(profile) << ":\n"
                             << describe_failures(report);
    EXPECT_EQ(report.cases, 50u);
    EXPECT_EQ(report.predicted_conflicts, 0u);
    EXPECT_EQ(report.predicted_disc_sites, 0u);
    EXPECT_GT(report.faulted_runs, 0u);
  }
}

TEST(Corpus, ConflictProfilePredictsAtLeastOneConflictPerCase) {
  CorpusOptions options;
  options.first_seed = 1;
  options.count = 50;
  options.profile = Profile::kConflict;
  const CorpusReport report = run_corpus(options);
  EXPECT_TRUE(report.ok()) << describe_failures(report);
  EXPECT_EQ(report.cases, 50u);
  EXPECT_GE(report.predicted_conflicts, 50u);
}

// The corpus acceptance bar: >= 1000 generated designs, three engines
// byte-equal, every predicted ILLEGAL/DISC exactly matching the simulation
// (zero false positives or negatives), with every 10th case additionally
// swept under two fault kinds and re-predicted on the faulted stream.
TEST(Corpus, ThousandSeedMixedSweepAgreesEverywhere) {
  CorpusOptions options;
  options.first_seed = 1;
  options.count = 1000;
  options.profile = Profile::kMixed;
  options.verify_engines = true;
  options.check_oracle = true;
  options.fault_every = 10;
  const CorpusReport report = run_corpus(options);
  EXPECT_TRUE(report.ok()) << describe_failures(report);
  EXPECT_EQ(report.cases, 1000u);
  // 100 fault-swept cases x 2 standard plans.
  EXPECT_EQ(report.faulted_runs, 200u);
  // The mixed profile must exercise both clean and conflicting structure.
  EXPECT_GT(report.total_transfers, 1000u);
  EXPECT_GT(report.predicted_conflicts, 0u);
  EXPECT_GT(report.predicted_disc_sites, 0u);
}

TEST(Corpus, FailuresCarryTheReproducingSeed) {
  // A degenerate knob set cannot fail generation, but the report contract
  // (every failure names its seed) is load-bearing for reproduction; check
  // the bookkeeping fields that the CLI prints.
  CorpusOptions options;
  options.first_seed = 123;
  options.count = 5;
  options.profile = Profile::kMixed;
  const CorpusReport report = run_corpus(options);
  EXPECT_TRUE(report.ok()) << describe_failures(report);
  EXPECT_EQ(report.cases, 5u);
  EXPECT_GE(report.wall_ms, 0.0);
  EXPECT_GT(report.cases_per_second(), 0.0);
}

}  // namespace
}  // namespace ctrtl::gen
