#include "gen/generator.h"

#include <gtest/gtest.h>

#include "common/diagnostics.h"
#include "gen/oracle.h"
#include "iks/microcode.h"
#include "transfer/design.h"
#include "transfer/text_format.h"
#include "verify/equivalence.h"
#include "verify/oracle_check.h"

namespace ctrtl::gen {
namespace {

constexpr Profile kAllProfiles[] = {Profile::kFabric, Profile::kRegfile,
                                    Profile::kPipeline, Profile::kConflict,
                                    Profile::kMixed};
constexpr Profile kCleanProfiles[] = {Profile::kFabric, Profile::kRegfile,
                                      Profile::kPipeline};

TEST(Generator, ProfileNamesRoundTrip) {
  for (const Profile profile : kAllProfiles) {
    Profile parsed = Profile::kMixed;
    ASSERT_TRUE(parse_profile(to_string(profile), parsed));
    EXPECT_EQ(parsed, profile);
  }
  Profile parsed = Profile::kMixed;
  EXPECT_FALSE(parse_profile("nonesuch", parsed));
}

TEST(Generator, SameSeedYieldsByteIdenticalCases) {
  for (const Profile profile : kAllProfiles) {
    for (std::uint64_t seed : {1u, 7u, 42u}) {
      GeneratorConfig config;
      config.seed = seed;
      config.profile = profile;
      const GeneratedCase first = generate(config);
      const GeneratedCase second = generate(config);
      EXPECT_EQ(transfer::to_text(first.design),
                transfer::to_text(second.design));
      EXPECT_EQ(first.microcode.to_text(), second.microcode.to_text());
      EXPECT_EQ(first.profile, second.profile);
      EXPECT_EQ(first.oracle.conflicts, second.oracle.conflicts);
      EXPECT_EQ(first.oracle.disc_sites, second.oracle.disc_sites);
    }
  }
}

TEST(Generator, EveryProfileValidatesWithinBounds) {
  for (const Profile profile : kAllProfiles) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      GeneratorConfig config;
      config.seed = seed;
      config.profile = profile;
      const GeneratedCase generated = generate(config);
      common::DiagnosticBag diags;
      EXPECT_TRUE(transfer::validate(generated.design, diags))
          << to_string(profile) << " seed " << seed << ":\n"
          << diags.to_text();
      EXPECT_GE(generated.design.cs_max, 1u);
      EXPECT_FALSE(generated.design.registers.empty());
      // Conflict injections may exceed the clean budget by a bounded amount.
      EXPECT_LE(generated.design.transfers.size(), config.max_transfers + 8);
      EXPECT_EQ(generated.seed, seed);
    }
  }
}

TEST(Generator, MicrocodeTranslationReproducesTheSchedule) {
  // The schedule is produced by translating the microprogram, so re-running
  // the translator over the emitted program must reproduce it exactly.
  for (const Profile profile : kAllProfiles) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      GeneratorConfig config;
      config.seed = seed;
      config.profile = profile;
      const GeneratedCase generated = generate(config);
      const auto retranslated = iks::translate_microcode(
          generated.microcode.program, generated.microcode.maps,
          generated.design);
      EXPECT_EQ(retranslated, generated.design.transfers)
          << to_string(profile) << " seed " << seed;
    }
  }
}

TEST(Generator, CleanProfilesPredictNoConflictAndNoDisc) {
  for (const Profile profile : kCleanProfiles) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
      GeneratorConfig config;
      config.seed = seed;
      config.profile = profile;
      const GeneratedCase generated = generate(config);
      EXPECT_TRUE(generated.oracle.conflicts.empty())
          << to_string(profile) << " seed " << seed;
      EXPECT_TRUE(generated.oracle.disc_sites.empty())
          << to_string(profile) << " seed " << seed;
    }
  }
}

TEST(Generator, ConflictProfileAlwaysPredictsAConflict) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    GeneratorConfig config;
    config.seed = seed;
    config.profile = Profile::kConflict;
    const GeneratedCase generated = generate(config);
    EXPECT_FALSE(generated.oracle.conflicts.empty()) << "seed " << seed;
  }
}

TEST(Generator, ZeroTransferBudgetIsDegenerateButSound) {
  GeneratorConfig config;
  config.seed = 3;
  config.max_transfers = 0;
  for (const Profile profile : kCleanProfiles) {
    config.profile = profile;
    const GeneratedCase generated = generate(config);
    EXPECT_TRUE(generated.design.transfers.empty());
    EXPECT_TRUE(generated.oracle.conflicts.empty());
    EXPECT_TRUE(generated.oracle.disc_sites.empty());
    const verify::CheckReport engines =
        verify::check_engine_equivalence(generated.design);
    EXPECT_TRUE(engines.consistent()) << engines.to_text();
    const verify::CheckReport oracle =
        verify::check_prediction(generated.design, generated.oracle);
    EXPECT_TRUE(oracle.consistent()) << oracle.to_text();
  }
}

TEST(Generator, ShrinkFindsAOneMinimalConflictingCore) {
  GeneratorConfig config;
  config.seed = 11;
  config.profile = Profile::kConflict;
  const GeneratedCase generated = generate(config);
  const auto still_conflicts = [](const transfer::Design& candidate) {
    try {
      return !predict_outcomes(candidate).conflicts.empty();
    } catch (const std::exception&) {
      return false;
    }
  };
  ASSERT_TRUE(still_conflicts(generated.design));

  const transfer::Design minimal = shrink(generated.design, still_conflicts);
  EXPECT_TRUE(still_conflicts(minimal));
  EXPECT_LE(minimal.transfers.size(), generated.design.transfers.size());
  EXPECT_GE(minimal.transfers.size(), 1u);
  // 1-minimality: removing any single remaining transfer loses the conflict
  // (or invalidates the design, which shrink never does).
  for (std::size_t i = 0; i < minimal.transfers.size(); ++i) {
    transfer::Design smaller = minimal;
    smaller.transfers.erase(smaller.transfers.begin() +
                            static_cast<std::ptrdiff_t>(i));
    common::DiagnosticBag diags;
    if (transfer::validate(smaller, diags)) {
      EXPECT_FALSE(still_conflicts(smaller)) << "removable transfer " << i;
    }
  }
}

}  // namespace
}  // namespace ctrtl::gen
