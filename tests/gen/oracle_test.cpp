#include "gen/oracle.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "fault/inject.h"
#include "fault/plan.h"
#include "transfer/design.h"
#include "transfer/tuple.h"
#include "verify/oracle_check.h"

namespace ctrtl::gen {
namespace {

using transfer::Design;
using transfer::Endpoint;
using transfer::ModuleKind;
using transfer::OperandPath;
using transfer::RegisterTransfer;
using verify::DiscSite;

// The paper's figure 1: (R1,B1,R2,B2,5,ADD,6,B1,R1), CS_MAX = 7. Clean run
// computes R1 := R1 + R2 = 42 with no conflict and no DISC resolution.
Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

bool has_disc_site(const verify::OutcomePrediction& oracle,
                   const DiscSite& site) {
  return std::find(oracle.disc_sites.begin(), oracle.disc_sites.end(), site) !=
         oracle.disc_sites.end();
}

fault::FaultedDesign apply(const Design& design, const std::string& plan_text) {
  common::DiagnosticBag diags;
  const fault::FaultPlan plan = fault::parse_fault_plan(plan_text, diags);
  auto faulted = fault::apply_plan(design, plan, diags);
  EXPECT_TRUE(faulted.has_value()) << diags.to_text();
  return *faulted;
}

TEST(ConflictOracle, CleanFig1PredictsNothing) {
  const Design design = fig1_design();
  const verify::OutcomePrediction oracle = predict_outcomes(design);
  EXPECT_TRUE(oracle.conflicts.empty());
  EXPECT_TRUE(oracle.disc_sites.empty());
  EXPECT_EQ(oracle.registers.at("R1"), rtl::RtValue::Kind::kValue);
  EXPECT_EQ(oracle.registers.at("R2"), rtl::RtValue::Kind::kValue);
  const verify::CheckReport report = verify::check_prediction(design, oracle);
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

TEST(ConflictOracle, DoubleBookedBusPredictsExactConflict) {
  // A second read of R2 routed over B1 in step 5 double-books the bus:
  // two non-DISC contributions drive B1 at ra, so it resolves ILLEGAL at rb.
  Design design = fig1_design();
  design.modules.push_back({"ADD2", ModuleKind::kAdd, 1});
  design.transfers.push_back(
      RegisterTransfer::full("R2", "B1", "R2", "B2", 5, "ADD2", 6, "B2", "R2"));
  common::DiagnosticBag diags;
  ASSERT_TRUE(transfer::validate(design, diags)) << diags.to_text();

  const verify::OutcomePrediction oracle = predict_outcomes(design);
  ASSERT_FALSE(oracle.conflicts.empty());
  EXPECT_EQ(oracle.conflicts.front(), (rtl::Conflict{"B1", 5, rtl::Phase::kRb}));
  // The ILLEGAL latches: both destination registers end up poisoned.
  EXPECT_EQ(oracle.registers.at("R1"), rtl::RtValue::Kind::kIllegal);
  EXPECT_EQ(oracle.registers.at("R2"), rtl::RtValue::Kind::kIllegal);
  const verify::CheckReport report = verify::check_prediction(design, oracle);
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

TEST(ConflictOracle, UninitializedReadPredictsDiscSite) {
  // U has no initial value: its read fire contributes DISC, so B1 is driven
  // yet resolves DISC at (5, rb). The ADD then sees one operand present and
  // one missing — the operand discipline makes it ILLEGAL, which cascades
  // into R1 by latch time.
  Design design = fig1_design();
  design.registers.push_back({"U", std::nullopt});
  design.transfers[0].operand_a =
      OperandPath{Endpoint::register_out("U"), "B1"};
  common::DiagnosticBag diags;
  ASSERT_TRUE(transfer::validate(design, diags)) << diags.to_text();

  const verify::OutcomePrediction oracle = predict_outcomes(design);
  ASSERT_FALSE(oracle.disc_sites.empty());
  EXPECT_TRUE(has_disc_site(oracle, DiscSite{"B1", 5, rtl::Phase::kRb}));
  EXPECT_EQ(oracle.registers.at("R1"), rtl::RtValue::Kind::kIllegal);
  EXPECT_EQ(oracle.registers.at("U"), rtl::RtValue::Kind::kDisc);
  const verify::CheckReport report = verify::check_prediction(design, oracle);
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

TEST(ConflictOracle, FaultInducedOnlyConflictIsPredictedExactly) {
  // Edge case demanded by the corpus contract: a design whose ONLY conflict
  // is fault-induced. Clean fig1 predicts nothing; under a forced extra bus
  // contribution the re-predicted (faulted) stream must carry exactly the
  // conflict the engines observe — at (5, rb) on B1, where the forced value
  // contends with R1's read fire.
  const Design design = fig1_design();
  ASSERT_TRUE(predict_outcomes(design).conflicts.empty());

  const fault::FaultedDesign forced =
      apply(design, "force-bus B1 = 99 @5:ra\n");
  const verify::OutcomePrediction oracle = predict_outcomes(forced);
  // The root conflict is B1 at (5, rb); the ILLEGAL then cascades through
  // the ADD and the write-back path, each transition getting its own record
  // (exactly as the engines report them). Sorted by (step, phase), the root
  // comes first.
  ASSERT_FALSE(oracle.conflicts.empty());
  EXPECT_EQ(oracle.conflicts.front(), (rtl::Conflict{"B1", 5, rtl::Phase::kRb}));
  const verify::CheckReport report = verify::check_prediction(forced, oracle);
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

TEST(ConflictOracle, StuckIllegalFaultPredictedExactly) {
  // Second fault kind over the same clean design: stuck-illegal joins every
  // read fire of R1 with two extra contributions, so the conflict again
  // appears at (5, rb) on B1 — and nowhere else.
  const fault::FaultedDesign stuck =
      apply(fig1_design(), "stuck-illegal R1\n");
  const verify::OutcomePrediction oracle = predict_outcomes(stuck);
  ASSERT_FALSE(oracle.conflicts.empty());
  EXPECT_EQ(oracle.conflicts.front(), (rtl::Conflict{"B1", 5, rtl::Phase::kRb}));
  const verify::CheckReport report = verify::check_prediction(stuck, oracle);
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

TEST(ConflictOracle, StuckDiscFaultAgreesWithSimulation) {
  // stuck-disc drops R2's read fire: B2 is no longer driven (so no DISC
  // site there), the ADD sees a vanished operand and computes ILLEGAL.
  const fault::FaultedDesign stuck = apply(fig1_design(), "stuck-disc R2\n");
  const verify::OutcomePrediction oracle = predict_outcomes(stuck);
  EXPECT_EQ(oracle.registers.at("R1"), rtl::RtValue::Kind::kIllegal);
  const verify::CheckReport report = verify::check_prediction(stuck, oracle);
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

TEST(ConflictOracle, ZeroTransferModuleDesignSurvivesEveryLayer) {
  // Edge case demanded by the corpus contract: a module with no transfers at
  // all. The oracle must predict nothing, classify registers from their
  // initial values, and the comparison harness must run the empty stream
  // through the engines without tripping.
  Design design;
  design.name = "empty";
  design.cs_max = 4;
  design.registers = {{"R1", 30}, {"U", std::nullopt}};
  design.buses = {{"B1"}};
  design.modules = {{"ADD", ModuleKind::kAdd, 1}};
  common::DiagnosticBag diags;
  ASSERT_TRUE(transfer::validate(design, diags)) << diags.to_text();

  const verify::OutcomePrediction oracle = predict_outcomes(design);
  EXPECT_TRUE(oracle.conflicts.empty());
  EXPECT_TRUE(oracle.disc_sites.empty());
  EXPECT_EQ(oracle.registers.at("R1"), rtl::RtValue::Kind::kValue);
  EXPECT_EQ(oracle.registers.at("U"), rtl::RtValue::Kind::kDisc);
  const verify::CheckReport report = verify::check_prediction(design, oracle);
  EXPECT_TRUE(report.consistent()) << report.to_text();
}

TEST(ConflictOracle, InputsActAsPresenceSet) {
  // An external input operand: provided, the case is clean; unprovided, the
  // input reads DISC and the bus it drives is a predicted DISC site.
  Design design;
  design.name = "with_input";
  design.cs_max = 5;
  design.registers = {{"R1", 30}, {"R2", 12}};
  design.buses = {{"B1"}, {"B2"}};
  design.modules = {{"ADD", ModuleKind::kAdd, 1}};
  design.inputs = {{"X"}};
  RegisterTransfer t =
      RegisterTransfer::full("R2", "B2", "R2", "B2", 2, "ADD", 3, "B1", "R1");
  t.operand_a = OperandPath{Endpoint::input("X"), "B1"};
  design.transfers = {t};
  common::DiagnosticBag diags;
  ASSERT_TRUE(transfer::validate(design, diags)) << diags.to_text();

  const verify::OutcomePrediction provided =
      predict_outcomes(design, {{"X", 5}});
  EXPECT_TRUE(provided.conflicts.empty());
  EXPECT_TRUE(provided.disc_sites.empty());
  EXPECT_EQ(provided.registers.at("R1"), rtl::RtValue::Kind::kValue);
  const verify::CheckReport with_input =
      verify::check_prediction(design, provided, {{"X", 5}});
  EXPECT_TRUE(with_input.consistent()) << with_input.to_text();

  const verify::OutcomePrediction missing = predict_outcomes(design);
  ASSERT_FALSE(missing.disc_sites.empty());
  EXPECT_TRUE(has_disc_site(missing, DiscSite{"B1", 2, rtl::Phase::kRb}));
  EXPECT_EQ(missing.registers.at("R1"), rtl::RtValue::Kind::kIllegal);
  const verify::CheckReport without_input =
      verify::check_prediction(design, missing);
  EXPECT_TRUE(without_input.consistent()) << without_input.to_text();
}

TEST(ConflictOracle, RejectsInvalidDesign) {
  Design design = fig1_design();
  design.transfers[0].write_step = 99;  // beyond cs_max, fails validation
  EXPECT_THROW((void)predict_outcomes(design), std::invalid_argument);
}

}  // namespace
}  // namespace ctrtl::gen
