#include <gtest/gtest.h>

#include "transfer/build.h"
#include "verify/random_design.h"
#include "verify/trace.h"
#include "verify/vcd.h"

namespace ctrtl {
namespace {

// Simulation must be fully deterministic: the same design, built and run
// twice, produces byte-identical event traces (the kernel resolves all
// ordering by registration order, never by pointers or hashing).

class Determinism : public ::testing::TestWithParam<int> {};

TEST_P(Determinism, IdenticalTracesAcrossRuns) {
  verify::RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(GetParam()) + 8000;
  options.num_transfers = 5 + static_cast<unsigned>(GetParam() % 6);
  options.use_alu = GetParam() % 2 == 0;
  options.inject_conflicts = GetParam() % 3 == 0;
  const transfer::Design design = verify::random_design(options);

  const auto run_once = [&design] {
    auto model = transfer::build_model(design);
    verify::TraceRecorder recorder(model->scheduler());
    model->run();
    return verify::to_vcd(recorder.events());
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second) << "seed " << GetParam();
}

TEST_P(Determinism, DispatchModeTracesDeterministicToo) {
  verify::RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(GetParam()) + 8500;
  options.num_transfers = 5;
  const transfer::Design design = verify::random_design(options);

  const auto run_once = [&design] {
    auto model = transfer::build_model(design, rtl::TransferMode::kDispatch);
    verify::TraceRecorder recorder(model->scheduler());
    model->run();
    return verify::to_vcd(recorder.events());
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Determinism, ::testing::Range(1, 11));

}  // namespace
}  // namespace ctrtl
