#include <gtest/gtest.h>

#include "rtl/modules.h"
#include "transfer/build.h"
#include "verify/random_design.h"
#include "verify/semantics.h"

namespace ctrtl {
namespace {

// Soak tests: larger-than-usual models through both execution modes and the
// reference semantics, verifying the invariants hold at scale (sizes are
// kept moderate so ctest stays fast; the benches cover bigger sweeps).

TEST(Scale, ThousandTransferDispatchModel) {
  verify::RandomDesignOptions options;
  options.seed = 424242;
  options.num_transfers = 1000;
  options.num_registers = 24;
  options.num_buses = 8;
  const transfer::Design design = verify::random_design(options);

  auto model = transfer::build_model(design, rtl::TransferMode::kDispatch);
  const rtl::RunResult result = model->run();
  EXPECT_TRUE(result.conflict_free());
  // The delta-cycle budget holds at any size (one trailing delta allowed
  // for the final register-output update).
  const std::uint64_t expected =
      static_cast<std::uint64_t>(design.cs_max) * rtl::kPhasesPerStep;
  EXPECT_GE(result.stats.delta_cycles, expected);
  EXPECT_LE(result.stats.delta_cycles, expected + 1);

  // And the reference semantics still agrees on every register.
  const verify::EvalResult reference = verify::evaluate(design);
  for (const transfer::RegisterDecl& reg : design.registers) {
    EXPECT_EQ(model->find_register(reg.name)->value(),
              reference.registers.at(reg.name))
        << reg.name;
  }
}

TEST(Scale, LongRunControllerExactness) {
  kernel::Scheduler sched;
  rtl::Controller controller(sched, 50000);
  sched.run();
  EXPECT_EQ(sched.stats().delta_cycles, 300000u);
  EXPECT_EQ(controller.cs().read(), 50000u);
}

TEST(Scale, ManyRegistersManyModules) {
  rtl::RtModel model(20);
  std::vector<rtl::Register*> regs;
  for (int i = 0; i < 64; ++i) {
    regs.push_back(&model.add_register("R" + std::to_string(i),
                                       rtl::RtValue::of(i)));
  }
  std::vector<rtl::Module*> adders;
  for (int i = 0; i < 16; ++i) {
    adders.push_back(&model.add_module<rtl::FixedFunctionModule>(
        "ADD" + std::to_string(i), 2u, 1u,
        [](std::span<const std::int64_t> v) { return v[0] + v[1]; }));
  }
  // Step s: adder i sums R(2i) + R(2i+1) -> R(32+i), all 16 in parallel —
  // the phase wheel parallelism the handshake model cannot express.
  for (int i = 0; i < 16; ++i) {
    auto& ba = model.add_bus("BA" + std::to_string(i));
    auto& bb = model.add_bus("BB" + std::to_string(i));
    auto& bw = model.add_bus("BW" + std::to_string(i));
    model.add_transfer(1, rtl::Phase::kRa, regs[2 * i]->out(), ba);
    model.add_transfer(1, rtl::Phase::kRb, ba, adders[i]->input(0));
    model.add_transfer(1, rtl::Phase::kRa, regs[2 * i + 1]->out(), bb);
    model.add_transfer(1, rtl::Phase::kRb, bb, adders[i]->input(1));
    model.add_transfer(2, rtl::Phase::kWa, adders[i]->out(), bw);
    model.add_transfer(2, rtl::Phase::kWb, bw, regs[32 + i]->in());
  }
  const rtl::RunResult result = model.run();
  EXPECT_TRUE(result.conflict_free());
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(regs[32 + i]->value(), rtl::RtValue::of(4 * i + 1))
        << "adder " << i;
  }
  // 16 parallel transfers, still 6 deltas per step.
  EXPECT_GE(result.stats.delta_cycles, 120u);
  EXPECT_LE(result.stats.delta_cycles, 121u);
}

}  // namespace
}  // namespace ctrtl
