#include <gtest/gtest.h>

#include "baseline/clocked_rtl.h"
#include "baseline/handshake.h"
#include "clocked/model.h"
#include "transfer/build.h"
#include "transfer/conflict.h"
#include "verify/equivalence.h"
#include "verify/random_design.h"
#include "vhdl/elaborator.h"
#include "vhdl/emitter.h"

namespace ctrtl {
namespace {

// The grand tour: one design pushed through EVERY layer of the library,
// all observations agreeing. This is the closest thing to the paper's
// thesis statement — one abstract RT model, many consistent views.
//
//   Design --(build_model)--------> clock-free simulation
//          --(verify::evaluate)---> formal reference semantics
//          --(emit_vhdl + parse +
//             elaborate)----------> interpreted VHDL simulation
//          --(plan_translation)---> clocked model + clocked RTL baseline
//          --(HandshakeModel)-----> handshake-style abstract simulation

class FullChain : public ::testing::TestWithParam<int> {};

TEST_P(FullChain, AllSevenViewsAgree) {
  verify::RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(GetParam()) + 9000;
  options.num_transfers = 4 + static_cast<unsigned>(GetParam() % 5);
  // ALU op ports are outside the VHDL emitter's cell library; stay with
  // fixed-function units so every layer can execute the same design. The
  // emitted VHDL carries the paper's in-band Integer encoding, so payloads
  // must remain naturals (negative values collide with DISC/ILLEGAL).
  options.use_alu = false;
  options.naturals_only = true;
  const transfer::Design design = verify::random_design(options);
  ASSERT_TRUE(transfer::analyze(design).clean());

  // 1. Clock-free simulation (paper-faithful TRANS processes).
  auto abstract = transfer::build_model(design);
  const rtl::RunResult abstract_result = abstract->run();
  ASSERT_TRUE(abstract_result.conflict_free());

  // 2. Dispatcher ablation.
  auto dispatched = transfer::build_model(design, rtl::TransferMode::kDispatch);
  dispatched->run();

  // 3. Formal reference semantics.
  const verify::EvalResult reference = verify::evaluate(design);

  // 4. Interpreted VHDL of the emitted subset source.
  common::DiagnosticBag diags;
  auto vhdl_model =
      vhdl::load_model(vhdl::emit_vhdl(design), vhdl::vhdl_name(design.name), diags);
  ASSERT_NE(vhdl_model, nullptr) << diags.to_text();
  vhdl_model->run();

  // 5. Clocked single-process model; 6. clocked RTL baseline.
  const clocked::TranslationPlan plan = clocked::plan_translation(design);
  clocked::ClockedModel clocked_model(plan);
  clocked_model.run();
  baseline::ClockedRtlSim clocked_rtl(plan);
  clocked_rtl.run();

  // 7. Handshake-style abstract model.
  baseline::HandshakeModel handshake(design);
  handshake.run();

  for (const transfer::RegisterDecl& reg : design.registers) {
    const rtl::RtValue expected = abstract->find_register(reg.name)->value();
    EXPECT_EQ(dispatched->find_register(reg.name)->value(), expected)
        << "dispatch: " << reg.name;
    EXPECT_EQ(reference.registers.at(reg.name), expected)
        << "semantics: " << reg.name;
    EXPECT_EQ(rtl::RtValue::from_inband(
                  vhdl_model->read(vhdl::vhdl_name(reg.name) + "_out")),
              expected)
        << "vhdl: " << reg.name;
    EXPECT_EQ(clocked_model.register_value(reg.name), expected)
        << "clocked: " << reg.name;
    EXPECT_EQ(clocked_rtl.register_value(reg.name), expected)
        << "clocked rtl: " << reg.name;
    EXPECT_EQ(handshake.register_value(reg.name), expected)
        << "handshake: " << reg.name;
  }

  // Delta-time invariants: clock-free views burn no physical time; the
  // clocked ones do.
  EXPECT_EQ(abstract->scheduler().now().fs, 0u);
  EXPECT_EQ(vhdl_model->scheduler().now().fs, 0u);
  EXPECT_EQ(handshake.scheduler().now().fs, 0u);
  EXPECT_GT(clocked_model.scheduler().now().fs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullChain, ::testing::Range(1, 11));

}  // namespace
}  // namespace ctrtl
