#include <gtest/gtest.h>

#include "transfer/build.h"
#include "verify/equivalence.h"
#include "verify/random_design.h"
#include "verify/trace.h"

namespace ctrtl {
namespace {

// The dispatcher execution mode (rtl::TransferMode::kDispatch) must be
// observationally identical to the paper-faithful process-per-transfer
// mode: same register values, same conflicts at the same (step, phase),
// same delta-cycle count, same register-write trace.

class DispatchEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DispatchEquivalence, CleanDesignsMatch) {
  verify::RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(GetParam()) + 4000;
  options.num_transfers = 4 + static_cast<unsigned>(GetParam() % 9);
  options.use_alu = GetParam() % 2 == 0;
  const transfer::Design design = verify::random_design(options);

  auto faithful =
      transfer::build_model(design, rtl::TransferMode::kProcessPerTransfer);
  verify::RegisterWriteTrace faithful_trace(*faithful);
  const rtl::RunResult faithful_result = faithful->run();

  auto dispatched = transfer::build_model(design, rtl::TransferMode::kDispatch);
  verify::RegisterWriteTrace dispatched_trace(*dispatched);
  const rtl::RunResult dispatched_result = dispatched->run();

  EXPECT_EQ(faithful_result.stats.delta_cycles,
            dispatched_result.stats.delta_cycles);
  EXPECT_EQ(faithful_result.conflicts, dispatched_result.conflicts);
  for (const transfer::RegisterDecl& reg : design.registers) {
    EXPECT_EQ(faithful->find_register(reg.name)->value(),
              dispatched->find_register(reg.name)->value())
        << "register " << reg.name << " (seed " << GetParam() << ")";
  }
  EXPECT_TRUE(verify::compare_write_traces(faithful_trace.writes(),
                                           dispatched_trace.writes())
                  .consistent());
}

TEST_P(DispatchEquivalence, ConflictingDesignsMatch) {
  verify::RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(GetParam()) + 5000;
  options.num_transfers = 4 + static_cast<unsigned>(GetParam() % 6);
  options.inject_conflicts = true;
  const transfer::Design design = verify::random_design(options);

  auto faithful =
      transfer::build_model(design, rtl::TransferMode::kProcessPerTransfer);
  const rtl::RunResult faithful_result = faithful->run();
  auto dispatched = transfer::build_model(design, rtl::TransferMode::kDispatch);
  const rtl::RunResult dispatched_result = dispatched->run();

  ASSERT_FALSE(faithful_result.conflicts.empty());
  EXPECT_EQ(faithful_result.conflicts, dispatched_result.conflicts)
      << "conflicts must be located identically (seed " << GetParam() << ")";
  for (const transfer::RegisterDecl& reg : design.registers) {
    EXPECT_EQ(faithful->find_register(reg.name)->value(),
              dispatched->find_register(reg.name)->value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatchEquivalence, ::testing::Range(1, 21));

TEST(DispatchMode, TransferCountTracked) {
  verify::RandomDesignOptions options;
  options.seed = 1;
  options.num_transfers = 5;
  const transfer::Design design = verify::random_design(options);
  auto faithful =
      transfer::build_model(design, rtl::TransferMode::kProcessPerTransfer);
  auto dispatched = transfer::build_model(design, rtl::TransferMode::kDispatch);
  EXPECT_EQ(faithful->transfer_count(), dispatched->transfer_count());
  EXPECT_EQ(faithful->transfers().size(), faithful->transfer_count());
  EXPECT_TRUE(dispatched->transfers().empty()) << "no TRANS processes in dispatch mode";
  EXPECT_EQ(dispatched->transfer_mode(), rtl::TransferMode::kDispatch);
}

}  // namespace
}  // namespace ctrtl
