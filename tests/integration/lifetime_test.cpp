#include <gtest/gtest.h>

#include "baseline/clocked_rtl.h"
#include "baseline/handshake.h"
#include "clocked/model.h"
#include "transfer/build.h"
#include "verify/random_design.h"

namespace ctrtl {
namespace {

// Regression guards for a dangling-pointer bug class: every executable
// model must own (copy) whatever it needs from the Design/plan it was
// constructed from, so construction from *temporaries* is safe. (An ASan
// run caught HandshakeModel keeping ModuleDecl pointers into a dead
// temporary; these tests pin the contract for all models.)

transfer::Design make_design() {
  verify::RandomDesignOptions options;
  options.seed = 12345;
  options.num_transfers = 5;
  return verify::random_design(options);
}

TEST(Lifetime, HandshakeModelFromTemporaryDesign) {
  baseline::HandshakeModel model(make_design());  // temporary dies here
  model.run();
  SUCCEED();
}

TEST(Lifetime, ClockedModelFromTemporaryPlan) {
  clocked::ClockedModel model(clocked::plan_translation(make_design()));
  model.run();
  SUCCEED();
}

TEST(Lifetime, ClockedRtlSimFromTemporaryPlan) {
  baseline::ClockedRtlSim sim(clocked::plan_translation(make_design()));
  sim.run();
  SUCCEED();
}

TEST(Lifetime, ModelsOutliveTheirResults) {
  // Values read after the design and every intermediate is gone.
  std::unique_ptr<rtl::RtModel> model;
  {
    const transfer::Design design = make_design();
    model = transfer::build_model(design);
  }
  const rtl::RunResult result = model->run();
  EXPECT_GE(result.stats.delta_cycles, 6u);
  SUCCEED();
}

TEST(Lifetime, AllModelsAgreeWhenBuiltFromTemporaries) {
  auto abstract = transfer::build_model(make_design());
  abstract->run();
  baseline::HandshakeModel handshake(make_design());
  handshake.run();
  clocked::ClockedModel clocked_model(clocked::plan_translation(make_design()));
  clocked_model.run();
  const transfer::Design reference = make_design();
  for (const transfer::RegisterDecl& reg : reference.registers) {
    const rtl::RtValue expected = abstract->find_register(reg.name)->value();
    EXPECT_EQ(handshake.register_value(reg.name), expected) << reg.name;
    EXPECT_EQ(clocked_model.register_value(reg.name), expected) << reg.name;
  }
}

}  // namespace
}  // namespace ctrtl
