// ctrtl_serve — persistent simulation service with a content-hashed design
// cache, speaking the ctrtl-serve/2 wire protocol (docs/SERVICE.md) over a
// Unix-domain socket.
//
// Usage:
//   ctrtl_serve serve    --socket=PATH [--workers=N] [--lane-workers=N]
//                        [--queue=N] [--cache=N] [--lane-block=N]
//                        [--snapshot=PATH] [--shed=N] [--retry-after-ms=N]
//   ctrtl_serve submit   --socket=PATH <file.rtd> [--job=ID] [--instances=N]
//                        [--set input=value ...] [--fault-plan=FILE]
//                        [--max-cycles=N] [--max-delta-cycles=N]
//                        [--deadline-ms=N] [--priority=low|normal]
//                        [--timeout-ms=N] [--retry=N]
//   ctrtl_serve stats    --socket=PATH
//   ctrtl_serve ping     --socket=PATH
//   ctrtl_serve shutdown --socket=PATH
//
// `serve` runs in the foreground until a client sends SHUTDOWN (or SIGINT/
// SIGTERM). `submit` sends one job, streams the per-instance reports, and
// prints each instance's conflicts and final register values to stdout in
// exactly the format `ctrtl_design --simulate` uses — job-control chatter
// goes to stderr, so a one-instance submit is byte-comparable against
// `ctrtl_design` output filtered to its result lines (the CI smoke does
// precisely that diff).
//
// Exit status mirrors ctrtl_design: 0 clean, 1 usage/connection errors,
// 2 job error reply or instance error, 3 conflicts observed, 4 watchdog.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "serve/client.h"
#include "serve/server.h"

namespace {

ctrtl::serve::ServeServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) {
    g_server->stop();
  }
}

void usage() {
  std::fprintf(
      stderr,
      "usage: ctrtl_serve <serve|submit|stats|ping|shutdown> --socket=PATH\n"
      "  serve     [--workers=N] [--lane-workers=N] [--queue=N] [--cache=N]\n"
      "            [--lane-block=N] [--snapshot=PATH] [--shed=N]\n"
      "            [--retry-after-ms=N]   run the service in the foreground\n"
      "  submit    <file.rtd> [--job=ID] [--instances=N] [--set in=val ...]\n"
      "            [--fault-plan=FILE] [--max-cycles=N] [--max-delta-cycles=N]\n"
      "            [--deadline-ms=N] [--priority=low|normal]\n"
      "            [--timeout-ms=N (0 = no read timeout)] [--retry=N]\n"
      "  stats     print service counters\n"
      "  ping      check liveness (HELLO exchange)\n"
      "  shutdown  stop the server\n");
}

bool parse_count(const std::string& arg, const char* flag, std::uint64_t* out) {
  const std::string text = arg.substr(std::strlen(flag));
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || *out == 0) {
    std::fprintf(stderr, "%s expects a positive count, got '%s'\n", flag,
                 text.c_str());
    return false;
  }
  return true;
}

/// Like parse_count, but 0 is a legal value (used by flags where zero
/// means "disabled": --timeout-ms, --retry-after-ms).
bool parse_count_zero_ok(const std::string& arg, const char* flag,
                         std::uint64_t* out) {
  const std::string text = arg.substr(std::strlen(flag));
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    std::fprintf(stderr, "%s expects a count, got '%s'\n", flag, text.c_str());
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  *out = buffer.str();
  return true;
}

int run_serve(const std::string& socket_path,
              const ctrtl::serve::ServiceOptions& service) {
  ctrtl::serve::ServerOptions options;
  options.socket_path = socket_path;
  options.service = service;
  try {
    ctrtl::serve::ServeServer server(options);
    server.start();
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::printf("ctrtl_serve: listening on %s (workers %zu, queue %zu, "
                "cache %zu)\n",
                socket_path.c_str(), service.workers, service.queue_capacity,
                service.cache_capacity);
    std::fflush(stdout);
    server.wait();
    g_server = nullptr;
    std::printf("ctrtl_serve: stopped\n");
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ctrtl_serve: %s\n", error.what());
    return 1;
  }
}

int run_submit(const std::string& socket_path,
               const ctrtl::serve::JobRequest& request,
               std::uint64_t timeout_ms, std::uint64_t retry_attempts) {
  using ctrtl::serve::JobOutcome;
  try {
    ctrtl::serve::ServeClient client;
    client.set_read_timeout_ms(timeout_ms);
    client.connect(socket_path);
    ctrtl::serve::RetryPolicy policy;
    policy.max_attempts = static_cast<std::size_t>(retry_attempts);
    JobOutcome outcome = client.run_job_with_retry(request, policy);
    client.close();
    switch (outcome.status) {
      case JobOutcome::Status::kBusy:
        std::fprintf(stderr,
                     "busy: %s (%llu of %llu jobs queued), retry after "
                     "%llu ms\n",
                     to_string(outcome.busy.reason).c_str(),
                     static_cast<unsigned long long>(outcome.busy.queued),
                     static_cast<unsigned long long>(outcome.busy.capacity),
                     static_cast<unsigned long long>(
                         outcome.busy.retry_after_ms));
        return 2;
      case JobOutcome::Status::kError: {
        std::fprintf(stderr, "job error (%s):\n",
                     to_string(outcome.error.code).c_str());
        for (const std::string& diagnostic : outcome.error.diagnostics) {
          std::fprintf(stderr, "  %s\n", diagnostic.c_str());
        }
        return 2;
      }
      case JobOutcome::Status::kDone:
        break;
    }
    // Reports arrive in completion order; present them by instance.
    std::sort(outcome.reports.begin(), outcome.reports.end(),
              [](const auto& a, const auto& b) { return a.instance < b.instance; });
    bool saw_error = false;
    bool saw_watchdog = false;
    for (const ctrtl::serve::ReportPayload& report : outcome.reports) {
      if (outcome.reports.size() > 1) {
        std::fprintf(stderr, "instance %llu: %s\n",
                     static_cast<unsigned long long>(report.instance),
                     report.status.c_str());
      }
      saw_error |= report.status == "error";
      saw_watchdog |= report.status == "watchdog-tripped";
      for (const std::string& diagnostic : report.diagnostics) {
        std::fprintf(stderr, "  %s\n", diagnostic.c_str());
      }
      std::fputs(ctrtl::serve::render_design_style(report).c_str(), stdout);
    }
    std::fprintf(stderr,
                 "done: %llu instances, %llu failures, %llu conflicts, "
                 "cache %s, key %s\n",
                 static_cast<unsigned long long>(outcome.done.instances),
                 static_cast<unsigned long long>(outcome.done.failures),
                 static_cast<unsigned long long>(outcome.done.conflicts),
                 outcome.done.cache_hit ? "hit" : "miss",
                 outcome.done.cache_key.c_str());
    if (saw_error) {
      return 2;
    }
    if (saw_watchdog) {
      return 4;
    }
    return outcome.done.conflicts == 0 ? 0 : 3;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ctrtl_serve: %s\n", error.what());
    return 1;
  }
}

int run_stats(const std::string& socket_path) {
  try {
    ctrtl::serve::ServeClient client;
    client.connect(socket_path);
    const ctrtl::serve::StatsPayload stats = client.stats();
    client.close();
    std::fputs(ctrtl::serve::encode_stats(stats).c_str(), stdout);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ctrtl_serve: %s\n", error.what());
    return 1;
  }
}

int run_ping(const std::string& socket_path) {
  try {
    ctrtl::serve::ServeClient client;
    client.connect(socket_path);
    client.close();
    std::printf("ok %s\n", std::string(ctrtl::serve::kProtocolName).c_str());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ctrtl_serve: %s\n", error.what());
    return 1;
  }
}

int run_shutdown(const std::string& socket_path) {
  try {
    ctrtl::serve::ServeClient client;
    client.connect(socket_path);
    client.shutdown_server();
    std::printf("shutdown acknowledged\n");
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ctrtl_serve: %s\n", error.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string mode = argv[1];
  if (mode == "--help" || mode == "-h") {
    usage();
    return 0;
  }
  if (mode != "serve" && mode != "submit" && mode != "stats" &&
      mode != "ping" && mode != "shutdown") {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    usage();
    return 1;
  }

  std::string socket_path;
  std::string design_path;
  std::string fault_plan_path;
  ctrtl::serve::ServiceOptions service;
  ctrtl::serve::JobRequest request;
  std::uint64_t count = 0;
  std::uint64_t timeout_ms = 30000;
  std::uint64_t retry_attempts = 1;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(std::strlen("--socket="));
    } else if (arg.rfind("--workers=", 0) == 0) {
      if (!parse_count(arg, "--workers=", &count)) {
        return 1;
      }
      service.workers = count;
    } else if (arg.rfind("--lane-workers=", 0) == 0) {
      if (!parse_count(arg, "--lane-workers=", &count)) {
        return 1;
      }
      service.lane_workers = count;
    } else if (arg.rfind("--lane-block=", 0) == 0) {
      if (!parse_count(arg, "--lane-block=", &count)) {
        return 1;
      }
      service.lane_block = count;
    } else if (arg.rfind("--queue=", 0) == 0) {
      if (!parse_count(arg, "--queue=", &count)) {
        return 1;
      }
      service.queue_capacity = count;
    } else if (arg.rfind("--cache=", 0) == 0) {
      if (!parse_count(arg, "--cache=", &count)) {
        return 1;
      }
      service.cache_capacity = count;
    } else if (arg.rfind("--snapshot=", 0) == 0) {
      service.snapshot_path = arg.substr(std::strlen("--snapshot="));
    } else if (arg.rfind("--shed=", 0) == 0) {
      if (!parse_count(arg, "--shed=", &count)) {
        return 1;
      }
      service.shed_queue_depth = count;
    } else if (arg.rfind("--retry-after-ms=", 0) == 0) {
      if (!parse_count_zero_ok(arg, "--retry-after-ms=", &count)) {
        return 1;
      }
      service.retry_after_ms = count;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      if (!parse_count(arg, "--deadline-ms=", &request.deadline_ms)) {
        return 1;
      }
    } else if (arg.rfind("--priority=", 0) == 0) {
      const std::string priority = arg.substr(std::strlen("--priority="));
      if (priority == "low") {
        request.low_priority = true;
      } else if (priority == "normal") {
        request.low_priority = false;
      } else {
        std::fprintf(stderr, "--priority expects low or normal, got '%s'\n",
                     priority.c_str());
        return 1;
      }
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      if (!parse_count_zero_ok(arg, "--timeout-ms=", &timeout_ms)) {
        return 1;
      }
    } else if (arg.rfind("--retry=", 0) == 0) {
      if (!parse_count(arg, "--retry=", &retry_attempts)) {
        return 1;
      }
    } else if (arg.rfind("--job=", 0) == 0) {
      request.job_id = arg.substr(std::strlen("--job="));
    } else if (arg.rfind("--instances=", 0) == 0) {
      if (!parse_count(arg, "--instances=", &request.instances)) {
        return 1;
      }
    } else if (arg.rfind("--max-cycles=", 0) == 0) {
      if (!parse_count(arg, "--max-cycles=", &request.max_cycles)) {
        return 1;
      }
    } else if (arg.rfind("--max-delta-cycles=", 0) == 0) {
      if (!parse_count(arg, "--max-delta-cycles=", &request.max_delta_cycles)) {
        return 1;
      }
    } else if (arg.rfind("--fault-plan=", 0) == 0) {
      fault_plan_path = arg.substr(std::strlen("--fault-plan="));
    } else if (arg == "--set" && i + 1 < argc) {
      const std::string assignment = argv[++i];
      const std::size_t eq = assignment.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--set expects input=value, got '%s'\n",
                     assignment.c_str());
        return 1;
      }
      request.inputs.emplace_back(
          assignment.substr(0, eq),
          std::strtoll(assignment.c_str() + eq + 1, nullptr, 10));
    } else if (!arg.empty() && arg[0] != '-') {
      design_path = arg;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return 1;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "--socket=PATH is required\n");
    return 1;
  }

  if (mode == "serve") {
    return run_serve(socket_path, service);
  }
  if (mode == "stats") {
    return run_stats(socket_path);
  }
  if (mode == "ping") {
    return run_ping(socket_path);
  }
  if (mode == "shutdown") {
    return run_shutdown(socket_path);
  }

  // submit
  if (design_path.empty()) {
    std::fprintf(stderr, "submit requires a design file\n");
    return 1;
  }
  if (!read_file(design_path, &request.design_text)) {
    return 1;
  }
  if (!fault_plan_path.empty()) {
    if (!read_file(fault_plan_path, &request.fault_plan_text)) {
      return 1;
    }
    request.has_fault_plan = true;
  }
  return run_submit(socket_path, request, timeout_ms, retry_attempts);
}
