// ctrtl_gen — seeded design-space generator with a conflict oracle.
//
// Usage:
//   ctrtl_gen [--seed=N] [--count=K] [--profile=P] [--verify] [--fault-sweep[=M]]
//             [--out-dir=DIR] [--dump]
//
// Generates K structurally diverse register-transfer designs (profiles:
// fabric, regfile, pipeline, conflict, mixed) from consecutive seeds, each
// with a matching microprogram and an oracle prediction of every ILLEGAL
// conflict and DISC outcome computed from the TRANS stream alone.
//
//   --verify         run each case through the three-way engine equivalence
//                    check AND the oracle-vs-simulation comparison
//   --fault-sweep=M  additionally re-predict and re-check every Mth case
//                    under the standard fault plans (default M = 10)
//   --out-dir=DIR    write <name>.rtd / <name>.mc / <name>.oracle per case
//   --dump           print design, microcode, and prediction to stdout
//
// Exit status: 0 when every case agrees, 1 on a mismatch (the reproducing
// --seed is printed), 2 on bad usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "gen/corpus.h"
#include "gen/generator.h"
#include "transfer/text_format.h"

namespace {

using ctrtl::gen::CorpusFailure;
using ctrtl::gen::CorpusOptions;
using ctrtl::gen::CorpusReport;
using ctrtl::gen::GeneratedCase;
using ctrtl::gen::GeneratorConfig;
using ctrtl::gen::Profile;

void usage() {
  std::fprintf(stderr,
               "usage: ctrtl_gen [--seed=N] [--count=K] "
               "[--profile=fabric|regfile|pipeline|conflict|mixed]\n"
               "                 [--verify] [--fault-sweep[=M]] "
               "[--out-dir=DIR] [--dump]\n");
}

const char* kind_name(ctrtl::rtl::RtValue::Kind kind) {
  switch (kind) {
    case ctrtl::rtl::RtValue::Kind::kDisc:
      return "DISC";
    case ctrtl::rtl::RtValue::Kind::kIllegal:
      return "ILLEGAL";
    case ctrtl::rtl::RtValue::Kind::kValue:
      return "value";
  }
  return "<corrupt>";
}

std::string prediction_text(const ctrtl::verify::OutcomePrediction& oracle) {
  std::ostringstream out;
  out << "conflicts: " << oracle.conflicts.size() << "\n";
  for (const auto& conflict : oracle.conflicts) {
    out << "  " << to_string(conflict) << "\n";
  }
  out << "disc sites: " << oracle.disc_sites.size() << "\n";
  for (const auto& site : oracle.disc_sites) {
    out << "  " << to_string(site) << "\n";
  }
  out << "registers:\n";
  for (const auto& [name, kind] : oracle.registers) {
    out << "  " << name << ": " << kind_name(kind) << "\n";
  }
  return out.str();
}

bool write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.string().c_str());
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  unsigned count = 1;
  Profile profile = Profile::kMixed;
  bool verify = false;
  unsigned fault_every = 0;
  bool dump = false;
  std::string out_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(value_of("--seed="), nullptr, 10);
    } else if (arg.rfind("--count=", 0) == 0) {
      count = static_cast<unsigned>(
          std::strtoul(value_of("--count="), nullptr, 10));
    } else if (arg.rfind("--profile=", 0) == 0) {
      if (!ctrtl::gen::parse_profile(value_of("--profile="), profile)) {
        std::fprintf(stderr, "unknown profile '%s'\n", value_of("--profile="));
        usage();
        return 2;
      }
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--fault-sweep") {
      fault_every = 10;
    } else if (arg.rfind("--fault-sweep=", 0) == 0) {
      fault_every = static_cast<unsigned>(
          std::strtoul(value_of("--fault-sweep="), nullptr, 10));
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = value_of("--out-dir=");
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (count == 0) {
    std::fprintf(stderr, "--count must be at least 1\n");
    return 2;
  }

  // Emit per-case artifacts (generation is deterministic, so this pass and
  // the verification pass below see identical cases).
  if (!out_dir.empty() || dump) {
    std::error_code ec;
    if (!out_dir.empty()) {
      std::filesystem::create_directories(out_dir, ec);
      if (ec) {
        std::fprintf(stderr, "cannot create '%s': %s\n", out_dir.c_str(),
                     ec.message().c_str());
        return 2;
      }
    }
    for (unsigned i = 0; i < count; ++i) {
      GeneratorConfig config;
      config.seed = seed + i;
      config.profile = profile;
      const GeneratedCase generated = ctrtl::gen::generate(config);
      if (dump) {
        std::printf("--- %s (seed %llu, profile %s) ---\n%s\n%s\n%s",
                    generated.design.name.c_str(),
                    static_cast<unsigned long long>(generated.seed),
                    to_string(generated.profile).c_str(),
                    ctrtl::transfer::to_text(generated.design).c_str(),
                    generated.microcode.to_text().c_str(),
                    prediction_text(generated.oracle).c_str());
      }
      if (!out_dir.empty()) {
        const std::filesystem::path base =
            std::filesystem::path(out_dir) / generated.design.name;
        if (!write_file(base.string() + ".rtd",
                        ctrtl::transfer::to_text(generated.design)) ||
            !write_file(base.string() + ".mc",
                        generated.microcode.to_text()) ||
            !write_file(base.string() + ".oracle",
                        prediction_text(generated.oracle))) {
          return 2;
        }
      }
    }
    if (!out_dir.empty()) {
      std::printf("wrote %u case%s to %s\n", count, count == 1 ? "" : "s",
                  out_dir.c_str());
    }
  }

  CorpusOptions options;
  options.first_seed = seed;
  options.count = count;
  options.profile = profile;
  options.verify_engines = verify;
  options.check_oracle = true;
  options.fault_every = fault_every;
  const CorpusReport report = ctrtl::gen::run_corpus(options);

  std::printf(
      "%u case%s (profile %s, seeds %llu..%llu): %zu transfers, "
      "%zu predicted conflicts, %zu predicted DISC sites",
      report.cases, report.cases == 1 ? "" : "s", to_string(profile).c_str(),
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(seed + count - 1),
      report.total_transfers, report.predicted_conflicts,
      report.predicted_disc_sites);
  if (report.faulted_runs != 0) {
    std::printf(", %u faulted runs", report.faulted_runs);
  }
  std::printf("\nchecked %s in %.1f ms (%.0f cases/s)\n",
              verify ? "oracle + 3-way engine equivalence" : "oracle",
              report.wall_ms, report.cases_per_second());

  if (!report.ok()) {
    for (const CorpusFailure& failure : report.failures) {
      std::fprintf(stderr, "FAIL seed %llu [%s]:\n%s",
                   static_cast<unsigned long long>(failure.seed),
                   failure.phase.c_str(), failure.detail.c_str());
      if (failure.shrunk_transfers != 0) {
        std::fprintf(stderr, "shrunk reproduction: %u transfer%s\n",
                     failure.shrunk_transfers,
                     failure.shrunk_transfers == 1 ? "" : "s");
      }
      std::fprintf(stderr,
                   "reproduce with: ctrtl_gen --seed=%llu --count=1 "
                   "--profile=%s --verify --fault-sweep=1\n",
                   static_cast<unsigned long long>(failure.seed),
                   to_string(profile).c_str());
    }
    std::fprintf(stderr, "%zu failing case%s\n", report.failures.size(),
                 report.failures.size() == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
