// ctrtl_sim — command-line simulator for the clock-free VHDL subset.
//
// Usage:
//   ctrtl_sim <file.vhd> --top <entity> [--trace] [--max-cycles N] [--signals]
//             [--vcd <out.vcd>] [--engine=event|compiled]
//
// Parses the file, checks subset conformance, elaborates the top entity on
// the simulation kernel, runs to quiescence, and prints the final value of
// every signal (or a full event trace with --trace). Exit status: 0 on a
// clean run, 1 on front-end errors, 2 on runtime errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "verify/trace.h"
#include "verify/vcd.h"
#include "vhdl/elaborator.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: ctrtl_sim <file.vhd> --top <entity> [--trace] "
               "[--max-cycles N] [--signals] [--vcd <out.vcd>] "
               "[--engine=event|compiled]\n"
               "  --engine=event     event-driven kernel (default)\n"
               "  --engine=compiled  compiled static-schedule engine; only "
               "designs with a static\n"
               "                     transfer schedule qualify — "
               "interpreted VHDL processes do not,\n"
               "                     so ctrtl_sim rejects it (use "
               "ctrtl_design --engine=compiled\n"
               "                     on a .rtd design file instead)\n"
               "  --batch/--workers  not available here — batched lane "
               "execution needs a static\n"
               "                     schedule (use ctrtl_design --batch=N "
               "on a .rtd file)\n"
               "  --fault-plan, --max-delta-cycles\n"
               "                     not available here — fault injection "
               "and the watchdog operate\n"
               "                     on a static schedule (use ctrtl_design "
               "on a .rtd file)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string top;
  bool trace = false;
  bool signals = false;
  std::string vcd_path;
  std::string engine = "event";
  std::uint64_t max_cycles = ctrtl::kernel::Scheduler::kNoLimit;
  // Flags that only work on a static transfer schedule, with the reason
  // each one cannot apply to interpreted VHDL. Reported together below.
  std::vector<std::pair<std::string, std::string>> unsupported;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      top = argv[++i];
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--signals") {
      signals = true;
    } else if (arg == "--vcd" && i + 1 < argc) {
      vcd_path = argv[++i];
    } else if (arg == "--max-cycles" && i + 1 < argc) {
      max_cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg.rfind("--batch", 0) == 0 || arg.rfind("--workers", 0) == 0) {
      // Batching rides on the lane engine's shared compiled schedule, which
      // interpreted VHDL lacks. Collected rather than rejected immediately so
      // one run reports every unsupported flag at once.
      unsupported.emplace_back(arg,
                               "batched lane execution requires a static "
                               "transfer schedule shared by every instance");
    } else if (arg.rfind("--fault-plan", 0) == 0 ||
               arg.rfind("--max-delta-cycles", 0) == 0) {
      // Fault plans rewrite the transfer-instance stream and the watchdog
      // reports (step, phase) positions — both are defined on the static
      // schedule of a .rtd design, not on interpreted VHDL processes.
      unsupported.emplace_back(arg,
                               "fault injection and the delta-cycle watchdog "
                               "operate on a static transfer schedule");
    } else if (arg.rfind("--engine=", 0) == 0 ||
               (arg == "--engine" && i + 1 < argc)) {
      engine = arg == "--engine" ? argv[++i] : arg.substr(std::strlen("--engine="));
      if (engine != "event" && engine != "compiled") {
        std::fprintf(stderr, "--engine expects 'event' or 'compiled', got '%s'\n",
                     engine.c_str());
        return 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return 1;
    }
  }
  if (engine == "compiled") {
    // The compiled engine executes a statically lowered transfer schedule;
    // arbitrary interpreted VHDL processes have no such schedule to lower.
    unsupported.emplace_back("--engine=compiled",
                             "general processes have no static transfer "
                             "schedule to lower");
  }
  if (!unsupported.empty()) {
    // One diagnostic listing every schedule-only flag on the command line,
    // so a misdirected invocation is fixed in a single round trip.
    if (unsupported.size() > 1) {
      std::fprintf(stderr,
                   "ctrtl_sim: %zu flags are not available for interpreted "
                   "VHDL input:\n",
                   unsupported.size());
    }
    for (const auto& [flag, reason] : unsupported) {
      std::fprintf(stderr,
                   "ctrtl_sim: %s is not available for interpreted VHDL "
                   "input — %s.\n",
                   flag.c_str(), reason.c_str());
    }
    std::fprintf(stderr,
                 "Use 'ctrtl_design <file.rtd> [--simulate] [--batch=N] "
                 "[--workers=W] [--engine=compiled] [--fault-plan=FILE] "
                 "[--max-delta-cycles=N]' on a register-transfer design "
                 "file instead.\n");
    return 1;
  }
  if (path.empty() || top.empty()) {
    usage();
    return 1;
  }

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();

  ctrtl::common::DiagnosticBag diags;
  auto model = ctrtl::vhdl::load_model(buffer.str(), top, diags);
  if (!model) {
    std::fprintf(stderr, "%s", diags.to_text().c_str());
    return 1;
  }
  if (!diags.empty()) {
    std::fprintf(stderr, "%s", diags.to_text().c_str());  // warnings
  }

  std::printf("elaborated '%s': %zu signals, %zu processes\n", top.c_str(),
              model->signals().size(), model->process_count());

  std::unique_ptr<ctrtl::verify::TraceRecorder> recorder;
  if (trace || !vcd_path.empty()) {
    recorder = std::make_unique<ctrtl::verify::TraceRecorder>(model->scheduler());
  }

  try {
    const std::uint64_t cycles = model->run(max_cycles);
    const auto& stats = model->scheduler().stats();
    std::printf("ran %llu cycles: %llu delta cycles, %llu events, "
                "%llu resumptions, %llu fs physical time\n",
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(stats.delta_cycles),
                static_cast<unsigned long long>(stats.events),
                static_cast<unsigned long long>(stats.resumptions),
                static_cast<unsigned long long>(model->scheduler().now().fs));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "runtime error: %s\n", error.what());
    return 2;
  }

  if (trace && recorder) {
    std::printf("--- event trace ---\n%s", recorder->to_text().c_str());
  }
  if (!vcd_path.empty() && recorder) {
    std::ofstream vcd(vcd_path);
    if (!vcd) {
      std::fprintf(stderr, "cannot write '%s'\n", vcd_path.c_str());
      return 1;
    }
    ctrtl::verify::write_vcd(vcd, recorder->events());
    std::printf("wrote %zu events to %s\n", recorder->events().size(),
                vcd_path.c_str());
  }
  if (signals || !trace) {
    std::printf("--- final signal values ---\n");
    for (const auto& [name, signal] : model->signals()) {
      std::printf("  %-32s %s\n", name.c_str(), model->render(name).c_str());
    }
  }
  return 0;
}
