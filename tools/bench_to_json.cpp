// Reproducible kernel-throughput harness: runs the batched-simulation
// workload (and the E6 clocked-vs-clock-free comparison) with wall-clock
// timing and emits machine-readable JSON, one entry per configuration.
// BENCH_kernel.json at the repo root is produced by this tool; every PR
// that touches the kernel hot path regenerates it so the performance
// trajectory stays comparable across revisions.
//
// Usage: bench_to_json [--quick] [--label <variant>] [--out <path>]
//   --quick   smaller workload (CI smoke; seconds instead of minutes)
//   --label   stamped into every entry as "variant" (e.g. a git revision)
//   --out     write JSON to a file instead of stdout

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/clocked_rtl.h"
#include "clocked/translate.h"
#include "gen/corpus.h"
#include "rtl/batch_runner.h"
#include "serve/service.h"
#include "transfer/build.h"
#include "transfer/schedule.h"
#include "transfer/text_format.h"
#include "verify/random_design.h"

namespace {

using namespace ctrtl;

struct Entry {
  std::string name;
  std::string unit = "control_steps";  // what "steps" counts
  std::size_t workers = 1;
  std::size_t instances = 1;
  int repetitions = 1;
  double wall_ms = 0.0;  // median-of-repetitions for one execution
  double steps = 0.0;    // work items per execution
  std::uint64_t shed = 0;  // service_shed only: low-priority jobs shed
  [[nodiscard]] double throughput() const {
    return wall_ms > 0.0 ? steps / (wall_ms / 1000.0) : 0.0;
  }
};

struct Config {
  bool quick = false;
  std::string label;
  std::string out_path;
  unsigned transfers = 48;
  std::size_t batch_instances = 64;
  int repetitions = 3;
};

transfer::Design instance_design(std::size_t instance, unsigned transfers) {
  verify::RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(1000 + instance);
  options.num_transfers = transfers;
  return verify::random_design(options);
}

/// Median-of-N wall time of `body`, in milliseconds. The median is robust
/// against one-off scheduler hiccups in either direction, unlike the
/// best-of sample this tool used before PR 4.
template <typename F>
double time_median_ms(int repetitions, F&& body) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(std::max(1, repetitions)));
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    samples.push_back(elapsed.count());
  }
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

Entry measure_single_instance(const Config& config, rtl::TransferMode mode,
                              std::string name) {
  Entry entry;
  entry.name = std::move(name);
  entry.repetitions = config.repetitions + 2;  // cheap; repeat a bit more
  rtl::BatchRunner runner(
      [&](std::size_t instance) {
        return transfer::build_model(instance_design(instance, config.transfers),
                                     mode);
      },
      rtl::BatchRunOptions{.workers = 1});
  std::uint64_t deltas = 0;
  entry.wall_ms = time_median_ms(entry.repetitions, [&] {
    const rtl::InstanceResult result = runner.run_one(0);
    deltas = result.stats.delta_cycles;
  });
  entry.steps = static_cast<double>(deltas) / rtl::kPhasesPerStep;
  return entry;
}

Entry measure_batch(const Config& config, std::size_t workers,
                    rtl::TransferMode mode, std::string name) {
  Entry entry;
  entry.name = std::move(name);
  entry.workers = workers;
  entry.instances = config.batch_instances;
  entry.repetitions = config.repetitions;
  rtl::BatchRunner runner(
      [&](std::size_t instance) {
        return transfer::build_model(instance_design(instance, config.transfers),
                                     mode);
      },
      rtl::BatchRunOptions{.workers = workers});
  std::uint64_t deltas = 0;
  entry.wall_ms = time_median_ms(entry.repetitions, [&] {
    const rtl::BatchRunResult result = runner.run(config.batch_instances);
    deltas = result.total.delta_cycles;
  });
  entry.steps = static_cast<double>(deltas) / rtl::kPhasesPerStep;
  return entry;
}

/// Shared-design batch (E12): every instance is the SAME design, lowered
/// once into a `CompiledDesign`. `kCompiledLanes` runs it on the SoA lane
/// engine; `kPerInstance` elaborates one compiled model per instance from
/// the shared schedule — the baseline side of the lane ablation at
/// identical work.
Entry measure_shared_batch(
    const Config& config,
    const std::shared_ptr<const transfer::CompiledDesign>& design,
    std::size_t workers, std::size_t instances, rtl::BatchEngineKind engine,
    std::string name) {
  Entry entry;
  entry.name = std::move(name);
  entry.workers = workers;
  entry.instances = instances;
  entry.repetitions = config.repetitions;
  rtl::BatchRunner runner(
      design, rtl::BatchRunOptions{.workers = workers, .engine = engine});
  std::uint64_t deltas = 0;
  entry.wall_ms = time_median_ms(entry.repetitions, [&] {
    const rtl::BatchRunResult result = runner.run(instances);
    deltas = result.total.delta_cycles;
  });
  entry.steps = static_cast<double>(deltas) / rtl::kPhasesPerStep;
  return entry;
}

/// E13: generator-corpus verification throughput — seeded cases generated,
/// oracle-predicted, and pushed through the 3-way engine equivalence check
/// with a fault sweep on every 10th case. Steps count verified cases, so
/// throughput is cases/s.
Entry measure_corpus_verify(const Config& config) {
  Entry entry;
  entry.name = "corpus_verify";
  entry.unit = "cases";
  entry.repetitions = config.repetitions;
  entry.instances = config.quick ? 25 : 200;
  gen::CorpusOptions options;
  options.first_seed = 1;
  options.count = static_cast<unsigned>(entry.instances);
  options.profile = gen::Profile::kMixed;
  options.verify_engines = true;
  options.check_oracle = true;
  options.fault_every = 10;
  unsigned failures = 0;
  entry.wall_ms = time_median_ms(entry.repetitions, [&] {
    const gen::CorpusReport report = gen::run_corpus(options);
    failures += static_cast<unsigned>(report.failures.size());
  });
  if (failures != 0) {
    std::cerr << "corpus_verify: " << failures
              << " failing cases across repetitions\n";
  }
  entry.steps = static_cast<double>(entry.instances);
  return entry;
}

/// E14: ctrtl_serve job latency through the in-process service core (no
/// socket), full text path included — the design is serialized with
/// transfer::to_text and re-parsed per job, exactly what a wire SUBMIT
/// pays. `service_cold` runs against a cache with retention disabled so
/// every job re-hashes and re-lowers; `service_warm` primes the LRU cache
/// once (untimed) and then measures pure cache-hit jobs. The gap between
/// the two is the lowering cost the cache amortizes (docs/PERFORMANCE.md,
/// "Reading the service entries").
Entry measure_service(const Config& config, bool warm, std::string name) {
  Entry entry;
  entry.name = std::move(name);
  entry.unit = "instances";
  entry.instances = config.batch_instances;
  entry.repetitions = config.repetitions;

  serve::ServiceOptions options;
  options.workers = 1;
  options.lane_workers = 1;
  // Capacity 0 disables retention entirely: every job is a miss.
  options.cache_capacity = warm ? 8 : 0;
  serve::SimulationService service(options);

  const std::string design_text =
      transfer::to_text(instance_design(0, config.transfers));

  unsigned sequence = 0;
  const auto run_job = [&] {
    serve::JobRequest request;
    request.job_id = "bench-" + std::to_string(sequence++);
    request.instances = config.batch_instances;
    request.design_text = design_text;
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    const serve::SubmitOutcome outcome =
        service.submit(std::move(request), [&](const serve::Frame& frame) {
          if (frame.type == serve::MessageType::kDone ||
              frame.type == serve::MessageType::kError) {
            std::unique_lock lock(mutex);
            done = true;
            cv.notify_one();
          }
        });
    if (outcome.status != serve::SubmitStatus::kAccepted) {
      std::cerr << entry.name << ": job rejected by the service\n";
      return;
    }
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return done; });
  };

  if (warm) {
    run_job();  // prime the cache; not timed
  }
  entry.wall_ms = time_median_ms(entry.repetitions, run_job);
  entry.steps = static_cast<double>(config.batch_instances);
  return entry;
}

/// E15: graceful degradation under overload — one service worker is parked
/// on a normal-priority job while 31 low-priority jobs flood a queue with
/// capacity 4 and a shedding soft limit of 2. Exactly 2 of the flood fit
/// under the soft limit; the remaining 29 are shed with a retry hint, and
/// the admitted jobs drain once the worker resumes. Steps count admission
/// decisions, so throughput is decisions/s — the cost of saying "no"
/// cheaply is the property this entry tracks (a shed must never lower a
/// design or touch a worker).
Entry measure_service_shed(const Config& config) {
  Entry entry;
  entry.name = "service_shed";
  entry.unit = "jobs";
  entry.repetitions = config.repetitions;
  constexpr std::size_t kSubmissions = 32;
  entry.instances = kSubmissions;
  const std::string design_text =
      transfer::to_text(instance_design(0, config.transfers));

  std::uint64_t shed_last = 0;
  entry.wall_ms = time_median_ms(entry.repetitions, [&] {
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool parked = false;
    bool release = false;

    serve::ServiceOptions options;
    options.workers = 1;
    options.queue_capacity = 4;
    options.shed_queue_depth = 2;
    options.retry_after_ms = 1;
    options.on_job_start = [&](const std::string&) {
      std::unique_lock lock(gate_mutex);
      parked = true;
      gate_cv.notify_all();
      gate_cv.wait(lock, [&] { return release; });
    };
    serve::SimulationService service(options);

    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t terminal = 0;
    std::size_t accepted = 0;
    std::uint64_t shed = 0;
    const auto sink = [&](const serve::Frame& frame) {
      if (frame.type == serve::MessageType::kDone ||
          frame.type == serve::MessageType::kError) {
        std::unique_lock lock(done_mutex);
        ++terminal;
        done_cv.notify_one();
      }
    };
    const auto submit = [&](std::size_t i, bool low_priority) {
      serve::JobRequest request;
      request.job_id = "shed-" + std::to_string(i);
      request.instances = 1;
      request.design_text = design_text;
      request.low_priority = low_priority;
      const serve::SubmitOutcome outcome =
          service.submit(std::move(request), sink);
      if (outcome.status == serve::SubmitStatus::kAccepted) {
        ++accepted;
      } else if (outcome.status == serve::SubmitStatus::kBusy &&
                 outcome.busy_reason == serve::BusyReason::kShed) {
        ++shed;
      }
    };

    // Park the worker on the first (normal-priority) job, then flood. The
    // park barrier makes the queue depths — and therefore the shed count —
    // identical on every repetition.
    submit(0, /*low_priority=*/false);
    {
      std::unique_lock lock(gate_mutex);
      gate_cv.wait(lock, [&] { return parked; });
    }
    for (std::size_t i = 1; i < kSubmissions; ++i) {
      submit(i, /*low_priority=*/true);
    }
    {
      std::unique_lock lock(gate_mutex);
      release = true;
    }
    gate_cv.notify_all();
    {
      std::unique_lock lock(done_mutex);
      done_cv.wait(lock, [&] { return terminal == accepted; });
    }
    service.shutdown();
    shed_last = shed;
  });
  entry.shed = shed_last;
  entry.steps = static_cast<double>(kSubmissions);
  return entry;
}

/// E6: one design simulated clock-free (both execution modes) and as the
/// translated clocked RTL. Steps are control steps for the clock-free
/// entries and clock cycles for the clocked one.
std::vector<Entry> measure_vs_clocked(const Config& config) {
  const transfer::Design design = instance_design(0, config.transfers);
  std::vector<Entry> entries;

  for (const auto& [name, mode] :
       {std::pair{"clockfree_process_per_transfer",
                  rtl::TransferMode::kProcessPerTransfer},
        std::pair{"clockfree_dispatch", rtl::TransferMode::kDispatch},
        std::pair{"clockfree_compiled", rtl::TransferMode::kCompiled}}) {
    Entry entry;
    entry.name = name;
    entry.repetitions = config.repetitions;
    std::uint64_t deltas = 0;
    entry.wall_ms = time_median_ms(entry.repetitions, [&] {
      auto model = transfer::build_model(design, mode);
      deltas = model->run().stats.delta_cycles;
    });
    entry.steps = static_cast<double>(deltas) / rtl::kPhasesPerStep;
    entries.push_back(entry);
  }

  Entry clocked_entry;
  clocked_entry.name = "clocked_rtl";
  clocked_entry.unit = "clock_cycles";
  clocked_entry.repetitions = config.repetitions;
  const clocked::TranslationPlan plan = clocked::plan_translation(design);
  unsigned cycles = 0;
  clocked_entry.wall_ms = time_median_ms(clocked_entry.repetitions, [&] {
    baseline::ClockedRtlSim sim(plan);
    cycles = sim.run().clock_cycles;
  });
  clocked_entry.steps = static_cast<double>(cycles);
  entries.push_back(clocked_entry);
  return entries;
}

void emit_json(std::ostream& os, const Config& config,
               const std::vector<Entry>& entries) {
  const auto one_worker_baseline = [&](const std::string& name,
                                       std::size_t instances) {
    return std::find_if(entries.begin(), entries.end(), [&](const Entry& e) {
      return e.name == name && e.workers == 1 && e.instances == instances;
    });
  };
  os << "{\n"
     << "  \"schema\": \"ctrtl-bench/1\",\n"
     << "  \"suite\": \"bench_batch\",\n"
     << "  \"quick\": " << (config.quick ? "true" : "false") << ",\n"
     << "  \"host\": {\"hardware_concurrency\": "
     << std::max(1u, std::thread::hardware_concurrency()) << "},\n"
     << "  \"workload\": {\"transfers_per_instance\": " << config.transfers
     << ", \"batch_instances\": " << config.batch_instances << "},\n"
     << "  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    os << "    {\"name\": \"" << e.name << "\"";
    if (!config.label.empty()) {
      os << ", \"variant\": \"" << config.label << "\"";
    }
    os << ", \"unit\": \"" << e.unit << "\""
       << ", \"workers\": " << e.workers << ", \"instances\": " << e.instances
       << ", \"repetitions\": " << e.repetitions << ", \"wall_ms\": " << e.wall_ms
       << ", \"steps\": " << e.steps
       << ", \"throughput_steps_per_s\": " << e.throughput();
    if (e.name == "batch" || e.name == "batch_compiled" ||
        e.name == "batch_compiled_shared" || e.name == "batch_lanes") {
      const auto baseline = one_worker_baseline(e.name, e.instances);
      if (baseline != entries.end() && baseline->throughput() > 0.0) {
        os << ", \"speedup_vs_1worker\": "
           << e.throughput() / baseline->throughput();
      }
    }
    if (e.name == "service_shed") {
      os << ", \"shed_jobs\": " << e.shed;
    }
    if (e.name == "service_warm") {
      const auto cold =
          std::find_if(entries.begin(), entries.end(),
                       [](const Entry& c) { return c.name == "service_cold"; });
      if (cold != entries.end() && e.wall_ms > 0.0) {
        os << ", \"speedup_vs_cold\": " << cold->wall_ms / e.wall_ms;
      }
    }
    os << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      config.quick = true;
    } else if (arg == "--label" && i + 1 < argc) {
      config.label = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      config.out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_to_json [--quick] [--label <variant>] "
                   "[--out <path>]\n";
      return 2;
    }
  }
  if (config.quick) {
    config.transfers = 16;
    config.batch_instances = 8;
    config.repetitions = 2;
  }

  std::vector<Entry> entries;
  entries.push_back(measure_single_instance(
      config, rtl::TransferMode::kProcessPerTransfer, "single_instance"));
  entries.push_back(measure_single_instance(config, rtl::TransferMode::kCompiled,
                                            "single_instance_compiled"));
  std::vector<std::size_t> worker_counts = {1, 2, 4};
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw > 4) {
    worker_counts.push_back(hw);
  }
  for (const std::size_t workers : worker_counts) {
    entries.push_back(measure_batch(
        config, workers, rtl::TransferMode::kProcessPerTransfer, "batch"));
  }
  for (const std::size_t workers : worker_counts) {
    entries.push_back(measure_batch(config, workers, rtl::TransferMode::kCompiled,
                                    "batch_compiled"));
  }
  // E12: the lane engine vs per-instance models of one shared design. The
  // worker sweep is fixed at {1, 2, 4, 8} so the JSON shape is stable across
  // hosts; on machines with fewer cores the higher counts simply tie.
  const auto shared_design =
      transfer::CompiledDesign::compile(instance_design(0, config.transfers));
  const std::vector<std::size_t> lane_workers = {1, 2, 4, 8};
  const std::vector<std::size_t> lane_instances =
      config.quick ? std::vector<std::size_t>{8, 32}
                   : std::vector<std::size_t>{64, 256};
  for (const std::size_t instances : lane_instances) {
    for (const std::size_t workers : lane_workers) {
      entries.push_back(measure_shared_batch(
          config, shared_design, workers, instances,
          rtl::BatchEngineKind::kPerInstance, "batch_compiled_shared"));
      entries.push_back(measure_shared_batch(
          config, shared_design, workers, instances,
          rtl::BatchEngineKind::kCompiledLanes, "batch_lanes"));
    }
  }
  for (Entry& entry : measure_vs_clocked(config)) {
    entries.push_back(entry);
  }
  entries.push_back(measure_corpus_verify(config));
  // E14: the simulation service, cold (retention off, every job lowers)
  // vs warm (LRU hit, lowering skipped).
  entries.push_back(measure_service(config, /*warm=*/false, "service_cold"));
  entries.push_back(measure_service(config, /*warm=*/true, "service_warm"));
  // E15: load shedding under a saturated queue (see measure_service_shed).
  entries.push_back(measure_service_shed(config));

  if (config.out_path.empty()) {
    emit_json(std::cout, config, entries);
  } else {
    std::ofstream out(config.out_path);
    if (!out) {
      std::cerr << "cannot write " << config.out_path << "\n";
      return 1;
    }
    emit_json(out, config, entries);
    std::cout << "wrote " << config.out_path << "\n";
  }
  return 0;
}
