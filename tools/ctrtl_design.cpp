// ctrtl_design — work with register-transfer design files (.rtd).
//
// Usage:
//   ctrtl_design <file.rtd> [--analyze] [--simulate] [--dataflow]
//                [--emit-vhdl <out.vhd>] [--set input=value ...]
//                [--engine=event|compiled] [--dispatch] [--vcd <out.vcd>]
//                [--batch=N] [--workers=W] [--max-delta-cycles=N]
//                [--fault-plan=FILE]
//
// Validates the design, then (per flags) runs static conflict analysis,
// symbolic dataflow extraction, simulation (with final register values and
// conflict reports), VHDL emission, and VCD dumping. With --batch=N the
// design is lowered once and run as N instances on the lane engine.
// --fault-plan applies a declarative fault plan (see docs/ROBUSTNESS.md)
// before simulating; --max-delta-cycles arms the delta-cycle watchdog.
//
// Exit status: 0 clean run, 1 usage/front-end errors, 2 runtime errors,
// 3 conflicts observed, 4 delta-cycle watchdog tripped.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "fault/inject.h"
#include "fault/plan.h"
#include "rtl/batch_runner.h"
#include "transfer/build.h"
#include "transfer/conflict.h"
#include "transfer/schedule.h"
#include "transfer/text_format.h"
#include "verify/dataflow.h"
#include "verify/trace.h"
#include "verify/vcd.h"
#include "vhdl/emitter.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: ctrtl_design <file.rtd> [--analyze] [--simulate] "
               "[--dataflow] [--emit-vhdl <out.vhd>] [--set input=value ...] "
               "[--engine=event|compiled] [--dispatch] [--vcd <out.vcd>] "
               "[--batch=N] [--workers=W]\n"
               "  --engine=event     event-driven kernel, one TRANS process "
               "per transfer (default)\n"
               "  --engine=compiled  compiled static-schedule engine "
               "(levelized tables, same results)\n"
               "  --dispatch         event kernel with the indexed-dispatcher "
               "ablation\n"
               "  --batch=N          run N instances on the lane engine "
               "(shared schedule, SoA lanes)\n"
               "  --workers=W        worker threads for --batch "
               "(default: hardware concurrency)\n"
               "  --max-delta-cycles=N  delta-cycle watchdog: a run needing "
               "more than N delta cycles\n"
               "                     stops with a diagnostic and exit code 4 "
               "instead of spinning\n"
               "  --fault-plan=FILE  apply a declarative fault plan "
               "(stuck-disc, stuck-illegal,\n"
               "                     force-bus, drop, corrupt-module) before "
               "simulating\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool analyze = false;
  bool simulate = false;
  bool dataflow = false;
  bool dispatch = false;
  std::string engine = "event";
  bool engine_set = false;
  std::string vhdl_out;
  std::string vcd_out;
  std::size_t batch = 0;
  std::size_t workers = 0;
  bool workers_set = false;
  std::uint64_t max_delta_cycles = ctrtl::kernel::Scheduler::kNoLimit;
  std::string fault_plan_path;
  std::map<std::string, std::int64_t> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--analyze") {
      analyze = true;
    } else if (arg == "--simulate") {
      simulate = true;
    } else if (arg == "--dataflow") {
      dataflow = true;
    } else if (arg == "--dispatch") {
      dispatch = true;
    } else if (arg.rfind("--engine=", 0) == 0 ||
               (arg == "--engine" && i + 1 < argc)) {
      engine = arg == "--engine" ? argv[++i] : arg.substr(std::strlen("--engine="));
      engine_set = true;
      if (engine != "event" && engine != "compiled") {
        std::fprintf(stderr, "--engine expects 'event' or 'compiled', got '%s'\n",
                     engine.c_str());
        return 1;
      }
    } else if (arg.rfind("--batch=", 0) == 0 ||
               (arg == "--batch" && i + 1 < argc)) {
      const std::string count =
          arg == "--batch" ? argv[++i] : arg.substr(std::strlen("--batch="));
      batch = std::strtoull(count.c_str(), nullptr, 10);
      if (batch == 0) {
        std::fprintf(stderr, "--batch expects a positive instance count, "
                     "got '%s'\n", count.c_str());
        return 1;
      }
    } else if (arg.rfind("--workers=", 0) == 0 ||
               (arg == "--workers" && i + 1 < argc)) {
      const std::string count =
          arg == "--workers" ? argv[++i] : arg.substr(std::strlen("--workers="));
      workers = std::strtoull(count.c_str(), nullptr, 10);
      workers_set = true;
      if (workers == 0) {
        std::fprintf(stderr, "--workers expects a positive thread count, "
                     "got '%s'\n", count.c_str());
        return 1;
      }
    } else if (arg.rfind("--max-delta-cycles=", 0) == 0 ||
               (arg == "--max-delta-cycles" && i + 1 < argc)) {
      const std::string count =
          arg == "--max-delta-cycles"
              ? argv[++i]
              : arg.substr(std::strlen("--max-delta-cycles="));
      max_delta_cycles = std::strtoull(count.c_str(), nullptr, 10);
      if (max_delta_cycles == 0) {
        std::fprintf(stderr, "--max-delta-cycles expects a positive limit, "
                     "got '%s'\n", count.c_str());
        return 1;
      }
    } else if (arg.rfind("--fault-plan=", 0) == 0 ||
               (arg == "--fault-plan" && i + 1 < argc)) {
      fault_plan_path = arg == "--fault-plan"
                            ? argv[++i]
                            : arg.substr(std::strlen("--fault-plan="));
    } else if (arg == "--emit-vhdl" && i + 1 < argc) {
      vhdl_out = argv[++i];
    } else if (arg == "--vcd" && i + 1 < argc) {
      vcd_out = argv[++i];
    } else if (arg == "--set" && i + 1 < argc) {
      const std::string assignment = argv[++i];
      const std::size_t eq = assignment.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--set expects input=value, got '%s'\n",
                     assignment.c_str());
        return 1;
      }
      inputs[assignment.substr(0, eq)] =
          std::strtoll(assignment.c_str() + eq + 1, nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return 1;
    }
  }
  if (path.empty()) {
    usage();
    return 1;
  }
  if (dispatch && engine == "compiled") {
    std::fprintf(stderr, "--dispatch and --engine=compiled are exclusive\n");
    return 1;
  }
  if (workers_set && batch == 0) {
    std::fprintf(stderr, "--workers requires --batch=N\n");
    return 1;
  }
  if (batch > 0 && (dispatch || (engine_set && engine == "event"))) {
    // The lane engine executes the compiled shared schedule; there is no
    // batched variant of the event kernel in this tool.
    std::fprintf(stderr, "--batch runs the compiled lane engine; it is not "
                 "available with --engine=event or --dispatch\n");
    return 1;
  }
  if (batch > 0 && !vcd_out.empty()) {
    std::fprintf(stderr, "--batch has no per-instance event trace; --vcd "
                 "requires a single-instance run\n");
    return 1;
  }

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();

  ctrtl::common::DiagnosticBag diags;
  const ctrtl::transfer::Design design =
      ctrtl::transfer::parse_design(buffer.str(), diags);
  if (diags.has_errors() || !ctrtl::transfer::validate(design, diags)) {
    std::fprintf(stderr, "%s", diags.to_text().c_str());
    return 1;
  }
  std::printf("design '%s': %u control steps, %zu registers, %zu buses, "
              "%zu modules, %zu transfers\n",
              design.name.c_str(), design.cs_max, design.registers.size(),
              design.buses.size(), design.modules.size(),
              design.transfers.size());

  std::optional<ctrtl::fault::FaultedDesign> faulted;
  if (!fault_plan_path.empty()) {
    std::ifstream plan_file(fault_plan_path);
    if (!plan_file) {
      std::fprintf(stderr, "cannot open fault plan '%s'\n",
                   fault_plan_path.c_str());
      return 1;
    }
    std::ostringstream plan_buffer;
    plan_buffer << plan_file.rdbuf();
    ctrtl::common::DiagnosticBag plan_diags;
    const ctrtl::fault::FaultPlan plan =
        ctrtl::fault::parse_fault_plan(plan_buffer.str(), plan_diags);
    if (!plan_diags.has_errors()) {
      faulted = ctrtl::fault::apply_plan(design, plan, plan_diags);
    }
    if (!plan_diags.empty()) {
      std::fprintf(stderr, "%s", plan_diags.to_text().c_str());
    }
    if (plan_diags.has_errors() || !faulted.has_value()) {
      return 1;
    }
    std::printf("fault plan: %zu faults (dropped %zu, rewrote %zu, inserted "
                "%zu instances)\n",
                plan.faults.size(), faulted->dropped, faulted->rewritten,
                faulted->inserted);
  }

  if (analyze) {
    const ctrtl::transfer::AnalysisReport report = ctrtl::transfer::analyze(design);
    if (report.clean()) {
      std::printf("static analysis: clean (no conflicts, discipline holds)\n");
    } else {
      for (const auto& conflict : report.drive_conflicts) {
        std::printf("static analysis: %s\n", to_string(conflict).c_str());
      }
      for (const auto& violation : report.discipline_violations) {
        std::printf("static analysis: %s\n", to_string(violation).c_str());
      }
    }
  }

  if (dataflow) {
    const ctrtl::verify::DataflowResult result =
        ctrtl::verify::extract_dataflow(design);
    std::printf("symbolic dataflow%s:\n",
                result.saw_illegal ? " (conflicts occurred!)" : "");
    for (const auto& [reg, expr] : result.registers) {
      std::printf("  %-12s = %s\n", reg.c_str(),
                  ctrtl::verify::canonical(expr).c_str());
    }
  }

  if (!vhdl_out.empty()) {
    std::ofstream out(vhdl_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", vhdl_out.c_str());
      return 1;
    }
    try {
      out << ctrtl::vhdl::emit_vhdl(design);
      std::printf("wrote VHDL to %s (top entity '%s')\n", vhdl_out.c_str(),
                  ctrtl::vhdl::vhdl_name(design.name).c_str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "VHDL emission failed: %s\n", error.what());
      return 1;
    }
  }

  if (batch > 0) {
    // Lane-engine batch: lower the schedule once, run `batch` instances as
    // structure-of-arrays lanes sharded across `workers` threads. The --set
    // inputs apply to every instance.
    ctrtl::rtl::BatchInputProvider provider;
    if (!inputs.empty()) {
      provider = [&inputs](std::size_t) {
        std::vector<std::pair<std::string, ctrtl::rtl::RtValue>> pairs;
        pairs.reserve(inputs.size());
        for (const auto& [name, value] : inputs) {
          pairs.emplace_back(name, ctrtl::rtl::RtValue::of(value));
        }
        return pairs;
      };
    }
    try {
      ctrtl::rtl::BatchRunner runner(
          faulted ? ctrtl::fault::compile(*faulted)
                  : ctrtl::transfer::CompiledDesign::compile(design),
          ctrtl::rtl::BatchRunOptions{
              .workers = workers,
              .max_delta_cycles = max_delta_cycles,
              .engine = ctrtl::rtl::BatchEngineKind::kCompiledLanes},
          provider);
      const ctrtl::rtl::BatchRunResult result = runner.run(batch);
      std::printf("batched: %zu instances, %zu workers, %llu delta cycles, "
                  "%llu events, %llu conflicts, lane engine\n",
                  result.instances.size(), runner.worker_count(),
                  static_cast<unsigned long long>(result.total.delta_cycles),
                  static_cast<unsigned long long>(result.total.events),
                  static_cast<unsigned long long>(result.conflict_count()));
      bool saw_error = false;
      bool saw_watchdog = false;
      for (std::size_t i = 0; i < result.instances.size(); ++i) {
        const ctrtl::rtl::RunReport& report = result.instances[i].report;
        if (report.ok()) {
          continue;
        }
        saw_error |= report.status == ctrtl::rtl::RunStatus::kError;
        saw_watchdog |=
            report.status == ctrtl::rtl::RunStatus::kWatchdogTripped;
        std::fprintf(stderr, "instance %zu:\n%s", i, report.to_text().c_str());
      }
      for (const auto& conflict : result.instances.front().conflicts) {
        std::printf("  instance 0: %s\n", to_string(conflict).c_str());
      }
      std::printf("final register values (instance 0):\n");
      for (const auto& [name, value] : result.instances.front().registers) {
        std::printf("  %-12s %s\n", name.c_str(), to_string(value).c_str());
      }
      if (saw_error) {
        return 2;
      }
      if (saw_watchdog) {
        return 4;
      }
      return result.conflict_count() == 0 ? 0 : 3;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "batch run failed: %s\n", error.what());
      return 2;
    }
  }

  if (simulate || !vcd_out.empty()) {
    const ctrtl::rtl::TransferMode mode =
        engine == "compiled" ? ctrtl::rtl::TransferMode::kCompiled
        : dispatch           ? ctrtl::rtl::TransferMode::kDispatch
                             : ctrtl::rtl::TransferMode::kProcessPerTransfer;
    auto model = faulted ? ctrtl::fault::build_model(*faulted, mode)
                         : ctrtl::transfer::build_model(design, mode);
    for (const auto& [name, value] : inputs) {
      model->set_input(name, ctrtl::rtl::RtValue::of(value));
    }
    std::unique_ptr<ctrtl::verify::TraceRecorder> recorder;
    if (!vcd_out.empty()) {
      recorder =
          std::make_unique<ctrtl::verify::TraceRecorder>(model->scheduler());
    }
    const ctrtl::rtl::RunResult result = model->run(
        ctrtl::rtl::RunOptions{.max_delta_cycles = max_delta_cycles});
    std::printf("simulated: %llu delta cycles, %llu events, %s mode\n",
                static_cast<unsigned long long>(result.stats.delta_cycles),
                static_cast<unsigned long long>(result.stats.events),
                engine == "compiled" ? "compiled"
                : dispatch           ? "dispatch"
                                     : "process-per-transfer");
    for (const auto& conflict : result.conflicts) {
      std::printf("  %s\n", to_string(conflict).c_str());
    }
    std::printf("final register values:\n");
    for (const auto& reg : design.registers) {
      std::printf("  %-12s %s\n", reg.name.c_str(),
                  to_string(model->find_register(reg.name)->value()).c_str());
    }
    if (recorder) {
      std::ofstream vcd(vcd_out);
      if (!vcd) {
        std::fprintf(stderr, "cannot write '%s'\n", vcd_out.c_str());
        return 1;
      }
      ctrtl::verify::write_vcd(vcd, recorder->events());
      std::printf("wrote %zu events to %s\n", recorder->events().size(),
                  vcd_out.c_str());
    }
    if (!result.report.ok()) {
      std::fprintf(stderr, "%s", result.report.to_text().c_str());
      return result.report.status == ctrtl::rtl::RunStatus::kWatchdogTripped
                 ? 4
                 : 2;
    }
    return result.conflict_free() ? 0 : 3;
  }
  return 0;
}
