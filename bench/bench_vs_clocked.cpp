// Experiment E6b: the clock-free abstract model vs the conventional
// clocked RTL simulation of the *translated* design (process per flop,
// combinational mux processes, a physical-time clock). The clocked
// simulation pays clock traffic on every cycle whether work happens or
// not; the abstract model pays six deltas per control step plus the
// wait-until re-checks of idle TRANS processes. Counters expose both cost
// structures per control step.

#include <benchmark/benchmark.h>

#include "baseline/clocked_rtl.h"
#include "clocked/translate.h"
#include "transfer/build.h"
#include "verify/random_design.h"

namespace {

using namespace ctrtl;

transfer::Design workload(unsigned transfers) {
  verify::RandomDesignOptions options;
  options.seed = 13;
  options.num_transfers = transfers;
  return verify::random_design(options);
}

void BM_AbstractModel(benchmark::State& state) {
  const unsigned transfers = static_cast<unsigned>(state.range(0));
  const transfer::Design design = workload(transfers);
  std::uint64_t deltas = 0, events = 0, resumptions = 0, rejects = 0;
  for (auto _ : state) {
    auto model = transfer::build_model(design);
    const rtl::RunResult result = model->run();
    deltas = result.stats.delta_cycles;
    events = result.stats.events;
    resumptions = result.stats.resumptions;
    rejects = result.stats.condition_rejects;
    benchmark::DoNotOptimize(result);
  }
  const double steps = design.cs_max;
  state.counters["deltas_per_step"] = static_cast<double>(deltas) / steps;
  state.counters["events_per_step"] = static_cast<double>(events) / steps;
  state.counters["resume_per_step"] = static_cast<double>(resumptions) / steps;
  state.counters["cond_rejects_per_step"] = static_cast<double>(rejects) / steps;
  state.SetItemsProcessed(state.iterations() * design.cs_max);
}
BENCHMARK(BM_AbstractModel)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_ClockedRtl(benchmark::State& state) {
  const unsigned transfers = static_cast<unsigned>(state.range(0));
  const transfer::Design design = workload(transfers);
  const clocked::TranslationPlan plan = clocked::plan_translation(design);
  std::uint64_t events = 0, resumptions = 0;
  unsigned cycles = 0;
  for (auto _ : state) {
    baseline::ClockedRtlSim sim(plan);
    const baseline::ClockedRtlSim::Result result = sim.run();
    events = result.stats.events;
    resumptions = result.stats.resumptions;
    cycles = result.clock_cycles;
    benchmark::DoNotOptimize(result);
  }
  state.counters["events_per_cycle"] = static_cast<double>(events) / cycles;
  state.counters["resume_per_cycle"] = static_cast<double>(resumptions) / cycles;
  state.SetItemsProcessed(state.iterations() * cycles);
}
BENCHMARK(BM_ClockedRtl)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

}  // namespace
