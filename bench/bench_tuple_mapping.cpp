// Experiment E3 (paper section 2.7): the bidirectional tuple <-> TRANS
// instance mapping that the paper's formal-verification story rests on.
// Measures forward expansion, reverse pairing, and the full round trip.

#include <benchmark/benchmark.h>

#include <random>

#include "transfer/mapping.h"

namespace {

using namespace ctrtl;
using transfer::RegisterTransfer;

std::vector<RegisterTransfer> make_tuples(std::size_t count) {
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> pick(0, 7);
  std::vector<RegisterTransfer> tuples;
  tuples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const unsigned step = static_cast<unsigned>(2 * i + 1);
    tuples.push_back(RegisterTransfer::full(
        "R" + std::to_string(pick(rng)), "BA" + std::to_string(pick(rng)),
        "S" + std::to_string(pick(rng)), "BB" + std::to_string(pick(rng)), step,
        "ADD", step + 1, "BW" + std::to_string(pick(rng)),
        "D" + std::to_string(pick(rng))));
  }
  return tuples;
}

void BM_ForwardMapping(benchmark::State& state) {
  const auto tuples = make_tuples(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(transfer::to_instances(tuples));
  }
  state.SetItemsProcessed(state.iterations() * tuples.size());
}
BENCHMARK(BM_ForwardMapping)->Arg(16)->Arg(256)->Arg(4096);

void BM_ReverseMapping(benchmark::State& state) {
  const auto tuples = make_tuples(static_cast<std::size_t>(state.range(0)));
  const auto instances = transfer::to_instances(tuples);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transfer::to_partial_tuples(instances));
  }
  state.SetItemsProcessed(state.iterations() * instances.size());
}
BENCHMARK(BM_ReverseMapping)->Arg(16)->Arg(256)->Arg(4096);

void BM_RoundTrip(benchmark::State& state) {
  const auto tuples = make_tuples(static_cast<std::size_t>(state.range(0)));
  const std::map<std::string, unsigned> latencies = {{"ADD", 1}};
  std::size_t recovered = 0;
  for (auto _ : state) {
    auto partials = transfer::to_partial_tuples(transfer::to_instances(tuples));
    const auto merged = transfer::merge_partials(std::move(partials), latencies);
    recovered = merged.size();
    benchmark::DoNotOptimize(merged);
  }
  if (recovered != tuples.size()) {
    state.SkipWithError("round trip lost tuples");
  }
  state.counters["tuples_recovered"] = static_cast<double>(recovered);
  state.SetItemsProcessed(state.iterations() * tuples.size());
}
BENCHMARK(BM_RoundTrip)->Arg(16)->Arg(256)->Arg(1024);

}  // namespace
