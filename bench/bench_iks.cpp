// Experiment E5 (paper section 3 + fig. 3): the IKS chip. Measures
// (a) the microcode -> register-transfer translation (the paper's "this
// could be easily automated. We have written a C program..."),
// (b) elaboration of the chip model, and (c) simulation of one complete
// IK iteration (30 control steps over the full resource set).

#include <benchmark/benchmark.h>

#include <cmath>

#include "iks/golden.h"
#include "iks/program.h"
#include "iks/resources.h"
#include "transfer/build.h"
#include "transfer/mapping.h"

namespace {

using namespace ctrtl;

iks::IksInputs sample_inputs() {
  const auto fix = [](double v) {
    return static_cast<std::int64_t>(std::llround(v * 65536.0));
  };
  iks::IksInputs inputs;
  inputs.theta1 = fix(0.3);
  inputs.theta2 = fix(0.9);
  inputs.l1 = fix(1.0);
  inputs.l2 = fix(0.8);
  inputs.px = fix(1.0 * std::cos(0.7) + 0.8 * std::cos(1.2));
  inputs.py = fix(1.0 * std::sin(0.7) + 0.8 * std::sin(1.2));
  return inputs;
}

void BM_MicrocodeTranslation(benchmark::State& state) {
  const transfer::Design resources = iks::iks_resources(iks::iks_program_steps());
  const std::vector<iks::MicroInstruction> program = iks::iks_program();
  std::size_t tuples = 0;
  for (auto _ : state) {
    const auto transfers =
        iks::translate_microcode(program, iks::iks_code_maps(), resources);
    tuples = transfers.size();
    benchmark::DoNotOptimize(transfers);
  }
  state.counters["microinstructions"] = static_cast<double>(program.size());
  state.counters["tuples"] = static_cast<double>(tuples);
  state.SetItemsProcessed(state.iterations() * program.size());
}
BENCHMARK(BM_MicrocodeTranslation);

void BM_IksModelElaboration(benchmark::State& state) {
  const iks::IksInputs inputs = sample_inputs();
  const transfer::Design design = iks::iks_design(inputs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transfer::build_model(design));
  }
  state.counters["trans_processes"] =
      static_cast<double>(transfer::to_instances(design.transfers).size());
}
BENCHMARK(BM_IksModelElaboration);

void BM_IksIterationSimulation(benchmark::State& state) {
  const iks::IksInputs inputs = sample_inputs();
  const iks::GoldenTrace golden = iks::golden_iteration(inputs);
  std::uint64_t deltas = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto model = iks::build_iks_model(inputs);
    const rtl::RunResult result = model->run();
    deltas = result.stats.delta_cycles;
    events = result.stats.events;
    const iks::IksOutputs outputs = iks::read_outputs(*model);
    if (outputs.theta1_next != golden.theta1_next) {
      state.SkipWithError("diverged from golden model");
    }
  }
  state.counters["delta_cycles"] = static_cast<double>(deltas);
  state.counters["events"] = static_cast<double>(events);
  state.counters["control_steps"] = iks::iks_program_steps();
}
BENCHMARK(BM_IksIterationSimulation);

void BM_IksGoldenIteration(benchmark::State& state) {
  // The algorithmic-level model, for scale: how much the RT-level fidelity
  // costs relative to plain fixed-point arithmetic.
  const iks::IksInputs inputs = sample_inputs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(iks::golden_iteration(inputs));
  }
}
BENCHMARK(BM_IksGoldenIteration);

}  // namespace
