// Experiment E1 (paper fig. 1): the concrete register transfer
// (R1,B1,R2,B2,5,ADD,6,B1,R1). Measures model construction and simulation
// cost of the paper's running example, and the per-transfer cost as the
// same tuple pattern is replicated across many steps.

#include <benchmark/benchmark.h>

#include "transfer/build.h"

namespace {

using namespace ctrtl;
using transfer::Design;
using transfer::ModuleKind;
using transfer::RegisterTransfer;

Design fig1_design() {
  Design d;
  d.name = "fig1";
  d.cs_max = 7;
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  d.transfers = {
      RegisterTransfer::full("R1", "B1", "R2", "B2", 5, "ADD", 6, "B1", "R1")};
  return d;
}

void BM_Fig1_BuildAndRun(benchmark::State& state) {
  const Design design = fig1_design();
  std::uint64_t deltas = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto model = transfer::build_model(design);
    const rtl::RunResult result = model->run();
    deltas = result.stats.delta_cycles;
    events = result.stats.events;
    if (model->find_register("R1")->value() != rtl::RtValue::of(42)) {
      state.SkipWithError("wrong result");
    }
  }
  state.counters["delta_cycles"] = static_cast<double>(deltas);
  state.counters["events"] = static_cast<double>(events);
}
BENCHMARK(BM_Fig1_BuildAndRun);

void BM_Fig1_RunOnly(benchmark::State& state) {
  // Re-measure with construction excluded: the cost of 42 delta cycles.
  const Design design = fig1_design();
  for (auto _ : state) {
    state.PauseTiming();
    auto model = transfer::build_model(design);
    state.ResumeTiming();
    benchmark::DoNotOptimize(model->run());
  }
}
BENCHMARK(BM_Fig1_RunOnly);

// The fig. 1 tuple replicated once per step window: per-transfer simulation
// cost at scale (the paper: "Execution is very fast").
void BM_Fig1_ReplicatedTransfers(benchmark::State& state) {
  const unsigned transfers = static_cast<unsigned>(state.range(0));
  Design d;
  d.name = "replicated";
  d.registers = {{"R1", 30}, {"R2", 12}};
  d.buses = {{"B1"}, {"B2"}};
  d.modules = {{"ADD", ModuleKind::kAdd, 1}};
  for (unsigned i = 0; i < transfers; ++i) {
    const unsigned step = 1 + 2 * i;
    d.transfers.push_back(RegisterTransfer::full("R1", "B1", "R2", "B2", step,
                                                 "ADD", step + 1, "B1", "R1"));
  }
  d.cs_max = 2 * transfers + 1;

  std::uint64_t deltas = 0;
  for (auto _ : state) {
    auto model = transfer::build_model(d);
    const rtl::RunResult result = model->run();
    deltas = result.stats.delta_cycles;
    benchmark::DoNotOptimize(result);
  }
  state.counters["delta_cycles"] = static_cast<double>(deltas);
  state.counters["deltas_per_transfer"] =
      static_cast<double>(deltas) / transfers;
  state.SetItemsProcessed(state.iterations() * transfers);
}
BENCHMARK(BM_Fig1_ReplicatedTransfers)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
