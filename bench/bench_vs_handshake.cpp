// Experiment E6a — the paper's headline performance claim:
// "Execution is very fast, because we need not to deal with asynchronous
// handshake, as it is often used for exchanging values between modules
// when more abstract timing is modeled by means of VHDL without
// introducing physical time."
//
// Same schedule, two abstract-timing models on the same kernel:
//   paper     : six-phase control steps on delta cycles
//   handshake : four-phase req/ack exchanges per value transfer
// Reported counters give deltas/events per register transfer for both.

#include <benchmark/benchmark.h>

#include "baseline/handshake.h"
#include "transfer/build.h"
#include "verify/random_design.h"

namespace {

using namespace ctrtl;

transfer::Design workload(unsigned transfers) {
  verify::RandomDesignOptions options;
  options.seed = 11;
  options.num_transfers = transfers;
  return verify::random_design(options);
}

void BM_PaperModel(benchmark::State& state) {
  const unsigned transfers = static_cast<unsigned>(state.range(0));
  const transfer::Design design = workload(transfers);
  std::uint64_t deltas = 0;
  std::uint64_t events = 0;
  std::uint64_t resumptions = 0;
  for (auto _ : state) {
    auto model = transfer::build_model(design);
    const rtl::RunResult result = model->run();
    deltas = result.stats.delta_cycles;
    events = result.stats.events;
    resumptions = result.stats.resumptions;
    benchmark::DoNotOptimize(result);
  }
  state.counters["deltas_per_transfer"] = static_cast<double>(deltas) / transfers;
  state.counters["events_per_transfer"] = static_cast<double>(events) / transfers;
  state.counters["resume_per_transfer"] =
      static_cast<double>(resumptions) / transfers;
  state.SetItemsProcessed(state.iterations() * transfers);
}
BENCHMARK(BM_PaperModel)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_PaperModelDispatch(benchmark::State& state) {
  // Ablation: the same clock-free model with the dispatcher execution mode
  // (delta-ordinal-indexed transfer table instead of per-process wait-until
  // re-evaluation). Observable behaviour is identical; the per-delta cost
  // drops from O(transfers) to O(active transfers).
  const unsigned transfers = static_cast<unsigned>(state.range(0));
  const transfer::Design design = workload(transfers);
  std::uint64_t deltas = 0;
  for (auto _ : state) {
    auto model = transfer::build_model(design, rtl::TransferMode::kDispatch);
    const rtl::RunResult result = model->run();
    deltas = result.stats.delta_cycles;
    benchmark::DoNotOptimize(result);
  }
  state.counters["deltas_per_transfer"] = static_cast<double>(deltas) / transfers;
  state.SetItemsProcessed(state.iterations() * transfers);
}
BENCHMARK(BM_PaperModelDispatch)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_HandshakeModel(benchmark::State& state) {
  const unsigned transfers = static_cast<unsigned>(state.range(0));
  const transfer::Design design = workload(transfers);
  std::uint64_t deltas = 0;
  std::uint64_t events = 0;
  std::uint64_t resumptions = 0;
  for (auto _ : state) {
    baseline::HandshakeModel model(design);
    const baseline::HandshakeModel::Result result = model.run();
    deltas = result.stats.delta_cycles;
    events = result.stats.events;
    resumptions = result.stats.resumptions;
    benchmark::DoNotOptimize(result);
  }
  state.counters["deltas_per_transfer"] = static_cast<double>(deltas) / transfers;
  state.counters["events_per_transfer"] = static_cast<double>(events) / transfers;
  state.counters["resume_per_transfer"] =
      static_cast<double>(resumptions) / transfers;
  state.SetItemsProcessed(state.iterations() * transfers);
}
BENCHMARK(BM_HandshakeModel)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

}  // namespace
