// Experiment E9 (paper sections 1-2): the subset is *executable* VHDL.
// Measures the front-end pipeline on emitted subset designs — lexing +
// parsing, subset checking, elaboration, and interpreted simulation — and
// compares interpreted VHDL execution against the native C++ model of the
// same design.

#include <benchmark/benchmark.h>

#include "transfer/build.h"
#include "verify/random_design.h"
#include "vhdl/elaborator.h"
#include "vhdl/emitter.h"
#include "vhdl/parser.h"
#include "vhdl/subset_check.h"

namespace {

using namespace ctrtl;

transfer::Design workload(unsigned transfers) {
  verify::RandomDesignOptions options;
  options.seed = 23;
  options.num_transfers = transfers;
  return verify::random_design(options);
}

void BM_ParseSubset(benchmark::State& state) {
  const std::string source =
      vhdl::emit_vhdl(workload(static_cast<unsigned>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vhdl::parse(source));
  }
  state.SetBytesProcessed(state.iterations() * source.size());
}
BENCHMARK(BM_ParseSubset)->Arg(8)->Arg(64)->Arg(256);

void BM_SubsetCheck(benchmark::State& state) {
  const std::string source =
      vhdl::emit_vhdl(workload(static_cast<unsigned>(state.range(0))));
  const vhdl::DesignFile file = vhdl::parse(source);
  for (auto _ : state) {
    common::DiagnosticBag diags;
    if (!vhdl::check_subset(file, diags)) {
      state.SkipWithError("emitted design failed subset check");
    }
  }
}
BENCHMARK(BM_SubsetCheck)->Arg(8)->Arg(64)->Arg(256);

void BM_ElaborateAndRun(benchmark::State& state) {
  const transfer::Design design = workload(static_cast<unsigned>(state.range(0)));
  const std::string source = vhdl::emit_vhdl(design);
  const std::string top = vhdl::vhdl_name(design.name);
  std::uint64_t deltas = 0;
  for (auto _ : state) {
    common::DiagnosticBag diags;
    auto model = vhdl::load_model(source, top, diags);
    if (!model) {
      state.SkipWithError("elaboration failed");
      break;
    }
    model->run();
    deltas = model->scheduler().stats().delta_cycles;
    benchmark::DoNotOptimize(model);
  }
  state.counters["delta_cycles"] = static_cast<double>(deltas);
  state.SetItemsProcessed(state.iterations() * design.cs_max);
}
BENCHMARK(BM_ElaborateAndRun)->Arg(8)->Arg(64)->Arg(256);

void BM_NativeModelSameDesign(benchmark::State& state) {
  // Native C++ components on the same kernel: how much the interpreted
  // VHDL costs relative to compiled-in processes.
  const transfer::Design design = workload(static_cast<unsigned>(state.range(0)));
  std::uint64_t deltas = 0;
  for (auto _ : state) {
    auto model = transfer::build_model(design);
    const rtl::RunResult result = model->run();
    deltas = result.stats.delta_cycles;
    benchmark::DoNotOptimize(result);
  }
  state.counters["delta_cycles"] = static_cast<double>(deltas);
  state.SetItemsProcessed(state.iterations() * design.cs_max);
}
BENCHMARK(BM_NativeModelSameDesign)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
