// Experiment E7 (paper section 4, future work made real): the automatic
// control-step -> clock-scheme translation. Measures planning, clocked
// model construction, and the clocked simulation itself, plus the full
// equivalence check (abstract trace vs clocked trace).

#include <benchmark/benchmark.h>

#include "clocked/model.h"
#include "transfer/build.h"
#include "verify/equivalence.h"
#include "verify/random_design.h"

namespace {

using namespace ctrtl;

transfer::Design workload(unsigned transfers) {
  verify::RandomDesignOptions options;
  options.seed = 17;
  options.num_transfers = transfers;
  return verify::random_design(options);
}

void BM_PlanTranslation(benchmark::State& state) {
  const transfer::Design design =
      workload(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clocked::plan_translation(design));
  }
  state.SetItemsProcessed(state.iterations() * design.transfers.size());
}
BENCHMARK(BM_PlanTranslation)->Arg(8)->Arg(64)->Arg(512);

void BM_ClockedSimulation(benchmark::State& state) {
  const transfer::Design design =
      workload(static_cast<unsigned>(state.range(0)));
  const clocked::TranslationPlan plan = clocked::plan_translation(design);
  std::uint64_t fs = 0;
  for (auto _ : state) {
    clocked::ClockedModel model(plan);
    const clocked::ClockedModel::Result result = model.run();
    fs = result.elapsed_fs;
    benchmark::DoNotOptimize(result);
  }
  state.counters["clock_cycles"] = plan.clock_cycles;
  state.counters["simulated_fs"] = static_cast<double>(fs);
  state.SetItemsProcessed(state.iterations() * plan.clock_cycles);
}
BENCHMARK(BM_ClockedSimulation)->Arg(8)->Arg(64)->Arg(512);

void BM_TwoPhaseClockedSimulation(benchmark::State& state) {
  // The alternative clock scheme (two cycles per control step): same
  // observable behaviour, twice the cycles — the cycle-count cost of a
  // looser per-cycle timing budget.
  const transfer::Design design =
      workload(static_cast<unsigned>(state.range(0)));
  const clocked::TranslationPlan plan = clocked::plan_translation(design);
  unsigned cycles = 0;
  for (auto _ : state) {
    clocked::ClockedModel model(plan, 1'000'000,
                                clocked::ClockScheme::kTwoCyclesPerStep);
    const clocked::ClockedModel::Result result = model.run();
    cycles = result.clock_cycles;
    benchmark::DoNotOptimize(result);
  }
  state.counters["clock_cycles"] = cycles;
  state.SetItemsProcessed(state.iterations() * cycles);
}
BENCHMARK(BM_TwoPhaseClockedSimulation)->Arg(8)->Arg(64)->Arg(512);

void BM_FullEquivalenceCheck(benchmark::State& state) {
  // Abstract run + clocked run + write-trace comparison: the cost of
  // certifying one translation.
  const transfer::Design design =
      workload(static_cast<unsigned>(state.range(0)));
  const clocked::TranslationPlan plan = clocked::plan_translation(design);
  for (auto _ : state) {
    auto abstract = transfer::build_model(design);
    verify::RegisterWriteTrace trace(*abstract);
    abstract->run();
    clocked::ClockedModel model(plan);
    model.run();
    const verify::CheckReport report = verify::compare_write_traces(
        trace.writes(), model.writes(), /*ignore_preload=*/true);
    if (!report.consistent()) {
      state.SkipWithError("translation not equivalent");
    }
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * design.transfers.size());
}
BENCHMARK(BM_FullEquivalenceCheck)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
