// Experiment E10: batched simulation throughput. N independent instances of
// a randomized clock-free design (distinct seeds, so distinct schedules and
// datapaths) run across a BatchRunner worker pool, one Scheduler per
// worker-resident simulation. The single-instance benchmark is the
// per-request cost; the batch benchmarks show how throughput scales with
// worker count. On a W-core host batched throughput approaches W x the
// single-worker figure because instances share no mutable state; on fewer
// cores the worker counts above the core count simply tie.
//
// Experiment E12 (PR 4): the lane engine. All instances share one design;
// BM_BatchCompiledShared elaborates one compiled model per instance from the
// shared schedule (lower once, elaborate N times), BM_BatchLanes shares the
// whole action table and runs instances as SoA lane blocks. The pair is the
// direct ablation of per-instance models vs lanes at identical work.

#include <benchmark/benchmark.h>

#include <memory>

#include "rtl/batch_runner.h"
#include "transfer/build.h"
#include "transfer/schedule.h"
#include "verify/random_design.h"

namespace {

using namespace ctrtl;

constexpr unsigned kTransfersPerInstance = 48;

transfer::Design instance_design(std::size_t instance) {
  verify::RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(1000 + instance);
  options.num_transfers = kTransfersPerInstance;
  return verify::random_design(options);
}

rtl::BatchRunner::ModelFactory factory(
    rtl::TransferMode mode = rtl::TransferMode::kProcessPerTransfer) {
  return [mode](std::size_t instance) {
    return transfer::build_model(instance_design(instance), mode);
  };
}

void run_single_instance(benchmark::State& state, rtl::TransferMode mode) {
  rtl::BatchRunner runner(factory(mode), rtl::BatchRunOptions{.workers = 1});
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const rtl::InstanceResult result = runner.run_one(0);
    steps = result.stats.delta_cycles / rtl::kPhasesPerStep;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(steps));
  state.counters["control_steps"] = static_cast<double>(steps);
}

void BM_SingleInstance(benchmark::State& state) {
  run_single_instance(state, rtl::TransferMode::kProcessPerTransfer);
}
BENCHMARK(BM_SingleInstance);

// The PR 3 fast path: the same workload on the compiled static-schedule
// engine (rtl::CompiledEngine) — identical results, no event machinery.
void BM_SingleInstanceCompiled(benchmark::State& state) {
  run_single_instance(state, rtl::TransferMode::kCompiled);
}
BENCHMARK(BM_SingleInstanceCompiled);

void run_batch(benchmark::State& state, rtl::TransferMode mode) {
  const auto instances = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  rtl::BatchRunner runner(factory(mode), rtl::BatchRunOptions{.workers = workers});
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const rtl::BatchRunResult result = runner.run(instances);
    steps = result.total.delta_cycles / rtl::kPhasesPerStep;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(steps));
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["workers"] = static_cast<double>(workers);
}

void BM_Batch(benchmark::State& state) {
  run_batch(state, rtl::TransferMode::kProcessPerTransfer);
}
BENCHMARK(BM_Batch)
    ->ArgsProduct({{16, 64}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_BatchCompiled(benchmark::State& state) {
  run_batch(state, rtl::TransferMode::kCompiled);
}
BENCHMARK(BM_BatchCompiled)
    ->ArgsProduct({{16, 64}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void run_shared_design_batch(benchmark::State& state, rtl::BatchEngineKind engine) {
  const auto instances = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  const auto design = transfer::CompiledDesign::compile(instance_design(0));
  rtl::BatchRunner runner(design,
                          rtl::BatchRunOptions{.workers = workers, .engine = engine});
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const rtl::BatchRunResult result = runner.run(instances);
    steps = result.total.delta_cycles / rtl::kPhasesPerStep;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(steps));
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["workers"] = static_cast<double>(workers);
}

// Per-instance compiled models of ONE design, elaborated from the shared
// pre-lowered schedule. Baseline side of the lane ablation.
void BM_BatchCompiledShared(benchmark::State& state) {
  run_shared_design_batch(state, rtl::BatchEngineKind::kPerInstance);
}
BENCHMARK(BM_BatchCompiledShared)
    ->ArgsProduct({{64, 256}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

// The lane engine: one shared action table, SoA lane blocks across workers.
void BM_BatchLanes(benchmark::State& state) {
  run_shared_design_batch(state, rtl::BatchEngineKind::kCompiledLanes);
}
BENCHMARK(BM_BatchLanes)
    ->ArgsProduct({{64, 256}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
