// Experiment E10: batched simulation throughput. N independent instances of
// a randomized clock-free design (distinct seeds, so distinct schedules and
// datapaths) run across a BatchRunner worker pool, one Scheduler per
// worker-resident simulation. The single-instance benchmark is the
// per-request cost; the batch benchmarks show how throughput scales with
// worker count. On a W-core host batched throughput approaches W x the
// single-worker figure because instances share no mutable state; on fewer
// cores the worker counts above the core count simply tie.

#include <benchmark/benchmark.h>

#include <memory>

#include "rtl/batch_runner.h"
#include "transfer/build.h"
#include "verify/random_design.h"

namespace {

using namespace ctrtl;

constexpr unsigned kTransfersPerInstance = 48;

transfer::Design instance_design(std::size_t instance) {
  verify::RandomDesignOptions options;
  options.seed = static_cast<std::uint32_t>(1000 + instance);
  options.num_transfers = kTransfersPerInstance;
  return verify::random_design(options);
}

rtl::BatchRunner::ModelFactory factory() {
  return [](std::size_t instance) {
    return transfer::build_model(instance_design(instance));
  };
}

void BM_SingleInstance(benchmark::State& state) {
  rtl::BatchRunner runner(factory(), rtl::BatchRunOptions{.workers = 1});
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const rtl::InstanceResult result = runner.run_one(0);
    steps = result.stats.delta_cycles / rtl::kPhasesPerStep;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(steps));
  state.counters["control_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_SingleInstance);

void BM_Batch(benchmark::State& state) {
  const auto instances = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  rtl::BatchRunner runner(factory(), rtl::BatchRunOptions{.workers = workers});
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const rtl::BatchRunResult result = runner.run(instances);
    steps = result.total.delta_cycles / rtl::kPhasesPerStep;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(steps));
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["workers"] = static_cast<double>(workers);
}
BENCHMARK(BM_Batch)
    ->ArgsProduct({{16, 64}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
