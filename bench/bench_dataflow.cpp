// Cross-cutting experiment: the cost of the formal machinery — symbolic
// dataflow extraction and the automatic HLS equivalence prover (the paper's
// "automatic proving procedure ... performs the verification task").

#include <benchmark/benchmark.h>

#include "hls/emit.h"
#include "verify/dataflow.h"
#include "verify/random_design.h"

namespace {

using namespace ctrtl;

hls::Dfg chain_dfg(unsigned ops) {
  hls::Dfg dfg;
  dfg.add_input("x");
  dfg.add_input("y");
  hls::ValueRef last = hls::ValueRef::of_input("x");
  for (unsigned i = 0; i < ops; ++i) {
    last = hls::ValueRef::of_node(dfg.add_node(
        i % 3 == 0 ? hls::OpKind::kAdd
                   : (i % 3 == 1 ? hls::OpKind::kSub : hls::OpKind::kMax),
        {last, hls::ValueRef::of_input("y")}));
  }
  dfg.mark_output("out", last);
  return dfg;
}

void BM_ExtractDataflow(benchmark::State& state) {
  verify::RandomDesignOptions options;
  options.seed = 31;
  options.num_transfers = static_cast<unsigned>(state.range(0));
  const transfer::Design design = verify::random_design(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::extract_dataflow(design));
  }
  state.SetItemsProcessed(state.iterations() * design.transfers.size());
}
BENCHMARK(BM_ExtractDataflow)->Arg(8)->Arg(64)->Arg(256);

void BM_HlsEquivalenceProof(benchmark::State& state) {
  const hls::Dfg dfg = chain_dfg(static_cast<unsigned>(state.range(0)));
  const hls::EmitResult emitted =
      hls::synthesize(dfg, hls::default_resources(), "bench");
  for (auto _ : state) {
    const auto mismatches = verify::check_hls_equivalence(
        dfg, emitted.design, emitted.output_registers);
    if (!mismatches.empty()) {
      state.SkipWithError("proof failed");
    }
    benchmark::DoNotOptimize(mismatches);
  }
  state.SetItemsProcessed(state.iterations() * dfg.nodes().size());
}
BENCHMARK(BM_HlsEquivalenceProof)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
