// Experiment E4 (paper section 2.7): locating resource conflicts. The
// paper's claim is that the delta-cycle / control-step correspondence makes
// conflicts cheap to find and precise to locate. Measures (a) static
// analysis, (b) the reference semantics, and (c) full simulation with the
// conflict monitor, on randomized designs with injected conflicts.

#include <benchmark/benchmark.h>

#include "transfer/build.h"
#include "transfer/conflict.h"
#include "verify/random_design.h"
#include "verify/semantics.h"

namespace {

using namespace ctrtl;

transfer::Design conflicted_design(unsigned transfers) {
  verify::RandomDesignOptions options;
  options.seed = 7;
  options.num_transfers = transfers;
  options.inject_conflicts = true;
  return verify::random_design(options);
}

void BM_StaticAnalysis(benchmark::State& state) {
  const transfer::Design design =
      conflicted_design(static_cast<unsigned>(state.range(0)));
  std::size_t found = 0;
  for (auto _ : state) {
    const transfer::AnalysisReport report = transfer::analyze(design);
    found = report.drive_conflicts.size();
    benchmark::DoNotOptimize(report);
  }
  if (found == 0) {
    state.SkipWithError("injected conflict not found");
  }
  state.counters["conflicts_found"] = static_cast<double>(found);
}
BENCHMARK(BM_StaticAnalysis)->Arg(8)->Arg(64)->Arg(256);

void BM_ReferenceSemantics(benchmark::State& state) {
  const transfer::Design design =
      conflicted_design(static_cast<unsigned>(state.range(0)));
  std::size_t found = 0;
  for (auto _ : state) {
    const verify::EvalResult result = verify::evaluate(design);
    found = result.conflicts.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["conflicts_found"] = static_cast<double>(found);
}
BENCHMARK(BM_ReferenceSemantics)->Arg(8)->Arg(64)->Arg(256);

void BM_SimulationWithMonitor(benchmark::State& state) {
  const transfer::Design design =
      conflicted_design(static_cast<unsigned>(state.range(0)));
  std::size_t found = 0;
  for (auto _ : state) {
    auto model = transfer::build_model(design);
    const rtl::RunResult result = model->run();
    found = result.conflicts.size();
    benchmark::DoNotOptimize(result);
  }
  if (found == 0) {
    state.SkipWithError("injected conflict not observed");
  }
  state.counters["conflicts_found"] = static_cast<double>(found);
}
BENCHMARK(BM_SimulationWithMonitor)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
