// Experiment E8 (paper section 4, application 2): "High level synthesis
// results are translated into our subset and can then be simulated at a
// high level." Measures scheduling/allocation/emission throughput and the
// end-to-end synthesize+simulate cost against the DFG size.

#include <benchmark/benchmark.h>

#include <random>

#include "hls/emit.h"
#include "transfer/build.h"

namespace {

using namespace ctrtl;

hls::Dfg chain_dfg(unsigned ops) {
  // A mixed chain alternating adds/subs with occasional fresh-input muls:
  // enough dependencies to exercise scheduling, bounded magnitudes.
  hls::Dfg dfg;
  dfg.add_input("x");
  dfg.add_input("y");
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> pick(0, 3);
  hls::ValueRef last = hls::ValueRef::of_input("x");
  for (unsigned i = 0; i < ops; ++i) {
    switch (pick(rng)) {
      case 0:
        last = hls::ValueRef::of_node(
            dfg.add_node(hls::OpKind::kAdd, {last, hls::ValueRef::of_input("y")}));
        break;
      case 1:
        last = hls::ValueRef::of_node(
            dfg.add_node(hls::OpKind::kSub, {last, hls::ValueRef::of_constant(1)}));
        break;
      case 2:
        last = hls::ValueRef::of_node(dfg.add_node(
            hls::OpKind::kMin, {last, hls::ValueRef::of_constant(1000)}));
        break;
      default:
        // Fresh-input multiply, merged back through a max.
        last = hls::ValueRef::of_node(dfg.add_node(
            hls::OpKind::kMax,
            {last, hls::ValueRef::of_node(dfg.add_node(
                       hls::OpKind::kMul, {hls::ValueRef::of_input("x"),
                                           hls::ValueRef::of_constant(2)}))}));
        break;
    }
  }
  dfg.mark_output("out", last);
  return dfg;
}

void BM_Synthesize(benchmark::State& state) {
  const hls::Dfg dfg = chain_dfg(static_cast<unsigned>(state.range(0)));
  unsigned cs_max = 0;
  unsigned registers = 0;
  for (auto _ : state) {
    const hls::EmitResult result =
        hls::synthesize(dfg, hls::default_resources(), "bench");
    cs_max = result.design.cs_max;
    registers = static_cast<unsigned>(result.design.registers.size());
    benchmark::DoNotOptimize(result);
  }
  state.counters["control_steps"] = cs_max;
  state.counters["registers"] = registers;
  state.SetItemsProcessed(state.iterations() * dfg.nodes().size());
}
BENCHMARK(BM_Synthesize)->Arg(8)->Arg(64)->Arg(256);

void BM_SynthesizeAndSimulate(benchmark::State& state) {
  const hls::Dfg dfg = chain_dfg(static_cast<unsigned>(state.range(0)));
  const std::map<std::string, std::int64_t> inputs = {{"x", 9}, {"y", 4}};
  const auto expected = hls::evaluate(dfg, inputs);
  for (auto _ : state) {
    const hls::EmitResult emitted =
        hls::synthesize(dfg, hls::default_resources(), "bench");
    auto model = transfer::build_model(emitted.design);
    for (const auto& [name, value] : inputs) {
      model->set_input(name, rtl::RtValue::of(value));
    }
    model->run();
    const rtl::RtValue out =
        model->find_register(emitted.output_registers.at("out"))->value();
    if (out != rtl::RtValue::of(expected.at("out"))) {
      state.SkipWithError("simulation diverged from algorithmic evaluation");
    }
  }
  state.SetItemsProcessed(state.iterations() * dfg.nodes().size());
}
BENCHMARK(BM_SynthesizeAndSimulate)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
