// Experiment E2 (paper fig. 2, section 2.2): the six-phase control-step
// wheel. Verifies and measures the paper's cost model — "the simulation of
// each control step takes 6 delta simulation cycles; the complete
// simulation takes CS_MAX * 6 delta simulation cycles" — across a sweep of
// CS_MAX values, reporting wall time per control step.

#include <benchmark/benchmark.h>

#include "rtl/controller.h"
#include "rtl/transfer_process.h"

namespace {

using namespace ctrtl;

void BM_ControllerPhaseWheel(benchmark::State& state) {
  const unsigned cs_max = static_cast<unsigned>(state.range(0));
  std::uint64_t deltas = 0;
  for (auto _ : state) {
    kernel::Scheduler sched;
    rtl::Controller controller(sched, cs_max);
    sched.run();
    deltas = sched.stats().delta_cycles;
    if (deltas != static_cast<std::uint64_t>(cs_max) * 6) {
      state.SkipWithError("delta-cycle invariant violated");
    }
  }
  state.counters["delta_cycles"] = static_cast<double>(deltas);
  state.counters["deltas_per_step"] = static_cast<double>(deltas) / cs_max;
  state.SetItemsProcessed(state.iterations() * cs_max);  // steps/second
}
BENCHMARK(BM_ControllerPhaseWheel)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

// How the per-step cost scales with the number of idle waiter processes
// (every TRANS process re-checks its wait-until condition on each phase
// event — the cost of the paper's timing scheme on large designs).
void BM_PhaseWheelWithIdleWaiters(benchmark::State& state) {
  const unsigned waiters = static_cast<unsigned>(state.range(0));
  constexpr unsigned kSteps = 100;
  for (auto _ : state) {
    kernel::Scheduler sched;
    rtl::Controller controller(sched, kSteps);
    auto& source = sched.make_signal<rtl::RtValue>("src", rtl::RtValue::of(1));
    std::vector<std::unique_ptr<rtl::TransferProcess>> transfers;
    auto& sink = sched.make_signal<rtl::RtValue>(
        "sink", rtl::RtValue::disc(),
        [](std::span<const rtl::RtValue> v) { return rtl::resolve_rt(v); });
    transfers.reserve(waiters);
    for (unsigned i = 0; i < waiters; ++i) {
      // Every waiter fires in step 1 and then sits in its wait-until for the
      // remaining 99 steps.
      transfers.push_back(std::make_unique<rtl::TransferProcess>(
          sched, controller, 1, rtl::Phase::kRa, source, sink,
          "t" + std::to_string(i)));
    }
    sched.run();
    benchmark::DoNotOptimize(sched.stats());
    sched.shutdown();
  }
  state.counters["condition_checks_per_step"] = static_cast<double>(waiters);
  state.SetItemsProcessed(state.iterations() * kSteps);
}
BENCHMARK(BM_PhaseWheelWithIdleWaiters)->Arg(0)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace
