#include "serve/snapshot.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "transfer/hash.h"

namespace ctrtl::serve {

namespace {

constexpr std::string_view kRecordMagic = "SNAP1";
/// A record can only start at offset 0 or right after a newline; these are
/// the two spellings of that boundary.
constexpr std::string_view kRecordStart = "SNAP1 ";
constexpr std::string_view kResyncNeedle = "\nSNAP1 ";

std::uint64_t record_checksum(std::uint64_t key, std::uint8_t flags,
                              std::string_view design,
                              std::string_view fault) {
  transfer::StreamHasher hasher;
  hasher.update(key);
  hasher.update(flags);
  hasher.update(design);
  hasher.update(fault);
  return hasher.digest();
}

bool parse_hex64(std::string_view text, std::uint64_t* value) {
  if (text.size() != 16) {
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *value, 16);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool parse_dec64(std::string_view text, std::uint64_t* value) {
  if (text.empty()) {
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *value);
  return ec == std::errc() && ptr == text.data() + text.size();
}

/// Takes the next space-delimited token off `rest`.
std::string_view next_token(std::string_view* rest) {
  const std::size_t space = rest->find(' ');
  std::string_view token;
  if (space == std::string_view::npos) {
    token = *rest;
    *rest = {};
  } else {
    token = rest->substr(0, space);
    rest->remove_prefix(space + 1);
  }
  return token;
}

/// Parsed header fields; filled by try_parse_header.
struct Header {
  std::uint64_t key = 0;
  std::uint64_t flags = 0;
  std::uint64_t design_len = 0;
  std::uint64_t fault_len = 0;
  std::uint64_t checksum = 0;
};

bool try_parse_header(std::string_view line, Header* header) {
  std::string_view rest = line;
  if (next_token(&rest) != kRecordMagic) {
    return false;
  }
  if (!parse_hex64(next_token(&rest), &header->key)) {
    return false;
  }
  if (!parse_dec64(next_token(&rest), &header->flags) || header->flags > 1) {
    return false;
  }
  if (!parse_dec64(next_token(&rest), &header->design_len)) {
    return false;
  }
  if (!parse_dec64(next_token(&rest), &header->fault_len)) {
    return false;
  }
  if (!parse_hex64(next_token(&rest), &header->checksum) || !rest.empty()) {
    return false;
  }
  // A fault blob without the fault flag (or vice versa) is structural
  // corruption, not a shorter record.
  if (header->flags == 0 && header->fault_len != 0) {
    return false;
  }
  return true;
}

}  // namespace

std::string encode_snapshot_record(const SnapshotRecord& record) {
  const std::uint8_t flags = record.has_fault_plan ? 1 : 0;
  const std::string_view fault =
      record.has_fault_plan ? std::string_view(record.fault_plan_text)
                            : std::string_view();
  std::ostringstream out;
  out << kRecordMagic << ' ' << transfer::to_hex(record.key) << ' '
      << static_cast<unsigned>(flags) << ' ' << record.design_text.size()
      << ' ' << fault.size() << ' '
      << transfer::to_hex(
             record_checksum(record.key, flags, record.design_text, fault))
      << '\n'
      << record.design_text << '\n'
      << fault << '\n';
  return out.str();
}

SnapshotParseResult parse_snapshot(std::string_view data) {
  SnapshotParseResult result;
  std::size_t pos = 0;
  while (pos < data.size()) {
    // Resynchronize: records start at offset 0 or right after a newline.
    if (data.substr(pos, kRecordStart.size()) != kRecordStart) {
      ++result.skipped;
      const std::size_t next = data.find(kResyncNeedle, pos);
      if (next == std::string_view::npos) {
        return result;
      }
      pos = next + 1;
    }
    const std::size_t header_end = data.find('\n', pos);
    if (header_end == std::string_view::npos) {
      // Torn header: the crash happened before the header newline landed.
      ++result.skipped;
      return result;
    }
    Header header;
    if (!try_parse_header(data.substr(pos, header_end - pos), &header)) {
      // Corrupt header. Count it and hunt for the next record boundary.
      ++result.skipped;
      const std::size_t next = data.find(kResyncNeedle, header_end);
      if (next == std::string_view::npos) {
        return result;
      }
      pos = next + 1;
      continue;
    }
    const std::size_t body = header_end + 1;
    const std::uint64_t body_len = header.design_len + 1 + header.fault_len + 1;
    if (data.size() - body < body_len) {
      // Torn body: the declared extent runs past the file — a mid-append
      // crash. Nothing after it can be another record.
      ++result.skipped;
      return result;
    }
    const std::string_view design = data.substr(body, header.design_len);
    const std::string_view fault =
        data.substr(body + header.design_len + 1, header.fault_len);
    const bool separators_ok =
        data[body + header.design_len] == '\n' &&
        data[body + header.design_len + 1 + header.fault_len] == '\n';
    if (!separators_ok) {
      // The lengths point at bytes that are not separators — the header
      // lied. Treat as garbage and resynchronize.
      ++result.skipped;
      const std::size_t next = data.find(kResyncNeedle, header_end);
      if (next == std::string_view::npos) {
        return result;
      }
      pos = next + 1;
      continue;
    }
    pos = body + body_len;
    const std::uint8_t flags = static_cast<std::uint8_t>(header.flags);
    if (record_checksum(header.key, flags, design, fault) != header.checksum) {
      // Framing intact, content flipped: skip exactly this record.
      ++result.skipped;
      continue;
    }
    SnapshotRecord record;
    record.key = header.key;
    record.design_text = std::string(design);
    record.has_fault_plan = flags != 0;
    record.fault_plan_text = std::string(fault);
    result.records.push_back(std::move(record));
  }
  return result;
}

bool load_snapshot_file(const std::string& path, SnapshotParseResult* out,
                        std::string* error) {
  *out = SnapshotParseResult{};
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    // First boot: no snapshot yet is the normal empty case. Only report a
    // failure if something exists at the path but cannot be read.
    std::ifstream probe(path);
    if (!probe.good()) {
      return true;
    }
    if (error != nullptr) {
      *error = "cannot open snapshot file '" + path + "'";
    }
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    if (error != nullptr) {
      *error = "read error on snapshot file '" + path + "'";
    }
    return false;
  }
  *out = parse_snapshot(buffer.str());
  return true;
}

bool SnapshotJournal::append(const SnapshotRecord& record) {
  const std::scoped_lock lock(mutex_);
  if (journaled_.contains(record.key)) {
    return true;
  }
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out.is_open()) {
    return false;
  }
  const std::string encoded = encode_snapshot_record(record);
  out.write(encoded.data(),
            static_cast<std::streamsize>(encoded.size()));
  out.flush();
  if (!out.good()) {
    return false;
  }
  journaled_.insert(record.key);
  return true;
}

void SnapshotJournal::note_existing(std::uint64_t key) {
  const std::scoped_lock lock(mutex_);
  journaled_.insert(key);
}

}  // namespace ctrtl::serve
