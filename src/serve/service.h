#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>
#include <deque>

#include "serve/cache.h"
#include "serve/protocol.h"

namespace ctrtl::serve {

/// Tuning knobs for a `SimulationService`. docs/SERVICE.md ("Operations")
/// discusses how to size them.
struct ServiceOptions {
  /// Job worker threads — jobs processed concurrently.
  std::size_t workers = 2;
  /// Worker threads inside each job's `rtl::BatchRunner` (lane-block
  /// parallelism within one job). workers * lane_workers should not exceed
  /// the machine.
  std::size_t lane_workers = 1;
  /// Lane-engine shard size, forwarded to `BatchRunOptions::lane_block`.
  std::size_t lane_block = 16;
  /// Bounded admission queue: jobs accepted but not yet picked up by a
  /// worker. A full queue rejects with BUSY instead of growing without
  /// bound — the backpressure contract.
  std::size_t queue_capacity = 16;
  /// Lowered designs retained, LRU (`DesignCache`).
  std::size_t cache_capacity = 8;
  /// Per-job instance-count limit (E-LIMIT above it).
  std::uint64_t max_instances = 65536;
  /// Per-blob source-size limit in bytes (E-LIMIT above it).
  std::size_t max_source_bytes = 1u << 20;
  /// Test/observability hook: invoked on the worker thread with the job id
  /// right after dequeue, before any processing. Lets tests park a worker
  /// deterministically to exercise queue-full backpressure.
  std::function<void(const std::string& job_id)> on_job_start;
};

enum class SubmitStatus : std::uint8_t {
  kAccepted,  ///< queued; REPORT/DONE/ERROR frames will follow via the sink
  kBusy,      ///< queue full — resubmit later
  kRejected,  ///< failed admission validation; `error` says why
};

/// Synchronous outcome of `submit`. Everything asynchronous (REPORT, DONE,
/// job-level ERROR) arrives through the job's `EventSink` instead.
struct SubmitOutcome {
  SubmitStatus status = SubmitStatus::kRejected;
  /// Jobs in the queue: after enqueue for kAccepted (this job included),
  /// at rejection for kBusy.
  std::uint64_t queued = 0;
  /// Populated when status == kRejected.
  ErrorPayload error;
};

/// Receives a job's asynchronous frames (REPORT per instance in completion
/// order, then exactly one DONE or ERROR). Invoked on worker threads;
/// calls for one job are serialized. Must not block the worker for long —
/// socket-facing callers buffer into a per-connection outbox and let a
/// writer thread drain it (see `ServeServer`).
using EventSink = std::function<void(const Frame& frame)>;

/// The in-process core of `ctrtl_serve`: a bounded job queue, a worker
/// pool, and a content-addressed `DesignCache`, independent of any wire.
/// A job's lifecycle: accept -> hash -> cache hit/miss -> lower ->
/// lane-sharded run (streaming REPORTs as lane blocks complete) -> DONE.
/// Anything that fails before the run starts ends the job with a single
/// structured ERROR frame instead; instance-level failures (watchdog,
/// per-instance errors) are *not* job errors — they stream as REPORT
/// frames with a non-ok status and the job still completes with DONE.
class SimulationService {
 public:
  explicit SimulationService(ServiceOptions options = {});

  /// Drains and joins (`shutdown()`).
  ~SimulationService();

  SimulationService(const SimulationService&) = delete;
  SimulationService& operator=(const SimulationService&) = delete;

  /// Validates and enqueues one job. On kAccepted the sink will be invoked
  /// asynchronously until the job's terminal frame (DONE or ERROR); on
  /// kBusy/kRejected the sink is never invoked.
  [[nodiscard]] SubmitOutcome submit(JobRequest request, EventSink sink);

  [[nodiscard]] StatsPayload stats() const;

  /// Stops admission (further submits are kRejected with E-SHUTDOWN),
  /// drains already-accepted jobs, and joins the workers. Idempotent.
  void shutdown();

 private:
  struct Job {
    JobRequest request;
    EventSink sink;
  };

  void worker_loop();
  void process(Job job);

  ServiceOptions options_;
  DesignCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool draining_ = false;
  std::vector<std::thread> workers_;

  // Counters (guarded by mutex_).
  std::uint64_t jobs_accepted_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_rejected_busy_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::uint64_t instances_completed_ = 0;
};

}  // namespace ctrtl::serve
