#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>
#include <deque>

#include "serve/cache.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"

namespace ctrtl::serve {

/// Tuning knobs for a `SimulationService`. docs/SERVICE.md ("Operations")
/// discusses how to size them.
struct ServiceOptions {
  /// Job worker threads — jobs processed concurrently.
  std::size_t workers = 2;
  /// Worker threads inside each job's `rtl::BatchRunner` (lane-block
  /// parallelism within one job). workers * lane_workers should not exceed
  /// the machine.
  std::size_t lane_workers = 1;
  /// Lane-engine shard size, forwarded to `BatchRunOptions::lane_block`.
  std::size_t lane_block = 16;
  /// Bounded admission queue: jobs accepted but not yet picked up by a
  /// worker. A full queue rejects with BUSY instead of growing without
  /// bound — the backpressure contract.
  std::size_t queue_capacity = 16;
  /// Soft overload threshold for load shedding: once the queue holds at
  /// least this many jobs, *low-priority* submissions are rejected with a
  /// BUSY (reason shed-low-priority, retry hint attached) while normal
  /// work is still admitted up to `queue_capacity`. 0 disables shedding.
  std::size_t shed_queue_depth = 0;
  /// Backoff hint attached to every BUSY reply (`retry-after-ms`); 0 sends
  /// no hint.
  std::uint64_t retry_after_ms = 50;
  /// Lowered designs retained, LRU (`DesignCache`).
  std::size_t cache_capacity = 8;
  /// Per-job instance-count limit (E-LIMIT above it).
  std::uint64_t max_instances = 65536;
  /// Per-blob source-size limit in bytes (E-LIMIT above it).
  std::size_t max_source_bytes = 1u << 20;
  /// Crash-safe cache persistence: when non-empty, every cache miss
  /// appends the job's sources to this append-only snapshot journal, and
  /// construction replays the journal — re-parsing, re-faulting, and
  /// re-lowering each record — to warm the cache before the first job.
  /// Empty disables persistence.
  std::string snapshot_path;
  /// Test/observability hook: invoked on the worker thread with the job id
  /// right after dequeue, before any processing. Lets tests park a worker
  /// deterministically to exercise queue-full backpressure.
  std::function<void(const std::string& job_id)> on_job_start;
};

/// Shared handle for steering one accepted job from outside the worker
/// pool. The server holds one per in-flight job so a vanished client can
/// cancel its work; the service polls it between lane blocks. The first
/// recorded cause wins — a job is terminated for exactly one reason.
class JobControl {
 public:
  /// Requests cooperative cancellation (client abandoned the job). The
  /// worker stops at the next lane-block boundary and ends the job with
  /// E-CANCELLED. No-op if the deadline already fired or the job finished.
  void cancel() {
    int expected = kRunning;
    reason_.compare_exchange_strong(expected, kCancelledByClient);
  }

  /// True once the job emitted its terminal frame (DONE or ERROR).
  [[nodiscard]] bool finished() const {
    return finished_.load(std::memory_order_acquire);
  }

 private:
  friend class SimulationService;

  static constexpr int kRunning = 0;
  static constexpr int kDeadlineExpired = 1;
  static constexpr int kCancelledByClient = 2;

  /// Records deadline expiry unless cancellation won the race.
  void expire() {
    int expected = kRunning;
    reason_.compare_exchange_strong(expected, kDeadlineExpired);
  }

  [[nodiscard]] int reason() const {
    return reason_.load(std::memory_order_acquire);
  }

  void mark_finished() { finished_.store(true, std::memory_order_release); }

  std::atomic<int> reason_{kRunning};
  std::atomic<bool> finished_{false};
};

enum class SubmitStatus : std::uint8_t {
  kAccepted,  ///< queued; REPORT/DONE/ERROR frames will follow via the sink
  kBusy,      ///< queue full or load shed — resubmit later
  kRejected,  ///< failed admission validation; `error` says why
};

/// Synchronous outcome of `submit`. Everything frame-shaped — ACCEPTED
/// (emitted inside `submit` before the job is visible to a worker, so it
/// always precedes the job's other frames), REPORT, DONE, job-level ERROR
/// — arrives through the job's `EventSink` instead.
struct SubmitOutcome {
  SubmitStatus status = SubmitStatus::kRejected;
  /// Jobs in the queue: after enqueue for kAccepted (this job included),
  /// at rejection for kBusy.
  std::uint64_t queued = 0;
  /// Populated when status == kRejected.
  ErrorPayload error;
  /// For kBusy: the server's backoff hint and why the job was turned away.
  std::uint64_t retry_after_ms = 0;
  BusyReason busy_reason = BusyReason::kQueueFull;
  /// For kAccepted: the job's cancellation handle (never null).
  std::shared_ptr<JobControl> control;
};

/// Receives a job's asynchronous frames (one ACCEPTED first, REPORT per
/// instance in completion order, then exactly one DONE or ERROR). Invoked
/// on worker threads (ACCEPTED on the submitting thread, under the queue
/// lock — sinks must not call back into the service); calls for one job
/// are serialized. Must not block the worker for long — socket-facing
/// callers buffer into a per-connection outbox and let a writer thread
/// drain it (see `ServeServer`).
using EventSink = std::function<void(const Frame& frame)>;

/// The in-process core of `ctrtl_serve`: a bounded job queue, a worker
/// pool, and a content-addressed `DesignCache`, independent of any wire.
/// A job's lifecycle: accept -> hash -> cache hit/miss -> lower ->
/// lane-sharded run (streaming REPORTs as lane blocks complete) -> DONE.
/// Anything that fails before the run starts ends the job with a single
/// structured ERROR frame instead; instance-level failures (watchdog,
/// per-instance errors) are *not* job errors — they stream as REPORT
/// frames with a non-ok status and the job still completes with DONE.
///
/// Two more terminal shapes exist for production hardening: a job whose
/// `deadline-ms` budget expires ends with E-DEADLINE, and a job whose
/// client vanished (reader hit EOF; `JobControl::cancel`) ends with
/// E-CANCELLED. Both are *cooperative* — the worker polls between lane
/// blocks, so REPORTs already streamed stay valid and termination latency
/// is bounded by one lane block plus one instance's convergence (bound
/// non-converging instances with max-delta-cycles; the watchdog and the
/// deadline complement each other).
class SimulationService {
 public:
  explicit SimulationService(ServiceOptions options = {});

  /// Drains and joins (`shutdown()`).
  ~SimulationService();

  SimulationService(const SimulationService&) = delete;
  SimulationService& operator=(const SimulationService&) = delete;

  /// Validates and enqueues one job. On kAccepted the sink will be invoked
  /// asynchronously until the job's terminal frame (DONE or ERROR); on
  /// kBusy/kRejected the sink is never invoked.
  [[nodiscard]] SubmitOutcome submit(JobRequest request, EventSink sink);

  [[nodiscard]] StatsPayload stats() const;

  /// Stops admission (further submits are kRejected with E-SHUTDOWN),
  /// drains already-accepted jobs, and joins the workers. Idempotent.
  void shutdown();

 private:
  struct Job {
    JobRequest request;
    EventSink sink;
    std::shared_ptr<JobControl> control;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
  };

  void worker_loop();
  void process(Job job);
  void restore_snapshot();

  ServiceOptions options_;
  DesignCache cache_;
  std::unique_ptr<SnapshotJournal> journal_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool draining_ = false;
  std::vector<std::thread> workers_;

  // Counters (guarded by mutex_; the snapshot pair is written once in the
  // constructor, before any worker exists).
  std::uint64_t jobs_accepted_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_rejected_busy_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::uint64_t jobs_shed_ = 0;
  std::uint64_t jobs_deadline_expired_ = 0;
  std::uint64_t jobs_cancelled_ = 0;
  std::uint64_t instances_completed_ = 0;
  std::uint64_t snapshot_loaded_ = 0;
  std::uint64_t snapshot_skipped_ = 0;
};

}  // namespace ctrtl::serve
