#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "kernel/scheduler.h"
#include "rtl/batch_runner.h"

/// The ctrtl-serve/2 wire protocol: length-prefixed frames carrying
/// line-oriented payloads, exchanged over a local stream socket between a
/// `ctrtl_serve` server and its clients. docs/SERVICE.md is the normative
/// spec; this header is its executable mirror. Everything here is pure
/// string <-> struct transcoding — no sockets, no threads — so the whole
/// grammar is unit-testable byte-for-byte.
namespace ctrtl::serve {

/// Frame header magic. A peer that opens with anything else is speaking a
/// different (or future) protocol and is rejected with E-PROTOCOL.
inline constexpr std::string_view kProtocolMagic = "CTRTL/1";

/// Protocol identifier echoed in HELLO replies. Bumped to /2 when SUBMIT
/// gained `deadline-ms`/`priority`, BUSY gained `retry-after-ms`/`reason`,
/// and STATS gained the shedding/deadline/snapshot counters — the framing
/// layer (the `CTRTL/1` magic) is unchanged and every /1 payload is still
/// a valid /2 payload; the bump names the wider grammar.
inline constexpr std::string_view kProtocolName = "ctrtl-serve/2";

/// Upper bound on one frame's payload; larger declared lengths poison the
/// decoder (a malicious or corrupt length prefix must not trigger a
/// gigabyte allocation).
inline constexpr std::size_t kMaxPayloadBytes = 16u << 20;

/// Every frame type of ctrtl-serve/2. Client-to-server: HELLO, SUBMIT,
/// STATS, SHUTDOWN, BYE. Server-to-client: HELLO (reply), ACCEPTED,
/// REPORT, DONE, ERROR, BUSY, STATS (reply), BYE (ack).
enum class MessageType : std::uint8_t {
  kHello,
  kSubmit,
  kAccepted,
  kReport,
  kDone,
  kError,
  kBusy,
  kStats,
  kShutdown,
  kBye,
};

/// The wire token ("HELLO", "SUBMIT", ...).
[[nodiscard]] std::string to_string(MessageType type);
[[nodiscard]] bool parse_message_type(std::string_view token, MessageType* type);

/// One protocol frame: `CTRTL/1 <TYPE> <LENGTH>\n` followed by LENGTH
/// payload bytes.
struct Frame {
  MessageType type = MessageType::kHello;
  std::string payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Incremental frame decoder: feed raw bytes as they arrive off a socket,
/// pull complete frames out. A malformed header or oversized length poisons
/// the decoder permanently (`failed()`), after which the connection must be
/// torn down — framing cannot be resynchronized once the byte stream is
/// corrupt.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  void feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next complete frame; false when more bytes are needed or
  /// the decoder has failed.
  [[nodiscard]] bool next(Frame* frame);

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  std::string buffer_;
  std::size_t max_payload_;
  bool failed_ = false;
  std::string error_;
};

// ---------------------------------------------------------------------------
// SUBMIT

/// One simulation job, exactly as carried by a SUBMIT payload: sources as
/// text blobs (the server parses, validates, hashes, and lowers them),
/// per-job engine bounds, and the external inputs applied to every
/// instance. This is the job-oriented API the service schedules — the same
/// struct whether it arrived over the wire or was built in-process.
struct JobRequest {
  /// Client-chosen token echoed on every reply for this job. Non-empty,
  /// no whitespace or control characters, at most 256 bytes.
  std::string job_id = "job";
  std::uint64_t instances = 1;
  std::uint64_t max_cycles = kernel::Scheduler::kNoLimit;
  std::uint64_t max_delta_cycles = kernel::Scheduler::kNoLimit;
  /// Wall-clock budget in milliseconds, measured from admission; 0 means
  /// no deadline. An expired job stops at the next lane-block boundary and
  /// terminates with E-DEADLINE (already-streamed REPORTs stay valid).
  std::uint64_t deadline_ms = 0;
  /// Sheddable work: under soft overload (`ServiceOptions::
  /// shed_queue_depth`) low-priority jobs are rejected with a BUSY carrying
  /// a retry hint while normal-priority work is still admitted.
  bool low_priority = false;
  /// (input name, value) pairs applied in order to every instance.
  std::vector<std::pair<std::string, std::int64_t>> inputs;
  /// The design source, .rtd text format.
  std::string design_text;
  /// Optional declarative fault plan (fault::parse_fault_plan grammar).
  bool has_fault_plan = false;
  std::string fault_plan_text;

  friend bool operator==(const JobRequest&, const JobRequest&) = default;
};

[[nodiscard]] std::string encode_submit(const JobRequest& request);
[[nodiscard]] bool parse_submit(std::string_view payload, JobRequest* request,
                                std::string* error);

// ---------------------------------------------------------------------------
// ACCEPTED

struct AcceptedPayload {
  std::string job_id;
  /// Jobs sitting in the queue at admission, this one included.
  std::uint64_t queued = 0;

  friend bool operator==(const AcceptedPayload&, const AcceptedPayload&) = default;
};

[[nodiscard]] std::string encode_accepted(const AcceptedPayload& accepted);
[[nodiscard]] bool parse_accepted(std::string_view payload,
                                  AcceptedPayload* accepted, std::string* error);

// ---------------------------------------------------------------------------
// REPORT — one per instance, streamed as lane blocks complete

/// Wire image of one `rtl::InstanceResult`: status and counters verbatim,
/// conflicts/diagnostics as their canonical renderings, registers as
/// (name, rendered value) in elaboration order. Byte-identical inputs give
/// byte-identical payloads, which is what the equivalence smoke diffs
/// against `ctrtl_design` output.
struct ReportPayload {
  std::string job_id;
  std::uint64_t instance = 0;
  std::string status;  ///< "ok", "watchdog-tripped", "error"
  std::uint64_t cycles = 0;
  std::uint64_t delta_cycles = 0;
  std::uint64_t events = 0;
  std::uint64_t updates = 0;
  std::uint64_t transactions = 0;
  std::vector<std::string> conflicts;  ///< to_string(Conflict), in order
  std::vector<std::pair<std::string, std::string>> registers;
  std::vector<std::string> diagnostics;  ///< to_string(Diagnostic), in order

  friend bool operator==(const ReportPayload&, const ReportPayload&) = default;
};

[[nodiscard]] std::string encode_report(const std::string& job_id,
                                        std::uint64_t instance,
                                        const rtl::InstanceResult& result);
[[nodiscard]] bool parse_report(std::string_view payload, ReportPayload* report,
                                std::string* error);

/// ctrtl_design-compatible rendering of one report: conflict lines
/// ("  <conflict>") followed by the "final register values:" block with
/// `%-12s` name padding — exactly the bytes `ctrtl_design --simulate`
/// prints for the same instance, enabling byte-for-byte diffs in CI.
[[nodiscard]] std::string render_design_style(const ReportPayload& report);

// ---------------------------------------------------------------------------
// DONE

struct DonePayload {
  std::string job_id;
  std::uint64_t instances = 0;
  std::uint64_t failures = 0;   ///< instances whose report is not ok
  std::uint64_t conflicts = 0;  ///< total conflict records across instances
  bool cache_hit = false;
  std::string cache_key;  ///< 16 lowercase hex digits
  std::uint64_t lower_ns = 0;  ///< time spent lowering (0 on a cache hit)
  std::uint64_t run_ns = 0;

  friend bool operator==(const DonePayload&, const DonePayload&) = default;
};

[[nodiscard]] std::string encode_done(const DonePayload& done);
[[nodiscard]] bool parse_done(std::string_view payload, DonePayload* done,
                              std::string* error);

// ---------------------------------------------------------------------------
// ERROR

/// Job- and connection-level failure classes. Instance-level failures
/// (watchdog trips, simulation errors) are NOT errors at this level — they
/// stream as REPORT frames with a non-ok status, and the job still DONEs.
enum class ErrorCode : std::uint8_t {
  kProtocol,   ///< E-PROTOCOL: malformed frame, payload, or message type
  kParse,      ///< E-PARSE: design text did not parse
  kValidate,   ///< E-VALIDATE: design parsed but failed validation
  kFaultPlan,  ///< E-FAULT-PLAN: fault plan did not parse or apply
  kLimit,      ///< E-LIMIT: request exceeds a server limit
  kShutdown,   ///< E-SHUTDOWN: server is draining, job not accepted
  kInternal,   ///< E-INTERNAL: unexpected server-side exception
  kDeadline,   ///< E-DEADLINE: the job's deadline-ms budget expired
  kCancelled,  ///< E-CANCELLED: the client abandoned the job
};

[[nodiscard]] std::string to_string(ErrorCode code);
[[nodiscard]] bool parse_error_code(std::string_view token, ErrorCode* code);

struct ErrorPayload {
  std::string job_id;  ///< empty when the failure precedes job identity
  ErrorCode code = ErrorCode::kInternal;
  std::vector<std::string> diagnostics;

  friend bool operator==(const ErrorPayload&, const ErrorPayload&) = default;
};

[[nodiscard]] std::string encode_error(const ErrorPayload& error_payload);
[[nodiscard]] bool parse_error(std::string_view payload, ErrorPayload* error_payload,
                               std::string* error);

// ---------------------------------------------------------------------------
// BUSY — admission-control rejection

/// Why a BUSY was emitted: the hard bounded-queue limit, or the soft
/// load-shedding tier dropping low-priority work before the queue fills.
enum class BusyReason : std::uint8_t {
  kQueueFull,  ///< "queue-full": the bounded admission queue is at capacity
  kShed,       ///< "shed-low-priority": soft limit shed a low-priority job
};

[[nodiscard]] std::string to_string(BusyReason reason);
[[nodiscard]] bool parse_busy_reason(std::string_view token, BusyReason* reason);

struct BusyPayload {
  std::string job_id;
  std::uint64_t queued = 0;    ///< jobs in the queue at rejection
  std::uint64_t capacity = 0;  ///< configured queue capacity
  /// Backoff hint in milliseconds; 0 means the server offered none. Clients
  /// should wait at least this long before resubmitting (`ServeClient`'s
  /// retry loop uses it as the floor of its exponential backoff).
  std::uint64_t retry_after_ms = 0;
  BusyReason reason = BusyReason::kQueueFull;

  friend bool operator==(const BusyPayload&, const BusyPayload&) = default;
};

[[nodiscard]] std::string encode_busy(const BusyPayload& busy);
[[nodiscard]] bool parse_busy(std::string_view payload, BusyPayload* busy,
                              std::string* error);

// ---------------------------------------------------------------------------
// STATS

struct StatsPayload {
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_rejected_busy = 0;
  std::uint64_t jobs_failed = 0;  ///< jobs ending in an ERROR reply
  std::uint64_t jobs_shed = 0;    ///< low-priority jobs shed at the soft limit
  std::uint64_t jobs_deadline_expired = 0;  ///< jobs ending in E-DEADLINE
  std::uint64_t jobs_cancelled = 0;         ///< jobs ending in E-CANCELLED
  std::uint64_t instances_completed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_capacity = 0;
  std::uint64_t queue_capacity = 0;
  std::uint64_t workers = 0;
  /// Cache-snapshot persistence: entries restored at boot, corrupt/torn/
  /// mismatched records skipped at boot (0/0 when persistence is off).
  std::uint64_t snapshot_records_loaded = 0;
  std::uint64_t snapshot_records_skipped = 0;

  friend bool operator==(const StatsPayload&, const StatsPayload&) = default;
};

[[nodiscard]] std::string encode_stats(const StatsPayload& stats);
[[nodiscard]] bool parse_stats(std::string_view payload, StatsPayload* stats,
                               std::string* error);

// ---------------------------------------------------------------------------
// HELLO

struct HelloPayload {
  std::string proto = std::string(kProtocolName);
  std::string server;  ///< empty in client HELLOs

  friend bool operator==(const HelloPayload&, const HelloPayload&) = default;
};

[[nodiscard]] std::string encode_hello(const HelloPayload& hello);
[[nodiscard]] bool parse_hello(std::string_view payload, HelloPayload* hello,
                               std::string* error);

/// Checks the job-id lexical rule (non-empty, printable, no spaces,
/// <= 256 bytes).
[[nodiscard]] bool valid_job_id(std::string_view job_id);

}  // namespace ctrtl::serve
