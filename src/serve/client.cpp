#include "serve/client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace ctrtl::serve {

namespace {

[[noreturn]] void fail(ClientError::Kind kind, const std::string& message) {
  throw ClientError(kind, message);
}

}  // namespace

ServeClient::~ServeClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void ServeClient::set_read_timeout_ms(std::uint64_t timeout_ms) {
  read_timeout_ms_ = timeout_ms;
  if (fd_ >= 0) {
    apply_read_timeout();
  }
}

void ServeClient::apply_read_timeout() {
  // SO_RCVTIMEO bounds each blocking read() — the kernel returns EAGAIN
  // when it elapses, which read_frame converts into a structured kTimeout.
  // A zero timeval restores fully blocking reads.
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(read_timeout_ms_ / 1000);
  tv.tv_usec = static_cast<suseconds_t>((read_timeout_ms_ % 1000) * 1000);
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void ServeClient::connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    fail(ClientError::Kind::kIo, "socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    fail(ClientError::Kind::kIo,
         std::string("socket() failed: ") + std::strerror(errno));
  }
  if (read_timeout_ms_ != 0) {
    apply_read_timeout();
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    fail(ClientError::Kind::kIo,
         "connect(" + socket_path + ") failed: " + detail);
  }
  send_frame(Frame{MessageType::kHello, encode_hello(HelloPayload{})});
  const Frame reply = read_frame();
  if (reply.type != MessageType::kHello) {
    fail(ClientError::Kind::kProtocol,
         "expected HELLO reply, got " + to_string(reply.type));
  }
  HelloPayload hello;
  std::string error;
  if (!parse_hello(reply.payload, &hello, &error)) {
    fail(ClientError::Kind::kProtocol, "bad HELLO payload: " + error);
  }
  if (hello.proto != kProtocolName) {
    fail(ClientError::Kind::kProtocol,
         "server speaks '" + hello.proto + "', expected '" +
             std::string(kProtocolName) + "'");
  }
}

void ServeClient::send_frame(const Frame& frame) {
  std::string encoded = encode_frame(frame);
  std::string_view rest = encoded;
  while (!rest.empty()) {
    // MSG_NOSIGNAL: a dead server shows up as a write error, not SIGPIPE.
    const ssize_t n = ::send(fd_, rest.data(), rest.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      fail(ClientError::Kind::kIo,
           std::string("write failed: ") + std::strerror(errno));
    }
    rest.remove_prefix(static_cast<std::size_t>(n));
  }
}

Frame ServeClient::read_frame() {
  Frame frame;
  char buffer[4096];
  while (!decoder_.next(&frame)) {
    if (decoder_.failed()) {
      fail(ClientError::Kind::kProtocol, "protocol error: " + decoder_.error());
    }
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        fail(ClientError::Kind::kTimeout,
             "read timed out after " + std::to_string(read_timeout_ms_) +
                 " ms waiting for the server");
      }
      fail(ClientError::Kind::kIo,
           std::string("read failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      fail(ClientError::Kind::kClosed, "connection closed by server");
    }
    decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
  return frame;
}

JobOutcome ServeClient::run_job(
    const JobRequest& request,
    const std::function<void(const ReportPayload&)>& on_report) {
  send_frame(Frame{MessageType::kSubmit, encode_submit(request)});
  JobOutcome outcome;
  std::string error;
  for (;;) {
    const Frame frame = read_frame();
    switch (frame.type) {
      case MessageType::kAccepted: {
        AcceptedPayload accepted;
        if (!parse_accepted(frame.payload, &accepted, &error)) {
          fail(ClientError::Kind::kProtocol, "bad ACCEPTED payload: " + error);
        }
        outcome.accepted = accepted;
        break;
      }
      case MessageType::kReport: {
        ReportPayload report;
        if (!parse_report(frame.payload, &report, &error)) {
          fail(ClientError::Kind::kProtocol, "bad REPORT payload: " + error);
        }
        if (on_report) {
          on_report(report);
        }
        outcome.reports.push_back(std::move(report));
        break;
      }
      case MessageType::kDone: {
        if (!parse_done(frame.payload, &outcome.done, &error)) {
          fail(ClientError::Kind::kProtocol, "bad DONE payload: " + error);
        }
        outcome.status = JobOutcome::Status::kDone;
        return outcome;
      }
      case MessageType::kBusy: {
        if (!parse_busy(frame.payload, &outcome.busy, &error)) {
          fail(ClientError::Kind::kProtocol, "bad BUSY payload: " + error);
        }
        outcome.status = JobOutcome::Status::kBusy;
        return outcome;
      }
      case MessageType::kError: {
        if (!parse_error(frame.payload, &outcome.error, &error)) {
          fail(ClientError::Kind::kProtocol, "bad ERROR payload: " + error);
        }
        outcome.status = JobOutcome::Status::kError;
        return outcome;
      }
      default:
        fail(ClientError::Kind::kProtocol,
             "unexpected frame " + to_string(frame.type));
    }
  }
}

JobOutcome ServeClient::run_job_with_retry(
    const JobRequest& request, const RetryPolicy& policy,
    const std::function<void(const ReportPayload&)>& on_report) {
  const std::size_t attempts = std::max<std::size_t>(1, policy.max_attempts);
  JobOutcome outcome;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    outcome = run_job(request, on_report);
    if (outcome.status != JobOutcome::Status::kBusy ||
        attempt + 1 == attempts) {
      return outcome;
    }
    // Exponential backoff floored by the server's hint: shift saturates at
    // the cap rather than overflowing for large attempt counts.
    std::uint64_t backoff = policy.base_delay_ms;
    for (std::size_t i = 0; i < attempt && backoff < policy.max_delay_ms; ++i) {
      backoff *= 2;
    }
    const std::uint64_t delay = std::min(
        policy.max_delay_ms, std::max(backoff, outcome.busy.retry_after_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  return outcome;
}

StatsPayload ServeClient::stats() {
  send_frame(Frame{MessageType::kStats, ""});
  const Frame reply = read_frame();
  if (reply.type != MessageType::kStats) {
    fail(ClientError::Kind::kProtocol,
         "expected STATS reply, got " + to_string(reply.type));
  }
  StatsPayload stats;
  std::string error;
  if (!parse_stats(reply.payload, &stats, &error)) {
    fail(ClientError::Kind::kProtocol, "bad STATS payload: " + error);
  }
  return stats;
}

void ServeClient::shutdown_server() {
  send_frame(Frame{MessageType::kShutdown, ""});
  const Frame reply = read_frame();
  if (reply.type != MessageType::kBye) {
    fail(ClientError::Kind::kProtocol,
         "expected BYE ack, got " + to_string(reply.type));
  }
  ::close(fd_);
  fd_ = -1;
}

void ServeClient::close() {
  if (fd_ < 0) {
    return;
  }
  send_frame(Frame{MessageType::kBye, ""});
  // Best-effort: consume the BYE ack, tolerate an already-gone server.
  try {
    (void)read_frame();
  } catch (const std::runtime_error&) {
  }
  ::close(fd_);
  fd_ = -1;
}

}  // namespace ctrtl::serve
