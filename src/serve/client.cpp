#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace ctrtl::serve {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("serve client: " + message);
}

}  // namespace

ServeClient::~ServeClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void ServeClient::connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    fail("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    fail(std::string("socket() failed: ") + std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    fail("connect(" + socket_path + ") failed: " + detail);
  }
  send_frame(Frame{MessageType::kHello, encode_hello(HelloPayload{})});
  const Frame reply = read_frame();
  if (reply.type != MessageType::kHello) {
    fail("expected HELLO reply, got " + to_string(reply.type));
  }
  HelloPayload hello;
  std::string error;
  if (!parse_hello(reply.payload, &hello, &error)) {
    fail("bad HELLO payload: " + error);
  }
  if (hello.proto != kProtocolName) {
    fail("server speaks '" + hello.proto + "', expected '" +
         std::string(kProtocolName) + "'");
  }
}

void ServeClient::send_frame(const Frame& frame) {
  std::string encoded = encode_frame(frame);
  std::string_view rest = encoded;
  while (!rest.empty()) {
    // MSG_NOSIGNAL: a dead server shows up as a write error, not SIGPIPE.
    const ssize_t n = ::send(fd_, rest.data(), rest.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      fail(std::string("write failed: ") + std::strerror(errno));
    }
    rest.remove_prefix(static_cast<std::size_t>(n));
  }
}

Frame ServeClient::read_frame() {
  Frame frame;
  char buffer[4096];
  while (!decoder_.next(&frame)) {
    if (decoder_.failed()) {
      fail("protocol error: " + decoder_.error());
    }
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      fail("connection closed by server");
    }
    decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
  return frame;
}

JobOutcome ServeClient::run_job(
    const JobRequest& request,
    const std::function<void(const ReportPayload&)>& on_report) {
  send_frame(Frame{MessageType::kSubmit, encode_submit(request)});
  JobOutcome outcome;
  std::string error;
  for (;;) {
    const Frame frame = read_frame();
    switch (frame.type) {
      case MessageType::kAccepted: {
        AcceptedPayload accepted;
        if (!parse_accepted(frame.payload, &accepted, &error)) {
          fail("bad ACCEPTED payload: " + error);
        }
        outcome.accepted = accepted;
        break;
      }
      case MessageType::kReport: {
        ReportPayload report;
        if (!parse_report(frame.payload, &report, &error)) {
          fail("bad REPORT payload: " + error);
        }
        if (on_report) {
          on_report(report);
        }
        outcome.reports.push_back(std::move(report));
        break;
      }
      case MessageType::kDone: {
        if (!parse_done(frame.payload, &outcome.done, &error)) {
          fail("bad DONE payload: " + error);
        }
        outcome.status = JobOutcome::Status::kDone;
        return outcome;
      }
      case MessageType::kBusy: {
        if (!parse_busy(frame.payload, &outcome.busy, &error)) {
          fail("bad BUSY payload: " + error);
        }
        outcome.status = JobOutcome::Status::kBusy;
        return outcome;
      }
      case MessageType::kError: {
        if (!parse_error(frame.payload, &outcome.error, &error)) {
          fail("bad ERROR payload: " + error);
        }
        outcome.status = JobOutcome::Status::kError;
        return outcome;
      }
      default:
        fail("unexpected frame " + to_string(frame.type));
    }
  }
}

StatsPayload ServeClient::stats() {
  send_frame(Frame{MessageType::kStats, ""});
  const Frame reply = read_frame();
  if (reply.type != MessageType::kStats) {
    fail("expected STATS reply, got " + to_string(reply.type));
  }
  StatsPayload stats;
  std::string error;
  if (!parse_stats(reply.payload, &stats, &error)) {
    fail("bad STATS payload: " + error);
  }
  return stats;
}

void ServeClient::shutdown_server() {
  send_frame(Frame{MessageType::kShutdown, ""});
  const Frame reply = read_frame();
  if (reply.type != MessageType::kBye) {
    fail("expected BYE ack, got " + to_string(reply.type));
  }
  ::close(fd_);
  fd_ = -1;
}

void ServeClient::close() {
  if (fd_ < 0) {
    return;
  }
  send_frame(Frame{MessageType::kBye, ""});
  // Best-effort: consume the BYE ack, tolerate an already-gone server.
  try {
    (void)read_frame();
  } catch (const std::runtime_error&) {
  }
  ::close(fd_);
  fd_ = -1;
}

}  // namespace ctrtl::serve
