#include "serve/cache.h"

namespace ctrtl::serve {

std::shared_ptr<const transfer::CompiledDesign> DesignCache::get_or_compile(
    std::uint64_t key, const Compile& compile, bool* hit) {
  std::unique_lock lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++counters_.hits;
    order_.splice(order_.begin(), order_, it->second.order);
    if (hit != nullptr) {
      *hit = true;
    }
    return it->second.design;
  }
  ++counters_.misses;
  if (hit != nullptr) {
    *hit = false;
  }
  // Compile under the lock: concurrent misses on the same key would
  // otherwise lower the same design twice.
  std::shared_ptr<const transfer::CompiledDesign> design = compile();
  if (capacity_ == 0) {
    return design;
  }
  order_.push_front(key);
  entries_.emplace(key, Entry{design, order_.begin()});
  while (entries_.size() > capacity_) {
    const std::uint64_t victim = order_.back();
    order_.pop_back();
    entries_.erase(victim);
    ++counters_.evictions;
  }
  return design;
}

DesignCache::Stats DesignCache::stats() const {
  std::unique_lock lock(mutex_);
  Stats out = counters_;
  out.entries = entries_.size();
  return out;
}

}  // namespace ctrtl::serve
