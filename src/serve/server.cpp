#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <utility>

namespace ctrtl::serve {

namespace {

/// Writes the whole buffer, retrying on EINTR / partial writes.
/// MSG_NOSIGNAL: a peer that disconnected mid-stream must surface as EPIPE,
/// not a process-killing SIGPIPE.
bool write_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

/// Per-connection state shared between the reader, the writer, and any
/// service workers still streaming job frames. The outbox is unbounded in
/// memory by design: service workers must never block on a client's
/// socket, so the cost of a slow reader is this connection's memory, not
/// the service's throughput (docs/SERVICE.md, "Backpressure").
struct ServeServer::Connection {
  int fd = -1;
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::string> outbox;
  /// Reader finished (EOF, BYE, or protocol failure): the writer drains
  /// what is queued, then exits.
  bool closing = false;
  /// Socket is dead; pushes are discarded.
  bool dead = false;
  /// Cancellation handles of jobs submitted on this connection that may
  /// still be in flight (pruned of finished jobs on every track()).
  std::vector<std::shared_ptr<JobControl>> jobs;

  void track(std::shared_ptr<JobControl> control) {
    if (!control) {
      return;
    }
    std::unique_lock lock(mutex);
    std::erase_if(jobs, [](const std::shared_ptr<JobControl>& job) {
      return job->finished();
    });
    jobs.push_back(std::move(control));
  }

  /// Cancels every outstanding job (cancel() on a finished or
  /// deadline-expired control is a no-op — first cause wins).
  void cancel_all() {
    std::vector<std::shared_ptr<JobControl>> pending;
    {
      std::unique_lock lock(mutex);
      pending.swap(jobs);
    }
    for (const std::shared_ptr<JobControl>& job : pending) {
      job->cancel();
    }
  }

  void push(std::string encoded) {
    {
      std::unique_lock lock(mutex);
      if (dead) {
        return;
      }
      outbox.push_back(std::move(encoded));
    }
    cv.notify_one();
  }

  void close_writer() {
    {
      std::unique_lock lock(mutex);
      closing = true;
    }
    cv.notify_one();
  }
};

ServeServer::ServeServer(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {}

ServeServer::~ServeServer() {
  stop();
  wait();
}

void ServeServer::start() {
  if (options_.socket_path.empty()) {
    throw std::runtime_error("serve: socket path must not be empty");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " +
                             options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: bind(" + options_.socket_path +
                             ") failed: " + detail);
  }
  if (::listen(listen_fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: listen() failed: " + detail);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ServeServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    std::unique_lock lock(connections_mutex_);
    connections_.push_back(connection);
    connection_threads_.emplace_back(
        [this, connection] { handle_connection(connection); });
  }
}

void ServeServer::writer_loop(std::shared_ptr<Connection> connection) {
  for (;;) {
    std::string encoded;
    {
      std::unique_lock lock(connection->mutex);
      connection->cv.wait(lock, [&] {
        return !connection->outbox.empty() || connection->closing;
      });
      if (connection->outbox.empty()) {
        return;  // closing and drained
      }
      encoded = std::move(connection->outbox.front());
      connection->outbox.pop_front();
    }
    if (!write_all(connection->fd, encoded)) {
      std::unique_lock lock(connection->mutex);
      connection->dead = true;
      connection->outbox.clear();
      return;
    }
  }
}

void ServeServer::handle_connection(std::shared_ptr<Connection> connection) {
  std::thread writer([connection] { writer_loop(connection); });

  const auto send = [&](MessageType type, std::string payload) {
    connection->push(encode_frame(Frame{type, std::move(payload)}));
  };

  FrameDecoder decoder;
  char buffer[4096];
  bool open = true;
  // A connection that ends with a BYE/SHUTDOWN handshake keeps its
  // in-flight jobs (SHUTDOWN explicitly drains them); one that just
  // vanishes — EOF mid-job, framing corruption — has its jobs cancelled.
  bool graceful = false;
  while (open) {
    Frame frame;
    while (open && !decoder.next(&frame)) {
      if (decoder.failed()) {
        ErrorPayload error;
        error.code = ErrorCode::kProtocol;
        error.diagnostics.push_back(decoder.error());
        send(MessageType::kError, encode_error(error));
        open = false;
        break;
      }
      const ssize_t n = ::read(connection->fd, buffer, sizeof(buffer));
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        open = false;
        break;
      }
      decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    }
    if (!open) {
      break;
    }

    switch (frame.type) {
      case MessageType::kHello: {
        HelloPayload hello;
        hello.server = "ctrtl_serve";
        send(MessageType::kHello, encode_hello(hello));
        break;
      }
      case MessageType::kSubmit: {
        JobRequest request;
        std::string parse_message;
        if (!parse_submit(frame.payload, &request, &parse_message)) {
          ErrorPayload error;
          error.code = ErrorCode::kProtocol;
          error.diagnostics.push_back("bad SUBMIT payload: " + parse_message);
          send(MessageType::kError, encode_error(error));
          break;
        }
        const std::string job_id = request.job_id;
        const SubmitOutcome outcome = service_.submit(
            std::move(request), [connection](const Frame& event) {
              connection->push(encode_frame(event));
            });
        switch (outcome.status) {
          case SubmitStatus::kAccepted:
            // The ACCEPTED frame was already emitted through the sink by
            // submit(), ahead of any job frame a fast worker could push.
            connection->track(outcome.control);
            break;
          case SubmitStatus::kBusy: {
            BusyPayload busy;
            busy.job_id = job_id;
            busy.queued = outcome.queued;
            busy.capacity = options_.service.queue_capacity;
            busy.retry_after_ms = outcome.retry_after_ms;
            busy.reason = outcome.busy_reason;
            send(MessageType::kBusy, encode_busy(busy));
            break;
          }
          case SubmitStatus::kRejected:
            send(MessageType::kError, encode_error(outcome.error));
            break;
        }
        break;
      }
      case MessageType::kStats:
        send(MessageType::kStats, encode_stats(service_.stats()));
        break;
      case MessageType::kShutdown:
        send(MessageType::kBye, "");
        stopping_.store(true, std::memory_order_release);
        graceful = true;
        open = false;
        break;
      case MessageType::kBye:
        send(MessageType::kBye, "");
        graceful = true;
        open = false;
        break;
      default: {
        ErrorPayload error;
        error.code = ErrorCode::kProtocol;
        error.diagnostics.push_back("unexpected client frame " +
                                    to_string(frame.type));
        send(MessageType::kError, encode_error(error));
        break;
      }
    }
  }

  if (!graceful) {
    connection->cancel_all();
  }
  connection->close_writer();
  writer.join();
  {
    std::unique_lock lock(connection->mutex);
    connection->dead = true;
  }
  ::shutdown(connection->fd, SHUT_RDWR);
  ::close(connection->fd);
}

void ServeServer::wait() {
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Admission is closed (the accept loop exited); drain in-flight jobs so
  // their frames land in the outboxes before the connections wind down.
  service_.shutdown();
  // Unblock any reader still parked in read(): shut the receive side only,
  // so queued frames (a client's DONE, the SHUTDOWN ack) still flush.
  {
    std::unique_lock lock(connections_mutex_);
    for (const std::weak_ptr<Connection>& weak : connections_) {
      if (const std::shared_ptr<Connection> connection = weak.lock()) {
        ::shutdown(connection->fd, SHUT_RD);
      }
    }
    connections_.clear();
  }
  reap_finished_connections();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
}

void ServeServer::stop() { stopping_.store(true, std::memory_order_release); }

void ServeServer::reap_finished_connections() {
  std::vector<std::thread> threads;
  {
    std::unique_lock lock(connections_mutex_);
    threads.swap(connection_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

}  // namespace ctrtl::serve
