#include "serve/service.h"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "common/diagnostics.h"
#include "fault/inject.h"
#include "rtl/batch_runner.h"
#include "transfer/hash.h"
#include "transfer/mapping.h"
#include "transfer/text_format.h"

namespace ctrtl::serve {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<std::string> bag_to_strings(const common::DiagnosticBag& diags) {
  std::vector<std::string> out;
  out.reserve(diags.entries().size());
  for (const common::Diagnostic& diagnostic : diags.entries()) {
    out.push_back(common::to_string(diagnostic));
  }
  return out;
}

}  // namespace

SimulationService::SimulationService(ServiceOptions options)
    : options_(std::move(options)), cache_(options_.cache_capacity) {
  if (options_.workers == 0) {
    options_.workers = 1;
  }
  if (!options_.snapshot_path.empty()) {
    journal_ = std::make_unique<SnapshotJournal>(options_.snapshot_path);
    // Replay before the workers exist: the cache is warm (and the loaded/
    // skipped counters final) before the first job can be dequeued.
    restore_snapshot();
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimulationService::~SimulationService() { shutdown(); }

void SimulationService::restore_snapshot() {
  SnapshotParseResult parsed;
  std::string error;
  if (!load_snapshot_file(options_.snapshot_path, &parsed, &error)) {
    // An unreadable snapshot must never stop the service from booting —
    // persistence degrades to a cold cache.
    return;
  }
  snapshot_skipped_ = parsed.skipped;
  for (const SnapshotRecord& record : parsed.records) {
    // Re-run the standard admission pipeline on the persisted sources. A
    // record the current binary parses, faults, or hashes differently than
    // the one that journaled it is skipped, not trusted: the snapshot can
    // only ever warm the cache with entries this process would compute.
    common::DiagnosticBag diags;
    transfer::Design design =
        transfer::parse_design(record.design_text, diags);
    if (diags.has_errors()) {
      ++snapshot_skipped_;
      continue;
    }
    diags.clear();
    std::vector<transfer::TransInstance> instances;
    if (record.has_fault_plan) {
      const std::optional<fault::FaultedDesign> faulted =
          fault::parse_and_apply(design, record.fault_plan_text, diags);
      if (!faulted.has_value()) {
        ++snapshot_skipped_;
        continue;
      }
      design = faulted->design;
      instances = faulted->instances;
    } else {
      instances = transfer::to_instances(design.transfers);
    }
    const std::uint64_t key =
        transfer::canonical_stream_hash(design, instances);
    if (key != record.key) {
      ++snapshot_skipped_;
      continue;
    }
    try {
      bool hit = false;
      (void)cache_.get_or_compile(
          key,
          [&] { return transfer::CompiledDesign::compile(design, instances); },
          &hit);
    } catch (const std::exception&) {
      ++snapshot_skipped_;
      continue;
    }
    journal_->note_existing(key);
    ++snapshot_loaded_;
  }
}

SubmitOutcome SimulationService::submit(JobRequest request, EventSink sink) {
  SubmitOutcome outcome;
  const auto reject = [&](ErrorCode code, std::string message) {
    outcome.status = SubmitStatus::kRejected;
    outcome.error.job_id = request.job_id;
    outcome.error.code = code;
    outcome.error.diagnostics.push_back(std::move(message));
    return outcome;
  };

  if (!valid_job_id(request.job_id)) {
    request.job_id.clear();  // don't echo garbage back
    return reject(ErrorCode::kValidate, "invalid job id");
  }
  if (request.instances == 0) {
    return reject(ErrorCode::kValidate, "instances must be positive");
  }
  if (request.instances > options_.max_instances) {
    return reject(ErrorCode::kLimit,
                  "instances " + std::to_string(request.instances) +
                      " exceeds limit " +
                      std::to_string(options_.max_instances));
  }
  if (request.design_text.size() > options_.max_source_bytes ||
      request.fault_plan_text.size() > options_.max_source_bytes) {
    return reject(ErrorCode::kLimit,
                  "source blob exceeds " +
                      std::to_string(options_.max_source_bytes) + " bytes");
  }

  std::unique_lock lock(mutex_);
  if (draining_) {
    return reject(ErrorCode::kShutdown, "server is shutting down");
  }
  // Two-tier admission: the hard bound applies to everyone; the soft bound
  // (when enabled) sheds low-priority work first so normal-priority jobs
  // keep the remaining queue headroom under overload.
  const bool hard_full = queue_.size() >= options_.queue_capacity;
  const bool shed = !hard_full && request.low_priority &&
                    options_.shed_queue_depth != 0 &&
                    queue_.size() >= options_.shed_queue_depth;
  if (hard_full || shed) {
    ++jobs_rejected_busy_;
    if (shed) {
      ++jobs_shed_;
    }
    outcome.status = SubmitStatus::kBusy;
    outcome.queued = queue_.size();
    outcome.retry_after_ms = options_.retry_after_ms;
    outcome.busy_reason = shed ? BusyReason::kShed : BusyReason::kQueueFull;
    return outcome;
  }
  Job job;
  job.control = std::make_shared<JobControl>();
  job.has_deadline = request.deadline_ms != 0;
  if (job.has_deadline) {
    // The budget is measured from admission — queue wait burns it too, so
    // an overloaded server expires stale work instead of running it late.
    job.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(request.deadline_ms);
  }
  outcome.control = job.control;
  job.request = std::move(request);
  job.sink = std::move(sink);
  // Emit ACCEPTED through the sink *before* the job becomes visible to any
  // worker. Frame order — ACCEPTED, then REPORTs, then the terminal — is a
  // contract; were ACCEPTED sent by the caller after submit() returned, a
  // fast worker could stream the whole job first and reorder the wire.
  // Sinks must not call back into the service (the queue lock is held).
  if (job.sink) {
    AcceptedPayload accepted;
    accepted.job_id = job.request.job_id;
    accepted.queued = queue_.size() + 1;
    job.sink(Frame{MessageType::kAccepted, encode_accepted(accepted)});
  }
  queue_.push_back(std::move(job));
  ++jobs_accepted_;
  outcome.status = SubmitStatus::kAccepted;
  outcome.queued = queue_.size();
  lock.unlock();
  queue_cv_.notify_one();
  return outcome;
}

void SimulationService::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      queue_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // draining and nothing left
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (options_.on_job_start) {
      options_.on_job_start(job.request.job_id);
    }
    process(std::move(job));
  }
}

void SimulationService::process(Job job) {
  const JobRequest& request = job.request;
  const auto fail = [&](ErrorCode code, std::vector<std::string> diagnostics) {
    ErrorPayload error;
    error.job_id = request.job_id;
    error.code = code;
    error.diagnostics = std::move(diagnostics);
    {
      // Count before emitting: a caller woken by the terminal frame must
      // observe the updated stats.
      std::unique_lock lock(mutex_);
      ++jobs_failed_;
      if (code == ErrorCode::kDeadline) {
        ++jobs_deadline_expired_;
      } else if (code == ErrorCode::kCancelled) {
        ++jobs_cancelled_;
      }
    }
    if (job.control) {
      job.control->mark_finished();
    }
    if (job.sink) {
      job.sink(Frame{MessageType::kError, encode_error(error)});
    }
  };

  // Jobs can die while still queued: the client may have vanished, or a
  // tight deadline may have burned out before a worker freed up.
  if (job.control &&
      job.control->reason() == JobControl::kCancelledByClient) {
    fail(ErrorCode::kCancelled, {"job cancelled before it started"});
    return;
  }
  if (job.has_deadline && std::chrono::steady_clock::now() >= job.deadline) {
    if (job.control) {
      job.control->expire();
    }
    fail(ErrorCode::kDeadline,
         {"deadline of " + std::to_string(request.deadline_ms) +
          " ms expired while queued"});
    return;
  }

  try {
    // Parse the design source.
    common::DiagnosticBag diags;
    transfer::Design design =
        transfer::parse_design(request.design_text, diags);
    if (diags.has_errors()) {
      fail(ErrorCode::kParse, bag_to_strings(diags));
      return;
    }
    diags.clear();

    // Resolve the instance stream: the design's own tuples, or the
    // fault-transformed stream when the job carries a plan.
    std::vector<transfer::TransInstance> instances;
    if (request.has_fault_plan) {
      const std::optional<fault::FaultedDesign> faulted =
          fault::parse_and_apply(design, request.fault_plan_text, diags);
      if (!faulted.has_value()) {
        fail(ErrorCode::kFaultPlan, bag_to_strings(diags));
        return;
      }
      design = faulted->design;
      instances = faulted->instances;
    } else {
      instances = transfer::to_instances(design.transfers);
    }

    // Content-hash the post-fault canonical stream: the cache key.
    const std::uint64_t key =
        transfer::canonical_stream_hash(design, instances);

    // Cache lookup; a miss lowers under the cache lock (single-flight).
    // CompiledDesign::compile throws invalid_argument on validation
    // failure, which surfaces as E-VALIDATE below.
    bool cache_hit = false;
    std::uint64_t lower_ns = 0;
    std::shared_ptr<const transfer::CompiledDesign> compiled;
    try {
      compiled = cache_.get_or_compile(
          key,
          [&] {
            const std::uint64_t start = now_ns();
            auto lowered =
                transfer::CompiledDesign::compile(design, instances);
            lower_ns = now_ns() - start;
            return lowered;
          },
          &cache_hit);
    } catch (const std::invalid_argument& error) {
      fail(ErrorCode::kValidate, {error.what()});
      return;
    }

    // Journal the sources behind every fresh entry (best-effort: a failed
    // write degrades persistence, never the job). Only designs that
    // survived validation reach the snapshot, so replay cannot E-VALIDATE.
    if (!cache_hit && journal_) {
      SnapshotRecord record;
      record.key = key;
      record.design_text = request.design_text;
      record.has_fault_plan = request.has_fault_plan;
      record.fault_plan_text = request.fault_plan_text;
      (void)journal_->append(record);
    }

    // Lane-sharded run, streaming each completed lane block out as REPORT
    // frames. The sink calls are serialized by the runner, so frames for
    // one job never interleave mid-frame.
    std::vector<std::pair<std::string, rtl::RtValue>> inputs;
    inputs.reserve(request.inputs.size());
    for (const auto& [name, value] : request.inputs) {
      inputs.emplace_back(name, rtl::RtValue::of(value));
    }
    rtl::BatchRunOptions run_options;
    run_options.workers = options_.lane_workers;
    run_options.max_cycles = request.max_cycles;
    run_options.max_delta_cycles = request.max_delta_cycles;
    run_options.engine = rtl::BatchEngineKind::kCompiledLanes;
    run_options.lane_block = options_.lane_block;
    if (job.control) {
      // Cooperative termination: polled by the runner before each lane
      // block. Deadline expiry is detected here (and recorded first-wins
      // on the control), so an in-run expiry and a client cancel cannot
      // both claim the job.
      const std::shared_ptr<JobControl> control = job.control;
      const bool has_deadline = job.has_deadline;
      const std::chrono::steady_clock::time_point deadline = job.deadline;
      run_options.cancel = [control, has_deadline, deadline] {
        if (has_deadline &&
            std::chrono::steady_clock::now() >= deadline) {
          control->expire();
        }
        return control->reason() != JobControl::kRunning;
      };
    }
    rtl::BatchRunner runner(
        compiled, run_options,
        inputs.empty() ? rtl::BatchInputProvider{}
                       : [inputs](std::size_t) { return inputs; });

    const std::uint64_t run_start = now_ns();
    const rtl::BatchRunResult result = runner.run(
        request.instances,
        [&](std::size_t first_instance,
            std::span<const rtl::InstanceResult> block) {
          if (!job.sink) {
            return;
          }
          for (std::size_t i = 0; i < block.size(); ++i) {
            job.sink(Frame{
                MessageType::kReport,
                encode_report(request.job_id, first_instance + i, block[i])});
          }
        });
    const std::uint64_t run_ns = now_ns() - run_start;

    // A run truncated by deadline or cancel ends with ERROR, not DONE.
    // REPORT frames for the lane blocks that finished were already
    // streamed and stay valid — the terminal frame names how far it got.
    const int reason =
        job.control ? job.control->reason() : JobControl::kRunning;
    if (reason != JobControl::kRunning) {
      const std::uint64_t ran = static_cast<std::uint64_t>(
          result.instances.size() - result.cancelled_count());
      {
        std::unique_lock lock(mutex_);
        instances_completed_ += ran;
      }
      const std::string progress = " after completing " +
                                   std::to_string(ran) + " of " +
                                   std::to_string(request.instances) +
                                   " instances";
      if (reason == JobControl::kDeadlineExpired) {
        fail(ErrorCode::kDeadline,
             {"deadline of " + std::to_string(request.deadline_ms) +
              " ms expired" + progress});
      } else {
        fail(ErrorCode::kCancelled, {"job cancelled" + progress});
      }
      return;
    }

    DonePayload done;
    done.job_id = request.job_id;
    done.instances = result.instances.size();
    done.failures = result.failure_count();
    done.conflicts = result.conflict_count();
    done.cache_hit = cache_hit;
    done.cache_key = transfer::to_hex(key);
    done.lower_ns = lower_ns;
    done.run_ns = run_ns;
    {
      // Count before emitting, so stats are current once DONE is visible.
      std::unique_lock lock(mutex_);
      ++jobs_completed_;
      instances_completed_ += result.instances.size();
    }
    if (job.control) {
      job.control->mark_finished();
    }
    if (job.sink) {
      job.sink(Frame{MessageType::kDone, encode_done(done)});
    }
  } catch (const std::exception& error) {
    fail(ErrorCode::kInternal, {error.what()});
  }
}

StatsPayload SimulationService::stats() const {
  const DesignCache::Stats cache = cache_.stats();
  StatsPayload out;
  std::unique_lock lock(mutex_);
  out.jobs_accepted = jobs_accepted_;
  out.jobs_completed = jobs_completed_;
  out.jobs_rejected_busy = jobs_rejected_busy_;
  out.jobs_failed = jobs_failed_;
  out.jobs_shed = jobs_shed_;
  out.jobs_deadline_expired = jobs_deadline_expired_;
  out.jobs_cancelled = jobs_cancelled_;
  out.instances_completed = instances_completed_;
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions;
  out.cache_entries = cache.entries;
  out.cache_capacity = cache_.capacity();
  out.queue_capacity = options_.queue_capacity;
  out.workers = options_.workers;
  out.snapshot_records_loaded = snapshot_loaded_;
  out.snapshot_records_skipped = snapshot_skipped_;
  return out;
}

void SimulationService::shutdown() {
  {
    std::unique_lock lock(mutex_);
    if (draining_ && workers_.empty()) {
      return;
    }
    draining_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

}  // namespace ctrtl::serve
