#include "serve/service.h"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "common/diagnostics.h"
#include "fault/inject.h"
#include "rtl/batch_runner.h"
#include "transfer/hash.h"
#include "transfer/mapping.h"
#include "transfer/text_format.h"

namespace ctrtl::serve {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<std::string> bag_to_strings(const common::DiagnosticBag& diags) {
  std::vector<std::string> out;
  out.reserve(diags.entries().size());
  for (const common::Diagnostic& diagnostic : diags.entries()) {
    out.push_back(common::to_string(diagnostic));
  }
  return out;
}

}  // namespace

SimulationService::SimulationService(ServiceOptions options)
    : options_(std::move(options)), cache_(options_.cache_capacity) {
  if (options_.workers == 0) {
    options_.workers = 1;
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimulationService::~SimulationService() { shutdown(); }

SubmitOutcome SimulationService::submit(JobRequest request, EventSink sink) {
  SubmitOutcome outcome;
  const auto reject = [&](ErrorCode code, std::string message) {
    outcome.status = SubmitStatus::kRejected;
    outcome.error.job_id = request.job_id;
    outcome.error.code = code;
    outcome.error.diagnostics.push_back(std::move(message));
    return outcome;
  };

  if (!valid_job_id(request.job_id)) {
    request.job_id.clear();  // don't echo garbage back
    return reject(ErrorCode::kValidate, "invalid job id");
  }
  if (request.instances == 0) {
    return reject(ErrorCode::kValidate, "instances must be positive");
  }
  if (request.instances > options_.max_instances) {
    return reject(ErrorCode::kLimit,
                  "instances " + std::to_string(request.instances) +
                      " exceeds limit " +
                      std::to_string(options_.max_instances));
  }
  if (request.design_text.size() > options_.max_source_bytes ||
      request.fault_plan_text.size() > options_.max_source_bytes) {
    return reject(ErrorCode::kLimit,
                  "source blob exceeds " +
                      std::to_string(options_.max_source_bytes) + " bytes");
  }

  std::unique_lock lock(mutex_);
  if (draining_) {
    return reject(ErrorCode::kShutdown, "server is shutting down");
  }
  if (queue_.size() >= options_.queue_capacity) {
    ++jobs_rejected_busy_;
    outcome.status = SubmitStatus::kBusy;
    outcome.queued = queue_.size();
    return outcome;
  }
  queue_.push_back(Job{std::move(request), std::move(sink)});
  ++jobs_accepted_;
  outcome.status = SubmitStatus::kAccepted;
  outcome.queued = queue_.size();
  lock.unlock();
  queue_cv_.notify_one();
  return outcome;
}

void SimulationService::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      queue_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // draining and nothing left
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (options_.on_job_start) {
      options_.on_job_start(job.request.job_id);
    }
    process(std::move(job));
  }
}

void SimulationService::process(Job job) {
  const JobRequest& request = job.request;
  const auto fail = [&](ErrorCode code, std::vector<std::string> diagnostics) {
    ErrorPayload error;
    error.job_id = request.job_id;
    error.code = code;
    error.diagnostics = std::move(diagnostics);
    {
      // Count before emitting: a caller woken by the terminal frame must
      // observe the updated stats.
      std::unique_lock lock(mutex_);
      ++jobs_failed_;
    }
    if (job.sink) {
      job.sink(Frame{MessageType::kError, encode_error(error)});
    }
  };

  try {
    // Parse the design source.
    common::DiagnosticBag diags;
    transfer::Design design =
        transfer::parse_design(request.design_text, diags);
    if (diags.has_errors()) {
      fail(ErrorCode::kParse, bag_to_strings(diags));
      return;
    }
    diags.clear();

    // Resolve the instance stream: the design's own tuples, or the
    // fault-transformed stream when the job carries a plan.
    std::vector<transfer::TransInstance> instances;
    if (request.has_fault_plan) {
      const std::optional<fault::FaultedDesign> faulted =
          fault::parse_and_apply(design, request.fault_plan_text, diags);
      if (!faulted.has_value()) {
        fail(ErrorCode::kFaultPlan, bag_to_strings(diags));
        return;
      }
      design = faulted->design;
      instances = faulted->instances;
    } else {
      instances = transfer::to_instances(design.transfers);
    }

    // Content-hash the post-fault canonical stream: the cache key.
    const std::uint64_t key =
        transfer::canonical_stream_hash(design, instances);

    // Cache lookup; a miss lowers under the cache lock (single-flight).
    // CompiledDesign::compile throws invalid_argument on validation
    // failure, which surfaces as E-VALIDATE below.
    bool cache_hit = false;
    std::uint64_t lower_ns = 0;
    std::shared_ptr<const transfer::CompiledDesign> compiled;
    try {
      compiled = cache_.get_or_compile(
          key,
          [&] {
            const std::uint64_t start = now_ns();
            auto lowered =
                transfer::CompiledDesign::compile(design, instances);
            lower_ns = now_ns() - start;
            return lowered;
          },
          &cache_hit);
    } catch (const std::invalid_argument& error) {
      fail(ErrorCode::kValidate, {error.what()});
      return;
    }

    // Lane-sharded run, streaming each completed lane block out as REPORT
    // frames. The sink calls are serialized by the runner, so frames for
    // one job never interleave mid-frame.
    std::vector<std::pair<std::string, rtl::RtValue>> inputs;
    inputs.reserve(request.inputs.size());
    for (const auto& [name, value] : request.inputs) {
      inputs.emplace_back(name, rtl::RtValue::of(value));
    }
    rtl::BatchRunOptions run_options;
    run_options.workers = options_.lane_workers;
    run_options.max_cycles = request.max_cycles;
    run_options.max_delta_cycles = request.max_delta_cycles;
    run_options.engine = rtl::BatchEngineKind::kCompiledLanes;
    run_options.lane_block = options_.lane_block;
    rtl::BatchRunner runner(
        compiled, run_options,
        inputs.empty() ? rtl::BatchInputProvider{}
                       : [inputs](std::size_t) { return inputs; });

    const std::uint64_t run_start = now_ns();
    const rtl::BatchRunResult result = runner.run(
        request.instances,
        [&](std::size_t first_instance,
            std::span<const rtl::InstanceResult> block) {
          if (!job.sink) {
            return;
          }
          for (std::size_t i = 0; i < block.size(); ++i) {
            job.sink(Frame{
                MessageType::kReport,
                encode_report(request.job_id, first_instance + i, block[i])});
          }
        });
    const std::uint64_t run_ns = now_ns() - run_start;

    DonePayload done;
    done.job_id = request.job_id;
    done.instances = result.instances.size();
    done.failures = result.failure_count();
    done.conflicts = result.conflict_count();
    done.cache_hit = cache_hit;
    done.cache_key = transfer::to_hex(key);
    done.lower_ns = lower_ns;
    done.run_ns = run_ns;
    {
      // Count before emitting, so stats are current once DONE is visible.
      std::unique_lock lock(mutex_);
      ++jobs_completed_;
      instances_completed_ += result.instances.size();
    }
    if (job.sink) {
      job.sink(Frame{MessageType::kDone, encode_done(done)});
    }
  } catch (const std::exception& error) {
    fail(ErrorCode::kInternal, {error.what()});
  }
}

StatsPayload SimulationService::stats() const {
  const DesignCache::Stats cache = cache_.stats();
  StatsPayload out;
  std::unique_lock lock(mutex_);
  out.jobs_accepted = jobs_accepted_;
  out.jobs_completed = jobs_completed_;
  out.jobs_rejected_busy = jobs_rejected_busy_;
  out.jobs_failed = jobs_failed_;
  out.instances_completed = instances_completed_;
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions;
  out.cache_entries = cache.entries;
  out.cache_capacity = cache_.capacity();
  out.queue_capacity = options_.queue_capacity;
  out.workers = options_.workers;
  return out;
}

void SimulationService::shutdown() {
  {
    std::unique_lock lock(mutex_);
    if (draining_ && workers_.empty()) {
      return;
    }
    draining_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

}  // namespace ctrtl::serve
