#include "serve/protocol.h"

#include <array>
#include <charconv>
#include <cstring>

#include "common/diagnostics.h"
#include "rtl/model.h"
#include "rtl/report.h"
#include "rtl/value.h"

namespace ctrtl::serve {

namespace {

constexpr std::array<std::string_view, 10> kTypeTokens = {
    "HELLO", "SUBMIT", "ACCEPTED", "REPORT", "DONE",
    "ERROR", "BUSY",   "STATS",    "SHUTDOWN", "BYE"};

bool set_error(std::string* error, std::string message) {
  if (error != nullptr) {
    *error = std::move(message);
  }
  return false;
}

bool parse_u64(std::string_view text, std::uint64_t* value) {
  if (text.empty()) {
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *value);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool parse_i64(std::string_view text, std::int64_t* value) {
  if (text.empty()) {
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *value);
  return ec == std::errc() && ptr == text.data() + text.size();
}

/// Splits "key rest of line" at the first space; rest is empty when the
/// line is a bare key.
std::pair<std::string_view, std::string_view> split_word(std::string_view line) {
  const std::size_t space = line.find(' ');
  if (space == std::string_view::npos) {
    return {line, std::string_view{}};
  }
  return {line.substr(0, space), line.substr(space + 1)};
}

/// Cursor over a payload: newline-terminated key/value lines interleaved
/// with length-prefixed raw byte blobs.
class Scanner {
 public:
  explicit Scanner(std::string_view payload) : rest_(payload) {}

  [[nodiscard]] bool done() const { return rest_.empty(); }

  /// Takes the next line (without its terminator). The final line may omit
  /// the trailing newline.
  bool line(std::string_view* out) {
    if (rest_.empty()) {
      return false;
    }
    const std::size_t nl = rest_.find('\n');
    if (nl == std::string_view::npos) {
      *out = rest_;
      rest_ = {};
    } else {
      *out = rest_.substr(0, nl);
      rest_.remove_prefix(nl + 1);
    }
    return true;
  }

  /// Takes exactly `count` raw bytes plus the mandatory '\n' separator that
  /// keeps the following line from gluing onto the blob.
  bool blob(std::size_t count, std::string_view* out) {
    if (rest_.size() < count + 1 || rest_[count] != '\n') {
      return false;
    }
    *out = rest_.substr(0, count);
    rest_.remove_prefix(count + 1);
    return true;
  }

 private:
  std::string_view rest_;
};

void append_kv(std::string& out, std::string_view key, std::string_view value) {
  out.append(key);
  out.push_back(' ');
  out.append(value);
  out.push_back('\n');
}

void append_kv(std::string& out, std::string_view key, std::uint64_t value) {
  append_kv(out, key, std::to_string(value));
}

void append_blob(std::string& out, std::string_view key, std::string_view blob) {
  append_kv(out, key, std::to_string(blob.size()));
  out.append(blob);
  out.push_back('\n');
}

}  // namespace

std::string to_string(MessageType type) {
  return std::string(kTypeTokens[static_cast<std::size_t>(type)]);
}

bool parse_message_type(std::string_view token, MessageType* type) {
  for (std::size_t i = 0; i < kTypeTokens.size(); ++i) {
    if (kTypeTokens[i] == token) {
      *type = static_cast<MessageType>(i);
      return true;
    }
  }
  return false;
}

std::string encode_frame(const Frame& frame) {
  std::string out(kProtocolMagic);
  out.push_back(' ');
  out.append(to_string(frame.type));
  out.push_back(' ');
  out.append(std::to_string(frame.payload.size()));
  out.push_back('\n');
  out.append(frame.payload);
  return out;
}

bool FrameDecoder::next(Frame* frame) {
  if (failed_) {
    return false;
  }
  const std::size_t nl = buffer_.find('\n');
  if (nl == std::string::npos) {
    // A header longer than magic + type + a 20-digit length is garbage even
    // before its newline arrives.
    if (buffer_.size() > 64) {
      failed_ = true;
      error_ = "frame header exceeds 64 bytes without a newline";
    }
    return false;
  }
  const std::string_view header(buffer_.data(), nl);
  const auto [magic, after_magic] = split_word(header);
  if (magic != kProtocolMagic) {
    failed_ = true;
    error_ = "bad frame magic '" + std::string(magic) + "'";
    return false;
  }
  const auto [type_token, length_token] = split_word(after_magic);
  MessageType type;
  if (!parse_message_type(type_token, &type)) {
    failed_ = true;
    error_ = "unknown message type '" + std::string(type_token) + "'";
    return false;
  }
  std::uint64_t length = 0;
  if (!parse_u64(length_token, &length)) {
    failed_ = true;
    error_ = "bad payload length '" + std::string(length_token) + "'";
    return false;
  }
  if (length > max_payload_) {
    failed_ = true;
    error_ = "payload length " + std::to_string(length) + " exceeds limit " +
             std::to_string(max_payload_);
    return false;
  }
  if (buffer_.size() - nl - 1 < length) {
    return false;  // payload still in flight
  }
  frame->type = type;
  frame->payload = buffer_.substr(nl + 1, length);
  buffer_.erase(0, nl + 1 + length);
  return true;
}

bool valid_job_id(std::string_view job_id) {
  if (job_id.empty() || job_id.size() > 256) {
    return false;
  }
  for (const char c : job_id) {
    if (c <= ' ' || c == 0x7f) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// SUBMIT

std::string encode_submit(const JobRequest& request) {
  std::string out;
  append_kv(out, "job", request.job_id);
  append_kv(out, "instances", request.instances);
  if (request.max_cycles != kernel::Scheduler::kNoLimit) {
    append_kv(out, "max-cycles", request.max_cycles);
  }
  if (request.max_delta_cycles != kernel::Scheduler::kNoLimit) {
    append_kv(out, "max-delta-cycles", request.max_delta_cycles);
  }
  if (request.deadline_ms != 0) {
    append_kv(out, "deadline-ms", request.deadline_ms);
  }
  if (request.low_priority) {
    append_kv(out, "priority", "low");
  }
  for (const auto& [name, value] : request.inputs) {
    append_kv(out, "input", name + " " + std::to_string(value));
  }
  append_blob(out, "design", request.design_text);
  if (request.has_fault_plan) {
    append_blob(out, "fault-plan", request.fault_plan_text);
  }
  return out;
}

bool parse_submit(std::string_view payload, JobRequest* request,
                  std::string* error) {
  *request = JobRequest{};
  request->job_id.clear();
  bool saw_design = false;
  Scanner scanner(payload);
  std::string_view line;
  while (scanner.line(&line)) {
    if (line.empty()) {
      continue;
    }
    const auto [key, value] = split_word(line);
    if (key == "job") {
      if (!valid_job_id(value)) {
        return set_error(error, "invalid job id");
      }
      request->job_id = std::string(value);
    } else if (key == "instances") {
      if (!parse_u64(value, &request->instances) || request->instances == 0) {
        return set_error(error, "instances expects a positive count");
      }
    } else if (key == "max-cycles") {
      if (!parse_u64(value, &request->max_cycles)) {
        return set_error(error, "max-cycles expects an unsigned integer");
      }
    } else if (key == "max-delta-cycles") {
      if (!parse_u64(value, &request->max_delta_cycles)) {
        return set_error(error, "max-delta-cycles expects an unsigned integer");
      }
    } else if (key == "deadline-ms") {
      if (!parse_u64(value, &request->deadline_ms) ||
          request->deadline_ms == 0) {
        return set_error(error, "deadline-ms expects a positive count");
      }
    } else if (key == "priority") {
      if (value == "low") {
        request->low_priority = true;
      } else if (value == "normal") {
        request->low_priority = false;
      } else {
        return set_error(error, "priority expects 'low' or 'normal'");
      }
    } else if (key == "input") {
      const auto [name, int_token] = split_word(value);
      std::int64_t int_value = 0;
      if (name.empty() || !parse_i64(int_token, &int_value)) {
        return set_error(error, "input expects '<name> <integer>'");
      }
      request->inputs.emplace_back(std::string(name), int_value);
    } else if (key == "design" || key == "fault-plan") {
      std::uint64_t size = 0;
      if (!parse_u64(value, &size)) {
        return set_error(error,
                         std::string(key) + " expects a byte count");
      }
      std::string_view blob;
      if (!scanner.blob(size, &blob)) {
        return set_error(error, std::string(key) + " blob truncated");
      }
      if (key == "design") {
        saw_design = true;
        request->design_text = std::string(blob);
      } else {
        request->has_fault_plan = true;
        request->fault_plan_text = std::string(blob);
      }
    } else {
      return set_error(error, "unknown SUBMIT field '" + std::string(key) + "'");
    }
  }
  if (request->job_id.empty()) {
    return set_error(error, "SUBMIT requires a job id");
  }
  if (!saw_design) {
    return set_error(error, "SUBMIT requires a design blob");
  }
  return true;
}

// ---------------------------------------------------------------------------
// ACCEPTED

std::string encode_accepted(const AcceptedPayload& accepted) {
  std::string out;
  append_kv(out, "job", accepted.job_id);
  append_kv(out, "queued", accepted.queued);
  return out;
}

bool parse_accepted(std::string_view payload, AcceptedPayload* accepted,
                    std::string* error) {
  *accepted = AcceptedPayload{};
  Scanner scanner(payload);
  std::string_view line;
  while (scanner.line(&line)) {
    if (line.empty()) {
      continue;
    }
    const auto [key, value] = split_word(line);
    if (key == "job") {
      accepted->job_id = std::string(value);
    } else if (key == "queued") {
      if (!parse_u64(value, &accepted->queued)) {
        return set_error(error, "queued expects an unsigned integer");
      }
    } else {
      return set_error(error,
                       "unknown ACCEPTED field '" + std::string(key) + "'");
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// REPORT

std::string encode_report(const std::string& job_id, std::uint64_t instance,
                          const rtl::InstanceResult& result) {
  std::string out;
  append_kv(out, "job", job_id);
  append_kv(out, "instance", instance);
  append_kv(out, "status", rtl::to_string(result.report.status));
  append_kv(out, "cycles", result.cycles);
  append_kv(out, "delta-cycles", result.stats.delta_cycles);
  append_kv(out, "events", result.stats.events);
  append_kv(out, "updates", result.stats.updates);
  append_kv(out, "transactions", result.stats.transactions);
  for (const rtl::Conflict& conflict : result.conflicts) {
    append_kv(out, "conflict", rtl::to_string(conflict));
  }
  for (const auto& [name, value] : result.registers) {
    append_kv(out, "register", name + " " + rtl::to_string(value));
  }
  for (const common::Diagnostic& diagnostic : result.report.diagnostics) {
    append_kv(out, "diagnostic", common::to_string(diagnostic));
  }
  return out;
}

bool parse_report(std::string_view payload, ReportPayload* report,
                  std::string* error) {
  *report = ReportPayload{};
  Scanner scanner(payload);
  std::string_view line;
  while (scanner.line(&line)) {
    if (line.empty()) {
      continue;
    }
    const auto [key, value] = split_word(line);
    if (key == "job") {
      report->job_id = std::string(value);
    } else if (key == "instance") {
      if (!parse_u64(value, &report->instance)) {
        return set_error(error, "instance expects an unsigned integer");
      }
    } else if (key == "status") {
      report->status = std::string(value);
    } else if (key == "cycles") {
      if (!parse_u64(value, &report->cycles)) {
        return set_error(error, "cycles expects an unsigned integer");
      }
    } else if (key == "delta-cycles") {
      if (!parse_u64(value, &report->delta_cycles)) {
        return set_error(error, "delta-cycles expects an unsigned integer");
      }
    } else if (key == "events") {
      if (!parse_u64(value, &report->events)) {
        return set_error(error, "events expects an unsigned integer");
      }
    } else if (key == "updates") {
      if (!parse_u64(value, &report->updates)) {
        return set_error(error, "updates expects an unsigned integer");
      }
    } else if (key == "transactions") {
      if (!parse_u64(value, &report->transactions)) {
        return set_error(error, "transactions expects an unsigned integer");
      }
    } else if (key == "conflict") {
      report->conflicts.emplace_back(value);
    } else if (key == "register") {
      const auto [name, rendered] = split_word(value);
      if (name.empty() || rendered.empty()) {
        return set_error(error, "register expects '<name> <value>'");
      }
      report->registers.emplace_back(std::string(name), std::string(rendered));
    } else if (key == "diagnostic") {
      report->diagnostics.emplace_back(value);
    } else {
      return set_error(error, "unknown REPORT field '" + std::string(key) + "'");
    }
  }
  return true;
}

std::string render_design_style(const ReportPayload& report) {
  std::string out;
  for (const std::string& conflict : report.conflicts) {
    out.append("  ");
    out.append(conflict);
    out.push_back('\n');
  }
  out.append("final register values:\n");
  for (const auto& [name, value] : report.registers) {
    out.append("  ");
    out.append(name);
    for (std::size_t pad = name.size(); pad < 12; ++pad) {
      out.push_back(' ');
    }
    out.push_back(' ');
    out.append(value);
    out.push_back('\n');
  }
  return out;
}

// ---------------------------------------------------------------------------
// DONE

std::string encode_done(const DonePayload& done) {
  std::string out;
  append_kv(out, "job", done.job_id);
  append_kv(out, "instances", done.instances);
  append_kv(out, "failures", done.failures);
  append_kv(out, "conflicts", done.conflicts);
  append_kv(out, "cache", done.cache_hit ? "hit" : "miss");
  append_kv(out, "key", done.cache_key);
  append_kv(out, "lower-ns", done.lower_ns);
  append_kv(out, "run-ns", done.run_ns);
  return out;
}

bool parse_done(std::string_view payload, DonePayload* done, std::string* error) {
  *done = DonePayload{};
  Scanner scanner(payload);
  std::string_view line;
  while (scanner.line(&line)) {
    if (line.empty()) {
      continue;
    }
    const auto [key, value] = split_word(line);
    if (key == "job") {
      done->job_id = std::string(value);
    } else if (key == "instances") {
      if (!parse_u64(value, &done->instances)) {
        return set_error(error, "instances expects an unsigned integer");
      }
    } else if (key == "failures") {
      if (!parse_u64(value, &done->failures)) {
        return set_error(error, "failures expects an unsigned integer");
      }
    } else if (key == "conflicts") {
      if (!parse_u64(value, &done->conflicts)) {
        return set_error(error, "conflicts expects an unsigned integer");
      }
    } else if (key == "cache") {
      if (value != "hit" && value != "miss") {
        return set_error(error, "cache expects 'hit' or 'miss'");
      }
      done->cache_hit = value == "hit";
    } else if (key == "key") {
      done->cache_key = std::string(value);
    } else if (key == "lower-ns") {
      if (!parse_u64(value, &done->lower_ns)) {
        return set_error(error, "lower-ns expects an unsigned integer");
      }
    } else if (key == "run-ns") {
      if (!parse_u64(value, &done->run_ns)) {
        return set_error(error, "run-ns expects an unsigned integer");
      }
    } else {
      return set_error(error, "unknown DONE field '" + std::string(key) + "'");
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// ERROR

std::string to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kProtocol:
      return "E-PROTOCOL";
    case ErrorCode::kParse:
      return "E-PARSE";
    case ErrorCode::kValidate:
      return "E-VALIDATE";
    case ErrorCode::kFaultPlan:
      return "E-FAULT-PLAN";
    case ErrorCode::kLimit:
      return "E-LIMIT";
    case ErrorCode::kShutdown:
      return "E-SHUTDOWN";
    case ErrorCode::kInternal:
      return "E-INTERNAL";
    case ErrorCode::kDeadline:
      return "E-DEADLINE";
    case ErrorCode::kCancelled:
      return "E-CANCELLED";
  }
  return "E-INTERNAL";
}

bool parse_error_code(std::string_view token, ErrorCode* code) {
  for (const ErrorCode candidate :
       {ErrorCode::kProtocol, ErrorCode::kParse, ErrorCode::kValidate,
        ErrorCode::kFaultPlan, ErrorCode::kLimit, ErrorCode::kShutdown,
        ErrorCode::kInternal, ErrorCode::kDeadline, ErrorCode::kCancelled}) {
    if (to_string(candidate) == token) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

std::string encode_error(const ErrorPayload& error_payload) {
  std::string out;
  if (!error_payload.job_id.empty()) {
    append_kv(out, "job", error_payload.job_id);
  }
  append_kv(out, "code", to_string(error_payload.code));
  for (const std::string& diagnostic : error_payload.diagnostics) {
    append_kv(out, "diagnostic", diagnostic);
  }
  return out;
}

bool parse_error(std::string_view payload, ErrorPayload* error_payload,
                 std::string* error) {
  *error_payload = ErrorPayload{};
  Scanner scanner(payload);
  std::string_view line;
  while (scanner.line(&line)) {
    if (line.empty()) {
      continue;
    }
    const auto [key, value] = split_word(line);
    if (key == "job") {
      error_payload->job_id = std::string(value);
    } else if (key == "code") {
      if (!parse_error_code(value, &error_payload->code)) {
        return set_error(error, "unknown error code '" + std::string(value) + "'");
      }
    } else if (key == "diagnostic") {
      error_payload->diagnostics.emplace_back(value);
    } else {
      return set_error(error, "unknown ERROR field '" + std::string(key) + "'");
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// BUSY

std::string to_string(BusyReason reason) {
  switch (reason) {
    case BusyReason::kQueueFull:
      return "queue-full";
    case BusyReason::kShed:
      return "shed-low-priority";
  }
  return "queue-full";
}

bool parse_busy_reason(std::string_view token, BusyReason* reason) {
  for (const BusyReason candidate :
       {BusyReason::kQueueFull, BusyReason::kShed}) {
    if (to_string(candidate) == token) {
      *reason = candidate;
      return true;
    }
  }
  return false;
}

std::string encode_busy(const BusyPayload& busy) {
  std::string out;
  append_kv(out, "job", busy.job_id);
  append_kv(out, "queued", busy.queued);
  append_kv(out, "capacity", busy.capacity);
  if (busy.retry_after_ms != 0) {
    append_kv(out, "retry-after-ms", busy.retry_after_ms);
  }
  if (busy.reason != BusyReason::kQueueFull) {
    append_kv(out, "reason", to_string(busy.reason));
  }
  return out;
}

bool parse_busy(std::string_view payload, BusyPayload* busy, std::string* error) {
  *busy = BusyPayload{};
  Scanner scanner(payload);
  std::string_view line;
  while (scanner.line(&line)) {
    if (line.empty()) {
      continue;
    }
    const auto [key, value] = split_word(line);
    if (key == "job") {
      busy->job_id = std::string(value);
    } else if (key == "queued") {
      if (!parse_u64(value, &busy->queued)) {
        return set_error(error, "queued expects an unsigned integer");
      }
    } else if (key == "capacity") {
      if (!parse_u64(value, &busy->capacity)) {
        return set_error(error, "capacity expects an unsigned integer");
      }
    } else if (key == "retry-after-ms") {
      if (!parse_u64(value, &busy->retry_after_ms)) {
        return set_error(error, "retry-after-ms expects an unsigned integer");
      }
    } else if (key == "reason") {
      if (!parse_busy_reason(value, &busy->reason)) {
        return set_error(error,
                         "unknown BUSY reason '" + std::string(value) + "'");
      }
    } else {
      return set_error(error, "unknown BUSY field '" + std::string(key) + "'");
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// STATS

namespace {

struct StatsField {
  std::string_view key;
  std::uint64_t StatsPayload::* member;
};

constexpr std::array<StatsField, 17> kStatsFields = {{
    {"jobs-accepted", &StatsPayload::jobs_accepted},
    {"jobs-completed", &StatsPayload::jobs_completed},
    {"jobs-rejected-busy", &StatsPayload::jobs_rejected_busy},
    {"jobs-failed", &StatsPayload::jobs_failed},
    {"jobs-shed", &StatsPayload::jobs_shed},
    {"jobs-deadline-expired", &StatsPayload::jobs_deadline_expired},
    {"jobs-cancelled", &StatsPayload::jobs_cancelled},
    {"instances-completed", &StatsPayload::instances_completed},
    {"cache-hits", &StatsPayload::cache_hits},
    {"cache-misses", &StatsPayload::cache_misses},
    {"cache-evictions", &StatsPayload::cache_evictions},
    {"cache-entries", &StatsPayload::cache_entries},
    {"cache-capacity", &StatsPayload::cache_capacity},
    {"queue-capacity", &StatsPayload::queue_capacity},
    {"workers", &StatsPayload::workers},
    {"snapshot-records-loaded", &StatsPayload::snapshot_records_loaded},
    {"snapshot-records-skipped", &StatsPayload::snapshot_records_skipped},
}};

}  // namespace

std::string encode_stats(const StatsPayload& stats) {
  std::string out;
  for (const StatsField& field : kStatsFields) {
    append_kv(out, field.key, stats.*(field.member));
  }
  return out;
}

bool parse_stats(std::string_view payload, StatsPayload* stats,
                 std::string* error) {
  *stats = StatsPayload{};
  Scanner scanner(payload);
  std::string_view line;
  while (scanner.line(&line)) {
    if (line.empty()) {
      continue;
    }
    const auto [key, value] = split_word(line);
    bool matched = false;
    for (const StatsField& field : kStatsFields) {
      if (field.key == key) {
        if (!parse_u64(value, &(stats->*(field.member)))) {
          return set_error(error,
                           std::string(key) + " expects an unsigned integer");
        }
        matched = true;
        break;
      }
    }
    if (!matched) {
      return set_error(error, "unknown STATS field '" + std::string(key) + "'");
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// HELLO

std::string encode_hello(const HelloPayload& hello) {
  std::string out;
  append_kv(out, "proto", hello.proto);
  if (!hello.server.empty()) {
    append_kv(out, "server", hello.server);
  }
  return out;
}

bool parse_hello(std::string_view payload, HelloPayload* hello,
                 std::string* error) {
  *hello = HelloPayload{};
  hello->proto.clear();
  Scanner scanner(payload);
  std::string_view line;
  while (scanner.line(&line)) {
    if (line.empty()) {
      continue;
    }
    const auto [key, value] = split_word(line);
    if (key == "proto") {
      hello->proto = std::string(value);
    } else if (key == "server") {
      hello->server = std::string(value);
    } else {
      return set_error(error, "unknown HELLO field '" + std::string(key) + "'");
    }
  }
  return true;
}

}  // namespace ctrtl::serve
