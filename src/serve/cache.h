#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "transfer/schedule.h"

namespace ctrtl::serve {

/// LRU-bounded cache of lowered designs, keyed by the canonical-stream
/// content hash (`transfer::canonical_stream_hash` over the post-fault
/// `(design, instances)` pair — see docs/SERVICE.md, "Cache key"). The
/// cache owns nothing but `shared_ptr`s: eviction drops the cache's
/// reference, and any job still running against the evicted
/// `CompiledDesign` keeps it alive until the job finishes. Thread-safe;
/// `get_or_compile` holds the cache lock across a miss's compile so that
/// concurrent submissions of the same design lower it exactly once
/// (single-flight) — lowering is fast relative to simulation, so the
/// simplicity wins over a per-key latch.
class DesignCache {
 public:
  using Compile =
      std::function<std::shared_ptr<const transfer::CompiledDesign>()>;

  /// `capacity` == 0 disables caching (every lookup is a miss and nothing
  /// is retained).
  explicit DesignCache(std::size_t capacity) : capacity_(capacity) {}

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
  };

  /// Returns the cached design for `key`, or invokes `compile`, stores the
  /// result (evicting the least-recently-used entry when over capacity) and
  /// returns it. `hit` (when non-null) reports which path was taken. A
  /// `compile` that throws propagates and caches nothing.
  [[nodiscard]] std::shared_ptr<const transfer::CompiledDesign> get_or_compile(
      std::uint64_t key, const Compile& compile, bool* hit = nullptr);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_ptr<const transfer::CompiledDesign> design;
    std::list<std::uint64_t>::iterator order;  ///< position in order_
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  /// Keys in recency order, most recent at the front.
  std::list<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  Stats counters_;
};

}  // namespace ctrtl::serve
