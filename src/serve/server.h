#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/service.h"

namespace ctrtl::serve {

/// Options for a `ServeServer`.
struct ServerOptions {
  /// Filesystem path of the Unix-domain listening socket. A stale file at
  /// this path is unlinked on start.
  std::string socket_path;
  /// Forwarded to the embedded `SimulationService`.
  ServiceOptions service;
};

/// The wire layer of `ctrtl_serve`: accepts Unix-domain stream connections,
/// decodes ctrtl-serve/2 frames, and routes jobs into an embedded
/// `SimulationService`. One reader thread and one writer thread per
/// connection; job frames are buffered into a per-connection outbox that
/// the writer drains, so a slow (or stalled) reader blocks only its own
/// connection — never a service worker. A SHUTDOWN frame (or `stop()`)
/// stops admission, drains in-flight jobs, flushes the outboxes, and
/// closes everything down.
///
/// Each connection tracks the `JobControl` of every job it submitted; a
/// connection that ends *abruptly* (EOF or framing corruption, as opposed
/// to a BYE/SHUTDOWN handshake) cancels its outstanding jobs, so work for
/// a vanished client stops at the next lane-block boundary instead of
/// running to completion for nobody.
class ServeServer {
 public:
  explicit ServeServer(ServerOptions options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds and listens; throws `std::runtime_error` on socket failure.
  void start();

  /// Blocks until the server is stopped (SHUTDOWN frame or `stop()`).
  void wait();

  /// Initiates shutdown from any thread; idempotent.
  void stop();

  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }

 private:
  struct Connection;

  void accept_loop();
  void handle_connection(std::shared_ptr<Connection> connection);
  static void writer_loop(std::shared_ptr<Connection> connection);
  void reap_finished_connections();

  ServerOptions options_;
  SimulationService service_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;
  std::vector<std::weak_ptr<Connection>> connections_;
};

}  // namespace ctrtl::serve
