#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace ctrtl::serve {

/// Every failure a `ServeClient` throws, with a machine-readable kind so
/// callers can tell a transport problem from a protocol one without
/// parsing message text. Derives from `std::runtime_error`, so existing
/// catch sites keep working.
class ClientError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    kIo,        ///< socket setup or write failed
    kTimeout,   ///< a read exceeded the configured read timeout
    kProtocol,  ///< the server sent bytes that do not parse as the protocol
    kClosed,    ///< the server closed the connection mid-exchange
  };

  ClientError(Kind kind, const std::string& message)
      : std::runtime_error("serve client: " + message), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// How a submitted job ended, from the client's point of view.
struct JobOutcome {
  enum class Status : std::uint8_t {
    kDone,   ///< DONE received; `done` and `reports` are valid
    kBusy,   ///< BUSY at admission; `busy` is valid
    kError,  ///< ERROR (at admission or mid-job); `error` is valid
  };
  Status status = Status::kError;
  std::optional<AcceptedPayload> accepted;
  DonePayload done;
  BusyPayload busy;
  ErrorPayload error;
  /// Every REPORT frame, in arrival (completion) order. `run_job` sorts by
  /// instance on request; raw arrival order is what determinism tests
  /// normalize themselves.
  std::vector<ReportPayload> reports;
};

/// Bounded exponential backoff for resubmitting after BUSY: attempt n
/// waits max(server's retry-after-ms hint, base_delay_ms << n), capped at
/// max_delay_ms. The server hint is a floor, never a ceiling — a loaded
/// server asking for 50 ms gets at least 50 ms.
struct RetryPolicy {
  std::size_t max_attempts = 5;
  std::uint64_t base_delay_ms = 25;
  std::uint64_t max_delay_ms = 1000;
};

/// Blocking ctrtl-serve/2 client over a Unix-domain socket. Not
/// thread-safe; one client per thread. All failures throw `ClientError`.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects and exchanges HELLOs; throws `ClientError` on socket or
  /// protocol failure.
  void connect(const std::string& socket_path);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Bounds every blocking read: a server that stops responding (stalled,
  /// wedged, or killed without closing the socket) surfaces as a
  /// `ClientError` of kind kTimeout after this many milliseconds instead
  /// of hanging the caller forever. 0 (the default) disables the bound.
  /// Takes effect immediately, connected or not.
  void set_read_timeout_ms(std::uint64_t timeout_ms);

  /// Submits `request` and blocks until the job's terminal frame,
  /// invoking `on_report` (when set) as each REPORT arrives.
  [[nodiscard]] JobOutcome run_job(
      const JobRequest& request,
      const std::function<void(const ReportPayload&)>& on_report = nullptr);

  /// `run_job`, resubmitting on BUSY with bounded exponential backoff that
  /// honors the server's retry-after-ms hint. Returns the first non-BUSY
  /// outcome, or the final BUSY once attempts are exhausted.
  [[nodiscard]] JobOutcome run_job_with_retry(
      const JobRequest& request, const RetryPolicy& policy = {},
      const std::function<void(const ReportPayload&)>& on_report = nullptr);

  [[nodiscard]] StatsPayload stats();

  /// Asks the server to shut down; consumes the BYE ack.
  void shutdown_server();

  /// Polite close (BYE exchange) then disconnect.
  void close();

 private:
  void send_frame(const Frame& frame);
  [[nodiscard]] Frame read_frame();
  void apply_read_timeout();

  int fd_ = -1;
  std::uint64_t read_timeout_ms_ = 0;
  FrameDecoder decoder_;
};

}  // namespace ctrtl::serve
