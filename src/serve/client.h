#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace ctrtl::serve {

/// How a submitted job ended, from the client's point of view.
struct JobOutcome {
  enum class Status : std::uint8_t {
    kDone,   ///< DONE received; `done` and `reports` are valid
    kBusy,   ///< BUSY at admission; `busy` is valid
    kError,  ///< ERROR (at admission or mid-job); `error` is valid
  };
  Status status = Status::kError;
  std::optional<AcceptedPayload> accepted;
  DonePayload done;
  BusyPayload busy;
  ErrorPayload error;
  /// Every REPORT frame, in arrival (completion) order. `run_job` sorts by
  /// instance on request; raw arrival order is what determinism tests
  /// normalize themselves.
  std::vector<ReportPayload> reports;
};

/// Blocking ctrtl-serve/1 client over a Unix-domain socket. Not
/// thread-safe; one client per thread.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects and exchanges HELLOs; throws `std::runtime_error` on socket
  /// or protocol failure.
  void connect(const std::string& socket_path);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Submits `request` and blocks until the job's terminal frame,
  /// invoking `on_report` (when set) as each REPORT arrives.
  [[nodiscard]] JobOutcome run_job(
      const JobRequest& request,
      const std::function<void(const ReportPayload&)>& on_report = nullptr);

  [[nodiscard]] StatsPayload stats();

  /// Asks the server to shut down; consumes the BYE ack.
  void shutdown_server();

  /// Polite close (BYE exchange) then disconnect.
  void close();

 private:
  void send_frame(const Frame& frame);
  [[nodiscard]] Frame read_frame();

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace ctrtl::serve
