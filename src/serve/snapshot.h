#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace ctrtl::serve {

/// One persisted design-cache entry: the *sources* (post-validation design
/// text plus optional fault plan) rather than the lowered artifact. Reload
/// re-runs the standard parse → fault → hash → lower pipeline, so a
/// snapshot can never resurrect an artifact the current binary would not
/// have produced itself — the journaled key only cross-checks the result.
struct SnapshotRecord {
  std::uint64_t key = 0;  ///< canonical_stream_hash of the faulted pair
  std::string design_text;
  bool has_fault_plan = false;
  std::string fault_plan_text;

  friend bool operator==(const SnapshotRecord&, const SnapshotRecord&) = default;
};

/// Renders one record in the append-only snapshot format:
///
///   SNAP1 <key-hex16> <flags> <design-len> <fault-len> <checksum-hex16>\n
///   <design bytes>\n
///   <fault bytes>\n
///
/// `flags` bit 0 marks a present fault plan (fault-len must be 0 when
/// clear). `checksum` is a `transfer::StreamHasher` digest over (key,
/// flags, design, fault), so a flipped byte anywhere in the record —
/// header or body — fails verification. Records are self-delimiting and
/// independently checksummed: a reader can always skip a corrupt record
/// and resynchronize on the next `SNAP1` header.
[[nodiscard]] std::string encode_snapshot_record(const SnapshotRecord& record);

/// Outcome of scanning a snapshot stream: every record that survived
/// checksum + structure verification, plus how many corrupt, torn, or
/// unparseable regions were skipped to get there.
struct SnapshotParseResult {
  std::vector<SnapshotRecord> records;
  std::uint64_t skipped = 0;
};

/// Scans a whole snapshot image, salvaging every intact record. Corruption
/// never aborts the scan:
///
///   - a malformed header resynchronizes at the next "\nSNAP1 " boundary
///     (one skip counted per contiguous garbage region);
///   - a record whose checksum mismatches but whose framing is intact is
///     skipped exactly (the reader steps over its declared extent);
///   - a torn tail — the partial record a crash mid-append leaves behind —
///     is counted and ends the scan.
///
/// An empty image is zero records, zero skips.
[[nodiscard]] SnapshotParseResult parse_snapshot(std::string_view data);

/// Reads and scans a snapshot file. A missing file is a clean empty result
/// (first boot); an unreadable file returns false with `error` set.
bool load_snapshot_file(const std::string& path, SnapshotParseResult* out,
                        std::string* error);

/// Crash-safe append-only journal of cache entries. Each `append` writes
/// one complete encoded record and flushes before returning, so a process
/// killed at any instant loses at most the record being written — and the
/// per-record checksum turns that torn tail into a skip, never a bad load.
/// Keys already journaled (or reported via `note_existing` after a reload)
/// are deduplicated, keeping the file linear in distinct designs rather
/// than in submissions.
class SnapshotJournal {
 public:
  explicit SnapshotJournal(std::string path) : path_(std::move(path)) {}

  /// Appends the record unless its key is already journaled. Returns false
  /// only on an I/O failure (the key is NOT marked journaled, so a later
  /// append retries).
  bool append(const SnapshotRecord& record);

  /// Marks a key as already present (loaded from an existing snapshot) so
  /// `append` will not duplicate it.
  void note_existing(std::uint64_t key);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::mutex mutex_;
  std::unordered_set<std::uint64_t> journaled_;
};

}  // namespace ctrtl::serve
