#include "fault/inject.h"

#include <algorithm>
#include <map>
#include <string>

#include "transfer/build.h"
#include "transfer/mapping.h"

namespace ctrtl::fault {

namespace {

using transfer::Endpoint;
using transfer::TransInstance;

/// The constant source carrying a forced value. Constants are shared by
/// value across the plan's faults; names avoid collisions with the design's
/// own constants ("__fault0", "__fault1", ...).
const std::string& fault_constant(FaultedDesign& out,
                                  std::map<std::int64_t, std::string>& by_value,
                                  std::int64_t value) {
  const auto it = by_value.find(value);
  if (it != by_value.end()) {
    return it->second;
  }
  std::size_t n = 0;
  std::string name;
  do {
    name = "__fault" + std::to_string(n++);
  } while (out.design.find_constant(name) != nullptr);
  out.design.constants.push_back(transfer::ConstantDecl{name, value});
  return by_value.emplace(value, std::move(name)).first->second;
}

bool step_matches(const FaultSpec& spec, const TransInstance& instance) {
  return spec.step == 0 || instance.step == spec.step;
}

}  // namespace

std::optional<FaultedDesign> apply_plan(const transfer::Design& design,
                                        const FaultPlan& plan,
                                        common::DiagnosticBag& diags) {
  FaultedDesign out;
  out.design = design;
  out.instances = transfer::to_instances(design.transfers);
  std::map<std::int64_t, std::string> constants_by_value;

  for (const FaultSpec& spec : plan.faults) {
    const std::string label = to_string(spec);
    if (spec.step > design.cs_max) {
      diags.error("fault '" + label + "': step " + std::to_string(spec.step) +
                  " outside 1.." + std::to_string(design.cs_max));
      continue;
    }
    switch (spec.kind) {
      case FaultKind::kStuckDisc: {
        if (design.find_register(spec.target) == nullptr) {
          diags.error("fault '" + label + "': no register named '" +
                      spec.target + "'");
          break;
        }
        const Endpoint source = Endpoint::register_out(spec.target);
        const std::size_t before = out.instances.size();
        std::erase_if(out.instances, [&](const TransInstance& instance) {
          return instance.source == source && step_matches(spec, instance);
        });
        const std::size_t removed = before - out.instances.size();
        out.dropped += removed;
        if (removed == 0) {
          diags.warning("fault '" + label + "' matched no transfer");
        }
        break;
      }
      case FaultKind::kStuckIllegal: {
        if (design.find_register(spec.target) == nullptr) {
          diags.error("fault '" + label + "': no register named '" +
                      spec.target + "'");
          break;
        }
        const Endpoint source = Endpoint::register_out(spec.target);
        // Collect first, then append: every matched read fire gains two
        // extra non-DISC contributions on its sink, which pins the resolved
        // value at ILLEGAL (resolve_rt counts contributions) exactly where
        // the stuck register drove.
        std::vector<TransInstance> extra;
        for (const TransInstance& instance : out.instances) {
          if (instance.source == source && step_matches(spec, instance)) {
            for (const std::int64_t value : {0, 1}) {
              extra.push_back(TransInstance{
                  instance.step, instance.phase,
                  Endpoint::constant(
                      fault_constant(out, constants_by_value, value)),
                  instance.sink});
            }
          }
        }
        if (extra.empty()) {
          diags.warning("fault '" + label + "' matched no transfer");
        }
        out.inserted += extra.size();
        for (TransInstance& instance : extra) {
          out.instances.push_back(std::move(instance));
        }
        break;
      }
      case FaultKind::kForceBus: {
        if (!design.has_bus(spec.target)) {
          diags.error("fault '" + label + "': no bus named '" + spec.target +
                      "'");
          break;
        }
        if (spec.step == 0 || !spec.phase.has_value()) {
          diags.error("fault '" + label +
                      "': force-bus needs an explicit step and phase");
          break;
        }
        if (*spec.phase == rtl::Phase::kCm || *spec.phase == rtl::kPhaseHigh) {
          diags.error("fault '" + label +
                      "': force-bus phase must be ra, rb, wa, or wb");
          break;
        }
        out.instances.push_back(TransInstance{
            spec.step, *spec.phase,
            Endpoint::constant(
                fault_constant(out, constants_by_value, spec.value)),
            Endpoint::bus(spec.target)});
        ++out.inserted;
        break;
      }
      case FaultKind::kDropTransfer: {
        Endpoint sink;
        try {
          sink = transfer::parse_endpoint(spec.target);
        } catch (const std::exception& error) {
          diags.error("fault '" + label + "': " + error.what());
          break;
        }
        const std::size_t before = out.instances.size();
        std::erase_if(out.instances, [&](const TransInstance& instance) {
          return instance.sink == sink && instance.step == spec.step &&
                 (!spec.phase.has_value() || instance.phase == *spec.phase);
        });
        const std::size_t removed = before - out.instances.size();
        out.dropped += removed;
        if (removed == 0) {
          diags.warning("fault '" + label + "' matched no transfer");
        }
        break;
      }
      case FaultKind::kCorruptModule: {
        if (design.find_module(spec.target) == nullptr) {
          diags.error("fault '" + label + "': no module named '" +
                      spec.target + "'");
          break;
        }
        const Endpoint source = Endpoint::module_out(spec.target);
        std::size_t rewritten = 0;
        for (TransInstance& instance : out.instances) {
          if (instance.source == source && step_matches(spec, instance)) {
            instance.source = Endpoint::constant(
                fault_constant(out, constants_by_value, spec.value));
            ++rewritten;
          }
        }
        out.rewritten += rewritten;
        if (rewritten == 0) {
          diags.warning("fault '" + label + "' matched no transfer");
        }
        break;
      }
    }
  }
  if (diags.has_errors()) {
    return std::nullopt;
  }
  return out;
}

std::optional<FaultedDesign> parse_and_apply(const transfer::Design& design,
                                             const std::string& plan_text,
                                             common::DiagnosticBag& diags,
                                             FaultPlan* plan_out) {
  const FaultPlan plan = parse_fault_plan(plan_text, diags);
  if (plan_out != nullptr) {
    *plan_out = plan;
  }
  if (diags.has_errors()) {
    return std::nullopt;
  }
  return apply_plan(design, plan, diags);
}

std::unique_ptr<rtl::RtModel> build_model(const FaultedDesign& faulted,
                                          rtl::TransferMode mode) {
  return transfer::build_model(faulted.design, faulted.instances, mode);
}

std::shared_ptr<const transfer::CompiledDesign> compile(
    const FaultedDesign& faulted) {
  return transfer::CompiledDesign::compile(faulted.design, faulted.instances);
}

}  // namespace ctrtl::fault
