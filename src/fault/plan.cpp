#include "fault/plan.h"

#include <sstream>

namespace ctrtl::fault {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckDisc:
      return "stuck-disc";
    case FaultKind::kStuckIllegal:
      return "stuck-illegal";
    case FaultKind::kForceBus:
      return "force-bus";
    case FaultKind::kDropTransfer:
      return "drop";
    case FaultKind::kCorruptModule:
      return "corrupt-module";
  }
  return "unknown";
}

std::string to_string(const FaultSpec& spec) {
  std::ostringstream out;
  out << to_string(spec.kind) << ' ' << spec.target;
  if (spec.kind == FaultKind::kForceBus ||
      spec.kind == FaultKind::kCorruptModule) {
    out << " = " << spec.value;
  }
  if (spec.step != 0 || spec.phase.has_value()) {
    out << " @" << spec.step;
    if (spec.phase.has_value()) {
      out << ':' << rtl::phase_name(*spec.phase);
    }
  }
  return out.str();
}

std::string to_text(const FaultPlan& plan) {
  std::ostringstream out;
  for (const FaultSpec& spec : plan.faults) {
    out << to_string(spec) << '\n';
  }
  return out.str();
}

namespace {

/// Splits one plan line into whitespace tokens, with '=' its own token.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  const auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  };
  for (const char c : line) {
    if (c == ' ' || c == '\t') {
      flush();
    } else if (c == '=') {
      flush();
      tokens.emplace_back("=");
    } else {
      current.push_back(c);
    }
  }
  flush();
  return tokens;
}

/// Parses "@<step>" or "@<step>:<phase>"; reports into `diags` on failure.
bool parse_at(const std::string& token, unsigned line, FaultSpec& spec,
              common::DiagnosticBag& diags) {
  if (token.size() < 2 || token[0] != '@') {
    diags.error("expected '@<step>[:<phase>]', got '" + token + "'",
                common::SourceLocation{line, 1});
    return false;
  }
  const std::string body = token.substr(1);
  const std::size_t colon = body.find(':');
  const std::string step_text = body.substr(0, colon);
  try {
    std::size_t consumed = 0;
    const unsigned long step = std::stoul(step_text, &consumed);
    if (consumed != step_text.size()) {
      throw std::invalid_argument(step_text);
    }
    spec.step = static_cast<unsigned>(step);
  } catch (const std::exception&) {
    diags.error("bad control step '" + step_text + "'",
                common::SourceLocation{line, 1});
    return false;
  }
  if (colon != std::string::npos) {
    const std::string phase_text = body.substr(colon + 1);
    try {
      spec.phase = rtl::phase_from_name(phase_text);
    } catch (const std::exception&) {
      diags.error("bad phase '" + phase_text + "' (expected ra|rb|cm|wa|wb|cr)",
                  common::SourceLocation{line, 1});
      return false;
    }
  }
  return true;
}

/// Parses "= <value>" at tokens[index]; reports into `diags` on failure.
bool parse_value(const std::vector<std::string>& tokens, std::size_t index,
                 unsigned line, FaultSpec& spec, common::DiagnosticBag& diags) {
  if (index + 1 >= tokens.size() || tokens[index] != "=") {
    diags.error("expected '= <value>' after '" + spec.target + "'",
                common::SourceLocation{line, 1});
    return false;
  }
  const std::string& text = tokens[index + 1];
  try {
    std::size_t consumed = 0;
    spec.value = std::stoll(text, &consumed);
    if (consumed != text.size()) {
      throw std::invalid_argument(text);
    }
  } catch (const std::exception&) {
    diags.error("bad value '" + text + "'", common::SourceLocation{line, 1});
    return false;
  }
  return true;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& text,
                           common::DiagnosticBag& diags) {
  FaultPlan plan;
  std::istringstream stream(text);
  std::string raw;
  unsigned line_number = 0;
  while (std::getline(stream, raw)) {
    ++line_number;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      raw.erase(hash);
    }
    const std::vector<std::string> tokens = tokenize(raw);
    if (tokens.empty()) {
      continue;
    }
    const std::string& keyword = tokens[0];
    FaultSpec spec;
    if (keyword == "stuck-disc" || keyword == "stuck-illegal") {
      spec.kind = keyword == "stuck-disc" ? FaultKind::kStuckDisc
                                          : FaultKind::kStuckIllegal;
      if (tokens.size() < 2) {
        diags.error(keyword + " needs a register name",
                    common::SourceLocation{line_number, 1});
        continue;
      }
      spec.target = tokens[1];
      if (tokens.size() == 3) {
        if (!parse_at(tokens[2], line_number, spec, diags)) {
          continue;
        }
        if (spec.phase.has_value()) {
          diags.error(keyword + " takes '@<step>' without a phase",
                      common::SourceLocation{line_number, 1});
          continue;
        }
      } else if (tokens.size() > 3) {
        diags.error("trailing tokens after '" + keyword + " " + spec.target +
                        "'",
                    common::SourceLocation{line_number, 1});
        continue;
      }
    } else if (keyword == "force-bus") {
      spec.kind = FaultKind::kForceBus;
      if (tokens.size() != 5) {
        diags.error("force-bus needs '<bus> = <value> @<step>:<phase>'",
                    common::SourceLocation{line_number, 1});
        continue;
      }
      spec.target = tokens[1];
      if (!parse_value(tokens, 2, line_number, spec, diags) ||
          !parse_at(tokens[4], line_number, spec, diags)) {
        continue;
      }
      if (spec.step == 0 || !spec.phase.has_value()) {
        diags.error("force-bus needs an explicit '@<step>:<phase>'",
                    common::SourceLocation{line_number, 1});
        continue;
      }
      if (*spec.phase == rtl::Phase::kCm || *spec.phase == rtl::Phase::kCr) {
        diags.error("force-bus phase must be a transfer phase (ra|rb|wa|wb)",
                    common::SourceLocation{line_number, 1});
        continue;
      }
    } else if (keyword == "drop") {
      spec.kind = FaultKind::kDropTransfer;
      if (tokens.size() != 3) {
        diags.error("drop needs '<sink-endpoint> @<step>[:<phase>]'",
                    common::SourceLocation{line_number, 1});
        continue;
      }
      spec.target = tokens[1];
      if (!parse_at(tokens[2], line_number, spec, diags)) {
        continue;
      }
      if (spec.step == 0) {
        diags.error("drop needs an explicit step",
                    common::SourceLocation{line_number, 1});
        continue;
      }
    } else if (keyword == "corrupt-module") {
      spec.kind = FaultKind::kCorruptModule;
      if (tokens.size() != 4 && tokens.size() != 5) {
        diags.error("corrupt-module needs '<module> = <value> [@<step>]'",
                    common::SourceLocation{line_number, 1});
        continue;
      }
      spec.target = tokens[1];
      if (!parse_value(tokens, 2, line_number, spec, diags)) {
        continue;
      }
      if (tokens.size() == 5) {
        if (!parse_at(tokens[4], line_number, spec, diags)) {
          continue;
        }
        if (spec.phase.has_value()) {
          diags.error("corrupt-module takes '@<step>' without a phase",
                      common::SourceLocation{line_number, 1});
          continue;
        }
      }
    } else {
      diags.error("unknown fault kind '" + keyword +
                      "' (expected stuck-disc, stuck-illegal, force-bus, "
                      "drop, or corrupt-module)",
                  common::SourceLocation{line_number, 1});
      continue;
    }
    plan.faults.push_back(std::move(spec));
  }
  return plan;
}

}  // namespace ctrtl::fault
