#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "common/diagnostics.h"
#include "fault/plan.h"
#include "rtl/model.h"
#include "transfer/design.h"
#include "transfer/schedule.h"

namespace ctrtl::fault {

/// A design with a fault plan applied: the (possibly extended) design — new
/// `__faultN` constants provide the forced values — plus the transformed
/// TRANS instance stream. Faults are *instance-stream transformations*
/// (drop, rewrite-source, append), so every engine consuming the pair
/// `(design, instances)` observes the identical faulted behaviour; that is
/// what makes the fault-sweep equivalence check meaningful.
struct FaultedDesign {
  transfer::Design design;
  std::vector<transfer::TransInstance> instances;

  /// Transformation counts, for reporting ("dropped 2, inserted 3").
  std::size_t dropped = 0;
  std::size_t rewritten = 0;
  std::size_t inserted = 0;
};

/// Applies `plan` to `design`'s canonical instance stream. Unknown targets,
/// out-of-range steps, and phases outside ra/rb/wa/wb (for force-bus) are
/// errors — reported into `diags`, returning nullopt. A fault that matches
/// nothing is a warning (the plan ran, the fault just had no effect site).
/// Appended instances go at the end of the stream, so they are last within
/// their (step, phase) level on every engine alike.
[[nodiscard]] std::optional<FaultedDesign> apply_plan(
    const transfer::Design& design, const FaultPlan& plan,
    common::DiagnosticBag& diags);

/// Fault plans as first-class job parameters: parses plan text (the
/// `parse_fault_plan` grammar) and applies it in one step — the shape a
/// service job carries, where the plan arrives as a text blob next to the
/// design. Parse errors and application errors both land in `diags` with
/// nullopt returned; `plan_out` (when non-null) receives the parsed plan
/// either way, so callers can report fault counts.
[[nodiscard]] std::optional<FaultedDesign> parse_and_apply(
    const transfer::Design& design, const std::string& plan_text,
    common::DiagnosticBag& diags, FaultPlan* plan_out = nullptr);

/// Engine facade: elaborates the faulted pair for the event-driven modes
/// (or compiled mode) — `transfer::build_model` over the explicit stream.
[[nodiscard]] std::unique_ptr<rtl::RtModel> build_model(
    const FaultedDesign& faulted,
    rtl::TransferMode mode = rtl::TransferMode::kProcessPerTransfer);

/// Engine facade: lowers the faulted pair once for the lane engine /
/// batch runner (`transfer::CompiledDesign::compile` over the stream).
[[nodiscard]] std::shared_ptr<const transfer::CompiledDesign> compile(
    const FaultedDesign& faulted);

}  // namespace ctrtl::fault
