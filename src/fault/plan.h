#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/diagnostics.h"
#include "rtl/phase.h"

namespace ctrtl::fault {

/// The fault repertoire. Every kind is a transformation of a design's
/// canonical TRANS instance stream (see fault::apply_plan), so one plan has
/// identical observable effect on all three engines by construction.
enum class FaultKind : std::uint8_t {
  /// Register output stuck at DISC: its read fires never happen (the
  /// sourced values vanish from the buses — downstream sees DISC or only
  /// the other contributors).
  kStuckDisc,
  /// Register output stuck at ILLEGAL: every read fire is joined by two
  /// extra bus contributions, guaranteeing the resolved value is ILLEGAL
  /// (>= 2 non-DISC contributions) exactly where the register drove.
  kStuckIllegal,
  /// An extra contribution of `value` forced onto a bus at one
  /// (step, phase) — the classic injected-contention fault. Restricted to
  /// the transfer phases ra/rb/wa/wb.
  kForceBus,
  /// The transfer(s) driving a given sink endpoint at (step[, phase]) are
  /// dropped from the stream — the paper's "missing TRANS instance".
  kDropTransfer,
  /// A module's output reads are rerouted to a constant `value`: consumers
  /// observe a corrupted result instead of the computed one.
  kCorruptModule,
};

[[nodiscard]] std::string to_string(FaultKind kind);

/// One declarative fault: what to break (`target` — a register, bus, module,
/// or sink-endpoint text depending on `kind`), where (`step` 0 = every step;
/// `phase` where the kind needs one), and the forced `value` for kForceBus /
/// kCorruptModule.
struct FaultSpec {
  FaultKind kind = FaultKind::kStuckDisc;
  std::string target;
  unsigned step = 0;
  std::optional<rtl::Phase> phase;
  std::int64_t value = 0;

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// Round-trippable rendering in the plan-file grammar (see parse_fault_plan).
[[nodiscard]] std::string to_string(const FaultSpec& spec);

/// A declarative set of faults applied together to one design.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// One fault per line.
[[nodiscard]] std::string to_text(const FaultPlan& plan);

/// Parses the line-oriented plan grammar ('#' starts a comment, blank lines
/// are skipped):
///
///   stuck-disc <register> [@<step>]
///   stuck-illegal <register> [@<step>]
///   force-bus <bus> = <value> @<step>:<phase>     (phase: ra|rb|wa|wb)
///   drop <sink-endpoint> @<step>[:<phase>]        (endpoint: "B1", "R1.in", ...)
///   corrupt-module <module> = <value> [@<step>]
///
/// Malformed lines are reported into `diags` (anchored to their line number)
/// and skipped; the well-formed remainder is still returned, so callers gate
/// on `diags.has_errors()`.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& text,
                                         common::DiagnosticBag& diags);

}  // namespace ctrtl::fault
