#include "vhdl/ast.h"

namespace ctrtl::vhdl {

std::string to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNeq:
      return "/=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
  }
  return "<corrupt>";
}

std::string to_string(PortMode mode) {
  switch (mode) {
    case PortMode::kIn:
      return "in";
    case PortMode::kOut:
      return "out";
    case PortMode::kInout:
      return "inout";
  }
  return "<corrupt>";
}

const PortDecl* Entity::find_port(const std::string& port_name) const {
  for (const PortDecl& port : ports) {
    if (port.name == port_name) {
      return &port;
    }
  }
  return nullptr;
}

const Entity* DesignFile::find_entity(const std::string& name) const {
  for (const Entity& entity : entities) {
    if (entity.name == name) {
      return &entity;
    }
  }
  return nullptr;
}

const Architecture* DesignFile::find_architecture_of(
    const std::string& entity_name) const {
  const Architecture* found = nullptr;
  for (const Architecture& architecture : architectures) {
    if (architecture.entity == entity_name) {
      found = &architecture;  // last one wins
    }
  }
  return found;
}

}  // namespace ctrtl::vhdl
