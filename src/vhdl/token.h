#pragma once

#include <cstdint>
#include <string>

#include "common/source_location.h"

namespace ctrtl::vhdl {

/// Token kinds of the VHDL subset lexer. VHDL is case-insensitive;
/// identifiers are normalized to lower case, and keywords are classified by
/// the parser (they are ordinary identifiers lexically).
enum class TokenKind : std::uint8_t {
  kIdentifier,
  kInteger,
  kLParen,      // (
  kRParen,      // )
  kSemicolon,   // ;
  kColon,       // :
  kComma,       // ,
  kDot,         // .
  kTick,        // '
  kAssign,      // :=
  kArrow,       // =>
  kLessEqual,   // <= (signal assignment or relational; parser decides)
  kGreaterEqual,// >=
  kLess,        // <
  kGreater,     // >
  kEqual,       // =
  kNotEqual,    // /=
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
  kAmp,         // &
  kEndOfFile,
};

[[nodiscard]] std::string to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;          // normalized (lower-case) spelling for identifiers
  std::int64_t value = 0;    // for kInteger
  common::SourceLocation location;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  /// True for an identifier spelling `word` (already lower-cased).
  [[nodiscard]] bool is_word(const std::string& word) const {
    return kind == TokenKind::kIdentifier && text == word;
  }
};

}  // namespace ctrtl::vhdl
