#include "vhdl/lexer.h"

#include <cctype>

namespace ctrtl::vhdl {

std::string to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInteger:
      return "integer literal";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kTick:
      return "'''";
    case TokenKind::kAssign:
      return "':='";
    case TokenKind::kArrow:
      return "'=>'";
    case TokenKind::kLessEqual:
      return "'<='";
    case TokenKind::kGreaterEqual:
      return "'>='";
    case TokenKind::kLess:
      return "'<'";
    case TokenKind::kGreater:
      return "'>'";
    case TokenKind::kEqual:
      return "'='";
    case TokenKind::kNotEqual:
      return "'/='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kAmp:
      return "'&'";
    case TokenKind::kEndOfFile:
      return "end of file";
  }
  return "<corrupt>";
}

LexError::LexError(const std::string& message, common::SourceLocation location)
    : std::runtime_error(message + " at " + common::to_string(location)),
      location_(location) {}

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view source) : source_(source) {}

  [[nodiscard]] bool done() const { return pos_ >= source_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  [[nodiscard]] common::SourceLocation location() const { return {line_, column_}; }

 private:
  std::string_view source_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cursor(source);

  const auto push = [&](TokenKind kind, std::string text,
                        common::SourceLocation loc, std::int64_t value = 0) {
    tokens.push_back(Token{kind, std::move(text), value, loc});
  };

  while (!cursor.done()) {
    const common::SourceLocation loc = cursor.location();
    const char c = cursor.peek();

    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      cursor.advance();
      continue;
    }
    // Comment: `--` to end of line.
    if (c == '-' && cursor.peek(1) == '-') {
      while (!cursor.done() && cursor.peek() != '\n') {
        cursor.advance();
      }
      continue;
    }
    if (is_ident_start(c)) {
      std::string text;
      while (!cursor.done() && is_ident_char(cursor.peek())) {
        text.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(cursor.advance()))));
      }
      push(TokenKind::kIdentifier, std::move(text), loc);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::int64_t value = 0;
      std::string text;
      while (!cursor.done() &&
             (std::isdigit(static_cast<unsigned char>(cursor.peek())) != 0 ||
              cursor.peek() == '_')) {
        const char digit = cursor.advance();
        if (digit == '_') {
          continue;  // VHDL digit separator
        }
        text.push_back(digit);
        value = value * 10 + (digit - '0');
      }
      push(TokenKind::kInteger, std::move(text), loc, value);
      continue;
    }

    cursor.advance();
    switch (c) {
      case '(':
        push(TokenKind::kLParen, "(", loc);
        break;
      case ')':
        push(TokenKind::kRParen, ")", loc);
        break;
      case ';':
        push(TokenKind::kSemicolon, ";", loc);
        break;
      case ',':
        push(TokenKind::kComma, ",", loc);
        break;
      case '.':
        push(TokenKind::kDot, ".", loc);
        break;
      case '\'':
        push(TokenKind::kTick, "'", loc);
        break;
      case '&':
        push(TokenKind::kAmp, "&", loc);
        break;
      case '+':
        push(TokenKind::kPlus, "+", loc);
        break;
      case '-':
        push(TokenKind::kMinus, "-", loc);
        break;
      case '*':
        push(TokenKind::kStar, "*", loc);
        break;
      case ':':
        if (cursor.peek() == '=') {
          cursor.advance();
          push(TokenKind::kAssign, ":=", loc);
        } else {
          push(TokenKind::kColon, ":", loc);
        }
        break;
      case '=':
        if (cursor.peek() == '>') {
          cursor.advance();
          push(TokenKind::kArrow, "=>", loc);
        } else {
          push(TokenKind::kEqual, "=", loc);
        }
        break;
      case '<':
        if (cursor.peek() == '=') {
          cursor.advance();
          push(TokenKind::kLessEqual, "<=", loc);
        } else {
          push(TokenKind::kLess, "<", loc);
        }
        break;
      case '>':
        if (cursor.peek() == '=') {
          cursor.advance();
          push(TokenKind::kGreaterEqual, ">=", loc);
        } else {
          push(TokenKind::kGreater, ">", loc);
        }
        break;
      case '/':
        if (cursor.peek() == '=') {
          cursor.advance();
          push(TokenKind::kNotEqual, "/=", loc);
        } else {
          push(TokenKind::kSlash, "/", loc);
        }
        break;
      default:
        throw LexError(std::string("unexpected character '") + c + "'", loc);
    }
  }
  tokens.push_back(Token{TokenKind::kEndOfFile, "", 0, cursor.location()});
  return tokens;
}

}  // namespace ctrtl::vhdl
