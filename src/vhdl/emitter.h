#pragma once

#include <string>

#include "transfer/design.h"

namespace ctrtl::vhdl {

/// The subset's standard cell library as VHDL source: the paper's
/// CONTROLLER, TRANS, REG (extended with an `init` generic), the pipelined
/// ADD/SUB/MUL, and the zero-latency COPY. Parsable by `parse` and
/// executable by the elaborator.
[[nodiscard]] std::string standard_cells();

/// Emits a `transfer::Design` as a complete, self-contained VHDL subset
/// design file: the standard cells followed by one top-level entity
/// (named after the design) whose architecture instantiates a CONTROLLER,
/// one REG per register, one module per functional unit, and one TRANS per
/// tuple fragment — exactly the structure of the paper's section 2.7
/// example.
///
/// Supported module kinds: add, sub, mul (frac_bits 0), copy. Designs using
/// op-port modules (alu/macc/cordic) throw std::invalid_argument — their
/// behaviour is not expressible in the emitted cell library.
[[nodiscard]] std::string emit_vhdl(const transfer::Design& design);

/// The VHDL identifier a design resource name maps to (lower-cased,
/// non-alphanumerics replaced by '_'); exposed for tests and tools reading
/// back emitted models.
[[nodiscard]] std::string vhdl_name(const std::string& resource_name);

}  // namespace ctrtl::vhdl
