#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/diagnostics.h"
#include "kernel/scheduler.h"
#include "vhdl/ast.h"

namespace ctrtl::vhdl {

/// Raised for dynamic interpretation errors (bad attribute argument,
/// undefined name at run time, enum range violation, ...).
class ElaborationError : public std::runtime_error {
 public:
  ElaborationError(const std::string& message, common::SourceLocation location);
  [[nodiscard]] common::SourceLocation location() const { return location_; }

 private:
  common::SourceLocation location_;
};

/// VHDL signals of the subset carry int64 values: integers use the paper's
/// in-band encoding (DISC = -1, ILLEGAL = -2), enumerations their ordinal.
using SimSignal = kernel::Signal<std::int64_t>;

struct EnumType {
  std::string name;
  std::vector<std::string> literals;
};

struct ProcessEnv;  // internal interpreter environment

/// An elaborated, executable design: a kernel scheduler populated with the
/// signals and interpreted processes of the design hierarchy. Signal names
/// are hierarchical: top-level architecture signals and ports by their own
/// name, instance-internal ones as "label.signal".
class ElaboratedModel {
 public:
  ElaboratedModel();
  ~ElaboratedModel();
  ElaboratedModel(const ElaboratedModel&) = delete;
  ElaboratedModel& operator=(const ElaboratedModel&) = delete;

  [[nodiscard]] kernel::Scheduler& scheduler() { return *scheduler_; }

  /// Runs to quiescence (bounded by max_cycles); returns cycles executed.
  std::uint64_t run(std::uint64_t max_cycles = kernel::Scheduler::kNoLimit);

  [[nodiscard]] SimSignal* find_signal(const std::string& name);
  /// Effective value; throws std::invalid_argument for unknown names.
  [[nodiscard]] std::int64_t read(const std::string& name) const;
  /// Value rendered with enum literals / DISC / ILLEGAL where applicable.
  [[nodiscard]] std::string render(const std::string& name) const;

  /// Drives a top-level signal from the testbench (a driver is created on
  /// first use); takes effect at the next delta cycle.
  void set_value(const std::string& name, std::int64_t value);

  [[nodiscard]] const std::map<std::string, SimSignal*>& signals() const {
    return signals_;
  }
  [[nodiscard]] std::size_t process_count() const;

 private:
  friend class Elaborator;
  friend std::unique_ptr<ElaboratedModel> elaborate(DesignFile,
                                                    const std::string&,
                                                    common::DiagnosticBag&);

  std::unique_ptr<kernel::Scheduler> scheduler_;
  DesignFile file_;  // owned: interpreter coroutines reference the AST
  std::map<std::string, SimSignal*> signals_;
  std::map<std::string, std::string> signal_types_;
  std::map<std::string, EnumType> enum_types_;
  std::map<std::string, kernel::DriverId> testbench_drivers_;
  std::vector<std::unique_ptr<ProcessEnv>> envs_;
};

/// Elaborates `top_entity` from the design file (which is consumed and kept
/// alive inside the returned model). Structural errors are reported into
/// `diags` and yield nullptr. Run `check_subset` first for subset
/// conformance; elaboration only checks what it needs to build the model.
[[nodiscard]] std::unique_ptr<ElaboratedModel> elaborate(
    DesignFile file, const std::string& top_entity, common::DiagnosticBag& diags);

/// Convenience: parse + subset-check + elaborate.
[[nodiscard]] std::unique_ptr<ElaboratedModel> load_model(
    std::string_view source, const std::string& top_entity,
    common::DiagnosticBag& diags);

}  // namespace ctrtl::vhdl
