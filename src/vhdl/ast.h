#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/source_location.h"

namespace ctrtl::vhdl {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp : std::uint8_t { kNeg, kNot };

[[nodiscard]] std::string to_string(BinaryOp op);

struct IntLiteral {
  std::int64_t value = 0;
};

/// A simple name: signal, variable, constant, generic, or enum literal —
/// resolved during elaboration.
struct NameRef {
  std::string name;
};

/// `prefix'attribute` or `prefix'attribute(argument)`,
/// e.g. `Phase'High`, `Phase'Succ(PH)`.
struct AttributeRef {
  std::string prefix;
  std::string attribute;
  ExprPtr argument;  // may be null
};

struct BinaryExpr {
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// `name(arg, ...)` — a call to an architecture-declared function (the
/// paper's §2.6 mechanism for grouping combinational levels).
struct CallExpr {
  std::string callee;
  std::vector<ExprPtr> args;
};

struct UnaryExpr {
  UnaryOp op;
  ExprPtr operand;
};

struct Expr {
  common::SourceLocation location;
  std::variant<IntLiteral, NameRef, AttributeRef, BinaryExpr, UnaryExpr, CallExpr>
      node;
};

// ---------------------------------------------------------------------------
// Sequential statements
// ---------------------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// `wait [on s, ...] [until cond] [for t];`
struct WaitStmt {
  std::vector<std::string> on_signals;
  ExprPtr until;     // may be null
  ExprPtr for_time;  // may be null; rejected by the clock-free subset check
};

/// `target <= value [after t];`
struct SignalAssignStmt {
  std::string target;
  ExprPtr value;
  ExprPtr after;  // may be null; rejected by the clock-free subset check
};

/// `target := value;`
struct VariableAssignStmt {
  std::string target;
  ExprPtr value;
};

struct IfStmt {
  struct Arm {
    ExprPtr condition;
    std::vector<StmtPtr> body;
  };
  std::vector<Arm> arms;          // if / elsif chain
  std::vector<StmtPtr> else_body;
};

struct NullStmt {};

/// `return expr;` — only inside function bodies.
struct ReturnStmt {
  ExprPtr value;
};

struct Stmt {
  common::SourceLocation location;
  std::variant<WaitStmt, SignalAssignStmt, VariableAssignStmt, IfStmt, NullStmt,
               ReturnStmt>
      node;
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

/// `[resolved] type_name` — the subset treats `resolved` as a builtin
/// resolution-function marker realizing the paper's section 2.3 semantics.
struct SubtypeIndication {
  bool resolved = false;
  std::string type_name;  // "integer", "natural", "phase", "boolean", ...
};

/// `type Phase is (ra, rb, cm, wa, wb, cr);`
struct TypeDecl {
  std::string name;
  std::vector<std::string> literals;
  common::SourceLocation location;
};

struct ConstantDecl {
  std::string name;
  SubtypeIndication subtype;
  ExprPtr value;
  common::SourceLocation location;
};

struct SignalDecl {
  std::vector<std::string> names;
  SubtypeIndication subtype;
  ExprPtr init;  // may be null
  common::SourceLocation location;
};

struct VariableDecl {
  std::vector<std::string> names;
  SubtypeIndication subtype;
  ExprPtr init;  // may be null
  common::SourceLocation location;
};

/// `function id (params) return type is {vars} begin {stmts} end;`
/// Pure combinational helpers: no waits, no signal assignments inside.
struct FunctionDecl {
  struct Param {
    std::string name;
    SubtypeIndication subtype;
  };
  std::string name;
  std::vector<Param> params;
  SubtypeIndication result;
  std::vector<VariableDecl> variables;
  std::vector<StmtPtr> body;
  common::SourceLocation location;
};

enum class PortMode : std::uint8_t { kIn, kOut, kInout };

[[nodiscard]] std::string to_string(PortMode mode);

struct PortDecl {
  std::string name;
  PortMode mode = PortMode::kIn;
  SubtypeIndication subtype;
  ExprPtr init;  // default expression, e.g. `OutS: out Integer := DISC`
  common::SourceLocation location;
};

struct GenericDecl {
  std::string name;
  SubtypeIndication subtype;
  ExprPtr init;  // may be null
  common::SourceLocation location;
};

// ---------------------------------------------------------------------------
// Design units
// ---------------------------------------------------------------------------

struct Entity {
  std::string name;
  std::vector<GenericDecl> generics;
  std::vector<PortDecl> ports;
  common::SourceLocation location;

  [[nodiscard]] const PortDecl* find_port(const std::string& port_name) const;
};

struct ProcessStmt {
  std::string label;
  std::vector<std::string> sensitivity;
  std::vector<VariableDecl> variables;
  std::vector<StmtPtr> body;
  common::SourceLocation location;
};

/// `label: unit [generic map (e, ...)] [port map (name, ...)];`
/// Positional association only, matching the paper's style.
struct ComponentInst {
  std::string label;
  std::string unit;
  std::vector<ExprPtr> generic_map;
  std::vector<std::string> port_map;
  common::SourceLocation location;
};

struct Architecture {
  std::string name;
  std::string entity;
  std::vector<TypeDecl> types;
  std::vector<ConstantDecl> constants;
  std::vector<SignalDecl> signals;
  std::vector<FunctionDecl> functions;
  std::vector<ProcessStmt> processes;
  std::vector<ComponentInst> instances;
  common::SourceLocation location;
};

struct DesignFile {
  std::vector<Entity> entities;
  std::vector<Architecture> architectures;

  [[nodiscard]] const Entity* find_entity(const std::string& name) const;
  /// The most recently declared architecture of an entity (VHDL's default
  /// binding rule for unnamed configurations).
  [[nodiscard]] const Architecture* find_architecture_of(
      const std::string& entity_name) const;
};

}  // namespace ctrtl::vhdl
