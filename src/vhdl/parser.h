#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "vhdl/ast.h"

namespace ctrtl::vhdl {

/// Raised on a syntax error; carries the offending location.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, common::SourceLocation location);
  [[nodiscard]] common::SourceLocation location() const { return location_; }

 private:
  common::SourceLocation location_;
};

/// Parses a design file of the paper's subset: entity declarations and
/// architecture bodies containing type/constant/signal declarations,
/// processes (with sensitivity lists, variables, wait/assignment/if
/// statements), and positional component instantiations.
///
/// Grammar notes:
///  - `resolved <type>` marks the builtin resolution function (section 2.3).
///  - Only positional generic/port maps are accepted (the paper's style).
///  - Subset *semantic* restrictions (no `after`, no `wait for`, ...) are
///    checked separately by `check_subset`, not here.
[[nodiscard]] DesignFile parse(std::string_view source);

}  // namespace ctrtl::vhdl
