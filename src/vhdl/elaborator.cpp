#include "vhdl/elaborator.h"

#include <limits>
#include <optional>
#include <set>

#include "kernel/task.h"
#include "rtl/value.h"
#include "vhdl/parser.h"
#include "vhdl/subset_check.h"

namespace ctrtl::vhdl {

ElaborationError::ElaborationError(const std::string& message,
                                   common::SourceLocation location)
    : std::runtime_error(message + " at " + common::to_string(location)),
      location_(location) {}

namespace {

/// The paper's resolution function over the in-band integer encoding.
std::int64_t resolve_inband(std::span<const std::int64_t> values) {
  std::int64_t unique = rtl::RtValue::kDiscEncoding;
  bool saw_value = false;
  for (const std::int64_t v : values) {
    if (v == rtl::RtValue::kDiscEncoding) {
      continue;
    }
    if (v == rtl::RtValue::kIllegalEncoding || saw_value) {
      return rtl::RtValue::kIllegalEncoding;
    }
    unique = v;
    saw_value = true;
  }
  return unique;
}

}  // namespace

/// Everything one interpreted process can see: its AST, visible signals,
/// constants (generics, enum literals, declared constants), its variables,
/// and the drivers it owns.
struct ProcessEnv {
  std::string name;
  const ProcessStmt* ast = nullptr;
  kernel::Scheduler* scheduler = nullptr;
  const std::map<std::string, EnumType>* enum_types = nullptr;
  std::map<std::string, const FunctionDecl*> functions;
  std::map<std::string, SimSignal*> signals;
  std::map<std::string, std::int64_t> constants;
  std::map<std::string, std::int64_t> variables;
  std::map<std::string, std::pair<SimSignal*, kernel::DriverId>> drivers;
};

namespace {

// --------------------------------------------------------------------------
// Expression evaluation (shared by static elaboration and the interpreter)
// --------------------------------------------------------------------------

struct EvalScope {
  const std::map<std::string, std::int64_t>* variables = nullptr;  // innermost
  const std::map<std::string, SimSignal*>* signals = nullptr;
  const std::map<std::string, std::int64_t>* constants = nullptr;
  const std::map<std::string, EnumType>* enum_types = nullptr;
  const std::map<std::string, const FunctionDecl*>* functions = nullptr;
};

std::int64_t eval(const Expr& expr, const EvalScope& scope);
std::int64_t call_function(const FunctionDecl& function,
                           std::vector<std::int64_t> args,
                           const EvalScope& outer, common::SourceLocation loc);

std::int64_t eval_attribute(const AttributeRef& attr, const Expr& expr,
                            const EvalScope& scope) {
  const auto arg = [&]() -> std::int64_t {
    if (!attr.argument) {
      throw ElaborationError("attribute '" + attr.attribute + "' needs an argument",
                             expr.location);
    }
    return eval(*attr.argument, scope);
  };

  const EnumType* enum_type = nullptr;
  if (scope.enum_types != nullptr) {
    const auto it = scope.enum_types->find(attr.prefix);
    if (it != scope.enum_types->end()) {
      enum_type = &it->second;
    }
  }

  if (enum_type != nullptr) {
    const auto last = static_cast<std::int64_t>(enum_type->literals.size()) - 1;
    if (attr.attribute == "high" || attr.attribute == "right") {
      return last;
    }
    if (attr.attribute == "low" || attr.attribute == "left") {
      return 0;
    }
    if (attr.attribute == "succ") {
      const std::int64_t v = arg();
      if (v >= last) {
        throw ElaborationError("'Succ past " + enum_type->name + "'High",
                               expr.location);
      }
      return v + 1;
    }
    if (attr.attribute == "pred") {
      const std::int64_t v = arg();
      if (v <= 0) {
        throw ElaborationError("'Pred below " + enum_type->name + "'Low",
                               expr.location);
      }
      return v - 1;
    }
    if (attr.attribute == "pos" || attr.attribute == "val") {
      return arg();
    }
  } else if (attr.prefix == "integer" || attr.prefix == "natural") {
    if (attr.attribute == "high") {
      return std::numeric_limits<std::int64_t>::max();
    }
    if (attr.attribute == "low" || attr.attribute == "left") {
      return attr.prefix == "natural" ? 0
                                      : std::numeric_limits<std::int64_t>::min();
    }
    if (attr.attribute == "succ") {
      return arg() + 1;
    }
    if (attr.attribute == "pred") {
      return arg() - 1;
    }
  }
  throw ElaborationError(
      "unsupported attribute " + attr.prefix + "'" + attr.attribute, expr.location);
}

std::int64_t eval(const Expr& expr, const EvalScope& scope) {
  return std::visit(
      [&](const auto& node) -> std::int64_t {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, IntLiteral>) {
          return node.value;
        } else if constexpr (std::is_same_v<T, NameRef>) {
          if (scope.variables != nullptr) {
            const auto it = scope.variables->find(node.name);
            if (it != scope.variables->end()) {
              return it->second;
            }
          }
          if (scope.signals != nullptr) {
            const auto it = scope.signals->find(node.name);
            if (it != scope.signals->end()) {
              return it->second->read();
            }
          }
          if (scope.constants != nullptr) {
            const auto it = scope.constants->find(node.name);
            if (it != scope.constants->end()) {
              return it->second;
            }
          }
          throw ElaborationError("unknown name '" + node.name + "'", expr.location);
        } else if constexpr (std::is_same_v<T, AttributeRef>) {
          return eval_attribute(node, expr, scope);
        } else if constexpr (std::is_same_v<T, CallExpr>) {
          if (scope.functions == nullptr) {
            throw ElaborationError("function calls are not allowed here",
                                   expr.location);
          }
          const auto it = scope.functions->find(node.callee);
          if (it == scope.functions->end()) {
            throw ElaborationError("unknown function '" + node.callee + "'",
                                   expr.location);
          }
          std::vector<std::int64_t> args;
          args.reserve(node.args.size());
          for (const ExprPtr& arg : node.args) {
            args.push_back(eval(*arg, scope));
          }
          return call_function(*it->second, std::move(args), scope,
                               expr.location);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          const std::int64_t lhs = eval(*node.lhs, scope);
          // `and`/`or` are not short-circuit in VHDL for plain boolean, but
          // evaluation has no side effects here, so order is immaterial.
          const std::int64_t rhs = eval(*node.rhs, scope);
          switch (node.op) {
            case BinaryOp::kAdd:
              return lhs + rhs;
            case BinaryOp::kSub:
              return lhs - rhs;
            case BinaryOp::kMul:
              return lhs * rhs;
            case BinaryOp::kDiv:
              if (rhs == 0) {
                throw ElaborationError("division by zero", expr.location);
              }
              return lhs / rhs;
            case BinaryOp::kEq:
              return lhs == rhs ? 1 : 0;
            case BinaryOp::kNeq:
              return lhs != rhs ? 1 : 0;
            case BinaryOp::kLt:
              return lhs < rhs ? 1 : 0;
            case BinaryOp::kLe:
              return lhs <= rhs ? 1 : 0;
            case BinaryOp::kGt:
              return lhs > rhs ? 1 : 0;
            case BinaryOp::kGe:
              return lhs >= rhs ? 1 : 0;
            case BinaryOp::kAnd:
              return (lhs != 0 && rhs != 0) ? 1 : 0;
            case BinaryOp::kOr:
              return (lhs != 0 || rhs != 0) ? 1 : 0;
          }
          throw ElaborationError("corrupt binary op", expr.location);
        } else {  // UnaryExpr
          const std::int64_t operand = eval(*node.operand, scope);
          return node.op == UnaryOp::kNeg ? -operand : (operand == 0 ? 1 : 0);
        }
      },
      expr.node);
}

// --------------------------------------------------------------------------
// Function interpretation (pure combinational helpers, paper 2.6)
// --------------------------------------------------------------------------

thread_local unsigned t_call_depth = 0;

std::optional<std::int64_t> exec_function_stmts(
    const std::vector<StmtPtr>& stmts, const EvalScope& scope,
    std::map<std::string, std::int64_t>& variables) {
  for (const StmtPtr& stmt : stmts) {
    if (const auto* ret = std::get_if<ReturnStmt>(&stmt->node)) {
      return eval(*ret->value, scope);
    }
    if (const auto* assign = std::get_if<VariableAssignStmt>(&stmt->node)) {
      const auto it = variables.find(assign->target);
      if (it == variables.end()) {
        throw ElaborationError(
            "function: unknown variable '" + assign->target + "'",
            stmt->location);
      }
      it->second = eval(*assign->value, scope);
      continue;
    }
    if (const auto* ifstmt = std::get_if<IfStmt>(&stmt->node)) {
      bool taken = false;
      for (const IfStmt::Arm& arm : ifstmt->arms) {
        if (eval(*arm.condition, scope) != 0) {
          if (const auto result = exec_function_stmts(arm.body, scope, variables)) {
            return result;
          }
          taken = true;
          break;
        }
      }
      if (!taken) {
        if (const auto result =
                exec_function_stmts(ifstmt->else_body, scope, variables)) {
          return result;
        }
      }
      continue;
    }
    if (std::holds_alternative<NullStmt>(stmt->node)) {
      continue;
    }
    throw ElaborationError(
        "function bodies may only contain variable assignments, if, null, "
        "and return",
        stmt->location);
  }
  return std::nullopt;
}

std::int64_t call_function(const FunctionDecl& function,
                           std::vector<std::int64_t> args,
                           const EvalScope& outer, common::SourceLocation loc) {
  if (args.size() != function.params.size()) {
    throw ElaborationError("function '" + function.name + "' expects " +
                               std::to_string(function.params.size()) +
                               " arguments, got " + std::to_string(args.size()),
                           loc);
  }
  // RAII so the counter unwinds correctly when errors propagate through
  // nested calls.
  struct DepthGuard {
    DepthGuard() { ++t_call_depth; }
    ~DepthGuard() { --t_call_depth; }
  } depth_guard;
  if (t_call_depth > 256) {
    throw ElaborationError("function call depth limit exceeded (recursion in '" +
                               function.name + "'?)",
                           loc);
  }
  std::map<std::string, std::int64_t> frame;
  for (std::size_t i = 0; i < args.size(); ++i) {
    frame[function.params[i].name] = args[i];
  }
  EvalScope scope;
  scope.variables = &frame;
  scope.constants = outer.constants;
  scope.enum_types = outer.enum_types;
  scope.functions = outer.functions;  // functions may call functions
  for (const VariableDecl& decl : function.variables) {
    for (const std::string& name : decl.names) {
      frame[name] = decl.init ? eval(*decl.init, scope) : 0;
    }
  }
  const auto result = exec_function_stmts(function.body, scope, frame);
  if (!result.has_value()) {
    throw ElaborationError("function '" + function.name +
                               "' fell off the end without returning",
                           function.location);
  }
  return *result;
}

// --------------------------------------------------------------------------
// Interpreter
// --------------------------------------------------------------------------

EvalScope process_scope(ProcessEnv& env) {
  EvalScope scope;
  scope.variables = &env.variables;
  scope.signals = &env.signals;
  scope.constants = &env.constants;
  scope.enum_types = env.enum_types;
  scope.functions = &env.functions;
  return scope;
}

SimSignal* resolve_signal(ProcessEnv& env, const std::string& name,
                          common::SourceLocation loc) {
  const auto it = env.signals.find(name);
  if (it == env.signals.end()) {
    throw ElaborationError("process '" + env.name + "': unknown signal '" + name + "'",
                           loc);
  }
  return it->second;
}

/// Signals named in an expression (the implicit sensitivity of `wait until`).
void collect_signals(const Expr& expr, ProcessEnv& env,
                     std::vector<kernel::SignalBase*>& out) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, NameRef>) {
          const auto it = env.signals.find(node.name);
          if (it != env.signals.end()) {
            out.push_back(it->second);
          }
        } else if constexpr (std::is_same_v<T, AttributeRef>) {
          if (node.argument) {
            collect_signals(*node.argument, env, out);
          }
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          collect_signals(*node.lhs, env, out);
          collect_signals(*node.rhs, env, out);
        } else if constexpr (std::is_same_v<T, CallExpr>) {
          for (const ExprPtr& arg : node.args) {
            collect_signals(*arg, env, out);
          }
        } else if constexpr (std::is_same_v<T, UnaryExpr>) {
          collect_signals(*node.operand, env, out);
        }
      },
      expr.node);
}

kernel::Task exec_stmts(ProcessEnv& env, const std::vector<StmtPtr>& stmts) {
  for (const StmtPtr& stmt : stmts) {
    if (std::holds_alternative<WaitStmt>(stmt->node)) {
      const WaitStmt& wait = std::get<WaitStmt>(stmt->node);
      std::vector<kernel::SignalBase*> sensitivity;
      for (const std::string& name : wait.on_signals) {
        sensitivity.push_back(resolve_signal(env, name, stmt->location));
      }
      if (wait.until && sensitivity.empty()) {
        collect_signals(*wait.until, env, sensitivity);
        if (sensitivity.empty()) {
          throw ElaborationError(
              "process '" + env.name + "': wait-until condition mentions no signal",
              stmt->location);
        }
      }
      if (wait.for_time) {
        const std::int64_t fs = eval(*wait.for_time, process_scope(env));
        co_await kernel::wait_for_fs(static_cast<std::uint64_t>(fs));
      } else if (wait.until) {
        const Expr* condition = wait.until.get();
        co_await kernel::wait_until(std::move(sensitivity), [&env, condition] {
          return eval(*condition, process_scope(env)) != 0;
        });
      } else {
        co_await kernel::wait_on(std::move(sensitivity));
      }
    } else if (std::holds_alternative<SignalAssignStmt>(stmt->node)) {
      const SignalAssignStmt& assign = std::get<SignalAssignStmt>(stmt->node);
      const auto it = env.drivers.find(assign.target);
      if (it == env.drivers.end()) {
        throw ElaborationError(
            "process '" + env.name + "': no driver for '" + assign.target + "'",
            stmt->location);
      }
      const std::int64_t value = eval(*assign.value, process_scope(env));
      if (assign.after) {
        const std::int64_t fs = eval(*assign.after, process_scope(env));
        it->second.first->drive_after(it->second.second, value,
                                      static_cast<std::uint64_t>(fs));
      } else {
        it->second.first->drive(it->second.second, value);
      }
    } else if (std::holds_alternative<VariableAssignStmt>(stmt->node)) {
      const VariableAssignStmt& assign = std::get<VariableAssignStmt>(stmt->node);
      const auto it = env.variables.find(assign.target);
      if (it == env.variables.end()) {
        throw ElaborationError(
            "process '" + env.name + "': unknown variable '" + assign.target + "'",
            stmt->location);
      }
      it->second = eval(*assign.value, process_scope(env));
    } else if (std::holds_alternative<IfStmt>(stmt->node)) {
      const IfStmt& ifstmt = std::get<IfStmt>(stmt->node);
      bool taken = false;
      for (const IfStmt::Arm& arm : ifstmt.arms) {
        if (eval(*arm.condition, process_scope(env)) != 0) {
          co_await exec_stmts(env, arm.body);
          taken = true;
          break;
        }
      }
      if (!taken) {
        co_await exec_stmts(env, ifstmt.else_body);
      }
    }
    else if (std::holds_alternative<ReturnStmt>(stmt->node)) {
      throw ElaborationError(
          "process '" + env.name + "': return outside a function",
          stmt->location);
    }
    // NullStmt: nothing.
  }
}

bool contains_wait(const std::vector<StmtPtr>& stmts) {
  for (const StmtPtr& stmt : stmts) {
    if (std::holds_alternative<WaitStmt>(stmt->node)) {
      return true;
    }
    if (const IfStmt* ifstmt = std::get_if<IfStmt>(&stmt->node)) {
      for (const IfStmt::Arm& arm : ifstmt->arms) {
        if (contains_wait(arm.body)) {
          return true;
        }
      }
      if (contains_wait(ifstmt->else_body)) {
        return true;
      }
    }
  }
  return false;
}

kernel::Process run_process(ProcessEnv* env) {
  const bool has_sensitivity = !env->ast->sensitivity.empty();
  std::vector<kernel::SignalBase*> sensitivity;
  for (const std::string& name : env->ast->sensitivity) {
    sensitivity.push_back(resolve_signal(*env, name, env->ast->location));
  }
  const bool suspends = has_sensitivity || contains_wait(env->ast->body);
  for (;;) {
    co_await exec_stmts(*env, env->ast->body);
    if (has_sensitivity) {
      co_await kernel::wait_on(sensitivity);
    } else if (!suspends) {
      break;  // defensive: the subset checker rejects such processes
    }
  }
}

}  // namespace

// --------------------------------------------------------------------------
// Elaboration
// --------------------------------------------------------------------------

class Elaborator {
 public:
  Elaborator(ElaboratedModel& model, common::DiagnosticBag& diags)
      : model_(model), diags_(diags) {}

  bool run(const std::string& top_entity) {
    register_builtin_types();
    for (const Architecture& arch : model_.file_.architectures) {
      for (const TypeDecl& type : arch.types) {
        register_enum(type);
      }
    }
    const Entity* top = model_.file_.find_entity(top_entity);
    if (top == nullptr) {
      diags_.error("top entity '" + top_entity + "' not found");
      return false;
    }
    instantiate(*top, {}, {}, "");
    return !diags_.has_errors();
  }

 private:
  void register_builtin_types() {
    model_.enum_types_["boolean"] = EnumType{"boolean", {"false", "true"}};
    model_.enum_types_["phase"] =
        EnumType{"phase", {"ra", "rb", "cm", "wa", "wb", "cr"}};
    // Implicit standard package: the paper's value constants and the enum
    // literals of all builtin types.
    global_constants_["disc"] = rtl::RtValue::kDiscEncoding;
    global_constants_["illegal"] = rtl::RtValue::kIllegalEncoding;
    for (const auto& [name, type] : model_.enum_types_) {
      for (std::size_t i = 0; i < type.literals.size(); ++i) {
        global_constants_[type.literals[i]] = static_cast<std::int64_t>(i);
      }
    }
  }

  void register_enum(const TypeDecl& type) {
    if (model_.enum_types_.contains(type.name)) {
      // Re-declaration across architectures (the paper repeats `type Phase`)
      // is accepted when identical.
      if (model_.enum_types_[type.name].literals != type.literals) {
        diags_.error("conflicting redeclaration of type '" + type.name + "'",
                     type.location);
      }
      return;
    }
    model_.enum_types_[type.name] = EnumType{type.name, type.literals};
    for (std::size_t i = 0; i < type.literals.size(); ++i) {
      global_constants_[type.literals[i]] = static_cast<std::int64_t>(i);
    }
  }

  std::int64_t type_default(const SubtypeIndication& subtype) const {
    // The subset's defaulting rule: 0 for every type (enum ordinal 0,
    // integer 0). Sources that care use explicit defaults, as the paper does.
    (void)subtype;
    return 0;
  }

  std::int64_t static_eval(const Expr& expr,
                           const std::map<std::string, std::int64_t>& constants,
                           const std::map<std::string, const FunctionDecl*>*
                               functions = nullptr) {
    EvalScope scope;
    scope.constants = &constants;
    scope.enum_types = &model_.enum_types_;
    scope.functions = functions;
    return eval(expr, scope);
  }

  struct InstanceScope {
    std::map<std::string, SimSignal*> signals;
    std::map<std::string, std::int64_t> constants;
    std::map<std::string, std::int64_t> port_defaults;  // formal -> default value
    std::map<std::string, std::int64_t> signal_inits;   // name -> declared init
    std::map<std::string, const FunctionDecl*> functions;
  };

  void instantiate(const Entity& entity,
                   const std::map<std::string, SimSignal*>& port_actuals,
                   const std::map<std::string, std::int64_t>& generic_values,
                   const std::string& prefix) {
    const Architecture* arch = model_.file_.find_architecture_of(entity.name);
    if (arch == nullptr) {
      diags_.error("entity '" + entity.name + "' has no architecture",
                   entity.location);
      return;
    }

    InstanceScope scope;
    scope.constants = global_constants_;
    for (const FunctionDecl& function : arch->functions) {
      scope.functions[function.name] = &function;
    }

    // Generics.
    for (const GenericDecl& generic : entity.generics) {
      const auto it = generic_values.find(generic.name);
      if (it != generic_values.end()) {
        scope.constants[generic.name] = it->second;
      } else if (generic.init) {
        scope.constants[generic.name] = static_eval(*generic.init, scope.constants);
      } else {
        diags_.error("generic '" + generic.name + "' of '" + entity.name +
                         "' has no value",
                     generic.location);
        scope.constants[generic.name] = 0;
      }
    }

    // Ports: bind actuals, or create a signal for unbound (top-level) ports.
    for (const PortDecl& port : entity.ports) {
      const std::int64_t default_value =
          port.init ? static_eval(*port.init, scope.constants)
                    : type_default(port.subtype);
      scope.port_defaults[port.name] = default_value;
      const auto it = port_actuals.find(port.name);
      if (it != port_actuals.end()) {
        scope.signals[port.name] = it->second;
      } else {
        SimSignal& signal = make_signal(prefix + port.name, default_value,
                                        port.subtype);
        scope.signals[port.name] = &signal;
        scope.signal_inits[port.name] = default_value;
      }
    }

    // Architecture constants (may call the architecture's own functions).
    for (const ConstantDecl& constant : arch->constants) {
      scope.constants[constant.name] =
          static_eval(*constant.value, scope.constants, &scope.functions);
    }

    // Architecture signals.
    for (const SignalDecl& decl : arch->signals) {
      const std::int64_t init = decl.init
                                    ? static_eval(*decl.init, scope.constants)
                                    : type_default(decl.subtype);
      for (const std::string& name : decl.names) {
        SimSignal& signal = make_signal(prefix + name, init, decl.subtype);
        scope.signals[name] = &signal;
        scope.signal_inits[name] = init;
      }
    }

    // Child instances.
    for (const ComponentInst& inst : arch->instances) {
      const Entity* child = model_.file_.find_entity(inst.unit);
      if (child == nullptr) {
        diags_.error("instantiation '" + inst.label + "': unknown entity '" +
                         inst.unit + "'",
                     inst.location);
        continue;
      }
      std::map<std::string, std::int64_t> child_generics;
      for (std::size_t i = 0;
           i < inst.generic_map.size() && i < child->generics.size(); ++i) {
        child_generics[child->generics[i].name] =
            static_eval(*inst.generic_map[i], scope.constants);
      }
      std::map<std::string, SimSignal*> child_ports;
      if (inst.port_map.size() != child->ports.size()) {
        diags_.error("instantiation '" + inst.label + "': port count mismatch",
                     inst.location);
        continue;
      }
      bool ok = true;
      for (std::size_t i = 0; i < inst.port_map.size(); ++i) {
        const auto sig_it = scope.signals.find(inst.port_map[i]);
        if (sig_it == scope.signals.end()) {
          diags_.error("instantiation '" + inst.label + "': unknown actual '" +
                           inst.port_map[i] + "'",
                       inst.location);
          ok = false;
          break;
        }
        child_ports[child->ports[i].name] = sig_it->second;
      }
      if (ok) {
        instantiate(*child, child_ports, child_generics, prefix + inst.label + ".");
      }
    }

    // Processes.
    for (std::size_t i = 0; i < arch->processes.size(); ++i) {
      const ProcessStmt& process = arch->processes[i];
      spawn_process(process, entity, scope,
                    prefix + (process.label.empty()
                                  ? "process" + std::to_string(i)
                                  : process.label));
    }
  }

  void spawn_process(const ProcessStmt& process, const Entity& entity,
                     const InstanceScope& scope, const std::string& name) {
    auto env = std::make_unique<ProcessEnv>();
    env->name = name;
    env->ast = &process;
    env->scheduler = model_.scheduler_.get();
    env->enum_types = &model_.enum_types_;
    env->functions = scope.functions;
    env->signals = scope.signals;
    env->constants = scope.constants;
    for (const VariableDecl& decl : process.variables) {
      for (const std::string& var : decl.names) {
        env->variables[var] =
            decl.init ? static_eval(*decl.init, scope.constants)
                      : type_default(decl.subtype);
      }
    }
    // One driver per signal this process assigns; initial contribution is
    // the port default (for formals) or the signal's declared initial.
    std::set<std::string> targets;
    collect_assign_targets(process.body, targets);
    for (const std::string& target : targets) {
      const auto sig_it = scope.signals.find(target);
      if (sig_it == scope.signals.end()) {
        diags_.error("process '" + name + "' assigns unknown signal '" + target + "'",
                     process.location);
        continue;
      }
      std::int64_t init = 0;
      if (const auto def_it = scope.port_defaults.find(target);
          def_it != scope.port_defaults.end() &&
          entity.find_port(target) != nullptr) {
        init = def_it->second;
      } else if (const auto init_it = scope.signal_inits.find(target);
                 init_it != scope.signal_inits.end()) {
        init = init_it->second;
      }
      env->drivers[target] = {sig_it->second, sig_it->second->add_driver(init)};
    }
    model_.scheduler_->spawn(name, run_process(env.get()));
    model_.envs_.push_back(std::move(env));
  }

  static void collect_assign_targets(const std::vector<StmtPtr>& stmts,
                                     std::set<std::string>& targets) {
    for (const StmtPtr& stmt : stmts) {
      if (const auto* assign = std::get_if<SignalAssignStmt>(&stmt->node)) {
        targets.insert(assign->target);
      } else if (const auto* ifstmt = std::get_if<IfStmt>(&stmt->node)) {
        for (const IfStmt::Arm& arm : ifstmt->arms) {
          collect_assign_targets(arm.body, targets);
        }
        collect_assign_targets(ifstmt->else_body, targets);
      }
    }
  }

  SimSignal& make_signal(const std::string& name, std::int64_t init,
                         const SubtypeIndication& subtype) {
    SimSignal::Resolver resolver;
    if (subtype.resolved) {
      resolver = resolve_inband;
    }
    SimSignal& signal = model_.scheduler_->make_signal<std::int64_t>(
        name, init, std::move(resolver));
    model_.signals_[name] = &signal;
    model_.signal_types_[name] = subtype.type_name;
    return signal;
  }

  ElaboratedModel& model_;
  common::DiagnosticBag& diags_;
  std::map<std::string, std::int64_t> global_constants_;
};

// --------------------------------------------------------------------------
// ElaboratedModel
// --------------------------------------------------------------------------

ElaboratedModel::ElaboratedModel()
    : scheduler_(std::make_unique<kernel::Scheduler>()) {}

ElaboratedModel::~ElaboratedModel() {
  // Interpreter frames reference envs_ and file_; destroy them first.
  scheduler_->shutdown();
}

std::uint64_t ElaboratedModel::run(std::uint64_t max_cycles) {
  return scheduler_->run(max_cycles);
}

SimSignal* ElaboratedModel::find_signal(const std::string& name) {
  const auto it = signals_.find(name);
  return it == signals_.end() ? nullptr : it->second;
}

std::int64_t ElaboratedModel::read(const std::string& name) const {
  const auto it = signals_.find(name);
  if (it == signals_.end()) {
    throw std::invalid_argument("no signal named '" + name + "'");
  }
  return it->second->read();
}

std::string ElaboratedModel::render(const std::string& name) const {
  const std::int64_t value = read(name);
  const auto type_it = signal_types_.find(name);
  if (type_it != signal_types_.end()) {
    const auto enum_it = enum_types_.find(type_it->second);
    if (enum_it != enum_types_.end()) {
      const auto& literals = enum_it->second.literals;
      if (value >= 0 && value < static_cast<std::int64_t>(literals.size())) {
        return literals[static_cast<std::size_t>(value)];
      }
      return "<out-of-range " + std::to_string(value) + ">";
    }
    if (type_it->second == "integer" || type_it->second == "natural") {
      return rtl::to_string(rtl::RtValue::from_inband(value));
    }
  }
  return std::to_string(value);
}

void ElaboratedModel::set_value(const std::string& name, std::int64_t value) {
  const auto it = signals_.find(name);
  if (it == signals_.end()) {
    throw std::invalid_argument("no signal named '" + name + "'");
  }
  const auto driver_it = testbench_drivers_.find(name);
  kernel::DriverId driver = 0;
  if (driver_it == testbench_drivers_.end()) {
    driver = it->second->add_driver(it->second->read());
    testbench_drivers_[name] = driver;
  } else {
    driver = driver_it->second;
  }
  it->second->drive(driver, value);
}

std::size_t ElaboratedModel::process_count() const {
  return envs_.size();
}

std::unique_ptr<ElaboratedModel> elaborate(DesignFile file,
                                           const std::string& top_entity,
                                           common::DiagnosticBag& diags) {
  auto model = std::make_unique<ElaboratedModel>();
  model->file_ = std::move(file);
  Elaborator elaborator(*model, diags);
  if (!elaborator.run(top_entity)) {
    return nullptr;
  }
  return model;
}

std::unique_ptr<ElaboratedModel> load_model(std::string_view source,
                                            const std::string& top_entity,
                                            common::DiagnosticBag& diags) {
  DesignFile file;
  try {
    file = parse(source);
  } catch (const std::runtime_error& error) {
    diags.error(error.what());
    return nullptr;
  }
  if (!check_subset(file, diags)) {
    return nullptr;
  }
  return elaborate(std::move(file), top_entity, diags);
}

}  // namespace ctrtl::vhdl
