#pragma once

#include "common/diagnostics.h"
#include "vhdl/ast.h"

namespace ctrtl::vhdl {

/// Checks that a design file stays inside the paper's clock-free subset:
///
///  - no physical time: no `after` clauses, no `wait for`;
///  - no clock signals (any signal named like a clock is an error — the
///    subset models timing purely with control-step phases);
///  - types restricted to integer/natural/boolean and declared enumerations;
///  - `resolved` only on integer/natural (the builtin section 2.3 resolver);
///  - every process either has a sensitivity list or contains a wait
///    statement (it must be able to suspend), but not both (VHDL rule);
///  - component instantiations reference declared entities with matching
///    generic/port map arity.
///
/// All violations are reported into `diags`; returns !has_errors.
bool check_subset(const DesignFile& file, common::DiagnosticBag& diags);

}  // namespace ctrtl::vhdl
