#include "vhdl/parser.h"

#include <set>

#include "vhdl/lexer.h"

namespace ctrtl::vhdl {

ParseError::ParseError(const std::string& message, common::SourceLocation location)
    : std::runtime_error(message + " at " + common::to_string(location)),
      location_(location) {}

namespace {

const std::set<std::string> kKeywords = {
    "entity", "is",      "generic", "port",    "in",     "out",   "inout",
    "end",    "architecture", "of", "begin",   "process", "wait", "until",
    "on",     "for",     "if",      "then",    "elsif",  "else",  "signal",
    "variable", "constant", "type", "map",     "null",   "not",   "and",
    "or",     "after",   "resolved", "function", "return"};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  DesignFile parse_file() {
    DesignFile file;
    while (!at(TokenKind::kEndOfFile)) {
      if (at_word("entity")) {
        file.entities.push_back(parse_entity());
      } else if (at_word("architecture")) {
        file.architectures.push_back(parse_architecture());
      } else {
        fail("expected 'entity' or 'architecture'");
      }
    }
    return file;
  }

 private:
  // --- token plumbing --------------------------------------------------------

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t index = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[index];
  }
  [[nodiscard]] bool at(TokenKind kind) const { return peek().is(kind); }
  [[nodiscard]] bool at_word(const std::string& word) const {
    return peek().is_word(word);
  }

  Token advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  Token expect(TokenKind kind, const std::string& context) {
    if (!at(kind)) {
      fail("expected " + to_string(kind) + " " + context + ", found '" +
           peek().text + "'");
    }
    return advance();
  }

  void expect_word(const std::string& word) {
    if (!at_word(word)) {
      fail("expected '" + word + "', found '" + peek().text + "'");
    }
    advance();
  }

  std::string expect_identifier(const std::string& context) {
    const Token token = expect(TokenKind::kIdentifier, context);
    if (kKeywords.contains(token.text)) {
      fail("keyword '" + token.text + "' used as " + context);
    }
    return token.text;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, peek().location);
  }

  // --- design units ----------------------------------------------------------

  Entity parse_entity() {
    Entity entity;
    entity.location = peek().location;
    expect_word("entity");
    entity.name = expect_identifier("entity name");
    expect_word("is");
    if (at_word("generic")) {
      advance();
      expect(TokenKind::kLParen, "after 'generic'");
      parse_interface_list(entity.generics);
      expect(TokenKind::kRParen, "closing generic clause");
      expect(TokenKind::kSemicolon, "after generic clause");
    }
    if (at_word("port")) {
      advance();
      expect(TokenKind::kLParen, "after 'port'");
      parse_port_list(entity.ports);
      expect(TokenKind::kRParen, "closing port clause");
      expect(TokenKind::kSemicolon, "after port clause");
    }
    expect_word("end");
    if (at_word("entity")) {
      advance();
    }
    if (at(TokenKind::kIdentifier)) {
      advance();  // optional repeated name
    }
    expect(TokenKind::kSemicolon, "after entity declaration");
    return entity;
  }

  void parse_interface_list(std::vector<GenericDecl>& generics) {
    for (;;) {
      std::vector<std::string> names;
      names.push_back(expect_identifier("generic name"));
      while (at(TokenKind::kComma)) {
        advance();
        names.push_back(expect_identifier("generic name"));
      }
      expect(TokenKind::kColon, "in generic declaration");
      const SubtypeIndication subtype = parse_subtype();
      ExprPtr init;
      if (at(TokenKind::kAssign)) {
        advance();
        init = parse_expr();
      }
      for (std::size_t i = 0; i < names.size(); ++i) {
        GenericDecl decl;
        decl.name = names[i];
        decl.subtype = subtype;
        decl.init = init && i + 1 == names.size() ? std::move(init) : clone(init);
        decl.location = peek().location;
        generics.push_back(std::move(decl));
      }
      if (!at(TokenKind::kSemicolon)) {
        break;
      }
      advance();
    }
  }

  void parse_port_list(std::vector<PortDecl>& ports) {
    for (;;) {
      std::vector<std::string> names;
      names.push_back(expect_identifier("port name"));
      while (at(TokenKind::kComma)) {
        advance();
        names.push_back(expect_identifier("port name"));
      }
      expect(TokenKind::kColon, "in port declaration");
      PortMode mode = PortMode::kIn;
      if (at_word("in")) {
        advance();
        mode = PortMode::kIn;
      } else if (at_word("out")) {
        advance();
        mode = PortMode::kOut;
      } else if (at_word("inout")) {
        advance();
        mode = PortMode::kInout;
      }
      const SubtypeIndication subtype = parse_subtype();
      ExprPtr init;
      if (at(TokenKind::kAssign)) {
        advance();
        init = parse_expr();
      }
      for (std::size_t i = 0; i < names.size(); ++i) {
        PortDecl decl;
        decl.name = names[i];
        decl.mode = mode;
        decl.subtype = subtype;
        decl.init = init && i + 1 == names.size() ? std::move(init) : clone(init);
        decl.location = peek().location;
        ports.push_back(std::move(decl));
      }
      if (!at(TokenKind::kSemicolon)) {
        break;
      }
      advance();
    }
  }

  SubtypeIndication parse_subtype() {
    SubtypeIndication subtype;
    if (at_word("resolved")) {
      advance();
      subtype.resolved = true;
    }
    subtype.type_name = expect_identifier("type name");
    return subtype;
  }

  Architecture parse_architecture() {
    Architecture arch;
    arch.location = peek().location;
    expect_word("architecture");
    arch.name = expect_identifier("architecture name");
    expect_word("of");
    arch.entity = expect_identifier("entity name");
    expect_word("is");
    while (!at_word("begin")) {
      if (at_word("type")) {
        arch.types.push_back(parse_type_decl());
      } else if (at_word("constant")) {
        arch.constants.push_back(parse_constant_decl());
      } else if (at_word("signal")) {
        arch.signals.push_back(parse_signal_decl());
      } else if (at_word("function")) {
        arch.functions.push_back(parse_function_decl());
      } else {
        fail("expected declaration or 'begin' in architecture body");
      }
    }
    expect_word("begin");
    while (!at_word("end")) {
      parse_concurrent_statement(arch);
    }
    expect_word("end");
    if (at_word("architecture")) {
      advance();
    }
    if (at(TokenKind::kIdentifier)) {
      advance();
    }
    expect(TokenKind::kSemicolon, "after architecture body");
    return arch;
  }

  TypeDecl parse_type_decl() {
    TypeDecl decl;
    decl.location = peek().location;
    expect_word("type");
    decl.name = expect_identifier("type name");
    expect_word("is");
    expect(TokenKind::kLParen, "starting enumeration literal list");
    decl.literals.push_back(expect_identifier("enumeration literal"));
    while (at(TokenKind::kComma)) {
      advance();
      decl.literals.push_back(expect_identifier("enumeration literal"));
    }
    expect(TokenKind::kRParen, "closing enumeration literal list");
    expect(TokenKind::kSemicolon, "after type declaration");
    return decl;
  }

  ConstantDecl parse_constant_decl() {
    ConstantDecl decl;
    decl.location = peek().location;
    expect_word("constant");
    decl.name = expect_identifier("constant name");
    expect(TokenKind::kColon, "in constant declaration");
    decl.subtype = parse_subtype();
    expect(TokenKind::kAssign, "constant value");
    decl.value = parse_expr();
    expect(TokenKind::kSemicolon, "after constant declaration");
    return decl;
  }

  FunctionDecl parse_function_decl() {
    FunctionDecl decl;
    decl.location = peek().location;
    expect_word("function");
    decl.name = expect_identifier("function name");
    if (at(TokenKind::kLParen)) {
      advance();
      for (;;) {
        std::vector<std::string> names;
        names.push_back(expect_identifier("parameter name"));
        while (at(TokenKind::kComma)) {
          advance();
          names.push_back(expect_identifier("parameter name"));
        }
        expect(TokenKind::kColon, "in parameter declaration");
        const SubtypeIndication subtype = parse_subtype();
        for (std::string& name : names) {
          decl.params.push_back(FunctionDecl::Param{std::move(name), subtype});
        }
        if (!at(TokenKind::kSemicolon)) {
          break;
        }
        advance();
      }
      expect(TokenKind::kRParen, "closing parameter list");
    }
    expect_word("return");
    decl.result = parse_subtype();
    expect_word("is");
    while (at_word("variable")) {
      decl.variables.push_back(parse_variable_decl());
    }
    expect_word("begin");
    while (!at_word("end")) {
      decl.body.push_back(parse_statement());
    }
    expect_word("end");
    if (at_word("function")) {
      advance();
    }
    if (at(TokenKind::kIdentifier)) {
      advance();
    }
    expect(TokenKind::kSemicolon, "after function body");
    return decl;
  }

  SignalDecl parse_signal_decl() {
    SignalDecl decl;
    decl.location = peek().location;
    expect_word("signal");
    decl.names.push_back(expect_identifier("signal name"));
    while (at(TokenKind::kComma)) {
      advance();
      decl.names.push_back(expect_identifier("signal name"));
    }
    expect(TokenKind::kColon, "in signal declaration");
    decl.subtype = parse_subtype();
    if (at(TokenKind::kAssign)) {
      advance();
      decl.init = parse_expr();
    }
    expect(TokenKind::kSemicolon, "after signal declaration");
    return decl;
  }

  VariableDecl parse_variable_decl() {
    VariableDecl decl;
    decl.location = peek().location;
    expect_word("variable");
    decl.names.push_back(expect_identifier("variable name"));
    while (at(TokenKind::kComma)) {
      advance();
      decl.names.push_back(expect_identifier("variable name"));
    }
    expect(TokenKind::kColon, "in variable declaration");
    decl.subtype = parse_subtype();
    if (at(TokenKind::kAssign)) {
      advance();
      decl.init = parse_expr();
    }
    expect(TokenKind::kSemicolon, "after variable declaration");
    return decl;
  }

  void parse_concurrent_statement(Architecture& arch) {
    // Optional label.
    std::string label;
    if (at(TokenKind::kIdentifier) && !kKeywords.contains(peek().text) &&
        peek(1).is(TokenKind::kColon)) {
      label = advance().text;
      advance();  // ':'
    }
    if (at_word("process")) {
      arch.processes.push_back(parse_process(std::move(label)));
    } else {
      arch.instances.push_back(parse_instance(std::move(label)));
    }
  }

  ProcessStmt parse_process(std::string label) {
    ProcessStmt process;
    process.label = std::move(label);
    process.location = peek().location;
    expect_word("process");
    if (at(TokenKind::kLParen)) {
      advance();
      process.sensitivity.push_back(expect_identifier("sensitivity signal"));
      while (at(TokenKind::kComma)) {
        advance();
        process.sensitivity.push_back(expect_identifier("sensitivity signal"));
      }
      expect(TokenKind::kRParen, "closing sensitivity list");
    }
    while (at_word("variable")) {
      process.variables.push_back(parse_variable_decl());
    }
    expect_word("begin");
    while (!at_word("end")) {
      process.body.push_back(parse_statement());
    }
    expect_word("end");
    expect_word("process");
    if (at(TokenKind::kIdentifier)) {
      advance();
    }
    expect(TokenKind::kSemicolon, "after process");
    return process;
  }

  ComponentInst parse_instance(std::string label) {
    ComponentInst inst;
    inst.label = std::move(label);
    inst.location = peek().location;
    if (inst.label.empty()) {
      fail("component instantiation requires a label");
    }
    inst.unit = expect_identifier("entity name in instantiation");
    if (at_word("generic")) {
      advance();
      expect_word("map");
      expect(TokenKind::kLParen, "starting generic map");
      inst.generic_map.push_back(parse_expr());
      while (at(TokenKind::kComma)) {
        advance();
        inst.generic_map.push_back(parse_expr());
      }
      expect(TokenKind::kRParen, "closing generic map");
    }
    if (at_word("port")) {
      advance();
      expect_word("map");
      expect(TokenKind::kLParen, "starting port map");
      inst.port_map.push_back(expect_identifier("port map actual"));
      while (at(TokenKind::kComma)) {
        advance();
        inst.port_map.push_back(expect_identifier("port map actual"));
      }
      expect(TokenKind::kRParen, "closing port map");
    }
    expect(TokenKind::kSemicolon, "after instantiation");
    return inst;
  }

  // --- sequential statements ---------------------------------------------------

  StmtPtr parse_statement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->location = peek().location;
    if (at_word("wait")) {
      stmt->node = parse_wait();
      return stmt;
    }
    if (at_word("if")) {
      stmt->node = parse_if();
      return stmt;
    }
    if (at_word("null")) {
      advance();
      expect(TokenKind::kSemicolon, "after null statement");
      stmt->node = NullStmt{};
      return stmt;
    }
    if (at_word("return")) {
      advance();
      ReturnStmt ret;
      ret.value = parse_expr();
      expect(TokenKind::kSemicolon, "after return statement");
      stmt->node = std::move(ret);
      return stmt;
    }
    // Assignment: identifier (<= | :=) expr.
    const std::string target = expect_identifier("assignment target");
    if (at(TokenKind::kLessEqual)) {
      advance();
      SignalAssignStmt assign;
      assign.target = target;
      assign.value = parse_expr();
      if (at_word("after")) {
        advance();
        assign.after = parse_expr();
        if (at(TokenKind::kIdentifier)) {
          advance();  // time unit (ns, fs, ...); value semantics is fs
        }
      }
      expect(TokenKind::kSemicolon, "after signal assignment");
      stmt->node = std::move(assign);
      return stmt;
    }
    if (at(TokenKind::kAssign)) {
      advance();
      VariableAssignStmt assign;
      assign.target = target;
      assign.value = parse_expr();
      expect(TokenKind::kSemicolon, "after variable assignment");
      stmt->node = std::move(assign);
      return stmt;
    }
    fail("expected '<=' or ':=' after '" + target + "'");
  }

  WaitStmt parse_wait() {
    WaitStmt wait;
    expect_word("wait");
    if (at_word("on")) {
      advance();
      wait.on_signals.push_back(expect_identifier("signal name"));
      while (at(TokenKind::kComma)) {
        advance();
        wait.on_signals.push_back(expect_identifier("signal name"));
      }
    }
    if (at_word("until")) {
      advance();
      wait.until = parse_expr();
    }
    if (at_word("for")) {
      advance();
      wait.for_time = parse_expr();
      if (at(TokenKind::kIdentifier)) {
        advance();  // time unit
      }
    }
    expect(TokenKind::kSemicolon, "after wait statement");
    return wait;
  }

  IfStmt parse_if() {
    IfStmt stmt;
    expect_word("if");
    for (;;) {
      IfStmt::Arm arm;
      arm.condition = parse_expr();
      expect_word("then");
      while (!at_word("elsif") && !at_word("else") && !at_word("end")) {
        arm.body.push_back(parse_statement());
      }
      stmt.arms.push_back(std::move(arm));
      if (at_word("elsif")) {
        advance();
        continue;
      }
      break;
    }
    if (at_word("else")) {
      advance();
      while (!at_word("end")) {
        stmt.else_body.push_back(parse_statement());
      }
    }
    expect_word("end");
    expect_word("if");
    expect(TokenKind::kSemicolon, "after if statement");
    return stmt;
  }

  // --- expressions -------------------------------------------------------------

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (at_word("or")) {
      const common::SourceLocation loc = advance().location;
      lhs = make_binary(BinaryOp::kOr, std::move(lhs), parse_and(), loc);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_relation();
    while (at_word("and")) {
      const common::SourceLocation loc = advance().location;
      lhs = make_binary(BinaryOp::kAnd, std::move(lhs), parse_relation(), loc);
    }
    return lhs;
  }

  ExprPtr parse_relation() {
    ExprPtr lhs = parse_additive();
    const auto rel_op = [&]() -> std::optional<BinaryOp> {
      switch (peek().kind) {
        case TokenKind::kEqual:
          return BinaryOp::kEq;
        case TokenKind::kNotEqual:
          return BinaryOp::kNeq;
        case TokenKind::kLess:
          return BinaryOp::kLt;
        case TokenKind::kLessEqual:
          return BinaryOp::kLe;
        case TokenKind::kGreater:
          return BinaryOp::kGt;
        case TokenKind::kGreaterEqual:
          return BinaryOp::kGe;
        default:
          return std::nullopt;
      }
    }();
    if (rel_op.has_value()) {
      const common::SourceLocation loc = advance().location;
      lhs = make_binary(*rel_op, std::move(lhs), parse_additive(), loc);
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_term();
    for (;;) {
      if (at(TokenKind::kPlus)) {
        const common::SourceLocation loc = advance().location;
        lhs = make_binary(BinaryOp::kAdd, std::move(lhs), parse_term(), loc);
      } else if (at(TokenKind::kMinus)) {
        const common::SourceLocation loc = advance().location;
        lhs = make_binary(BinaryOp::kSub, std::move(lhs), parse_term(), loc);
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_term() {
    ExprPtr lhs = parse_factor();
    for (;;) {
      if (at(TokenKind::kStar)) {
        const common::SourceLocation loc = advance().location;
        lhs = make_binary(BinaryOp::kMul, std::move(lhs), parse_factor(), loc);
      } else if (at(TokenKind::kSlash)) {
        const common::SourceLocation loc = advance().location;
        lhs = make_binary(BinaryOp::kDiv, std::move(lhs), parse_factor(), loc);
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_factor() {
    if (at(TokenKind::kMinus)) {
      const common::SourceLocation loc = advance().location;
      auto expr = std::make_unique<Expr>();
      expr->location = loc;
      expr->node = UnaryExpr{UnaryOp::kNeg, parse_factor()};
      return expr;
    }
    if (at_word("not")) {
      const common::SourceLocation loc = advance().location;
      auto expr = std::make_unique<Expr>();
      expr->location = loc;
      expr->node = UnaryExpr{UnaryOp::kNot, parse_factor()};
      return expr;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    auto expr = std::make_unique<Expr>();
    expr->location = peek().location;
    if (at(TokenKind::kInteger)) {
      expr->node = IntLiteral{advance().value};
      return expr;
    }
    if (at(TokenKind::kLParen)) {
      advance();
      ExprPtr inner = parse_expr();
      expect(TokenKind::kRParen, "closing parenthesis");
      return inner;
    }
    if (at(TokenKind::kIdentifier)) {
      const std::string name = advance().text;
      if (at(TokenKind::kLParen)) {
        advance();
        CallExpr call;
        call.callee = name;
        call.args.push_back(parse_expr());
        while (at(TokenKind::kComma)) {
          advance();
          call.args.push_back(parse_expr());
        }
        expect(TokenKind::kRParen, "closing call argument list");
        expr->node = std::move(call);
        return expr;
      }
      if (at(TokenKind::kTick)) {
        advance();
        AttributeRef attr;
        attr.prefix = name;
        attr.attribute = expect_identifier("attribute name");
        if (at(TokenKind::kLParen)) {
          advance();
          attr.argument = parse_expr();
          expect(TokenKind::kRParen, "closing attribute argument");
        }
        expr->node = std::move(attr);
        return expr;
      }
      expr->node = NameRef{name};
      return expr;
    }
    fail("expected expression, found '" + peek().text + "'");
  }

  static ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs,
                             common::SourceLocation loc) {
    auto expr = std::make_unique<Expr>();
    expr->location = loc;
    expr->node = BinaryExpr{op, std::move(lhs), std::move(rhs)};
    return expr;
  }

  /// Deep copy used when one default expression applies to several names.
  static ExprPtr clone(const ExprPtr& expr) {
    if (!expr) {
      return nullptr;
    }
    auto copy = std::make_unique<Expr>();
    copy->location = expr->location;
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, IntLiteral> || std::is_same_v<T, NameRef>) {
            copy->node = node;
          } else if constexpr (std::is_same_v<T, AttributeRef>) {
            copy->node =
                AttributeRef{node.prefix, node.attribute, clone(node.argument)};
          } else if constexpr (std::is_same_v<T, BinaryExpr>) {
            copy->node = BinaryExpr{node.op, clone(node.lhs), clone(node.rhs)};
          } else if constexpr (std::is_same_v<T, CallExpr>) {
            CallExpr call;
            call.callee = node.callee;
            for (const ExprPtr& arg : node.args) {
              call.args.push_back(clone(arg));
            }
            copy->node = std::move(call);
          } else {
            copy->node = UnaryExpr{node.op, clone(node.operand)};
          }
        },
        expr->node);
    return copy;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

DesignFile parse(std::string_view source) {
  return Parser(lex(source)).parse_file();
}

}  // namespace ctrtl::vhdl
