#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "vhdl/token.h"

namespace ctrtl::vhdl {

/// Raised on malformed source (unknown character, bad literal).
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, common::SourceLocation location);
  [[nodiscard]] common::SourceLocation location() const { return location_; }

 private:
  common::SourceLocation location_;
};

/// Tokenizes VHDL subset source. Handles `--` comments, case-insensitive
/// identifiers (normalized to lower case), decimal integer literals (with
/// optional `_` separators), and the operator/punctuation set of the subset.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace ctrtl::vhdl
