#include "vhdl/emitter.h"

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "transfer/mapping.h"

namespace ctrtl::vhdl {

std::string standard_cells() {
  // The cell library of the paper (section 2): CONTROLLER, TRANS, REG and a
  // family of modules. REG carries an extra `init` generic so testbenches
  // can preload registers (the paper loads them from outside the shown
  // fragment); `started` guards the preload against the implicit process
  // loop. ADD/SUB/MUL extend the paper's operand discipline with an
  // explicit ILLEGAL-operand check so conflicts propagate exactly like the
  // C++ library's modules.
  return R"(
-- Standard cells of the clock-free RT subset (after Mutz, DATE'98).

entity controller is
  generic (cs_max: natural);
  port (cs: inout natural := 0;
        ph: inout phase := phase'high);
end controller;

architecture transfer of controller is
begin
  process (ph)
  begin
    if ph = phase'high then
      if cs < cs_max then
        cs <= cs + 1;
        ph <= phase'low;
      end if;
    else
      ph <= phase'succ(ph);
    end if;
  end process;
end transfer;

entity trans is
  generic (s: natural; p: phase);
  port (cs: in natural; ph: in phase;
        ins: in integer; outs: out integer := disc);
end trans;

architecture transfer of trans is
begin
  process
  begin
    wait until cs = s and ph = p;
    outs <= ins;
    wait until cs = s and ph = phase'succ(p);
    outs <= disc;
  end process;
end transfer;

entity reg is
  generic (init: integer := disc);
  port (ph: in phase;
        r_in: in resolved integer;
        r_out: out integer := disc);
end reg;

architecture transfer of reg is
begin
  process
    variable started: boolean := false;
  begin
    if not started then
      started := true;
      if init /= disc then
        r_out <= init;
      end if;
    end if;
    wait until ph = cr;
    if r_in /= disc then
      r_out <= r_in;
    end if;
  end process;
end transfer;

entity add is
  port (ph: in phase;
        m_in1, m_in2: in resolved integer;
        m_out: out integer := disc);
end add;

architecture transfer of add is
begin
  process
    variable m: integer := disc;
  begin
    wait until ph = cm;
    m_out <= m;
    if m /= illegal then
      if m_in1 = disc and m_in2 = disc then
        m := disc;
      elsif m_in1 = illegal or m_in2 = illegal then
        m := illegal;
      elsif m_in1 /= disc and m_in2 /= disc then
        m := m_in1 + m_in2;
      else
        m := illegal;
      end if;
    end if;
  end process;
end transfer;

entity sub is
  port (ph: in phase;
        m_in1, m_in2: in resolved integer;
        m_out: out integer := disc);
end sub;

architecture transfer of sub is
begin
  process
    variable m: integer := disc;
  begin
    wait until ph = cm;
    m_out <= m;
    if m /= illegal then
      if m_in1 = disc and m_in2 = disc then
        m := disc;
      elsif m_in1 = illegal or m_in2 = illegal then
        m := illegal;
      elsif m_in1 /= disc and m_in2 /= disc then
        m := m_in1 - m_in2;
      else
        m := illegal;
      end if;
    end if;
  end process;
end transfer;

entity mul is
  port (ph: in phase;
        m_in1, m_in2: in resolved integer;
        m_out: out integer := disc);
end mul;

-- Two-stage pipelined multiplier (the IKS chip's multiplier shape):
-- operands fetched in step s appear at the output in step s + 2.
architecture transfer of mul is
begin
  process
    variable m1: integer := disc;
    variable m2: integer := disc;
    variable poisoned: boolean := false;
  begin
    wait until ph = cm;
    m_out <= m2;
    m2 := m1;
    if poisoned then
      m1 := illegal;
    elsif m_in1 = disc and m_in2 = disc then
      m1 := disc;
    elsif m_in1 = illegal or m_in2 = illegal then
      m1 := illegal;
      poisoned := true;
    elsif m_in1 /= disc and m_in2 /= disc then
      m1 := m_in1 * m_in2;
    else
      m1 := illegal;
      poisoned := true;
    end if;
  end process;
end transfer;

entity cp is
  port (ph: in phase;
        m_in1: in resolved integer;
        m_out: out integer := disc);
end cp;

-- Zero-latency copy: the paper's direct-link helper module.
architecture transfer of cp is
begin
  process
  begin
    wait until ph = cm;
    m_out <= m_in1;
  end process;
end transfer;
)";
}

std::string vhdl_name(const std::string& resource_name) {
  std::string out;
  for (const char c : resource_name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      out.push_back('_');
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front())) != 0) {
    out.insert(out.begin(), 'n');
  }
  return out;
}

namespace {

const char* cell_for(const transfer::ModuleDecl& module) {
  const auto require = [&](unsigned latency, unsigned frac_bits) {
    if (module.latency != latency || module.frac_bits != frac_bits) {
      throw std::invalid_argument(
          "emit_vhdl: module '" + module.name + "' (" + to_string(module.kind) +
          ") must have latency " + std::to_string(latency) + " and frac_bits " +
          std::to_string(frac_bits) + " to match the emitted cell");
    }
  };
  switch (module.kind) {
    case transfer::ModuleKind::kAdd:
      require(1, 0);
      return "add";
    case transfer::ModuleKind::kSub:
      require(1, 0);
      return "sub";
    case transfer::ModuleKind::kMul:
      require(2, 0);
      return "mul";
    case transfer::ModuleKind::kCopy:
      require(0, 0);
      return "cp";
    default:
      throw std::invalid_argument(
          "emit_vhdl: module kind '" + to_string(module.kind) +
          "' is not expressible in the emitted cell library");
  }
}

}  // namespace

std::string emit_vhdl(const transfer::Design& design) {
  using transfer::Endpoint;

  std::ostringstream out;
  out << standard_cells();

  const std::string top = vhdl_name(design.name);
  out << "\nentity " << top << " is\nend " << top << ";\n\n";
  out << "architecture transfer of " << top << " is\n";
  out << "  -- timing signals (PH must start at Phase'High = cr, see the\n";
  out << "  -- CONTROLLER port defaults in the paper)\n";
  out << "  signal cs: natural := 0;\n  signal ph: phase := cr;\n";

  out << "  -- register ports\n";
  for (const transfer::RegisterDecl& reg : design.registers) {
    const std::string name = vhdl_name(reg.name);
    out << "  signal " << name << "_in: resolved integer;\n";
    out << "  signal " << name << "_out: integer;\n";
  }
  out << "  -- module ports\n";
  for (const transfer::ModuleDecl& module : design.modules) {
    cell_for(module);  // validate early
    const std::string name = vhdl_name(module.name);
    out << "  signal " << name << "_in1: resolved integer;\n";
    if (module.num_inputs() > 1) {
      out << "  signal " << name << "_in2: resolved integer;\n";
    }
    out << "  signal " << name << "_out: integer;\n";
  }
  out << "  -- buses\n";
  for (const transfer::BusDecl& bus : design.buses) {
    out << "  signal " << vhdl_name(bus.name) << ": resolved integer;\n";
  }
  if (!design.constants.empty()) {
    out << "  -- constant sources (undriven signals keep their initial value)\n";
    for (const transfer::ConstantDecl& constant : design.constants) {
      out << "  signal c_" << vhdl_name(constant.name) << ": integer := "
          << constant.value << ";\n";
    }
  }
  if (!design.inputs.empty()) {
    out << "  -- external inputs (testbench-driven)\n";
    for (const transfer::InputDecl& input : design.inputs) {
      out << "  signal i_" << vhdl_name(input.name) << ": integer := disc;\n";
    }
  }
  out << "begin\n";

  out << "  -- registers\n";
  for (const transfer::RegisterDecl& reg : design.registers) {
    const std::string name = vhdl_name(reg.name);
    out << "  " << name << "_proc: reg generic map ("
        << (reg.initial.has_value() ? *reg.initial : -1) << ") port map (ph, "
        << name << "_in, " << name << "_out);\n";
  }
  out << "  -- modules\n";
  for (const transfer::ModuleDecl& module : design.modules) {
    const std::string name = vhdl_name(module.name);
    out << "  " << name << "_proc: " << cell_for(module)
        << " port map (ph, " << name << "_in1, ";
    if (module.num_inputs() > 1) {
      out << name << "_in2, ";
    }
    out << name << "_out);\n";
  }

  const auto endpoint_text = [&](const Endpoint& endpoint) -> std::string {
    switch (endpoint.kind) {
      case Endpoint::Kind::kRegisterOut:
        return vhdl_name(endpoint.resource) + "_out";
      case Endpoint::Kind::kRegisterIn:
        return vhdl_name(endpoint.resource) + "_in";
      case Endpoint::Kind::kModuleOut:
        return vhdl_name(endpoint.resource) + "_out";
      case Endpoint::Kind::kModuleIn:
        return vhdl_name(endpoint.resource) + "_in" +
               std::to_string(endpoint.port + 1);
      case Endpoint::Kind::kBus:
        return vhdl_name(endpoint.resource);
      case Endpoint::Kind::kConstant:
        return "c_" + vhdl_name(endpoint.resource);
      case Endpoint::Kind::kInput:
        return "i_" + vhdl_name(endpoint.resource);
      case Endpoint::Kind::kModuleOp:
        throw std::invalid_argument(
            "emit_vhdl: op ports are not expressible in the emitted subset");
    }
    throw std::logic_error("emit_vhdl: corrupt endpoint");
  };

  out << "  -- transfers (one TRANS per tuple fragment, section 2.7)\n";
  std::size_t counter = 0;
  for (const transfer::TransInstance& instance :
       transfer::to_instances(design.transfers)) {
    out << "  t" << counter++ << ": trans generic map (" << instance.step << ", "
        << rtl::phase_name(instance.phase) << ") port map (cs, ph, "
        << endpoint_text(instance.source) << ", " << endpoint_text(instance.sink)
        << ");\n";
  }

  out << "  -- controller\n";
  out << "  control: controller generic map (" << design.cs_max
      << ") port map (cs, ph);\n";
  out << "end transfer;\n";
  return out.str();
}

}  // namespace ctrtl::vhdl
