#include "vhdl/subset_check.h"

#include <set>
#include <string>

namespace ctrtl::vhdl {

namespace {

const std::set<std::string> kBuiltinTypes = {"integer", "natural", "boolean"};

bool looks_like_clock(const std::string& name) {
  return name == "clk" || name == "clock" || name.starts_with("clk_") ||
         name.ends_with("_clk") || name.starts_with("clock_") ||
         name.ends_with("_clock");
}

class Checker {
 public:
  Checker(const DesignFile& file, common::DiagnosticBag& diags)
      : file_(file), diags_(diags) {}

  void run() {
    // Collect enum type names from every architecture (the subset's
    // implicit-package model: types are globally visible).
    for (const Architecture& arch : file_.architectures) {
      for (const TypeDecl& type : arch.types) {
        enum_types_.insert(type.name);
      }
    }
    enum_types_.insert("phase");  // builtin (implicit standard package)

    for (const Entity& entity : file_.entities) {
      check_entity(entity);
    }
    for (const Architecture& arch : file_.architectures) {
      check_architecture(arch);
    }
  }

 private:
  void check_subtype(const SubtypeIndication& subtype, const std::string& context,
                     common::SourceLocation loc) {
    const bool builtin = kBuiltinTypes.contains(subtype.type_name);
    const bool is_enum = enum_types_.contains(subtype.type_name);
    if (!builtin && !is_enum) {
      diags_.error(context + ": type '" + subtype.type_name +
                       "' outside the subset (integer, natural, boolean, or a "
                       "declared enumeration)",
                   loc);
    }
    if (subtype.resolved &&
        !(subtype.type_name == "integer" || subtype.type_name == "natural")) {
      diags_.error(context + ": 'resolved' applies only to integer/natural", loc);
    }
  }

  void check_clockish(const std::string& name, common::SourceLocation loc) {
    if (looks_like_clock(name)) {
      diags_.error("signal '" + name +
                       "' looks like a clock; the subset models timing with "
                       "control steps, not clock signals",
                   loc);
    }
  }

  void check_entity(const Entity& entity) {
    for (const GenericDecl& generic : entity.generics) {
      check_subtype(generic.subtype, "generic '" + generic.name + "'",
                    generic.location);
    }
    for (const PortDecl& port : entity.ports) {
      check_subtype(port.subtype, "port '" + port.name + "'", port.location);
      check_clockish(port.name, port.location);
    }
  }

  void check_architecture(const Architecture& arch) {
    if (file_.find_entity(arch.entity) == nullptr) {
      diags_.error("architecture '" + arch.name + "' of undeclared entity '" +
                       arch.entity + "'",
                   arch.location);
    }
    for (const ConstantDecl& constant : arch.constants) {
      check_subtype(constant.subtype, "constant '" + constant.name + "'",
                    constant.location);
    }
    for (const SignalDecl& decl : arch.signals) {
      check_subtype(decl.subtype, "signal declaration", decl.location);
      for (const std::string& name : decl.names) {
        check_clockish(name, decl.location);
      }
    }
    for (const FunctionDecl& function : arch.functions) {
      check_function(function);
    }
    for (const ProcessStmt& process : arch.processes) {
      check_process(process);
    }
    for (const ComponentInst& inst : arch.instances) {
      check_instance(inst);
    }
  }

  void check_function(const FunctionDecl& function) {
    check_subtype(function.result, "function '" + function.name + "' result",
                  function.location);
    for (const FunctionDecl::Param& param : function.params) {
      check_subtype(param.subtype, "parameter '" + param.name + "'",
                    function.location);
    }
    for (const VariableDecl& variable : function.variables) {
      check_subtype(variable.subtype, "variable declaration", variable.location);
    }
    // Functions are pure combinational helpers (paper 2.6): no waits, no
    // signal assignments, and at least one return.
    unsigned returns = 0;
    check_function_statements(function.body, function.name, returns);
    if (returns == 0) {
      diags_.error("function '" + function.name + "' never returns",
                   function.location);
    }
  }

  void check_function_statements(const std::vector<StmtPtr>& stmts,
                                 const std::string& name, unsigned& returns) {
    for (const StmtPtr& stmt : stmts) {
      std::visit(
          [&](const auto& node) {
            using T = std::decay_t<decltype(node)>;
            if constexpr (std::is_same_v<T, WaitStmt>) {
              diags_.error("function '" + name +
                               "': wait statements are not allowed in "
                               "combinational functions",
                           stmt->location);
            } else if constexpr (std::is_same_v<T, SignalAssignStmt>) {
              diags_.error("function '" + name +
                               "': signal assignment inside a function",
                           stmt->location);
            } else if constexpr (std::is_same_v<T, ReturnStmt>) {
              ++returns;
            } else if constexpr (std::is_same_v<T, IfStmt>) {
              for (const IfStmt::Arm& arm : node.arms) {
                check_function_statements(arm.body, name, returns);
              }
              check_function_statements(node.else_body, name, returns);
            }
          },
          stmt->node);
    }
  }

  void check_process(const ProcessStmt& process) {
    const std::string label =
        process.label.empty() ? "<anonymous>" : process.label;
    for (const VariableDecl& variable : process.variables) {
      check_subtype(variable.subtype, "variable declaration", variable.location);
    }
    unsigned waits = 0;
    check_statements(process.body, label, waits);
    if (!process.sensitivity.empty() && waits > 0) {
      diags_.error("process '" + label +
                       "' has both a sensitivity list and wait statements",
                   process.location);
    }
    if (process.sensitivity.empty() && waits == 0) {
      diags_.error("process '" + label +
                       "' can never suspend (no sensitivity list, no wait)",
                   process.location);
    }
  }

  void check_statements(const std::vector<StmtPtr>& stmts, const std::string& label,
                        unsigned& waits) {
    for (const StmtPtr& stmt : stmts) {
      std::visit(
          [&](const auto& node) {
            using T = std::decay_t<decltype(node)>;
            if constexpr (std::is_same_v<T, WaitStmt>) {
              ++waits;
              if (node.for_time) {
                diags_.error("process '" + label +
                                 "': 'wait for' uses physical time, which the "
                                 "clock-free subset forbids",
                             stmt->location);
              }
              if (!node.until && node.on_signals.empty() && !node.for_time) {
                diags_.error("process '" + label + "': bare 'wait' suspends forever",
                             stmt->location);
              }
            } else if constexpr (std::is_same_v<T, SignalAssignStmt>) {
              if (node.after) {
                diags_.error("process '" + label +
                                 "': 'after' clause uses physical delay, which "
                                 "the clock-free subset forbids (assignments "
                                 "take delta delay)",
                             stmt->location);
              }
            } else if constexpr (std::is_same_v<T, ReturnStmt>) {
              diags_.error("process '" + label +
                               "': return statements belong in functions",
                           stmt->location);
            } else if constexpr (std::is_same_v<T, IfStmt>) {
              for (const IfStmt::Arm& arm : node.arms) {
                check_statements(arm.body, label, waits);
              }
              check_statements(node.else_body, label, waits);
            }
          },
          stmt->node);
    }
  }

  void check_instance(const ComponentInst& inst) {
    const Entity* entity = file_.find_entity(inst.unit);
    if (entity == nullptr) {
      diags_.error("instantiation '" + inst.label + "' of undeclared entity '" +
                       inst.unit + "'",
                   inst.location);
      return;
    }
    if (file_.find_architecture_of(inst.unit) == nullptr) {
      diags_.error("entity '" + inst.unit + "' has no architecture", inst.location);
    }
    if (inst.generic_map.size() > entity->generics.size()) {
      diags_.error("instantiation '" + inst.label + "': too many generic actuals",
                   inst.location);
    }
    for (std::size_t i = inst.generic_map.size(); i < entity->generics.size(); ++i) {
      if (!entity->generics[i].init) {
        diags_.error("instantiation '" + inst.label + "': generic '" +
                         entity->generics[i].name + "' has no actual and no default",
                     inst.location);
      }
    }
    if (inst.port_map.size() != entity->ports.size()) {
      diags_.error("instantiation '" + inst.label + "': port map has " +
                       std::to_string(inst.port_map.size()) + " actuals, entity '" +
                       inst.unit + "' has " + std::to_string(entity->ports.size()) +
                       " ports",
                   inst.location);
    }
  }

  const DesignFile& file_;
  common::DiagnosticBag& diags_;
  std::set<std::string> enum_types_;
};

}  // namespace

bool check_subset(const DesignFile& file, common::DiagnosticBag& diags) {
  Checker(file, diags).run();
  return !diags.has_errors();
}

}  // namespace ctrtl::vhdl
