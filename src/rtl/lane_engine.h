#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/scheduler.h"
#include "rtl/batch_runner.h"
#include "rtl/model.h"
#include "transfer/design.h"
#include "transfer/module_sim.h"
#include "transfer/schedule.h"

namespace ctrtl::rtl {

/// Lane-parallel compiled execution of many instances of ONE design.
///
/// `CompiledEngine` (PR 3) proved the six-phase control steps are fully
/// static and lowered a single model into straight-line per-delta-cycle
/// tables. This engine takes the next step for batch workloads: all
/// instances of a batch share one immutable `transfer::StaticSchedule` and
/// one compiled action table (lowered exactly once), while the per-instance
/// mutable state — signal values, sink contribution arrays with
/// non-DISC/ILLEGAL counters, module pipelines, register latches, conflict
/// records, kernel counters — is laid out structure-of-arrays with one
/// *lane* per instance. Every fire/release/resolve/latch action then runs
/// as a tight inner loop over contiguous lanes (branch-light by design: the
/// DISC/ILLEGAL resolution is counter arithmetic, not a scan), instead of
/// re-walking the schedule once per instance.
///
/// The engine object holds only the immutable tables, so one instance can
/// be shared read-only by any number of threads: `run_block` keeps all
/// mutable lane state on the caller's stack. `BatchRunner` shards a batch
/// into fixed-size lane blocks across its `kernel::BatchEngine` worker pool
/// (`BatchRunOptions::engine = BatchEngineKind::kCompiledLanes`).
///
/// Equivalence contract (same as PR 3, per lane): final register values,
/// conflicts with the event kernel's exact `(step, phase)` pinning *and
/// order*, and the delta_cycles/events/updates/transactions counters are
/// identical to an event-kernel run of the same instance. Verified by
/// `verify::check_engine_equivalence` and the differential sweep in
/// tests/verify/engine_equivalence_test.cpp.
class LaneEngine {
 public:
  /// Per-instance external inputs: `(input name, value)` pairs applied in
  /// order before control step 1 (the `RtModel::set_input` protocol).
  /// A null provider means no instance sets any input.
  using InputProvider = BatchInputProvider;

  /// Lowers the shared tables from the pre-compiled design. The
  /// `CompiledDesign` (and the schedule inside it) is retained read-only
  /// for the engine's lifetime.
  explicit LaneEngine(std::shared_ptr<const transfer::CompiledDesign> compiled);

  LaneEngine(const LaneEngine&) = delete;
  LaneEngine& operator=(const LaneEngine&) = delete;

  /// Simulates instances `first_instance .. first_instance + lanes - 1` in
  /// SoA lockstep and returns their results indexed by lane (so slot `i`
  /// is instance `first_instance + i`). Thread-safe: `const`, all mutable
  /// state is local to the call. `max_cycles` has `RtModel::run` semantics
  /// applied to every lane; `max_delta_cycles` arms the per-lane watchdog
  /// (`RunOptions::max_delta_cycles` semantics) — a trip marks the affected
  /// lanes' reports kWatchdogTripped with the same diagnostic the other
  /// engines emit, while already-quiescent lanes stay kOk.
  [[nodiscard]] std::vector<InstanceResult> run_block(
      std::size_t first_instance, std::size_t lanes,
      const InputProvider& inputs,
      std::uint64_t max_cycles = kernel::Scheduler::kNoLimit,
      std::uint64_t max_delta_cycles = kernel::Scheduler::kNoLimit) const;

  /// Sizes of the shared lowered tables (diagnostics, tests, tools).
  /// Everything here is per-design, independent of the lane count.
  struct TableStats {
    std::size_t cycles = 0;          ///< planned delta cycles incl. trailing
    std::size_t signals = 0;         ///< distinct signals in the value table
    std::size_t resolved_sinks = 0;  ///< distinct transfer sink signals
    std::size_t drivers = 0;         ///< total sink contributions per lane
    std::size_t fire_actions = 0;
    std::size_t release_actions = 0;
    std::size_t update_entries = 0;
    std::size_t modules = 0;
    std::size_t registers = 0;
  };
  [[nodiscard]] TableStats table_stats() const;

  [[nodiscard]] const transfer::CompiledDesign& compiled() const {
    return *compiled_;
  }

 private:
  /// One transfer sink signal with its statically assigned drivers. The
  /// per-lane contribution values and resolution counters live in the
  /// block state; this holds only the shared layout.
  struct SinkSlot {
    std::uint32_t signal = 0;        ///< value-table index
    std::uint32_t contrib_base = 0;  ///< first row in the contribution table
    std::uint32_t drivers = 0;
  };

  struct FireAction {
    std::uint32_t slot = 0;
    std::uint32_t driver = 0;
    std::uint32_t source = 0;  ///< value-table index
  };

  struct ReleaseAction {
    std::uint32_t slot = 0;
    std::uint32_t driver = 0;
  };

  struct UpdateEntry {
    enum class Kind : std::uint8_t {
      kSink,         ///< re-resolve sink slot `index` (conflict-monitored)
      kModuleOut,    ///< module `index` output takes its pending value
      kRegisterOut,  ///< register `index` output takes its latch, if dirty
    };
    Kind kind = Kind::kSink;
    std::uint32_t index = 0;
  };

  /// Everything one delta cycle does, precomputed and shared by all lanes.
  /// CS/PH assignments never carry lane-varying state, so they are folded
  /// into the lane-uniform counter increments instead of update entries.
  struct CyclePlan {
    std::vector<UpdateEntry> updates;
    std::vector<FireAction> fires;
    std::vector<ReleaseAction> releases;
    bool eval_modules = false;
    bool latch_registers = false;
    unsigned step = 0;
    Phase phase = Phase::kRa;
    /// Counter increments identical for every lane this cycle: updates from
    /// CS/PH/sink/module-out entries, events from CS/PH (each assignment on
    /// the phase wheel changes the value), transactions from
    /// fires/releases/module evaluations/controller drives.
    std::uint32_t uniform_updates = 0;
    std::uint32_t uniform_events = 0;
    std::uint32_t uniform_transactions = 0;
  };

  struct ModuleTable {
    const transfer::ModuleDecl* decl = nullptr;
    std::vector<std::uint32_t> inputs;  ///< value-table indices
    std::uint32_t op = kNoSignal;
    std::uint32_t out = 0;
  };

  struct RegisterTable {
    const transfer::RegisterDecl* decl = nullptr;
    std::uint32_t in = 0;
    std::uint32_t out = 0;
  };

  static constexpr std::uint32_t kNoSignal = 0xffffffffu;

  struct LaneBlock;  // mutable SoA state, defined in the .cpp

  void execute_cycle(std::uint64_t ordinal, LaneBlock& block) const;

  std::shared_ptr<const transfer::CompiledDesign> compiled_;
  std::vector<std::string> signal_names_;
  std::vector<RtValue> signal_initial_;
  std::unordered_map<std::string, std::uint32_t> input_index_;

  std::vector<SinkSlot> slots_;
  std::uint32_t total_drivers_ = 0;
  std::vector<ModuleTable> modules_;
  std::vector<RegisterTable> registers_;
  std::vector<std::uint32_t> preloaded_registers_;
  std::vector<RtValue> preload_values_;

  /// plan_[d] is delta-cycle ordinal d (1-based; plan_[0] unused). The last
  /// entry is the trailing cycle that applies the final `cr` latches.
  std::vector<CyclePlan> plan_;
  std::uint64_t wheel_cycles_ = 0;  ///< cs_max * kPhasesPerStep
  bool trailing_has_static_updates_ = false;
  std::size_t init_transactions_ = 0;
};

}  // namespace ctrtl::rtl
