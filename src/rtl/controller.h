#pragma once

#include <string>

#include "kernel/scheduler.h"
#include "rtl/phase.h"

namespace ctrtl::rtl {

/// The paper's CONTROLLER entity (section 2.2): drives the control-step
/// counter `CS` and the phase signal `PH` with delta delay only.
///
/// Initial state is `CS = 0, PH = cr` (`Phase'High`), so the very first
/// delta cycle opens control step 1 at phase `ra`. When step `cs_max`
/// reaches `cr` no further assignment is made and the simulation becomes
/// quiescent — a complete run is exactly `cs_max * 6` delta cycles.
class Controller {
 public:
  using StepSignal = kernel::Signal<unsigned>;
  using PhaseSignal = kernel::Signal<Phase>;

  Controller(kernel::Scheduler& scheduler, unsigned cs_max,
             std::string name = "CONTROL");

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  [[nodiscard]] StepSignal& cs() { return cs_; }
  [[nodiscard]] const StepSignal& cs() const { return cs_; }
  [[nodiscard]] PhaseSignal& ph() { return ph_; }
  [[nodiscard]] const PhaseSignal& ph() const { return ph_; }
  [[nodiscard]] unsigned cs_max() const { return cs_max_; }

  /// Expected number of delta cycles for a full run of this controller.
  [[nodiscard]] std::uint64_t expected_delta_cycles() const {
    return static_cast<std::uint64_t>(cs_max_) * kPhasesPerStep;
  }

  /// Maps a delta-cycle ordinal (1-based, as counted by the kernel) back to
  /// the (control step, phase) it realizes. This is the "close relationship
  /// of control step phases to the VHDL simulation delta cycle" the paper
  /// relies on for locating design errors.
  [[nodiscard]] static std::pair<unsigned, Phase> locate(std::uint64_t delta_ordinal);

 private:
  kernel::Process run();

  kernel::Scheduler& scheduler_;
  unsigned cs_max_;
  StepSignal& cs_;
  PhaseSignal& ph_;
  kernel::DriverId cs_driver_;
  kernel::DriverId ph_driver_;
};

}  // namespace ctrtl::rtl
