#pragma once

#include <array>
#include <span>
#include <string>

#include "kernel/scheduler.h"
#include "rtl/phase.h"

namespace ctrtl::rtl {

/// The paper's CONTROLLER entity (section 2.2): drives the control-step
/// counter `CS` and the phase signal `PH` with delta delay only.
///
/// Initial state is `CS = 0, PH = cr` (`Phase'High`), so the very first
/// delta cycle opens control step 1 at phase `ra`. When step `cs_max`
/// reaches `cr` no further assignment is made and the simulation becomes
/// quiescent — a complete run is exactly `cs_max * 6` delta cycles.
class Controller {
 public:
  using StepSignal = kernel::Signal<unsigned>;
  using PhaseSignal = kernel::Signal<Phase>;

  /// `spawn_process == false` creates the CS/PH signals without the driving
  /// process — used by the compiled engine, which advances the phase wheel
  /// itself (rtl::CompiledEngine).
  Controller(kernel::Scheduler& scheduler, unsigned cs_max,
             std::string name = "CONTROL", bool spawn_process = true);

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  [[nodiscard]] StepSignal& cs() { return cs_; }
  [[nodiscard]] const StepSignal& cs() const { return cs_; }
  [[nodiscard]] PhaseSignal& ph() { return ph_; }
  [[nodiscard]] const PhaseSignal& ph() const { return ph_; }
  [[nodiscard]] unsigned cs_max() const { return cs_max_; }

  /// Expected number of delta cycles for a full run of this controller.
  [[nodiscard]] std::uint64_t expected_delta_cycles() const {
    return static_cast<std::uint64_t>(cs_max_) * kPhasesPerStep;
  }

  /// Maps a delta-cycle ordinal (1-based, as counted by the kernel) back to
  /// the (control step, phase) it realizes. This is the "close relationship
  /// of control step phases to the VHDL simulation delta cycle" the paper
  /// relies on for locating design errors.
  [[nodiscard]] static std::pair<unsigned, Phase> locate(std::uint64_t delta_ordinal);

  /// Shared sensitivity lists for component processes: every register and
  /// module waits on {PH}, every TRANS on {CS, PH}. Borrowing these spans
  /// (kernel::wait_on span overload) means no per-process sensitivity
  /// storage and no allocation when a process re-suspends.
  [[nodiscard]] std::span<kernel::SignalBase* const> ph_sensitivity() const {
    return {ph_sensitivity_.data(), ph_sensitivity_.size()};
  }
  [[nodiscard]] std::span<kernel::SignalBase* const> cs_ph_sensitivity() const {
    return {cs_ph_sensitivity_.data(), cs_ph_sensitivity_.size()};
  }

 private:
  kernel::Process run();

  kernel::Scheduler& scheduler_;
  unsigned cs_max_;
  StepSignal& cs_;
  PhaseSignal& ph_;
  kernel::DriverId cs_driver_;
  kernel::DriverId ph_driver_;
  std::array<kernel::SignalBase*, 1> ph_sensitivity_;
  std::array<kernel::SignalBase*, 2> cs_ph_sensitivity_;
};

}  // namespace ctrtl::rtl
