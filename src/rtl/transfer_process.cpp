#include "rtl/transfer_process.h"

namespace ctrtl::rtl {

TransferProcess::TransferProcess(kernel::Scheduler& scheduler, Controller& controller,
                                 unsigned step, Phase phase, RtSignal& source,
                                 RtSignal& sink, std::string name)
    : controller_(controller),
      step_(step),
      phase_(phase),
      source_(source),
      sink_(sink),
      sink_driver_(sink.add_driver(RtValue::disc())),
      name_(std::move(name)) {
  if (phase == kPhaseHigh) {
    // The release assignment at Phase'Succ(P) would be undefined.
    throw std::invalid_argument("TRANS '" + name_ + "': phase cr has no successor");
  }
  scheduler.spawn(name_, run());
}

kernel::Process TransferProcess::run() {
  // Paper source:
  //   process
  //   begin
  //     wait until CS=S and PH=P;   OutS <= InS;
  //     wait until CS=S and PH=Phase'Succ(P); OutS <= DISC;
  //   end process;
  // After the second assignment the VHDL process loops back to the first
  // wait; since CS only increases, the condition never holds again and the
  // process stays suspended forever. The loop below reproduces that.
  // Shared sensitivity span ({CS, PH} lives on the controller, one copy for
  // all TRANS processes) and `this`-only predicate captures (small enough
  // for std::function's inline storage): re-suspending allocates nothing —
  // the old per-process sensitivity vector was rebuilt on every wait.
  const std::span<kernel::SignalBase* const> sensitivity =
      controller_.cs_ph_sensitivity();
  for (;;) {
    co_await kernel::wait_until(sensitivity, [this] {
      return controller_.cs().read() == step_ && controller_.ph().read() == phase_;
    });
    sink_.drive(sink_driver_, source_.read());
    co_await kernel::wait_until(sensitivity, [this] {
      return controller_.cs().read() == step_ &&
             controller_.ph().read() == succ(phase_);
    });
    sink_.drive(sink_driver_, RtValue::disc());
  }
}

}  // namespace ctrtl::rtl
