#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "kernel/batch.h"
#include "rtl/model.h"

namespace ctrtl::transfer {
struct CompiledDesign;
}

namespace ctrtl::rtl {

class LaneEngine;

/// Per-instance external inputs: `(input name, value)` pairs applied in
/// order before control step 1 (the `RtModel::set_input` protocol). Invoked
/// concurrently with distinct instance indices — must be thread-safe.
using BatchInputProvider =
    std::function<std::vector<std::pair<std::string, RtValue>>(std::size_t)>;

/// How a batch executes its instances.
enum class BatchEngineKind : std::uint8_t {
  /// One model and one scheduler per instance (any `TransferMode`); jobs are
  /// whole instances. The fully general shape — instances may come from a
  /// factory producing arbitrarily different models.
  kPerInstance,
  /// One shared compiled action table, instances as structure-of-arrays
  /// lanes (`LaneEngine`); jobs are fixed-size lane blocks. Requires all
  /// instances to share one `transfer::CompiledDesign` (they may still
  /// differ in external inputs).
  kCompiledLanes,
};

/// Options for a `BatchRunner`.
struct BatchRunOptions {
  /// Worker threads; 0 = one per available hardware thread.
  std::size_t workers = 0;
  /// Cycle limit applied to every instance (`RtModel::run` semantics).
  std::uint64_t max_cycles = kernel::Scheduler::kNoLimit;
  /// Delta-cycle watchdog limit applied to every instance
  /// (`RunOptions::max_delta_cycles` semantics): a non-converging instance
  /// ends with a kWatchdogTripped report instead of hanging its worker.
  std::uint64_t max_delta_cycles = kernel::Scheduler::kNoLimit;
  /// Execution engine; `kCompiledLanes` requires the design-based
  /// constructor.
  BatchEngineKind engine = BatchEngineKind::kPerInstance;
  /// Lane-engine shard size: instances simulated per SoA block. Fixed (not
  /// derived from the worker count) so the work decomposition — and
  /// therefore every result bit — is identical for every worker count.
  std::size_t lane_block = 16;
  /// Transfer mode for per-instance models elaborated from a
  /// `CompiledDesign` (ignored by the factory constructor and by
  /// `kCompiledLanes`, which is compiled by construction).
  TransferMode mode = TransferMode::kCompiled;
  /// Cooperative cancellation poll. When set, the runner invokes it before
  /// starting each work unit (a lane block under `kCompiledLanes`, one
  /// instance under `kPerInstance`); once it returns true, every unit not
  /// yet started is skipped — its instances report `RunStatus::kCancelled`
  /// and are NOT streamed through the `BatchResultSink`. Units already
  /// running complete normally (their results stay byte-identical to an
  /// uncancelled run), so cancellation latency is bounded by one work
  /// unit, never by the whole batch. Must be thread-safe; it is polled
  /// concurrently from worker threads. A truly non-converging instance
  /// never reaches the next poll point — bound it with `max_delta_cycles`
  /// (the watchdog), which this poll complements rather than replaces.
  std::function<bool()> cancel = nullptr;
};

/// Everything observable about one simulated instance: the run outcome
/// (kernel statistics, cycle count, conflicts) plus the final value of every
/// register in elaboration order. Two instances are behaviourally identical
/// iff their `InstanceResult`s compare equal.
struct InstanceResult {
  std::uint64_t cycles = 0;
  kernel::KernelStats stats;
  std::vector<Conflict> conflicts;
  /// (register name, final value), in elaboration order.
  std::vector<std::pair<std::string, RtValue>> registers;
  /// Guarded-execution outcome: kOk, kWatchdogTripped, or kError (the
  /// instance threw — its exception was caught at the instance boundary and
  /// the rest of the batch kept running). Non-ok results still carry the
  /// partial registers/conflicts observed up to the failure point.
  RunReport report;

  friend bool operator==(const InstanceResult& a, const InstanceResult& b) {
    // Stats are timing-dependent only in wall_time_ns; compare behaviour.
    return a.cycles == b.cycles && a.conflicts == b.conflicts &&
           a.registers == b.registers && a.report == b.report &&
           a.stats.delta_cycles == b.stats.delta_cycles &&
           a.stats.events == b.stats.events &&
           a.stats.updates == b.stats.updates &&
           a.stats.transactions == b.stats.transactions;
  }
};

/// Incremental result streaming: invoked once per completed work unit with
/// the results of instances `first_instance .. first_instance +
/// block.size() - 1` (a whole lane block under `kCompiledLanes`, a single
/// instance under `kPerInstance`), as soon as that unit finishes — long
/// before `run` returns. Calls are serialized by the runner (never
/// concurrent with each other) but arrive on worker threads in completion
/// order, which varies with scheduling; within one call the block is in
/// ascending instance order. The spanned results are identical to the slots
/// the final `BatchRunResult` will hold, so a consumer that streams and one
/// that waits observe byte-identical data. `ctrtl_serve` hangs its
/// per-instance report streaming off this hook.
using BatchResultSink =
    std::function<void(std::size_t first_instance,
                       std::span<const InstanceResult> block)>;

/// Result of one batch dispatch: per-instance results indexed by instance
/// number (deterministic — independent of worker interleaving), aggregated
/// kernel statistics, and the batch wall time.
struct BatchRunResult {
  std::vector<InstanceResult> instances;
  kernel::KernelStats total;
  std::uint64_t wall_time_ns = 0;
  std::size_t workers = 0;

  [[nodiscard]] std::size_t conflict_count() const {
    std::size_t count = 0;
    for (const InstanceResult& instance : instances) {
      count += instance.conflicts.size();
    }
    return count;
  }

  /// Instances whose report is not kOk (watchdog trips + errors; skipped
  /// instances of a cancelled batch count here too).
  [[nodiscard]] std::size_t failure_count() const {
    std::size_t count = 0;
    for (const InstanceResult& instance : instances) {
      count += instance.report.ok() ? 0 : 1;
    }
    return count;
  }

  /// Instances skipped by the cooperative cancellation poll
  /// (`BatchRunOptions::cancel`) — they never ran.
  [[nodiscard]] std::size_t cancelled_count() const {
    std::size_t count = 0;
    for (const InstanceResult& instance : instances) {
      count += instance.report.status == RunStatus::kCancelled ? 1 : 0;
    }
    return count;
  }
};

/// Runs N independent instances of a clock-free design across a worker pool.
///
/// Two shapes, selected by `BatchRunOptions::engine`:
///
///   - `kPerInstance`: each instance is produced by a factory (or elaborated
///     from a shared `CompiledDesign`) and simulated to quiescence on its own
///     `Scheduler`, one simulation per worker thread at a time. Simulations
///     never share mutable state, so the only cross-thread traffic is job
///     dispatch.
///   - `kCompiledLanes`: all instances share one immutable compiled action
///     table; per-instance state is laid out as contiguous SoA lanes and the
///     batch is sharded into fixed-size lane blocks across the pool (see
///     `LaneEngine`). Requires the design-based constructor.
///
/// Determinism guarantee: `run(n)` returns the same `BatchRunResult`
/// (ignoring wall time) for any worker count, and per-instance equal to n
/// sequential `run_one` calls. Factories and input providers must be
/// thread-safe — they are invoked concurrently with distinct indices.
///
/// Isolation guarantee: one misbehaving instance cannot take down the
/// batch. An instance that throws (factory, input provider, or simulation)
/// or trips the delta-cycle watchdog yields an `InstanceResult` whose
/// `report` records the failure with its diagnostics, while every other
/// instance completes normally — and the result stays byte-stable across
/// worker counts.
class BatchRunner {
 public:
  using ModelFactory = std::function<std::unique_ptr<RtModel>(std::size_t instance)>;

  /// Fully general per-instance batch. Throws `std::invalid_argument` when
  /// `options.engine == kCompiledLanes` — lanes need one shared design.
  explicit BatchRunner(ModelFactory factory, BatchRunOptions options = {});

  /// All instances share one pre-lowered design (`CompiledDesign::compile`),
  /// differing only in the inputs the provider sets. Supports both engines:
  /// `kPerInstance` elaborates one model per instance from the shared
  /// schedule (lower once, elaborate N times), `kCompiledLanes` shares the
  /// whole action table and runs SoA lane blocks.
  explicit BatchRunner(std::shared_ptr<const transfer::CompiledDesign> design,
                       BatchRunOptions options = {},
                       BatchInputProvider inputs = nullptr);

  ~BatchRunner();

  /// Simulates instances `0..count-1`.
  [[nodiscard]] BatchRunResult run(std::size_t count);

  /// Like `run(count)`, additionally streaming every completed work unit
  /// through `sink` while the batch is still in flight (see
  /// `BatchResultSink`). A null sink is equivalent to `run(count)`; the
  /// returned result is identical either way.
  [[nodiscard]] BatchRunResult run(std::size_t count,
                                   const BatchResultSink& sink);

  /// Builds and simulates one instance on the calling thread through the
  /// per-instance path — the sequential reference the determinism and
  /// lane-equivalence tests compare against.
  [[nodiscard]] InstanceResult run_one(std::size_t instance) const;

  [[nodiscard]] std::size_t worker_count() const { return engine_.worker_count(); }

  /// The shared lane engine; nullptr unless constructed for `kCompiledLanes`.
  [[nodiscard]] const LaneEngine* lane_engine() const { return lane_engine_.get(); }

 private:
  ModelFactory factory_;
  BatchRunOptions options_;
  std::shared_ptr<const transfer::CompiledDesign> design_;
  BatchInputProvider inputs_;
  std::unique_ptr<LaneEngine> lane_engine_;
  kernel::BatchEngine engine_;
};

/// Simulates an already-built model and snapshots its observable state.
/// Guarded: a simulation exception is caught at this boundary and reported
/// as `result.report` (status kError, message in the diagnostics) with the
/// registers snapshotted as they stood; a watchdog trip arrives the same
/// way with status kWatchdogTripped.
[[nodiscard]] InstanceResult run_instance(RtModel& model,
                                          const RunOptions& options = {});

}  // namespace ctrtl::rtl
