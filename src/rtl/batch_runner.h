#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "kernel/batch.h"
#include "rtl/model.h"

namespace ctrtl::rtl {

/// Options for a `BatchRunner`.
struct BatchRunOptions {
  /// Worker threads; 0 = one per available hardware thread.
  std::size_t workers = 0;
  /// Cycle limit applied to every instance (`RtModel::run` semantics).
  std::uint64_t max_cycles = kernel::Scheduler::kNoLimit;
};

/// Everything observable about one simulated instance: the run outcome
/// (kernel statistics, cycle count, conflicts) plus the final value of every
/// register in elaboration order. Two instances are behaviourally identical
/// iff their `InstanceResult`s compare equal.
struct InstanceResult {
  std::uint64_t cycles = 0;
  kernel::KernelStats stats;
  std::vector<Conflict> conflicts;
  /// (register name, final value), in elaboration order.
  std::vector<std::pair<std::string, RtValue>> registers;

  friend bool operator==(const InstanceResult& a, const InstanceResult& b) {
    // Stats are timing-dependent only in wall_time_ns; compare behaviour.
    return a.cycles == b.cycles && a.conflicts == b.conflicts &&
           a.registers == b.registers &&
           a.stats.delta_cycles == b.stats.delta_cycles &&
           a.stats.events == b.stats.events &&
           a.stats.updates == b.stats.updates &&
           a.stats.transactions == b.stats.transactions;
  }
};

/// Result of one batch dispatch: per-instance results indexed by instance
/// number (deterministic — independent of worker interleaving), aggregated
/// kernel statistics, and the batch wall time.
struct BatchRunResult {
  std::vector<InstanceResult> instances;
  kernel::KernelStats total;
  std::uint64_t wall_time_ns = 0;
  std::size_t workers = 0;

  [[nodiscard]] std::size_t conflict_count() const {
    std::size_t count = 0;
    for (const InstanceResult& instance : instances) {
      count += instance.conflicts.size();
    }
    return count;
  }
};

/// Runs N independent instances of a clock-free design across a worker pool.
///
/// Each instance is produced by the factory (typically wrapping
/// `transfer::build_model` with per-instance inputs, seeds, or microcode)
/// and simulated to quiescence on its own `Scheduler`, one simulation per
/// worker thread at a time. This is the throughput shape for serving many
/// concurrent workloads: simulations never share mutable state, so the only
/// cross-thread traffic is job dispatch.
///
/// Determinism guarantee: `run(n)` returns the same `BatchRunResult`
/// (ignoring wall time) as n sequential `run_one` calls on the same factory
/// outputs, for any worker count. The factory must be thread-safe — it is
/// invoked concurrently with distinct instance indices.
class BatchRunner {
 public:
  using ModelFactory = std::function<std::unique_ptr<RtModel>(std::size_t instance)>;

  explicit BatchRunner(ModelFactory factory, BatchRunOptions options = {});

  /// Simulates instances `0..count-1`.
  [[nodiscard]] BatchRunResult run(std::size_t count);

  /// Builds and simulates one instance on the calling thread — the
  /// sequential reference path used by the determinism tests.
  [[nodiscard]] InstanceResult run_one(std::size_t instance) const;

  [[nodiscard]] std::size_t worker_count() const { return engine_.worker_count(); }

 private:
  ModelFactory factory_;
  BatchRunOptions options_;
  kernel::BatchEngine engine_;
};

/// Simulates an already-built model and snapshots its observable state.
[[nodiscard]] InstanceResult run_instance(
    RtModel& model, std::uint64_t max_cycles = kernel::Scheduler::kNoLimit);

}  // namespace ctrtl::rtl
