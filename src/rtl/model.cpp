#include "rtl/model.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "rtl/compiled_engine.h"

namespace ctrtl::rtl {

namespace {

RtValue resolve_adapter(std::span<const RtValue> contributions) {
  return resolve_rt(contributions);
}

}  // namespace

std::string to_string(const Conflict& conflict) {
  std::ostringstream out;
  out << "conflict on " << conflict.signal << " at step " << conflict.step
      << ", phase " << phase_name(conflict.phase);
  if (conflict.phase != kPhaseLow) {
    out << " (driven at " << phase_name(pred(conflict.phase)) << ")";
  }
  return out.str();
}

RtModel::RtModel(unsigned cs_max, TransferMode mode)
    : mode_(mode),
      scheduler_(std::make_unique<kernel::Scheduler>()),
      controller_(std::make_unique<Controller>(
          *scheduler_, cs_max, "CONTROL",
          /*spawn_process=*/mode != TransferMode::kCompiled)) {
  if (mode_ == TransferMode::kDispatch) {
    // One action slot per delta ordinal (1..cs_max*6), plus one for the
    // release of wb-fired transfers at the final cr.
    dispatch_table_.resize(static_cast<std::size_t>(cs_max) * kPhasesPerStep + 2);
    scheduler_->spawn("DISPATCH", dispatcher());
  }
}

RtModel::~RtModel() {
  // Process frames reference the component objects; destroy them first.
  scheduler_->shutdown();
}

RtSignal& RtModel::add_bus(const std::string& name) {
  if (buses_by_name_.contains(name)) {
    throw std::invalid_argument("duplicate bus name '" + name + "'");
  }
  RtSignal& bus =
      scheduler_->make_signal<RtValue>(name, RtValue::disc(), resolve_adapter);
  buses_.push_back(&bus);
  buses_by_name_[name] = &bus;
  monitor(bus);
  return bus;
}

Register& RtModel::add_register(const std::string& name,
                                std::optional<RtValue> initial) {
  if (registers_by_name_.contains(name)) {
    throw std::invalid_argument("duplicate register name '" + name + "'");
  }
  auto reg = std::make_unique<Register>(
      *scheduler_, *controller_, name, initial,
      /*spawn_process=*/mode_ != TransferMode::kCompiled);
  Register& ref = *reg;
  registers_.push_back(std::move(reg));
  registers_by_name_[name] = &ref;
  monitor(ref.in());
  return ref;
}

RtSignal& RtModel::add_constant(const std::string& name, std::int64_t value) {
  if (constants_by_name_.contains(name)) {
    throw std::invalid_argument("duplicate constant name '" + name + "'");
  }
  RtSignal& sig = scheduler_->make_signal<RtValue>(name, RtValue::of(value));
  constants_by_name_[name] = &sig;
  return sig;
}

RtSignal& RtModel::add_input(const std::string& name) {
  if (inputs_.contains(name)) {
    throw std::invalid_argument("duplicate input name '" + name + "'");
  }
  RtSignal& sig = scheduler_->make_signal<RtValue>(name, RtValue::disc());
  const kernel::DriverId driver = sig.add_driver(RtValue::disc());
  inputs_[name] = {&sig, driver};
  return sig;
}

void RtModel::set_input(const std::string& name, RtValue value) {
  const auto it = inputs_.find(name);
  if (it == inputs_.end()) {
    throw std::invalid_argument("no input named '" + name + "'");
  }
  if (mode_ == TransferMode::kCompiled) {
    if (compiled_engine_ != nullptr) {
      throw std::logic_error("compiled mode: set_input after the first run");
    }
    // No event loop will apply this driver's transaction; publish the value
    // directly. The engine's first delta cycle counts the update, like the
    // event kernel counts the pre-initialization drive.
    RtSignal* signal = it->second.first;
    it->second.first->set_effective(std::move(value));
    if (std::ranges::find(compiled_inputs_touched_, signal) ==
        compiled_inputs_touched_.end()) {
      compiled_inputs_touched_.push_back(signal);
    }
    return;
  }
  it->second.first->drive(it->second.second, value);
}

void RtModel::register_module(std::unique_ptr<Module> module) {
  const std::string& name = module->name();
  if (modules_by_name_.contains(name)) {
    throw std::invalid_argument("duplicate module name '" + name + "'");
  }
  modules_by_name_[name] = module.get();
  for (unsigned i = 0; i < module->config().num_inputs; ++i) {
    monitor(module->input(i));
  }
  if (module->config().has_op_port) {
    monitor(module->op_port());
  }
  modules_.push_back(std::move(module));
}

TransferProcess* RtModel::add_transfer(unsigned step, Phase phase, RtSignal& source,
                                       RtSignal& sink, std::string name) {
  if (step == 0 || step > controller_->cs_max()) {
    throw std::out_of_range("transfer step " + std::to_string(step) +
                            " outside 1.." + std::to_string(controller_->cs_max()));
  }
  ++transfer_count_;
  if (mode_ == TransferMode::kCompiled) {
    if (phase == kPhaseHigh) {
      throw std::invalid_argument("transfer at phase cr has no release phase");
    }
    if (compiled_engine_ != nullptr) {
      throw std::logic_error("compiled mode: add_transfer after the first run");
    }
    compiled_transfers_.push_back(CompiledTransfer{step, phase, &source, &sink});
    return nullptr;
  }
  if (mode_ == TransferMode::kDispatch) {
    if (phase == kPhaseHigh) {
      throw std::invalid_argument("transfer at phase cr has no release phase");
    }
    const kernel::DriverId driver = sink.add_driver(RtValue::disc());
    const std::size_t fire_ordinal =
        (static_cast<std::size_t>(step) - 1) * kPhasesPerStep +
        static_cast<std::size_t>(phase_index(phase)) + 1;
    dispatch_table_[fire_ordinal].push_back(DispatchAction{&source, &sink, driver});
    dispatch_table_[fire_ordinal + 1].push_back(
        DispatchAction{nullptr, &sink, driver});
    return nullptr;
  }
  if (name.empty()) {
    std::ostringstream auto_name;
    auto_name << source.name() << "_" << sink.name() << "_" << step << "_"
              << phase_name(phase);
    name = auto_name.str();
  }
  auto transfer = std::make_unique<TransferProcess>(*scheduler_, *controller_, step,
                                                    phase, source, sink,
                                                    std::move(name));
  TransferProcess& ref = *transfer;
  transfers_.push_back(std::move(transfer));
  return &ref;
}

kernel::Process RtModel::dispatcher() {
  // Executes the action table indexed by the delta ordinal: the phase-wheel
  // invariant guarantees ordinal <-> (step, phase), so no wait-until
  // predicates need evaluating at all.
  auto& ph = controller_->ph();
  const std::vector<kernel::SignalBase*> sensitivity = {&ph};
  for (;;) {
    co_await kernel::wait_on(sensitivity);
    const std::uint64_t ordinal = scheduler_->now().delta;
    if (ordinal < dispatch_table_.size()) {
      for (const DispatchAction& action : dispatch_table_[ordinal]) {
        action.sink->drive(action.driver, action.source != nullptr
                                              ? action.source->read()
                                              : RtValue::disc());
      }
    }
  }
}

RtSignal* RtModel::find_bus(const std::string& name) {
  const auto it = buses_by_name_.find(name);
  return it == buses_by_name_.end() ? nullptr : it->second;
}

Register* RtModel::find_register(const std::string& name) {
  const auto it = registers_by_name_.find(name);
  return it == registers_by_name_.end() ? nullptr : it->second;
}

Module* RtModel::find_module(const std::string& name) {
  const auto it = modules_by_name_.find(name);
  return it == modules_by_name_.end() ? nullptr : it->second;
}

RtSignal* RtModel::find_constant(const std::string& name) {
  const auto it = constants_by_name_.find(name);
  return it == constants_by_name_.end() ? nullptr : it->second;
}

RtSignal* RtModel::find_input(const std::string& name) {
  const auto it = inputs_.find(name);
  return it == inputs_.end() ? nullptr : it->second.first;
}

void RtModel::monitor(RtSignal& signal) {
  monitored_[&signal] = &signal;
}

RunResult RtModel::run(std::uint64_t max_cycles) {
  return run(RunOptions{.max_cycles = max_cycles});
}

RunResult RtModel::run(const RunOptions& options) {
  if (mode_ == TransferMode::kCompiled) {
    if (compiled_engine_ == nullptr) {
      compiled_engine_ = std::make_unique<CompiledEngine>(
          *scheduler_, *controller_, compiled_transfers_, registers_, modules_,
          compiled_inputs_touched_);
    }
    // The engine records conflicts itself (it knows which update entries hit
    // monitored signals), so the event-observer-based recorder below is not
    // attached; trace/VCD observers still fire through the scheduler.
    return compiled_engine_->run(options.max_cycles, options.max_delta_cycles);
  }
  RunResult result;
  const std::size_t observer = scheduler_->add_event_observer(
      [this, &result](const kernel::SignalBase& signal, kernel::SimTime time) {
        const auto it = monitored_.find(&signal);
        if (it == monitored_.end() || !it->second->read().is_illegal()) {
          return;
        }
        // The model's invariant ties delta ordinals to (step, phase); see
        // Controller::locate. time.delta is the current delta ordinal.
        const auto [step, phase] = Controller::locate(time.delta);
        result.conflicts.push_back(Conflict{signal.name(), step, phase});
      });
  const kernel::KernelStats before = scheduler_->stats();
  const std::uint64_t saved_limit = scheduler_->max_delta_cycles();
  scheduler_->set_max_delta_cycles(options.max_delta_cycles);
  try {
    result.cycles = scheduler_->run(options.max_cycles);
  } catch (const kernel::WatchdogError& error) {
    // Non-convergence becomes a structured report, not an escape: the model
    // stays usable and everything up to the trip point is a valid partial
    // result. The scheduler's run loop counted one step() per cycle; rebuild
    // the count from the stats window (each cycle is delta or timed).
    result.report.status = RunStatus::kWatchdogTripped;
    result.report.diagnostics.push_back(
        watchdog_diagnostic(error.limit(), error.next_delta()));
    const kernel::KernelStats so_far = scheduler_->stats() - before;
    result.cycles = so_far.delta_cycles + so_far.timed_cycles;
  }
  scheduler_->set_max_delta_cycles(saved_limit);
  result.stats = scheduler_->stats() - before;
  scheduler_->remove_event_observer(observer);
  return result;
}

}  // namespace ctrtl::rtl
