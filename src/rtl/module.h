#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "kernel/scheduler.h"
#include "rtl/controller.h"
#include "rtl/value.h"

namespace ctrtl::rtl {

/// Base class of the paper's arithmetical/logical modules (section 2.6).
///
/// A module has resolved input ports (sinks of `rb` transfers), an
/// unresolved output port (source of `wa` transfers), and an optional
/// resolved *operation port* implementing the section 3 extension ("a
/// register transfer also defines the operation to be performed by the
/// module") — the op code travels to the module exactly like an operand.
///
/// Timing: the module computes at phase `cm`. With `latency == 0` the
/// result is combinational within the control step (the IKS adders). With
/// `latency == L >= 1` the module is pipelined: operands fetched in step
/// `s` appear at the output in step `s + L` (the paper's ADD has L = 1, the
/// IKS multiplier L = 2). A pipelined module whose pipeline has been fed an
/// ILLEGAL value freezes in that state — the paper's `if M /= ILLEGAL`
/// guard — so conflicts stay visible for the rest of the run.
///
/// Operand discipline (paper's ADD generalized): considering the first
/// `arity_for(op)` inputs, all-DISC yields DISC, all-values yields
/// `compute(...)`, and any mix (or any ILLEGAL anywhere) yields ILLEGAL.
class Module {
 public:
  struct Config {
    unsigned num_inputs = 2;
    unsigned latency = 1;
    bool has_op_port = false;
  };

  Module(kernel::Scheduler& scheduler, Controller& controller, std::string name,
         Config config);
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  [[nodiscard]] kernel::Signal<RtValue>& input(std::size_t index);
  [[nodiscard]] kernel::Signal<RtValue>& op_port();
  [[nodiscard]] kernel::Signal<RtValue>& out() { return *out_; }
  [[nodiscard]] const kernel::Signal<RtValue>& out() const { return *out_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] bool poisoned() const { return poisoned_; }

  /// Call after construction wiring is complete; spawns the module process.
  /// `RtModel` does this automatically (except in compiled mode, where the
  /// engine calls `advance` from its action table instead).
  void start(kernel::Scheduler& scheduler);

  /// One `cm`-phase step, shared by the module process and the compiled
  /// engine: evaluates the operands (combinationally for latency 0,
  /// otherwise advancing the pipeline with the paper's poisoned-freeze
  /// guard) and returns the value the output port shows next.
  [[nodiscard]] RtValue advance(std::span<const RtValue> operands, const RtValue& op);

 protected:
  /// Combines operand payloads under `op` (0 when there is no op port).
  /// Only called when the operand discipline is satisfied.
  [[nodiscard]] virtual std::int64_t compute(std::span<const std::int64_t> operands,
                                             std::int64_t op) = 0;

  /// How many leading inputs the given op consumes. Defaults to all inputs.
  [[nodiscard]] virtual unsigned arity_for(std::int64_t op) const;

  /// Full evaluation hook (one call per `cm` phase while healthy). The
  /// default enforces the operand discipline above; stateful modules (MACC)
  /// override it.
  [[nodiscard]] virtual RtValue evaluate(std::span<const RtValue> operands,
                                         const RtValue& op);

 private:
  kernel::Process run();

  Controller& controller_;
  std::string name_;
  Config config_;
  std::vector<kernel::Signal<RtValue>*> inputs_;
  kernel::Signal<RtValue>* op_ = nullptr;
  kernel::Signal<RtValue>* out_ = nullptr;
  kernel::DriverId out_driver_ = 0;
  std::vector<RtValue> pipeline_;  // pipeline_[0] newest; size == latency
  std::vector<std::int64_t> scratch_payloads_;
  bool poisoned_ = false;
  bool started_ = false;
};

}  // namespace ctrtl::rtl
