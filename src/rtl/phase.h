#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string_view>

namespace ctrtl::rtl {

/// The six phases of a control step (paper fig. 2), in cyclic order:
///
///   ra: register output ports -> buses
///   rb: buses -> module input ports
///   cm: module input ports evaluated, modules compute
///   wa: module output ports -> buses
///   wb: buses -> register input ports
///   cr: register input -> output ports (registers latch)
///
/// Declared in the paper as `type Phase is (ra, rb, cm, wa, wb, cr);` with
/// `Phase'Low = ra` and `Phase'High = cr`.
enum class Phase : std::uint8_t { kRa = 0, kRb, kCm, kWa, kWb, kCr };

inline constexpr int kPhasesPerStep = 6;
inline constexpr Phase kPhaseLow = Phase::kRa;
inline constexpr Phase kPhaseHigh = Phase::kCr;

/// `Phase'Succ`. Like the VHDL attribute it is undefined past 'High;
/// calling it on `cr` throws.
[[nodiscard]] constexpr Phase succ(Phase phase) {
  if (phase == kPhaseHigh) {
    throw std::out_of_range("Phase'Succ(cr) is undefined");
  }
  return static_cast<Phase>(static_cast<std::uint8_t>(phase) + 1);
}

/// `Phase'Pred`; undefined below 'Low.
[[nodiscard]] constexpr Phase pred(Phase phase) {
  if (phase == kPhaseLow) {
    throw std::out_of_range("Phase'Pred(ra) is undefined");
  }
  return static_cast<Phase>(static_cast<std::uint8_t>(phase) - 1);
}

[[nodiscard]] constexpr int phase_index(Phase phase) {
  return static_cast<int>(phase);
}

[[nodiscard]] constexpr Phase phase_from_index(int index) {
  if (index < 0 || index >= kPhasesPerStep) {
    throw std::out_of_range("phase index out of range");
  }
  return static_cast<Phase>(index);
}

[[nodiscard]] constexpr std::string_view phase_name(Phase phase) {
  constexpr std::array<std::string_view, kPhasesPerStep> kNames = {
      "ra", "rb", "cm", "wa", "wb", "cr"};
  return kNames[static_cast<std::size_t>(phase)];
}

/// Parses "ra".."cr"; throws std::invalid_argument on anything else.
[[nodiscard]] Phase phase_from_name(std::string_view name);

std::ostream& operator<<(std::ostream& os, Phase phase);

}  // namespace ctrtl::rtl
