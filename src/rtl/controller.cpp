#include "rtl/controller.h"

namespace ctrtl::rtl {

Controller::Controller(kernel::Scheduler& scheduler, unsigned cs_max, std::string name,
                       bool spawn_process)
    : scheduler_(scheduler),
      cs_max_(cs_max),
      cs_(scheduler.make_signal<unsigned>(name + ".CS", 0u)),
      ph_(scheduler.make_signal<Phase>(name + ".PH", kPhaseHigh)),
      cs_driver_(cs_.add_driver(0u)),
      ph_driver_(ph_.add_driver(kPhaseHigh)),
      ph_sensitivity_{&ph_},
      cs_ph_sensitivity_{&cs_, &ph_} {
  if (spawn_process) {
    scheduler_.spawn(std::move(name), run());
  }
}

std::pair<unsigned, Phase> Controller::locate(std::uint64_t delta_ordinal) {
  if (delta_ordinal == 0) {
    throw std::out_of_range("delta ordinal 0 is the initialization phase");
  }
  const std::uint64_t zero_based = delta_ordinal - 1;
  const unsigned step = static_cast<unsigned>(zero_based / kPhasesPerStep) + 1;
  const Phase phase = phase_from_index(static_cast<int>(zero_based % kPhasesPerStep));
  return {step, phase};
}

kernel::Process Controller::run() {
  // Paper source:
  //   process (PH)
  //   begin
  //     if (PH = Phase'High) then
  //       if (CS < CS_MAX) then CS <= CS+1; PH <= Phase'Low; end if;
  //     else
  //       PH <= Phase'Succ(PH);
  //     end if;
  //   end process;
  // A sensitivity-list process runs its body once at time zero and then
  // waits on PH after each execution.
  // Note: the sensitivity span is named outside the co_await expression to
  // sidestep a GCC 12 coroutine bug with braced initializer lists.
  const std::span<kernel::SignalBase* const> sensitivity = ph_sensitivity();
  for (;;) {
    if (ph_.read() == kPhaseHigh) {
      if (cs_.read() < cs_max_) {
        cs_.drive(cs_driver_, cs_.read() + 1);
        ph_.drive(ph_driver_, kPhaseLow);
      }
    } else {
      ph_.drive(ph_driver_, succ(ph_.read()));
    }
    co_await kernel::wait_on(sensitivity);
  }
}

}  // namespace ctrtl::rtl
