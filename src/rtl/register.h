#pragma once

#include <optional>
#include <string>

#include "kernel/scheduler.h"
#include "rtl/controller.h"
#include "rtl/value.h"

namespace ctrtl::rtl {

/// The paper's REG entity (section 2.5): latches its resolved input at
/// phase `cr` whenever the input is not DISC; otherwise the old value is
/// kept. The output port starts at DISC and "always drives ... as soon as
/// the first value is assigned".
///
/// Note that an ILLEGAL input *is* latched (it is /= DISC), so a conflict
/// that reaches a register poisons it — this is deliberate in the paper's
/// model: conflicts stay visible.
///
/// `initial` preloads the register (models an external load before control
/// step 1, e.g. the IKS joint-position inputs).
class Register {
 public:
  /// `spawn_process == false` creates the ports without the latch process —
  /// the compiled engine latches registers from its action table instead.
  Register(kernel::Scheduler& scheduler, Controller& controller, std::string name,
           std::optional<RtValue> initial = std::nullopt, bool spawn_process = true);

  Register(const Register&) = delete;
  Register& operator=(const Register&) = delete;

  /// Resolved input port — the sink of `wb` transfers.
  [[nodiscard]] kernel::Signal<RtValue>& in() { return in_; }
  /// Unresolved output port — the source of `ra` transfers.
  [[nodiscard]] kernel::Signal<RtValue>& out() { return out_; }
  [[nodiscard]] const kernel::Signal<RtValue>& out() const { return out_; }

  /// Current stored value (the effective value of the output port).
  [[nodiscard]] RtValue value() const { return out_.read(); }

  /// The preload, if any (exposed for the compiled engine's init table).
  [[nodiscard]] const std::optional<RtValue>& initial() const { return initial_; }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  kernel::Process run();

  Controller& controller_;
  std::string name_;
  std::optional<RtValue> initial_;
  kernel::Signal<RtValue>& in_;
  kernel::Signal<RtValue>& out_;
  kernel::DriverId out_driver_;
};

}  // namespace ctrtl::rtl
