#include "rtl/value.h"

#include <ostream>
#include <stdexcept>

namespace ctrtl::rtl {

std::int64_t RtValue::to_inband() const {
  switch (kind_) {
    case Kind::kDisc:
      return kDiscEncoding;
    case Kind::kIllegal:
      return kIllegalEncoding;
    case Kind::kValue:
      if (payload_ < 0) {
        throw std::domain_error(
            "RtValue::to_inband: negative payload collides with sentinel encoding");
      }
      return payload_;
  }
  throw std::logic_error("RtValue: corrupt kind");
}

std::int64_t RtValue::payload() const {
  if (kind_ != Kind::kValue) {
    throw std::logic_error("RtValue::payload on a non-value (" + to_string(*this) + ")");
  }
  return payload_;
}

RtValue resolve_rt(std::span<const RtValue> contributions) {
  RtValue unique = RtValue::disc();
  bool saw_value = false;
  for (const RtValue& contribution : contributions) {
    if (contribution.is_disc()) {
      continue;
    }
    if (contribution.is_illegal() || saw_value) {
      return RtValue::illegal();
    }
    unique = contribution;
    saw_value = true;
  }
  return unique;
}

std::string to_string(const RtValue& value) {
  switch (value.kind()) {
    case RtValue::Kind::kDisc:
      return "DISC";
    case RtValue::Kind::kIllegal:
      return "ILLEGAL";
    case RtValue::Kind::kValue:
      return std::to_string(value.payload());
  }
  return "<corrupt>";
}

std::ostream& operator<<(std::ostream& os, const RtValue& value) {
  return os << to_string(value);
}

}  // namespace ctrtl::rtl
