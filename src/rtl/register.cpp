#include "rtl/register.h"

namespace ctrtl::rtl {

namespace {

RtValue resolve_adapter(std::span<const RtValue> contributions) {
  return resolve_rt(contributions);
}

}  // namespace

Register::Register(kernel::Scheduler& scheduler, Controller& controller,
                   std::string name, std::optional<RtValue> initial,
                   bool spawn_process)
    : controller_(controller),
      name_(std::move(name)),
      initial_(initial),
      in_(scheduler.make_signal<RtValue>(name_ + ".in", RtValue::disc(),
                                         resolve_adapter)),
      out_(scheduler.make_signal<RtValue>(name_ + ".out", RtValue::disc())),
      out_driver_(out_.add_driver(RtValue::disc())) {
  if (spawn_process) {
    scheduler.spawn(name_, run());
  }
}

kernel::Process Register::run() {
  // Paper source:
  //   process
  //   begin
  //     wait until PH=cR;
  //     if R_in /= DISC then R_out <= R_in; end if;
  //   end process;
  // The preload (if any) is driven during initialization, before the first
  // delta cycle, so it is visible from control step 1 onward.
  if (initial_.has_value()) {
    out_.drive(out_driver_, *initial_);
  }
  auto& ph = controller_.ph();
  const std::span<kernel::SignalBase* const> sensitivity =
      controller_.ph_sensitivity();
  for (;;) {
    co_await kernel::wait_until(sensitivity,
                                [&] { return ph.read() == Phase::kCr; });
    if (!in_.read().is_disc()) {
      out_.drive(out_driver_, in_.read());
    }
  }
}

}  // namespace ctrtl::rtl
