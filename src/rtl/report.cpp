#include "rtl/report.h"

#include <sstream>

#include "rtl/controller.h"

namespace ctrtl::rtl {

std::string to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kWatchdogTripped:
      return "watchdog-tripped";
    case RunStatus::kError:
      return "error";
    case RunStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string RunReport::to_text() const {
  std::ostringstream out;
  out << "status: " << to_string(status) << '\n';
  for (const common::Diagnostic& diag : diagnostics) {
    out << common::to_string(diag) << '\n';
  }
  return out.str();
}

common::Diagnostic watchdog_diagnostic(std::uint64_t limit,
                                       std::uint64_t ordinal) {
  const auto [step, phase] = Controller::locate(ordinal);
  common::Diagnostic diag;
  diag.severity = common::Severity::kError;
  std::ostringstream message;
  message << "delta-cycle watchdog tripped: limit of " << limit
          << " delta cycles reached; next delta cycle (ordinal " << ordinal
          << ") realizes control step " << step << ", phase "
          << phase_name(phase);
  diag.message = message.str();
  return diag;
}

}  // namespace ctrtl::rtl
