#include "rtl/phase.h"

#include <ostream>
#include <string>

namespace ctrtl::rtl {

Phase phase_from_name(std::string_view name) {
  for (int i = 0; i < kPhasesPerStep; ++i) {
    const Phase phase = static_cast<Phase>(i);
    if (phase_name(phase) == name) {
      return phase;
    }
  }
  throw std::invalid_argument("unknown phase name '" + std::string(name) + "'");
}

std::ostream& operator<<(std::ostream& os, Phase phase) {
  return os << phase_name(phase);
}

}  // namespace ctrtl::rtl
