#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kernel/scheduler.h"
#include "rtl/controller.h"
#include "rtl/module.h"
#include "rtl/register.h"
#include "rtl/report.h"
#include "rtl/transfer_process.h"
#include "rtl/value.h"

namespace ctrtl::rtl {

/// A resource conflict observed during simulation: a resolved signal took
/// the ILLEGAL value. Per the paper (section 2.7), the delta cycle at which
/// this happens identifies "a specific phase of a specific control step" —
/// `step`/`phase` is where the ILLEGAL value became visible, and the
/// conflicting transfers fired in the preceding phase.
struct Conflict {
  std::string signal;
  unsigned step = 0;
  Phase phase = Phase::kRa;

  friend bool operator==(const Conflict&, const Conflict&) = default;
};

/// "conflict on B1 at step 5, phase rb (driven at ra)"
std::string to_string(const Conflict& conflict);

/// Bounds for a guarded run. `max_cycles` is the historical silent cap (the
/// run simply stops); `max_delta_cycles` arms the watchdog, which converts
/// non-convergence into a `RunReport` diagnostic with (step, phase)
/// provenance. When both bounds coincide the silent cap wins: the loop bound
/// is checked before the watchdog on every engine, which keeps their reports
/// byte-equal.
struct RunOptions {
  std::uint64_t max_cycles = kernel::Scheduler::kNoLimit;
  std::uint64_t max_delta_cycles = kernel::Scheduler::kNoLimit;
};

/// Outcome of simulating an `RtModel`.
struct RunResult {
  kernel::KernelStats stats;
  std::uint64_t cycles = 0;
  std::vector<Conflict> conflicts;
  /// Guarded-execution outcome; `report.ok()` unless the watchdog tripped.
  RunReport report;

  [[nodiscard]] bool conflict_free() const { return conflicts.empty(); }
};

/// How register transfers are executed.
enum class TransferMode : std::uint8_t {
  /// One TRANS process per tuple fragment, exactly the paper's VHDL: every
  /// suspended process re-evaluates its `wait until CS=S and PH=P`
  /// condition on each phase event (LRM semantics, O(transfers) work per
  /// delta cycle).
  kProcessPerTransfer,
  /// One dispatcher process with a delta-ordinal-indexed action table: the
  /// same drives on the same drivers at the same delta cycles (observable
  /// behaviour identical, conflicts included), but O(active transfers) work
  /// per delta. This is the indexing a production simulator would apply to
  /// the subset's stylized wait conditions; see bench_vs_handshake.
  kDispatch,
  /// No processes at all: elaboration lowers the model to per-delta-ordinal
  /// action and update tables executed straight-line by rtl::CompiledEngine
  /// (classic levelized compiled-code simulation). Delta-cycle-exact with
  /// the event-driven modes — same values, events, conflicts, and trace
  /// order — for the canonical transfer phases (ra/rb/wa/wb fires).
  kCompiled,
};

/// One recorded transfer in compiled mode: fire (source -> sink) at
/// (step, phase), release (DISC) at the succeeding phase.
struct CompiledTransfer {
  unsigned step = 0;
  Phase phase = Phase::kRa;
  RtSignal* source = nullptr;
  RtSignal* sink = nullptr;
};

class CompiledEngine;

/// A concrete register transfer model (paper section 2.7): one controller,
/// registers, modules, buses, constants, and transfer processes, all built
/// on one kernel scheduler.
///
/// Construction mirrors the paper's structural VHDL: `add_register`,
/// `add_module`, `add_bus` allocate resources; `add_transfer` instantiates
/// a TRANS process moving a value between a source port/bus and a sink
/// port/bus at a given (step, phase).
class RtModel {
 public:
  explicit RtModel(unsigned cs_max,
                   TransferMode mode = TransferMode::kProcessPerTransfer);
  ~RtModel();

  RtModel(const RtModel&) = delete;
  RtModel& operator=(const RtModel&) = delete;

  [[nodiscard]] kernel::Scheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] Controller& controller() { return *controller_; }
  [[nodiscard]] unsigned cs_max() const { return controller_->cs_max(); }

  /// A bus: a resolved RtValue signal usable as transfer source and sink.
  RtSignal& add_bus(const std::string& name);

  Register& add_register(const std::string& name,
                         std::optional<RtValue> initial = std::nullopt);

  /// A read-only value source (models literal operands such as the `0` in
  /// the IKS micro-operation `X := 0 + Rshift(x2, i)`).
  RtSignal& add_constant(const std::string& name, std::int64_t value);

  /// An external input port; set with `set_input` before `run`.
  RtSignal& add_input(const std::string& name);
  void set_input(const std::string& name, RtValue value);

  /// Constructs a module of type `M` (constructor signature
  /// `M(scheduler, controller, name, extra args...)`) and starts its process.
  template <typename M, typename... Args>
  M& add_module(const std::string& name, Args&&... args) {
    auto module = std::make_unique<M>(*scheduler_, *controller_, name,
                                      std::forward<Args>(args)...);
    M& ref = *module;
    if (mode_ != TransferMode::kCompiled) {
      ref.start(*scheduler_);
    }
    register_module(std::move(module));
    return ref;
  }

  /// Schedules a transfer for (step, phase, source -> sink). In
  /// kProcessPerTransfer mode this instantiates a TRANS process (returned
  /// pointer non-null); in kDispatch and kCompiled modes it adds table
  /// entries and returns nullptr.
  TransferProcess* add_transfer(unsigned step, Phase phase, RtSignal& source,
                                RtSignal& sink, std::string name = "");

  [[nodiscard]] TransferMode transfer_mode() const { return mode_; }
  /// Number of scheduled transfers (either representation).
  [[nodiscard]] std::size_t transfer_count() const { return transfer_count_; }

  // --- lookup ---------------------------------------------------------------
  [[nodiscard]] RtSignal* find_bus(const std::string& name);
  [[nodiscard]] Register* find_register(const std::string& name);
  [[nodiscard]] Module* find_module(const std::string& name);
  [[nodiscard]] RtSignal* find_constant(const std::string& name);
  [[nodiscard]] RtSignal* find_input(const std::string& name);

  [[nodiscard]] const std::vector<std::unique_ptr<Register>>& registers() const {
    return registers_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Module>>& modules() const {
    return modules_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<TransferProcess>>& transfers() const {
    return transfers_;
  }
  [[nodiscard]] const std::vector<RtSignal*>& buses() const { return buses_; }

  /// Runs to quiescence (or `max_cycles`), returning statistics and all
  /// observed conflicts.
  RunResult run(std::uint64_t max_cycles = kernel::Scheduler::kNoLimit);

  /// Guarded run: like `run(max_cycles)` but with the delta-cycle watchdog
  /// armed per `options.max_delta_cycles`. A trip does not throw — it ends
  /// the run with `result.report.status == RunStatus::kWatchdogTripped` and
  /// a diagnostic locating the next (control step, phase); registers and
  /// conflicts up to the trip point remain valid partial results.
  RunResult run(const RunOptions& options);

  /// The transfers recorded for the compiled engine (kCompiled mode only;
  /// empty otherwise).
  [[nodiscard]] const std::vector<CompiledTransfer>& compiled_transfers() const {
    return compiled_transfers_;
  }

 private:
  void register_module(std::unique_ptr<Module> module);
  void monitor(RtSignal& signal);
  kernel::Process dispatcher();

  struct DispatchAction {
    RtSignal* source = nullptr;  // nullptr = release (drive DISC)
    RtSignal* sink = nullptr;
    kernel::DriverId driver = 0;
  };

  TransferMode mode_;
  std::size_t transfer_count_ = 0;
  /// Actions per delta ordinal (1-based); index 0 unused.
  std::vector<std::vector<DispatchAction>> dispatch_table_;
  /// Transfers recorded for lowering (kCompiled mode), in add order — the
  /// order the equivalent TRANS processes would have been spawned in, which
  /// the engine's tables must preserve for event-order parity.
  std::vector<CompiledTransfer> compiled_transfers_;
  /// Inputs touched by set_input (kCompiled mode), in first-touch order.
  std::vector<RtSignal*> compiled_inputs_touched_;
  std::unique_ptr<kernel::Scheduler> scheduler_;
  std::unique_ptr<Controller> controller_;
  std::vector<std::unique_ptr<Register>> registers_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::vector<std::unique_ptr<TransferProcess>> transfers_;
  /// Built lazily at first run in kCompiled mode (declared after the
  /// scheduler and components so it is destroyed before them).
  std::unique_ptr<CompiledEngine> compiled_engine_;
  std::vector<RtSignal*> buses_;
  std::map<std::string, RtSignal*> buses_by_name_;
  std::map<std::string, Register*> registers_by_name_;
  std::map<std::string, Module*> modules_by_name_;
  std::map<std::string, std::pair<RtSignal*, kernel::DriverId>> inputs_;
  std::map<std::string, RtSignal*> constants_by_name_;
  std::map<const kernel::SignalBase*, RtSignal*> monitored_;
};

}  // namespace ctrtl::rtl
