#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

namespace ctrtl::rtl {

/// The value domain of the paper's subset: integers extended with two
/// sentinels, DISC ("no value", a disconnected source) and ILLEGAL (the
/// result of a resource conflict).
///
/// The paper encodes the sentinels in-band (`DISC = -1`, `ILLEGAL = -2`,
/// naturals are regular values). We store an explicit tag plus a full
/// signed 64-bit payload so the same machinery carries the IKS chip's
/// signed fixed-point data; `to_inband`/`from_inband` provide the paper's
/// exact encoding for the VHDL front end and for naturals-only models.
class RtValue {
 public:
  enum class Kind : std::uint8_t { kDisc, kIllegal, kValue };

  /// The paper's in-band sentinel encodings.
  static constexpr std::int64_t kDiscEncoding = -1;
  static constexpr std::int64_t kIllegalEncoding = -2;

  /// Default is DISC — the idle state of every port and bus.
  constexpr RtValue() = default;

  [[nodiscard]] static constexpr RtValue disc() { return RtValue(); }
  [[nodiscard]] static constexpr RtValue illegal() {
    return RtValue(Kind::kIllegal, 0);
  }
  [[nodiscard]] static constexpr RtValue of(std::int64_t payload) {
    return RtValue(Kind::kValue, payload);
  }

  /// Decodes the paper's Integer encoding (-1 → DISC, -2 → ILLEGAL,
  /// everything else → a value).
  [[nodiscard]] static constexpr RtValue from_inband(std::int64_t encoded) {
    if (encoded == kDiscEncoding) {
      return disc();
    }
    if (encoded == kIllegalEncoding) {
      return illegal();
    }
    return of(encoded);
  }

  /// Encodes back into the paper's Integer representation. Only valid for
  /// DISC, ILLEGAL, or non-negative payloads (the paper's naturals); a
  /// negative payload would collide with the sentinels.
  [[nodiscard]] std::int64_t to_inband() const;

  [[nodiscard]] constexpr Kind kind() const { return kind_; }
  [[nodiscard]] constexpr bool is_disc() const { return kind_ == Kind::kDisc; }
  [[nodiscard]] constexpr bool is_illegal() const { return kind_ == Kind::kIllegal; }
  [[nodiscard]] constexpr bool has_value() const { return kind_ == Kind::kValue; }

  /// The payload; only meaningful when `has_value()`.
  [[nodiscard]] std::int64_t payload() const;

  friend constexpr bool operator==(const RtValue&, const RtValue&) = default;

 private:
  constexpr RtValue(Kind kind, std::int64_t payload)
      : kind_(kind), payload_(payload) {}

  Kind kind_ = Kind::kDisc;
  std::int64_t payload_ = 0;
};

/// The paper's resolution function for buses and functional-unit input
/// ports (section 2.3):
///   - all contributions DISC                  -> DISC
///   - any contribution ILLEGAL                -> ILLEGAL
///   - two or more non-DISC contributions      -> ILLEGAL
///   - exactly one non-DISC contribution       -> that value
[[nodiscard]] RtValue resolve_rt(std::span<const RtValue> contributions);

/// "DISC", "ILLEGAL", or the decimal payload.
[[nodiscard]] std::string to_string(const RtValue& value);

std::ostream& operator<<(std::ostream& os, const RtValue& value);

}  // namespace ctrtl::rtl
