#include "rtl/lane_engine.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <span>
#include <stdexcept>
#include <unordered_map>

#include "rtl/controller.h"
#include "transfer/mapping.h"

namespace ctrtl::rtl {

/// All mutable state of one block of lanes, structure-of-arrays: every array
/// is indexed `row * lanes + lane`, so the per-lane inner loops in
/// `execute_cycle` walk contiguous memory. Stack-local to `run_block` — the
/// engine itself stays immutable and shareable across threads.
struct LaneEngine::LaneBlock {
  std::size_t lanes = 0;

  std::vector<RtValue> values;             ///< signals × lanes
  std::vector<RtValue> contributions;      ///< total drivers × lanes
  std::vector<std::uint32_t> non_disc;     ///< sink slots × lanes
  std::vector<std::uint32_t> illegal;      ///< sink slots × lanes
  std::vector<std::uint32_t> last_driver;  ///< sink slots × lanes
  std::vector<transfer::ModuleSim> sims;   ///< modules × lanes
  std::vector<RtValue> module_pending;     ///< modules × lanes
  std::vector<RtValue> reg_pending;        ///< registers × lanes
  std::vector<std::uint8_t> reg_dirty;     ///< registers × lanes
  std::vector<RtValue> scratch;            ///< one module's operands

  // Lane-varying counter parts; the lane-uniform parts accumulate as
  // scalars in run_block and are added once at collection time.
  std::vector<std::uint64_t> lane_updates;
  std::vector<std::uint64_t> lane_events;
  std::vector<std::uint64_t> lane_transactions;
  std::vector<std::vector<Conflict>> conflicts;

  /// CompiledEngine::write_contribution, one lane: swaps the contribution
  /// and maintains the slot's non-DISC/ILLEGAL counters and value cache.
  void write_contribution(const SinkSlot& slot, std::uint32_t slot_index,
                          std::uint32_t driver, std::size_t lane,
                          const RtValue& value) {
    RtValue& contribution =
        contributions[(slot.contrib_base + driver) * lanes + lane];
    const std::size_t counter = slot_index * lanes + lane;
    if (!contribution.is_disc()) {
      --non_disc[counter];
    }
    if (contribution.is_illegal()) {
      --illegal[counter];
    }
    contribution = value;
    if (!value.is_disc()) {
      ++non_disc[counter];
      last_driver[counter] = driver;
    }
    if (value.is_illegal()) {
      ++illegal[counter];
    }
  }

  /// CompiledEngine::resolve_slot, one lane: `resolve_rt` from the counters,
  /// with the last-value cache and the rare scan fallback.
  [[nodiscard]] RtValue resolve(const SinkSlot& slot, std::uint32_t slot_index,
                                std::size_t lane) const {
    const std::size_t counter = slot_index * lanes + lane;
    if (illegal[counter] > 0 || non_disc[counter] > 1) {
      return RtValue::illegal();
    }
    if (non_disc[counter] == 0) {
      return RtValue::disc();
    }
    const RtValue& cached =
        contributions[(slot.contrib_base + last_driver[counter]) * lanes + lane];
    if (!cached.is_disc()) {
      return cached;
    }
    for (std::uint32_t driver = 0; driver < slot.drivers; ++driver) {
      const RtValue& contribution =
          contributions[(slot.contrib_base + driver) * lanes + lane];
      if (!contribution.is_disc()) {
        return contribution;
      }
    }
    return RtValue::disc();  // unreachable: non_disc == 1
  }
};

LaneEngine::LaneEngine(std::shared_ptr<const transfer::CompiledDesign> compiled)
    : compiled_(std::move(compiled)) {
  if (!compiled_) {
    throw std::invalid_argument("LaneEngine requires a compiled design");
  }
  const transfer::Design& design = compiled_->design;
  const transfer::StaticSchedule& schedule = compiled_->schedule;

  // --- signal table: same resources, same names, same initial values the
  // elaborated RtModel would create (names feed the conflict records) -------
  const auto add_signal = [this](std::string name, RtValue initial) {
    signal_names_.push_back(std::move(name));
    signal_initial_.push_back(initial);
    return static_cast<std::uint32_t>(signal_names_.size() - 1);
  };
  std::unordered_map<std::string, std::uint32_t> register_index;
  for (const transfer::RegisterDecl& reg : design.registers) {
    RegisterTable table;
    table.decl = &reg;
    table.in = add_signal(reg.name + ".in", RtValue::disc());
    table.out = add_signal(reg.name + ".out", RtValue::disc());
    if (reg.initial.has_value()) {
      preloaded_registers_.push_back(static_cast<std::uint32_t>(registers_.size()));
      preload_values_.push_back(RtValue::of(*reg.initial));
    }
    register_index[reg.name] = static_cast<std::uint32_t>(registers_.size());
    registers_.push_back(std::move(table));
  }
  std::unordered_map<std::string, std::uint32_t> bus_index;
  for (const transfer::BusDecl& bus : design.buses) {
    bus_index[bus.name] = add_signal(bus.name, RtValue::disc());
  }
  std::unordered_map<std::string, std::uint32_t> constant_index;
  for (const transfer::ConstantDecl& constant : design.constants) {
    constant_index[constant.name] =
        add_signal(constant.name, RtValue::of(constant.value));
  }
  for (const transfer::InputDecl& input : design.inputs) {
    input_index_[input.name] = add_signal(input.name, RtValue::disc());
  }
  std::unordered_map<std::string, std::uint32_t> module_index;
  for (const transfer::ModuleDecl& module : design.modules) {
    ModuleTable table;
    table.decl = &module;
    for (unsigned i = 0; i < module.num_inputs(); ++i) {
      table.inputs.push_back(
          add_signal(module.name + ".in" + std::to_string(i + 1), RtValue::disc()));
    }
    if (module.has_op_port()) {
      table.op = add_signal(module.name + ".op", RtValue::disc());
    }
    table.out = add_signal(module.name + ".out", RtValue::disc());
    module_index[module.name] = static_cast<std::uint32_t>(modules_.size());
    modules_.push_back(std::move(table));
  }
  // Implicit constant sources for op codes (mirrors build_model).
  std::set<std::int64_t> op_codes;
  for (const transfer::RegisterTransfer& transfer : design.transfers) {
    if (transfer.op) {
      op_codes.insert(*transfer.op);
    }
  }
  for (const std::int64_t code : op_codes) {
    const std::string name = transfer::op_constant_name(code);
    if (!constant_index.contains(name)) {
      constant_index[name] = add_signal(name, RtValue::of(code));
    }
  }

  const auto signal_of = [&](const transfer::Endpoint& endpoint) -> std::uint32_t {
    using Kind = transfer::Endpoint::Kind;
    switch (endpoint.kind) {
      case Kind::kRegisterOut:
        return registers_.at(register_index.at(endpoint.resource)).out;
      case Kind::kRegisterIn:
        return registers_.at(register_index.at(endpoint.resource)).in;
      case Kind::kModuleOut:
        return modules_.at(module_index.at(endpoint.resource)).out;
      case Kind::kModuleIn:
        return modules_.at(module_index.at(endpoint.resource))
            .inputs.at(endpoint.port);
      case Kind::kModuleOp: {
        const std::uint32_t op = modules_.at(module_index.at(endpoint.resource)).op;
        if (op == kNoSignal) {
          throw std::invalid_argument("module '" + endpoint.resource +
                                      "' has no operation port");
        }
        return op;
      }
      case Kind::kBus:
        return bus_index.at(endpoint.resource);
      case Kind::kConstant:
        return constant_index.at(endpoint.resource);
      case Kind::kInput:
        return input_index_.at(endpoint.resource);
    }
    throw std::logic_error("LaneEngine: corrupt endpoint kind");
  };

  // --- transfer lowering: identical slot/driver assignment and fire/release
  // placement to CompiledEngine (level order == RtModel add order, so the
  // per-lane conflict order matches the per-instance engines exactly) -------
  const unsigned cs_max = design.cs_max;
  wheel_cycles_ = static_cast<std::uint64_t>(cs_max) * kPhasesPerStep;
  plan_.resize(wheel_cycles_ + 2);  // [0] unused; [wheel_cycles_+1] trailing

  std::unordered_map<std::uint32_t, std::uint32_t> slot_of;
  for (const transfer::ScheduleLevel& level : schedule.levels) {
    for (const transfer::TransInstance& instance : level.fires) {
      const std::uint32_t sink = signal_of(instance.sink);
      const auto [it, inserted] =
          slot_of.try_emplace(sink, static_cast<std::uint32_t>(slots_.size()));
      if (inserted) {
        slots_.push_back(SinkSlot{sink, 0, 0});
      }
      SinkSlot& slot = slots_[it->second];
      const std::uint32_t driver = slot.drivers++;
      const std::uint64_t fire_ordinal =
          (static_cast<std::uint64_t>(instance.step) - 1) * kPhasesPerStep +
          static_cast<std::uint64_t>(phase_index(instance.phase)) + 1;
      plan_[fire_ordinal].fires.push_back(
          FireAction{it->second, driver, signal_of(instance.source)});
      plan_[fire_ordinal + 1].releases.push_back(ReleaseAction{it->second, driver});
    }
  }
  std::uint32_t contrib_base = 0;
  for (SinkSlot& slot : slots_) {
    slot.contrib_base = contrib_base;
    contrib_base += slot.drivers;
  }
  total_drivers_ = contrib_base;

  // --- per-cycle execution metadata ----------------------------------------
  for (std::uint64_t d = 1; d <= wheel_cycles_ + 1; ++d) {
    const auto [step, phase] = Controller::locate(d);
    plan_[d].step = step;
    plan_[d].phase = phase;
    if (d <= wheel_cycles_) {
      plan_[d].eval_modules = phase == Phase::kCm && !modules_.empty();
      plan_[d].latch_registers = phase == Phase::kCr && !registers_.empty();
      // Transactions every lane performs this cycle: fires, releases, one
      // evaluation per module, plus the controller's CS/PH drives (both when
      // cr opens the next step, nothing at the final cr, PH elsewhere).
      // Register latches are gated on a non-DISC input and stay per-lane.
      const std::uint32_t controller =
          phase == kPhaseHigh ? (step < cs_max ? 2u : 0u) : 1u;
      plan_[d].uniform_transactions =
          static_cast<std::uint32_t>(plan_[d].fires.size() +
                                     plan_[d].releases.size()) +
          (plan_[d].eval_modules ? static_cast<std::uint32_t>(modules_.size())
                                 : 0u) +
          controller;
    }
  }

  // --- update lists: the event kernel's pending order, statically derived --
  // Same derivation as CompiledEngine with the always-lane-uniform entries
  // folded into the counters instead of materialized:
  //   - CS/PH assignments are one update + one event each for every lane
  //     (CS steps 0 -> 1 -> ... -> cs_max, PH walks the six-phase wheel from
  //     its cr initial — every assignment changes the value);
  //   - externally set inputs are per-lane *counts* added at cycle 1 (the
  //     value itself is published at set-input time, before the stats
  //     window, exactly like RtModel::set_input in compiled mode).
  // Register preloads stay materialized as (dirty-gated) register-out
  // entries, like any other latch.
  if (cs_max > 0) {
    plan_[1].uniform_updates += 2;
    plan_[1].uniform_events += 2;
  }
  for (const std::uint32_t reg : preloaded_registers_) {
    plan_[1].updates.push_back(UpdateEntry{UpdateEntry::Kind::kRegisterOut, reg});
  }
  std::vector<std::uint64_t> sink_stamp(slots_.size(), 0);
  for (std::uint64_t d = 2; d <= wheel_cycles_ + 1; ++d) {
    const CyclePlan& prev = plan_[d - 1];
    std::vector<UpdateEntry>& updates = plan_[d].updates;
    const auto add_sink = [&](std::uint32_t slot) {
      if (sink_stamp[slot] != d) {
        sink_stamp[slot] = d;
        updates.push_back(UpdateEntry{UpdateEntry::Kind::kSink, slot});
      }
    };
    if (prev.eval_modules) {
      for (std::uint32_t m = 0; m < modules_.size(); ++m) {
        updates.push_back(UpdateEntry{UpdateEntry::Kind::kModuleOut, m});
      }
    }
    for (const FireAction& fire : prev.fires) {
      add_sink(fire.slot);
    }
    if (prev.latch_registers) {
      for (std::uint32_t r = 0; r < registers_.size(); ++r) {
        updates.push_back(UpdateEntry{UpdateEntry::Kind::kRegisterOut, r});
      }
    }
    for (const ReleaseAction& release : prev.releases) {
      add_sink(release.slot);
    }
    if (prev.phase == kPhaseHigh) {
      if (prev.step < cs_max) {
        plan_[d].uniform_updates += 2;
        plan_[d].uniform_events += 2;
      }
    } else {
      plan_[d].uniform_updates += 1;
      plan_[d].uniform_events += 1;
    }
  }
  for (CyclePlan& plan : plan_) {
    for (const UpdateEntry& entry : plan.updates) {
      // Sink and module-out updates are unconditional for every lane;
      // register-out updates only count when the lane's latch is dirty.
      if (entry.kind != UpdateEntry::Kind::kRegisterOut) {
        ++plan.uniform_updates;
      }
    }
  }
  for (const UpdateEntry& entry : plan_[wheel_cycles_ + 1].updates) {
    if (entry.kind == UpdateEntry::Kind::kSink) {
      trailing_has_static_updates_ = true;
      break;
    }
  }

  init_transactions_ = (cs_max > 0 ? 2u : 0u) + preloaded_registers_.size();
}

void LaneEngine::execute_cycle(std::uint64_t ordinal, LaneBlock& block) const {
  const CyclePlan& plan = plan_[ordinal];
  const std::size_t lanes = block.lanes;

  // --- update phase --------------------------------------------------------
  for (const UpdateEntry& entry : plan.updates) {
    switch (entry.kind) {
      case UpdateEntry::Kind::kSink: {
        const SinkSlot& slot = slots_[entry.index];
        const std::size_t value_row = static_cast<std::size_t>(slot.signal) * lanes;
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          const RtValue value = block.resolve(slot, entry.index, lane);
          RtValue& current = block.values[value_row + lane];
          if (current != value) {
            current = value;
            ++block.lane_events[lane];
            if (value.is_illegal()) {
              block.conflicts[lane].push_back(
                  Conflict{signal_names_[slot.signal], plan.step, plan.phase});
            }
          }
        }
        break;
      }
      case UpdateEntry::Kind::kModuleOut: {
        const ModuleTable& module = modules_[entry.index];
        const std::size_t value_row = static_cast<std::size_t>(module.out) * lanes;
        const std::size_t pending_row =
            static_cast<std::size_t>(entry.index) * lanes;
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          RtValue& current = block.values[value_row + lane];
          const RtValue& pending = block.module_pending[pending_row + lane];
          if (current != pending) {
            current = pending;
            ++block.lane_events[lane];
          }
        }
        break;
      }
      case UpdateEntry::Kind::kRegisterOut: {
        const RegisterTable& reg = registers_[entry.index];
        const std::size_t value_row = static_cast<std::size_t>(reg.out) * lanes;
        const std::size_t pending_row =
            static_cast<std::size_t>(entry.index) * lanes;
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          if (block.reg_dirty[pending_row + lane] == 0) {
            continue;  // no latch this step: the signal was never pending
          }
          block.reg_dirty[pending_row + lane] = 0;
          ++block.lane_updates[lane];
          RtValue& current = block.values[value_row + lane];
          const RtValue& pending = block.reg_pending[pending_row + lane];
          if (current != pending) {
            current = pending;
            ++block.lane_events[lane];
          }
        }
        break;
      }
    }
  }

  // --- execution phase (the trailing cycle only applies updates) -----------
  if (ordinal > wheel_cycles_) {
    return;
  }
  for (const FireAction& fire : plan.fires) {
    const SinkSlot& slot = slots_[fire.slot];
    const std::size_t source_row = static_cast<std::size_t>(fire.source) * lanes;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      block.write_contribution(slot, fire.slot, fire.driver, lane,
                               block.values[source_row + lane]);
    }
  }
  if (plan.eval_modules) {
    for (std::size_t m = 0; m < modules_.size(); ++m) {
      const ModuleTable& module = modules_[m];
      const std::size_t arity = module.inputs.size();
      const std::size_t op_row = module.op != kNoSignal
                                     ? static_cast<std::size_t>(module.op) * lanes
                                     : 0;
      const std::size_t pending_row = m * lanes;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        for (std::size_t i = 0; i < arity; ++i) {
          block.scratch[i] =
              block.values[static_cast<std::size_t>(module.inputs[i]) * lanes +
                           lane];
        }
        const RtValue op = module.op != kNoSignal ? block.values[op_row + lane]
                                                  : RtValue::disc();
        block.module_pending[pending_row + lane] =
            block.sims[pending_row + lane].step(
                std::span<const RtValue>(block.scratch.data(), arity), op);
      }
    }
  }
  if (plan.latch_registers) {
    for (std::size_t r = 0; r < registers_.size(); ++r) {
      const std::size_t value_row =
          static_cast<std::size_t>(registers_[r].in) * lanes;
      const std::size_t pending_row = r * lanes;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const RtValue& value = block.values[value_row + lane];
        if (!value.is_disc()) {
          block.reg_pending[pending_row + lane] = value;
          block.reg_dirty[pending_row + lane] = 1;
          ++block.lane_transactions[lane];
        }
      }
    }
  }
  for (const ReleaseAction& release : plan.releases) {
    const SinkSlot& slot = slots_[release.slot];
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      block.write_contribution(slot, release.slot, release.driver, lane,
                               RtValue::disc());
    }
  }
}

std::vector<InstanceResult> LaneEngine::run_block(
    std::size_t first_instance, std::size_t lanes, const InputProvider& inputs,
    std::uint64_t max_cycles, std::uint64_t max_delta_cycles) const {
  const auto start = std::chrono::steady_clock::now();
  std::vector<InstanceResult> results(lanes);
  if (lanes == 0) {
    return results;
  }

  LaneBlock block;
  block.lanes = lanes;
  const std::size_t signals = signal_names_.size();
  block.values.resize(signals * lanes);
  for (std::size_t s = 0; s < signals; ++s) {
    std::fill_n(block.values.begin() + static_cast<std::ptrdiff_t>(s * lanes),
                lanes, signal_initial_[s]);
  }
  block.contributions.assign(static_cast<std::size_t>(total_drivers_) * lanes,
                             RtValue::disc());
  block.non_disc.assign(slots_.size() * lanes, 0);
  block.illegal.assign(slots_.size() * lanes, 0);
  block.last_driver.assign(slots_.size() * lanes, 0);
  block.module_pending.assign(modules_.size() * lanes, RtValue::disc());
  block.reg_pending.assign(registers_.size() * lanes, RtValue::disc());
  block.reg_dirty.assign(registers_.size() * lanes, 0);
  block.sims.reserve(modules_.size() * lanes);
  std::size_t max_arity = 0;
  for (const ModuleTable& module : modules_) {
    max_arity = std::max(max_arity, module.inputs.size());
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      block.sims.emplace_back(*module.decl);
    }
  }
  block.scratch.resize(max_arity);
  block.lane_updates.assign(lanes, 0);
  block.lane_events.assign(lanes, 0);
  block.lane_transactions.assign(lanes, 0);
  block.conflicts.resize(lanes);

  // --- per-lane inputs: publish now, count the first touches at cycle 1 ----
  std::vector<std::uint64_t> touched_inputs(lanes, 0);
  if (inputs) {
    std::vector<std::uint32_t> touched;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      touched.clear();
      for (const auto& [name, value] : inputs(first_instance + lane)) {
        const auto it = input_index_.find(name);
        if (it == input_index_.end()) {
          throw std::invalid_argument("no input named '" + name + "'");
        }
        block.values[static_cast<std::size_t>(it->second) * lanes + lane] = value;
        if (std::find(touched.begin(), touched.end(), it->second) ==
            touched.end()) {
          touched.push_back(it->second);
        }
      }
      touched_inputs[lane] = touched.size();
    }
  }

  // --- initialization: controller CS/PH drives and register preloads are
  // transactions scheduled before the first delta cycle -----------------
  for (std::size_t i = 0; i < preloaded_registers_.size(); ++i) {
    const std::size_t pending_row =
        static_cast<std::size_t>(preloaded_registers_[i]) * lanes;
    std::fill_n(block.reg_pending.begin() +
                    static_cast<std::ptrdiff_t>(pending_row),
                lanes, preload_values_[i]);
    std::fill_n(
        block.reg_dirty.begin() + static_cast<std::ptrdiff_t>(pending_row),
        lanes, static_cast<std::uint8_t>(1));
  }
  std::uint64_t uniform_updates = 0;
  std::uint64_t uniform_events = 0;
  std::uint64_t uniform_transactions = init_transactions_;

  std::uint64_t executed = 0;
  std::uint64_t cursor = 1;
  // Watchdog bookkeeping: `executed` matches the event scheduler's
  // now().delta and the compiled engine's cursor_ - 1, so the trip point —
  // executing the next cycle would exceed the bound while work remains —
  // lands on the same ordinal on all three engines. The max_cycles bound is
  // checked first (silent cap wins when the two coincide), and a mid-wheel
  // trip hits every lane: controller work is pending for all of them.
  bool tripped_wheel = false;
  std::uint64_t trip_ordinal = 0;
  while (executed < max_cycles && cursor <= wheel_cycles_) {
    if (executed >= max_delta_cycles) {
      tripped_wheel = true;
      trip_ordinal = cursor;
      break;
    }
    execute_cycle(cursor, block);
    uniform_updates += plan_[cursor].uniform_updates;
    uniform_events += plan_[cursor].uniform_events;
    uniform_transactions += plan_[cursor].uniform_transactions;
    ++cursor;
    ++executed;
  }
  const bool ran_first_cycle = executed > 0;

  // --- trailing cycle: per-lane quiescence ---------------------------------
  // With static updates pending (releases from final-step wb fires) every
  // lane executes it; otherwise only lanes whose final cr latched something.
  std::vector<std::uint8_t> trailing(lanes, 0);
  std::vector<std::uint8_t> lane_tripped(lanes, 0);
  if (tripped_wheel) {
    std::fill(lane_tripped.begin(), lane_tripped.end(),
              static_cast<std::uint8_t>(1));
  }
  if (!tripped_wheel && executed < max_cycles && cursor == wheel_cycles_ + 1) {
    bool any = false;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      bool needed = trailing_has_static_updates_;
      for (std::size_t r = 0; !needed && r < registers_.size(); ++r) {
        needed = block.reg_dirty[r * lanes + lane] != 0;
      }
      trailing[lane] = needed ? 1 : 0;
      any = any || needed;
    }
    if (any && executed >= max_delta_cycles) {
      // The trailing cycle would exceed the bound: the lanes that still had
      // work trip (the event scheduler throws at exactly this point), the
      // already-quiescent lanes finish clean. `executed` is lane-uniform,
      // so this split is deterministic.
      trip_ordinal = wheel_cycles_ + 1;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        lane_tripped[lane] = trailing[lane];
        trailing[lane] = 0;
      }
    } else if (any) {
      // Safe over non-participating lanes: their register latches are clean
      // and sink updates only exist when every lane participates.
      execute_cycle(wheel_cycles_ + 1, block);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        if (trailing[lane] != 0) {
          block.lane_updates[lane] += plan_[wheel_cycles_ + 1].uniform_updates;
          block.lane_events[lane] += plan_[wheel_cycles_ + 1].uniform_events;
        }
      }
    }
  }

  // --- collection ----------------------------------------------------------
  const std::uint64_t elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    InstanceResult& result = results[lane];
    const std::uint64_t lane_cycles = executed + (trailing[lane] != 0 ? 1 : 0);
    result.cycles = lane_cycles;
    result.stats.delta_cycles = lane_cycles;
    result.stats.updates = uniform_updates + block.lane_updates[lane] +
                           (ran_first_cycle ? touched_inputs[lane] : 0);
    result.stats.events = uniform_events + block.lane_events[lane];
    result.stats.transactions = uniform_transactions + block.lane_transactions[lane];
    result.stats.wall_time_ns = elapsed_ns / lanes;  // amortized block time
    result.conflicts = std::move(block.conflicts[lane]);
    if (lane_tripped[lane] != 0) {
      result.report.status = RunStatus::kWatchdogTripped;
      result.report.diagnostics.push_back(
          watchdog_diagnostic(max_delta_cycles, trip_ordinal));
    }
    result.registers.reserve(registers_.size());
    for (const RegisterTable& reg : registers_) {
      result.registers.emplace_back(
          reg.decl->name,
          block.values[static_cast<std::size_t>(reg.out) * lanes + lane]);
    }
  }
  return results;
}

LaneEngine::TableStats LaneEngine::table_stats() const {
  TableStats stats;
  stats.cycles = plan_.size() - 1;
  stats.signals = signal_names_.size();
  stats.resolved_sinks = slots_.size();
  stats.drivers = total_drivers_;
  stats.modules = modules_.size();
  stats.registers = registers_.size();
  for (const CyclePlan& plan : plan_) {
    stats.fire_actions += plan.fires.size();
    stats.release_actions += plan.releases.size();
    stats.update_entries += plan.updates.size();
  }
  return stats;
}

}  // namespace ctrtl::rtl
