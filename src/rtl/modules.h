#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "rtl/module.h"

namespace ctrtl::rtl {

/// Generic fixed-function module: any pure function of its operand
/// payloads, with a configurable pipeline latency. The paper's ADD is
/// `FixedFunctionModule` with `a + b` and latency 1.
class FixedFunctionModule final : public Module {
 public:
  using Function = std::function<std::int64_t(std::span<const std::int64_t>)>;

  FixedFunctionModule(kernel::Scheduler& scheduler, Controller& controller,
                      std::string name, unsigned num_inputs, unsigned latency,
                      Function function);

 protected:
  std::int64_t compute(std::span<const std::int64_t> operands,
                       std::int64_t op) override;

 private:
  Function function_;
};

/// One selectable ALU operation: consumes the first `arity` inputs.
struct AluOperation {
  std::string mnemonic;
  unsigned arity = 2;
  std::function<std::int64_t(std::span<const std::int64_t>)> function;
};

/// Module with an operation port (section 3 extension): the op code driven
/// onto the port at phase `rb` selects which operation the module performs
/// at `cm`. Unknown op codes raise `std::domain_error` (a modeling bug, not
/// a resource conflict).
class AluModule final : public Module {
 public:
  using OpTable = std::map<std::int64_t, AluOperation>;

  AluModule(kernel::Scheduler& scheduler, Controller& controller, std::string name,
            unsigned num_inputs, unsigned latency, OpTable ops);

  [[nodiscard]] const OpTable& ops() const { return ops_; }

 protected:
  unsigned arity_for(std::int64_t op) const override;
  std::int64_t compute(std::span<const std::int64_t> operands,
                       std::int64_t op) override;

 private:
  const AluOperation& lookup(std::int64_t op) const;

  OpTable ops_;
};

/// Standard op-code assignments used across the library and the microcode
/// translator.
namespace alu_ops {
inline constexpr std::int64_t kAdd = 0;
inline constexpr std::int64_t kSub = 1;
inline constexpr std::int64_t kPassA = 2;
inline constexpr std::int64_t kPassB = 3;
inline constexpr std::int64_t kNegA = 4;
inline constexpr std::int64_t kMin = 5;
inline constexpr std::int64_t kMax = 6;
/// `kRshiftBase + k` computes `operand_a >> k` (arithmetic); this realizes
/// the IKS micro-operation `Rshift(x2, i)`.
inline constexpr std::int64_t kRshiftBase = 16;
inline constexpr std::int64_t kRshiftMax = 63;
}  // namespace alu_ops

/// Op table with add/sub/pass/neg/min/max plus the arithmetic right-shift
/// family — the operation repertoire of the IKS adders.
[[nodiscard]] AluModule::OpTable make_standard_alu_ops();

/// Unary pass-through with zero latency. The paper's recipe for direct
/// register-to-register and register-to-module links: "two extra buses and
/// one extra module, which just copies the input to the output".
class CopyModule final : public Module {
 public:
  CopyModule(kernel::Scheduler& scheduler, Controller& controller, std::string name);

 protected:
  std::int64_t compute(std::span<const std::int64_t> operands,
                       std::int64_t op) override;
};

/// Multiplier/accumulator (the IKS "MACC" resource): a stateful module with
/// an internal accumulator operating on fixed-point payloads.
///
/// Ops: clear (acc := 0), mac (acc := acc + a*b), load (acc := a),
/// hold (keep). The accumulator value of the *previous* control step is
/// visible at the output (latency-1 pipelined behaviour, like the paper's
/// ADD). A DISC op with idle operands holds the accumulator.
class MaccModule final : public Module {
 public:
  static constexpr std::int64_t kOpClear = 0;
  static constexpr std::int64_t kOpMac = 1;
  static constexpr std::int64_t kOpLoad = 2;
  static constexpr std::int64_t kOpHold = 3;

  MaccModule(kernel::Scheduler& scheduler, Controller& controller, std::string name,
             unsigned frac_bits);

 protected:
  RtValue evaluate(std::span<const RtValue> operands, const RtValue& op) override;
  std::int64_t compute(std::span<const std::int64_t> operands,
                       std::int64_t op) override;
  unsigned arity_for(std::int64_t op) const override;

 private:
  unsigned frac_bits_;
  std::int64_t acc_ = 0;
};

/// CORDIC rotator (the IKS "cordic core"): computes sin or cos of a
/// fixed-point angle (radians) by the classic shift-add iteration. The
/// whole iteration is combinational inside one `cm` phase (the paper:
/// "every combinational aspect must be covered in the variable-assignment
/// based sections of a module description"); the module is pipelined with
/// configurable latency like any other unit.
class CordicModule final : public Module {
 public:
  static constexpr std::int64_t kOpSin = 0;
  static constexpr std::int64_t kOpCos = 1;

  CordicModule(kernel::Scheduler& scheduler, Controller& controller, std::string name,
               unsigned frac_bits, unsigned iterations, unsigned latency = 1);

  /// Direct access to the rotation algorithm (also used by the golden
  /// model so RT-level and algorithmic level share the bit-exact kernel).
  struct SinCos {
    std::int64_t sin;
    std::int64_t cos;
  };
  [[nodiscard]] static SinCos rotate(std::int64_t angle_raw, unsigned frac_bits,
                                     unsigned iterations);

 protected:
  unsigned arity_for(std::int64_t op) const override;
  std::int64_t compute(std::span<const std::int64_t> operands,
                       std::int64_t op) override;

 private:
  unsigned frac_bits_;
  unsigned iterations_;
};

/// Signed fixed-point multiply of two raw payloads with `frac_bits`
/// fractional bits (rounding toward nearest); shared by MACC, the IKS
/// multiplier, and the golden model.
[[nodiscard]] std::int64_t fixed_mul(std::int64_t a, std::int64_t b,
                                     unsigned frac_bits);

}  // namespace ctrtl::rtl
