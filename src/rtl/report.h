#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/diagnostics.h"

namespace ctrtl::rtl {

/// How a guarded simulation run ended.
enum class RunStatus : std::uint8_t {
  /// Ran to quiescence (or the caller's max_cycles bound) without incident.
  kOk = 0,
  /// The delta-cycle watchdog converted non-convergence into a diagnostic:
  /// the run stopped at the configured bound instead of spinning. Partial
  /// results (registers, conflicts, counters up to the trip point) are valid.
  kWatchdogTripped,
  /// The simulation threw; the diagnostics carry the exception text. Partial
  /// results reflect the state when the error surfaced.
  kError,
  /// The work unit never ran: the batch's cooperative cancellation poll
  /// (`BatchRunOptions::cancel`) fired before this instance's unit started.
  /// No partial results — registers/conflicts/counters are all empty.
  kCancelled,
};

/// "ok", "watchdog-tripped", "error", "cancelled".
[[nodiscard]] std::string to_string(RunStatus status);

/// Structured outcome of a guarded run: the status plus any diagnostics with
/// (control step, phase) provenance. Identical across engines — the event
/// kernel, the compiled engine, and the lane engine produce byte-equal
/// reports for the same instance and the same bounds.
struct RunReport {
  RunStatus status = RunStatus::kOk;
  std::vector<common::Diagnostic> diagnostics;

  [[nodiscard]] bool ok() const { return status == RunStatus::kOk; }
  /// "status: watchdog-tripped" followed by one diagnostic per line.
  [[nodiscard]] std::string to_text() const;

  friend bool operator==(const RunReport&, const RunReport&) = default;
};

/// The canonical watchdog diagnostic, shared by all three engines so the
/// reports compare byte-equal: `limit` is the configured bound, `ordinal`
/// the delta cycle that would have run next. `Controller::locate` pins the
/// ordinal to its (control step, phase) — the paper's delta-cycle/phase
/// bijection applied to the diagnostic itself.
[[nodiscard]] common::Diagnostic watchdog_diagnostic(std::uint64_t limit,
                                                     std::uint64_t ordinal);

}  // namespace ctrtl::rtl
