#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "kernel/scheduler.h"
#include "rtl/controller.h"
#include "rtl/model.h"
#include "rtl/module.h"
#include "rtl/register.h"

namespace ctrtl::rtl {

/// Levelized compiled-code execution of an `RtModel` (TransferMode::kCompiled).
///
/// The paper's six-phase control steps are fully static: every TRANS fires at
/// a syntactically known `(step, phase)` slot, modules evaluate at `cm`, and
/// registers latch at `cr`. At elaboration this engine lowers the model into
/// one plan per delta-cycle ordinal, each holding
///
///   - an *update list*: which signals recompute their effective value this
///     cycle, in exactly the order the event kernel's pending list would hold
///     them (fires from the previous cycle, module outputs after `cm`,
///     register outputs after `cr`, releases, then CS/PH), and
///   - an *action list*: the fires (drive source→sink contribution), module
///     evaluations, register latches, and releases (drive DISC) the phase
///     performs.
///
/// Execution runs straight-line over these tables — no event queue, no waiter
/// scans, no coroutine resumption, no `wait until` predicate re-evaluation.
/// Resolved sinks keep per-driver contribution arrays with non-DISC/ILLEGAL
/// counters, so re-resolution after a fire or release is O(1) instead of a
/// scan (DISC/ILLEGAL semantics of `resolve_rt` preserved exactly).
///
/// Delta-cycle parity: the engine reports the same delta_cycles, updates,
/// events, and transactions into the scheduler's KernelStats as an
/// event-driven run of the same model, dispatches the scheduler's event
/// observers for every value change with the same `SimTime` (so TraceRecorder
/// and VCD output are byte-identical), and records conflicts with the same
/// `(step, phase)` pinning. The event order within a cycle is derived from
/// the kernel's waiter-list dynamics and is exact for the canonical transfer
/// phases (fires at ra/rb/wa/wb); `cm`-phase fires keep identical values and
/// conflicts but may order module-output events before fire-sink events where
/// the event kernel would not in control step 1.
class CompiledEngine {
 public:
  /// Lowers the recorded model structure into the per-cycle tables. Spans
  /// must outlive the engine (RtModel owns all of them).
  CompiledEngine(kernel::Scheduler& scheduler, Controller& controller,
                 std::span<const CompiledTransfer> transfers,
                 std::span<const std::unique_ptr<Register>> registers,
                 std::span<const std::unique_ptr<Module>> modules,
                 std::span<RtSignal* const> touched_inputs);

  CompiledEngine(const CompiledEngine&) = delete;
  CompiledEngine& operator=(const CompiledEngine&) = delete;

  /// Executes up to `max_cycles` delta cycles (all of them by default),
  /// continuing where a previous partial run stopped. Equivalent to
  /// `Scheduler::run` plus the conflict recorder of the event-driven
  /// `RtModel::run`. `max_delta_cycles` arms the watchdog: once that many
  /// delta cycles have executed in total and more work remains, the run
  /// stops with a kWatchdogTripped report instead of executing further —
  /// the same trip point and diagnostic the event scheduler produces. The
  /// `max_cycles` bound is checked first, mirroring `Scheduler::run`.
  RunResult run(std::uint64_t max_cycles = kernel::Scheduler::kNoLimit,
                std::uint64_t max_delta_cycles = kernel::Scheduler::kNoLimit);

  /// Sizes of the precomputed tables (diagnostics, tests, tools).
  struct TableStats {
    std::size_t cycles = 0;          ///< planned delta cycles incl. trailing
    std::size_t resolved_sinks = 0;  ///< distinct transfer sink signals
    std::size_t fire_actions = 0;
    std::size_t release_actions = 0;
    std::size_t update_entries = 0;
  };
  [[nodiscard]] TableStats table_stats() const;

 private:
  /// One transfer sink with its static drivers: contributions mirror the
  /// kernel's driver array, plus counters making resolution O(1).
  struct SinkSlot {
    RtSignal* signal = nullptr;
    bool monitored = false;  ///< conflicts recorded (resolved signals only)
    std::vector<RtValue> contributions;
    std::uint32_t non_disc = 0;
    std::uint32_t illegal = 0;
    /// Driver of the most recent non-DISC write: the common single-source
    /// resolution hits this cache instead of scanning contributions.
    std::uint32_t last_value_driver = 0;
  };

  struct FireAction {
    std::uint32_t slot = 0;
    std::uint32_t driver = 0;
    const RtSignal* source = nullptr;
  };

  struct ReleaseAction {
    std::uint32_t slot = 0;
    std::uint32_t driver = 0;
  };

  struct UpdateEntry {
    enum class Kind : std::uint8_t {
      kInput,        ///< externally set input: counted, never an event here
      kCs,           ///< control-step signal takes this cycle's step
      kPh,           ///< phase signal takes this cycle's phase
      kSink,         ///< re-resolve slot `index`
      kModuleOut,    ///< module `index` output takes its pending value
      kRegisterOut,  ///< register `index` output takes its latch, if dirty
    };
    Kind kind = Kind::kSink;
    std::uint32_t index = 0;
  };

  /// Everything one delta cycle does, precomputed.
  struct CyclePlan {
    std::vector<UpdateEntry> updates;
    std::vector<FireAction> fires;
    std::vector<ReleaseAction> releases;
    bool eval_modules = false;
    bool latch_registers = false;
    /// CS/PH drives the controller process would schedule this cycle.
    std::uint32_t controller_transactions = 0;
    unsigned step = 0;
    Phase phase = Phase::kRa;
  };

  struct ModuleSlot {
    Module* module = nullptr;
    std::vector<RtSignal*> inputs;
    RtSignal* op = nullptr;
    RtSignal* out = nullptr;
    RtValue pending;
    std::vector<RtValue> operand_scratch;
  };

  struct RegisterSlot {
    Register* reg = nullptr;
    RtSignal* in = nullptr;
    RtSignal* out = nullptr;
    RtValue pending;
    bool dirty = false;
  };

  void write_contribution(SinkSlot& slot, std::uint32_t driver, const RtValue& value);
  [[nodiscard]] RtValue resolve_slot(const SinkSlot& slot) const;
  void execute_cycle(std::uint64_t ordinal, RunResult& result, bool observers);
  [[nodiscard]] bool trailing_cycle_needed() const;

  kernel::Scheduler& scheduler_;
  Controller& controller_;
  Controller::StepSignal* cs_ = nullptr;
  Controller::PhaseSignal* ph_ = nullptr;

  std::vector<SinkSlot> slots_;
  std::vector<ModuleSlot> module_slots_;
  std::vector<RegisterSlot> register_slots_;
  std::vector<std::uint32_t> preloaded_registers_;

  /// plan_[d] is delta-cycle ordinal d (1-based; plan_[0] unused). The last
  /// entry is the trailing cycle that applies the final `cr` latches.
  std::vector<CyclePlan> plan_;
  std::uint64_t wheel_cycles_ = 0;  ///< cs_max * kPhasesPerStep
  bool trailing_has_static_updates_ = false;

  std::uint64_t cursor_ = 1;  ///< next delta-cycle ordinal to execute
  bool initialized_ = false;
  std::size_t init_transactions_ = 0;
};

}  // namespace ctrtl::rtl
