#include "rtl/modules.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ctrtl::rtl {

std::int64_t fixed_mul(std::int64_t a, std::int64_t b, unsigned frac_bits) {
  // Round to nearest (half up): floor((p + half) / 2^frac); the arithmetic
  // shift floors for both signs.
  const __int128 product = static_cast<__int128>(a) * b;
  const __int128 half = frac_bits == 0 ? 0 : (__int128{1} << (frac_bits - 1));
  return static_cast<std::int64_t>((product + half) >> frac_bits);
}

// --- FixedFunctionModule -----------------------------------------------------

FixedFunctionModule::FixedFunctionModule(kernel::Scheduler& scheduler,
                                         Controller& controller, std::string name,
                                         unsigned num_inputs, unsigned latency,
                                         Function function)
    : Module(scheduler, controller, std::move(name),
             Config{num_inputs, latency, /*has_op_port=*/false}),
      function_(std::move(function)) {
  if (!function_) {
    throw std::invalid_argument("FixedFunctionModule: null function");
  }
}

std::int64_t FixedFunctionModule::compute(std::span<const std::int64_t> operands,
                                          std::int64_t /*op*/) {
  return function_(operands);
}

// --- AluModule ---------------------------------------------------------------

AluModule::AluModule(kernel::Scheduler& scheduler, Controller& controller,
                     std::string name, unsigned num_inputs, unsigned latency,
                     OpTable ops)
    : Module(scheduler, controller, std::move(name),
             Config{num_inputs, latency, /*has_op_port=*/true}),
      ops_(std::move(ops)) {
  for (const auto& [code, operation] : ops_) {
    if (operation.arity > config().num_inputs) {
      throw std::invalid_argument("AluModule '" + this->name() + "': op '" +
                                  operation.mnemonic + "' needs more inputs than ports");
    }
  }
}

const AluOperation& AluModule::lookup(std::int64_t op) const {
  const auto it = ops_.find(op);
  if (it == ops_.end()) {
    throw std::domain_error("AluModule '" + name() + "': unknown op code " +
                            std::to_string(op));
  }
  return it->second;
}

unsigned AluModule::arity_for(std::int64_t op) const {
  return lookup(op).arity;
}

std::int64_t AluModule::compute(std::span<const std::int64_t> operands,
                                std::int64_t op) {
  return lookup(op).function(operands);
}

AluModule::OpTable make_standard_alu_ops() {
  using Span = std::span<const std::int64_t>;
  AluModule::OpTable ops;
  ops[alu_ops::kAdd] = {"add", 2, [](Span v) { return v[0] + v[1]; }};
  ops[alu_ops::kSub] = {"sub", 2, [](Span v) { return v[0] - v[1]; }};
  ops[alu_ops::kPassA] = {"passa", 1, [](Span v) { return v[0]; }};
  ops[alu_ops::kPassB] = {"passb", 2, [](Span v) { return v[1]; }};
  ops[alu_ops::kNegA] = {"nega", 1, [](Span v) { return -v[0]; }};
  ops[alu_ops::kMin] = {"min", 2, [](Span v) { return std::min(v[0], v[1]); }};
  ops[alu_ops::kMax] = {"max", 2, [](Span v) { return std::max(v[0], v[1]); }};
  for (std::int64_t k = 0; alu_ops::kRshiftBase + k <= alu_ops::kRshiftMax; ++k) {
    const int amount = static_cast<int>(k);
    ops[alu_ops::kRshiftBase + k] = {
        "rshift" + std::to_string(amount), 1,
        [amount](Span v) { return v[0] >> amount; }};
  }
  return ops;
}

// --- CopyModule --------------------------------------------------------------

CopyModule::CopyModule(kernel::Scheduler& scheduler, Controller& controller,
                       std::string name)
    : Module(scheduler, controller, std::move(name),
             Config{/*num_inputs=*/1, /*latency=*/0, /*has_op_port=*/false}) {}

std::int64_t CopyModule::compute(std::span<const std::int64_t> operands,
                                 std::int64_t /*op*/) {
  return operands[0];
}

// --- MaccModule --------------------------------------------------------------

MaccModule::MaccModule(kernel::Scheduler& scheduler, Controller& controller,
                       std::string name, unsigned frac_bits)
    : Module(scheduler, controller, std::move(name),
             Config{/*num_inputs=*/2, /*latency=*/1, /*has_op_port=*/true}),
      frac_bits_(frac_bits) {}

unsigned MaccModule::arity_for(std::int64_t op) const {
  switch (op) {
    case kOpClear:
    case kOpHold:
      return 0;
    case kOpLoad:
      return 1;
    case kOpMac:
      return 2;
    default:
      throw std::domain_error("MaccModule '" + name() + "': unknown op code " +
                              std::to_string(op));
  }
}

RtValue MaccModule::evaluate(std::span<const RtValue> operands, const RtValue& op) {
  if (op.is_illegal()) {
    return RtValue::illegal();
  }
  for (const RtValue& operand : operands) {
    if (operand.is_illegal()) {
      return RtValue::illegal();
    }
  }
  if (op.is_disc()) {
    // No operation scheduled: hold the accumulator, but stray operands on an
    // idle unit indicate a scheduling error.
    for (const RtValue& operand : operands) {
      if (!operand.is_disc()) {
        return RtValue::illegal();
      }
    }
    return RtValue::of(acc_);
  }
  const unsigned arity = arity_for(op.payload());
  for (unsigned i = 0; i < arity; ++i) {
    if (!operands[i].has_value()) {
      return RtValue::illegal();
    }
  }
  switch (op.payload()) {
    case kOpClear:
      acc_ = 0;
      break;
    case kOpHold:
      break;
    case kOpLoad:
      acc_ = operands[0].payload();
      break;
    case kOpMac:
      acc_ += fixed_mul(operands[0].payload(), operands[1].payload(), frac_bits_);
      break;
    default:
      throw std::domain_error("MaccModule: unreachable op");
  }
  return RtValue::of(acc_);
}

std::int64_t MaccModule::compute(std::span<const std::int64_t> /*operands*/,
                                 std::int64_t /*op*/) {
  throw std::logic_error("MaccModule::compute: evaluate() is overridden");
}

// --- CordicModule ------------------------------------------------------------

CordicModule::CordicModule(kernel::Scheduler& scheduler, Controller& controller,
                           std::string name, unsigned frac_bits, unsigned iterations,
                           unsigned latency)
    : Module(scheduler, controller, std::move(name),
             Config{/*num_inputs=*/1, latency, /*has_op_port=*/true}),
      frac_bits_(frac_bits),
      iterations_(iterations) {}

unsigned CordicModule::arity_for(std::int64_t op) const {
  if (op != kOpSin && op != kOpCos) {
    throw std::domain_error("CordicModule '" + name() + "': unknown op code " +
                            std::to_string(op));
  }
  return 1;
}

CordicModule::SinCos CordicModule::rotate(std::int64_t angle_raw, unsigned frac_bits,
                                          unsigned iterations) {
  const double one = static_cast<double>(std::int64_t{1} << frac_bits);
  const std::int64_t pi_raw = static_cast<std::int64_t>(std::llround(M_PI * one));
  const std::int64_t half_pi_raw = pi_raw / 2;
  const std::int64_t two_pi_raw = 2 * pi_raw;

  // Argument reduction into [-pi, pi], then into [-pi/2, pi/2] using
  // sin(z +- pi) = -sin(z), cos(z +- pi) = -cos(z).
  std::int64_t z = angle_raw;
  while (z > pi_raw) {
    z -= two_pi_raw;
  }
  while (z < -pi_raw) {
    z += two_pi_raw;
  }
  bool flip = false;
  if (z > half_pi_raw) {
    z -= pi_raw;
    flip = true;
  } else if (z < -half_pi_raw) {
    z += pi_raw;
    flip = true;
  }

  // K = prod_i 1/sqrt(1 + 2^-2i): start the rotation at (K, 0) so the
  // shift-add iterations land on (cos, sin) directly.
  double gain = 1.0;
  for (unsigned i = 0; i < iterations; ++i) {
    gain *= std::sqrt(1.0 + std::ldexp(1.0, -2 * static_cast<int>(i)));
  }
  std::int64_t x = static_cast<std::int64_t>(std::llround(one / gain));
  std::int64_t y = 0;

  for (unsigned i = 0; i < iterations; ++i) {
    const std::int64_t atan_raw =
        static_cast<std::int64_t>(std::llround(std::atan(std::ldexp(1.0, -static_cast<int>(i))) * one));
    const std::int64_t x_shift = x >> i;
    const std::int64_t y_shift = y >> i;
    if (z >= 0) {
      x -= y_shift;
      y += x_shift;
      z -= atan_raw;
    } else {
      x += y_shift;
      y -= x_shift;
      z += atan_raw;
    }
  }
  if (flip) {
    x = -x;
    y = -y;
  }
  return SinCos{y, x};
}

std::int64_t CordicModule::compute(std::span<const std::int64_t> operands,
                                   std::int64_t op) {
  const SinCos result = rotate(operands[0], frac_bits_, iterations_);
  return op == kOpSin ? result.sin : result.cos;
}

}  // namespace ctrtl::rtl
